
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/predictor.cpp" "src/predict/CMakeFiles/mpim_predict.dir/predictor.cpp.o" "gcc" "src/predict/CMakeFiles/mpim_predict.dir/predictor.cpp.o.d"
  "/root/repo/src/predict/sampler.cpp" "src/predict/CMakeFiles/mpim_predict.dir/sampler.cpp.o" "gcc" "src/predict/CMakeFiles/mpim_predict.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpimon/CMakeFiles/mpim_mpimon.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/mpim_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mpit/CMakeFiles/mpim_mpit.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/mpim_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mpim_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
