# Empty compiler generated dependencies file for mpim_predict.
# This may be replaced when dependencies are built.
