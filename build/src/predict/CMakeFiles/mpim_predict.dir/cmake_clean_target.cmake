file(REMOVE_RECURSE
  "libmpim_predict.a"
)
