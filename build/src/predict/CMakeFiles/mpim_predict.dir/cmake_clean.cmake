file(REMOVE_RECURSE
  "CMakeFiles/mpim_predict.dir/predictor.cpp.o"
  "CMakeFiles/mpim_predict.dir/predictor.cpp.o.d"
  "CMakeFiles/mpim_predict.dir/sampler.cpp.o"
  "CMakeFiles/mpim_predict.dir/sampler.cpp.o.d"
  "libmpim_predict.a"
  "libmpim_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
