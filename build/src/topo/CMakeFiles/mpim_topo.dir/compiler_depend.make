# Empty compiler generated dependencies file for mpim_topo.
# This may be replaced when dependencies are built.
