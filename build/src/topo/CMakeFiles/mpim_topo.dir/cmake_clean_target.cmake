file(REMOVE_RECURSE
  "libmpim_topo.a"
)
