file(REMOVE_RECURSE
  "CMakeFiles/mpim_topo.dir/topology.cpp.o"
  "CMakeFiles/mpim_topo.dir/topology.cpp.o.d"
  "libmpim_topo.a"
  "libmpim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
