# Empty dependencies file for mpim_tools.
# This may be replaced when dependencies are built.
