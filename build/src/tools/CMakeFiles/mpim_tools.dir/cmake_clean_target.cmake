file(REMOVE_RECURSE
  "libmpim_tools.a"
)
