file(REMOVE_RECURSE
  "CMakeFiles/mpim_tools.dir/apiprof.cpp.o"
  "CMakeFiles/mpim_tools.dir/apiprof.cpp.o.d"
  "CMakeFiles/mpim_tools.dir/prof_reader.cpp.o"
  "CMakeFiles/mpim_tools.dir/prof_reader.cpp.o.d"
  "CMakeFiles/mpim_tools.dir/tracer.cpp.o"
  "CMakeFiles/mpim_tools.dir/tracer.cpp.o.d"
  "libmpim_tools.a"
  "libmpim_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
