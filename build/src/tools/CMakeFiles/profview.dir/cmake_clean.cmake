file(REMOVE_RECURSE
  "CMakeFiles/profview.dir/profview_main.cpp.o"
  "CMakeFiles/profview.dir/profview_main.cpp.o.d"
  "profview"
  "profview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
