# Empty dependencies file for profview.
# This may be replaced when dependencies are built.
