file(REMOVE_RECURSE
  "libmpim_netmodel.a"
)
