# Empty compiler generated dependencies file for mpim_netmodel.
# This may be replaced when dependencies are built.
