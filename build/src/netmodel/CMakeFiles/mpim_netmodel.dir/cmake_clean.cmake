file(REMOVE_RECURSE
  "CMakeFiles/mpim_netmodel.dir/cost_model.cpp.o"
  "CMakeFiles/mpim_netmodel.dir/cost_model.cpp.o.d"
  "CMakeFiles/mpim_netmodel.dir/nic_counters.cpp.o"
  "CMakeFiles/mpim_netmodel.dir/nic_counters.cpp.o.d"
  "libmpim_netmodel.a"
  "libmpim_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
