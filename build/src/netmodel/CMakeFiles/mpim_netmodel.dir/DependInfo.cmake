
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netmodel/cost_model.cpp" "src/netmodel/CMakeFiles/mpim_netmodel.dir/cost_model.cpp.o" "gcc" "src/netmodel/CMakeFiles/mpim_netmodel.dir/cost_model.cpp.o.d"
  "/root/repo/src/netmodel/nic_counters.cpp" "src/netmodel/CMakeFiles/mpim_netmodel.dir/nic_counters.cpp.o" "gcc" "src/netmodel/CMakeFiles/mpim_netmodel.dir/nic_counters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/mpim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
