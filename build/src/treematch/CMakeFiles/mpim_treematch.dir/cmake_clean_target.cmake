file(REMOVE_RECURSE
  "libmpim_treematch.a"
)
