# Empty compiler generated dependencies file for mpim_treematch.
# This may be replaced when dependencies are built.
