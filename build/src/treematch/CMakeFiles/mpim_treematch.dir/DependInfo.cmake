
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/treematch/affinity.cpp" "src/treematch/CMakeFiles/mpim_treematch.dir/affinity.cpp.o" "gcc" "src/treematch/CMakeFiles/mpim_treematch.dir/affinity.cpp.o.d"
  "/root/repo/src/treematch/treematch.cpp" "src/treematch/CMakeFiles/mpim_treematch.dir/treematch.cpp.o" "gcc" "src/treematch/CMakeFiles/mpim_treematch.dir/treematch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netmodel/CMakeFiles/mpim_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mpim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
