file(REMOVE_RECURSE
  "CMakeFiles/mpim_treematch.dir/affinity.cpp.o"
  "CMakeFiles/mpim_treematch.dir/affinity.cpp.o.d"
  "CMakeFiles/mpim_treematch.dir/treematch.cpp.o"
  "CMakeFiles/mpim_treematch.dir/treematch.cpp.o.d"
  "libmpim_treematch.a"
  "libmpim_treematch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_treematch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
