
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpimon/fortran.cpp" "src/mpimon/CMakeFiles/mpim_mpimon.dir/fortran.cpp.o" "gcc" "src/mpimon/CMakeFiles/mpim_mpimon.dir/fortran.cpp.o.d"
  "/root/repo/src/mpimon/mpi_monitoring.cpp" "src/mpimon/CMakeFiles/mpim_mpimon.dir/mpi_monitoring.cpp.o" "gcc" "src/mpimon/CMakeFiles/mpim_mpimon.dir/mpi_monitoring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpit/CMakeFiles/mpim_mpit.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/mpim_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/mpim_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mpim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
