file(REMOVE_RECURSE
  "libmpim_mpimon.a"
)
