# Empty compiler generated dependencies file for mpim_mpimon.
# This may be replaced when dependencies are built.
