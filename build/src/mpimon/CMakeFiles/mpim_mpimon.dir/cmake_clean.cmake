file(REMOVE_RECURSE
  "CMakeFiles/mpim_mpimon.dir/fortran.cpp.o"
  "CMakeFiles/mpim_mpimon.dir/fortran.cpp.o.d"
  "CMakeFiles/mpim_mpimon.dir/mpi_monitoring.cpp.o"
  "CMakeFiles/mpim_mpimon.dir/mpi_monitoring.cpp.o.d"
  "libmpim_mpimon.a"
  "libmpim_mpimon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_mpimon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
