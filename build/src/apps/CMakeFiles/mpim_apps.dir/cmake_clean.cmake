file(REMOVE_RECURSE
  "CMakeFiles/mpim_apps.dir/cg.cpp.o"
  "CMakeFiles/mpim_apps.dir/cg.cpp.o.d"
  "CMakeFiles/mpim_apps.dir/group_allgather.cpp.o"
  "CMakeFiles/mpim_apps.dir/group_allgather.cpp.o.d"
  "CMakeFiles/mpim_apps.dir/halo.cpp.o"
  "CMakeFiles/mpim_apps.dir/halo.cpp.o.d"
  "CMakeFiles/mpim_apps.dir/nas_cg.cpp.o"
  "CMakeFiles/mpim_apps.dir/nas_cg.cpp.o.d"
  "CMakeFiles/mpim_apps.dir/traffic.cpp.o"
  "CMakeFiles/mpim_apps.dir/traffic.cpp.o.d"
  "libmpim_apps.a"
  "libmpim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
