file(REMOVE_RECURSE
  "libmpim_apps.a"
)
