# Empty dependencies file for mpim_apps.
# This may be replaced when dependencies are built.
