
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/api.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/api.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/api.cpp.o.d"
  "/root/repo/src/minimpi/coll_allgather.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_allgather.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_allgather.cpp.o.d"
  "/root/repo/src/minimpi/coll_barrier.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_barrier.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_barrier.cpp.o.d"
  "/root/repo/src/minimpi/coll_bcast.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_bcast.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_bcast.cpp.o.d"
  "/root/repo/src/minimpi/coll_gather.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_gather.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_gather.cpp.o.d"
  "/root/repo/src/minimpi/coll_reduce.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_reduce.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_reduce.cpp.o.d"
  "/root/repo/src/minimpi/coll_scan.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_scan.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/coll_scan.cpp.o.d"
  "/root/repo/src/minimpi/engine.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/engine.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/engine.cpp.o.d"
  "/root/repo/src/minimpi/osc.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/osc.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/osc.cpp.o.d"
  "/root/repo/src/minimpi/types.cpp" "src/minimpi/CMakeFiles/mpim_minimpi.dir/types.cpp.o" "gcc" "src/minimpi/CMakeFiles/mpim_minimpi.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netmodel/CMakeFiles/mpim_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mpim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
