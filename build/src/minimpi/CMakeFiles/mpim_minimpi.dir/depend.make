# Empty dependencies file for mpim_minimpi.
# This may be replaced when dependencies are built.
