file(REMOVE_RECURSE
  "CMakeFiles/mpim_minimpi.dir/api.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/api.cpp.o.d"
  "CMakeFiles/mpim_minimpi.dir/coll_allgather.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/coll_allgather.cpp.o.d"
  "CMakeFiles/mpim_minimpi.dir/coll_barrier.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/coll_barrier.cpp.o.d"
  "CMakeFiles/mpim_minimpi.dir/coll_bcast.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/coll_bcast.cpp.o.d"
  "CMakeFiles/mpim_minimpi.dir/coll_gather.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/coll_gather.cpp.o.d"
  "CMakeFiles/mpim_minimpi.dir/coll_reduce.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/coll_reduce.cpp.o.d"
  "CMakeFiles/mpim_minimpi.dir/coll_scan.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/coll_scan.cpp.o.d"
  "CMakeFiles/mpim_minimpi.dir/engine.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/engine.cpp.o.d"
  "CMakeFiles/mpim_minimpi.dir/osc.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/osc.cpp.o.d"
  "CMakeFiles/mpim_minimpi.dir/types.cpp.o"
  "CMakeFiles/mpim_minimpi.dir/types.cpp.o.d"
  "libmpim_minimpi.a"
  "libmpim_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
