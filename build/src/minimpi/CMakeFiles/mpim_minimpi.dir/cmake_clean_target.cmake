file(REMOVE_RECURSE
  "libmpim_minimpi.a"
)
