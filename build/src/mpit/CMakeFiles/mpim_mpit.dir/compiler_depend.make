# Empty compiler generated dependencies file for mpim_mpit.
# This may be replaced when dependencies are built.
