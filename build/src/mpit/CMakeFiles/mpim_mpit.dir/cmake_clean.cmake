file(REMOVE_RECURSE
  "CMakeFiles/mpim_mpit.dir/pvar.cpp.o"
  "CMakeFiles/mpim_mpit.dir/pvar.cpp.o.d"
  "CMakeFiles/mpim_mpit.dir/runtime.cpp.o"
  "CMakeFiles/mpim_mpit.dir/runtime.cpp.o.d"
  "libmpim_mpit.a"
  "libmpim_mpit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_mpit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
