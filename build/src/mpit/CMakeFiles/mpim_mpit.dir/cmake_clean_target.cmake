file(REMOVE_RECURSE
  "libmpim_mpit.a"
)
