file(REMOVE_RECURSE
  "libmpim_support.a"
)
