file(REMOVE_RECURSE
  "CMakeFiles/mpim_support.dir/stats.cpp.o"
  "CMakeFiles/mpim_support.dir/stats.cpp.o.d"
  "CMakeFiles/mpim_support.dir/table.cpp.o"
  "CMakeFiles/mpim_support.dir/table.cpp.o.d"
  "libmpim_support.a"
  "libmpim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
