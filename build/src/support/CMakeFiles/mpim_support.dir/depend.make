# Empty dependencies file for mpim_support.
# This may be replaced when dependencies are built.
