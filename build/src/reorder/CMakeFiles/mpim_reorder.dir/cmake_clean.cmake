file(REMOVE_RECURSE
  "CMakeFiles/mpim_reorder.dir/reorder.cpp.o"
  "CMakeFiles/mpim_reorder.dir/reorder.cpp.o.d"
  "libmpim_reorder.a"
  "libmpim_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpim_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
