# Empty compiler generated dependencies file for mpim_reorder.
# This may be replaced when dependencies are built.
