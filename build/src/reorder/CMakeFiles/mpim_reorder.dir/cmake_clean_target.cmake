file(REMOVE_RECURSE
  "libmpim_reorder.a"
)
