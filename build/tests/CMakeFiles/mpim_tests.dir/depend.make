# Empty dependencies file for mpim_tests.
# This may be replaced when dependencies are built.
