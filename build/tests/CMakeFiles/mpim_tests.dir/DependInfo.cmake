
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/mpim_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/coll_test.cpp" "tests/CMakeFiles/mpim_tests.dir/coll_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/coll_test.cpp.o.d"
  "/root/repo/tests/comm_test.cpp" "tests/CMakeFiles/mpim_tests.dir/comm_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/comm_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/mpim_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/fortran_test.cpp" "tests/CMakeFiles/mpim_tests.dir/fortran_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/fortran_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/mpim_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/mpimon_test.cpp" "tests/CMakeFiles/mpim_tests.dir/mpimon_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/mpimon_test.cpp.o.d"
  "/root/repo/tests/mpit_test.cpp" "tests/CMakeFiles/mpim_tests.dir/mpit_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/mpit_test.cpp.o.d"
  "/root/repo/tests/netmodel_test.cpp" "tests/CMakeFiles/mpim_tests.dir/netmodel_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/netmodel_test.cpp.o.d"
  "/root/repo/tests/osc_test.cpp" "tests/CMakeFiles/mpim_tests.dir/osc_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/osc_test.cpp.o.d"
  "/root/repo/tests/predict_test.cpp" "tests/CMakeFiles/mpim_tests.dir/predict_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/predict_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/mpim_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/reorder_test.cpp" "tests/CMakeFiles/mpim_tests.dir/reorder_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/reorder_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/mpim_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/tools_test.cpp" "tests/CMakeFiles/mpim_tests.dir/tools_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/tools_test.cpp.o.d"
  "/root/repo/tests/topo_test.cpp" "tests/CMakeFiles/mpim_tests.dir/topo_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/topo_test.cpp.o.d"
  "/root/repo/tests/treematch_test.cpp" "tests/CMakeFiles/mpim_tests.dir/treematch_test.cpp.o" "gcc" "tests/CMakeFiles/mpim_tests.dir/treematch_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/mpim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/mpim_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/reorder/CMakeFiles/mpim_reorder.dir/DependInfo.cmake"
  "/root/repo/build/src/treematch/CMakeFiles/mpim_treematch.dir/DependInfo.cmake"
  "/root/repo/build/src/mpimon/CMakeFiles/mpim_mpimon.dir/DependInfo.cmake"
  "/root/repo/build/src/mpit/CMakeFiles/mpim_mpit.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mpim_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/mpim_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/mpim_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mpim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
