file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hwcounters.dir/bench_fig2_hwcounters.cpp.o"
  "CMakeFiles/bench_fig2_hwcounters.dir/bench_fig2_hwcounters.cpp.o.d"
  "bench_fig2_hwcounters"
  "bench_fig2_hwcounters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hwcounters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
