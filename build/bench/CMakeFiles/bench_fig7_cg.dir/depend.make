# Empty dependencies file for bench_fig7_cg.
# This may be replaced when dependencies are built.
