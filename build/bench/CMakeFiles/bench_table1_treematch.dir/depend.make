# Empty dependencies file for bench_table1_treematch.
# This may be replaced when dependencies are built.
