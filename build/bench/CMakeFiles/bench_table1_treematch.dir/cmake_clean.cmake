file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_treematch.dir/bench_table1_treematch.cpp.o"
  "CMakeFiles/bench_table1_treematch.dir/bench_table1_treematch.cpp.o.d"
  "bench_table1_treematch"
  "bench_table1_treematch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_treematch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
