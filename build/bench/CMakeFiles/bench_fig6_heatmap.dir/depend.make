# Empty dependencies file for bench_fig6_heatmap.
# This may be replaced when dependencies are built.
