file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_collectives.dir/bench_fig5_collectives.cpp.o"
  "CMakeFiles/bench_fig5_collectives.dir/bench_fig5_collectives.cpp.o.d"
  "bench_fig5_collectives"
  "bench_fig5_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
