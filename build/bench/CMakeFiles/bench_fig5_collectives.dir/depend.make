# Empty dependencies file for bench_fig5_collectives.
# This may be replaced when dependencies are built.
