file(REMOVE_RECURSE
  "CMakeFiles/cg_introspection.dir/cg_introspection.cpp.o"
  "CMakeFiles/cg_introspection.dir/cg_introspection.cpp.o.d"
  "cg_introspection"
  "cg_introspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_introspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
