# Empty dependencies file for cg_introspection.
# This may be replaced when dependencies are built.
