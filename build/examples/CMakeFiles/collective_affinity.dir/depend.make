# Empty dependencies file for collective_affinity.
# This may be replaced when dependencies are built.
