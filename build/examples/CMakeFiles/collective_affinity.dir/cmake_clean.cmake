file(REMOVE_RECURSE
  "CMakeFiles/collective_affinity.dir/collective_affinity.cpp.o"
  "CMakeFiles/collective_affinity.dir/collective_affinity.cpp.o.d"
  "collective_affinity"
  "collective_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
