# Empty compiler generated dependencies file for network_prediction.
# This may be replaced when dependencies are built.
