file(REMOVE_RECURSE
  "CMakeFiles/network_prediction.dir/network_prediction.cpp.o"
  "CMakeFiles/network_prediction.dir/network_prediction.cpp.o.d"
  "network_prediction"
  "network_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
