# Empty dependencies file for stencil_reorder.
# This may be replaced when dependencies are built.
