file(REMOVE_RECURSE
  "CMakeFiles/stencil_reorder.dir/stencil_reorder.cpp.o"
  "CMakeFiles/stencil_reorder.dir/stencil_reorder.cpp.o.d"
  "stencil_reorder"
  "stencil_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
