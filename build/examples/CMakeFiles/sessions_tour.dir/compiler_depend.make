# Empty compiler generated dependencies file for sessions_tour.
# This may be replaced when dependencies are built.
