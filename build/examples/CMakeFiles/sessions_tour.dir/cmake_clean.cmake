file(REMOVE_RECURSE
  "CMakeFiles/sessions_tour.dir/sessions_tour.cpp.o"
  "CMakeFiles/sessions_tour.dir/sessions_tour.cpp.o.d"
  "sessions_tour"
  "sessions_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sessions_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
