// Conjugate gradient with runtime introspection: the Section 6.5 workflow.
//
// Runs the CG solver (class A) on a scattered placement, monitors its
// initialization iteration, reorders the ranks and re-sets-up on the
// optimized communicator -- then reports execution and communication time
// of both variants plus the monitored per-iteration traffic volume.
#include <cstdio>

#include "apps/cg.h"
#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "reorder/reorder.h"

int main() {
  using namespace mpim;

  const int nranks = 64;
  auto cost = net::CostModel::plafrim_like(3);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::random_placement(nranks, cost.topology(), 17)};
  cfg.nic_contention = true;
  Sim sim(std::move(cfg));

  double t_plain = 0, c_plain = 0, t_opt = 0, c_opt = 0;
  unsigned long iter_bytes = 0;
  bool reordered = false;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    const apps::CgConfig cc = apps::cg_class('A');
    mon::Environment env;

    // Baseline solve on the (random) original mapping.
    apps::CgSolver plain(world, cc);
    const apps::CgResult base = plain.solve();

    // Monitor the init iteration, inspect the traffic, reorder.
    apps::CgSolver init(world, cc);
    MPI_M_msid id;
    mon::check_rc(MPI_M_start(world, &id), "start");
    init.iteration();
    mon::check_rc(MPI_M_suspend(id), "suspend");

    std::vector<unsigned long> row(static_cast<std::size_t>(nranks));
    mon::check_rc(
        MPI_M_get_data(id, MPI_M_DATA_IGNORE, row.data(), MPI_M_ALL_COMM),
        "get_data");
    unsigned long sent = 0;
    for (unsigned long v : row) sent += v;

    const auto res = reorder::reorder_ranks(id, world);
    mon::check_rc(MPI_M_free(id), "free");

    apps::CgSolver opt(res.opt_comm, cc);
    const apps::CgResult better = opt.solve();

    if (ctx.world_rank() == 0) {
      t_plain = base.total_time_s;
      c_plain = base.comm_time_s;
      iter_bytes = sent;
      reordered = res.k != reorder::identity_k(res.k.size());
    }
    if (mpi::comm_rank(res.opt_comm) == 0) {
      t_opt = better.total_time_s;
      c_opt = better.comm_time_s;
    }
  });

  std::printf("CG class A on 64 randomly placed ranks (3 nodes)\n");
  std::printf("rank 0 sent %lu bytes during the monitored iteration\n",
              iter_bytes);
  std::printf("reordering applied: %s\n", reordered ? "yes" : "no (identity)");
  std::printf("execution time    : %.2f ms -> %.2f ms (%.2fx)\n",
              t_plain * 1e3, t_opt * 1e3, t_plain / t_opt);
  std::printf("communication time: %.2f ms -> %.2f ms (%.2fx)\n",
              c_plain * 1e3, c_opt * 1e3, c_plain / c_opt);
  return 0;
}
