// Rank reordering when a rank goes quiet mid-protocol — with telemetry on.
//
// The Figure-1 loop (monitor one iteration, gather the byte matrix,
// TreeMatch, remap) assumes every rank contributes its monitoring row. This
// example plants a deterministic stall on one rank: right after its last
// monitored CG iteration completes, the rank freezes for 1.5 s of host wall
// time. The gather's recovery timeout fires first, the root receives a
// partial matrix (MPI_M_PARTIAL_DATA), and reorder_ranks falls back to the
// identity permutation with a readable diagnostic instead of hanging or
// remapping on garbage. The application then finishes its solve untouched.
//
// On top of the stall, every link drops ~5% of its transmissions (with
// sender retransmit), and the engine's telemetry records the whole story:
// the run exports a Chrome trace (collective spans + their p2p tree
// children), a metrics CSV for `monview`, and the retransmit counter is
// read back through an MPI_T pvar handle resolved by name.
//
// Run 1 (no rank fault) only measures the virtual time at which the victim
// finishes the monitored iteration; run 2 replants that instant as the
// stall trigger. Both runs share the same link-fault plan and seed, so the
// virtual clocks agree bit for bit and the demo stays deterministic.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "apps/cg.h"
#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "mpit/pvar.h"
#include "mpit/runtime.h"
#include "reorder/reorder.h"
#include "telemetry/export.h"

int main() {
  using namespace mpim;

  const int nranks = 16;
  const int victim = 5;
  const apps::CgConfig cg = apps::cg_class('S');

  // Same seed in both runs: identical link-fault draws, identical clocks.
  auto make_plan = [&](bool with_stall, double stall_at) {
    auto plan = std::make_shared<fault::FaultPlan>(/*seed=*/2026);
    fault::LinkFault drop;
    drop.drop_prob = 0.05;       // any link, ~5% per attempt
    drop.max_retransmits = 8;    // loss needs 9 straight drops (~2e-12)
    drop.retransmit_backoff_s = 1e-7;
    plan->add(drop);
    if (with_stall)
      plan->add(fault::RankFault{.rank = victim,
                                 .stall_at_s = stall_at,
                                 .stall_virtual_s = 0.0,
                                 .stall_wall_s = 1.5});
    return plan;
  };

  auto make_cfg = [&](std::shared_ptr<fault::FaultPlan> plan) {
    auto cost = net::CostModel::plafrim_like(2);
    mpi::EngineConfig cfg{
        .cost_model = cost,
        .placement = topo::round_robin_placement(nranks, cost.topology())};
    cfg.fault_plan = std::move(plan);
    return cfg;
  };

  // --- Run 1: measure when the victim finishes the monitored iteration ---
  // Monitored exactly like run 2, so the virtual clocks agree bit for bit.
  double stall_at = 0.0;
  {
    Sim sim(make_cfg(make_plan(false, 0.0)));
    sim.run([&](mpi::Ctx& ctx) {
      mon::Environment env;
      MPI_M_msid id;
      mon::check_rc(MPI_M_start(ctx.world(), &id), "MPI_M_start");
      apps::CgSolver solver(ctx.world(), cg);
      solver.iteration();
      mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
      mon::check_rc(MPI_M_free(id), "MPI_M_free");
      if (ctx.world_rank() == victim) stall_at = ctx.now();
    });
  }

  // --- Run 2: same program, but the victim stalls at that very instant ---
  // The stall is pure wall time (no virtual time), so it races the gather's
  // wall-clock recovery timeout -- exactly what a hung rank looks like.
  bool fell_back = false;
  std::string reason;
  bool identity = false;
  unsigned long my_retransmits = 0;
  apps::CgResult final_res;
  Sim sim(make_cfg(make_plan(true, stall_at)));
  sim.engine().telemetry().set_enabled(true);
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    mon::Environment env;
    mon::check_rc(MPI_M_set_gather_timeout(0.25), "MPI_M_set_gather_timeout");

    MPI_M_msid id;
    mon::check_rc(MPI_M_start(world, &id), "MPI_M_start");
    apps::CgSolver solver(world, cg);
    solver.iteration();
    mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");

    // The victim is asleep here; the gather inside reorder_ranks times
    // out on its row and the root falls back to the identity mapping.
    const auto res = reorder::reorder_ranks(id, world);
    mon::check_rc(MPI_M_free(id), "MPI_M_free");

    // The fallback keeps the original communicator, so the application
    // simply carries on -- including the recovered victim.
    apps::CgSolver rest(res.opt_comm, cg);
    const apps::CgResult done = rest.solve();

    if (mpi::comm_rank(res.opt_comm) == 0) {
      fell_back = res.fell_back;
      reason = res.fallback_reason;
      identity =
          res.k == reorder::identity_k(static_cast<std::size_t>(nranks));
      final_res = done;

      // Telemetry through the portable front: resolve the pvar by name
      // and read the calling rank's retransmit count.
      mpit::Runtime& rt = mpit::Runtime::of(ctx.engine());
      const int idx = mpit::pvar_index_by_name("mpim_fault_retransmits_total");
      const int sid = rt.session_create();
      const int h = rt.handle_alloc(sid, idx, world);
      rt.handle_read(sid, h, &my_retransmits, 1);
      rt.session_free(sid);
    }
  });

  // Export what telemetry saw: Chrome trace (collective spans and their
  // p2p decomposition children) + the metrics CSV monview renders.
  const telemetry::Hub& hub = sim.engine().telemetry();
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const char* trace_path = "results/faulty_reorder_trace.json";
  const char* metrics_path = "results/faulty_reorder_metrics.csv";
  const char* spans_path = "results/faulty_reorder_spans.csv";
  if (!ec) {
    telemetry::write_chrome_trace_file(hub, trace_path);
    telemetry::write_metrics_csv_file(hub, metrics_path);
    telemetry::write_spans_csv_file(hub, spans_path);
  }

  const auto& reg = hub.registry();
  const auto& ids = hub.ids();
  const unsigned long retransmits =
      static_cast<unsigned long>(reg.counter_total(ids.fault_retransmits));
  const unsigned long stalls =
      static_cast<unsigned long>(reg.counter_total(ids.fault_stalls));
  const unsigned long timeouts =
      static_cast<unsigned long>(reg.counter_total(ids.mon_gather_timeouts));
  const unsigned long fallbacks =
      static_cast<unsigned long>(reg.counter_total(ids.reorder_identity));

  std::printf("CG class S on %d scattered ranks, one monitored iteration\n",
              nranks);
  std::printf("rank %d stalls for 1.5 s of wall time at virtual t=%.6f s\n",
              victim, stall_at);
  std::printf("reorder fell back to identity: %s\n",
              fell_back ? "yes" : "NO (unexpected)");
  std::printf("fallback reason: %s\n",
              reason.empty() ? "(none)" : reason.c_str());
  std::printf("permutation is the identity: %s\n", identity ? "yes" : "NO");
  std::printf("application finished anyway: %d iterations, residual %.3e\n",
              final_res.iterations, final_res.residual_norm2);
  std::printf("\ntelemetry: %llu retransmits (%lu on rank 0 via pvar), "
              "%lu stalls, %lu gather timeouts, %lu identity fallbacks\n",
              static_cast<unsigned long long>(retransmits), my_retransmits,
              stalls, timeouts, fallbacks);
  std::printf("exported %s, %s, %s (try: monview %s %s)\n", trace_path,
              metrics_path, spans_path, metrics_path, spans_path);
  return fell_back && identity && retransmits > 0 && stalls == 1 ? 0 : 1;
}
