// Rank reordering when a rank dies mid-protocol — and recovery after it.
//
// The Figure-1 loop (monitor one iteration, gather the byte matrix,
// TreeMatch, remap) assumes every rank contributes its monitoring row. This
// example kills one rank for real: right after its last monitored CG
// iteration completes, the rank crashes. The gather inside reorder_ranks
// sees the dead row immediately (no timeout stall — the engine knows the
// rank is dead), the root receives a partial matrix (MPI_M_PARTIAL_DATA),
// and reorder_ranks falls back to the identity permutation with a readable
// diagnostic instead of hanging or remapping on garbage.
//
// Then, instead of limping along on a communicator with a corpse in it,
// the survivors *recover*: comm_shrink agrees on the dead set and returns
// a survivors-only communicator with deterministic renumbering, a fresh
// monitored session opens on it, and the application finishes its solve on
// 15 ranks. The post-shrink allgather returns MPI_M_SUCCESS with full
// survivor rows — no sentinels, no timeouts. See docs/FAULTS.md, Recovery.
//
// On top of the crash, every link drops ~5% of its transmissions (with
// sender retransmit), and the engine's telemetry records the whole story:
// the run exports a Chrome trace, a metrics CSV for `monview`, and the
// retransmit counter is read back through an MPI_T pvar handle resolved by
// name.
//
// Run 1 (no rank fault) only measures the virtual time at which the victim
// finishes the monitored iteration; run 2 replants that instant as the
// crash trigger. Run 3 repeats run 2 bit for bit: crash detection, shrink
// and recovery are pure functions of virtual time, so the final clocks of
// the two faulty runs must agree exactly.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "apps/cg.h"
#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "minimpi/ft.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "mpit/pvar.h"
#include "mpit/runtime.h"
#include "reorder/reorder.h"
#include "telemetry/export.h"

int main() {
  using namespace mpim;

  const int nranks = 16;
  const int victim = 5;
  const apps::CgConfig cg = apps::cg_class('S');

  // Same seed in every run: identical link-fault draws, identical clocks.
  auto make_plan = [&](bool with_crash, double crash_at) {
    auto plan = std::make_shared<fault::FaultPlan>(/*seed=*/2026);
    fault::LinkFault drop;
    drop.drop_prob = 0.05;       // any link, ~5% per attempt
    drop.max_retransmits = 8;    // loss needs 9 straight drops (~2e-12)
    drop.retransmit_backoff_s = 1e-7;
    plan->add(drop);
    if (with_crash)
      plan->add(fault::RankFault{.rank = victim, .crash_at_s = crash_at});
    return plan;
  };

  auto make_cfg = [&](std::shared_ptr<fault::FaultPlan> plan) {
    auto cost = net::CostModel::plafrim_like(2);
    mpi::EngineConfig cfg{
        .cost_model = cost,
        .placement = topo::round_robin_placement(nranks, cost.topology())};
    cfg.fault_plan = std::move(plan);
    return cfg;
  };

  // --- Run 1: measure when the victim finishes the monitored iteration ---
  // Monitored exactly like run 2, so the virtual clocks agree bit for bit.
  double crash_at = 0.0;
  {
    Sim sim(make_cfg(make_plan(false, 0.0)));
    sim.run([&](mpi::Ctx& ctx) {
      mon::Environment env;
      MPI_M_msid id;
      mon::check_rc(MPI_M_start(ctx.world(), &id), "MPI_M_start");
      apps::CgSolver solver(ctx.world(), cg);
      solver.iteration();
      mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
      mon::check_rc(MPI_M_free(id), "MPI_M_free");
      if (ctx.world_rank() == victim) crash_at = ctx.now();
    });
  }

  // --- Runs 2 and 3: same program, but the victim dies at that instant ---
  bool fell_back = false;
  std::string reason;
  bool identity = false;
  int shrunk_size = 0;
  bool post_gather_ok = false;
  unsigned long my_retransmits = 0;
  apps::CgResult final_res;
  std::vector<double> faulty_clocks[2];
  std::unique_ptr<Sim> last;
  for (int rep = 0; rep < 2; ++rep) {
    auto sim = std::make_unique<Sim>(make_cfg(make_plan(true, crash_at)));
    sim->engine().telemetry().set_enabled(true);
    sim->run([&](mpi::Ctx& ctx) {
      const mpi::Comm world = ctx.world();
      mpi::comm_set_errhandler(world, mpi::ErrMode::ret);
      mon::Environment env;
      mon::check_rc(MPI_M_set_gather_timeout(0.25),
                    "MPI_M_set_gather_timeout");

      MPI_M_msid id;
      mon::check_rc(MPI_M_start(world, &id), "MPI_M_start");
      apps::CgSolver solver(world, cg);
      solver.iteration();
      mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");

      // The victim is dead (or dying) here; the gather inside
      // reorder_ranks short-circuits on its row and the root falls back
      // to the identity mapping on the original communicator.
      const auto res = reorder::reorder_ranks(id, world);
      mon::check_rc(MPI_M_free(id), "MPI_M_free");

      // Recovery: agree on the dead set, renumber the survivors, and
      // carry on with a fresh monitored session on the shrunk comm.
      const mpi::Comm alive = mpi::comm_shrink(world);
      MPI_M_msid id2;
      mon::check_rc(MPI_M_start(alive, &id2), "MPI_M_start(alive)");
      apps::CgSolver rest(alive, cg);
      const apps::CgResult done = rest.solve();
      mon::check_rc(MPI_M_suspend(id2), "MPI_M_suspend(alive)");

      // Post-shrink gather: full survivor rows, rc == MPI_M_SUCCESS, and
      // not a single sentinel — the dead rank is simply not a member.
      const int n = mpi::comm_size(alive);
      std::vector<unsigned long> counts(
          static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
      const int rc = MPI_M_allgather_data(id2, counts.data(),
                                          MPI_M_DATA_IGNORE, MPI_M_ALL_COMM);
      bool clean = rc == MPI_M_SUCCESS;
      for (unsigned long v : counts) clean = clean && v != MPI_M_DATA_MISSING;
      mon::check_rc(MPI_M_free(id2), "MPI_M_free(alive)");

      if (mpi::comm_rank(alive) == 0) {
        fell_back = res.fell_back;
        reason = res.fallback_reason;
        identity =
            res.k == reorder::identity_k(static_cast<std::size_t>(nranks));
        shrunk_size = n;
        post_gather_ok = clean;
        final_res = done;

        // Telemetry through the portable front: resolve the pvar by name
        // and read the calling rank's retransmit count.
        mpit::Runtime& rt = mpit::Runtime::of(ctx.engine());
        const int idx =
            mpit::pvar_index_by_name("mpim_fault_retransmits_total");
        const int sid = rt.session_create();
        const int h = rt.handle_alloc(sid, idx, alive);
        rt.handle_read(sid, h, &my_retransmits, 1);
        rt.session_free(sid);
      }
    });
    faulty_clocks[rep] = sim->engine().final_clocks();
    last = std::move(sim);
  }
  const bool clocks_match = faulty_clocks[0] == faulty_clocks[1];
  const bool victim_dead = last->engine().rank_dead(victim);

  // Export what telemetry saw: Chrome trace (collective spans and their
  // p2p decomposition children) + the metrics CSV monview renders.
  const telemetry::Hub& hub = last->engine().telemetry();
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const char* trace_path = "results/faulty_reorder_trace.json";
  const char* metrics_path = "results/faulty_reorder_metrics.csv";
  const char* spans_path = "results/faulty_reorder_spans.csv";
  if (!ec) {
    telemetry::write_chrome_trace_file(hub, trace_path);
    telemetry::write_metrics_csv_file(hub, metrics_path);
    telemetry::write_spans_csv_file(hub, spans_path);
  }

  const auto& reg = hub.registry();
  const auto& ids = hub.ids();
  const unsigned long retransmits =
      static_cast<unsigned long>(reg.counter_total(ids.fault_retransmits));
  const unsigned long timeouts =
      static_cast<unsigned long>(reg.counter_total(ids.mon_gather_timeouts));
  const unsigned long dead_skips =
      static_cast<unsigned long>(reg.counter_total(ids.mon_dead_skips));
  const unsigned long fallbacks =
      static_cast<unsigned long>(reg.counter_total(ids.reorder_identity));

  std::printf("CG class S on %d scattered ranks, one monitored iteration\n",
              nranks);
  std::printf("rank %d crashes at virtual t=%.6f s\n", victim, crash_at);
  std::printf("reorder fell back to identity: %s\n",
              fell_back ? "yes" : "NO (unexpected)");
  std::printf("fallback reason: %s\n",
              reason.empty() ? "(none)" : reason.c_str());
  std::printf("permutation is the identity: %s\n", identity ? "yes" : "NO");
  std::printf("survivors shrank world to %d ranks and finished: %d "
              "iterations, residual %.3e\n",
              shrunk_size, final_res.iterations, final_res.residual_norm2);
  std::printf("post-shrink allgather: %s\n",
              post_gather_ok ? "MPI_M_SUCCESS, full survivor rows"
                             : "FAILED (unexpected)");
  std::printf("faulty-run clocks bit-identical across reruns: %s\n",
              clocks_match ? "yes" : "NO");
  std::printf("\ntelemetry: %llu retransmits (%lu on rank 0 via pvar), "
              "%lu gather timeouts, %lu dead-row skips, %lu identity "
              "fallbacks\n",
              static_cast<unsigned long long>(retransmits), my_retransmits,
              timeouts, dead_skips, fallbacks);
  std::printf("exported %s, %s, %s (try: monview %s %s)\n", trace_path,
              metrics_path, spans_path, metrics_path, spans_path);
  return fell_back && identity && victim_dead &&
                 shrunk_size == nranks - 1 && post_gather_ok &&
                 clocks_match && retransmits > 0
             ? 0
             : 1;
}
