// Rank reordering when a rank goes quiet mid-protocol.
//
// The Figure-1 loop (monitor one iteration, gather the byte matrix,
// TreeMatch, remap) assumes every rank contributes its monitoring row. This
// example plants a deterministic stall on one rank: right after its last
// monitored CG iteration completes, the rank freezes for 1.5 s of host wall
// time. The gather's recovery timeout fires first, the root receives a
// partial matrix (MPI_M_PARTIAL_DATA), and reorder_ranks falls back to the
// identity permutation with a readable diagnostic instead of hanging or
// remapping on garbage. The application then finishes its solve untouched.
//
// Run 1 (fault-free) only measures the virtual time at which the victim
// finishes the monitored iteration; run 2 replants that instant as the
// stall trigger, so the demo is bit-deterministic run to run.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/cg.h"
#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "reorder/reorder.h"

int main() {
  using namespace mpim;

  const int nranks = 16;
  const int victim = 5;
  const apps::CgConfig cg = apps::cg_class('S');

  auto make_cfg = [&](std::shared_ptr<fault::FaultPlan> plan) {
    auto cost = net::CostModel::plafrim_like(2);
    mpi::EngineConfig cfg{
        .cost_model = cost,
        .placement = topo::round_robin_placement(nranks, cost.topology())};
    cfg.fault_plan = std::move(plan);
    return cfg;
  };

  // --- Run 1: measure when the victim finishes the monitored iteration ---
  // Monitored exactly like run 2, so the virtual clocks agree bit for bit.
  double stall_at = 0.0;
  {
    Sim sim(make_cfg(nullptr));
    sim.run([&](mpi::Ctx& ctx) {
      mon::Environment env;
      MPI_M_msid id;
      mon::check_rc(MPI_M_start(ctx.world(), &id), "MPI_M_start");
      apps::CgSolver solver(ctx.world(), cg);
      solver.iteration();
      mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
      mon::check_rc(MPI_M_free(id), "MPI_M_free");
      if (ctx.world_rank() == victim) stall_at = ctx.now();
    });
  }

  // --- Run 2: same program, but the victim stalls at that very instant ---
  // The stall is pure wall time (no virtual time), so it races the gather's
  // wall-clock recovery timeout -- exactly what a hung rank looks like.
  auto plan = std::make_shared<fault::FaultPlan>(/*seed=*/2026);
  plan->add(fault::RankFault{.rank = victim,
                             .stall_at_s = stall_at,
                             .stall_virtual_s = 0.0,
                             .stall_wall_s = 1.5});

  bool fell_back = false;
  std::string reason;
  bool identity = false;
  apps::CgResult final_res;
  {
    Sim sim(make_cfg(plan));
    sim.run([&](mpi::Ctx& ctx) {
      const mpi::Comm world = ctx.world();
      mon::Environment env;
      mon::check_rc(MPI_M_set_gather_timeout(0.25),
                    "MPI_M_set_gather_timeout");

      MPI_M_msid id;
      mon::check_rc(MPI_M_start(world, &id), "MPI_M_start");
      apps::CgSolver solver(world, cg);
      solver.iteration();
      mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");

      // The victim is asleep here; the gather inside reorder_ranks times
      // out on its row and the root falls back to the identity mapping.
      const auto res = reorder::reorder_ranks(id, world);
      mon::check_rc(MPI_M_free(id), "MPI_M_free");

      // The fallback keeps the original communicator, so the application
      // simply carries on -- including the recovered victim.
      apps::CgSolver rest(res.opt_comm, cg);
      const apps::CgResult done = rest.solve();

      if (mpi::comm_rank(res.opt_comm) == 0) {
        fell_back = res.fell_back;
        reason = res.fallback_reason;
        identity =
            res.k == reorder::identity_k(static_cast<std::size_t>(nranks));
        final_res = done;
      }
    });
  }

  std::printf("CG class S on %d scattered ranks, one monitored iteration\n",
              nranks);
  std::printf("rank %d stalls for 1.5 s of wall time at virtual t=%.6f s\n",
              victim, stall_at);
  std::printf("reorder fell back to identity: %s\n",
              fell_back ? "yes" : "NO (unexpected)");
  std::printf("fallback reason: %s\n",
              reason.empty() ? "(none)" : reason.c_str());
  std::printf("permutation is the identity: %s\n", identity ? "yes" : "NO");
  std::printf("application finished anyway: %d iterations, residual %.3e\n",
              final_res.iterations, final_res.residual_norm2);
  return fell_back && identity ? 0 : 1;
}
