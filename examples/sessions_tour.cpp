// A tour of the session mechanism: overlapping and nested sessions,
// sub-communicator sessions that see cross-communicator traffic, kind
// filters, reset, the ALL_MSID broadcast id and the Fortran binding.
#include <cstdio>

#include "minimpi/api.h"
#include "minimpi/osc.h"
#include "mpimon/fortran.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/sim.h"

namespace {

void show(const char* what, unsigned long p2p, unsigned long coll,
          unsigned long osc) {
  std::printf("%-46s p2p=%-8lu coll=%-8lu osc=%lu\n", what, p2p, coll, osc);
}

unsigned long total(MPI_M_msid id, int nranks, int flags) {
  std::vector<unsigned long> row(static_cast<std::size_t>(nranks));
  MPI_M_get_data(id, MPI_M_DATA_IGNORE, row.data(), flags);
  unsigned long acc = 0;
  for (unsigned long v : row) acc += v;
  return acc;
}

unsigned long count_total(MPI_M_msid id, int nranks, int flags) {
  std::vector<unsigned long> row(static_cast<std::size_t>(nranks));
  MPI_M_get_data(id, row.data(), MPI_M_DATA_IGNORE, flags);
  unsigned long acc = 0;
  for (unsigned long v : row) acc += v;
  return acc;
}

}  // namespace

int main() {
  using namespace mpim;
  const int nranks = 8;
  Sim sim = Sim::plafrim(2, nranks);

  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    const int r = mpi::comm_rank(world);
    MPI_M_init();

    // --- overlapping sessions and kind filters --------------------------
    MPI_M_msid outer, inner;
    MPI_M_start(world, &outer);

    // p2p ring traffic (seen only by `outer`).
    std::vector<std::byte> buf(1000);
    mpi::send(buf.data(), buf.size(), mpi::Type::Byte, (r + 1) % nranks, 0,
              world);
    mpi::recv(buf.data(), buf.size(), mpi::Type::Byte,
              (r + nranks - 1) % nranks, 0, world);

    MPI_M_start(world, &inner);  // sessions overlap freely
    mpi::barrier(world);         // collective traffic: both sessions see it

    // one-sided traffic: both sessions see it under MPI_M_OSC_ONLY
    long cell = r;
    mpi::Win win = mpi::Win::create(&cell, sizeof cell, world);
    win.fence();
    const long one = 1;
    win.accumulate(&one, 1, mpi::Type::Long, mpi::Op::Sum, 0, 0);
    win.fence();

    MPI_M_suspend(MPI_M_ALL_MSID);  // suspend both at once

    if (r == 0) {
      std::printf("--- per-kind bytes sent by rank 0 ---\n");
      show("outer session (ring + barrier + accumulate):",
           total(outer, nranks, MPI_M_P2P_ONLY),
           total(outer, nranks, MPI_M_COLL_ONLY),
           total(outer, nranks, MPI_M_OSC_ONLY));
      show("inner session (barrier + accumulate only):",
           total(inner, nranks, MPI_M_P2P_ONLY),
           total(inner, nranks, MPI_M_COLL_ONLY),
           total(inner, nranks, MPI_M_OSC_ONLY));
      // A barrier's messages carry zero bytes (the paper notes collectives
      // may generate zero-length point-to-point messages): count them.
      std::printf("barrier decomposition, message *count* at rank 0: %lu\n",
                  count_total(inner, nranks, MPI_M_COLL_ONLY));
    }

    // --- reset + continue: watch a second phase only ---------------------
    MPI_M_reset(outer);
    MPI_M_continue(outer);
    mpi::send(buf.data(), 42, mpi::Type::Byte, (r + 1) % nranks, 1, world);
    mpi::recv(buf.data(), 42, mpi::Type::Byte, (r + nranks - 1) % nranks, 1,
              world);
    MPI_M_suspend(outer);
    if (r == 0)
      std::printf("outer after reset: p2p bytes = %lu (only the 42-byte "
                  "phase)\n",
                  total(outer, nranks, MPI_M_P2P_ONLY));

    // --- a session on the even/odd split sees WORLD traffic --------------
    const mpi::Comm parity = mpi::comm_split(world, r % 2, r);
    MPI_M_msid psid;
    MPI_M_start(parity, &psid);
    if (r == 0) {
      int v = 7;  // to world rank 2 == parity rank 1, over WORLD
      mpi::send(&v, 1, mpi::Type::Int, 2, 0, world);
    } else if (r == 2) {
      int v;
      mpi::recv(&v, 1, mpi::Type::Int, 0, 0, world);
    }
    MPI_M_suspend(psid);
    if (r == 0)
      std::printf("parity session saw the WORLD message 0->2: %lu bytes\n",
                  total(psid, parity.size(), MPI_M_P2P_ONLY));

    // --- the Fortran binding ------------------------------------------------
    int ierr = -1, fmsid = -1;
    const int fcomm = mpi_m_register_comm_f(world);
    mpi_m_start_(&fcomm, &fmsid, &ierr);
    mpi::barrier(world);
    mpi_m_suspend_(&fmsid, &ierr);
    int array_size = 0;
    mpi_m_get_info_(&fmsid, MPI_M_INT_IGNORE, &array_size, &ierr);
    if (r == 0)
      std::printf("fortran shim: start/suspend/get_info ierr=%d, "
                  "array_size=%d\n",
                  ierr, array_size);
    mpi_m_free_(&fmsid, &ierr);

    MPI_M_free(MPI_M_ALL_MSID);
    MPI_M_finalize();
  });
  return 0;
}
