// Quickstart: the paper's Listing 2 end to end.
//
// "Produces a file that describes all point-to-point messages used to
// implement MPI_Barrier." -- this is the smallest useful program of the
// library: create a session, run one collective, suspend, flush, free.
//
// Build & run:   ./examples/quickstart
// Output:        barrier_counts.0.prof / barrier_sizes.0.prof (cwd)
#include <cstdio>

#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/sim.h"

int main() {
  using namespace mpim;

  // A 2-node, 48-core PlaFRIM-like machine with 8 MPI ranks.
  Sim sim = Sim::plafrim(/*nodes=*/2, /*nranks=*/8);

  sim.run([](mpi::Ctx& ctx) {
    // --- Listing 2 -----------------------------------------------------
    MPI_M_init();

    MPI_M_msid id;
    MPI_M_start(ctx.world(), &id);

    mpi::barrier(ctx.world());

    MPI_M_suspend(id);
    MPI_M_rootflush(id, 0, "barrier", MPI_M_COLL_ONLY);
    MPI_M_free(id);

    MPI_M_finalize();
    // ---------------------------------------------------------------------
  });

  std::puts(
      "wrote barrier_counts.0.prof and barrier_sizes.0.prof:\n"
      "each row i lists how many messages (resp. bytes) rank i sent to\n"
      "every peer while MPI_Barrier executed -- the dissemination pattern\n"
      "the barrier decomposes into, visible only below the collective\n"
      "(an API-level profiler would show an empty matrix).");
  return 0;
}
