// Continuous monitoring of a faulty run, end to end: the streaming
// aggregation plane watches a ring exchange while a link degrades, a rank
// dies, and the survivors recover -- and its run-end findings name the
// degraded link, the affected epoch windows, and the recovery reactions
// that followed, correlated across layers that record independently.
//
// The timeline (virtual seconds, epoch_s = 5e-4):
//
//   t in [0.002, 0.006)   link 0->1 degraded x8 (plus ~5% drop with sender
//                         retransmit all run) -- the netmodel layer
//   t = 0.009             rank 6 crashes -- the fault layer
//   t ~ 0.012             survivors dead-skip the hole, shrink the world,
//                         rebind the monitored session, keep exchanging,
//                         and run a TreeMatch reorder -- the mpimon layer
//
// A windowed snapshot sampler streams introspection frames into the plane
// throughout. At run end the correlator joins fault-plan ground truth, NIC
// transmit counters, retransmit/epoch series, frames, and the recovery
// event lane into findings, all of it also appended per epoch to a JSONL
// stream a live dashboard can tail:
//
//   monview --live results/stream_monitor.jsonl --once
//
// The same workload runs twice, with and without the plane attached: the
// final virtual clocks must be bit-identical (monitoring never charges
// virtual time). Exit status is non-zero if any of that fails.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "minimpi/ft.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "obsplane/plane.h"
#include "reorder/reorder.h"

namespace {

using namespace mpim;

constexpr int kRanks = 8;
constexpr int kVictim = 6;
constexpr double kEpochS = 5e-4;
constexpr double kDegradeFrom = 2e-3;
constexpr double kDegradeUntil = 6e-3;
constexpr double kCrashAt = 9e-3;

mpi::EngineConfig make_cfg() {
  auto cost = net::CostModel::plafrim_like(2);
  // Ranks alternate nodes so every ring hop crosses the node boundary:
  // NIC transmit counters only see inter-node bytes, and the correlator
  // reads per-node transmit rates from them for throughput-dip evidence.
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::bynode_placement(kRanks, cost.topology())};
  auto plan = std::make_shared<fault::FaultPlan>(/*seed=*/7);
  fault::LinkFault lf;
  lf.src = 0;
  lf.dst = 1;
  lf.drop_prob = 0.3;
  lf.max_retransmits = 8;
  lf.retransmit_backoff_s = 1e-7;
  lf.degrade_from_s = kDegradeFrom;
  lf.degrade_until_s = kDegradeUntil;
  lf.degrade_factor = 8.0;
  plan->add(lf);
  plan->add(fault::RankFault{.rank = kVictim, .crash_at_s = kCrashAt});
  cfg.fault_plan = std::move(plan);
  return cfg;
}

/// The monitored faulty workload. With `with_reorder` false it is a pure
/// function of virtual time and reproduces bit for bit; the TreeMatch step
/// charges its *host* CPU time to rank 0's clock (the paper's t2), so the
/// run that exercises it is excluded from the clock-identity comparison.
void workload(mpi::Ctx& ctx, bool with_reorder) {
  const mpi::Comm world = ctx.world();
  mpi::comm_set_errhandler(world, mpi::ErrMode::ret);
  const int me = ctx.world_rank();
  const int n = mpi::comm_size(world);

  mon::Environment env;
  mon::check_rc(MPI_M_set_gather_timeout(0.25), "MPI_M_set_gather_timeout");
  MPI_M_msid id = -1;
  mon::check_rc(MPI_M_start(world, &id), "MPI_M_start");
  mon::check_rc(MPI_M_snapshot_start(id, 1e-3, 256, MPI_M_ALL_COMM),
                "MPI_M_snapshot_start");

  // Ring exchange through the degradation window (a fixed iteration count
  // keeps the coupled ring aligned; every rank is still alive here -- the
  // loop ends around t~4.5e-3, well before the crash).
  std::vector<char> sbuf(4096, 1), rbuf(4096);
  for (int it = 0; it < 20; ++it) {
    mpi::compute(2e-4);
    mpi::sendrecv(sbuf.data(), sbuf.size(), mpi::Type::Byte, (me + 1) % n, 0,
                  rbuf.data(), rbuf.size(), (me + n - 1) % n, 0, world);
  }
  // A compute phase carries every clock past the crash instant; the victim
  // dies mid-compute at kCrashAt and never returns from this call.
  mpi::compute(6e-3);

  // Recovery: the world-bound gather dead-skips the victim's row, the
  // survivors shrink, the session rebinds onto the survivor communicator,
  // records more traffic, and a TreeMatch reorder runs on the full rows.
  mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
  std::vector<unsigned long> rows(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  MPI_M_allgather_data(id, rows.data(), MPI_M_DATA_IGNORE, MPI_M_ALL_COMM);

  const mpi::Comm alive = mpi::comm_shrink(world);
  mon::check_rc(MPI_M_rebind(id, alive), "MPI_M_rebind");
  mon::check_rc(MPI_M_continue(id), "MPI_M_continue");
  const int m = mpi::comm_rank(alive);
  const int k = mpi::comm_size(alive);
  for (int it = 0; it < 8; ++it) {
    mpi::compute(2e-4);
    mpi::sendrecv(sbuf.data(), sbuf.size(), mpi::Type::Byte, (m + 1) % k, 1,
                  rbuf.data(), rbuf.size(), (m + k - 1) % k, 1, alive);
  }
  mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend(alive)");
  if (with_reorder) reorder::reorder_ranks(id, alive);
  mon::check_rc(MPI_M_free(id), "MPI_M_free");
}

bool has_line(const std::string& path, const std::string& needle) {
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line))
    if (line.find(needle) != std::string::npos) return true;
  return false;
}

}  // namespace

int main() {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string stream_path = "results/stream_monitor.jsonl";
  const std::string prom_path = "results/stream_monitor.prom";

  // --- Runs 1+2: clock identity, plane off vs on --------------------------
  // Reorder excluded: its TreeMatch step charges host CPU time (see
  // workload()), everything else is a pure function of virtual time.
  Sim bare(make_cfg());
  bare.run([](mpi::Ctx& ctx) { workload(ctx, false); });
  const std::vector<double> base_clocks = bare.engine().final_clocks();

  Sim checked(make_cfg());
  auto check_plane = obsplane::Plane::attach(checked.engine(),
                                             {.epoch_s = kEpochS});
  checked.run([](mpi::Ctx& ctx) { workload(ctx, false); });
  const bool clocks_match = checked.engine().final_clocks() == base_clocks;

  // --- Run 3: full workload, plane attached and streaming -----------------
  Sim monitored(make_cfg());
  obsplane::PlaneConfig pcfg;
  pcfg.job = "stream_monitor";
  pcfg.epoch_s = kEpochS;
  pcfg.stream_path = stream_path;
  pcfg.prom_path = prom_path;
  auto plane = obsplane::Plane::attach(monitored.engine(), pcfg);
  monitored.run([](mpi::Ctx& ctx) { workload(ctx, true); });

  const bool victim_dead = monitored.engine().rank_dead(kVictim);

  // --- What did the plane conclude? ---------------------------------------
  bool link_finding = false;
  bool link_triggered = false;
  bool crash_finding = false;
  const auto findings = plane->findings();
  for (const auto& f : findings) {
    if (f.kind == "link_degraded" && f.subject == "link 0->1") {
      link_finding = true;
      link_triggered = f.text.find("triggered:") != std::string::npos;
    }
    if (f.kind == "rank_crash" &&
        f.subject == "rank " + std::to_string(kVictim))
      crash_finding = true;
    std::printf("finding [%s] epochs %ld..%ld: %s\n", f.kind.c_str(), f.e0,
                f.e1, f.text.c_str());
  }

  const bool stream_complete = has_line(stream_path, "\"type\":\"run_start\"") &&
                               has_line(stream_path, "\"type\":\"epoch_end\"") &&
                               has_line(stream_path, "\"what\":\"crash\"") &&
                               has_line(stream_path, "\"type\":\"run_end\"");
  const auto& hub = monitored.engine().telemetry();
  const unsigned long retransmits = static_cast<unsigned long>(
      hub.registry().counter_total(hub.ids().fault_retransmits));

  std::printf("\nring exchange on %d ranks, link 0->1 degraded x8 in "
              "t=[%g, %g)s, rank %d crashed at t=%gs\n",
              kRanks, kDegradeFrom, kDegradeUntil, kVictim, kCrashAt);
  std::printf("virtual clocks bit-identical with plane on/off: %s\n",
              clocks_match ? "yes" : "NO");
  std::printf("plane: %llu events ingested, %llu dropped, %llu epochs, "
              "%zu findings, %lu retransmits\n",
              static_cast<unsigned long long>(plane->events_ingested()),
              static_cast<unsigned long long>(plane->events_dropped()),
              static_cast<unsigned long long>(plane->epochs_emitted()),
              findings.size(), retransmits);
  std::printf("degraded-link finding names the link and its windows: %s; "
              "recovery events listed: %s\n",
              link_finding ? "yes" : "NO", link_triggered ? "yes" : "NO");
  std::printf("crash finding for rank %d: %s\n", kVictim,
              crash_finding ? "yes" : "NO");
  std::printf("stream %s complete (run_start..run_end with crash event): %s\n",
              stream_path.c_str(), stream_complete ? "yes" : "NO");
  std::printf("try: monview --live %s --once\n", stream_path.c_str());

  return clocks_match && victim_dead && link_finding && link_triggered &&
                 crash_finding && stream_complete && retransmits > 0
             ? 0
             : 1;
}
