// Phase-triggered rank reordering of an iterative stencil application --
// the paper's Figure-1 algorithm driven by the snapshot phase detector
// instead of a hard-coded "reorder after the first sweep" -- now explained
// by the causal critical-path profiler.
//
// The ranks start deliberately scattered across the nodes (the mpirun
// round-robin-by-node default). One monitoring session with a windowed
// snapshot runs across the whole execution; between computation chunks the
// application calls reorder::reorder_on_phase, which only pays for the
// TreeMatch step when the detector has flagged a new phase boundary. The
// first hook (mid-steady-state) is a cheap no-op; after a compute-only lull
// the resuming traffic marks a boundary and the second hook reorders (it
// also consults the critpath mismatch trigger, the profiler's reorder
// feed). Communication time before/after is printed.
//
// One rank of the measured sweep is made artificially slow; afterwards the
// profiler's blame report must (a) sum rank blame shares to the end-to-end
// communication time within 1%, and (b) name the injected rank as the
// dominant cause. The report is written as results/stencil_critpath.csv for
// `profview --critical-path`.
#include <cstdio>
#include <cstdlib>

#include "apps/halo.h"
#include "critpath/critpath.h"
#include "minimpi/api.h"
#include "mpimon/critpath_attach.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "reorder/reorder.h"

int main() {
  using namespace mpim;

  const int nranks = 48;
  const int slow_rank = 17;           // injected straggler (world rank)
  const double slow_extra_s = 2e-4;   // extra compute per exchange

  auto cost = net::CostModel::plafrim_like(2);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::bynode_placement(nranks, cost.topology())};
  cfg.nic_contention = true;
  Sim sim(std::move(cfg));

  // The profiler attaches before the run and observes everything; capture
  // never charges virtual time, so clocks match a profiler-free build.
  std::shared_ptr<critpath::Profiler> prof =
      mon::attach_critpath(sim.engine());

  const apps::HaloConfig warmup{/*local_n=*/128, /*iters=*/8, /*seed=*/3};
  apps::HaloConfig sweep{/*local_n=*/128, /*iters=*/20, /*seed=*/3};
  sweep.slow_rank = slow_rank;
  sweep.slow_extra_s = slow_extra_s;
  apps::HaloConfig after_sweep = sweep;
  after_sweep.slow_rank = -1;  // comm ranks move; keep the rerun clean
  after_sweep.slow_extra_s = 0.0;

  double before_comm = 0, after_comm = 0, checksum_before = 0,
         checksum_after = 0;
  bool hook1_fired = true, hook2_fired = false;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    mon::Environment env;

    MPI_M_msid id;
    mon::check_rc(MPI_M_start(world, &id), "MPI_M_start");
    mon::check_rc(MPI_M_snapshot_start(id, /*window_s=*/1e-3,
                                       /*max_frames=*/512, MPI_M_ALL_COMM),
                  "MPI_M_snapshot_start");
    int seen_boundaries = 0;

    // Chunk 1: steady halo traffic. The hook afterwards sees no phase
    // boundary (the pattern never changed), so no TreeMatch step runs.
    apps::run_halo(world, warmup);
    bool t1 = false;
    reorder::reorder_on_phase(id, world, &seen_boundaries, &t1);

    // A compute-only lull, then the slow-rank sweep resumes the halo: the
    // silent windows and the resuming traffic are what the detector flags.
    mpi::compute(0.05);
    const apps::HaloResult base = apps::run_halo(world, sweep);

    // Chunk 2 hook: a new boundary was flagged, so the full Figure-1 step
    // runs on everything monitored so far. The hook also consults the
    // profiler's since-mark mismatch/wait totals (the critpath feed).
    bool t2 = false;
    reorder::PhaseReorderOptions opts;
    opts.use_critpath_mismatch = true;
    const reorder::ReorderResult res =
        reorder::reorder_on_phase(id, world, &seen_boundaries, &t2, opts);

    // Chunk 3: the same kernel on the optimized communicator.
    const apps::HaloResult better = apps::run_halo(res.opt_comm, after_sweep);

    mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
    mon::check_rc(MPI_M_snapshot_stop(id), "MPI_M_snapshot_stop");
    mon::check_rc(MPI_M_free(id), "MPI_M_free");

    if (ctx.world_rank() == 0) {
      hook1_fired = t1;
      hook2_fired = t2;
      before_comm = base.comm_time_s;
      checksum_before = base.checksum;
    }
    if (mpi::comm_rank(res.opt_comm) == 0) {
      after_comm = better.comm_time_s;
      checksum_after = better.checksum;
    }
  });

  // Post-run: where did communication time go?
  const critpath::BlameReport& rep = prof->report();
  unsigned long long blame_sum = 0;
  for (const auto& r : rep.ranks) blame_sum += r.blame_ns;
  const double total = static_cast<double>(rep.total_comm_ns);
  const double err =
      total > 0 ? std::abs(static_cast<double>(blame_sum) - total) / total
                : 1.0;
  const bool blame_ok = rep.valid && err <= 0.01;
  const bool dominant_ok = rep.dominant_rank == slow_rank;
  // Same convention as faulty_reorder: run from the repo root, artifacts
  // land in results/ (write_csv is best-effort when the dir is absent).
  const char* csv_path = "results/stencil_critpath.csv";
  prof->write_csv(csv_path);

  std::printf("2-D Jacobi on %d scattered ranks, %d sweeps per phase\n",
              nranks, sweep.iters);
  std::printf("hook 1 (steady state) triggered: %s (expected no)\n",
              hook1_fired ? "yes" : "no");
  std::printf("hook 2 (after lull)   triggered: %s (expected yes)\n",
              hook2_fired ? "yes" : "no");
  std::printf("communication time before reordering: %.3f ms\n",
              before_comm * 1e3);
  std::printf("communication time after  reordering: %.3f ms (%.2fx)\n",
              after_comm * 1e3, before_comm / after_comm);
  std::printf("checksums identical: %s\n",
              checksum_before == checksum_after ? "yes" : "NO");
  std::printf("blame shares sum to comm time: %.4f%% off (expected <= 1%%)\n",
              100.0 * err);
  std::printf("dominant blamed rank: %d (injected straggler: %d), class %s\n",
              rep.dominant_rank, slow_rank,
              critpath::wait_class_name(rep.dominant_class));
  std::printf("critical path: %zu segments -> %s "
              "(render with profview --critical-path)\n",
              rep.path.size(), csv_path);
  return hook2_fired && !hook1_fired && checksum_before == checksum_after &&
                 blame_ok && dominant_ok
             ? 0
             : 1;
}
