// Phase-triggered rank reordering of an iterative stencil application --
// the paper's Figure-1 algorithm driven by the snapshot phase detector
// instead of a hard-coded "reorder after the first sweep".
//
// The ranks start deliberately scattered across the nodes (the mpirun
// round-robin-by-node default). One monitoring session with a windowed
// snapshot runs across the whole execution; between computation chunks the
// application calls reorder::reorder_on_phase, which only pays for the
// TreeMatch step when the detector has flagged a new phase boundary. The
// first hook (mid-steady-state) is a cheap no-op; after a compute-only lull
// the resuming traffic marks a boundary and the second hook reorders.
// Communication time before/after is printed.
#include <cstdio>

#include "apps/halo.h"
#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "reorder/reorder.h"

int main() {
  using namespace mpim;

  const int nranks = 48;
  auto cost = net::CostModel::plafrim_like(2);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::bynode_placement(nranks, cost.topology())};
  cfg.nic_contention = true;
  Sim sim(std::move(cfg));

  const apps::HaloConfig warmup{/*local_n=*/128, /*iters=*/8, /*seed=*/3};
  const apps::HaloConfig sweep{/*local_n=*/128, /*iters=*/20, /*seed=*/3};

  double before_comm = 0, after_comm = 0, checksum_before = 0,
         checksum_after = 0;
  bool hook1_fired = true, hook2_fired = false;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    mon::Environment env;

    MPI_M_msid id;
    mon::check_rc(MPI_M_start(world, &id), "MPI_M_start");
    mon::check_rc(MPI_M_snapshot_start(id, /*window_s=*/1e-3,
                                       /*max_frames=*/512, MPI_M_ALL_COMM),
                  "MPI_M_snapshot_start");
    int seen_boundaries = 0;

    // Chunk 1: steady halo traffic. The hook afterwards sees no phase
    // boundary (the pattern never changed), so no TreeMatch step runs.
    apps::run_halo(world, warmup);
    bool t1 = false;
    reorder::reorder_on_phase(id, world, &seen_boundaries, &t1);

    // A compute-only lull, then the halo resumes: the silent windows and
    // the resuming traffic are what the phase detector flags.
    mpi::compute(0.05);
    const apps::HaloResult base = apps::run_halo(world, sweep);

    // Chunk 2 hook: a new boundary was flagged, so the full Figure-1 step
    // runs on everything monitored so far.
    bool t2 = false;
    const reorder::ReorderResult res =
        reorder::reorder_on_phase(id, world, &seen_boundaries, &t2);

    // Chunk 3: the same kernel on the optimized communicator.
    const apps::HaloResult better = apps::run_halo(res.opt_comm, sweep);

    mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
    mon::check_rc(MPI_M_snapshot_stop(id), "MPI_M_snapshot_stop");
    mon::check_rc(MPI_M_free(id), "MPI_M_free");

    if (ctx.world_rank() == 0) {
      hook1_fired = t1;
      hook2_fired = t2;
      before_comm = base.comm_time_s;
      checksum_before = base.checksum;
    }
    if (mpi::comm_rank(res.opt_comm) == 0) {
      after_comm = better.comm_time_s;
      checksum_after = better.checksum;
    }
  });

  std::printf("2-D Jacobi on %d scattered ranks, %d sweeps per phase\n",
              nranks, sweep.iters);
  std::printf("hook 1 (steady state) triggered: %s (expected no)\n",
              hook1_fired ? "yes" : "no");
  std::printf("hook 2 (after lull)   triggered: %s (expected yes)\n",
              hook2_fired ? "yes" : "no");
  std::printf("communication time before reordering: %.3f ms\n",
              before_comm * 1e3);
  std::printf("communication time after  reordering: %.3f ms (%.2fx)\n",
              after_comm * 1e3, before_comm / after_comm);
  std::printf("checksums identical: %s\n",
              checksum_before == checksum_after ? "yes" : "NO");
  return hook2_fired && !hook1_fired &&
                 checksum_before == checksum_after
             ? 0
             : 1;
}
