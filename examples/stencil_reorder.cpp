// Dynamic rank reordering of an iterative stencil application -- the
// paper's Figure-1 algorithm on a 2-D Jacobi halo-exchange kernel.
//
// The ranks start deliberately scattered across the nodes (the mpirun
// round-robin-by-node default). The first sweep is monitored; the gathered
// byte matrix drives TreeMatch; the remaining sweeps run on the optimized
// communicator. Communication time before/after is printed.
#include <cstdio>

#include "apps/halo.h"
#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "reorder/reorder.h"

int main() {
  using namespace mpim;

  const int nranks = 48;
  auto cost = net::CostModel::plafrim_like(2);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::bynode_placement(nranks, cost.topology())};
  cfg.nic_contention = true;
  Sim sim(std::move(cfg));

  const apps::HaloConfig halo{/*local_n=*/128, /*iters=*/20, /*seed=*/3};

  double before_comm = 0, after_comm = 0, checksum_before = 0,
         checksum_after = 0;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    mon::Environment env;

    // Phase 1: run (and monitor) the kernel on the original communicator.
    MPI_M_msid id;
    mon::check_rc(MPI_M_start(world, &id), "MPI_M_start");
    const apps::HaloResult base = apps::run_halo(world, halo);
    mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");

    // Phase 2: Figure-1 reordering from the monitored matrix.
    const auto res = reorder::reorder_ranks(id, world);
    mon::check_rc(MPI_M_free(id), "MPI_M_free");

    // Phase 3: the same kernel on the optimized communicator.
    const apps::HaloResult better = apps::run_halo(res.opt_comm, halo);

    if (ctx.world_rank() == 0) {
      before_comm = base.comm_time_s;
      checksum_before = base.checksum;
    }
    if (mpi::comm_rank(res.opt_comm) == 0) {
      after_comm = better.comm_time_s;
      checksum_after = better.checksum;
    }
  });

  std::printf("2-D Jacobi on 48 scattered ranks, %d sweeps per phase\n",
              20);
  std::printf("communication time before reordering: %.3f ms\n",
              before_comm * 1e3);
  std::printf("communication time after  reordering: %.3f ms (%.2fx)\n",
              after_comm * 1e3, before_comm / after_comm);
  std::printf("checksums identical: %s\n",
              checksum_before == checksum_after ? "yes" : "NO");
  return 0;
}
