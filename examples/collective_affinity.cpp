// Visualizing the affinity of collectives (Section 4.5 of the paper).
//
// Monitors one MPI_Bcast and one MPI_Reduce with two *separate* sessions,
// prints the two communication matrices side by side (the binomial
// broadcast tree and the binary reduce tree), then lets TreeMatch compute
// an optimized rank order from the broadcast's matrix and reports the
// modeled improvement.
#include <cstdio>
#include <vector>

#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "reorder/reorder.h"
#include "support/table.h"

namespace {

void print_matrix(const char* title, const mpim::CommMatrix& m) {
  std::printf("\n%s (row = sender, column = receiver, messages)\n", title);
  const std::size_t n = m.rows();
  std::printf("     ");
  for (std::size_t j = 0; j < n; ++j) std::printf("%4zu", j);
  std::printf("\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%4zu ", i);
    for (std::size_t j = 0; j < n; ++j)
      std::printf("%4lu", m(i, j));
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace mpim;
  // Scatter consecutive ranks across the nodes (mpirun --map-by node) so
  // TreeMatch has something to improve.
  auto cost = net::CostModel::plafrim_like(2);
  mpi::EngineConfig ecfg{
      .cost_model = cost,
      .placement = topo::bynode_placement(16, cost.topology())};
  Sim sim(std::move(ecfg));

  CommMatrix bcast_counts, reduce_counts, bcast_bytes;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    mon::Environment env;

    std::vector<int> payload(100000);

    // One session per collective: this is how the library distinguishes
    // which point-to-point message belongs to which call.
    mon::Session s_bcast(world);
    mpi::bcast(payload.data(), payload.size(), mpi::Type::Int, 0, world);
    s_bcast.suspend();

    mon::Session s_reduce(world);
    std::vector<int> out(payload.size());
    mpi::reduce(payload.data(), out.data(), payload.size(), mpi::Type::Int,
                mpi::Op::Max, 0, world);
    s_reduce.suspend();

    const CommMatrix bc = s_bcast.gather_counts(MPI_M_COLL_ONLY);
    const CommMatrix bs = s_bcast.gather_sizes(MPI_M_COLL_ONLY);
    const CommMatrix rc = s_reduce.gather_counts(MPI_M_COLL_ONLY);
    if (ctx.world_rank() == 0) {
      bcast_counts = bc;
      bcast_bytes = bs;
      reduce_counts = rc;
    }
  });

  print_matrix("MPI_Bcast: binomial tree (root 0 feeds 8, 4, 2, 1; ...)",
               bcast_counts);
  print_matrix("MPI_Reduce: binary tree (leaves feed parents toward 0)",
               reduce_counts);

  // Feed the broadcast's byte matrix to the reordering core.
  const auto& engine_cfg = sim.engine().config();
  const auto k = reorder::compute_reordering(
      bcast_bytes, sim.engine().topology(), engine_cfg.placement,
      &sim.engine().cost_model());
  const double before = reorder::reordered_cost(
      bcast_bytes, reorder::identity_k(16), sim.engine().cost_model(),
      engine_cfg.placement);
  const double after = reorder::reordered_cost(
      bcast_bytes, k, sim.engine().cost_model(), engine_cfg.placement);

  std::printf("\nTreeMatch rank reordering from the broadcast affinity:\n  k = [");
  for (std::size_t i = 0; i < k.size(); ++i)
    std::printf("%s%d", i ? " " : "", k[i]);
  std::printf("]\n  modeled pattern cost: %.3g s -> %.3g s\n", before, after);
  return 0;
}
