// Predicting network usage from introspection samples (the Section 7
// follow-up use case: schedule checkpoint transfers into idle windows).
//
// A two-rank "iterative application" sends a burst every fourth interval.
// Rank 0 samples its own monitored traffic each interval (read + reset),
// feeds the predictor, and -- once the period is detected -- schedules a
// background "checkpoint fetch" whenever the next interval is forecast to
// be idle. The printout shows predictions against reality and how many
// checkpoint chunks were placed into genuinely idle intervals.
#include <cstdio>
#include <string>

#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "predict/predictor.h"
#include "predict/sampler.h"

int main() {
  using namespace mpim;
  Sim sim = Sim::plafrim(2, 2);

  sim.run([](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    constexpr int kIntervals = 48;
    constexpr int kPeriod = 4;
    mon::Environment env;

    if (ctx.world_rank() == 0) {
      predict::TrafficSampler sampler(world, MPI_M_P2P_ONLY);
      predict::UsagePredictor pred;
      std::vector<std::byte> burst(200000);
      std::vector<std::byte> checkpoint_chunk(100000);

      int chunks_scheduled = 0, chunks_in_idle = 0;
      std::printf("interval  app traffic  predicted-next  action\n");
      for (int i = 0; i < kIntervals; ++i) {
        const bool app_burst = (i % kPeriod == 0);
        if (app_burst)
          mpi::send(burst.data(), burst.size(), mpi::Type::Byte, 1, 1,
                    world);
        mpi::compute(0.010);  // the interval's computation

        const auto bytes = sampler.sample();
        pred.add_sample(static_cast<double>(bytes));
        const double next = pred.predict_next();
        const bool idle_next = pred.underutilized_next();

        // Schedule a checkpoint chunk into forecast-idle intervals once
        // the predictor has warmed up.
        const char* action = "-";
        if (i >= 2 * kPeriod && idle_next) {
          mpi::send(checkpoint_chunk.data(), checkpoint_chunk.size(),
                    mpi::Type::Byte, 1, 2, world);
          ++chunks_scheduled;
          const bool next_is_idle = ((i + 1) % kPeriod != 0);
          chunks_in_idle += next_is_idle;
          action = next_is_idle ? "checkpoint chunk (idle, good)"
                                : "checkpoint chunk (COLLIDED)";
        }
        if (i < 16 || i % 8 == 0)
          std::printf("%8d  %11lu  %14.0f  %s\n", i,
                      static_cast<unsigned long>(bytes), next, action);
      }
      mpi::send(nullptr, 0, mpi::Type::Byte, 1, 9, world);  // stop

      const auto period = pred.detected_period();
      std::printf("\ndetected period: %s\n",
                  period ? std::to_string(*period).c_str() : "(none)");
      std::printf("checkpoint chunks scheduled: %d, of which %d landed in "
                  "truly idle intervals\n",
                  chunks_scheduled, chunks_in_idle);
    } else {
      for (;;) {
        std::vector<std::byte> b(200000);
        const mpi::Status st = mpi::recv(b.data(), b.size(), mpi::Type::Byte,
                                         0, mpi::kAnyTag, world);
        if (st.tag == 9) break;
      }
    }
  });
  return 0;
}
