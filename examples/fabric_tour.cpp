// Tour of the fabric-aware network stack: select a fat-tree via the
// EngineConfig::fabric spec string (the MPIM_TOPO grammar), run a bursty
// ring workload under windowed snapshots from a deliberately scattered
// placement, and dump the per-window matrices -- annotated with the
// per-link-class mismatch decomposition -- to results/fabric_frames.csv
// for `monview --timeline`.
#include <cstdio>
#include <vector>

#include "introspect/analyzer.h"
#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"

namespace {

using namespace mpim;

/// `iters` ring exchanges of `bytes` chars (every rank sends to the next
/// and receives from the previous one).
void exchange_ring(const mpi::Comm& comm, std::size_t bytes, int iters) {
  const int n = mpi::comm_size(comm);
  const int me = mpi::comm_rank(comm);
  std::vector<char> buf(bytes, 'r');
  for (int it = 0; it < iters; ++it) {
    mpi::sendrecv(buf.data(), buf.size(), mpi::Type::Char, (me + 1) % n, it,
                  buf.data(), buf.size(), (me + n - 1) % n, it, comm);
  }
}

}  // namespace

int main() {
  using namespace mpim;

  // A 2-ary 2-level fat-tree at 2:1 oversubscription: 4 nodes, a single
  // trunk per direction per switch. The engine resolves the spec exactly
  // like MPIM_TOPO and replaces cost model and placement to fit.
  // 64 ranks over the 96 PUs: the shuffled placement spans three of the
  // four nodes and both pods, so ring traffic exercises every link class.
  const int nranks = 64;
  const auto spec = topo::parse_fabric_spec("fattree:2,2,2");
  const auto fabric = topo::make_fabric(*spec, nranks);
  mpi::EngineConfig cfg{
      .cost_model = net::CostModel::for_fabric(fabric),
      .placement = topo::random_placement(nranks, fabric->hierarchy(), 41)};
  cfg.fabric = "fattree:2,2,2";  // resolved like MPIM_TOPO; same-spec no-op
  cfg.nic_contention = true;
  Sim sim(std::move(cfg));

  std::vector<introspect::FrameMatrix> frames;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    mon::Environment env;
    MPI_M_msid id = -1;
    mon::check_rc(MPI_M_start(world, &id), "start");
    mon::check_rc(MPI_M_snapshot_start(id, /*window_s=*/1e-3,
                                       /*max_frames=*/64, MPI_M_ALL_COMM),
                  "snapshot_start");

    exchange_ring(world, 4096, 3);  // burst 1
    mpi::compute(5e-3);             // silence
    exchange_ring(world, 8192, 2);  // burst 2
    mpi::compute(2e-3);             // close the last window
    mon::check_rc(MPI_M_suspend(id), "suspend");

    const int K = 64;
    const std::size_t n = static_cast<std::size_t>(nranks);
    int W = 0;
    std::vector<double> t0(K), t1(K);
    std::vector<unsigned long> counts(K * n * n), bytes(K * n * n);
    mon::check_rc(MPI_M_get_frames(id, K, &W, t0.data(), t1.data(),
                                   counts.data(), bytes.data(),
                                   MPI_M_ALL_COMM),
                  "get_frames");
    mon::check_rc(MPI_M_free(id), "free");

    if (ctx.world_rank() == 0) {
      for (int w = 0; w < W; ++w) {
        introspect::FrameMatrix f;
        f.window = w;
        f.t0_s = t0[w];
        f.t1_s = t1[w];
        f.counts = CommMatrix::square(n);
        f.bytes = CommMatrix::square(n);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            const std::size_t at = static_cast<std::size_t>(w) * n * n +
                                   i * n + j;
            f.counts(i, j) = counts[at];
            f.bytes(i, j) = bytes[at];
          }
        }
        frames.push_back(std::move(f));
      }
    }
  });

  const topo::Fabric& fab = sim.engine().fabric();
  const topo::Placement& place = sim.engine().config().placement;
  introspect::annotate_link_class_hops(frames, fab, place);
  introspect::write_frames_csv_file("results/fabric_frames.csv", frames);

  std::printf("fabric: %s (%d nodes, %d links, %d link classes)\n",
              fab.describe().c_str(), fab.num_nodes(), fab.num_links(),
              fab.num_link_classes());
  const auto metrics = introspect::analyze_windows(frames, fab, place);
  std::printf("%zu windows -> results/fabric_frames.csv\n", metrics.size());
  for (const auto& m : metrics) {
    if (m.bytes == 0) continue;
    std::printf("window %ld: %lu bytes, mismatch %.0f byte-hops (", m.window,
                m.bytes, m.mismatch_hops);
    bool first = true;
    for (std::size_t c = 0; c < m.class_hops.size(); ++c) {
      if (m.class_hops[c] <= 0.0) continue;
      std::printf("%s%s %.0f", first ? "" : ", ",
                  fab.link_class_name(static_cast<int>(c)).c_str(),
                  m.class_hops[c]);
      first = false;
    }
    std::printf(")\n");
  }
  std::printf("render with: monview --timeline results/fabric_frames.csv\n");
  return 0;
}
