#!/usr/bin/env bash
# Tier-1 gate, runnable locally and in CI:
#   1. default preset: configure, build, full ctest suite, then a focused
#      re-run of the "introspect" label (snapshot/phase-detection suite),
#      a stencil_reorder smoke run, and the bench trajectory gate
#      (bench_introspect --quick + scripts/bench_trend.py vs the committed
#      results/BENCH_*.json baselines)
#   2. asan preset:    configure, build, ctest filtered to label "sanitize"
#      (the introspect suite carries both labels, so it runs under asan too)
#   3. tsan preset:    configure, build, ctest filtered to label
#      "sanitize-thread" (the concurrent-recording stress suite: rank
#      threads hammer the lock-free send path while the control plane
#      churns RecordingPlans)
#
# --recovery-only is the focused fault-recovery lane: the recovery suite and
# the crash-under-churn stress suite (ULFM shrink/ack/agree, session rebind,
# degradation governor) under BOTH sanitizer presets, plus the
# faulty_reorder crash-shrink-recover example and bench_recovery's
# built-in acceptance check on the default build.
#
# --stream-only is the focused streaming-plane lane: the obsplane suite
# (ingest rings, sketches, correlation, exporter teardown) under BOTH
# sanitizer presets, then on the default build the stream_monitor
# fault-injected e2e example, a monview --live render of its stream, and
# bench_stream's hook-overhead acceptance check fed into the trend gate.
#
# --critpath-only is the focused critical-path profiler lane: the critpath
# suite (blame identity, clock bit-identity, governor refusal, rings,
# reorder feed, CSV round trip) under BOTH sanitizer presets, then on the
# default build the stencil_reorder late-sender e2e, a profview
# --critical-path render of its blame CSV, and bench_critpath's
# hook-budget + blame-identity acceptance checks fed into the trend gate.
#
# --fabric-only is the focused network-fabric lane: the fabric suite
# (MPIM_TOPO spec parsing, hop-distance metric properties, route coverage,
# tree bit-identity to the depth-indexed cost lookup, max-min-fair flow
# sharing, per-link-class mismatch decomposition, hierarchical TreeMatch)
# under BOTH sanitizer presets, then on the default build the fabric_tour
# e2e example, a monview --timeline render of its per-link-class frames
# CSV, and bench_fabric's cross-fabric reorder acceptance fed into the
# trend gate (reorders_per_sec is a hot-path inverse metric).
#
# --scale-only is the focused scheduler-backend lane: the sched suite
# (thread-vs-fiber clock bit-identity, MPIM_SCHED parsing, fiber structural
# deadlock detection, np=512 crash/shrink/rebind, np=1024 fiber worlds)
# under BOTH sanitizer presets (asan exercises the fiber stack-switch
# annotations, tsan the thread-mode halves of the parity sweep), then on
# the default build bench_scale's built-in >= 8x world-size acceptance
# check in quick mode.
#
# Usage: scripts/check.sh [--default-only|--asan-only|--tsan-only|--recovery-only|--stream-only|--critpath-only|--fabric-only|--scale-only]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
run_default=1
run_asan=1
run_tsan=1
run_recovery=0
run_stream=0
run_critpath=0
run_fabric=0
run_scale=0
case "${1:-}" in
  --default-only) run_asan=0; run_tsan=0 ;;
  --asan-only) run_default=0; run_tsan=0 ;;
  --tsan-only) run_default=0; run_asan=0 ;;
  --recovery-only) run_default=0; run_asan=0; run_tsan=0; run_recovery=1 ;;
  --stream-only) run_default=0; run_asan=0; run_tsan=0; run_stream=1 ;;
  --critpath-only) run_default=0; run_asan=0; run_tsan=0; run_critpath=1 ;;
  --fabric-only) run_default=0; run_asan=0; run_tsan=0; run_fabric=1 ;;
  --scale-only) run_default=0; run_asan=0; run_tsan=0; run_scale=1 ;;
  "") ;;
  *)
    echo "usage: $0 [--default-only|--asan-only|--tsan-only|--recovery-only|--stream-only|--critpath-only|--fabric-only|--scale-only]" >&2
    exit 2
    ;;
esac

if [ "$run_default" = 1 ]; then
  echo "== tier-1: default preset =="
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  ctest --preset default --output-on-failure -j "$jobs"

  echo "== tier-1: introspect label =="
  ctest --preset default --output-on-failure -j "$jobs" -L introspect

  echo "== smoke: stencil_reorder =="
  ./build/examples/stencil_reorder >/dev/null

  echo "== bench trajectory =="
  mkdir -p results
  ./build/bench/bench_introspect --quick --csv results
  ./build/bench/bench_record --quick --csv results
  ./build/bench/bench_recovery --quick --csv results
  ./build/bench/bench_stream --quick --csv results
  ./build/bench/bench_critpath --quick --csv results
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/bench_trend.py
  else
    echo "bench_trend: python3 not found, skipping trajectory gate" >&2
  fi
fi

if [ "$run_asan" = 1 ]; then
  echo "== tier-1: asan preset (label: sanitize) =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan --output-on-failure -j "$jobs"
fi

if [ "$run_tsan" = 1 ]; then
  echo "== tier-1: tsan preset (label: sanitize-thread) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --preset tsan --output-on-failure -j "$jobs"
fi

if [ "$run_recovery" = 1 ]; then
  # --test-dir instead of the ctest presets: the preset label filters
  # (sanitize / sanitize-thread) would AND with -L and hide the suite.
  echo "== recovery lane: asan preset (labels: fault|recovery|sanitize-thread) =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs" \
    -L 'fault|recovery|sanitize-thread'

  echo "== recovery lane: tsan preset (labels: fault|recovery|sanitize-thread) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -L 'fault|recovery|sanitize-thread'

  echo "== recovery lane: crash-shrink-recover e2e + bench acceptance =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" \
    --target faulty_reorder bench_recovery
  ./build/examples/faulty_reorder >/dev/null
  mkdir -p results
  ./build/bench/bench_recovery --quick --csv results
fi

if [ "$run_stream" = 1 ]; then
  # --test-dir for the same reason as the recovery lane: the ctest preset
  # label filters would AND with -L obsplane and hide the suite.
  echo "== stream lane: asan preset (label: obsplane) =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -L obsplane

  echo "== stream lane: tsan preset (label: obsplane) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L obsplane

  echo "== stream lane: fault-injected e2e + live view + bench acceptance =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" \
    --target stream_monitor monview bench_stream
  mkdir -p results
  ./build/examples/stream_monitor >/dev/null
  ./build/src/tools/monview --live results/stream_monitor.jsonl --once \
    >/dev/null
  ./build/bench/bench_stream --quick --csv results
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/bench_trend.py
  else
    echo "bench_trend: python3 not found, skipping trajectory gate" >&2
  fi
fi

if [ "$run_critpath" = 1 ]; then
  # --test-dir for the same reason as the recovery lane: the ctest preset
  # label filters would AND with -L critpath and hide the suite.
  echo "== critpath lane: asan preset (label: critpath) =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -L critpath

  echo "== critpath lane: tsan preset (label: critpath) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L critpath

  echo "== critpath lane: late-sender e2e + blame render + bench acceptance =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" \
    --target stencil_reorder profview bench_critpath
  mkdir -p results
  ./build/examples/stencil_reorder >/dev/null
  ./build/src/tools/profview --critical-path results/stencil_critpath.csv \
    >/dev/null
  ./build/bench/bench_critpath --quick --csv results
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/bench_trend.py
  else
    echo "bench_trend: python3 not found, skipping trajectory gate" >&2
  fi
fi

if [ "$run_fabric" = 1 ]; then
  # --test-dir for the same reason as the recovery lane: the ctest preset
  # label filters would AND with -L fabric and hide the suite.
  echo "== fabric lane: asan preset (label: fabric) =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -L fabric

  echo "== fabric lane: tsan preset (label: fabric) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L fabric

  echo "== fabric lane: fabric_tour e2e + timeline render + bench acceptance =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" \
    --target fabric_tour monview bench_fabric
  mkdir -p results
  ./build/examples/fabric_tour >/dev/null
  ./build/src/tools/monview --timeline results/fabric_frames.csv >/dev/null
  ./build/bench/bench_fabric --quick --csv results
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/bench_trend.py
  else
    echo "bench_trend: python3 not found, skipping trajectory gate" >&2
  fi
fi

if [ "$run_scale" = 1 ]; then
  # --test-dir for the same reason as the recovery lane. Under the tsan
  # preset the sched suite's label is sanitize-thread (see
  # tests/CMakeLists.txt), so select it by test-name prefix instead.
  echo "== scale lane: asan preset (label: sched) =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -L sched

  echo "== scale lane: tsan preset (tests: Sched*) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -R '^Sched'

  echo "== scale lane: bench_scale acceptance =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target bench_scale
  mkdir -p results
  ./build/bench/bench_scale --quick --csv results
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/bench_trend.py
  else
    echo "bench_trend: python3 not found, skipping trajectory gate" >&2
  fi
fi

echo "check.sh: all green"
