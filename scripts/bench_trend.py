#!/usr/bin/env python3
"""Merge results/BENCH_*.json into one trajectory table and gate regressions.

Two producers feed the results/ directory:

  * google-benchmark binaries (bench_micro, bench_telemetry) write the stock
    ``{"context": ..., "benchmarks": [...]}`` layout; the interesting numbers
    live in per-benchmark user counters (ns_per_send, us_per_roundtrip, ...).
  * the Table-based figure benches write ``{"format": "mpim-bench-tables",
    "tables": [{"name", "header", "rows"}]}`` via bench_common.h; every cell
    is a string, numeric or not.

This script flattens both into ``program/benchmark.metric`` rows, compares
them against the committed baseline (``git show HEAD:<file>``) when one
exists, and exits non-zero when a *hot-path* metric regressed by more than
REGRESSION_LIMIT. Non-hot-path metrics are reported but never gate: figure
checks are pass/fail inside the bench binaries themselves, and host-side
table numbers are too noisy to gate on.
"""
import json
import math
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "results"
REGRESSION_LIMIT = 0.10  # fraction; >10% slower on a hot-path metric fails
# Metrics where "bigger is slower" and the measurement is stable enough to
# gate on. Everything else is informational.
HOT_PATH_METRICS = ("ns_per_send", "us_per_roundtrip")
# Throughput metrics where "smaller is slower": these gate on a *drop*
# beyond REGRESSION_LIMIT (bench_record's recording fast path,
# bench_stream's plane ingest and bench_fabric's np=1024 hierarchical
# TreeMatch reorder rate).
HOT_PATH_INVERSE_METRICS = ("sends_per_sec", "events_per_sec",
                            "reorders_per_sec")


def flatten(doc):
    """Yield (key, value) pairs of the numeric metrics in one BENCH_*.json."""
    if doc.get("format") == "mpim-bench-tables":
        prog = doc.get("program", "?")
        for table in doc.get("tables", []):
            header = table.get("header", [])
            for row in table.get("rows", []):
                label = row[0] if row else "?"
                for col, cell in zip(header[1:], row[1:]):
                    try:
                        val = float(cell.split()[0])
                    except (ValueError, IndexError):
                        continue
                    yield f"{prog}/{table.get('name', '?')}[{label}].{col}", val
        return
    # google-benchmark layout: counters are the top-level keys that are not
    # part of the fixed schema.
    skip = {
        "name", "family_index", "per_family_instance_index", "run_name",
        "run_type", "repetitions", "repetition_index", "threads",
        "iterations", "real_time", "cpu_time", "time_unit",
    }
    prog = Path(doc.get("context", {}).get("executable", "?")).name
    if prog.startswith("bench_"):
        prog = prog[len("bench_"):]
    for bench in doc.get("benchmarks", []):
        for key, val in bench.items():
            if key in skip or not isinstance(val, (int, float)):
                continue
            yield f"{prog}/{bench['name']}.{key}", float(val)
        # TreeMatch-style benches carry no counters; fall back to real_time.
        if not any(k not in skip and isinstance(v, (int, float))
                   for k, v in bench.items()):
            yield (f"{prog}/{bench['name']}.real_{bench.get('time_unit', '?')}",
                   float(bench.get("real_time", math.nan)))


def baseline_for(path):
    """The committed version of `path`, or None when HEAD has no copy."""
    rel = path.relative_to(REPO)
    proc = subprocess.run(
        ["git", "-C", str(REPO), "show", f"HEAD:{rel.as_posix()}"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def main():
    files = sorted(RESULTS.glob("BENCH_*.json"))
    if not files:
        print(f"bench_trend: no BENCH_*.json under {RESULTS}", file=sys.stderr)
        return 2

    rows = []       # (key, current, baseline-or-None, delta-or-None, gated)
    regressions = []
    for path in files:
        try:
            current = dict(flatten(json.loads(path.read_text())))
        except (json.JSONDecodeError, OSError) as e:
            print(f"bench_trend: cannot parse {path.name}: {e}",
                  file=sys.stderr)
            return 2
        base_doc = baseline_for(path)
        base = dict(flatten(base_doc)) if base_doc else {}
        for key, val in sorted(current.items()):
            ref = base.get(key)
            delta = (val / ref - 1.0) if ref else None
            slower_when_up = key.endswith(HOT_PATH_METRICS)
            slower_when_down = key.endswith(HOT_PATH_INVERSE_METRICS)
            gated = slower_when_up or slower_when_down
            rows.append((key, val, ref, delta, gated))
            if delta is None:
                continue
            if (slower_when_up and delta > REGRESSION_LIMIT) or \
                    (slower_when_down and delta < -REGRESSION_LIMIT):
                regressions.append((key, ref, val, delta))

    width = max(len(r[0]) for r in rows)
    print(f"{'metric':<{width}}  {'current':>12}  {'baseline':>12}  "
          f"{'delta':>8}  gate")
    for key, val, ref, delta, gated in rows:
        ref_s = f"{ref:12.4g}" if ref is not None else f"{'-':>12}"
        delta_s = f"{delta:+8.1%}" if delta is not None else f"{'-':>8}"
        print(f"{key:<{width}}  {val:12.4g}  {ref_s}  {delta_s}  "
              f"{'hot' if gated else '-'}")

    if regressions:
        print(f"\nbench_trend: FAIL -- hot-path regression over "
              f"{REGRESSION_LIMIT:.0%}:")
        for key, ref, val, delta in regressions:
            print(f"  {key}: {ref:.4g} -> {val:.4g} ({delta:+.1%})")
        return 1
    n_base = sum(1 for r in rows if r[2] is not None)
    gates = ", ".join(HOT_PATH_METRICS + HOT_PATH_INVERSE_METRICS)
    print(f"\nbench_trend: OK ({len(rows)} metrics, {n_base} vs baseline, "
          f"limit {REGRESSION_LIMIT:.0%} on {gates})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
