// Recording fast-path throughput: how much the monitoring hook costs per
// packet, as a function of how much monitoring is attached.
//
// Every send in the engine flows through mpit::Runtime::on_send. This bench
// drives a p2p self-roundtrip loop (the cheapest monitored packet the engine
// can produce) across a sweep of rank-thread counts and five monitoring
// states:
//
//   absent   engine only, no tool runtime constructed (hook not installed)
//   idle     Runtime attached, no sessions -- the always-on production state
//   1/4/16   that many live MPI_M sessions on MPI_COMM_WORLD, all handles
//            started (6 pvar handles each, 2 of which match p2p traffic)
//
// `absent` vs `idle` is the acceptance check that leaving the tool runtime
// attached costs one branch per packet; the active-session rows measure the
// RecordingPlan scan (docs/PERF.md). Host wall time, best-of reps; virtual
// clocks are irrelevant here. Emits results/BENCH_record.json via the
// bench_common mirror so scripts/bench_trend.py gates the ns_per_send and
// sends_per_sec columns against the committed baseline.
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mpimon/mpi_monitoring.h"

namespace {

using namespace mpim;

mpi::EngineConfig record_config(int nranks) {
  // Contention model off: this bench isolates the software hook cost, not
  // NIC serialization (bench_fig5 and friends cover that).
  auto cost = net::CostModel::plafrim_like(bench::nodes_for_ranks(nranks));
  auto placement = topo::round_robin_placement(nranks, cost.topology());
  mpi::EngineConfig cfg{.cost_model = std::move(cost),
                        .placement = std::move(placement)};
  cfg.watchdog_wall_timeout_s = 120.0;
  return cfg;
}

/// Which engine path carries the monitored packets.
enum class Workload {
  /// p2p self-roundtrip: send_bytes + recv_bytes. Full transport cost
  /// (payload copy, mailbox, matching) -- the realistic per-send picture,
  /// where the hook is one ingredient among several.
  roundtrip,
  /// Self rma_transfer: no mailbox, no payload, no receive. The leanest
  /// path through the hook, so per-packet recording cost dominates the
  /// row -- this is the table the 2x fast-path acceptance gate reads.
  rma,
};

void workload_loop(Workload wl, mpi::Ctx& ctx, int iters) {
  const mpi::Comm world = ctx.world();
  const int me = ctx.world_rank();
  char buf[8] = {0};
  for (int i = 0; i < iters; ++i) {
    if (wl == Workload::roundtrip) {
      // Self-roundtrip: the send passes through the monitoring hook like
      // any p2p packet, and the immediate receive keeps the inbox at depth
      // <= 1 with no cross-rank wait.
      ctx.send_bytes(me, world, 7, mpi::CommKind::p2p, buf, sizeof buf);
      ctx.recv_bytes(me, world, 7, mpi::CommKind::p2p, buf, sizeof buf);
    } else {
      ctx.rma_transfer(me, me, world, sizeof buf);
    }
  }
}

/// One engine run; returns host seconds of Engine::run.
double run_once(Workload wl, int nranks, int iters, int sessions,
                bool attach_runtime) {
  auto cfg = record_config(nranks);
  mpi::Engine engine(std::move(cfg));
  std::optional<mpit::Runtime> tool;
  if (attach_runtime) tool.emplace(engine);

  const auto t0 = std::chrono::steady_clock::now();
  engine.run([&](mpi::Ctx& ctx) {
    std::vector<MPI_M_msid> ids;
    if (sessions > 0) {
      MPI_M_init();
      ids.assign(static_cast<std::size_t>(sessions), -1);
      for (MPI_M_msid& id : ids) MPI_M_start(ctx.world(), &id);
    }
    workload_loop(wl, ctx, iters);
    if (sessions > 0) {
      for (MPI_M_msid id : ids) {
        MPI_M_suspend(id);
        MPI_M_free(id);
      }
      MPI_M_finalize();
    }
  });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_of(Workload wl, int reps, int nranks, int iters, int sessions,
               bool attach_runtime) {
  double best = run_once(wl, nranks, iters, sessions, attach_runtime);
  for (int r = 1; r < reps; ++r)
    best =
        std::min(best, run_once(wl, nranks, iters, sessions, attach_runtime));
  return best;
}

struct Scenario {
  const char* name;
  int sessions;
  bool attach;
};

void sweep(Workload wl, const char* table_name, const bench::Options& opt,
           const std::vector<int>& threads, int reps) {
  const Scenario scenarios[] = {
      {"absent", 0, false}, {"idle", 0, true},    {"active1", 1, true},
      {"active4", 4, true}, {"active16", 16, true},
  };
  Table t({"config", "threads", "sessions", "sends_per_sec", "ns_per_send"});
  for (int nranks : threads) {
    // Keep the total send count constant across thread counts so rows are
    // comparable and the sweep stays bounded on small hosts.
    const int total_sends = opt.quick ? 160000 : 640000;
    const int iters = total_sends / nranks;
    for (const Scenario& sc : scenarios) {
      const double wall =
          best_of(wl, reps, nranks, iters, sc.sessions, sc.attach);
      const double sends = static_cast<double>(iters) * nranks;
      t.add(std::string(sc.name) + "/t" + std::to_string(nranks), nranks,
            sc.sessions, format_sig(sends / wall, 4),
            format_sig(wall / sends * 1e9, 4));
    }
  }
  t.print(std::cout);
  bench::maybe_csv(opt, t, table_name);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::vector<int> threads =
      opt.quick ? std::vector<int>{2, 8} : std::vector<int>{2, 8, 32};
  const int reps = opt.quick ? 3 : 5;

  bench::banner("hook-dominated path (self rma_transfer, best of " +
                std::to_string(reps) + ")");
  sweep(Workload::rma, "record_hookpath", opt, threads, reps);

  bench::banner("full transport path (p2p self-roundtrips, best of " +
                std::to_string(reps) + ")");
  sweep(Workload::roundtrip, "record_fastpath", opt, threads, reps);
  return 0;
}
