// Ablations of the design choices called out in DESIGN.md:
//  1. Sensitivity of the Fig. 5 reordering gain to the inter-node /
//     intra-node bandwidth contrast of the cost model (the gains must come
//     from locality, and shrink to ~1x when the network is as fast as
//     shared memory).
//  2. Allgather algorithm choice (ring vs Bruck) for the Fig. 6 group
//     micro-kernel.
//  3. Monitoring below vs above the collective decomposition: the affinity
//     matrix a reordering sees when only user-level p2p traffic is
//     recorded (what a PMPI tool sees of a bcast: nothing).
#include "bench_common.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "reorder/reorder.h"

namespace {

using namespace mpim;

mpi::EngineConfig config_with_network_beta(int nodes, int nranks,
                                           double inter_node_beta) {
  auto topology = topo::Topology::cluster(nodes);
  std::vector<net::LinkParams> params = {
      {2.0e-6, inter_node_beta},
      {0.7e-6, 6.0e9},
      {0.3e-6, 11.0e9},
      {0.05e-6, 20.0e9},
  };
  net::CostModel cost(topology, params);
  // Same scattered baseline as Fig. 5 (mpirun round-robin across nodes).
  mpi::EngineConfig cfg{
      .cost_model = std::move(cost),
      .placement = topo::bynode_placement(nranks, topology)};
  cfg.watchdog_wall_timeout_s = 60.0;
  cfg.nic_contention = true;
  return cfg;
}

double bcast_speedup(mpi::EngineConfig cfg, std::size_t count) {
  Sim sim(std::move(cfg));
  const int np = sim.engine().world_size();
  std::vector<double> t_base(static_cast<std::size_t>(np));
  std::vector<double> t_opt(static_cast<std::size_t>(np));
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    double t0 = mpi::wtime();
    mpi::bcast(nullptr, count, mpi::Type::Int, 0, world);
    t_base[static_cast<std::size_t>(mpi::comm_rank(world))] =
        mpi::wtime() - t0;
    mon::check_rc(MPI_M_init(), "init");
    const auto res = reorder::monitor_and_reorder(
        world, [&](const mpi::Comm& c) {
          mpi::bcast(nullptr, count, mpi::Type::Int, 0, c);
        });
    t0 = mpi::wtime();
    mpi::bcast(nullptr, count, mpi::Type::Int, 0, res.opt_comm);
    t_opt[static_cast<std::size_t>(mpi::comm_rank(res.opt_comm))] =
        mpi::wtime() - t0;
    mon::check_rc(MPI_M_finalize(), "finalize");
  });
  auto mx = [](const std::vector<double>& v) {
    double out = 0;
    for (double x : v) out = std::max(out, x);
    return out;
  };
  return mx(t_base) / mx(t_opt);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const int np = opt.quick ? 48 : 96;
  const int nodes = bench::nodes_for_ranks(np);
  const std::size_t count = 20'000'000;  // 2e7 ints

  // --- 1. bandwidth-contrast sensitivity -----------------------------------
  bench::banner(
      "Ablation 1: Fig. 5b bcast reordering speedup vs inter-node bandwidth");
  Table t1({"inter-node beta (GB/s)", "intra/inter contrast", "speedup"});
  double speedup_slow = 0, speedup_fast = 0;
  for (double beta : {0.6e9, 1.2e9, 3.0e9, 6.0e9, 11.0e9}) {
    const double s =
        bcast_speedup(config_with_network_beta(nodes, np, beta), count);
    t1.add(format_sig(beta / 1e9, 3), format_sig(11.0e9 / beta, 3),
           format_sig(s, 4));
    if (beta == 0.6e9) speedup_slow = s;
    if (beta == 11.0e9) speedup_fast = s;
  }
  t1.print(std::cout);
  bench::maybe_csv(opt, t1, "ablation_bandwidth");
  std::printf(
      "locality hypothesis %s: gain grows with the contrast "
      "(%.2fx at high contrast vs %.2fx at none)\n",
      speedup_slow > speedup_fast ? "CONFIRMED" : "REJECTED", speedup_slow,
      speedup_fast);

  // --- 2. allgather algorithm ------------------------------------------------
  bench::banner("Ablation 2: group allgather, ring vs Bruck (virtual time)");
  Table t2({"count (int)", "ring (ms)", "bruck (ms)"});
  for (std::size_t c : {100ul, 10000ul, 1000000ul}) {
    double times[2];
    for (int a = 0; a < 2; ++a) {
      auto cfg = bench::plafrim_config(nodes, np);
      cfg.coll.allgather =
          a == 0 ? mpi::AllgatherAlgo::ring : mpi::AllgatherAlgo::bruck;
      Sim sim(std::move(cfg));
      double t = 0;
      sim.run([&](mpi::Ctx& ctx) {
        const double t0 = mpi::wtime();
        mpi::allgather(nullptr, c, mpi::Type::Int, nullptr, ctx.world());
        double dt = mpi::wtime() - t0, mx = 0;
        mpi::allreduce(&dt, &mx, 1, mpi::Type::Double, mpi::Op::Max,
                       ctx.world());
        if (ctx.world_rank() == 0) t = mx;
      });
      times[a] = t;
    }
    t2.add(c, format_sig(times[0] * 1e3, 4), format_sig(times[1] * 1e3, 4));
  }
  t2.print(std::cout);
  bench::maybe_csv(opt, t2, "ablation_allgather");

  // --- 3. below- vs above-decomposition monitoring ----------------------------
  bench::banner(
      "Ablation 3: what the reordering sees with and without "
      "below-collective monitoring (bcast workload)");
  {
    Sim sim(bench::plafrim_config(nodes, np));
    unsigned long coll_bytes = 0, p2p_bytes = 0;
    sim.run([&](mpi::Ctx& ctx) {
      const mpi::Comm world = ctx.world();
      mon::Environment env;
      mon::Session s(world);
      mpi::bcast(nullptr, 1 << 20, mpi::Type::Byte, 0, world);
      s.suspend();
      const auto coll_m = s.gather_sizes(MPI_M_COLL_ONLY);  // collective
      const auto p2p_m = s.gather_sizes(MPI_M_P2P_ONLY);
      if (ctx.world_rank() == 0) {
        coll_bytes = coll_m.sum();
        p2p_bytes = p2p_m.sum();
      }
    });
    std::printf(
        "bytes visible below the decomposition (this library): %lu\n"
        "bytes visible to an API-level tool (user p2p only)   : %lu\n"
        "=> an API-level profile gives TreeMatch an empty matrix for\n"
        "   collective-dominated codes; the Fig. 5 optimization is only\n"
        "   possible with pml-level monitoring.\n",
        coll_bytes, p2p_bytes);
  }
  return 0;
}
