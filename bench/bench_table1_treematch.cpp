// Table 1 -- "Reordering computation time for large input size".
//
// Wall-clock (host) time of the TreeMatch mapping computation for
// communication matrices of order 8192 to 65536, as in the paper
// (2.6 s / 6.3 s / 20.9 s / 88.7 s there). The matrices are synthetic
// sparse patterns (2-D 4-neighbour stencil over the rank grid plus a few
// long-range heavy rows), processed through the sparse affinity path.
// Expected shape: tractable superlinear growth, largest order well under
// 100 s.
#include <chrono>
#include <cmath>

#include "bench_common.h"
#include "support/rng.h"
#include "treematch/treematch.h"

namespace {

using namespace mpim;

tm::AffinityGraph stencil_affinity(int n, unsigned long seed) {
  const int side = static_cast<int>(std::round(std::sqrt(n)));
  tm::AffinityGraph g(static_cast<std::size_t>(n));
  auto id = [&](int r, int c) { return r * side + c; };
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      if (id(r, c) >= n) continue;
      if (c + 1 < side && id(r, c + 1) < n)
        g.add_edge(id(r, c), id(r, c + 1), 1000.0);
      if (r + 1 < side && id(r + 1, c) < n)
        g.add_edge(id(r, c), id(r + 1, c), 1000.0);
    }
  }
  // A sprinkle of long-range heavy edges (master/IO-style traffic).
  Rng rng(seed);
  for (int i = 0; i < n / 16; ++i) {
    const int u = static_cast<int>(rng.uniform_u64(0, static_cast<std::uint64_t>(n - 1)));
    const int v = static_cast<int>(rng.uniform_u64(0, static_cast<std::uint64_t>(n - 1)));
    if (u != v) g.add_edge(u, v, rng.uniform(1.0, 5000.0));
  }
  g.finalize();
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::vector<int> orders = opt.quick
                                      ? std::vector<int>{8192}
                                      : std::vector<int>{8192, 16384, 32768,
                                                         65536};

  bench::banner("Table 1: TreeMatch computation time for large matrices");
  Table table({"comm matrix order", "edges", "reordering time (s)",
               "paper (s)"});
  const char* paper_times[] = {"2.6", "6.3", "20.9", "88.7"};
  double last = 0.0;
  bool monotone = true;
  for (std::size_t i = 0; i < orders.size(); ++i) {
    const int n = orders[i];
    const auto g = stencil_affinity(n, 7);
    const auto topo =
        topo::Topology::cluster((n + 23) / 24, 2, 12);
    const auto t0 = std::chrono::steady_clock::now();
    const auto map = tm::treematch_leaves(g, topo);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    table.add(n, g.edge_count(), format_sig(secs, 3), paper_times[i]);
    monotone = monotone && secs >= last;
    last = secs;
    // Keep the optimizer honest about using the result.
    if (map.empty()) return 1;
  }
  table.print(std::cout);
  bench::maybe_csv(opt, table, "table1_treematch");
  std::printf(
      "PAPER SHAPE %s: growth with order, largest instance finishes in "
      "well under 100 s\n",
      (monotone && last < 100.0) ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
