// Figure 6 -- heatmap of the reordering gain for the group-allgather
// micro-benchmark.
//
// Groups of ranks (group g = {g, g+G, g+2G, ...}, spanning the nodes under
// the round-robin placement) each run an MPI_Allgather per iteration. We
// measure t1 = n monitored iterations, t2 = the dynamic reordering step
// (gather matrix at rank 0, TreeMatch, broadcast k, split, rebuild group
// communicators) and t3 = n iterations after reordering; the gain is
// 100 * (t1 - (t2 + t3)) / t1 as in the paper.
//
// The virtual clock is deterministic, so n identical steady-state
// iterations cost exactly n times one iteration: t1 and t3 are measured
// over a handful of iterations and scaled (documented in EXPERIMENTS.md).
// Expected shape: negative (red) for small buffers x few iterations,
// up to ~95% (green) for large buffers x many iterations.
#include "apps/group_allgather.h"
#include "bench_common.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "reorder/reorder.h"

namespace {

using namespace mpim;

struct CellTimings {
  double titer_before = 0.0;  ///< steady-state seconds per iteration
  double t2 = 0.0;            ///< reordering step
  double titer_after = 0.0;
};

double global_max(const mpi::Comm& comm, double v) {
  double out = 0.0;
  mpi::allreduce(&v, &out, 1, mpi::Type::Double, mpi::Op::Max, comm);
  return out;
}

/// One simulated campaign for a given rank count and buffer size. Worlds
/// past a few hundred ranks run on the fiber backend -- one OS thread per
/// rank stops being practical on this host exactly where the paper's
/// testbed stopped, and np=1024 is the point of the extended heatmap.
CellTimings run_cell(int np, std::size_t count) {
  auto cfg = bench::plafrim_config(bench::nodes_for_ranks(np), np);
  if (np >= 512) cfg.sched = mpi::SchedMode::fibers;
  Sim sim(std::move(cfg));
  CellTimings cell;
  constexpr int kTimedIters = 4;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    const apps::GroupAllgatherConfig one{24, count, 1};

    const mpi::Comm group = apps::make_group_comm(world, one.num_groups);

    // t1 phase (monitored): warm up, then time steady-state iterations.
    mon::check_rc(MPI_M_init(), "init");
    MPI_M_msid id;
    mon::check_rc(MPI_M_start(world, &id), "start");
    apps::run_group_allgather(group, one);  // warmup
    mpi::barrier(world);
    const double t0 = mpi::wtime();
    for (int i = 0; i < kTimedIters; ++i)
      apps::run_group_allgather(group, one);
    mon::check_rc(MPI_M_suspend(id), "suspend");
    const double titer = (mpi::wtime() - t0) / kTimedIters;

    // t2: the full reordering step, ending with usable group comms.
    mpi::barrier(world);
    const double r0 = mpi::wtime();
    const auto res = reorder::reorder_ranks(id, world);
    const mpi::Comm new_group =
        apps::make_group_comm(res.opt_comm, one.num_groups);
    const double t2 = mpi::wtime() - r0;
    mon::check_rc(MPI_M_free(id), "free");

    // t3 phase: steady state on the reordered groups.
    apps::run_group_allgather(new_group, one);  // warmup
    mpi::barrier(res.opt_comm);
    const double a0 = mpi::wtime();
    for (int i = 0; i < kTimedIters; ++i)
      apps::run_group_allgather(new_group, one);
    const double titer_after = (mpi::wtime() - a0) / kTimedIters;

    const double g_titer = global_max(world, titer);
    const double g_t2 = global_max(world, t2);
    const double g_after = global_max(world, titer_after);
    if (ctx.world_rank() == 0)
      cell = CellTimings{g_titer, g_t2, g_after};
    mon::check_rc(MPI_M_finalize(), "finalize");
  });
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  // np=1024 (fiber backend) extends the heatmap past the paper's largest
  // world; the np<=192 set matches the published figure.
  const std::vector<int> nps = opt.quick
                                   ? std::vector<int>{48}
                                   : std::vector<int>{48, 96, 192, 1024};
  const std::vector<std::size_t> sizes =
      opt.quick ? std::vector<std::size_t>{1, 1000, 100000}
                : std::vector<std::size_t>{1, 10, 100, 1000, 10000, 100000};
  const std::vector<long> iter_counts = {1, 10, 100, 1000, 10000};

  for (int np : nps) {
    bench::banner("Fig. 6: reordering gain heatmap, NP = " +
                  std::to_string(np) +
                  " (rows: iterations, columns: buffer size in MPI_INT, "
                  "values: gain %)");
    std::vector<std::string> header{"iters \\ size"};
    for (std::size_t s : sizes) header.push_back(std::to_string(s));
    Table table(header);

    std::vector<CellTimings> cells;
    cells.reserve(sizes.size());
    for (std::size_t s : sizes) cells.push_back(run_cell(np, s));

    int green_large = 0;
    int red_small = 0;
    for (long n : iter_counts) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t ci = 0; ci < sizes.size(); ++ci) {
        const auto& c = cells[ci];
        const double t1 = static_cast<double>(n) * c.titer_before;
        const double t3 = static_cast<double>(n) * c.titer_after;
        const double gain = 100.0 * (t1 - (c.t2 + t3)) / t1;
        row.push_back(format_sig(gain, 3));
        if (n == iter_counts.back() && sizes[ci] >= 10000 && gain > 0)
          ++green_large;
        if (n == 1 && sizes[ci] <= 10 && gain < 0) ++red_small;
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    bench::maybe_csv(opt, table, "fig6_heatmap_np" + std::to_string(np));
    std::printf(
        "shape: %d small cells negative (reorder cost dominates), "
        "%d large cells positive (reorder amortized)\n",
        red_small, green_large);
  }
  return 0;
}
