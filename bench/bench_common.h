// Shared plumbing for the paper-reproduction bench binaries.
//
// Every binary accepts "--quick" (shrunk sweeps, for smoke runs) and
// "--csv <dir>" (also emit CSV files next to the printed tables).
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/api.h"
#include "mpimon/sim.h"
#include "support/table.h"
#include "topo/topology.h"

namespace mpim::bench {

struct Options {
  bool quick = false;
  std::optional<std::string> csv_dir;
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      opt.csv_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--quick] [--csv <dir>]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

inline void maybe_csv(const Options& opt, const Table& table,
                      const std::string& name) {
  if (opt.csv_dir) table.write_csv_file(*opt.csv_dir + "/" + name + ".csv");
}

/// PlaFRIM-like engine config: `nranks` ranks over `nodes` 24-core nodes
/// with the given initial placement policy ("rr", "random", "standard").
inline mpi::EngineConfig plafrim_config(int nodes, int nranks,
                                        const std::string& mapping = "rr",
                                        unsigned long seed = 1) {
  auto cost = net::CostModel::plafrim_like(nodes);
  topo::Placement placement;
  if (mapping == "rr") {
    placement = topo::round_robin_placement(nranks, cost.topology());
  } else if (mapping == "random") {
    placement = topo::random_placement(nranks, cost.topology(), seed);
  } else if (mapping == "standard") {
    placement = topo::bynode_placement(nranks, cost.topology());
  } else {
    std::cerr << "unknown mapping " << mapping << "\n";
    std::exit(2);
  }
  mpi::EngineConfig cfg{.cost_model = std::move(cost),
                        .placement = std::move(placement)};
  cfg.watchdog_wall_timeout_s = 60.0;
  // The paper's testbed shares one Omni-Path NIC among 24 ranks per node:
  // all figure reproductions run with the contention model on. The port
  // wire rate (~12.5 GB/s) is twice the single-flow effective bandwidth.
  cfg.nic_contention = true;
  cfg.nic_port_beta_scale = 2.0;
  return cfg;
}

inline int nodes_for_ranks(int nranks) {
  return (nranks + 23) / 24;  // 24 ranks per node, like the paper
}

inline void banner(const std::string& what) {
  std::cout << "\n=== " << what << " ===\n";
}

}  // namespace mpim::bench
