// Shared plumbing for the paper-reproduction bench binaries.
//
// Every binary accepts "--quick" (shrunk sweeps, for smoke runs) and
// "--csv <dir>" (also emit CSV files next to the printed tables).
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "minimpi/api.h"
#include "mpimon/sim.h"
#include "support/table.h"
#include "topo/topology.h"

namespace mpim::bench {

struct Options {
  bool quick = false;
  std::optional<std::string> csv_dir;
  std::string prog = "bench";  ///< binary basename, "bench_" prefix stripped
};

namespace detail {

/// Accumulates every table a run emitted so an atexit hook can mirror them
/// into <csv_dir>/BENCH_<prog>.json -- the per-PR trajectory file
/// scripts/bench_trend.py tracks alongside the google-benchmark JSONs.
struct JsonSink {
  std::string path;
  std::string prog;
  std::vector<std::pair<std::string, Table>> tables;
};

inline JsonSink& json_sink() {
  static JsonSink sink;
  return sink;
}

inline std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // tables are text
    out.push_back(c);
  }
  return out;
}

inline void flush_json_sink() {
  const JsonSink& sink = json_sink();
  if (sink.path.empty() || sink.tables.empty()) return;
  std::ofstream os(sink.path);
  if (!os.good()) return;
  os << "{\n  \"format\": \"mpim-bench-tables\",\n  \"program\": \""
     << json_escape(sink.prog) << "\",\n  \"tables\": [";
  bool first_table = true;
  for (const auto& [name, table] : sink.tables) {
    os << (first_table ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(name) << "\", \"header\": [";
    first_table = false;
    bool first = true;
    for (const std::string& h : table.header()) {
      os << (first ? "" : ", ") << '"' << json_escape(h) << '"';
      first = false;
    }
    os << "], \"rows\": [";
    bool first_row = true;
    for (const auto& row : table.rows()) {
      os << (first_row ? "" : ", ") << '[';
      first_row = false;
      first = true;
      for (const std::string& cell : row) {
        os << (first ? "" : ", ") << '"' << json_escape(cell) << '"';
        first = false;
      }
      os << ']';
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace detail

inline Options parse_options(int argc, char** argv) {
  Options opt;
  std::string base = argv[0];
  if (const auto slash = base.find_last_of('/'); slash != std::string::npos)
    base = base.substr(slash + 1);
  if (base.rfind("bench_", 0) == 0) base = base.substr(6);
  opt.prog = base;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      opt.csv_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--quick] [--csv <dir>]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

inline void maybe_csv(const Options& opt, const Table& table,
                      const std::string& name) {
  if (!opt.csv_dir) return;
  table.write_csv_file(*opt.csv_dir + "/" + name + ".csv");
  detail::JsonSink& sink = detail::json_sink();
  if (sink.path.empty()) {
    sink.path = *opt.csv_dir + "/BENCH_" + opt.prog + ".json";
    sink.prog = opt.prog;
    std::atexit(detail::flush_json_sink);
  }
  sink.tables.emplace_back(name, table);
}

/// PlaFRIM-like engine config: `nranks` ranks over `nodes` 24-core nodes
/// with the given initial placement policy ("rr", "random", "standard").
inline mpi::EngineConfig plafrim_config(int nodes, int nranks,
                                        const std::string& mapping = "rr",
                                        unsigned long seed = 1) {
  auto cost = net::CostModel::plafrim_like(nodes);
  topo::Placement placement;
  if (mapping == "rr") {
    placement = topo::round_robin_placement(nranks, cost.topology());
  } else if (mapping == "random") {
    placement = topo::random_placement(nranks, cost.topology(), seed);
  } else if (mapping == "standard") {
    placement = topo::bynode_placement(nranks, cost.topology());
  } else {
    std::cerr << "unknown mapping " << mapping << "\n";
    std::exit(2);
  }
  mpi::EngineConfig cfg{.cost_model = std::move(cost),
                        .placement = std::move(placement)};
  cfg.watchdog_wall_timeout_s = 60.0;
  // The paper's testbed shares one Omni-Path NIC among 24 ranks per node:
  // all figure reproductions run with the contention model on. The port
  // wire rate (~12.5 GB/s) is twice the single-flow effective bandwidth.
  cfg.nic_contention = true;
  cfg.nic_port_beta_scale = 2.0;
  return cfg;
}

inline int nodes_for_ranks(int nranks) {
  return (nranks + 23) / 24;  // 24 ranks per node, like the paper
}

inline void banner(const std::string& what) {
  std::cout << "\n=== " << what << " ===\n";
}

}  // namespace mpim::bench
