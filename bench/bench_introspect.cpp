// Time-resolved introspection: the two properties the snapshot subsystem
// promises.
//
// Part 1 (hot path): the virtual clocks of a run are bit-identical with a
// windowed snapshot attached and without one -- the sampler charges zero
// simulated time -- and the host-side cost of the hook stays small. This is
// the "Fig. 4 contrast regresses 0%" proof: the modeled overhead curves
// cannot move if the clocks cannot.
//
// Part 2 (Fig. 2, time-resolved): the Section 6.1 burst/sleep generator
// monitored by a 10 ms windowed snapshot. The per-window matrices gathered
// with MPI_M_get_frames must reproduce the generator's own 10 ms
// introspection series bin for bin, and the phase detector must flag every
// burst <-> sleep edge. The frames land in <csv>/fig2_frames.csv, which
// `monview --timeline` renders as the per-window heatmap.
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "apps/traffic.h"
#include "bench_common.h"
#include "introspect/analyzer.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"

namespace {

using namespace mpim;

struct HotPath {
  double ns_per_send = 0.0;
  double virtual_end_s = 0.0;
};

/// One monitored run of `sends` back-to-back sends from rank 0, with or
/// without a snapshot attached to the session. Returns the host cost per
/// send and the sender's virtual clock right after the timed loop.
HotPath run_hot_path(bool snapshot_on, int sends) {
  Sim sim(bench::plafrim_config(1, 2));
  HotPath out;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      mon::check_rc(MPI_M_init(), "MPI_M_init");
      MPI_M_msid id = -1;
      mon::check_rc(MPI_M_start(world, &id), "MPI_M_start");
      if (snapshot_on)
        mon::check_rc(
            MPI_M_snapshot_start(id, /*window_s=*/1e-4, /*max_frames=*/256,
                                 MPI_M_ALL_COMM),
            "MPI_M_snapshot_start");
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < sends; ++i)
        mpi::send(nullptr, 64, mpi::Type::Byte, 1, 1, world);
      const auto t1 = std::chrono::steady_clock::now();
      out.ns_per_send =
          std::chrono::duration<double, std::nano>(t1 - t0).count() / sends;
      out.virtual_end_s = ctx.now();
      mpi::send(nullptr, 0, mpi::Type::Byte, 1, 2, world);  // stop marker
      mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
      if (snapshot_on)
        mon::check_rc(MPI_M_snapshot_stop(id), "MPI_M_snapshot_stop");
      mon::check_rc(MPI_M_free(id), "MPI_M_free");
      mon::check_rc(MPI_M_finalize(), "MPI_M_finalize");
    } else {
      for (;;) {
        const mpi::Status st =
            mpi::recv(nullptr, 64, mpi::Type::Byte, 0, mpi::kAnyTag, world);
        if (st.tag == 2) break;
      }
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  int failures = 0;

  // --- Part 1: hot-path cost and clock bit-identity --------------------------
  bench::banner("snapshot hot path: host cost and virtual-clock identity");
  const int sends = opt.quick ? 5000 : 20000;
  HotPath off{1e300, 0.0}, on{1e300, 0.0};
  for (int rep = 0; rep < 3; ++rep) {  // best of 3: host timing is noisy
    const HotPath o = run_hot_path(false, sends);
    const HotPath s = run_hot_path(true, sends);
    if (o.ns_per_send < off.ns_per_send) off = o;
    if (s.ns_per_send < on.ns_per_send) on = s;
  }
  const bool identical = off.virtual_end_s == on.virtual_end_s;
  if (!identical) ++failures;

  Table t1({"snapshot", "host ns/send", "virtual end (s)"});
  t1.add("off", format_sig(off.ns_per_send), format_sig(off.virtual_end_s, 12));
  t1.add("on", format_sig(on.ns_per_send), format_sig(on.virtual_end_s, 12));
  t1.print(std::cout);
  std::printf("virtual clocks bit-identical: %s\n", identical ? "yes" : "NO");
  std::printf("host overhead per send: %+.1f%% (modeled time: 0%%)\n",
              100.0 * (on.ns_per_send / off.ns_per_send - 1.0));
  bench::maybe_csv(opt, t1, "introspect_hot_path");

  // --- Part 2: Fig. 2 burst schedule, time-resolved --------------------------
  bench::banner("Fig. 2 time-resolved: 10 ms windows vs generator series");
  apps::TrafficConfig cfg;
  cfg.duration_s = opt.quick ? 5.0 : 40.0;
  const int max_frames = opt.quick ? 1024 : 8192;

  auto ecfg = bench::plafrim_config(2, 2);
  ecfg.placement = {0, 24};  // one rank per node, like the paper's pair
  Sim sim(std::move(ecfg));

  apps::TrafficSeries series;
  std::vector<introspect::FrameMatrix> frames;
  int boundaries_on_rank0 = 0;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    mon::Environment env;
    mon::Session session(world);
    session.snapshot_start(cfg.sample_period_s, max_frames);

    // The generator runs its own session with 10 ms read-and-reset
    // sampling; the windowed snapshot observes the same traffic passively.
    auto s = apps::run_traffic_generator(world, cfg);

    session.suspend();
    if (ctx.world_rank() == 0) {
      series = std::move(s);
      boundaries_on_rank0 = session.snapshot_info().phase_boundaries;
    }
    auto f = session.gather_frames(max_frames, MPI_M_ALL_COMM);
    if (ctx.world_rank() == 0) frames = std::move(f);
    session.snapshot_stop();
  });

  // Bin-for-bin agreement: frame window w holds exactly what the
  // generator's sample w read with the reset feature.
  std::size_t mismatched = 0;
  std::uint64_t frame_total = 0;
  std::vector<std::uint64_t> per_window(series.introspection.size(), 0);
  for (const introspect::FrameMatrix& f : frames) {
    std::uint64_t w_bytes = 0;
    for (unsigned long v : f.bytes.flat()) w_bytes += v;
    frame_total += w_bytes;
    if (f.window >= 0 &&
        static_cast<std::size_t>(f.window) < per_window.size())
      per_window[static_cast<std::size_t>(f.window)] = w_bytes;
  }
  for (std::size_t w = 0; w < series.introspection.size(); ++w)
    if (per_window[w] != series.introspection[w].bytes) ++mismatched;

  // Every burst <-> sleep edge must carry a phase-boundary flag (extra
  // flags on large burst-size jumps are legitimate).
  const auto metrics = introspect::analyze_windows(frames);
  std::size_t edges = 0, edges_flagged = 0;
  for (std::size_t i = 1; i < metrics.size(); ++i) {
    const bool was = metrics[i - 1].bytes != 0, is = metrics[i].bytes != 0;
    if (was == is) continue;
    ++edges;
    if (metrics[i].boundary) ++edges_flagged;
  }

  Table t2({"check", "value"});
  t2.add("windows gathered", frames.size());
  t2.add("generator samples", series.introspection.size());
  t2.add("mismatched bins", mismatched);
  t2.add("bytes (frames)", frame_total);
  t2.add("bytes (sent)", series.total_sent_bytes);
  t2.add("burst/sleep edges", edges);
  t2.add("edges phase-flagged", edges_flagged);
  t2.add("boundaries (sampler)", boundaries_on_rank0);
  t2.print(std::cout);
  if (mismatched != 0 || frame_total != series.total_sent_bytes ||
      edges == 0 || edges_flagged != edges) {
    std::printf("FAIL: windowed frames disagree with the generator series\n");
    ++failures;
  } else {
    std::printf("frames reproduce the burst schedule, all %zu edges "
                "phase-flagged\n", edges);
  }
  bench::maybe_csv(opt, t2, "introspect_fig2_checks");
  if (opt.csv_dir) {
    const std::string path = *opt.csv_dir + "/fig2_frames.csv";
    introspect::write_frames_csv_file(path, frames);
    std::printf("frames written to %s (render: monview --timeline %s)\n",
                path.c_str(), path.c_str());
  }

  return failures == 0 ? 0 : 1;
}
