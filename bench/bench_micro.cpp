// Google-benchmark microbenchmarks of the monitoring stack itself: hook
// dispatch, session operations, data reads and the TreeMatch kernel. These
// measure *host* time (the real instrumentation cost of this
// implementation), complementing the modeled overhead of Fig. 4.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "support/rng.h"
#include "treematch/treematch.h"

namespace {

using namespace mpim;

mpi::EngineConfig small_cfg(int nranks) {
  auto cost = net::CostModel::plafrim_like(
      std::max(1, (nranks + 23) / 24));
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(nranks, cost.topology())};
  return cfg;
}

/// Host cost of one monitored send (hook dispatch + accumulator update),
/// with the given number of concurrently active sessions.
void BM_MonitoredSend(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  Sim sim(small_cfg(2));
  double ns_per_send = 0.0;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      MPI_M_init();
      std::vector<MPI_M_msid> ids(static_cast<std::size_t>(sessions));
      for (auto& id : ids) MPI_M_start(world, &id);
      const auto t0 = std::chrono::steady_clock::now();
      constexpr int kSends = 20000;
      for (int i = 0; i < kSends; ++i)
        mpi::send(nullptr, 64, mpi::Type::Byte, 1, 1, world);
      const auto t1 = std::chrono::steady_clock::now();
      ns_per_send =
          std::chrono::duration<double, std::nano>(t1 - t0).count() / kSends;
      mpi::send(nullptr, 0, mpi::Type::Byte, 1, 2, world);  // stop
      MPI_M_suspend(MPI_M_ALL_MSID);
      MPI_M_free(MPI_M_ALL_MSID);
      MPI_M_finalize();
    } else {
      for (;;) {
        mpi::Status st = mpi::recv(nullptr, 64, mpi::Type::Byte, 0,
                                   mpi::kAnyTag, world);
        if (st.tag == 2) break;
      }
    }
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns_per_send);
  }
  state.counters["ns_per_send"] = ns_per_send;
}
BENCHMARK(BM_MonitoredSend)->Arg(0)->Arg(1)->Arg(4)->Arg(16);

void BM_SessionStartSuspendFree(benchmark::State& state) {
  Sim sim(small_cfg(1));
  double us_per_cycle = 0.0;
  sim.run([&](mpi::Ctx& ctx) {
    MPI_M_init();
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kCycles = 5000;
    for (int i = 0; i < kCycles; ++i) {
      MPI_M_msid id;
      MPI_M_start(ctx.world(), &id);
      MPI_M_suspend(id);
      MPI_M_free(id);
    }
    const auto t1 = std::chrono::steady_clock::now();
    us_per_cycle =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kCycles;
    MPI_M_finalize();
  });
  for (auto _ : state) benchmark::DoNotOptimize(us_per_cycle);
  state.counters["us_per_cycle"] = us_per_cycle;
}
BENCHMARK(BM_SessionStartSuspendFree);

void BM_GetData(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  Sim sim(small_cfg(nranks));
  double us_per_read = 0.0;
  sim.run([&](mpi::Ctx& ctx) {
    MPI_M_init();
    MPI_M_msid id;
    MPI_M_start(ctx.world(), &id);
    MPI_M_suspend(id);
    std::vector<unsigned long> row(static_cast<std::size_t>(nranks));
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReads = 5000;
    for (int i = 0; i < kReads; ++i)
      MPI_M_get_data(id, row.data(), MPI_M_DATA_IGNORE, MPI_M_ALL_COMM);
    const auto t1 = std::chrono::steady_clock::now();
    if (ctx.world_rank() == 0)
      us_per_read =
          std::chrono::duration<double, std::micro>(t1 - t0).count() / kReads;
    MPI_M_free(id);
    MPI_M_finalize();
  });
  for (auto _ : state) benchmark::DoNotOptimize(us_per_read);
  state.counters["us_per_read"] = us_per_read;
}
BENCHMARK(BM_GetData)->Arg(4)->Arg(48);

void BM_TreeMatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  CommMatrix m = CommMatrix::square(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    m(static_cast<std::size_t>(i), static_cast<std::size_t>((i + 1) % n)) =
        1000;
    const int far = static_cast<int>(
        rng.uniform_u64(0, static_cast<std::uint64_t>(n - 1)));
    if (far != i)
      m(static_cast<std::size_t>(i), static_cast<std::size_t>(far)) = 500;
  }
  const auto topo = topo::Topology::cluster((n + 23) / 24, 2, 12);
  for (auto _ : state) {
    auto map = tm::treematch_leaves(m, topo);
    benchmark::DoNotOptimize(map);
  }
}
BENCHMARK(BM_TreeMatch)->Arg(48)->Arg(192)->Arg(768)->Unit(
    benchmark::kMillisecond);

void BM_EngineP2pRoundtrip(benchmark::State& state) {
  // Host throughput of the transport itself (messages per second the
  // simulator can process on this machine).
  Sim sim(small_cfg(2));
  double us_per_roundtrip = 0.0;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    constexpr int kRounds = 20000;
    if (ctx.world_rank() == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kRounds; ++i) {
        mpi::send(nullptr, 8, mpi::Type::Byte, 1, 0, world);
        mpi::recv(nullptr, 8, mpi::Type::Byte, 1, 0, world);
      }
      const auto t1 = std::chrono::steady_clock::now();
      us_per_roundtrip =
          std::chrono::duration<double, std::micro>(t1 - t0).count() /
          kRounds;
    } else {
      for (int i = 0; i < kRounds; ++i) {
        mpi::recv(nullptr, 8, mpi::Type::Byte, 0, 0, world);
        mpi::send(nullptr, 8, mpi::Type::Byte, 0, 0, world);
      }
    }
  });
  for (auto _ : state) benchmark::DoNotOptimize(us_per_roundtrip);
  state.counters["us_per_roundtrip"] = us_per_roundtrip;
}
BENCHMARK(BM_EngineP2pRoundtrip);

}  // namespace

// BENCHMARK_MAIN, plus a default JSON report: unless the caller passes its
// own --benchmark_out, the per-benchmark ns/op land in
// results/BENCH_micro.json so CI and the driver always have the numbers.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  std::string out_flag = "--benchmark_out=results/BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    if (!ec) {
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
