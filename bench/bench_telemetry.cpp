// Host-time cost of the telemetry subsystem itself.
//
// Three tiers per hot-path operation:
//   absent      -- the operation the instrumentation replaces (plain code,
//                  no telemetry call compiled into the loop),
//   disabled    -- telemetry compiled in but switched off (the default):
//                  one relaxed atomic load per site,
//   enabled     -- full recording.
//
// Plus a fig4-style end-to-end contrast: host ns per monitored send with
// telemetry off vs on, written to results/BENCH_telemetry_overhead.csv.
// The per-benchmark ns/op additionally land in results/BENCH_telemetry.json
// (override with your own --benchmark_out).
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/sim.h"
#include "support/table.h"
#include "telemetry/hub.h"

namespace {

using namespace mpim;

// --- counter increment -------------------------------------------------------

void BM_CounterAdd_Absent(benchmark::State& state) {
  std::uint64_t plain = 0;
  for (auto _ : state) {
    plain += 1;
    benchmark::DoNotOptimize(plain);
  }
}
BENCHMARK(BM_CounterAdd_Absent);

void BM_CounterAdd_Disabled(benchmark::State& state) {
  telemetry::Hub hub(1);
  const int id = hub.ids().engine_messages;
  for (auto _ : state) hub.add(id, 0);
  benchmark::DoNotOptimize(hub.registry().counter_total(id));
}
BENCHMARK(BM_CounterAdd_Disabled);

void BM_CounterAdd_Enabled(benchmark::State& state) {
  telemetry::Hub hub(1);
  hub.set_enabled(true);
  const int id = hub.ids().engine_messages;
  for (auto _ : state) hub.add(id, 0);
  benchmark::DoNotOptimize(hub.registry().counter_total(id));
}
BENCHMARK(BM_CounterAdd_Enabled);

void BM_HistogramObserve_Enabled(benchmark::State& state) {
  telemetry::Hub hub(1);
  hub.set_enabled(true);
  const int id = hub.ids().engine_msg_bytes;
  double v = 1.0;
  for (auto _ : state) {
    hub.observe(id, 0, v);
    v = v < 1e6 ? v * 2 : 1.0;  // sweep the buckets
  }
  benchmark::DoNotOptimize(hub.registry().histogram(id, 0).count);
}
BENCHMARK(BM_HistogramObserve_Enabled);

// --- span start/stop ---------------------------------------------------------

void BM_SpanStartStop_Absent(benchmark::State& state) {
  // What an instrumented site does anyway: read a clock twice.
  double t = 0.0;
  for (auto _ : state) {
    t += 1e-9;
    double t2 = t + 1e-9;
    benchmark::DoNotOptimize(t2);
  }
}
BENCHMARK(BM_SpanStartStop_Absent);

void BM_SpanStartStop_Disabled(benchmark::State& state) {
  telemetry::Hub hub(1);
  double t = 0.0;
  for (auto _ : state) {
    if (hub.span_begin(0, "bench", 'C', t)) hub.span_end(0, t + 1e-9);
    t += 1e-9;
  }
  benchmark::DoNotOptimize(hub.spans_recorded());
}
BENCHMARK(BM_SpanStartStop_Disabled);

void BM_SpanStartStop_Enabled(benchmark::State& state) {
  telemetry::Hub hub(1);
  hub.set_enabled(true);
  double t = 0.0;
  for (auto _ : state) {
    if (hub.span_begin(0, "bench", 'C', t)) hub.span_end(0, t + 1e-9);
    t += 1e-9;
  }
  benchmark::DoNotOptimize(hub.spans_recorded());
}
BENCHMARK(BM_SpanStartStop_Enabled);

void BM_SpanComplete_Enabled(benchmark::State& state) {
  telemetry::Hub hub(1);
  hub.set_enabled(true);
  double t = 0.0;
  for (auto _ : state) {
    hub.span_complete(0, "bench", 'S', t, t + 1e-9);
    t += 1e-9;
  }
  benchmark::DoNotOptimize(hub.spans_recorded());
}
BENCHMARK(BM_SpanComplete_Enabled);

// --- fig4-style end-to-end contrast ------------------------------------------

struct RunCost {
  double ns_per_send = 0.0;    // host time
  double virtual_end_s = 0.0;  // must be identical off vs on
};

/// Host ns per monitored send (active MPI_M session, like Fig. 4's
/// monitored configuration) with telemetry off or on.
RunCost measure_ns_per_send(bool telemetry_on) {
  auto cost = net::CostModel::plafrim_like(1);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(2, cost.topology())};
  Sim sim(std::move(cfg));
  sim.engine().telemetry().set_enabled(telemetry_on);
  RunCost out;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      MPI_M_init();
      MPI_M_msid id;
      MPI_M_start(world, &id);
      constexpr int kSends = 50000;
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kSends; ++i)
        mpi::send(nullptr, 64, mpi::Type::Byte, 1, 1, world);
      const auto t1 = std::chrono::steady_clock::now();
      out.ns_per_send =
          std::chrono::duration<double, std::nano>(t1 - t0).count() / kSends;
      mpi::send(nullptr, 0, mpi::Type::Byte, 1, 2, world);  // stop
      MPI_M_suspend(id);
      MPI_M_free(id);
      MPI_M_finalize();
      out.virtual_end_s = ctx.now();
    } else {
      for (;;) {
        mpi::Status st = mpi::recv(nullptr, 64, mpi::Type::Byte, 0,
                                   mpi::kAnyTag, world);
        if (st.tag == 2) break;
      }
    }
  });
  return out;
}

void write_overhead_csv() {
  // Best of 3 per configuration: the comparison is about the instruction
  // path, not scheduler noise.
  RunCost off, on;
  off.ns_per_send = on.ns_per_send = 1e300;
  for (int i = 0; i < 3; ++i) {
    const RunCost o = measure_ns_per_send(false);
    const RunCost e = measure_ns_per_send(true);
    if (o.ns_per_send < off.ns_per_send) off = o;
    if (e.ns_per_send < on.ns_per_send) on = e;
  }
  // The figure-level guarantee: telemetry never charges virtual time, so
  // every modeled result (bench_fig4_overhead included) is bit-identical
  // with telemetry on or off. Host time is what enabling actually costs.
  const double vt_regress =
      100.0 * (on.virtual_end_s - off.virtual_end_s) / off.virtual_end_s;
  Table t({"config", "ns_per_monitored_send", "host_overhead_pct",
           "virtual_end_s", "virtual_time_regress_pct"});
  t.add("telemetry_disabled", off.ns_per_send, 0.0, off.virtual_end_s, 0.0);
  t.add("telemetry_enabled", on.ns_per_send,
        100.0 * (on.ns_per_send - off.ns_per_send) / off.ns_per_send,
        on.virtual_end_s, vt_regress);
  t.print(std::cout);
  std::cout << (on.virtual_end_s == off.virtual_end_s
                    ? "virtual clocks bit-identical on vs off: modeled "
                      "figures (fig4) regress by exactly 0%\n"
                    : "WARNING: virtual clocks differ -- telemetry leaked "
                      "into the cost model\n");
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  if (!ec) t.write_csv_file("results/BENCH_telemetry_overhead.csv");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  std::string out_flag = "--benchmark_out=results/BENCH_telemetry.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    if (!ec) {
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  write_overhead_csv();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
