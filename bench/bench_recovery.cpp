// Recovery-path costs: what surviving a rank failure costs, and what the
// dead-row skip saves over the pre-recovery timeout path.
//
// Table 1 (recovery_shrink): time-to-recover vs world size. One rank
// crashes early; the survivors run comm_shrink (agree on the dead set,
// renumber, intern). Reported per world size: the maximum virtual time any
// survivor spends inside comm_shrink (deterministic, the number that lands
// in application clocks) and the host wall time of the whole run
// (informational).
//
// Table 2 (recovery_gather): post-failure gather latency, host wall ms on
// the root, three scenarios:
//
//   stall_timeout   the contributor is stalled-not-dead, so the gather
//                   must burn the full recovery timeout before filling the
//                   sentinel row -- the only option the pre-recovery stack
//                   had for *any* missing contributor, every call.
//   crash_deadskip  the contributor is dead and the engine knows it: the
//                   gather skips the row immediately (MPI_M_PARTIAL_DATA,
//                   zero stall).
//   post_shrink     after comm_shrink + a fresh session on the survivors:
//                   the dead rank is not a member, the gather is complete
//                   (MPI_M_SUCCESS) and fast.
//
// Emits results/BENCH_recovery.json via the bench_common mirror so
// scripts/bench_trend.py tracks the trajectory (informational metrics; the
// hot-path gates live in bench_record/bench_micro).
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"
#include "minimpi/engine.h"
#include "minimpi/ft.h"
#include "mpimon/mpi_monitoring.h"
#include "mpit/runtime.h"

namespace {

using namespace mpim;

constexpr int kVictim = 1;

mpi::EngineConfig recovery_config(int nranks,
                                  std::shared_ptr<fault::FaultPlan> plan) {
  auto cost = net::CostModel::plafrim_like(bench::nodes_for_ranks(nranks));
  auto placement = topo::round_robin_placement(nranks, cost.topology());
  mpi::EngineConfig cfg{.cost_model = std::move(cost),
                        .placement = std::move(placement)};
  cfg.watchdog_wall_timeout_s = 120.0;
  cfg.fault_plan = std::move(plan);
  return cfg;
}

std::shared_ptr<fault::FaultPlan> crash_plan(double at_s) {
  auto plan = std::make_shared<fault::FaultPlan>(/*seed=*/1);
  plan->add(fault::RankFault{.rank = kVictim, .crash_at_s = at_s});
  return plan;
}

/// Self-roundtrips: advances every rank's clock (so the victim reaches its
/// crash trigger) without any cross-rank dependence before the shrink.
void warm_clock(mpi::Ctx& ctx, int iters) {
  const mpi::Comm world = ctx.world();
  const int me = ctx.world_rank();
  char buf[8] = {0};
  for (int i = 0; i < iters; ++i) {
    ctx.send_bytes(me, world, 9, mpi::CommKind::p2p, buf, sizeof buf);
    ctx.recv_bytes(me, world, 9, mpi::CommKind::p2p, buf, sizeof buf);
  }
}

struct ShrinkCost {
  double virtual_s = 0.0;  ///< max over survivors, deterministic
  double wall_s = 0.0;     ///< whole run, host
};

ShrinkCost measure_shrink(int nranks) {
  mpi::Engine engine(recovery_config(nranks, crash_plan(1e-5)));
  std::vector<double> delta(static_cast<std::size_t>(nranks), 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  engine.run([&](mpi::Ctx& ctx) {
    mpi::comm_set_errhandler(ctx.world(), mpi::ErrMode::ret);
    warm_clock(ctx, 200);  // the victim dies in here
    const double before = ctx.now();
    const mpi::Comm alive = mpi::comm_shrink(ctx.world());
    delta[static_cast<std::size_t>(ctx.world_rank())] = ctx.now() - before;
    // Touch the result so the shrink cannot be optimized into thin air.
    if (mpi::comm_size(alive) != nranks - 1) std::abort();
  });
  ShrinkCost cost;
  cost.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (double d : delta) cost.virtual_s = std::max(cost.virtual_s, d);
  return cost;
}

struct GatherCost {
  double wall_s = 0.0;  ///< host wall of the gather call on world rank 0
  int rc = -1;
};

/// One monitored run with a faulty contributor; measures the allgather on
/// the root. `shrink_first` moves the gather onto the survivors-only comm.
GatherCost measure_gather(int nranks, std::shared_ptr<fault::FaultPlan> plan,
                          double timeout_s, bool shrink_first) {
  mpi::Engine engine(recovery_config(nranks, std::move(plan)));
  mpit::Runtime tool(engine);
  GatherCost cost;
  engine.run([&](mpi::Ctx& ctx) {
    mpi::Comm comm = ctx.world();
    mpi::comm_set_errhandler(comm, mpi::ErrMode::ret);
    MPI_M_init();
    MPI_M_set_gather_timeout(timeout_s);
    warm_clock(ctx, 200);  // crash/stall triggers in here
    if (shrink_first) comm = mpi::comm_shrink(ctx.world());
    MPI_M_msid id = -1;
    if (MPI_M_start(comm, &id) != MPI_M_SUCCESS) std::abort();
    warm_clock(ctx, 10);
    MPI_M_suspend(id);
    const int n = mpi::comm_size(comm);
    std::vector<unsigned long> counts(static_cast<std::size_t>(n) *
                                      static_cast<std::size_t>(n));
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = MPI_M_allgather_data(id, counts.data(), MPI_M_DATA_IGNORE,
                                        MPI_M_ALL_COMM);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (ctx.world_rank() == 0) {
      cost.wall_s = wall;
      cost.rc = rc;
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::vector<int> sizes =
      opt.quick ? std::vector<int>{8, 16} : std::vector<int>{8, 16, 32};
  const int reps = opt.quick ? 2 : 3;

  bench::banner("time-to-recover: comm_shrink after one crash (best of " +
                std::to_string(reps) + ")");
  Table shrink_t({"ranks", "shrink_virtual_us", "run_wall_ms"});
  for (int n : sizes) {
    ShrinkCost best = measure_shrink(n);
    for (int r = 1; r < reps; ++r) {
      const ShrinkCost c = measure_shrink(n);
      best.wall_s = std::min(best.wall_s, c.wall_s);
      best.virtual_s = c.virtual_s;  // deterministic: same every rep
    }
    shrink_t.add(n, format_sig(best.virtual_s * 1e6, 4),
                 format_sig(best.wall_s * 1e3, 4));
  }
  shrink_t.print(std::cout);
  bench::maybe_csv(opt, shrink_t, "recovery_shrink");

  bench::banner("post-failure gather latency on the root (8 ranks)");
  const int n = 8;
  const double timeout_s = 0.2;
  Table gather_t({"scenario", "gather_wall_ms", "rc"});

  // The pre-recovery path: a stalled (not dead) contributor forces the
  // gather to wait out the full recovery timeout.
  auto stall = std::make_shared<fault::FaultPlan>(/*seed=*/1);
  stall->add(fault::RankFault{.rank = kVictim,
                              .stall_at_s = 1e-5,
                              .stall_virtual_s = 0.0,
                              .stall_wall_s = 1.0});
  const GatherCost to = measure_gather(n, stall, timeout_s, false);
  gather_t.add("stall_timeout", format_sig(to.wall_s * 1e3, 4), to.rc);

  // The recovery path: the engine knows the contributor is dead and the
  // gather skips its row with zero stall.
  const GatherCost skip =
      measure_gather(n, crash_plan(1e-5), timeout_s, false);
  gather_t.add("crash_deadskip", format_sig(skip.wall_s * 1e3, 4), skip.rc);

  // Fully recovered: gather on the shrunk communicator is complete again.
  const GatherCost clean =
      measure_gather(n, crash_plan(1e-5), timeout_s, true);
  gather_t.add("post_shrink", format_sig(clean.wall_s * 1e3, 4), clean.rc);

  gather_t.print(std::cout);
  bench::maybe_csv(opt, gather_t, "recovery_gather");

  const bool ok = to.rc == MPI_M_PARTIAL_DATA &&
                  skip.rc == MPI_M_PARTIAL_DATA && clean.rc == MPI_M_SUCCESS &&
                  to.wall_s >= timeout_s && skip.wall_s < timeout_s / 2;
  std::cout << "\nacceptance: timeout path waited >= " << timeout_s
            << " s, dead-skip did not, post-shrink gather is complete: "
            << (ok ? "ok" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
