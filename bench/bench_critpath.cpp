// Critical-path profiler cost: what happens-before capture does to the
// per-message hook, and how backward blame extraction scales with the
// number of captured events.
//
// Four tables, all mirrored into results/BENCH_critpath.json:
//
//   critpath_hookcost  direct cost of the capture hooks: on_send / on_recv
//                      hammered from one thread against a warmed lane with
//                      a wrapping ring, classification alternating between
//                      late-sender waits and inbox dwell. This is the
//                      number the 5% budget gates (events_per_sec is a
//                      hot-path inverse metric for scripts/bench_trend.py):
//                      the hooks run under the rank mutex senders contend
//                      on, so their per-event cost is what the profiler
//                      adds to the engine's message path.
//
//   critpath_hookwall  end-to-end A/B of the same ring workload with and
//                      without the profiler, 2 and 8 threads. On multi-core
//                      hosts this converges to the direct cost; on a
//                      single-core host the virtual-clock engine's
//                      condvar scheduling is chaotic under oversubscription
//                      (run-to-run swings of +-15 points dwarf the hook
//                      cost), so this table is informational and not gated.
//
//   critpath_extract   post-run report() wall time as the captured event
//                      count grows: classification, blame aggregation,
//                      link sort and the backward path walk all happen
//                      after Engine::run joined, so extraction is off the
//                      application's critical path by construction -- this
//                      tracks that it stays cheap anyway.
//
//   critpath_checks    PASS/FAIL: the hook budget -- direct send+recv hook
//                      cost <= 5% of the 8-thread telemetry baseline's
//                      per-sendrecv wall cost -- and the blame-sum identity
//                      (per-rank blame must sum exactly to total
//                      communication time).
//
// Host wall time, best-of reps; virtual clocks are identical with and
// without the profiler (CritpathClocks.BitIdenticalProfilerOnAndOff).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "critpath/critpath.h"

namespace {

using namespace mpim;

mpi::EngineConfig critpath_config(int nranks) {
  // Contention model off: this bench isolates host-side software cost.
  auto cost = net::CostModel::plafrim_like(bench::nodes_for_ranks(nranks));
  auto placement = topo::round_robin_placement(nranks, cost.topology());
  mpi::EngineConfig cfg{.cost_model = std::move(cost),
                        .placement = std::move(placement)};
  cfg.watchdog_wall_timeout_s = 120.0;
  return cfg;
}

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Ring sendrecv loop: every iteration is one send + one recv per rank,
/// so the capture hooks fire twice per rank per iteration.
void ring_workload(mpi::Ctx& ctx, int iters) {
  const mpi::Comm world = ctx.world();
  const int n = mpi::comm_size(world);
  const int me = mpi::comm_rank(world);
  std::vector<char> buf(64, 1);
  for (int i = 0; i < iters; ++i)
    mpi::sendrecv(buf.data(), buf.size(), mpi::Type::Char, (me + 1) % n, 0,
                  buf.data(), buf.size(), (me + n - 1) % n, 0, world);
}

// --- critpath_hookcost -------------------------------------------------------

struct HookCost {
  double send_ns = 0.0;  ///< per on_send call
  double recv_ns = 0.0;  ///< per on_recv call (classify + charge)
};

/// Direct hook cost on one lane: the ring wraps (steady state) and the
/// recv side alternates late-sender waits with inbox dwell so both
/// classification paths are exercised.
HookCost hook_cost_once(int events) {
  mpi::Engine engine(critpath_config(8));
  engine.telemetry().set_enabled(true);
  auto prof = critpath::Profiler::attach(engine);
  prof->begin_run();

  mpi::PktInfo pkt;
  pkt.src_world = 1;
  pkt.dst_world = 1;
  pkt.bytes = 64;
  pkt.kind = mpi::CommKind::p2p;
  pkt.tag = 0;
  pkt.context_id = 0;

  HookCost out;
  double t = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < events; ++i) {
    pkt.send_seq = static_cast<std::uint64_t>(i) + 1;
    pkt.send_time_s = t;
    prof->on_send(0, pkt, t, t, t + 1e-6, t + 1e-7);
    t += 2e-6;
  }
  out.send_ns = wall_since(t0) / events * 1e9;

  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < events; ++i) {
    pkt.send_seq = static_cast<std::uint64_t>(i) + 1;
    const double pre = t;
    const double arrival = (i & 1) ? pre + 5e-7 : pre - 5e-7;
    prof->on_recv(0, pkt, pre, arrival, std::max(pre, arrival) + 1e-7);
    t += 2e-6;
  }
  out.recv_ns = wall_since(t0) / events * 1e9;
  prof->end_run();
  return out;
}

HookCost hookcost_sweep(const bench::Options& opt) {
  const int events = opt.quick ? 200000 : 1000000;
  const int reps = opt.quick ? 3 : 5;
  HookCost best;
  best.send_ns = 1e300;
  best.recv_ns = 1e300;
  for (int r = 0; r < reps; ++r) {
    const HookCost c = hook_cost_once(events);
    best.send_ns = std::min(best.send_ns, c.send_ns);
    best.recv_ns = std::min(best.recv_ns, c.recv_ns);
  }
  Table t({"config", "events", "ns_per_event", "events_per_sec"});
  t.add("hook/send", events, format_sig(best.send_ns, 4),
        format_sig(1e9 / best.send_ns, 4));
  t.add("hook/recv", events, format_sig(best.recv_ns, 4),
        format_sig(1e9 / best.recv_ns, 4));
  t.print(std::cout);
  bench::maybe_csv(opt, t, "critpath_hookcost");
  return best;
}

// --- critpath_hookwall -------------------------------------------------------

/// One engine run of the ring loop; returns host seconds.
double hookwall_once(int nranks, int iters, bool with_profiler) {
  mpi::Engine engine(critpath_config(nranks));
  engine.telemetry().set_enabled(true);  // the MPIM_TELEMETRY baseline
  std::shared_ptr<critpath::Profiler> prof;
  if (with_profiler) prof = critpath::Profiler::attach(engine);

  const auto t0 = std::chrono::steady_clock::now();
  engine.run([iters](mpi::Ctx& ctx) { ring_workload(ctx, iters); });
  return wall_since(t0);
}

/// Informational A/B; returns the telemetry baseline's ns per sendrecv at
/// 8 threads (the denominator of the budget check).
double hookwall_sweep(const bench::Options& opt) {
  const int total_sends = opt.quick ? 40000 : 160000;
  const int reps = opt.quick ? 3 : 5;
  Table t({"config", "threads", "wall_ns_each", "overhead_pct"});
  double base_ns_at_8 = 0.0;
  for (int nranks : {2, 8}) {
    const int iters = total_sends / nranks;
    const double sends = static_cast<double>(iters) * nranks;
    // Interleave the pairs so machine drift hits both sides equally.
    double base = 1e300, prof = 1e300;
    for (int r = 0; r < reps; ++r) {
      base = std::min(base, hookwall_once(nranks, iters, false));
      prof = std::min(prof, hookwall_once(nranks, iters, true));
    }
    if (nranks == 8) base_ns_at_8 = base / sends * 1e9;
    t.add("telemetry/t" + std::to_string(nranks), nranks,
          format_sig(base / sends * 1e9, 4), format_sig(0.0, 3));
    t.add("critpath/t" + std::to_string(nranks), nranks,
          format_sig(prof / sends * 1e9, 4),
          format_sig((prof / base - 1.0) * 100.0, 3));
  }
  t.print(std::cout);
  bench::maybe_csv(opt, t, "critpath_hookwall");
  return base_ns_at_8;
}

// --- critpath_extract --------------------------------------------------------

struct ExtractSample {
  std::uint64_t events = 0;
  double extract_s = 0.0;
  bool identity_ok = false;
};

/// Run the ring once; the profiler self-times its finalize (it runs
/// eagerly inside the engine's run-end hook, after the rank threads
/// joined), so read extract_host_seconds() rather than re-timing the
/// already-idempotent report() call.
ExtractSample extract_once(int nranks, int iters) {
  mpi::Engine engine(critpath_config(nranks));
  critpath::Config cfg;
  cfg.ring_capacity = 2 * static_cast<std::size_t>(iters) + 64;
  auto prof = critpath::Profiler::attach(engine, cfg);
  engine.run([iters](mpi::Ctx& ctx) { ring_workload(ctx, iters); });
  const critpath::BlameReport& rep = prof->report();

  ExtractSample s;
  s.extract_s = prof->extract_host_seconds();
  std::uint64_t blame = 0, comm = 0;
  for (const auto& r : rep.ranks) {
    s.events += 2 * static_cast<std::uint64_t>(iters);  // sends + recvs
    blame += r.blame_ns;
    comm += r.comm_ns;
  }
  s.identity_ok = rep.valid && blame == comm && comm == rep.total_comm_ns;
  return s;
}

bool extract_sweep(const bench::Options& opt) {
  const int reps = opt.quick ? 3 : 5;
  const std::vector<int> iter_steps =
      opt.quick ? std::vector<int>{500, 2000, 8000}
                : std::vector<int>{500, 2000, 8000, 32000};
  Table t({"config", "ranks", "events", "extract_ms", "events_per_ms"});
  bool identity_ok = true;
  const int nranks = 8;
  for (int iters : iter_steps) {
    ExtractSample best;
    best.extract_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      const ExtractSample s = extract_once(nranks, iters);
      identity_ok = identity_ok && s.identity_ok;
      if (s.extract_s < best.extract_s) best = s;
    }
    t.add("extract/e" + std::to_string(2 * iters * nranks), nranks,
          static_cast<unsigned long>(best.events),
          format_sig(best.extract_s * 1e3, 4),
          format_sig(static_cast<double>(best.events) /
                         (best.extract_s * 1e3),
                     4));
  }
  t.print(std::cout);
  bench::maybe_csv(opt, t, "critpath_extract");
  return identity_ok;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);

  bench::banner("capture hook direct cost (one thread, warmed lane)");
  const HookCost hook = hookcost_sweep(opt);

  bench::banner("hook path wall A/B: telemetry baseline vs +profiler");
  const double base_ns_at_8 = hookwall_sweep(opt);

  bench::banner("blame extraction time vs captured event count");
  const bool identity_ok = extract_sweep(opt);

  // One sendrecv = one on_send + one on_recv; the budget says the pair may
  // cost at most 5% of what the 8-thread telemetry baseline already pays
  // per sendrecv.
  const double hook_pct =
      base_ns_at_8 > 0.0
          ? (hook.send_ns + hook.recv_ns) / base_ns_at_8 * 100.0
          : 0.0;
  Table checks({"check", "value", "limit", "status"});
  checks.add("hook_overhead_pct_t8", format_sig(hook_pct, 3), 5.0,
             hook_pct <= 5.0 ? "PASS" : "FAIL");
  checks.add("blame_identity_exact", identity_ok ? 1 : 0, 1,
             identity_ok ? "PASS" : "FAIL");
  checks.print(std::cout);
  bench::maybe_csv(opt, checks, "critpath_checks");

  if (hook_pct > 5.0)
    std::fprintf(stderr,
                 "bench_critpath: WARNING: capture hooks cost %.2f%% of the "
                 "8-thread baseline per-sendrecv budget (limit 5%%)\n",
                 hook_pct);
  return identity_ok ? 0 : 1;
}
