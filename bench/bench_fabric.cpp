// Cross-fabric reorder benchmarks -- the Fig. 7 / Table 1 cut re-run per
// network fabric (balanced tree, 4-ary fat-tree at 2:1 oversubscription,
// dragonfly 4x9x2).
//
// Table fabric_reorder_gain: for each fabric and NP in {64 (the paper's
// smallest Fig. 7 world), 1024 (fiber backend)}, run a 2-D halo-exchange
// workload from a *random* machine-wide mapping, then monitor one
// iteration, reorder the ranks with TreeMatch against the fabric
// hierarchy (the paper's Figure-1 step) and rerun on the optimized
// communicator. Reported: the steady-state plain/reordered time ratio
// (the one-time monitoring + TreeMatch cost is the scale table's and
// Fig. 7's subject). Expected shape: the reordering never loses, and the
// size of the gain *differs by fabric* -- routed fabrics price locality
// through trunk/global-link sharing, not just NIC serialization, so the
// same permutation is worth a different amount on each of them.
//
// Table fabric_treematch_scale: wall time of the hierarchical-TreeMatch
// reorder decision (sparse 2-D stencil affinity) per fabric at NP = 1024
// and 4096. The np=4096 rows must finish under 1 s with a mapping cost no
// worse than the sequential-fill (bynode) baseline; the np=1024 rows
// export reorders_per_sec, a hot-path inverse gate in
// scripts/bench_trend.py.
#include <chrono>
#include <cmath>
#include <limits>

#include "bench_common.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "reorder/reorder.h"
#include "support/rng.h"
#include "treematch/treematch.h"

namespace {

using namespace mpim;

struct FabricUnderTest {
  const char* label;  ///< row label (also the MPIM_TOPO-style spec)
  const char* spec;
};

constexpr FabricUnderTest kFabrics[] = {
    {"tree", "tree"},
    {"fattree_2to1", "fattree:4,2,2"},
    {"dragonfly", "dragonfly:4,9,2"},
};

/// Random placement over the *whole* machine: rank i starts on a shuffled
/// stride-spread leaf, so a np=64 job on a 16-node fat-tree spans every
/// switch (topo::random_placement shuffles the packed first-np leaves,
/// which would confine small jobs to the first nodes and hide the fabric).
topo::Placement scattered_placement(int np, const topo::Fabric& fab,
                                    unsigned long seed) {
  const int stride = std::max(1, fab.num_leaves() / np);
  topo::Placement p(static_cast<std::size_t>(np));
  for (int i = 0; i < np; ++i) p[static_cast<std::size_t>(i)] = i * stride;
  Rng rng(seed);
  shuffle(p, rng);
  return p;
}

mpi::EngineConfig fabric_config(const char* spec_text, int np,
                                unsigned long seed) {
  const auto spec = topo::parse_fabric_spec(spec_text);
  if (!spec) std::abort();
  auto fab = topo::make_fabric(*spec, np);
  auto cost = net::CostModel::for_fabric(fab);
  auto placement = scattered_placement(np, *fab, seed);
  mpi::EngineConfig cfg{.cost_model = std::move(cost),
                        .placement = std::move(placement)};
  cfg.watchdog_wall_timeout_s = 120.0;
  cfg.nic_contention = true;
  cfg.nic_port_beta_scale = 2.0;
  // Large worlds ride the fiber backend (one OS thread per rank does not
  // reach np=1024); clocks are bit-identical across backends.
  cfg.sched = np >= 512 ? mpi::SchedMode::fibers : mpi::SchedMode::threads;
  return cfg;
}

/// One iteration of a 2-D torus halo exchange in rank space: every rank
/// swaps `bytes` with its four grid neighbours. Under a random placement
/// the neighbours sit on arbitrary nodes; TreeMatch re-clusters them.
void halo_iteration(const mpi::Comm& comm, int side, std::size_t bytes,
                    int tag) {
  const int np = mpi::comm_size(comm);
  const int me = mpi::comm_rank(comm);
  const int r = me / side, c = me % side;
  const int nbr[4] = {((r + 1) % side) * side + c,
                      ((r + side - 1) % side) * side + c,
                      r * side + (c + 1) % side,
                      r * side + (c + side - 1) % side};
  std::vector<char> sendbuf(bytes, 'h'), recvbuf(bytes);
  for (int k = 0; k < 4; ++k) {
    if (nbr[k] == me || nbr[k] >= np) continue;
    mpi::sendrecv(sendbuf.data(), bytes, mpi::Type::Char, nbr[k], tag + k,
                  recvbuf.data(), bytes, nbr[(k % 2 == 0) ? k + 1 : k - 1],
                  tag + k, comm);
  }
}

struct GainCell {
  double exec_ratio = 0.0;  ///< t_plain / t_reordered (virtual time)
  bool reordered = false;   ///< TreeMatch proposal beat the identity
};

GainCell run_gain_cell(const char* spec, int np, int iters,
                       std::size_t bytes) {
  const int side = static_cast<int>(std::round(std::sqrt(np)));
  auto cfg = fabric_config(spec, np, /*seed=*/23);
  Sim sim(std::move(cfg));
  GainCell cell;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();

    // Steady-state halo time on the random placement.
    double t0 = mpi::wtime();
    for (int it = 0; it < iters; ++it)
      halo_iteration(world, side, bytes, 100 * it);
    const double t_plain = mpi::wtime() - t0;

    // Monitored init iteration + Figure-1 reorder, then the same solve on
    // the optimized communicator. The timed window is the steady state
    // *after* the one-time reorder: a long-running app pays monitoring and
    // TreeMatch once (that cost is the scale table's subject, and Fig. 7
    // charges it against a full CG solve); this table isolates what the
    // permutation is worth per iteration on each fabric.
    mon::check_rc(MPI_M_init(), "init");
    const auto res = reorder::monitor_and_reorder(
        world, [&](const mpi::Comm& c) { halo_iteration(c, side, bytes, 7); });
    t0 = mpi::wtime();
    for (int it = 0; it < iters; ++it)
      halo_iteration(res.opt_comm, side, bytes, 100 * it);
    const double t_opt = mpi::wtime() - t0;
    mon::check_rc(MPI_M_finalize(), "finalize");

    bool identity = true;
    for (std::size_t i = 0; i < res.k.size(); ++i)
      identity = identity && res.k[i] == static_cast<int>(i);
    if (ctx.world_rank() == 0) {
      cell.exec_ratio = t_plain / t_opt;
      cell.reordered = !identity;
    }
  });
  return cell;
}

/// Sparse 2-D 4-neighbour stencil affinity plus a sprinkle of long-range
/// heavy rows (same generator family as bench_table1).
tm::AffinityGraph stencil_affinity(int n, unsigned long seed) {
  const int side = static_cast<int>(std::round(std::sqrt(n)));
  tm::AffinityGraph g(static_cast<std::size_t>(n));
  auto id = [&](int r, int c) { return r * side + c; };
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      if (id(r, c) >= n) continue;
      if (c + 1 < side && id(r, c + 1) < n)
        g.add_edge(id(r, c), id(r, c + 1), 1000.0);
      if (r + 1 < side && id(r + 1, c) < n)
        g.add_edge(id(r, c), id(r + 1, c), 1000.0);
    }
  }
  Rng rng(seed);
  for (int i = 0; i < n / 16; ++i) {
    const int u = static_cast<int>(
        rng.uniform_u64(0, static_cast<std::uint64_t>(n - 1)));
    const int v = static_cast<int>(
        rng.uniform_u64(0, static_cast<std::uint64_t>(n - 1)));
    if (u != v) g.add_edge(u, v, rng.uniform(1.0, 5000.0));
  }
  g.finalize();
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);

  bench::banner(
      "fabric reorder gain: halo exchange from a random mapping, per fabric");
  const std::vector<int> gain_nps =
      opt.quick ? std::vector<int>{64} : std::vector<int>{64, 1024};
  Table gain({"fabric_np", "exec-time ratio", "treematch applied"});
  int cells = 0, wins = 0;
  double ratio_min = 1e30, ratio_max = 0.0;
  for (const auto& f : kFabrics) {
    for (int np : gain_nps) {
      const int iters = np >= 1024 ? 6 : 12;
      const GainCell cell =
          run_gain_cell(f.spec, np, iters, /*bytes=*/1 << 14);
      gain.add(std::string(f.label) + "_np" + std::to_string(np),
               format_sig(cell.exec_ratio, 4), cell.reordered ? "yes" : "no");
      ++cells;
      wins += cell.exec_ratio >= 0.99;
      if (np == gain_nps.back()) {
        ratio_min = std::min(ratio_min, cell.exec_ratio);
        ratio_max = std::max(ratio_max, cell.exec_ratio);
      }
    }
  }
  gain.print(std::cout);
  bench::maybe_csv(opt, gain, "fabric_reorder_gain");
  const bool differs = ratio_max - ratio_min > 0.01;
  std::printf("reordering not worse in %d/%d cells; gain spread across "
              "fabrics at np=%d: %.3fx..%.3fx\n",
              wins, cells, gain_nps.back(), ratio_min, ratio_max);

  bench::banner("hierarchical TreeMatch scaling on sparse stencil affinity");
  const std::vector<int> scale_nps =
      opt.quick ? std::vector<int>{1024} : std::vector<int>{1024, 4096};
  Table scale({"fabric_np", "edges", "reorder time (s)", "mapping cost",
               "bynode cost", "reorders_per_sec"});
  bool sub_second = true, never_worse = true;
  for (const auto& f : kFabrics) {
    for (int np : scale_nps) {
      const auto spec = topo::parse_fabric_spec(f.spec);
      const auto fab = topo::make_fabric(*spec, np);
      const auto cost = net::CostModel::for_fabric(fab);
      const auto g = stencil_affinity(np, 7);
      // Best of three: host-timer noise on the sub-second reorder would
      // otherwise flake the 10% trend gate on reorders_per_sec.
      double secs = std::numeric_limits<double>::infinity();
      std::vector<int> map;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        map = tm::treematch_leaves(g, *fab);
        const auto t1 = std::chrono::steady_clock::now();
        secs = std::min(secs,
                        std::chrono::duration<double>(t1 - t0).count());
      }
      const double c_tm = tm::mapping_cost(g, map, cost);
      const auto bynode = topo::bynode_placement(np, fab->hierarchy());
      const double c_base = tm::mapping_cost(g, bynode, cost);
      // Only np=1024 exports the gated rate: 4096 wall times are long
      // enough that run-to-run noise stays under the 10% trend limit, but
      // the ISSUE pins the gate at 1024 -- larger rows are informational.
      scale.add(std::string(f.label) + "_np" + std::to_string(np),
                g.edge_count(), format_sig(secs, 3), format_sig(c_tm, 4),
                format_sig(c_base, 4),
                np == 1024 ? format_sig(1.0 / secs, 4) : std::string("-"));
      if (np == 4096) sub_second = sub_second && secs < 1.0;
      never_worse = never_worse && c_tm <= c_base * (1.0 + 1e-9);
      if (map.empty()) return 1;
    }
  }
  scale.print(std::cout);
  bench::maybe_csv(opt, scale, "fabric_treematch_scale");

  bench::banner("summary");
  std::printf("np=4096 hierarchical reorder under 1 s: %s\n",
              opt.quick ? "skipped (--quick)" : (sub_second ? "yes" : "NO"));
  std::printf("TreeMatch mapping cost <= bynode baseline everywhere: %s\n",
              never_worse ? "yes" : "NO");
  std::printf("PAPER SHAPE %s: reordering helps on every fabric and the "
              "gain depends on the fabric\n",
              (wins == cells && (opt.quick || differs) && never_worse)
                  ? "REPRODUCED"
                  : "NOT reproduced");
  return (wins == cells && never_worse && (opt.quick || sub_second)) ? 0 : 1;
}
