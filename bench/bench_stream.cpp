// Streaming aggregation plane cost: what continuous ingest does to the
// per-packet hook, and how fast the plane drains staged events.
//
// Two tables, both mirrored into results/BENCH_stream.json:
//
//   stream_ingest    synthetic producer loop: per-rank counters advance and
//                    every rank crosses an epoch, so each iteration stages
//                    metric deltas into the SPSC rings and drains them into
//                    the bounded store. events_per_sec is the end-to-end
//                    staging+drain throughput (gated as a hot-path inverse
//                    metric by scripts/bench_trend.py).
//
//   stream_hookpath  bench_record's hook-dominated workload (self
//                    rma_transfer) with telemetry enabled -- the
//                    MPIM_TELEMETRY production baseline -- vs the same run
//                    with the plane attached. The only per-call addition is
//                    the inlined epoch check (one double compare); epoch
//                    flushes amortize across ~epoch_s of virtual time. The
//                    acceptance budget is overhead_pct <= 5 at 8 threads.
//
// Host wall time, best-of reps; virtual clocks are identical in every
// configuration (ObsplanePlane.ClocksBitIdenticalWithAndWithoutPlane).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obsplane/plane.h"

namespace {

using namespace mpim;

mpi::EngineConfig stream_config(int nranks) {
  // Contention model off: this bench isolates host-side software cost.
  auto cost = net::CostModel::plafrim_like(bench::nodes_for_ranks(nranks));
  auto placement = topo::round_robin_placement(nranks, cost.topology());
  mpi::EngineConfig cfg{.cost_model = std::move(cost),
                        .placement = std::move(placement)};
  cfg.watchdog_wall_timeout_s = 120.0;
  return cfg;
}

// --- stream_ingest -----------------------------------------------------------

double ingest_once(int nranks, int epochs, std::uint64_t* events_out) {
  mpi::Engine engine(stream_config(nranks));
  obsplane::PlaneConfig pcfg;
  pcfg.epoch_s = 1.0e-3;
  auto plane = obsplane::Plane::attach(engine, pcfg);
  auto& hub = engine.telemetry();
  const auto& ids = hub.ids();

  const auto t0 = std::chrono::steady_clock::now();
  for (int e = 0; e < epochs; ++e) {
    const double now_s = (e + 1) * pcfg.epoch_s;
    for (int r = 0; r < nranks; ++r) {
      hub.add(ids.engine_messages, r);
      hub.add(ids.engine_bytes, r, 64);
      plane->on_epoch(r, now_s, false);
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  *events_out = plane->events_ingested();
  return wall;
}

void ingest_sweep(const bench::Options& opt) {
  const int epochs = opt.quick ? 20000 : 80000;
  const int reps = opt.quick ? 3 : 5;
  Table t({"config", "ranks", "epochs", "events", "events_per_sec"});
  for (int nranks : {2, 8}) {
    double best = 1e300;
    std::uint64_t events = 0;
    for (int r = 0; r < reps; ++r)
      best = std::min(best, ingest_once(nranks, epochs, &events));
    t.add("ingest/r" + std::to_string(nranks), nranks, epochs,
          static_cast<unsigned long>(events),
          format_sig(static_cast<double>(events) / best, 4));
  }
  t.print(std::cout);
  bench::maybe_csv(opt, t, "stream_ingest");
}

// --- stream_hookpath ---------------------------------------------------------

/// One engine run of the hook-dominated self-rma loop; returns host seconds.
double hookpath_once(int nranks, int iters, bool with_plane) {
  mpi::Engine engine(stream_config(nranks));
  engine.telemetry().set_enabled(true);  // the MPIM_TELEMETRY baseline
  std::shared_ptr<obsplane::Plane> plane;
  if (with_plane) plane = obsplane::Plane::attach(engine, {});

  const auto t0 = std::chrono::steady_clock::now();
  engine.run([iters](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    const int me = ctx.world_rank();
    for (int i = 0; i < iters; ++i) ctx.rma_transfer(me, me, world, 8);
  });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double hookpath_best(int reps, int nranks, int iters, bool with_plane) {
  double best = hookpath_once(nranks, iters, with_plane);
  for (int r = 1; r < reps; ++r)
    best = std::min(best, hookpath_once(nranks, iters, with_plane));
  return best;
}

void hookpath_sweep(const bench::Options& opt) {
  const int total_sends = opt.quick ? 160000 : 640000;
  const int reps = opt.quick ? 3 : 5;
  Table t({"config", "threads", "ns_per_send", "overhead_pct"});
  double worst_at_8 = 0.0;
  for (int nranks : {2, 8}) {
    const int iters = total_sends / nranks;
    const double sends = static_cast<double>(iters) * nranks;
    const double base = hookpath_best(reps, nranks, iters, false);
    const double plane = hookpath_best(reps, nranks, iters, true);
    const double overhead = (plane / base - 1.0) * 100.0;
    if (nranks == 8) worst_at_8 = overhead;
    t.add("telemetry/t" + std::to_string(nranks), nranks,
          format_sig(base / sends * 1e9, 4), format_sig(0.0, 3));
    t.add("plane/t" + std::to_string(nranks), nranks,
          format_sig(plane / sends * 1e9, 4), format_sig(overhead, 3));
  }
  t.print(std::cout);
  bench::maybe_csv(opt, t, "stream_hookpath");

  Table checks({"check", "value", "limit", "status"});
  checks.add("hook_overhead_pct_t8", format_sig(worst_at_8, 3), 5.0,
             worst_at_8 <= 5.0 ? "PASS" : "FAIL");
  checks.print(std::cout);
  bench::maybe_csv(opt, checks, "stream_checks");
  if (worst_at_8 > 5.0)
    std::fprintf(stderr,
                 "bench_stream: WARNING: plane hook overhead %.2f%% at 8 "
                 "threads exceeds the 5%% budget\n",
                 worst_at_8);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);

  bench::banner("plane ingest throughput (stage + drain, best of reps)");
  ingest_sweep(opt);

  bench::banner("hook path: telemetry baseline vs +streaming plane");
  hookpath_sweep(opt);
  return 0;
}
