// Figure 7 -- NAS-style conjugate-gradient reordering gain.
//
// For NP = 64/128/256 (on 3/6/11 nodes, cores spared like the paper),
// classes B/C/D and three initial mappings (random, round-robin,
// standard), compare a plain CG solve against: monitor the initialization
// iteration, reorder the ranks with TreeMatch, re-setup on the optimized
// communicator (the paper's trick to avoid redistribution) and solve. The
// reordering time is charged to the reordered run. Reported:
//   (a) execution-time ratio  t_plain / t_reordered        (Fig. 7a)
//   (b) communication-time ratio, rank-0 time in MPI calls (Fig. 7b)
// Expected shape: ratios >= 1 everywhere; communication ratios much larger
// (paper: up to 1.9x) than execution ratios; random initial mapping not
// better than round robin.
#include "apps/cg.h"
#include "apps/nas_cg.h"
#include "bench_common.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "reorder/reorder.h"

namespace {

using namespace mpim;

int paper_nodes(int np) {
  switch (np) {
    case 64: return 3;
    case 128: return 6;
    case 256: return 11;
    default: return bench::nodes_for_ranks(np);
  }
}

struct CgCell {
  double exec_ratio = 0.0;
  double comm_ratio = 0.0;
  double resid_plain = 0.0;
  double resid_opt = 0.0;
};

CgCell run_cell(int np, char cls, const std::string& mapping) {
  auto cfg = bench::plafrim_config(paper_nodes(np), np, mapping, /*seed=*/17);
  // NAS CG's SpMV gathers through an unstructured index vector; charge
  // ~4x the per-flop cost of the regular 5-point stencil kernel so the
  // compute/communication balance matches the original workload.
  cfg.flop_time_s = 2.0e-9;
  Sim sim(std::move(cfg));
  CgCell cell;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    const apps::CgConfig cg_cfg = apps::cg_class(cls);

    // Plain run: init phase (one untimed-in-NAS iteration, here timed for
    // fairness in both variants) followed by the solve.
    double t0 = mpi::wtime();
    apps::NasCgSolver plain(world, cg_cfg);
    plain.iteration();
    const double plain_init_time = mpi::wtime() - t0;
    apps::CgResult base = plain.solve();
    base.total_time_s += plain_init_time;

    // Optimized run: the same init phase is monitored, then ranks are
    // reordered and the solver re-set-up on the optimized communicator
    // (the paper's trick to avoid redistribution); the reordering time is
    // charged to this run.
    mon::check_rc(MPI_M_init(), "init");
    t0 = mpi::wtime();
    apps::NasCgSolver init(world, cg_cfg);
    const auto res = reorder::monitor_and_reorder(
        world, [&](const mpi::Comm&) { init.iteration(); });
    apps::NasCgSolver opt(res.opt_comm, cg_cfg);
    const double reorder_time = mpi::wtime() - t0;
    apps::CgResult better = opt.solve();
    better.total_time_s += reorder_time;
    mon::check_rc(MPI_M_finalize(), "finalize");

    if (mpi::comm_rank(res.opt_comm) == 0) {
      // Rank 0 of the optimized communicator reports, like the paper's
      // "timer that measures the time spent by rank 0 in MPI calls".
      cell.comm_ratio = 0.0;  // filled below with base comm of world rank 0
      cell.resid_opt = better.residual_norm2;
    }
    // Collect both timings on world rank 0 (allreduce: deterministic).
    double plain_tot = mpi::comm_rank(world) == 0 ? base.total_time_s : 0;
    double plain_comm = mpi::comm_rank(world) == 0 ? base.comm_time_s : 0;
    double opt_tot =
        mpi::comm_rank(res.opt_comm) == 0 ? better.total_time_s : 0;
    double opt_comm =
        mpi::comm_rank(res.opt_comm) == 0 ? better.comm_time_s : 0;
    double tmp;
    mpi::allreduce(&plain_tot, &tmp, 1, mpi::Type::Double, mpi::Op::Max,
                   world);
    plain_tot = tmp;
    mpi::allreduce(&plain_comm, &tmp, 1, mpi::Type::Double, mpi::Op::Max,
                   world);
    plain_comm = tmp;
    mpi::allreduce(&opt_tot, &tmp, 1, mpi::Type::Double, mpi::Op::Max, world);
    opt_tot = tmp;
    mpi::allreduce(&opt_comm, &tmp, 1, mpi::Type::Double, mpi::Op::Max,
                   world);
    opt_comm = tmp;

    if (ctx.world_rank() == 0) {
      cell.exec_ratio = plain_tot / opt_tot;
      cell.comm_ratio = plain_comm / opt_comm;
      cell.resid_plain = base.residual_norm2;
      cell.resid_opt = better.residual_norm2;
    }
  });
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::vector<int> nps = opt.quick ? std::vector<int>{64}
                                         : std::vector<int>{64, 128, 256};
  const std::vector<char> classes = opt.quick ? std::vector<char>{'B'}
                                              : std::vector<char>{'B', 'C',
                                                                  'D'};
  const std::vector<std::string> mappings{"random", "rr", "standard"};

  bench::banner(
      "Fig. 7: NAS CG reordering gain (ratio > 1 means reordering wins)");
  Table table({"mapping", "NP", "class", "exec-time ratio (7a)",
               "comm-time ratio (7b)", "numerics match"});
  int cells = 0, exec_wins = 0, comm_wins = 0;
  double max_comm_ratio = 0.0;
  for (const auto& mapping : mappings) {
    for (int np : nps) {
      for (char cls : classes) {
        const CgCell cell = run_cell(np, cls, mapping);
        const bool numerics_ok =
            std::abs(cell.resid_plain - cell.resid_opt) <=
            1e-9 * std::abs(cell.resid_plain) + 1e-300;
        table.add(mapping, np, std::string(1, cls),
                  format_sig(cell.exec_ratio, 4),
                  format_sig(cell.comm_ratio, 4), numerics_ok ? "yes" : "NO");
        ++cells;
        // A no-op reordering (identity fallback) still pays the tiny
        // monitoring+decision cost; up to 1% loss counts as "not worse".
        exec_wins += cell.exec_ratio >= 0.99;
        comm_wins += cell.comm_ratio >= 0.99;
        max_comm_ratio = std::max(max_comm_ratio, cell.comm_ratio);
      }
    }
  }
  table.print(std::cout);
  bench::maybe_csv(opt, table, "fig7_cg");

  bench::banner("summary");
  std::printf("exec-time ratio >= 1 in %d/%d cells\n", exec_wins, cells);
  std::printf("comm-time ratio >= 1 in %d/%d cells (max %.2fx)\n", comm_wins,
              cells, max_comm_ratio);
  std::printf("PAPER SHAPE %s\n",
              (exec_wins == cells && comm_wins == cells)
                  ? "REPRODUCED: reordering is beneficial everywhere"
                  : "PARTIAL: see EXPERIMENTS.md discussion");
  return 0;
}
