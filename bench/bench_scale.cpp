// World-size scaling of the two engine backends (EngineConfig::sched):
// one OS thread per rank vs cooperatively scheduled ucontext fibers of a
// single thread.
//
// Table (scale_sweep): per (backend, np) -- wall time of a fixed
// ring-sendrecv + allreduce workload, peak-RSS growth per rank across the
// run (getrusage ru_maxrss delta; cumulative-peak semantics, so the
// ascending np order keeps each row meaningful), and sendrecv events per
// wall second.
//
// "Practical" has two parts, both measured, per backend lane:
//   1. the run completes within the wall budget, and
//   2. the backend's cost per simulated sendrecv event stays under an
//      absolute ceiling (50 us). The ceiling is what campaign wall time
//      is made of: a np>=1024 figure campaign replays ~1e7 p2p events per
//      cell, so 50 us/event is ~10 minutes/cell -- past that the paper
//      reproductions stop terminating in useful time. An absolute
//      per-event bound is also robust to run-to-run noise, unlike a
//      relative knee against the lane's own small-world peak (in-cache
//      np<=256 runs are several times cheaper per event than np=16384
//      ones on BOTH backends, which says nothing about practicality).
// Each lane stops at its first impractical size. The fiber lane's sizes
// extend past the thread lane's because that is the point of the backend;
// the measured costs, not the lane bounds, decide the ratio.
//
// Acceptance: the largest practical fiber world must be >= 8x the largest
// practical thread world. Emits results/BENCH_scale.json via the
// bench_common mirror so scripts/bench_trend.py tracks the trajectory
// (informational metrics; the hot-path gates live in
// bench_record/bench_micro).
#include <sys/resource.h>

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "minimpi/engine.h"
#include "support/table.h"

namespace {

using namespace mpim;

long peak_rss_kib() {
  struct rusage ru {};
  ::getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

/// Ring sendrecv iterations plus one allreduce: every rank both sends and
/// receives `iters` times, with genuine cross-rank blocking so backend
/// switch costs dominate, not message matching.
void ring_workload(mpi::Ctx& ctx, int iters, std::size_t bytes) {
  const mpi::Comm world = ctx.world();
  const int n = mpi::comm_size(world);
  const int me = mpi::comm_rank(world);
  std::vector<char> buf(bytes, 'x');
  for (int it = 0; it < iters; ++it) {
    mpi::sendrecv(buf.data(), buf.size(), mpi::Type::Char, (me + 1) % n, it,
                  buf.data(), buf.size(), (me + n - 1) % n, it, world);
  }
  long v = 1, sum = 0;
  mpi::allreduce(&v, &sum, 1, mpi::Type::Long, mpi::Op::Sum, world);
  if (sum != n) std::abort();
}

struct RunCost {
  double wall_s = 0.0;
  long rss_delta_kib = 0;
  bool completed = false;
};

RunCost measure(mpi::SchedMode mode, int nranks, int iters,
                std::size_t bytes) {
  auto cost = net::CostModel::plafrim_like(bench::nodes_for_ranks(nranks));
  auto placement = topo::round_robin_placement(nranks, cost.topology());
  mpi::EngineConfig cfg{.cost_model = std::move(cost),
                        .placement = std::move(placement)};
  cfg.watchdog_wall_timeout_s = 120.0;
  cfg.sched = mode;
  // Contention off: this sweep measures the execution backends, not the
  // NIC model (whose min-clock gate serializes sends in both modes).
  cfg.nic_contention = false;
  RunCost out;
  const long rss0 = peak_rss_kib();
  const auto t0 = std::chrono::steady_clock::now();
  mpi::Engine engine(cfg);
  engine.run([&](mpi::Ctx& ctx) { ring_workload(ctx, iters, bytes); });
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.rss_delta_kib = peak_rss_kib() - rss0;
  out.completed = true;
  return out;
}

/// Campaign-practicality ceiling on the cost of one simulated sendrecv
/// event (see the file comment for the derivation).
constexpr double kMaxUsPerEvent = 50.0;

/// Walks one backend's lane in ascending np order, recording a row per
/// size, until a size is impractical (budget blown or per-event cost over
/// kMaxUsPerEvent). Returns the largest practical np.
int run_lane(Table& t, mpi::SchedMode mode, const std::vector<int>& nps,
             int iters, std::size_t bytes, double budget_s) {
  const char* name = mpi::sched_mode_name(mode);
  int max_np = 0;
  for (int np : nps) {
    const RunCost c = measure(mode, np, iters, bytes);
    const double nevents = 2.0 * static_cast<double>(np) * iters;
    const double events_per_s = nevents / c.wall_s;
    const double us_per_event = c.wall_s * 1e6 / nevents;
    t.add(std::string(name) + "_np" + std::to_string(np),
          format_sig(c.wall_s * 1e3, 4),
          format_sig(static_cast<double>(c.rss_delta_kib) / np, 4),
          format_sig(events_per_s, 4));
    if (c.wall_s > budget_s) {
      std::cout << name << ": np=" << np << " blew the budget (" << c.wall_s
                << " s), stopping the lane\n";
      break;
    }
    if (us_per_event > kMaxUsPerEvent) {
      std::cout << name << ": np=" << np << " costs "
                << format_sig(us_per_event, 3) << " us/event (ceiling "
                << kMaxUsPerEvent << "), stopping the lane\n";
      break;
    }
    max_np = np;
  }
  return max_np;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const int iters = 10;
  const std::size_t bytes = 1024;
  // A run slower than this marks its world size impractical outright.
  const double budget_s = opt.quick ? 10.0 : 60.0;

  // The thread lane ends at 4096 by construction, not by measurement: a
  // np=8192 thread world WEDGES on this class of host -- pthread_create
  // stalls against the container task limit (~5.3k tasks observed) with the
  // partially built world spinning, so probing it would hang the bench
  // rather than fail it. The fiber lane has no such ceiling (one OS
  // thread, one stack-slab VMA) and is probed to np=65536.
  const std::vector<int> thread_nps =
      opt.quick ? std::vector<int>{64, 128}
                : std::vector<int>{64, 128, 256, 512, 1024, 2048, 4096};
  const std::vector<int> fiber_nps =
      opt.quick ? std::vector<int>{64, 256, 1024}
                : std::vector<int>{64, 256, 1024, 4096, 16384, 65536};

  bench::banner("engine backend scaling: ring sendrecv x" +
                std::to_string(iters) + ", " + std::to_string(bytes) +
                " B, budget " + std::to_string(static_cast<int>(budget_s)) +
                " s/run, ceiling 50 us/event");
  Table t({"backend_np", "wall_ms", "peak_rss_kib_per_rank",
           "sendrecv_events_per_s"});

  const int max_thread_np =
      run_lane(t, mpi::SchedMode::threads, thread_nps, iters, bytes, budget_s);
  if (!opt.quick && max_thread_np == thread_nps.back())
    std::cout << "threads: lane capped at np=" << max_thread_np
              << " (np=8192 wedges on the host task limit; see comment)\n";
  const int max_fiber_np =
      run_lane(t, mpi::SchedMode::fibers, fiber_nps, iters, bytes, budget_s);
  t.print(std::cout);
  bench::maybe_csv(opt, t, "scale_sweep");

  Table m({"metric", "value"});
  m.add("max_practical_thread_np", max_thread_np);
  m.add("max_practical_fiber_np", max_fiber_np);
  m.add("fiber_over_thread_ratio",
        format_sig(max_thread_np > 0 ? static_cast<double>(max_fiber_np) /
                                           max_thread_np
                                     : 0.0,
                   3));
  m.print(std::cout);
  bench::maybe_csv(opt, m, "scale_max_world");

  // Quick mode probes fewer sizes; the >= 8x claim only holds against the
  // full lanes, so only the full run gates on it.
  const bool ok =
      opt.quick || (max_thread_np > 0 && max_fiber_np >= 8 * max_thread_np);
  std::cout << "\nacceptance: fiber world >= 8x practical thread world: "
            << (ok ? "ok" : "FAIL") << " (threads " << max_thread_np
            << ", fibers " << max_fiber_np << ")\n";
  return ok ? 0 : 1;
}
