// Figure 4 -- "Impact of the library on the monitored code".
//
// An MPI_Reduce over MPI_COMM_WORLD is run with and without an active
// monitoring session, 180 times each under an OS-noise model, for
// NP = 48/96/192 and small buffer sizes (the regime where the overhead is
// visible at all). We report the difference of the mean rank-0 times with
// the 95% confidence interval of the unpaired Welch t test -- the exact
// statistic of the paper. Expected shape: mostly statistically
// insignificant differences, worst case below 5 us.
#include "bench_common.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "support/stats.h"

namespace {

using namespace mpim;

double reduce_time_rank0(Sim& sim, std::size_t bytes, bool monitored) {
  double t = 0.0;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    MPI_M_msid id = -1;
    if (monitored) {
      mon::check_rc(MPI_M_init(), "init");
      mon::check_rc(MPI_M_start(world, &id), "start");
    }
    const double t0 = mpi::wtime();
    mpi::reduce(nullptr, nullptr, bytes, mpi::Type::Byte, mpi::Op::Max, 0,
                world);
    const double dt = mpi::wtime() - t0;
    if (mpi::comm_rank(world) == 0) t = dt;
    if (monitored) {
      mon::check_rc(MPI_M_suspend(id), "suspend");
      mon::check_rc(MPI_M_free(id), "free");
      mon::check_rc(MPI_M_finalize(), "finalize");
    }
  });
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const int reps = opt.quick ? 30 : 180;  // the paper uses 180
  const std::vector<int> nps = opt.quick ? std::vector<int>{48}
                                         : std::vector<int>{48, 96, 192};
  const std::vector<std::size_t> sizes = {1,   4,    16,   64,
                                          256, 1024, 4096, 10240};

  bench::banner(
      "Fig. 4: monitoring overhead on MPI_Reduce "
      "(mean difference +- 95% CI, unpaired Welch t)");
  Table table({"NP", "size (B)", "diff (us)", "CI half-width (us)",
               "significant", "within 5 us"});
  bool all_within_bound = true;
  for (int np : nps) {
    auto cfg = bench::plafrim_config(bench::nodes_for_ranks(np), np);
    cfg.os_noise_s = 2.0e-6;  // per-send OS jitter, Haswell-ish
    Sim sim(std::move(cfg));
    for (std::size_t bytes : sizes) {
      std::vector<double> with(static_cast<std::size_t>(reps));
      std::vector<double> without(static_cast<std::size_t>(reps));
      // Each run() reseeds the noise stream: unpaired samples.
      for (auto& v : with) v = reduce_time_rank0(sim, bytes, true);
      for (auto& v : without) v = reduce_time_rank0(sim, bytes, false);
      const auto welch = stats::welch_interval(with, without, 0.95);
      const double diff_us = welch.mean_diff * 1e6;
      const double ci_us = welch.ci_half * 1e6;
      const bool within = std::abs(diff_us) < 5.0;
      all_within_bound = all_within_bound && within;
      table.add(np, bytes, format_sig(diff_us, 3), format_sig(ci_us, 3),
                welch.significant ? "yes" : "no", within ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  bench::maybe_csv(opt, table, "fig4_overhead");

  bench::banner("summary");
  std::printf(
      "PAPER SHAPE %s: overhead mostly insignificant, always below 5 us\n",
      all_within_bound ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
