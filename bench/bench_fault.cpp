// Fault-plan consultation overhead.
//
// The engine asks the FaultPlan for a verdict on every send and at every
// operation boundary. That lookup must be cheap enough to leave on: this
// bench runs a p2p-heavy ring workload and compares host wall time with no
// plan, with an attached-but-empty plan (pure consultation cost), and with
// active jitter / drop-retransmit faults. Virtual time is reported too: the
// empty plan must leave the clocks bit-identical to the no-plan run, while
// the active faults are supposed to move them.
#include <algorithm>
#include <chrono>
#include <memory>

#include "bench_common.h"
#include "fault/fault_plan.h"

namespace {

using namespace mpim;

struct RunSample {
  double wall_s = 0.0;     ///< host time of Engine::run
  double virtual_s = 0.0;  ///< rank-0 final virtual clock
};

RunSample ring_run(int nranks, int iters,
                   const std::shared_ptr<fault::FaultPlan>& plan) {
  auto cfg = bench::plafrim_config(bench::nodes_for_ranks(nranks), nranks);
  cfg.fault_plan = plan;
  Sim sim(std::move(cfg));

  RunSample out;
  const auto t0 = std::chrono::steady_clock::now();
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    const int n = world.size();
    const int me = mpi::comm_rank(world);
    std::vector<char> sbuf(1024), rbuf(1024);
    for (int i = 0; i < iters; ++i) {
      mpi::sendrecv(sbuf.data(), sbuf.size(), mpi::Type::Byte, (me + 1) % n,
                    7, rbuf.data(), rbuf.size(), (me + n - 1) % n, 7, world);
    }
    if (me == 0) out.virtual_s = ctx.now();
  });
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  return out;
}

RunSample best_of(int reps, int nranks, int iters,
                  const std::shared_ptr<fault::FaultPlan>& plan) {
  RunSample best = ring_run(nranks, iters, plan);
  for (int r = 1; r < reps; ++r) {
    const RunSample s = ring_run(nranks, iters, plan);
    if (s.wall_s < best.wall_s) best.wall_s = s.wall_s;
    best.virtual_s = s.virtual_s;  // deterministic: identical every rep
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const int nranks = 16;
  const int iters = opt.quick ? 200 : 2000;
  const int reps = opt.quick ? 2 : 5;

  auto empty = std::make_shared<fault::FaultPlan>(1);
  auto jitter = std::make_shared<fault::FaultPlan>(1);
  jitter->add(fault::LinkFault{.delay_jitter_s = 2.0e-6});
  auto drops = std::make_shared<fault::FaultPlan>(1);
  drops->add(fault::LinkFault{.drop_prob = 0.05,
                              .max_retransmits = 8,
                              .retransmit_backoff_s = 1.0e-6});

  bench::banner("fault-plan consultation overhead (ring sendrecv, " +
                std::to_string(nranks) + " ranks, " + std::to_string(iters) +
                " iters, best of " + std::to_string(reps) + ")");

  const RunSample none = best_of(reps, nranks, iters, nullptr);
  const RunSample plan0 = best_of(reps, nranks, iters, empty);
  const RunSample planj = best_of(reps, nranks, iters, jitter);
  const RunSample pland = best_of(reps, nranks, iters, drops);

  Table table({"plan", "wall (ms)", "vs no plan", "rank-0 virtual (ms)"});
  auto row = [&](const char* name, const RunSample& s) {
    table.add(name, format_sig(s.wall_s * 1e3, 3),
              format_sig(s.wall_s / none.wall_s, 3),
              format_sig(s.virtual_s * 1e3, 4));
  };
  row("none", none);
  row("empty (consult only)", plan0);
  row("delay jitter 2 us", planj);
  row("drop 5% + retransmit", pland);
  table.print(std::cout);
  bench::maybe_csv(opt, table, "fault_overhead");

  bench::banner("summary");
  const bool clocks_identical = none.virtual_s == plan0.virtual_s;
  const bool faults_act =
      planj.virtual_s > none.virtual_s && pland.virtual_s > none.virtual_s;
  std::cout << "empty plan leaves virtual clocks bit-identical: "
            << (clocks_identical ? "yes" : "NO") << "\n"
            << "active faults move virtual time: "
            << (faults_act ? "yes" : "NO") << "\n";
  return clocks_identical && faults_act ? 0 : 1;
}
