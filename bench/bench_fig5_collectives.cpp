// Figure 5 -- "MPI Collective Optimization".
//
// (a) MPI_Reduce (binary tree), time at root, and (b) MPI_Bcast (binomial
// tree), total walltime, for NP = 48/96/192 and buffer sizes of
// 1000..200000 thousand ints. The baseline maps ranks round-robin ("as it
// would be done without any specification"); the optimized variant
// monitors one collective with the introspection library, feeds the
// byte matrix to TreeMatch and reruns the collective on the reordered
// communicator. Expected shape: reordering wins across the sweep, by
// roughly 1.5-3x at large buffers (paper: 15.16 s -> 7.57 s for reduce at
// NP = 96 and 2e8 ints).
#include <functional>

#include "bench_common.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "reorder/reorder.h"

namespace {

using namespace mpim;

using Collective = std::function<void(const mpi::Comm&, std::size_t)>;

struct Measurement {
  double baseline_s = 0.0;
  double reordered_s = 0.0;
};

/// Runs one collective of `count` ints on `np` ranks, baseline vs
/// monitored+reordered. `root_time` selects "time at root" (reduce)
/// versus "max over ranks" (bcast).
Measurement measure(int np, std::size_t count, const Collective& coll,
                    bool root_time) {
  // "Round-robin" baseline in the mpirun sense: consecutive ranks scatter
  // across the nodes (--map-by node), the no-information default on the
  // paper's testbed.
  Sim sim(bench::plafrim_config(bench::nodes_for_ranks(np), np, "standard"));
  Measurement out;
  std::vector<double> t_base(static_cast<std::size_t>(np));
  std::vector<double> t_opt(static_cast<std::size_t>(np));
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    const int r = mpi::comm_rank(world);

    // Baseline: plain collective on the round-robin world.
    mpi::barrier(world);
    double t0 = mpi::wtime();
    coll(world, count);
    t_base[static_cast<std::size_t>(r)] = mpi::wtime() - t0;

    // Monitor one instance, reorder, rerun on the optimized communicator.
    mon::check_rc(MPI_M_init(), "init");
    const auto res = reorder::monitor_and_reorder(
        world, [&](const mpi::Comm& c) { coll(c, count); });
    mpi::barrier(world);
    t0 = mpi::wtime();
    coll(res.opt_comm, count);
    // Index by the *new* rank so "time at root" is the reordered root.
    t_opt[static_cast<std::size_t>(mpi::comm_rank(res.opt_comm))] =
        mpi::wtime() - t0;
    mon::check_rc(MPI_M_finalize(), "finalize");
  });
  auto pick = [&](const std::vector<double>& ts) {
    if (root_time) return ts[0];
    double mx = 0;
    for (double t : ts) mx = std::max(mx, t);
    return mx;
  };
  out.baseline_s = pick(t_base);
  out.reordered_s = pick(t_opt);
  return out;
}

void sweep(const char* title, const Collective& coll, bool root_time,
           const bench::Options& opt, const std::string& csv_name) {
  const std::vector<int> nps = opt.quick ? std::vector<int>{48}
                                         : std::vector<int>{48, 96, 192};
  // Buffer sizes in thousands of MPI_INT, the paper's x axis.
  const std::vector<std::size_t> kilo_ints =
      opt.quick ? std::vector<std::size_t>{1000, 20000}
                : std::vector<std::size_t>{1000, 2000, 5000, 10000, 20000,
                                           50000, 100000, 200000};
  bench::banner(title);
  Table table({"NP", "buffer (1000 int)", "no monitoring (ms)",
               "monitoring + reordering (ms)", "speedup"});
  int wins = 0, cells = 0;
  for (int np : nps) {
    for (std::size_t k : kilo_ints) {
      const auto m = measure(np, k * 1000, coll, root_time);
      table.add(np, k, format_sig(m.baseline_s * 1e3, 4),
                format_sig(m.reordered_s * 1e3, 4),
                format_sig(m.baseline_s / m.reordered_s, 3));
      ++cells;
      wins += m.reordered_s < m.baseline_s;
    }
  }
  table.print(std::cout);
  bench::maybe_csv(opt, table, csv_name);
  std::printf("reordering wins in %d/%d cells\n", wins, cells);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);

  const Collective reduce_max = [](const mpi::Comm& c, std::size_t count) {
    mpi::reduce(nullptr, nullptr, count, mpi::Type::Int, mpi::Op::Max, 0, c);
  };
  const Collective bcast = [](const mpi::Comm& c, std::size_t count) {
    mpi::bcast(nullptr, count, mpi::Type::Int, 0, c);
  };

  sweep("Fig. 5a: MPI_Reduce (binary tree), time at root", reduce_max,
        /*root_time=*/true, opt, "fig5a_reduce");
  sweep("Fig. 5b: MPI_Bcast (binomial tree), total walltime", bcast,
        /*root_time=*/false, opt, "fig5b_bcast");
  return 0;
}
