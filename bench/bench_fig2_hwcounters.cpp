// Figures 2 and 3 -- "Hardware Counters vs. Introspection Monitoring".
//
// Two MPI processes on different nodes; rank 0 sends random bursts of
// 1..800 KB and sleeps 50..1000 ms between them. A 10 ms sampler reads the
// introspection session (with the reset feature) while the simulated NIC
// hardware counter of the sending node records what actually hit the
// network. The paper's claim to reproduce: both monitors see the same
// volume at (nearly) the same times, per interval (Fig. 2) and
// cumulatively (Fig. 3).
#include <cinttypes>

#include "apps/traffic.h"
#include "bench_common.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"

int main(int argc, char** argv) {
  using namespace mpim;
  const auto opt = bench::parse_options(argc, argv);

  apps::TrafficConfig cfg;
  cfg.duration_s = opt.quick ? 5.0 : 40.0;

  // One rank on each of two nodes (like the Infiniband-EDR pair in §6.1).
  auto ecfg = bench::plafrim_config(2, 2);
  ecfg.placement = {0, 24};
  Sim sim(std::move(ecfg));

  apps::TrafficSeries series;
  sim.run([&](mpi::Ctx& ctx) {
    mon::check_rc(MPI_M_init(), "MPI_M_init");
    auto s = apps::run_traffic_generator(ctx.world(), cfg);
    if (ctx.world_rank() == 0) series = std::move(s);
    mon::check_rc(MPI_M_finalize(), "MPI_M_finalize");
  });

  const auto hw = apps::sample_nic_series(sim.engine().nic().log(0),
                                          cfg.sample_period_s, cfg.duration_s);

  bench::banner("Fig. 2: time series (10 ms samples, non-empty bins only)");
  Table t2({"time (s)", "HW counters (KB)", "introspection (KB)", "match"});
  std::uint64_t cum_hw = 0, cum_mon = 0;
  std::size_t mismatches = 0;
  Table t3({"time (s)", "HW cumulative (MB)", "introspection cumulative (MB)"});
  for (std::size_t i = 0; i < hw.size() && i < series.introspection.size();
       ++i) {
    const auto& h = hw[i];
    const auto& m = series.introspection[i];
    cum_hw += h.bytes;
    cum_mon += m.bytes;
    if (h.bytes != m.bytes) ++mismatches;
    if (h.bytes != 0 || m.bytes != 0) {
      t2.add(format_sig(h.time_s, 4),
             format_sig(static_cast<double>(h.bytes) / 1e3, 4),
             format_sig(static_cast<double>(m.bytes) / 1e3, 4),
             h.bytes == m.bytes ? "yes" : "NO");
    }
    // Fig. 3 cumulative curve, decimated to ~40 points for the table.
    if (i % std::max<std::size_t>(1, hw.size() / 40) == 0) {
      t3.add(format_sig(h.time_s, 4),
             format_sig(static_cast<double>(cum_hw) / 1e6, 5),
             format_sig(static_cast<double>(cum_mon) / 1e6, 5));
    }
  }
  t2.print(std::cout);
  bench::maybe_csv(opt, t2, "fig2_timeseries");

  bench::banner("Fig. 3: cumulative volume");
  t3.print(std::cout);
  bench::maybe_csv(opt, t3, "fig3_cumulative");

  bench::banner("summary");
  std::printf("bursts sent          : %zu samples with traffic\n",
              static_cast<std::size_t>(t2.row_count()));
  std::printf("total sent (app)     : %" PRIu64 " bytes\n",
              series.total_sent_bytes);
  std::printf("total seen by NIC    : %" PRIu64 " bytes\n", cum_hw);
  std::printf("total seen by library: %" PRIu64 " bytes\n", cum_mon);
  std::printf("per-bin mismatches   : %zu\n", mismatches);
  std::printf("PAPER SHAPE %s: both monitors report the same traffic\n",
              (cum_hw == cum_mon && cum_mon == series.total_sent_bytes &&
               mismatches == 0)
                  ? "REPRODUCED"
                  : "NOT reproduced");
  return 0;
}
