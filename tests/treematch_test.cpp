#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "netmodel/cost_model.h"
#include "support/rng.h"
#include "treematch/affinity.h"
#include "treematch/treematch.h"

namespace mpim::tm {
namespace {

// --- affinity graph -------------------------------------------------------------

TEST(Affinity, FromDenseSymmetrizesAndSkipsZeros) {
  CommMatrix m = CommMatrix::square(3);
  m(0, 1) = 10;
  m(1, 0) = 5;
  m(2, 2) = 99;  // diagonal ignored
  const auto g = AffinityGraph::from_dense(m);
  ASSERT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edges()[0].u, 0);
  EXPECT_EQ(g.edges()[0].v, 1);
  EXPECT_DOUBLE_EQ(g.edges()[0].w, 15.0);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(Affinity, DuplicateEdgesMerge) {
  AffinityGraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 0, 3.0);
  g.finalize();
  ASSERT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.edges()[0].w, 5.0);
  EXPECT_DOUBLE_EQ(g.degree_weight(0), 5.0);
}

TEST(Affinity, InducedSubgraphRenumbers) {
  AffinityGraph g(4);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 2.0);
  g.add_edge(0, 1, 4.0);
  g.finalize();
  const auto sub = g.induced({0, 2, 3});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.edge_count(), 2u);  // (0,2)->(0,1) and (2,3)->(1,2)
  EXPECT_DOUBLE_EQ(sub.neighbors(1)[0].second + sub.neighbors(1)[1].second,
                   3.0);
}

TEST(Affinity, AddAfterFinalizeThrows) {
  AffinityGraph g(2);
  g.finalize();
  EXPECT_THROW(g.add_edge(0, 1, 1.0), Error);
}

// --- treematch -------------------------------------------------------------------

TEST(TreeMatch, PairsLandOnSameNode) {
  // 4 processes, pairs (0,1) and (2,3) talk heavily, cross pairs never.
  // Under a bynode-ish slot layout the pairs must be co-located.
  const auto topo = topo::Topology::cluster(2, 1, 2);  // 2 nodes x 2 cores
  CommMatrix m = CommMatrix::square(4);
  m(0, 1) = m(1, 0) = 1000;
  m(2, 3) = m(3, 2) = 1000;
  const auto map = treematch_leaves(m, topo);
  EXPECT_EQ(topo.node_of(map[0]), topo.node_of(map[1]));
  EXPECT_EQ(topo.node_of(map[2]), topo.node_of(map[3]));
  EXPECT_NE(topo.node_of(map[0]), topo.node_of(map[2]));
}

TEST(TreeMatch, ResultIsInjective) {
  const auto topo = topo::Topology::cluster(2, 2, 4);
  Rng rng(5);
  CommMatrix m = CommMatrix::square(12);
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j)
      if (i != j) m(i, j) = rng.uniform_u64(0, 100);
  const auto map = treematch_leaves(m, topo);
  std::set<int> used(map.begin(), map.end());
  EXPECT_EQ(used.size(), 12u);
  for (int leaf : used) {
    EXPECT_GE(leaf, 0);
    EXPECT_LT(leaf, topo.num_leaves());
  }
}

TEST(TreeMatch, DeterministicAcrossCalls) {
  const auto topo = topo::Topology::cluster(4, 2, 4);
  Rng rng(11);
  CommMatrix m = CommMatrix::square(32);
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = i + 1; j < 32; ++j)
      m(i, j) = m(j, i) = rng.uniform_u64(0, 50);
  EXPECT_EQ(treematch_leaves(m, topo), treematch_leaves(m, topo));
}

TEST(TreeMatch, NeverWorseThanIdentityOnStructuredPatterns) {
  // Block pattern: groups of 4 consecutive ranks communicate internally,
  // scattered over nodes by a bynode placement; treematch must find a
  // mapping at least as good as the scattered identity.
  const auto cost = net::CostModel::plafrim_like(2, 1, 4);  // 2 nodes x 4
  const auto& topo = cost.topology();
  CommMatrix m = CommMatrix::square(8);
  for (std::size_t g = 0; g < 2; ++g)
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j)
        if (i != j) m(4 * g + i, 4 * g + j) = 1 << 20;
  const auto scattered = topo::bynode_placement(8, topo);
  const auto slots = scattered;  // slots = currently used cores
  const auto role_to_slot = treematch_slots(m, topo, slots);
  // Build the effective placement of roles and compare modeled costs.
  topo::Placement effective(8);
  for (std::size_t role = 0; role < 8; ++role)
    effective[role] = slots[static_cast<std::size_t>(role_to_slot[role])];
  EXPECT_LT(cost.pattern_cost(m, effective), cost.pattern_cost(m, scattered));
  // And in this clean instance the optimum puts each block on one node.
  for (std::size_t g = 0; g < 2; ++g)
    for (std::size_t i = 1; i < 4; ++i)
      EXPECT_EQ(topo.node_of(effective[4 * g]),
                topo.node_of(effective[4 * g + i]));
}

TEST(TreeMatch, HandlesZeroMatrix) {
  const auto topo = topo::Topology::cluster(2, 1, 4);
  CommMatrix m = CommMatrix::square(6);
  const auto map = treematch_leaves(m, topo);
  std::set<int> used(map.begin(), map.end());
  EXPECT_EQ(used.size(), 6u);
}

TEST(TreeMatch, MoreProcessesThanSlotsThrows) {
  const auto topo = topo::Topology::cluster(1, 1, 2);
  CommMatrix m = CommMatrix::square(3);
  EXPECT_THROW(treematch_leaves(m, topo), Error);
}

TEST(TreeMatch, RespectsRestrictedSlotSet) {
  // Only cores {0, 1, 8, 9} are available on a 2x1x8 machine.
  const auto topo = topo::Topology::cluster(2, 1, 8);
  CommMatrix m = CommMatrix::square(4);
  m(0, 3) = m(3, 0) = 100;  // 0 and 3 together
  m(1, 2) = m(2, 1) = 100;  // 1 and 2 together
  const std::vector<int> slots{0, 1, 8, 9};
  const auto map = treematch_slots(m, topo, slots);
  auto node_of_slot = [&](int s) { return topo.node_of(slots[static_cast<std::size_t>(s)]); };
  EXPECT_EQ(node_of_slot(map[0]), node_of_slot(map[3]));
  EXPECT_EQ(node_of_slot(map[1]), node_of_slot(map[2]));
  EXPECT_NE(node_of_slot(map[0]), node_of_slot(map[1]));
}

TEST(TreeMatch, ScalesToLargeSparseInstances) {
  // A smoke version of Table 1: 1-D ring affinity at order 4096.
  const int n = 4096;
  const auto topo = topo::Topology::cluster(n / 24 + 1, 2, 12);
  AffinityGraph g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n, 10.0);
  g.finalize();
  const auto map = treematch_leaves(g, topo);
  std::set<int> used(map.begin(), map.end());
  EXPECT_EQ(used.size(), static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace mpim::tm
