// Deterministic fault injection and failure-aware behavior: the FaultPlan
// draws, the engine's crash/stall/drop handling, typed failure errors,
// per-communicator error modes, the structured deadlock report, and the
// degraded (partial) monitoring gathers with the reorder identity fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <vector>

#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "mpimon/mpi_monitoring.h"
#include "mpit/runtime.h"
#include "reorder/reorder.h"

namespace mpim::mpi {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// 2 nodes x 4 cores, round-robin placement: ranks 0 and 1 land on the same
/// socket, so the 0 -> 1 link runs at beta = 1e10 (tx of 1e6 bytes = 1e-4 s).
EngineConfig fault_cfg(int nranks,
                       std::shared_ptr<fault::FaultPlan> plan = nullptr) {
  topo::Topology t({2, 1, 4}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8},   // inter-node
      {1e-6, 1e9},   // inter-socket
      {1e-7, 1e10},  // intra-socket
      {0.0, 1e12},   // same PU
  };
  net::CostModel cost(t, params, /*send_overhead=*/1e-7);
  EngineConfig cfg{.cost_model = cost,
                   .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 5.0;
  cfg.fault_plan = std::move(plan);
  return cfg;
}

// --- FaultPlan unit behavior -------------------------------------------------

TEST(FaultPlan, ValidatesFaultParameters) {
  fault::FaultPlan plan(1);
  fault::LinkFault bad_drop;
  bad_drop.drop_prob = 1.0;  // certain loss forever is not a distribution
  EXPECT_THROW(plan.add(bad_drop), Error);
  fault::LinkFault bad_degrade;
  bad_degrade.degrade_factor = 0.5;  // a speed-up is not a fault
  EXPECT_THROW(plan.add(bad_degrade), Error);
  fault::RankFault bad_slow;
  bad_slow.slowdown = 0.25;
  EXPECT_THROW(plan.add(bad_slow), Error);
}

TEST(FaultPlan, DrawsAreReproducibleAcrossInstancesAndRuns) {
  fault::LinkFault jitter;
  jitter.delay_jitter_s = 1e-3;
  jitter.drop_prob = 0.3;

  auto sequence = [&](std::uint64_t seed) {
    fault::FaultPlan plan(seed);
    plan.add(jitter);
    plan.begin_run(4);
    std::vector<fault::SendFaults> out;
    for (int i = 0; i < 20; ++i) out.push_back(plan.on_send(0, 1, 100, 0.0));
    return out;
  };
  const auto a = sequence(42);
  const auto b = sequence(42);
  ASSERT_EQ(a.size(), b.size());
  bool any_jitter = false;
  bool any_retransmit = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].latency_extra_s, b[i].latency_extra_s);
    EXPECT_EQ(a[i].sender_extra_s, b[i].sender_extra_s);
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_EQ(a[i].lost, b[i].lost);
    any_jitter |= a[i].latency_extra_s > 0.0;
    any_retransmit |= a[i].attempts > 1;
  }
  EXPECT_TRUE(any_jitter);
  EXPECT_TRUE(any_retransmit);  // drop_prob 0.3 over 20 messages
}

// --- deterministic virtual clocks under faults -------------------------------

TEST(Fault, FinalClocksBitIdenticalAcrossRuns) {
  auto plan = std::make_shared<fault::FaultPlan>(7);
  fault::LinkFault link;
  link.delay_jitter_s = 5e-5;
  link.drop_prob = 0.05;
  link.degrade_from_s = 0.0;
  link.degrade_until_s = 1e-3;
  link.degrade_factor = 3.0;
  plan->add(link);
  fault::RankFault slow;
  slow.rank = 2;
  slow.slowdown = 2.0;
  plan->add(slow);

  Engine eng(fault_cfg(6, plan));
  auto workload = [](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    std::vector<double> buf(200);
    for (int it = 0; it < 8; ++it) {
      compute(1e-6 * (r + 1));
      send(buf.data(), buf.size(), Type::Double, (r + 1) % n, it, world);
      recv(buf.data(), buf.size(), Type::Double, (r + n - 1) % n, it, world);
    }
  };
  eng.run(workload);
  const auto first = eng.final_clocks();
  eng.run(workload);
  EXPECT_EQ(first, eng.final_clocks());
  eng.run(workload);
  EXPECT_EQ(first, eng.final_clocks());
}

// --- per-fault mechanics -----------------------------------------------------

TEST(Fault, JitterDelaysOnlyTheReceiver) {
  double plain_sender = 0.0, plain_receiver = 0.0;
  double fault_sender = 0.0, fault_receiver = 0.0;
  auto workload = [](Ctx& ctx, double* sender, double* receiver) {
    const Comm world = ctx.world();
    std::vector<std::byte> b(1000);
    if (ctx.world_rank() == 0) {
      send(b.data(), b.size(), Type::Byte, 1, 0, world);
      *sender = ctx.now();
    } else {
      recv(b.data(), b.size(), Type::Byte, 0, 0, world);
      *receiver = ctx.now();
    }
  };
  {
    Engine eng(fault_cfg(2));
    eng.run([&](Ctx& c) { workload(c, &plain_sender, &plain_receiver); });
  }
  {
    auto plan = std::make_shared<fault::FaultPlan>(11);
    fault::LinkFault jitter;
    jitter.delay_jitter_s = 1e-3;
    plan->add(jitter);
    Engine eng(fault_cfg(2, plan));
    eng.run([&](Ctx& c) { workload(c, &fault_sender, &fault_receiver); });
  }
  EXPECT_DOUBLE_EQ(fault_sender, plain_sender);  // jitter rides the wire
  EXPECT_GT(fault_receiver, plain_receiver);
  EXPECT_LT(fault_receiver, plain_receiver + 1e-3);
}

TEST(Fault, BandwidthDegradationWindowScalesSerialization) {
  auto plan = std::make_shared<fault::FaultPlan>(3);
  fault::LinkFault degrade;
  degrade.degrade_from_s = 0.0;
  degrade.degrade_until_s = 1.0;
  degrade.degrade_factor = 10.0;
  plan->add(degrade);
  Engine eng(fault_cfg(2, plan));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    std::vector<std::byte> b(1'000'000);
    if (ctx.world_rank() == 0) {
      send(b.data(), b.size(), Type::Byte, 1, 0, world);
      // Intra-socket tx = 1e6 / 1e10 = 1e-4 s, degraded x10.
      EXPECT_NEAR(ctx.now(), 1e-3 + 1e-7, 1e-9);
    } else {
      recv(b.data(), b.size(), Type::Byte, 0, 0, world);
    }
  });
}

TEST(Fault, DroppedMessageChargesSenderAndIsNeverDelivered) {
  auto plan = std::make_shared<fault::FaultPlan>(5);
  fault::LinkFault drop;
  drop.src = 0;
  drop.dst = 1;
  drop.drop_prob = 0.999999;  // every attempt is (deterministically) lost
  drop.max_retransmits = 2;
  drop.retransmit_backoff_s = 1e-3;
  plan->add(drop);
  Engine eng(fault_cfg(2, plan));
  std::atomic<bool> timed_out{false};
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    std::vector<std::byte> b(1'000'000);
    if (ctx.world_rank() == 0) {
      send(b.data(), b.size(), Type::Byte, 1, 0, world);
      // 3 attempts x 1e-4 s serialization + backoffs 1e-3 + 2e-3.
      EXPECT_NEAR(ctx.now(), 3 * 1e-4 + 3e-3 + 1e-7, 1e-9);
    } else {
      try {
        recv_timeout(b.data(), b.size(), Type::Byte, 0, 0, world, 0.3);
      } catch (const TimeoutError& e) {
        timed_out = true;
        EXPECT_DOUBLE_EQ(e.timeout_s(), 0.3);
      }
    }
  });
  EXPECT_TRUE(timed_out.load());
}

TEST(Fault, SlowdownScalesComputeTime) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault slow;
  slow.rank = 0;
  slow.slowdown = 3.0;
  plan->add(slow);
  Engine eng(fault_cfg(2, plan));
  eng.run([](Ctx& ctx) {
    compute(1e-3);
    if (ctx.world_rank() == 0)
      EXPECT_DOUBLE_EQ(ctx.now(), 3e-3);
    else
      EXPECT_DOUBLE_EQ(ctx.now(), 1e-3);
  });
}

TEST(Fault, StallAddsVirtualTimeExactlyOnce) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault stall;
  stall.rank = 0;
  stall.stall_at_s = 1e-3;
  stall.stall_virtual_s = 0.5;
  plan->add(stall);
  Engine eng(fault_cfg(1, plan));
  auto workload = [](Ctx& ctx) {
    compute(2e-3);  // crosses 1e-3: the one-shot stall fires here
    compute(2e-3);  // must NOT stall again
    EXPECT_NEAR(ctx.now(), 0.5 + 4e-3, 1e-12);
  };
  eng.run(workload);
  const auto first = eng.final_clocks();
  eng.run(workload);  // begin_run re-arms the one-shot deterministically
  EXPECT_EQ(first, eng.final_clocks());
}

// --- rank death --------------------------------------------------------------

TEST(Fault, CrashTruncatesClockAndMarksRankDead) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 1;
  crash.crash_at_s = 1e-3;
  plan->add(crash);
  Engine eng(fault_cfg(2, plan));
  std::atomic<bool> survived_past_crash{false};
  eng.run([&](Ctx& ctx) {
    if (ctx.world_rank() != 1) return;
    compute(5e-4);
    try {
      compute(1e-2);  // crosses the crash time
      survived_past_crash = true;
    } catch (const Error&) {
      // RankCrashExit is not an Error: application-level handlers must not
      // be able to keep a crashed rank alive.
      survived_past_crash = true;
    }
  });
  EXPECT_FALSE(survived_past_crash.load());
  EXPECT_TRUE(eng.rank_dead(1));
  EXPECT_FALSE(eng.rank_dead(0));
  EXPECT_DOUBLE_EQ(eng.dead_time(1), 1e-3);
  EXPECT_DOUBLE_EQ(eng.final_clocks()[1], 1e-3);
  EXPECT_EQ(eng.dead_ranks(), std::vector<int>{1});
}

TEST(Fault, RecvFromDeadRankIsFatalByDefault) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 1;
  crash.crash_at_s = 0.0;
  plan->add(crash);
  Engine eng(fault_cfg(2, plan));
  EXPECT_THROW(eng.run([](Ctx& ctx) {
    if (ctx.world_rank() == 1) {
      compute(0.0);  // first fault check kills the rank
      return;
    }
    int v = 0;
    recv(&v, 1, Type::Int, 1, 0, ctx.world());
  }),
               RankFailedError);
}

TEST(Fault, RecvFromDeadRankReturnsTypedErrorUnderErrmodeReturn) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 1;
  crash.crash_at_s = 2e-3;
  plan->add(crash);
  Engine eng(fault_cfg(2, plan));
  std::atomic<bool> caught{false};
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    EXPECT_EQ(comm_get_errhandler(world), ErrMode::ret);
    if (ctx.world_rank() == 1) {
      compute(1e-2);  // dies at t = 2e-3
      return;
    }
    int v = 0;
    try {
      recv(&v, 1, Type::Int, 1, 0, world);
    } catch (const RankFailedError& e) {
      caught = true;
      EXPECT_EQ(e.world_rank(), 1);
      EXPECT_DOUBLE_EQ(e.crash_time_s(), 2e-3);
      // The survivor's clock advanced to the failure notification.
      EXPECT_GE(ctx.now(), 2e-3);
    }
  });
  EXPECT_TRUE(caught.load());
}

TEST(Fault, RecvTimeoutRaisesTypedTimeout) {
  Engine eng(fault_cfg(2));  // no fault plan needed for timeouts
  std::atomic<bool> timed_out{false};
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    if (ctx.world_rank() == 1) return;  // never sends
    int v = 0;
    try {
      recv_timeout(&v, 1, Type::Int, 1, 0, world, 0.2);
    } catch (const TimeoutError&) {
      timed_out = true;
    }
  });
  EXPECT_TRUE(timed_out.load());
}

// --- structured deadlock report ----------------------------------------------

TEST(Fault, DeadlockReportNamesEveryBlockedRankAndOperation) {
  auto cfg = fault_cfg(2);
  cfg.watchdog_wall_timeout_s = 0.5;
  Engine eng(cfg);
  std::string report;
  try {
    eng.run([](Ctx& ctx) {
      int v = 0;
      if (ctx.world_rank() == 0)
        recv(&v, 1, Type::Int, 1, 5, ctx.world());
      else
        recv(&v, 1, Type::Int, 0, 7, ctx.world());
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    report = e.what();
  }
  EXPECT_TRUE(contains(report, "deadlock")) << report;
  EXPECT_TRUE(contains(report, "rank 0: blocked in recv(src=1, tag=5"))
      << report;
  EXPECT_TRUE(contains(report, "rank 1: blocked in recv(src=0, tag=7"))
      << report;
  EXPECT_TRUE(contains(report, "kind=p2p")) << report;
  EXPECT_TRUE(contains(report, "comm=")) << report;
  EXPECT_TRUE(contains(report, "at t=")) << report;
}

TEST(Fault, WatchdogScalesWithWorldSizeAndHonorsEnvOverride) {
  auto cfg = fault_cfg(8);
  cfg.watchdog_wall_timeout_s = 2.0;
  {
    Engine eng(cfg);
    EXPECT_DOUBLE_EQ(eng.effective_watchdog_s(), 2.0);  // 8/32 < 1: floor
  }
  {
    topo::Topology t({16, 1, 4}, {"node", "socket", "core"});
    std::vector<net::LinkParams> params = {
        {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
    net::CostModel cost(t, params, 1e-7);
    EngineConfig big{.cost_model = cost,
                     .placement = topo::round_robin_placement(64, t)};
    big.watchdog_wall_timeout_s = 2.0;
    Engine eng(big);
    EXPECT_DOUBLE_EQ(eng.effective_watchdog_s(), 4.0);  // x(64/32)
  }
  {
    ::setenv("MPIM_WATCHDOG_S", "0.25", 1);
    Engine eng(cfg);
    EXPECT_DOUBLE_EQ(eng.effective_watchdog_s(), 0.25);
    ::unsetenv("MPIM_WATCHDOG_S");
  }
}

TEST(Fault, WatchdogScalingIsCappedAtLargeWorlds) {
  // An uncapped np/32 multiplier would mean 4096/32 = 128x the base --
  // tens of minutes of silence before a deadlock report. The multiplier
  // must stop at 4x and the scaled result at two minutes.
  topo::Topology t({256, 1, 16}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  EngineConfig huge{.cost_model = cost,
                    .placement = topo::round_robin_placement(4096, t)};
  huge.watchdog_wall_timeout_s = 2.0;
  {
    Engine eng(huge);
    EXPECT_DOUBLE_EQ(eng.effective_watchdog_s(), 8.0);  // 4x cap, not 128x
  }
  huge.watchdog_wall_timeout_s = 60.0;
  {
    Engine eng(huge);
    EXPECT_DOUBLE_EQ(eng.effective_watchdog_s(), 120.0);  // 2-minute ceiling
  }
  // A base above the ceiling is the user's explicit choice: honored as-is.
  huge.watchdog_wall_timeout_s = 300.0;
  {
    Engine eng(huge);
    EXPECT_DOUBLE_EQ(eng.effective_watchdog_s(), 300.0);
  }
}

// --- failure-aware monitoring gathers ----------------------------------------

/// Ranks 0..2 exchange a ring among themselves; rank 3 dies on entry.
void alive_ring(Ctx& ctx, std::size_t bytes) {
  const Comm world = ctx.world();
  const int r = ctx.world_rank();
  std::vector<std::byte> buf(bytes);
  send(buf.data(), bytes, Type::Byte, (r + 1) % 3, 0, world);
  recv(buf.data(), bytes, Type::Byte, (r + 2) % 3, 0, world);
}

TEST(Fault, RootgatherReturnsPartialDataWithSentinelRows) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 3;
  crash.crash_at_s = 0.0;
  plan->add(crash);
  auto cfg = fault_cfg(4, plan);
  Engine eng(cfg);
  mpit::Runtime tool(eng);
  eng.run([](Ctx& ctx) {
    if (ctx.world_rank() == 3) {
      compute(0.0);
      return;
    }
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_set_gather_timeout(0.2), MPI_M_SUCCESS);
    EXPECT_DOUBLE_EQ(MPI_M_get_gather_timeout(), 0.2);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    alive_ring(ctx, 1000);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    const int n = 4;
    std::vector<unsigned long> sizes(
        ctx.world_rank() == 0 ? static_cast<std::size_t>(n * n) : 0);
    const int rc = MPI_M_rootgather_data(
        id, 0, MPI_M_DATA_IGNORE,
        ctx.world_rank() == 0 ? sizes.data() : nullptr, MPI_M_ALL_COMM);
    if (ctx.world_rank() == 0) {
      EXPECT_EQ(rc, MPI_M_PARTIAL_DATA);
      for (int j = 0; j < n; ++j)
        EXPECT_EQ(sizes[static_cast<std::size_t>(3 * n + j)],
                  MPI_M_DATA_MISSING);
      EXPECT_EQ(sizes[1], 1000ul);  // rank 0 -> rank 1, still measured
    } else {
      EXPECT_EQ(rc, MPI_M_SUCCESS);  // contributors cannot see the hole
    }
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
  EXPECT_TRUE(eng.rank_dead(3));
}

TEST(Fault, AllgatherDistributesPartialMatrixToEveryAliveRank) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 3;
  crash.crash_at_s = 0.0;
  plan->add(crash);
  Engine eng(fault_cfg(4, plan));
  mpit::Runtime tool(eng);
  eng.run([](Ctx& ctx) {
    if (ctx.world_rank() == 3) {
      compute(0.0);
      return;
    }
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_set_gather_timeout(0.2), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    alive_ring(ctx, 500);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    const int n = 4;
    std::vector<unsigned long> sizes(static_cast<std::size_t>(n * n));
    EXPECT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, sizes.data(),
                                   MPI_M_ALL_COMM),
              MPI_M_PARTIAL_DATA);
    for (int j = 0; j < n; ++j)
      EXPECT_EQ(sizes[static_cast<std::size_t>(3 * n + j)],
                MPI_M_DATA_MISSING);
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
}

// --- reorder identity fallback -----------------------------------------------

TEST(Fault, ReorderFallsBackToIdentityOnPartialData) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 3;
  crash.crash_at_s = 0.0;
  plan->add(crash);
  Engine eng(fault_cfg(4, plan));
  mpit::Runtime tool(eng);
  eng.run([](Ctx& ctx) {
    if (ctx.world_rank() == 3) {
      compute(0.0);
      return;
    }
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_set_gather_timeout(0.2), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    alive_ring(ctx, 2000);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    const reorder::ReorderResult res = reorder::reorder_ranks(id, world);
    EXPECT_TRUE(res.fell_back);
    EXPECT_FALSE(res.fallback_reason.empty());
    EXPECT_EQ(res.k, reorder::identity_k(4));
    // No split on fallback: the optimized communicator IS the input one.
    EXPECT_EQ(res.opt_comm.context_id(), world.context_id());

    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
}

TEST(Fault, ValidateGatheredMatrixRejectsSentinelAndGarbage) {
  std::string reason;
  std::vector<unsigned long> good(9, 10ul);
  EXPECT_TRUE(reorder::validate_gathered_matrix(good.data(), 3, &reason));

  std::vector<unsigned long> holed = good;
  holed[4] = MPI_M_DATA_MISSING;
  EXPECT_FALSE(reorder::validate_gathered_matrix(holed.data(), 3, &reason));
  EXPECT_TRUE(contains(reason, "MPI_M_DATA_MISSING")) << reason;

  std::vector<unsigned long> corrupt = good;
  corrupt[2] = (1ul << 62) + 1ul;
  EXPECT_FALSE(reorder::validate_gathered_matrix(corrupt.data(), 3, &reason));
  EXPECT_TRUE(contains(reason, "implausibly large")) << reason;

  EXPECT_FALSE(reorder::validate_gathered_matrix(nullptr, 3, &reason));
  EXPECT_FALSE(reorder::validate_gathered_matrix(good.data(), 0, &reason));
}

}  // namespace
}  // namespace mpim::mpi
