// Exercises the Fortran binding shims the way a Fortran object file would:
// integer handles, every argument by reference, hidden string lengths,
// trailing ierr out-parameter.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "minimpi/api.h"
#include "mpimon/fortran.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/sim.h"

namespace mpim {
namespace {

Sim make_sim(int nranks = 2) {
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                        .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 3.0;
  return Sim(std::move(cfg));
}

TEST(Fortran, FullSessionLifecycle) {
  Sim sim = make_sim(2);
  sim.run([](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    int ierr = -1;
    mpi_m_init_(&ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    const int fcomm = mpi_m_register_comm_f(world);
    int msid = -1;
    mpi_m_start_(&fcomm, &msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    if (ctx.world_rank() == 0) {
      std::vector<std::byte> b(64);
      mpi::send(b.data(), 64, mpi::Type::Byte, 1, 0, world);
    } else {
      std::vector<std::byte> b(64);
      mpi::recv(b.data(), 64, mpi::Type::Byte, 0, 0, world);
    }

    mpi_m_suspend_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    int provided = -1, n = -1;
    mpi_m_get_info_(&msid, &provided, &n, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    EXPECT_EQ(n, 2);

    const int flags = MPI_M_P2P_ONLY;
    unsigned long counts[2], sizes[2];
    mpi_m_get_data_(&msid, counts, sizes, &flags, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    if (ctx.world_rank() == 0) {
      EXPECT_EQ(counts[1], 1u);
      EXPECT_EQ(sizes[1], 64u);
    }

    unsigned long mat_counts[4], mat_sizes[4];
    mpi_m_allgather_data_(&msid, mat_counts, mat_sizes, &flags, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    EXPECT_EQ(mat_sizes[1], 64u);  // row 0, column 1

    mpi_m_reset_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_continue_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_suspend_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_free_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_finalize_(&ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
  });
}

TEST(Fortran, ErrorCodesPropagate) {
  Sim sim = make_sim(1);
  sim.run([](mpi::Ctx&) {
    int ierr = -1;
    const int bogus = 77;
    mpi_m_suspend_(&bogus, &ierr);
    EXPECT_EQ(ierr, MPI_M_MISSING_INIT);
    mpi_m_init_(&ierr);
    mpi_m_suspend_(&bogus, &ierr);
    EXPECT_EQ(ierr, MPI_M_INVALID_MSID);
    mpi_m_finalize_(&ierr);
  });
}

TEST(Fortran, FlushHandlesBlankPaddedNames) {
  namespace fs = std::filesystem;
  const std::string base = (fs::temp_directory_path() / "mpim_f").string();
  // Fortran CHARACTER(len=...) strings arrive blank-padded, unterminated.
  std::string padded = base + "   ";
  Sim sim = make_sim(1);
  sim.run([&](mpi::Ctx& ctx) {
    int ierr = -1;
    mpi_m_init_(&ierr);
    const int fcomm = mpi_m_register_comm_f(ctx.world());
    int msid = -1;
    mpi_m_start_(&fcomm, &msid, &ierr);
    mpi_m_suspend_(&msid, &ierr);
    const int flags = MPI_M_ALL_COMM;
    mpi_m_flush_(&msid, padded.data(), &flags, &ierr,
                 static_cast<int>(padded.size()));
    EXPECT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_free_(&msid, &ierr);
    mpi_m_finalize_(&ierr);
  });
  const std::string path = base + ".0.prof";
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::remove(path.c_str());
}

TEST(Fortran, SnapshotLifecycleThroughTheShims) {
  Sim sim = make_sim(2);
  sim.run([](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    int ierr = -1;
    mpi_m_init_(&ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    const int fcomm = mpi_m_register_comm_f(world);
    int msid = -1;
    mpi_m_start_(&fcomm, &msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    const double window_s = 1e-3;
    const int max_frames = 8, flags = MPI_M_ALL_COMM;
    mpi_m_snapshot_start_(&msid, &window_s, &max_frames, &flags, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    if (ctx.world_rank() == 0) {
      std::vector<std::byte> b(64);
      mpi::send(b.data(), 64, mpi::Type::Byte, 1, 0, world);
    } else {
      std::vector<std::byte> b(64);
      mpi::recv(b.data(), 64, mpi::Type::Byte, 0, 0, world);
    }
    mpi_m_suspend_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    int nframes = -1, dropped = -1, boundaries = -1;
    mpi_m_snapshot_info_(&msid, &nframes, &dropped, &boundaries, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    EXPECT_EQ(dropped, 0);
    EXPECT_EQ(boundaries, 0);
    if (ctx.world_rank() == 0) {
      EXPECT_EQ(nframes, 1);
    }

    int got = -1;
    double t0[8], t1[8];
    unsigned long counts[8 * 4], sizes[8 * 4];
    mpi_m_get_frames_(&msid, &max_frames, &got, t0, t1, counts, sizes,
                      &flags, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    ASSERT_EQ(got, 1);
    EXPECT_DOUBLE_EQ(t0[0], 0.0);
    EXPECT_DOUBLE_EQ(t1[0], window_s);
    EXPECT_EQ(counts[1], 1u);  // window 0: rank 0 -> rank 1
    EXPECT_EQ(sizes[1], 64u);

    mpi_m_snapshot_stop_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_snapshot_stop_(&msid, &ierr);  // second stop: nothing attached
    EXPECT_EQ(ierr, MPI_M_NO_SNAPSHOT);
    mpi_m_free_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_finalize_(&ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
  });
}

TEST(Fortran, SnapshotErrorCodesPropagate) {
  Sim sim = make_sim(1);
  sim.run([](mpi::Ctx& ctx) {
    int ierr = -1;
    mpi_m_init_(&ierr);
    const int fcomm = mpi_m_register_comm_f(ctx.world());
    int msid = -1;
    mpi_m_start_(&fcomm, &msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    const double window_s = 1e-3;
    const int max_frames = 4;
    const int bad_flags = 0, flags = MPI_M_ALL_COMM;
    mpi_m_snapshot_start_(&msid, &window_s, &max_frames, &bad_flags, &ierr);
    EXPECT_EQ(ierr, MPI_M_INVALID_FLAGS);
    const double bad_window = 0.0;
    mpi_m_snapshot_start_(&msid, &bad_window, &max_frames, &flags, &ierr);
    EXPECT_EQ(ierr, MPI_M_INTERNAL_FAIL);

    int nframes = -1;
    mpi_m_snapshot_info_(&msid, &nframes, nullptr, nullptr, &ierr);
    EXPECT_EQ(ierr, MPI_M_SESSION_NOT_SUSPENDED);
    mpi_m_suspend_(&msid, &ierr);
    mpi_m_snapshot_info_(&msid, &nframes, nullptr, nullptr, &ierr);
    EXPECT_EQ(ierr, MPI_M_NO_SNAPSHOT);
    int got = -1;
    mpi_m_get_frames_(&msid, &max_frames, &got, nullptr, nullptr, nullptr,
                      nullptr, &flags, &ierr);
    EXPECT_EQ(ierr, MPI_M_NO_SNAPSHOT);

    mpi_m_free_(&msid, &ierr);
    mpi_m_finalize_(&ierr);
  });
}

TEST(Fortran, InvalidCommHandleFails) {
  Sim sim = make_sim(1);
  sim.run([](mpi::Ctx&) {
    int ierr = -1;
    mpi_m_init_(&ierr);
    const int bad_comm = 12345;
    int msid = -1;
    mpi_m_start_(&bad_comm, &msid, &ierr);
    EXPECT_EQ(ierr, MPI_M_INTERNAL_FAIL);  // null communicator
    mpi_m_finalize_(&ierr);
  });
}

}  // namespace
}  // namespace mpim
