// Exercises the Fortran binding shims the way a Fortran object file would:
// integer handles, every argument by reference, hidden string lengths,
// trailing ierr out-parameter.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "minimpi/api.h"
#include "mpimon/fortran.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/sim.h"

namespace mpim {
namespace {

Sim make_sim(int nranks = 2) {
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                        .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 3.0;
  return Sim(std::move(cfg));
}

TEST(Fortran, FullSessionLifecycle) {
  Sim sim = make_sim(2);
  sim.run([](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    int ierr = -1;
    mpi_m_init_(&ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    const int fcomm = mpi_m_register_comm_f(world);
    int msid = -1;
    mpi_m_start_(&fcomm, &msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    if (ctx.world_rank() == 0) {
      std::vector<std::byte> b(64);
      mpi::send(b.data(), 64, mpi::Type::Byte, 1, 0, world);
    } else {
      std::vector<std::byte> b(64);
      mpi::recv(b.data(), 64, mpi::Type::Byte, 0, 0, world);
    }

    mpi_m_suspend_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    int provided = -1, n = -1;
    mpi_m_get_info_(&msid, &provided, &n, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    EXPECT_EQ(n, 2);

    const int flags = MPI_M_P2P_ONLY;
    unsigned long counts[2], sizes[2];
    mpi_m_get_data_(&msid, counts, sizes, &flags, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    if (ctx.world_rank() == 0) {
      EXPECT_EQ(counts[1], 1u);
      EXPECT_EQ(sizes[1], 64u);
    }

    unsigned long mat_counts[4], mat_sizes[4];
    mpi_m_allgather_data_(&msid, mat_counts, mat_sizes, &flags, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    EXPECT_EQ(mat_sizes[1], 64u);  // row 0, column 1

    mpi_m_reset_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_continue_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_suspend_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_free_(&msid, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_finalize_(&ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
  });
}

TEST(Fortran, ErrorCodesPropagate) {
  Sim sim = make_sim(1);
  sim.run([](mpi::Ctx&) {
    int ierr = -1;
    const int bogus = 77;
    mpi_m_suspend_(&bogus, &ierr);
    EXPECT_EQ(ierr, MPI_M_MISSING_INIT);
    mpi_m_init_(&ierr);
    mpi_m_suspend_(&bogus, &ierr);
    EXPECT_EQ(ierr, MPI_M_INVALID_MSID);
    mpi_m_finalize_(&ierr);
  });
}

TEST(Fortran, FlushHandlesBlankPaddedNames) {
  namespace fs = std::filesystem;
  const std::string base = (fs::temp_directory_path() / "mpim_f").string();
  // Fortran CHARACTER(len=...) strings arrive blank-padded, unterminated.
  std::string padded = base + "   ";
  Sim sim = make_sim(1);
  sim.run([&](mpi::Ctx& ctx) {
    int ierr = -1;
    mpi_m_init_(&ierr);
    const int fcomm = mpi_m_register_comm_f(ctx.world());
    int msid = -1;
    mpi_m_start_(&fcomm, &msid, &ierr);
    mpi_m_suspend_(&msid, &ierr);
    const int flags = MPI_M_ALL_COMM;
    mpi_m_flush_(&msid, padded.data(), &flags, &ierr,
                 static_cast<int>(padded.size()));
    EXPECT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_free_(&msid, &ierr);
    mpi_m_finalize_(&ierr);
  });
  const std::string path = base + ".0.prof";
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::remove(path.c_str());
}

TEST(Fortran, InvalidCommHandleFails) {
  Sim sim = make_sim(1);
  sim.run([](mpi::Ctx&) {
    int ierr = -1;
    mpi_m_init_(&ierr);
    const int bad_comm = 12345;
    int msid = -1;
    mpi_m_start_(&bad_comm, &msid, &ierr);
    EXPECT_EQ(ierr, MPI_M_INTERNAL_FAIL);  // null communicator
    mpi_m_finalize_(&ierr);
  });
}

}  // namespace
}  // namespace mpim
