// Scheduler-backend parity: every workload must produce bit-identical
// virtual clocks whether ranks run as OS threads or as cooperatively
// scheduled ucontext fibers of one thread (EngineConfig::sched /
// MPIM_SCHED). The sweep covers plain p2p + collectives, NIC contention,
// fault plans, crash + shrink + rebind recovery, and the critical-path
// profiler's labels; fiber-only cases check the structural deadlock
// detector, timed receives, rerun determinism, and a np=512 recovery world
// no thread backend could drive on this host.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "critpath/critpath.h"
#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "minimpi/ft.h"
#include "mpimon/mpi_monitoring.h"
#include "mpit/runtime.h"

namespace mpim::mpi {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

EngineConfig sched_cfg(int nranks, int nodes = 2, int cores = 4,
                       std::shared_ptr<fault::FaultPlan> plan = nullptr) {
  topo::Topology t({nodes, 1, cores}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, /*send_overhead=*/1e-7);
  EngineConfig cfg{.cost_model = cost,
                   .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 5.0;
  cfg.fault_plan = std::move(plan);
  return cfg;
}

/// Runs `workload` once under each backend on otherwise identical engines
/// and requires every rank's final virtual clock to match bit for bit.
void expect_clock_parity(const EngineConfig& cfg,
                         const std::function<void(Ctx&)>& workload) {
  EngineConfig tcfg = cfg;
  tcfg.sched = SchedMode::threads;
  Engine threads(tcfg);
  threads.run(workload);

  EngineConfig fcfg = cfg;
  fcfg.sched = SchedMode::fibers;
  Engine fibers(fcfg);
  fibers.run(workload);
  EXPECT_EQ(threads.final_clocks(), fibers.final_clocks());
  EXPECT_EQ(fibers.sched_mode(), SchedMode::fibers);
}

/// Ring p2p with per-rank compute skew plus one of each collective family,
/// so both backends exercise the tree/dissemination join patterns.
void mixed_workload(Ctx& ctx) {
  const Comm world = ctx.world();
  const int n = comm_size(world);
  const int me = comm_rank(world);
  std::vector<double> buf(64, static_cast<double>(me));
  for (int it = 0; it < 4; ++it) {
    compute(1e-5 * (me % 3 + 1));
    send(buf.data(), buf.size(), Type::Double, (me + 1) % n, it, world);
    recv(buf.data(), buf.size(), Type::Double, (me + n - 1) % n, it, world);
  }
  long v = me, sum = 0;
  allreduce(&v, &sum, 1, Type::Long, Op::Sum, world);
  EXPECT_EQ(sum, static_cast<long>(n) * (n - 1) / 2);
  int root_val = me == 0 ? 42 : 0;
  bcast(&root_val, 1, Type::Int, 0, world);
  EXPECT_EQ(root_val, 42);
  barrier(world);
}

// --- strict MPIM_SCHED parsing ----------------------------------------------

TEST(SchedEnv, StrictParseOverridesAndRejectsGarbage) {
  auto cfg = sched_cfg(2);
  const auto run_and_mode = [&](const EngineConfig& c) {
    Engine eng(c);
    eng.run([](Ctx&) {});
    return eng.sched_mode();
  };
  ::unsetenv("MPIM_SCHED");
  EXPECT_EQ(run_and_mode(cfg), SchedMode::threads);  // config default

  ::setenv("MPIM_SCHED", "fibers", 1);
  EXPECT_EQ(run_and_mode(cfg), SchedMode::fibers);
  ::setenv("MPIM_SCHED", " THREADS ", 1);  // case + whitespace tolerated
  cfg.sched = SchedMode::fibers;
  EXPECT_EQ(run_and_mode(cfg), SchedMode::threads);

  // Garbage must not half-apply: the configured backend stands.
  for (const char* bad : {"fiber", "fibres", "2", "", "threads,fibers"}) {
    ::setenv("MPIM_SCHED", bad, 1);
    EXPECT_EQ(run_and_mode(cfg), SchedMode::fibers) << "value \"" << bad
                                                    << "\"";
  }
  ::unsetenv("MPIM_SCHED");
}

// --- thread-vs-fiber clock bit-identity sweep --------------------------------

TEST(SchedParity, MixedP2pAndCollectives) {
  for (int np : {2, 4, 8, 16}) {
    SCOPED_TRACE("np=" + std::to_string(np));
    expect_clock_parity(sched_cfg(np, /*nodes=*/std::max(2, np / 4)),
                        mixed_workload);
  }
}

TEST(SchedParity, NicContentionGateOrdersSendsIdentically) {
  // The min-clock gate serializes inter-node sends by (clock, rank); the
  // fiber backend must reproduce the exact same port reservations.
  auto cfg = sched_cfg(8, /*nodes=*/4, /*cores=*/2);
  cfg.nic_contention = true;
  cfg.nic_port_beta_scale = 2.0;
  expect_clock_parity(cfg, [](Ctx& ctx) {
    const Comm world = ctx.world();
    const int n = comm_size(world);
    const int me = comm_rank(world);
    std::vector<char> big(1 << 15, 'x');
    for (int it = 0; it < 3; ++it) {
      compute(2e-6 * (me + 1));
      send(big.data(), big.size(), Type::Char, (me + n / 2) % n, it, world);
      recv(big.data(), big.size(), Type::Char, (me + n / 2) % n, it, world);
    }
    barrier(world);
  });
}

TEST(SchedParity, FaultPlanCrashAndSlowdown) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 2;
  crash.crash_at_s = 2e-3;
  plan->add(crash);
  fault::RankFault slow;
  slow.rank = 1;
  slow.slowdown = 1.5;
  plan->add(slow);
  auto cfg = sched_cfg(6, 2, 4, plan);
  // Star pattern on the victim: every survivor depends only on rank 2 (no
  // survivor-to-survivor edges that would dangle once a peer stops early),
  // so the failure is observed at a deterministic clock on every rank.
  expect_clock_parity(cfg, [](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    const int me = ctx.world_rank();
    if (me == 2) {
      compute(1.0);  // dies on the way
      return;
    }
    compute(5e-4 * (me + 1));  // rank 1's slowdown shapes this
    int v = me;
    try {
      recv(&v, 1, Type::Int, 2, 0, world);
      ADD_FAILURE() << "rank 2 never sends";
    } catch (const RankFailedError&) {
      ctx.observe_rank_failure(2);
    }
    compute(1e-4);
  });
}

TEST(SchedParity, CrashShrinkAgreeRecovery) {
  const auto plan = [] {
    auto p = std::make_shared<fault::FaultPlan>(1);
    fault::RankFault crash;
    crash.rank = 3;
    crash.crash_at_s = 1e-3;
    p->add(crash);
    return p;
  };
  const auto workload = [](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    if (ctx.world_rank() == 3) {
      compute(1.0);
      return;
    }
    const Comm alive = comm_shrink(world);
    ASSERT_FALSE(alive.is_null());
    ASSERT_EQ(comm_size(alive), 5);
    const int me = comm_rank(alive);
    int token = me;
    send(&token, 1, Type::Int, (me + 1) % 5, 9, alive);
    recv(&token, 1, Type::Int, (me + 4) % 5, 9, alive);
    int flag = 1;
    EXPECT_TRUE(comm_agree(alive, &flag));
    EXPECT_EQ(flag, 1);
  };
  expect_clock_parity(sched_cfg(6, 2, 4, plan()), workload);
}

TEST(SchedParity, CritpathLabelsMatchAcrossBackends) {
  const auto workload = [](Ctx& ctx) {
    const Comm world = ctx.world();
    const int n = comm_size(world);
    const int me = comm_rank(world);
    std::vector<char> buf(2048, 7);
    for (int it = 0; it < 6; ++it) {
      compute(1e-4);
      if (me == 3) compute(5e-4);  // the straggler
      sendrecv(buf.data(), buf.size(), Type::Char, (me + 1) % n, 0,
               buf.data(), buf.size(), (me + n - 1) % n, 0, world);
    }
    long v = me, sum = 0;
    allreduce(&v, &sum, 1, Type::Long, Op::Sum, world);
  };
  const auto profiled_run = [&](SchedMode mode) {
    auto cfg = sched_cfg(8);
    cfg.sched = mode;
    Engine eng(cfg);
    auto prof = critpath::Profiler::attach(eng);
    eng.run(workload);
    const critpath::BlameReport& rep = prof->report();
    EXPECT_TRUE(rep.valid);
    return std::make_tuple(eng.final_clocks(), rep.dominant_rank,
                           rep.dominant_class, rep.total_comm_ns,
                           rep.total_wait_ns);
  };
  const auto threads = profiled_run(SchedMode::threads);
  const auto fibers = profiled_run(SchedMode::fibers);
  EXPECT_EQ(std::get<0>(threads), std::get<0>(fibers));  // clocks
  EXPECT_EQ(std::get<1>(threads), std::get<1>(fibers));  // dominant rank
  EXPECT_EQ(std::get<1>(fibers), 3);
  EXPECT_EQ(std::get<2>(threads), std::get<2>(fibers));  // dominant class
  EXPECT_EQ(std::get<3>(threads), std::get<3>(fibers));  // total comm ns
  EXPECT_EQ(std::get<4>(threads), std::get<4>(fibers));  // total wait ns
}

// --- fabric backends ---------------------------------------------------------

TEST(SchedParity, AllFabricKindsKeepClockParity) {
  // The per-link contention gate walks real multi-hop routes on fat-tree
  // and dragonfly; both backends must replay the exact same reservations.
  for (const char* spec :
       {"fattree:2,2,1", "fattree:2,2,2", "dragonfly:2,3,2",
        "dragonfly:3,4,2,valiant"}) {
    SCOPED_TRACE(spec);
    constexpr int kNp = 12;
    auto fab = topo::make_fabric(*topo::parse_fabric_spec(spec), kNp);
    EngineConfig cfg{.cost_model = net::CostModel::for_fabric(fab),
                     .placement =
                         topo::bynode_placement(kNp, fab->hierarchy())};
    cfg.watchdog_wall_timeout_s = 5.0;
    cfg.nic_contention = true;
    cfg.nic_port_beta_scale = 2.0;
    expect_clock_parity(cfg, mixed_workload);
  }
}

TEST(SchedParity, TreeFabricReproducesPreFabricClocks) {
  // Golden clocks captured on the depth-indexed pre-fabric engine (18
  // ranks by-node on plafrim_like(3), hexfloat-exact): the TreeFabric path
  // must reproduce them bit for bit, contention on and off, under both
  // backends.
  const std::vector<double> want_plain = {
      0x1.2d037f77959f9p-13, 0x1.2d037f77959f9p-13, 0x1.2f520e50e1d6ap-13,
      0x1.2ab4f09e49688p-13, 0x1.2d037f77959f9p-13, 0x1.2d037f77959f9p-13,
      0x1.2f520e50e1d6ap-13, 0x1.2d037f77959f9p-13, 0x1.2f520e50e1d6ap-13,
      0x1.2f520e50e1d6ap-13, 0x1.31a09d2a2e0dbp-13, 0x1.2d037f77959f9p-13,
      0x1.2f520e50e1d6ap-13, 0x1.286661c4fd317p-13, 0x1.2ab4f09e49688p-13,
      0x1.2ab4f09e49688p-13, 0x1.2d037f77959f9p-13, 0x1.2ab4f09e49688p-13};
  const std::vector<double> want_contended = {
      0x1.2d5f1fb7166ebp-13, 0x1.2d5f1fb7166ebp-13, 0x1.2fadae9062a5cp-13,
      0x1.2b1090ddca37ap-13, 0x1.2d5f1fb7166ebp-13, 0x1.2d5f1fb7166ebp-13,
      0x1.2fadae9062a5cp-13, 0x1.2d5f1fb7166ebp-13, 0x1.2fadae9062a5cp-13,
      0x1.2fadae9062a5cp-13, 0x1.31fc3d69aedcdp-13, 0x1.2d5f1fb7166ebp-13,
      0x1.2fadae9062a5cp-13, 0x1.28c202047e009p-13, 0x1.2b1090ddca37ap-13,
      0x1.2b1090ddca37ap-13, 0x1.2d5f1fb7166ebp-13, 0x1.2b1090ddca37ap-13};
  const auto workload = [](Ctx& ctx) {
    const Comm world = ctx.world();
    const int n = comm_size(world);
    const int me = comm_rank(world);
    std::vector<double> buf(256, static_cast<double>(me));
    for (int it = 0; it < 3; ++it) {
      compute(1e-5 * (me % 4 + 1));
      send(buf.data(), buf.size(), Type::Double, (me + 1) % n, it, world);
      recv(buf.data(), buf.size(), Type::Double, (me + n - 1) % n, it, world);
    }
    long v = me, sum = 0;
    allreduce(&v, &sum, 1, Type::Long, Op::Sum, world);
    int root_val = me == 0 ? 7 : 0;
    bcast(&root_val, 1, Type::Int, 0, world);
    barrier(world);
  };
  for (const bool contention : {false, true}) {
    for (const SchedMode mode : {SchedMode::threads, SchedMode::fibers}) {
      auto cost = net::CostModel::plafrim_like(/*nodes=*/3);
      EngineConfig cfg{.cost_model = cost,
                       .placement =
                           topo::bynode_placement(18, cost.topology())};
      cfg.nic_contention = contention;
      cfg.nic_port_beta_scale = 2.0;
      cfg.sched = mode;
      Engine eng(cfg);
      eng.run(workload);
      EXPECT_EQ(eng.final_clocks(), contention ? want_contended : want_plain)
          << "contention=" << contention << " mode=" << sched_mode_name(mode);
    }
  }
}

TEST(SchedEnv, StrictTopoParseSelectsFabricAndRejectsGarbage) {
  auto cfg = sched_cfg(4);
  const auto fabric_kind_after_run = [&] {
    Engine eng(cfg);
    eng.run([](Ctx&) {});
    return eng.fabric().kind();
  };
  ::unsetenv("MPIM_TOPO");
  EXPECT_EQ(fabric_kind_after_run(), topo::FabricKind::tree);

  ::setenv("MPIM_TOPO", "fattree:2,2,1", 1);
  EXPECT_EQ(fabric_kind_after_run(), topo::FabricKind::fattree);
  ::setenv("MPIM_TOPO", " DragonFly:2,3,2 ", 1);  // case + blanks tolerated
  EXPECT_EQ(fabric_kind_after_run(), topo::FabricKind::dragonfly);

  // Garbage must not half-apply: the configured tree fabric stands, and
  // "tree" itself keeps the caller's custom tree cost model.
  for (const char* bad :
       {"", "fattree", "fattree:2,2", "fattree:2,2,zz", "fattree:2,2,2,9",
        "dragonfly:2,3", "dragonfly:2,3,2,fastest", "torus:4", "tree:3"}) {
    ::setenv("MPIM_TOPO", bad, 1);
    EXPECT_EQ(fabric_kind_after_run(), topo::FabricKind::tree)
        << "value \"" << bad << "\"";
  }
  ::setenv("MPIM_TOPO", "tree", 1);
  EXPECT_EQ(fabric_kind_after_run(), topo::FabricKind::tree);
  ::unsetenv("MPIM_TOPO");
}

// --- fiber-only behaviors ----------------------------------------------------

TEST(SchedFibers, RerunsAreDeterministic) {
  auto cfg = sched_cfg(8);
  cfg.sched = SchedMode::fibers;
  Engine eng(cfg);
  eng.run(mixed_workload);
  const auto first = eng.final_clocks();
  eng.run(mixed_workload);
  EXPECT_EQ(first, eng.final_clocks());
}

TEST(SchedFibers, StructuralDeadlockIsReportedWithoutWallTimeout) {
  auto cfg = sched_cfg(2);
  cfg.sched = SchedMode::fibers;
  // A wall watchdog would need this long to fire; the fiber scheduler must
  // report the moment its ready queue drains, so the test finishes in
  // milliseconds, not minutes.
  cfg.watchdog_wall_timeout_s = 3600.0;
  Engine eng(cfg);
  std::string report;
  try {
    eng.run([](Ctx& ctx) {
      const Comm world = ctx.world();
      int v = 0;
      // Both ranks receive first: a classic circular wait.
      recv(&v, 1, Type::Int, 1 - ctx.world_rank(), 5, world);
      send(&v, 1, Type::Int, 1 - ctx.world_rank(), 5, world);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    report = e.what();
  }
  EXPECT_TRUE(contains(report, "deadlock")) << report;
  EXPECT_TRUE(contains(report, "rank 0: blocked in recv(src=1, tag=5"))
      << report;
  EXPECT_TRUE(contains(report, "rank 1: blocked in recv(src=0, tag=5"))
      << report;
}

TEST(SchedFibers, TimedReceiveTimesOutAndDeliversLate) {
  auto cfg = sched_cfg(2);
  cfg.sched = SchedMode::fibers;
  Engine eng(cfg);
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      int v = 0;
      Status st;
      // Nothing in flight yet: the bounded wait must give up on wall time
      // even though every other fiber is blocked too.
      EXPECT_EQ(ctx.recv_bytes_wait(1, world, 7, CommKind::p2p, &v, sizeof v,
                                    &st, 0.05),
                Ctx::RecvWait::timeout);
      // Unblock rank 1, then the real message arrives.
      int go = 1;
      send(&go, 1, Type::Int, 1, 8, world);
      EXPECT_EQ(ctx.recv_bytes_wait(1, world, 7, CommKind::p2p, &v, sizeof v,
                                    &st, 30.0),
                Ctx::RecvWait::ok);
      EXPECT_EQ(v, 99);
    } else {
      int go = 0;
      recv(&go, 1, Type::Int, 0, 8, world);
      int v = 99;
      send(&v, 1, Type::Int, 0, 7, world);
    }
  });
}

TEST(SchedFibers, CrashShrinkRebindAtNp512) {
  // A world no thread backend drives on this host: 512 rank fibers, one
  // mid-run crash, ULFM shrink, monitoring-session rebind onto the
  // survivor communicator, and a post-rebind gather.
  constexpr int kNp = 512;
  constexpr int kDead = 300;
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = kDead;
  crash.crash_at_s = 1e-3;
  plan->add(crash);
  auto cfg = sched_cfg(kNp, /*nodes=*/32, /*cores=*/16, plan);
  cfg.sched = SchedMode::fibers;
  Engine eng(cfg);
  mpit::Runtime tool(eng);
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    const int r = ctx.world_rank();
    if (r == kDead) {
      compute(1.0);
      return;
    }
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_set_gather_timeout(0.5), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    const Comm alive = comm_shrink(world);
    ASSERT_FALSE(alive.is_null());
    ASSERT_EQ(comm_size(alive), kNp - 1);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_rebind(id, alive), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_continue(id), MPI_M_SUCCESS);
    int ntomb = -1;
    int tomb = -1;
    ASSERT_EQ(MPI_M_session_tombstones(id, &tomb, 1, &ntomb), MPI_M_SUCCESS);
    EXPECT_EQ(ntomb, 1);
    EXPECT_EQ(tomb, kDead);
    // Survivor ring on the shrunk communicator, recorded by the session.
    const int me = comm_rank(alive);
    const int n = comm_size(alive);
    std::vector<char> buf(256, 1);
    send(buf.data(), buf.size(), Type::Char, (me + 1) % n, 0, alive);
    recv(buf.data(), buf.size(), Type::Char, (me + n - 1) % n, 0, alive);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    std::vector<unsigned long> sizes(static_cast<std::size_t>(n), 0);
    ASSERT_EQ(MPI_M_get_data(id, MPI_M_DATA_IGNORE, sizes.data(),
                             MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    EXPECT_EQ(sizes[static_cast<std::size_t>((me + 1) % n)], 256ul);
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
  EXPECT_EQ(eng.dead_ranks(), std::vector<int>{kDead});
}

TEST(SchedFibers, LargeWorldCompletesWherePthreadsCouldNot) {
  // np=1024 fibers on one OS thread: completion alone is the assertion (a
  // thread backend would need 1024 kernel threads). Kept lightweight: two
  // ring iterations plus an allreduce.
  constexpr int kNp = 1024;
  auto cfg = sched_cfg(kNp, /*nodes=*/64, /*cores=*/16);
  cfg.sched = SchedMode::fibers;
  Engine eng(cfg);
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int n = comm_size(world);
    const int me = comm_rank(world);
    int token = me;
    for (int it = 0; it < 2; ++it) {
      send(&token, 1, Type::Int, (me + 1) % n, it, world);
      recv(&token, 1, Type::Int, (me + n - 1) % n, it, world);
    }
    long v = 1, sum = 0;
    allreduce(&v, &sum, 1, Type::Long, Op::Sum, world);
    EXPECT_EQ(sum, n);
  });
  const auto clocks = eng.final_clocks();
  EXPECT_EQ(clocks.size(), static_cast<std::size_t>(kNp));
  for (double c : clocks) EXPECT_GT(c, 0.0);
}

}  // namespace
}  // namespace mpim::mpi
