#include <gtest/gtest.h>

#include "minimpi/api.h"
#include "mpimon/sim.h"
#include "mpit/pvar.h"
#include "mpit/runtime.h"

namespace mpim::mpit {
namespace {

using mpi::Comm;
using mpi::Ctx;
using mpi::Type;

Sim make_sim(int nranks = 4) {
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                        .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 3.0;
  return Sim(std::move(cfg));
}

TEST(Pvar, RegistryExposesMonitoringVariables) {
  EXPECT_EQ(pvar_get_num(), 56);
  EXPECT_EQ(pvar_index_by_name("pml_monitoring_messages_count"), 0);
  EXPECT_EQ(pvar_index_by_name("pml_monitoring_messages_size"), 1);
  EXPECT_EQ(pvar_index_by_name("osc_monitoring_messages_size"), 5);
  EXPECT_EQ(pvar_index_by_name("no_such_pvar"), -1);
  EXPECT_EQ(pvar_info(0).kind, mpi::CommKind::p2p);
  EXPECT_FALSE(pvar_info(0).is_size);
  EXPECT_TRUE(pvar_info(3).is_size);
  // 47..55 are the critpath block (frozen, see docs/OBSERVABILITY.md).
  EXPECT_EQ(pvar_index_by_name("mpim_critpath_events_total"), 47);
  EXPECT_EQ(pvar_index_by_name("mpim_critpath_blame_only"), 55);
  EXPECT_THROW(pvar_info(56), MpitError);
  EXPECT_THROW(pvar_info(-1), MpitError);
}

TEST(Pvar, PeerMonitoringIndicesAreStable) {
  // Indices 0..5 are frozen: mpimon binds them positionally, and external
  // tools are allowed to cache them. Appending telemetry pvars (PR 2) must
  // never shift them.
  const char* frozen[6] = {
      "pml_monitoring_messages_count", "pml_monitoring_messages_size",
      "coll_monitoring_messages_count", "coll_monitoring_messages_size",
      "osc_monitoring_messages_count", "osc_monitoring_messages_size"};
  for (int i = 0; i < 6; ++i) {
    EXPECT_STREQ(pvar_info(i).name, frozen[i]);
    EXPECT_EQ(pvar_info(i).klass, PvarClass::peer_monitoring);
    EXPECT_EQ(pvar_index_by_name(frozen[i]), i);
  }
}

TEST(Pvar, TelemetryPvarsAreAppendedAndResolvable) {
  for (const char* name :
       {"mpim_engine_messages_total", "mpim_engine_bytes_total",
        "mpim_fault_retransmits_total", "mpim_fault_drops_total",
        "mpim_mon_session_starts_total", "mpim_mon_partial_data_total",
        "mpim_reorder_treematch_ns_total",
        "mpim_reorder_identity_fallback_total"}) {
    const int idx = pvar_index_by_name(name);
    EXPECT_GE(idx, 6) << name;
    EXPECT_EQ(pvar_info(idx).klass, PvarClass::telemetry) << name;
    EXPECT_STREQ(pvar_info(idx).name, name);
  }
  EXPECT_TRUE(pvar_info(pvar_index_by_name("mpim_engine_bytes_total")).is_size);
  EXPECT_FALSE(
      pvar_info(pvar_index_by_name("mpim_engine_messages_total")).is_size);
}

TEST(Runtime, TelemetryPvarReadsThroughRegistry) {
  Sim sim = make_sim(2);
  sim.engine().telemetry().set_enabled(true);
  sim.run([&](Ctx& ctx) {
    Runtime& rt = Runtime::of(ctx.engine());
    const Comm world = ctx.world();
    const int sid = rt.session_create();
    const int idx = pvar_index_by_name("mpim_engine_messages_total");
    ASSERT_GE(idx, 0);
    const int h = rt.handle_alloc(sid, idx, world);
    EXPECT_EQ(rt.handle_count(sid, h), 1);  // rank-local scalar, not per-peer
    rt.handle_start(sid, h);

    if (ctx.world_rank() == 0) {
      int v = 1;
      mpi::send(&v, 1, Type::Int, 1, 0, world);
      mpi::send(&v, 1, Type::Int, 1, 0, world);
    } else {
      int v = 0;
      mpi::recv(&v, 1, Type::Int, 0, 0, world);
      mpi::recv(&v, 1, Type::Int, 0, 0, world);
    }

    unsigned long sent = 0;
    ASSERT_EQ(rt.handle_read(sid, h, &sent, 1), 1);
    if (ctx.world_rank() == 0) {
      EXPECT_EQ(sent, 2u);  // the calling rank's sends only
    } else {
      EXPECT_EQ(sent, 0u);
    }

    // Reset is per handle: it rebases this handle without clearing the
    // shared registry metric.
    rt.handle_reset(sid, h);
    rt.handle_read(sid, h, &sent, 1);
    EXPECT_EQ(sent, 0u);
    EXPECT_GT(ctx.engine().telemetry().registry().counter_total(
                  ctx.engine().telemetry().ids().engine_messages),
              0u);
    rt.session_free(sid);
  });
}

TEST(Runtime, TelemetryPvarAllocFailsWhenMetricMissing) {
  // Guards the name contract between pvar.cpp and the hub catalog: every
  // telemetry pvar must resolve to a live registry metric.
  Sim sim = make_sim(1);
  sim.run([&](Ctx& ctx) {
    Runtime& rt = Runtime::of(ctx.engine());
    const int sid = rt.session_create();
    for (int i = 6; i < pvar_get_num(); ++i)
      EXPECT_NO_THROW(rt.handle_alloc(sid, i, ctx.world())) << i;
    rt.session_free(sid);
  });
}

TEST(Runtime, OfReturnsAttachedRuntime) {
  Sim sim = make_sim();
  EXPECT_EQ(&Runtime::of(sim.engine()), &sim.tool());
}

TEST(Runtime, StartedHandleCountsSentMessages) {
  Sim sim = make_sim(2);
  sim.run([&](Ctx& ctx) {
    Runtime& rt = Runtime::of(ctx.engine());
    const Comm world = ctx.world();
    const int sid = rt.session_create();
    const int hc = rt.handle_alloc(sid, 0, world);  // p2p count
    const int hs = rt.handle_alloc(sid, 1, world);  // p2p size
    rt.handle_start(sid, hc);
    rt.handle_start(sid, hs);

    if (ctx.world_rank() == 0) {
      std::vector<std::byte> buf(100);
      mpi::send(buf.data(), buf.size(), Type::Byte, 1, 0, world);
      mpi::send(buf.data(), 50, Type::Byte, 1, 0, world);
    } else {
      std::vector<std::byte> buf(100);
      mpi::recv(buf.data(), buf.size(), Type::Byte, 0, 0, world);
      mpi::recv(buf.data(), buf.size(), Type::Byte, 0, 0, world);
    }

    rt.handle_stop(sid, hc);
    rt.handle_stop(sid, hs);
    unsigned long counts[2], sizes[2];
    EXPECT_EQ(rt.handle_read(sid, hc, counts, 2), 2);
    rt.handle_read(sid, hs, sizes, 2);
    if (ctx.world_rank() == 0) {
      EXPECT_EQ(counts[1], 2u);   // sender-side recording
      EXPECT_EQ(sizes[1], 150u);
      EXPECT_EQ(counts[0], 0u);
    } else {
      EXPECT_EQ(counts[0], 0u);   // the receiver sent nothing
      EXPECT_EQ(sizes[0], 0u);
    }
    rt.session_free(sid);
  });
}

TEST(Runtime, StoppedHandleRecordsNothing) {
  Sim sim = make_sim(2);
  sim.run([&](Ctx& ctx) {
    Runtime& rt = Runtime::of(ctx.engine());
    const Comm world = ctx.world();
    const int sid = rt.session_create();
    const int h = rt.handle_alloc(sid, 0, world);
    // Never started.
    if (ctx.world_rank() == 0) {
      int v = 1;
      mpi::send(&v, 1, Type::Int, 1, 0, world);
    } else {
      int v = 0;
      mpi::recv(&v, 1, Type::Int, 0, 0, world);
    }
    unsigned long counts[2];
    rt.handle_read(sid, h, counts, 2);
    EXPECT_EQ(counts[0] + counts[1], 0u);
    rt.session_free(sid);
  });
}

TEST(Runtime, ResetZeroesValues) {
  Sim sim = make_sim(2);
  sim.run([&](Ctx& ctx) {
    Runtime& rt = Runtime::of(ctx.engine());
    const Comm world = ctx.world();
    const int sid = rt.session_create();
    const int h = rt.handle_alloc(sid, 1, world);
    rt.handle_start(sid, h);
    if (ctx.world_rank() == 0) {
      int v = 1;
      mpi::send(&v, 1, Type::Int, 1, 0, world);
    } else {
      int v = 0;
      mpi::recv(&v, 1, Type::Int, 0, 0, world);
    }
    rt.handle_stop(sid, h);
    rt.handle_reset(sid, h);
    unsigned long sizes[2];
    rt.handle_read(sid, h, sizes, 2);
    EXPECT_EQ(sizes[0] + sizes[1], 0u);
    rt.session_free(sid);
  });
}

TEST(Runtime, KindFiltersSeparateTrafficClasses) {
  Sim sim = make_sim(4);
  sim.run([&](Ctx& ctx) {
    Runtime& rt = Runtime::of(ctx.engine());
    const Comm world = ctx.world();
    const int sid = rt.session_create();
    const int hp2p = rt.handle_alloc(sid, 0, world);
    const int hcoll = rt.handle_alloc(sid, 2, world);
    rt.handle_start(sid, hp2p);
    rt.handle_start(sid, hcoll);

    // A broadcast decomposes into coll-kind point-to-point messages.
    int v = 3;
    mpi::bcast(&v, 1, Type::Int, 0, world);

    rt.handle_stop(sid, hp2p);
    rt.handle_stop(sid, hcoll);
    unsigned long p2p[4], coll[4];
    rt.handle_read(sid, hp2p, p2p, 4);
    rt.handle_read(sid, hcoll, coll, 4);
    unsigned long p2p_total = 0, coll_total = 0;
    for (int i = 0; i < 4; ++i) {
      p2p_total += p2p[i];
      coll_total += coll[i];
    }
    EXPECT_EQ(p2p_total, 0u);
    if (ctx.world_rank() == 0) {
      EXPECT_GE(coll_total, 1u);
    }
    rt.session_free(sid);
  });
}

TEST(Runtime, HandleBoundToSubCommSeesCrossCommTraffic) {
  // The Section 4.1 even/odd example: a handle bound to the evens
  // communicator records world-communicator traffic between evens.
  Sim sim = make_sim(4);
  sim.run([&](Ctx& ctx) {
    Runtime& rt = Runtime::of(ctx.engine());
    const Comm world = ctx.world();
    const int r = mpi::comm_rank(world);
    const Comm evens = mpi::comm_split(world, r % 2 == 0 ? 0 : 1, r);

    const int sid = rt.session_create();
    int h = -1;
    if (r % 2 == 0) {
      h = rt.handle_alloc(sid, 0, evens);
      rt.handle_start(sid, h);
    }
    if (r == 0) {
      int v = 7;
      mpi::send(&v, 1, Type::Int, 2, 0, world);  // via WORLD, rank 0 -> 2
      int w = 7;
      mpi::send(&w, 1, Type::Int, 1, 0, world);  // 0 -> 1: 1 is odd
    } else if (r == 2 || r == 1) {
      int v = 0;
      mpi::recv(&v, 1, Type::Int, 0, 0, world);
    }
    if (r % 2 == 0) {
      rt.handle_stop(sid, h);
      unsigned long counts[2];
      rt.handle_read(sid, h, counts, 2);
      if (r == 0) {
        EXPECT_EQ(counts[1], 1u);  // the 0->2 message, indexed by evens rank
        EXPECT_EQ(counts[0], 0u);  // 0->1 invisible: 1 not in `evens`
      }
    }
    rt.session_free(sid);
  });
}

TEST(Runtime, MisuseThrowsMpitError) {
  Sim sim = make_sim(1);
  sim.run([&](Ctx& ctx) {
    Runtime& rt = Runtime::of(ctx.engine());
    EXPECT_THROW(rt.session_free(99), MpitError);
    const int sid = rt.session_create();
    EXPECT_THROW(rt.handle_start(sid, 0), MpitError);
    const int h = rt.handle_alloc(sid, 0, ctx.world());
    rt.handle_start(sid, h);
    EXPECT_THROW(rt.handle_start(sid, h), MpitError);  // double start
    rt.handle_stop(sid, h);
    EXPECT_THROW(rt.handle_stop(sid, h), MpitError);  // double stop
    unsigned long v[1];
    EXPECT_EQ(rt.handle_read(sid, h, v, 1), 1);
    EXPECT_THROW(rt.handle_read(sid, h, v, 0), MpitError);  // too small
    rt.handle_free(sid, h);
    EXPECT_THROW(rt.handle_read(sid, h, v, 1), MpitError);  // freed
    rt.session_free(sid);
    EXPECT_THROW(rt.session_free(sid), MpitError);  // double free
    EXPECT_THROW(rt.handle_alloc(sid, 0, ctx.world()), MpitError);
  });
}

TEST(Runtime, ToolTrafficIsInvisible) {
  Sim sim = make_sim(4);
  sim.run([&](Ctx& ctx) {
    Runtime& rt = Runtime::of(ctx.engine());
    const Comm world = ctx.world();
    const int sid = rt.session_create();
    const int h = rt.handle_alloc(sid, 2, world);  // coll count
    rt.handle_start(sid, h);
    // comm_split generates only tool traffic.
    mpi::comm_split(world, 0, mpi::comm_rank(world));
    rt.handle_stop(sid, h);
    unsigned long counts[4];
    rt.handle_read(sid, h, counts, 4);
    EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 0u);
    rt.session_free(sid);
  });
}

}  // namespace
}  // namespace mpim::mpit
