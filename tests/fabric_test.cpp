// Fabric-layer suite: strict MPIM_TOPO/EngineConfig::fabric spec parsing,
// structural route/hop-distance properties of all three fabric kinds,
// balanced-tree bit-identity of the fabric-backed cost model, per-link
// contention bounds, the per-link-class mismatch decomposition, and
// hierarchical TreeMatch over fabric hierarchies.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "introspect/analyzer.h"
#include "netmodel/cost_model.h"
#include "reorder/reorder.h"
#include "support/matrix.h"
#include "topo/fabric.h"
#include "topo/topology.h"
#include "treematch/affinity.h"
#include "treematch/treematch.h"

namespace mpim {
namespace {

using topo::DragonflyFabric;
using topo::Fabric;
using topo::FabricKind;
using topo::FabricSpec;
using topo::FatTreeFabric;
using topo::parse_fabric_spec;
using topo::Topology;
using topo::TreeFabric;

// --- spec parsing ------------------------------------------------------------

TEST(FabricSpecParse, AcceptsTheDocumentedGrammar) {
  auto tree = parse_fabric_spec("tree");
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->kind, FabricKind::tree);

  auto ft = parse_fabric_spec(" FatTree:4,2,2 ");
  ASSERT_TRUE(ft.has_value());
  EXPECT_EQ(ft->kind, FabricKind::fattree);
  EXPECT_EQ(ft->ft_k, 4);
  EXPECT_EQ(ft->ft_levels, 2);
  EXPECT_EQ(ft->ft_osub, 2);

  auto df = parse_fabric_spec("dragonfly:4,9,2");
  ASSERT_TRUE(df.has_value());
  EXPECT_EQ(df->kind, FabricKind::dragonfly);
  EXPECT_EQ(df->df_a, 4);
  EXPECT_EQ(df->df_g, 9);
  EXPECT_EQ(df->df_h, 2);
  EXPECT_FALSE(df->df_valiant);

  auto dv = parse_fabric_spec("dragonfly:4,9,2,valiant");
  ASSERT_TRUE(dv.has_value());
  EXPECT_TRUE(dv->df_valiant);
  auto dm = parse_fabric_spec("dragonfly:4,9,2,minimal");
  ASSERT_TRUE(dm.has_value());
  EXPECT_FALSE(dm->df_valiant);
}

TEST(FabricSpecParse, RejectsMalformedParameterLists) {
  const char* bad[] = {
      // unknown kinds and junk
      "", "torus", "mesh:2,2", "fat tree:2,2,1",
      // tree takes no parameters
      "tree:3", "tree:",
      // fattree arity and field errors
      "fattree", "fattree:", "fattree:4", "fattree:4,2", "fattree:4,2,1,9",
      "fattree:4,,1", "fattree:4,2,x", "fattree:4.0,2,1", "fattree:-4,2,1",
      "fattree: 4,2,1", "fattree:4,2,1 trailing",
      // fattree range errors
      "fattree:1,2,1", "fattree:65,2,1", "fattree:4,0,1", "fattree:4,5,1",
      "fattree:4,2,0", "fattree:64,4,1",
      // dragonfly arity and field errors
      "dragonfly", "dragonfly:", "dragonfly:4,9", "dragonfly:4,9,2,fast",
      "dragonfly:4,9,2,valiant,extra", "dragonfly:4,nine,2",
      "dragonfly:4,9,2.5", "dragonfly:+4,9,2",
      // dragonfly range / reachability errors
      "dragonfly:0,9,2", "dragonfly:65,9,2", "dragonfly:4,0,2",
      "dragonfly:4,257,2", "dragonfly:4,9,0", "dragonfly:4,9,33",
      "dragonfly:1,4,1",  // g-1 = 3 > a*h = 1: groups unreachable
  };
  for (const char* s : bad)
    EXPECT_FALSE(parse_fabric_spec(s).has_value()) << "accepted \"" << s
                                                   << "\"";
}

// --- structural properties of every fabric kind ------------------------------

std::vector<std::shared_ptr<const Fabric>> small_fabrics() {
  return {
      std::make_shared<TreeFabric>(Topology::cluster(3, 2, 3)),
      std::make_shared<FatTreeFabric>(2, 2, 1, /*sockets=*/2, /*cores=*/2),
      std::make_shared<FatTreeFabric>(4, 2, 2, /*sockets=*/1, /*cores=*/1),
      std::make_shared<DragonflyFabric>(2, 3, 2, /*valiant=*/false,
                                        /*sockets=*/1, /*cores=*/2),
      std::make_shared<DragonflyFabric>(3, 4, 2, /*valiant=*/true,
                                        /*sockets=*/1, /*cores=*/1),
  };
}

TEST(FabricProperties, HopDistanceIsSymmetricZeroIffSameLeaf) {
  for (const auto& fab : small_fabrics()) {
    SCOPED_TRACE(fab->describe());
    const int n = fab->num_leaves();
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        const int d = fab->hop_distance(a, b);
        EXPECT_EQ(d, fab->hop_distance(b, a)) << a << "," << b;
        EXPECT_EQ(d == 0, a == b) << a << "," << b;
        EXPECT_GE(d, 0);
      }
    }
  }
}

TEST(FabricProperties, HopDistanceSatisfiesTheTriangleInequality) {
  for (const auto& fab : small_fabrics()) {
    SCOPED_TRACE(fab->describe());
    const int n = fab->num_leaves();
    for (int a = 0; a < n; ++a)
      for (int b = 0; b < n; ++b)
        for (int c = 0; c < n; ++c)
          EXPECT_LE(fab->hop_distance(a, c),
                    fab->hop_distance(a, b) + fab->hop_distance(b, c))
              << a << "," << b << "," << c;
  }
}

TEST(FabricProperties, RoutesCoverEveryPairAndStayWellFormed) {
  for (const auto& fab : small_fabrics()) {
    SCOPED_TRACE(fab->describe());
    const int n = fab->num_leaves();
    Fabric::Route r;
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        fab->route(a, b, &r);
        if (fab->same_node(a, b)) {
          EXPECT_EQ(r.n, 0) << a << "," << b;
          continue;
        }
        ASSERT_GE(r.n, 2) << a << "," << b;
        ASSERT_LE(r.n, Fabric::kMaxRouteLinks);
        // Starts at the source NIC injection port, ends at the destination
        // NIC delivery port, and every hop names a real network link.
        EXPECT_EQ(r.links[0], fab->node_of(a));
        EXPECT_EQ(r.links[r.n - 1], fab->num_nodes() + fab->node_of(b));
        std::set<int> seen;
        for (int h = 0; h < r.n; ++h) {
          ASSERT_GE(r.links[h], 0);
          ASSERT_LT(r.links[h], fab->num_links());
          const int cls = fab->link_class(r.links[h]);
          EXPECT_GE(cls, 0);
          EXPECT_LT(cls, fab->num_network_classes());
          EXPECT_TRUE(seen.insert(r.links[h]).second)
              << "route revisits link " << r.links[h];
        }
      }
    }
  }
}

TEST(FabricProperties, PairClassCoversIntraNodeAndTreePairs) {
  for (const auto& fab : small_fabrics()) {
    SCOPED_TRACE(fab->describe());
    const int n = fab->num_leaves();
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        const int cls = fab->pair_class(a, b);
        if (fab->same_node(a, b)) {
          EXPECT_GE(cls, fab->num_network_classes());
          EXPECT_LT(cls, fab->num_link_classes());
        } else if (fab->single_class_paths()) {
          EXPECT_EQ(cls, fab->locality(a, b));  // historical depth index
        } else {
          EXPECT_EQ(cls, -1);  // routed pair: cost via route()
        }
      }
    }
  }
}

TEST(FabricProperties, TreeFabricHopDistanceMatchesTopology) {
  const Topology t = Topology::cluster(3, 2, 3);
  const TreeFabric fab(t);
  for (int a = 0; a < t.num_leaves(); ++a)
    for (int b = 0; b < t.num_leaves(); ++b)
      EXPECT_EQ(fab.hop_distance(a, b), t.hop_distance(a, b));
}

// --- cost model: balanced-tree bit-identity ----------------------------------

TEST(FabricCostModel, TreeCostsAreBitIdenticalToDepthIndexedLookup) {
  const Topology t = Topology::cluster(3, 2, 3);
  const std::vector<net::LinkParams> params = {
      {1.5e-6, 6.0e9}, {0.7e-6, 8.0e9}, {0.3e-6, 11.0e9}, {0.05e-6, 20.0e9}};
  const net::CostModel cost(t, params);
  for (int a = 0; a < t.num_leaves(); ++a) {
    for (int b = 0; b < t.num_leaves(); ++b) {
      const auto& p =
          params[static_cast<std::size_t>(t.common_ancestor_depth(a, b))];
      for (const std::size_t bytes : {std::size_t{0}, std::size_t{1},
                                      std::size_t{4096}, std::size_t{1 << 20}}) {
        const double want =
            p.alpha_s + static_cast<double>(bytes) / p.beta_bytes_s;
        EXPECT_EQ(cost.transfer_time(a, b, bytes), want);  // bit identical
      }
      EXPECT_EQ(cost.latency(a, b), p.alpha_s);
    }
  }
}

TEST(FabricCostModel, TreePatternAndNicCostsMatchManualFormulas) {
  const Topology t = Topology::cluster(2, 2, 2);
  const net::CostModel cost = net::CostModel::plafrim_like(2, 2, 2);
  const std::size_t n = 8;
  CommMatrix bytes = CommMatrix::square(n);
  for (std::size_t i = 0; i < n; ++i)
    bytes(i, (i + 3) % n) = 1000 * (i + 1);
  topo::Placement place(n);
  for (std::size_t i = 0; i < n; ++i) place[i] = static_cast<int>(i);

  double want_pattern = 0.0;
  std::vector<double> tx(2, 0.0), rx(2, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (bytes(i, j) == 0) continue;
      want_pattern += cost.transfer_time(place[i], place[j], bytes(i, j));
      if (t.node_of(place[i]) != t.node_of(place[j])) {
        tx[static_cast<std::size_t>(t.node_of(place[i]))] +=
            static_cast<double>(bytes(i, j));
        rx[static_cast<std::size_t>(t.node_of(place[j]))] +=
            static_cast<double>(bytes(i, j));
      }
    }
  }
  double worst_bytes = 0.0;
  for (double v : tx) worst_bytes = std::max(worst_bytes, v);
  for (double v : rx) worst_bytes = std::max(worst_bytes, v);
  EXPECT_EQ(cost.pattern_cost(bytes, place), want_pattern);
  EXPECT_EQ(cost.nic_load_cost(bytes, place),
            worst_bytes / cost.params_at_depth(0).beta_bytes_s);
}

TEST(FabricCostModel, RoutePlanConservesLatencyAndDrainsFully) {
  for (const auto& fab : small_fabrics()) {
    SCOPED_TRACE(fab->describe());
    const net::CostModel cost = net::CostModel::for_fabric(fab);
    const int n = fab->num_leaves();
    net::RoutePlan plan;
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (fab->same_node(a, b)) continue;
        const double alpha = cost.latency(a, b);
        cost.route_plan(a, b, alpha, &plan);
        ASSERT_GE(plan.n, 2);
        EXPECT_EQ(plan.gap_alpha_s[0], 0.0);
        double gaps = 0.0;
        bool full_rate_somewhere = false;
        for (int i = 0; i < plan.n; ++i) {
          gaps += plan.gap_alpha_s[i];
          EXPECT_GT(plan.drain_frac[i], 0.0);
          EXPECT_LE(plan.drain_frac[i], 1.0);
          if (plan.drain_frac[i] == 1.0) full_rate_somewhere = true;
          if (fab->kind() == FabricKind::tree)
            EXPECT_EQ(plan.drain_frac[i], 1.0);  // bit-identity with seed
        }
        // The slowest link on the path drains at the full serialization
        // rate and the per-hop gaps add up to the whole path latency, so
        // an uncontended transfer still arrives at start + alpha + tx.
        EXPECT_TRUE(full_rate_somewhere);
        EXPECT_DOUBLE_EQ(gaps, alpha);
      }
    }
  }
}

TEST(FabricCostModel, FlowTimeCostSeesSharingThatPerPortBoundsMiss) {
  // 4-ary 2-level fat-tree at 4:1 oversubscription: one trunk link per
  // direction per switch, so the four nodes of leaf switch 0 all sending
  // cross-pod squeeze through a single up-trunk (4 x 6 GB/s of injection
  // into 12.5 GB/s of trunk); flow time must grow well past the single-
  // flow time, while same-switch traffic never leaves the leaf switches.
  auto fab = std::make_shared<FatTreeFabric>(4, 2, 4, /*sockets=*/1,
                                             /*cores=*/1);
  const net::CostModel cost = net::CostModel::for_fabric(fab);
  const std::size_t n = static_cast<std::size_t>(fab->num_leaves());
  topo::Placement place(n);
  for (std::size_t i = 0; i < n; ++i) place[i] = static_cast<int>(i);
  const unsigned long b = 1u << 20;

  CommMatrix one = CommMatrix::square(n);
  one(0, 4) = b;
  CommMatrix shared = CommMatrix::square(n);
  for (std::size_t i = 0; i < 4; ++i) shared(i, i + 4) = b;
  CommMatrix local = CommMatrix::square(n);
  local(0, 1) = b;
  local(2, 3) = b;

  const double t_one = cost.flow_time_cost(one, place);
  const double t_shared = cost.flow_time_cost(shared, place);
  const double t_local = cost.flow_time_cost(local, place);
  EXPECT_GT(t_one, 0.0);
  EXPECT_GT(t_shared, 1.5 * t_one);  // trunk shared max-min fair
  EXPECT_LE(t_local, 1.000001 * t_one);  // disjoint same-switch pairs
}

// --- introspection: per-link-class mismatch ----------------------------------

TEST(FabricMismatch, ClassBreakdownSumsToFabricByteHops) {
  for (const auto& fab : small_fabrics()) {
    SCOPED_TRACE(fab->describe());
    const std::size_t n = static_cast<std::size_t>(fab->num_leaves());
    CommMatrix bytes = CommMatrix::square(n);
    for (std::size_t i = 0; i < n; ++i) {
      bytes(i, (i + 1) % n) = 100 + i;
      bytes(i, (i + n / 2) % n) += 13 * (i + 1);
    }
    topo::Placement place(n);
    for (std::size_t i = 0; i < n; ++i) place[i] = static_cast<int>(i);

    const std::vector<double> per_class =
        introspect::mismatch_by_link_class(bytes, *fab, place);
    ASSERT_EQ(per_class.size(),
              static_cast<std::size_t>(fab->num_link_classes()));
    double sum = 0.0;
    for (double v : per_class) sum += v;
    EXPECT_DOUBLE_EQ(sum,
                     introspect::mismatch_byte_hops(bytes, *fab, place));
    if (fab->kind() == FabricKind::tree)
      EXPECT_EQ(introspect::mismatch_byte_hops(bytes, *fab, place),
                introspect::mismatch_byte_hops(bytes, fab->hierarchy(),
                                               place));
  }
}

TEST(FabricMismatch, ClassColumnsSurviveTheFramesCsvRoundTrip) {
  auto fab = std::make_shared<DragonflyFabric>(2, 3, 2, false, 1, 2);
  const std::size_t n = static_cast<std::size_t>(fab->num_leaves());
  std::vector<introspect::FrameMatrix> frames(2);
  for (std::size_t w = 0; w < frames.size(); ++w) {
    frames[w].window = static_cast<long>(w);
    frames[w].t0_s = 0.1 * static_cast<double>(w);
    frames[w].t1_s = 0.1 * static_cast<double>(w + 1);
    frames[w].counts = CommMatrix::square(n);
    frames[w].bytes = CommMatrix::square(n);
    frames[w].counts(0, n - 1) = 1 + w;
    frames[w].bytes(0, n - 1) = 4096 * (w + 1);
  }
  topo::Placement place(n);
  for (std::size_t i = 0; i < n; ++i) place[i] = static_cast<int>(i);
  introspect::annotate_link_class_hops(frames, *fab, place);

  const std::string path = ::testing::TempDir() + "fabric_frames.csv";
  introspect::write_frames_csv_file(path, frames);
  const auto back = introspect::read_frames_csv(path);
  ASSERT_EQ(back.size(), frames.size());
  for (std::size_t w = 0; w < frames.size(); ++w) {
    EXPECT_EQ(back[w].bytes, frames[w].bytes);
    ASSERT_EQ(back[w].class_hops.size(), frames[w].class_hops.size());
    for (std::size_t c = 0; c < frames[w].class_hops.size(); ++c)
      EXPECT_DOUBLE_EQ(back[w].class_hops[c], frames[w].class_hops[c]);
  }
  // The offline analyzer (no fabric in hand) passes the columns through.
  const auto metrics = introspect::analyze_windows(back);
  ASSERT_EQ(metrics.size(), frames.size());
  EXPECT_EQ(metrics[0].class_hops, frames[0].class_hops);
}

TEST(FabricMismatch, FabricAnalyzeWindowsFillsClassHops) {
  auto fab = std::make_shared<FatTreeFabric>(2, 2, 1, 1, 2);
  const std::size_t n = static_cast<std::size_t>(fab->num_leaves());
  std::vector<introspect::FrameMatrix> frames(1);
  frames[0].counts = CommMatrix::square(n);
  frames[0].bytes = CommMatrix::square(n);
  frames[0].bytes(0, n - 1) = 1 << 16;
  topo::Placement place(n);
  for (std::size_t i = 0; i < n; ++i) place[i] = static_cast<int>(i);
  const auto metrics = introspect::analyze_windows(frames, *fab, place);
  ASSERT_EQ(metrics.size(), 1u);
  ASSERT_EQ(metrics[0].class_hops.size(),
            static_cast<std::size_t>(fab->num_link_classes()));
  double sum = 0.0;
  for (double v : metrics[0].class_hops) sum += v;
  EXPECT_DOUBLE_EQ(metrics[0].mismatch_hops, sum);
  EXPECT_GT(sum, 0.0);
}

// --- hierarchical TreeMatch over fabric hierarchies --------------------------

TEST(FabricTreeMatch, KeepsHeavyPairsUnderShallowRoutes) {
  // 16 single-PU nodes under a 4-ary 2-level fat-tree; the affinity graph
  // pairs (0,1), (2,3), ... heavily. TreeMatch over the fabric hierarchy
  // must co-locate every heavy pair under one leaf switch (hop distance
  // 4 = nic-up, switch, nic-down + approach legs, never via the core).
  auto fab = std::make_shared<FatTreeFabric>(4, 2, 1, 1, 1);
  const int n = fab->num_leaves();
  ASSERT_EQ(n, 16);
  tm::AffinityGraph g(static_cast<std::size_t>(n));
  for (int i = 0; i + 1 < n; i += 2) g.add_edge(i, i + 1, 1e6);
  // Light noise that would mislead a locality-blind packing.
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 5) % n, 1.0);
  g.finalize();
  const std::vector<int> leaves = tm::treematch_leaves(g, *fab);
  for (int i = 0; i + 1 < n; i += 2) {
    const int la = leaves[static_cast<std::size_t>(i)];
    const int lb = leaves[static_cast<std::size_t>(i + 1)];
    EXPECT_EQ(fab->hierarchy().common_ancestor_depth(la, lb) >= 1, true)
        << "heavy pair (" << i << "," << i + 1 << ") split across pods";
  }
}

TEST(FabricTreeMatch, SparseMappingCostTracksDenseOnSymmetricPatterns) {
  auto fab = std::make_shared<DragonflyFabric>(2, 3, 2, false, 1, 2);
  const net::CostModel cost = net::CostModel::for_fabric(fab);
  const std::size_t n = static_cast<std::size_t>(fab->num_leaves());
  CommMatrix bytes = CommMatrix::square(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 7) % n;
    if (i == j) continue;
    bytes(i, j) += 500 * (i + 1);
    bytes(j, i) += 500 * (i + 1);  // symmetric
  }
  std::vector<int> place(n);
  for (std::size_t i = 0; i < n; ++i) place[i] = static_cast<int>(i);
  const double dense = tm::mapping_cost(bytes, place, cost);
  const double sparse =
      tm::mapping_cost(tm::AffinityGraph::from_dense(bytes), place, cost);
  EXPECT_NEAR(sparse, dense, 1e-9 * dense);
}

TEST(FabricTreeMatch, ReorderingOnRoutedFabricReturnsAValidPermutation) {
  auto fab = std::make_shared<DragonflyFabric>(2, 3, 2, false, 1, 2);
  const net::CostModel cost = net::CostModel::for_fabric(fab);
  const std::size_t n = static_cast<std::size_t>(fab->num_leaves());
  CommMatrix bytes = CommMatrix::square(n);
  for (std::size_t i = 0; i < n; ++i)
    bytes(i, (i + n / 2) % n) = 1u << 18;  // adversarial cross-group
  topo::Placement place(n);
  for (std::size_t i = 0; i < n; ++i) place[i] = static_cast<int>(i);
  const std::vector<int> k =
      reorder::compute_reordering(bytes, fab->hierarchy(), place, &cost);
  ASSERT_EQ(k.size(), n);
  std::vector<bool> hit(n, false);
  for (int v : k) {
    ASSERT_GE(v, 0);
    ASSERT_LT(static_cast<std::size_t>(v), n);
    EXPECT_FALSE(hit[static_cast<std::size_t>(v)]);
    hit[static_cast<std::size_t>(v)] = true;
  }
}

}  // namespace
}  // namespace mpim
