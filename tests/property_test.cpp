// Property-based suites: invariants checked over parameterized sweeps and
// randomized (but seeded, deterministic) inputs.
#include <gtest/gtest.h>

#include <map>

#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "reorder/reorder.h"
#include "support/rng.h"
#include "treematch/treematch.h"

namespace mpim {
namespace {

using mpi::Comm;
using mpi::Ctx;
using mpi::Type;

Sim make_sim(int nranks, bool contention = false) {
  auto cost = net::CostModel::plafrim_like(
      std::max(1, (nranks + 23) / 24));
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(nranks, cost.topology())};
  cfg.watchdog_wall_timeout_s = 10.0;
  cfg.nic_contention = contention;
  return Sim(std::move(cfg));
}

// ---------------------------------------------------------------------------
// Conservation: whatever random traffic a program generates, the monitored
// totals equal the bytes actually handed to the transport.

class ConservationP : public ::testing::TestWithParam<int> {};

TEST_P(ConservationP, MonitoredBytesEqualSentBytes) {
  const int nranks = GetParam();
  Sim sim = make_sim(nranks);
  std::vector<unsigned long> sent_per_rank(
      static_cast<std::size_t>(nranks), 0);
  CommMatrix monitored;
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = mpi::comm_rank(world);
    mon::Environment env;
    mon::Session session(world);

    Rng rng(static_cast<unsigned long>(100 + r));
    unsigned long my_sent = 0;
    // Random point-to-point plan, exchanged via a fixed schedule: each
    // rank sends to each later rank a random number of random messages.
    for (int dst = 0; dst < nranks; ++dst) {
      if (dst == r) continue;
      const int n_msgs = static_cast<int>(rng.uniform_u64(0, 3));
      for (int m = 0; m < n_msgs; ++m) {
        const auto bytes = rng.uniform_u64(0, 5000);
        mpi::send(nullptr, bytes, Type::Byte, dst, 77, world);
        my_sent += bytes;
      }
      // Tell the receiver how many messages to expect.
      const long hdr = n_msgs;
      mpi::send(&hdr, 1, Type::Long, dst, 78, world);
    }
    for (int src = 0; src < nranks; ++src) {
      if (src == r) continue;
      long n_msgs = 0;
      mpi::recv(&n_msgs, 1, Type::Long, src, 78, world);
      for (long m = 0; m < n_msgs; ++m)
        mpi::recv(nullptr, 1 << 14, Type::Byte, src, 77, world);
    }

    session.suspend();
    const CommMatrix sizes = session.gather_sizes(MPI_M_P2P_ONLY);
    if (r == 0) monitored = sizes;
    sent_per_rank[static_cast<std::size_t>(r)] =
        my_sent + static_cast<unsigned long>(nranks - 1) * 8;  // headers
  });
  for (int r = 0; r < nranks; ++r) {
    unsigned long row = 0;
    for (int j = 0; j < nranks; ++j)
      row += monitored(static_cast<std::size_t>(r),
                       static_cast<std::size_t>(j));
    EXPECT_EQ(row, sent_per_rank[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConservationP,
                         ::testing::Values(2, 3, 5, 8, 16));

// ---------------------------------------------------------------------------
// Consistency: allgather_data row i must equal rank i's local get_data.

class GatherConsistencyP : public ::testing::TestWithParam<int> {};

TEST_P(GatherConsistencyP, MatrixRowsMatchLocalRows) {
  const int nranks = GetParam();
  Sim sim = make_sim(nranks);
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = mpi::comm_rank(world);
    mon::Environment env;
    mon::Session s(world);
    // Deterministic mixed traffic: a collective plus a p2p ring.
    std::vector<int> buf(100 + 10 * r);
    mpi::allgather(nullptr, 64, Type::Int, nullptr, world);
    mpi::send(buf.data(), buf.size(), Type::Int, (r + 1) % nranks, 0, world);
    mpi::recv(nullptr, 1 << 13, Type::Int, (r + nranks - 1) % nranks, 0,
              world);
    s.suspend();

    const auto local = s.local_sizes(MPI_M_ALL_COMM);
    const CommMatrix matrix = s.gather_sizes(MPI_M_ALL_COMM);
    for (int j = 0; j < nranks; ++j)
      EXPECT_EQ(matrix(static_cast<std::size_t>(r),
                       static_cast<std::size_t>(j)),
                local[static_cast<std::size_t>(j)])
          << "rank " << r << " peer " << j;
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, GatherConsistencyP,
                         ::testing::Values(2, 4, 7, 12));

// ---------------------------------------------------------------------------
// NIC accounting: the hardware counters see exactly the inter-node part of
// the monitored traffic (when no tool traffic runs while measuring).

TEST(NicConsistency, CountersMatchMonitoredInterNodeBytes) {
  const int nranks = 8;
  auto cost = net::CostModel::plafrim_like(2, 1, 4);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(nranks, cost.topology())};
  Sim sim(std::move(cfg));
  // Rows collected per rank through shared memory (local get_data only):
  // no gather traffic, so the NIC totals contain app traffic exclusively.
  CommMatrix sizes = CommMatrix::square(static_cast<std::size_t>(nranks));
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = mpi::comm_rank(world);
    mon::Environment env;
    mon::Session s(world);
    // All-pairs deterministic burst.
    for (int dst = 0; dst < nranks; ++dst)
      if (dst != r)
        mpi::send(nullptr, 1000 + 10 * r + dst, Type::Byte, dst, 0, world);
    for (int src = 0; src < nranks; ++src)
      if (src != r) mpi::recv(nullptr, 1 << 12, Type::Byte, src, 0, world);
    s.suspend();
    const auto row = s.local_sizes(MPI_M_P2P_ONLY);
    for (int j = 0; j < nranks; ++j)
      sizes(static_cast<std::size_t>(r), static_cast<std::size_t>(j)) =
          row[static_cast<std::size_t>(j)];
  });
  const std::uint64_t nic0 = sim.engine().nic().total_bytes(0);
  const std::uint64_t nic1 = sim.engine().nic().total_bytes(1);
  const auto& topo = sim.engine().topology();
  std::uint64_t expect_node0 = 0, expect_node1 = 0;
  for (int i = 0; i < nranks; ++i) {
    for (int j = 0; j < nranks; ++j) {
      if (topo.node_of(i) == topo.node_of(j)) continue;
      const auto v = sizes(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(j));
      (topo.node_of(i) == 0 ? expect_node0 : expect_node1) += v;
    }
  }
  EXPECT_EQ(nic0, expect_node0);
  EXPECT_EQ(nic1, expect_node1);
}

// ---------------------------------------------------------------------------
// Contention sanity: enabling the NIC model never makes anything faster.

class ContentionMonotoneP
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ContentionMonotoneP, ContendedNeverFasterThanFreeFlow) {
  const auto [nranks, kilobytes] = GetParam();
  auto workload = [count = static_cast<std::size_t>(kilobytes) * 1000](
                      Ctx& ctx) {
    const Comm world = ctx.world();
    mpi::allgather(nullptr, count, Type::Byte, nullptr, world);
    mpi::reduce(nullptr, nullptr, count, Type::Byte, mpi::Op::Max, 0, world);
  };
  double t_free = 0, t_contended = 0;
  {
    Sim sim = make_sim(nranks, false);
    sim.run(workload);
    t_free = sim.engine().max_virtual_time();
  }
  {
    Sim sim = make_sim(nranks, true);
    sim.run(workload);
    t_contended = sim.engine().max_virtual_time();
  }
  EXPECT_GE(t_contended, t_free * (1.0 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Grid, ContentionMonotoneP,
                         ::testing::Combine(::testing::Values(4, 16, 48),
                                            ::testing::Values(1, 100)));

// ---------------------------------------------------------------------------
// Reordering: with the decision guard, the modeled cost never regresses,
// over randomized matrices.

class ReorderNeverWorseP : public ::testing::TestWithParam<unsigned long> {};

TEST_P(ReorderNeverWorseP, DecisionGuardHolds) {
  const unsigned long seed = GetParam();
  const auto cost = net::CostModel::plafrim_like(2, 1, 4);
  const int n = 8;
  Rng rng(seed);
  CommMatrix m = CommMatrix::square(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j && rng.uniform() < 0.4)
        m(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            rng.uniform_u64(1, 1 << 22);
  const auto placement = topo::random_placement(n, cost.topology(), seed);
  const auto k =
      reorder::compute_reordering(m, cost.topology(), placement, &cost);
  const double before = reorder::reordered_cost(
      m, reorder::identity_k(static_cast<std::size_t>(n)), cost, placement);
  const double after = reorder::reordered_cost(m, k, cost, placement);
  // The decision metric also includes the NIC load bound; the static part
  // alone may not improve, but must never blow up.
  EXPECT_LE(after, before * 1.10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderNeverWorseP,
                         ::testing::Range(1ul, 13ul));

// ---------------------------------------------------------------------------
// Model-based fuzz of the MPI_M session state machine: a random operation
// sequence is replayed against a reference model; every return code must
// match the model's prediction.

TEST(SessionStateMachine, RandomOpSequencesMatchModel) {
  enum class St { active, suspended, freed };
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);

    Rng rng(2024);
    std::map<int, St> model;  // msid -> state
    std::vector<int> live_ids;

    for (int step = 0; step < 3000; ++step) {
      const int action = static_cast<int>(rng.uniform_u64(0, 5));
      // Pick a target: valid session, or an invalid id 20% of the time.
      int msid = -99;
      const bool use_invalid = rng.uniform() < 0.2 || model.empty();
      if (!use_invalid) {
        auto it = model.begin();
        std::advance(it, static_cast<long>(
                             rng.uniform_u64(0, model.size() - 1)));
        msid = it->first;
      } else {
        msid = 10000 + static_cast<int>(rng.uniform_u64(0, 50));
      }
      const auto state_of = [&](int id) -> St* {
        auto it = model.find(id);
        return it == model.end() ? nullptr : &it->second;
      };

      switch (action) {
        case 0: {  // start
          if (model.size() >= 32) break;  // keep it bounded
          int id = -1;
          ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
          ASSERT_EQ(model.count(id), 0u) << "reused a live msid";
          model[id] = St::active;
          break;
        }
        case 1: {  // suspend
          const int rc = MPI_M_suspend(msid);
          St* st = state_of(msid);
          if (st == nullptr || *st == St::freed) {
            EXPECT_EQ(rc, MPI_M_INVALID_MSID);
          } else if (*st == St::suspended) {
            EXPECT_EQ(rc, MPI_M_MULTIPLE_CALL);
          } else {
            EXPECT_EQ(rc, MPI_M_SUCCESS);
            *st = St::suspended;
          }
          break;
        }
        case 2: {  // continue
          const int rc = MPI_M_continue(msid);
          St* st = state_of(msid);
          if (st == nullptr || *st == St::freed) {
            EXPECT_EQ(rc, MPI_M_INVALID_MSID);
          } else if (*st == St::active) {
            EXPECT_EQ(rc, MPI_M_MULTIPLE_CALL);
          } else {
            EXPECT_EQ(rc, MPI_M_SUCCESS);
            *st = St::active;
          }
          break;
        }
        case 3: {  // reset
          const int rc = MPI_M_reset(msid);
          St* st = state_of(msid);
          if (st == nullptr || *st == St::freed) {
            EXPECT_EQ(rc, MPI_M_INVALID_MSID);
          } else if (*st == St::active) {
            EXPECT_EQ(rc, MPI_M_SESSION_NOT_SUSPENDED);
          } else {
            EXPECT_EQ(rc, MPI_M_SUCCESS);
          }
          break;
        }
        case 4: {  // free
          const int rc = MPI_M_free(msid);
          St* st = state_of(msid);
          if (st == nullptr || *st == St::freed) {
            EXPECT_EQ(rc, MPI_M_INVALID_MSID);
          } else if (*st == St::active) {
            EXPECT_EQ(rc, MPI_M_SESSION_NOT_SUSPENDED);
          } else {
            EXPECT_EQ(rc, MPI_M_SUCCESS);
            model.erase(msid);
          }
          break;
        }
        case 5: {  // get_data
          unsigned long v[1];
          const int rc2 =
              MPI_M_get_data(msid, v, MPI_M_DATA_IGNORE, MPI_M_ALL_COMM);
          St* st = state_of(msid);
          if (st == nullptr || *st == St::freed) {
            EXPECT_EQ(rc2, MPI_M_INVALID_MSID);
          } else if (*st == St::active) {
            EXPECT_EQ(rc2, MPI_M_SESSION_NOT_SUSPENDED);
          } else {
            EXPECT_EQ(rc2, MPI_M_SUCCESS);
          }
          break;
        }
        default: break;
      }
    }
    // Drain: everything suspended then freed, environment closes clean.
    EXPECT_EQ(MPI_M_suspend(MPI_M_ALL_MSID), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_free(MPI_M_ALL_MSID), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
}

}  // namespace
}  // namespace mpim
