#include <gtest/gtest.h>

#include "netmodel/cost_model.h"
#include "netmodel/nic_counters.h"
#include "support/error.h"

namespace mpim::net {
namespace {

CostModel tiny_model() {
  // Two nodes of one socket x two cores, easy-to-check numbers.
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  std::vector<LinkParams> params = {
      {1e-5, 1e8},   // inter-node
      {1e-6, 1e9},   // inter-socket (unused with 1 socket)
      {1e-7, 1e10},  // intra-socket
      {0.0, 1e12},   // same PU
  };
  return CostModel(std::move(t), std::move(params), /*send_overhead=*/1e-7);
}

TEST(CostModel, TransferTimeFollowsLinkClass) {
  const auto m = tiny_model();
  // leaves 0,1 on node 0; 2,3 on node 1.
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 1, 1000), 1e-7 + 1000 / 1e10);
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 2, 1000), 1e-5 + 1000 / 1e8);
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 0, 1000), 0.0 + 1000 / 1e12);
}

TEST(CostModel, IntraNodeStrictlyCheaper) {
  const auto m = CostModel::plafrim_like(2);
  for (std::size_t bytes : {0ul, 100ul, 100000ul, 10000000ul}) {
    EXPECT_LT(m.transfer_time(0, 1, bytes), m.transfer_time(0, 24, bytes))
        << "bytes=" << bytes;
    EXPECT_LT(m.transfer_time(0, 13, bytes), m.transfer_time(0, 24, bytes))
        << "bytes=" << bytes;
  }
}

TEST(CostModel, CrossesNetworkOnlyBetweenNodes) {
  const auto m = tiny_model();
  EXPECT_FALSE(m.crosses_network(0, 1));
  EXPECT_TRUE(m.crosses_network(1, 2));
  EXPECT_FALSE(m.crosses_network(2, 3));
}

TEST(CostModel, WrongParameterCountThrows) {
  topo::Topology t({2}, {"node"});
  EXPECT_THROW(CostModel(t, {{1e-6, 1e9}}), Error);  // needs depth+1 = 2
}

TEST(CostModel, PatternCostPrefersLocalPlacement) {
  const auto m = tiny_model();
  CommMatrix pattern = CommMatrix::square(2);
  pattern(0, 1) = 1000000;
  pattern(1, 0) = 1000000;
  const double local = m.pattern_cost(pattern, {0, 1});
  const double remote = m.pattern_cost(pattern, {0, 2});
  EXPECT_LT(local, remote);
}

TEST(CostModel, PatternCostIgnoresDiagonalAndZeros) {
  const auto m = tiny_model();
  CommMatrix pattern = CommMatrix::square(2);
  pattern(0, 0) = 12345;  // self traffic ignored
  EXPECT_DOUBLE_EQ(m.pattern_cost(pattern, {0, 2}), 0.0);
}

TEST(NicCounters, RecordsAndBins) {
  NicCounters nic(2);
  nic.record_tx(0, 0.5, 100);
  nic.record_tx(0, 1.5, 200);
  nic.record_tx(1, 0.1, 999);
  EXPECT_EQ(nic.bytes_until(0, 1.0), 100u);
  EXPECT_EQ(nic.bytes_until(0, 2.0), 300u);
  EXPECT_EQ(nic.total_bytes(0), 300u);
  EXPECT_EQ(nic.total_bytes(1), 999u);
}

TEST(NicCounters, LogSortedByVirtualTime) {
  NicCounters nic(1);
  nic.record_tx(0, 2.0, 1);
  nic.record_tx(0, 1.0, 2);
  const auto log = nic.log(0);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0].time_s, 1.0);
  EXPECT_DOUBLE_EQ(log[1].time_s, 2.0);
}

TEST(NicCounters, ResetClears) {
  NicCounters nic(1);
  nic.record_tx(0, 0.0, 7);
  nic.reset();
  EXPECT_EQ(nic.total_bytes(0), 0u);
  EXPECT_TRUE(nic.log(0).empty());
}

}  // namespace
}  // namespace mpim::net
