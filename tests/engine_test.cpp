#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "minimpi/api.h"
#include "minimpi/engine.h"

namespace mpim::mpi {
namespace {

EngineConfig tiny_cfg(int nranks, int nodes = 2, int cores = 4) {
  topo::Topology t({nodes, 1, cores}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8},   // inter-node
      {1e-6, 1e9},   // inter-socket
      {1e-7, 1e10},  // intra-socket
      {0.0, 1e12},   // same PU
  };
  net::CostModel cost(t, params, /*send_overhead=*/1e-7);
  EngineConfig cfg{.cost_model = cost,
                   .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 2.0;
  return cfg;
}

TEST(Engine, PointToPointDeliversPayloadAndStatus) {
  Engine eng(tiny_cfg(2));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      std::vector<int> data{1, 2, 3, 4};
      send(data.data(), data.size(), Type::Int, 1, 7, world);
    } else {
      std::vector<int> buf(4, 0);
      const Status st = recv(buf.data(), 4, Type::Int, 0, 7, world);
      EXPECT_EQ(buf, (std::vector<int>{1, 2, 3, 4}));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 16u);
      EXPECT_EQ(st.count(Type::Int), 4u);
    }
  });
}

TEST(Engine, VirtualTimeMatchesCostModel) {
  auto cfg = tiny_cfg(2, /*nodes=*/1, /*cores=*/4);
  Engine eng(cfg);
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      std::vector<std::byte> b(1000);
      send(b.data(), b.size(), Type::Byte, 1, 0, world);
      // Sender pays the serialization time plus the send overhead.
      EXPECT_DOUBLE_EQ(ctx.now(), 1000 / 1e10 + 1e-7);
    } else {
      std::vector<std::byte> b(1000);
      recv(b.data(), b.size(), Type::Byte, 0, 0, world);
      // Receiver completes at serialization + alpha (+ recv overhead).
      const double expected = 1000 / 1e10 + 1e-7 + 2e-7;
      EXPECT_NEAR(ctx.now(), expected, 1e-12);
    }
  });
}

TEST(Engine, FinalClocksDeterministicAcrossRuns) {
  Engine eng(tiny_cfg(6));
  auto workload = [](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    std::vector<double> buf(100);
    // Ring exchanges with some computation.
    for (int it = 0; it < 5; ++it) {
      compute(1e-6 * (r + 1));
      send(buf.data(), buf.size(), Type::Double, (r + 1) % n, it, world);
      recv(buf.data(), buf.size(), Type::Double, (r + n - 1) % n, it, world);
    }
  };
  eng.run(workload);
  const auto first = eng.final_clocks();
  eng.run(workload);
  EXPECT_EQ(first, eng.final_clocks());
}

TEST(Engine, NonOvertakingPerSourceAndTag) {
  Engine eng(tiny_cfg(2));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      for (int i = 0; i < 10; ++i)
        send(&i, 1, Type::Int, 1, 5, world);
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        recv(&v, 1, Type::Int, 0, 5, world);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Engine, TagSelectionSkipsMismatches) {
  Engine eng(tiny_cfg(2));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      int a = 1, b = 2;
      send(&a, 1, Type::Int, 1, 100, world);
      send(&b, 1, Type::Int, 1, 200, world);
    } else {
      int v = 0;
      recv(&v, 1, Type::Int, 0, 200, world);
      EXPECT_EQ(v, 2);
      recv(&v, 1, Type::Int, 0, 100, world);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Engine, AnySourceAnyTagReceivesEverything) {
  Engine eng(tiny_cfg(4));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      int seen = 0;
      for (int i = 0; i < 3; ++i) {
        int v = 0;
        const Status st = recv(&v, 1, Type::Int, kAnySource, kAnyTag, world);
        EXPECT_EQ(v, st.source * 10 + st.tag);
        ++seen;
      }
      EXPECT_EQ(seen, 3);
    } else {
      const int r = ctx.world_rank();
      const int v = r * 10 + r;
      send(&v, 1, Type::Int, 0, r, world);
    }
  });
}

TEST(Engine, SelfSendWorks) {
  Engine eng(tiny_cfg(1, 1, 4));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    int v = 42, w = 0;
    send(&v, 1, Type::Int, 0, 0, world);
    recv(&w, 1, Type::Int, 0, 0, world);
    EXPECT_EQ(w, 42);
  });
}

TEST(Engine, TruncationIsAnError) {
  Engine eng(tiny_cfg(2));
  EXPECT_THROW(eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      std::vector<int> data(8);
      send(data.data(), data.size(), Type::Int, 1, 0, world);
    } else {
      int little = 0;
      recv(&little, 1, Type::Int, 0, 0, world);
    }
  }),
               Error);
}

TEST(Engine, DeadlockDetected) {
  auto cfg = tiny_cfg(2);
  cfg.watchdog_wall_timeout_s = 0.5;
  Engine eng(cfg);
  EXPECT_THROW(eng.run([](Ctx& ctx) {
    int v = 0;
    recv(&v, 1, Type::Int, kAnySource, kAnyTag, ctx.world());
  }),
               DeadlockError);
}

TEST(Engine, RankExitTurnsWaitersIntoDeadlock) {
  auto cfg = tiny_cfg(2);
  cfg.watchdog_wall_timeout_s = 0.5;
  Engine eng(cfg);
  EXPECT_THROW(eng.run([](Ctx& ctx) {
    if (ctx.world_rank() == 1) {
      int v = 0;
      recv(&v, 1, Type::Int, 0, 0, ctx.world());
    }
  }),
               DeadlockError);
}

TEST(Engine, UserExceptionPropagatesFromRun) {
  Engine eng(tiny_cfg(2));
  EXPECT_THROW(eng.run([](Ctx& ctx) {
    if (ctx.world_rank() == 0) throw std::runtime_error("app failure");
    // Rank 1 blocks; the abort must wake it up.
    int v = 0;
    recv(&v, 1, Type::Int, 0, 0, ctx.world());
  }),
               std::runtime_error);
}

TEST(Engine, RequestsWaitAndTest) {
  Engine eng(tiny_cfg(2));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      int v = 5;
      Request r = isend(&v, 1, Type::Int, 1, 3, world);
      EXPECT_TRUE(r.done());
      wait(r);
    } else {
      int v = 0;
      Request r = irecv(&v, 1, Type::Int, 0, 3, world);
      const Status st = wait(r);
      EXPECT_EQ(v, 5);
      EXPECT_EQ(st.source, 0);
      EXPECT_TRUE(test(r));  // already done
    }
  });
}

TEST(Engine, TestPollsWithoutBlocking) {
  Engine eng(tiny_cfg(2));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      int v = 0;
      Request r = irecv(&v, 1, Type::Int, 1, 0, world);
      // Nothing sent yet at virtual time 0 from our perspective is not
      // observable; poll until the message arrives (wall-clock progress).
      while (!test(r)) {
      }
      EXPECT_EQ(v, 9);
    } else {
      compute(1e-3);
      int v = 9;
      send(&v, 1, Type::Int, 0, 0, world);
    }
  });
}

TEST(Engine, IprobeSeesWithoutConsuming) {
  Engine eng(tiny_cfg(2));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      int v = 1;
      send(&v, 1, Type::Int, 1, 8, world);
    } else {
      Status st;
      while (!iprobe(0, 8, world, &st)) {
      }
      EXPECT_EQ(st.bytes, 4u);
      int v = 0;
      recv(&v, 1, Type::Int, 0, 8, world);
      EXPECT_EQ(v, 1);
      EXPECT_FALSE(iprobe(0, 8, world));
    }
  });
}

TEST(Engine, ComputeAndWtime) {
  Engine eng(tiny_cfg(1, 1, 4));
  eng.run([](Ctx& ctx) {
    EXPECT_DOUBLE_EQ(wtime(), 0.0);
    compute(0.25);
    EXPECT_DOUBLE_EQ(wtime(), 0.25);
    compute_flops(1e6);  // default 5e-10 s/flop
    EXPECT_NEAR(wtime(), 0.25 + 1e6 * 5e-10, 1e-12);
    EXPECT_DOUBLE_EQ(ctx.now(), wtime());
  });
}

TEST(Engine, NicCountsOnlyInterNodeTraffic) {
  Engine eng(tiny_cfg(8, /*nodes=*/2, /*cores=*/4));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    std::vector<std::byte> b(100);
    if (ctx.world_rank() == 0) {
      send(b.data(), b.size(), Type::Byte, 1, 0, world);  // intra-node
      send(b.data(), b.size(), Type::Byte, 4, 0, world);  // inter-node
    } else if (ctx.world_rank() == 1 || ctx.world_rank() == 4) {
      recv(b.data(), b.size(), Type::Byte, 0, 0, world);
    }
  });
  EXPECT_EQ(eng.nic().total_bytes(0), 100u);
  EXPECT_EQ(eng.nic().total_bytes(1), 0u);
}

TEST(Engine, SendHookSeesTrafficAndChargesOverhead) {
  auto cfg = tiny_cfg(2);
  cfg.monitor_event_cost_s = 1e-3;  // exaggerated, easy to observe
  Engine eng(cfg);
  std::atomic<int> hooked{0};
  eng.set_send_hook([&](const PktInfo& pkt, int caller_world) {
    hooked.fetch_add(1);
    EXPECT_EQ(caller_world, pkt.src_world);  // ordinary send: own thread
    EXPECT_EQ(pkt.kind, CommKind::p2p);
    EXPECT_EQ(pkt.bytes, 4u);
    return 2;  // pretend two records were made
  });
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      int v = 0;
      send(&v, 1, Type::Int, 1, 0, world);
      // 2 records x 1e-3 + serialization 4/1e10 + send overhead 1e-7.
      EXPECT_NEAR(ctx.now(), 2e-3 + 4.0 / 1e10 + 1e-7, 1e-12);
    } else {
      int v = 0;
      recv(&v, 1, Type::Int, 0, 0, world);
    }
  });
  EXPECT_EQ(hooked.load(), 1);
}

TEST(Engine, TimingOnlyMessagesSkipPayload) {
  Engine eng(tiny_cfg(2));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      send(nullptr, 1 << 20, Type::Byte, 1, 0, world);
    } else {
      int sentinel = 77;
      const Status st =
          recv(&sentinel, 1 << 20, Type::Byte, 0, 0, world);
      EXPECT_EQ(st.bytes, static_cast<std::size_t>(1 << 20));
      EXPECT_EQ(sentinel, 77);  // buffer untouched: no payload travelled
    }
  });
}

TEST(Engine, ManyRanksRingSmoke) {
  Engine eng(tiny_cfg(48, /*nodes=*/12, /*cores=*/4));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    long token = r;
    const Status st = sendrecv(&token, 1, Type::Long, (r + 1) % n, 0, &token,
                               1, (r + n - 1) % n, 0, world);
    EXPECT_EQ(token, (r + n - 1) % n);
    EXPECT_EQ(st.source, (r + n - 1) % n);
  });
}

// --- NIC contention model -----------------------------------------------------

TEST(EngineContention, ConcurrentFlowsThroughOneNicSerialize) {
  // 4 ranks on node 0 each send 1 MB to a distinct rank on node 1. Without
  // contention all arrive after one transfer time; with contention the tx
  // port of node 0 serializes them (~4x one serialization time).
  auto timed_run = [](bool contention) {
    auto cfg = tiny_cfg(8, /*nodes=*/2, /*cores=*/4);
    cfg.nic_contention = contention;
    Engine eng(cfg);
    eng.run([](Ctx& ctx) {
      const Comm world = ctx.world();
      const int r = ctx.world_rank();
      if (r < 4) {
        send(nullptr, 1 << 20, Type::Byte, r + 4, 0, world);
      } else {
        recv(nullptr, 1 << 20, Type::Byte, r - 4, 0, world);
      }
    });
    double mx = 0;
    for (double c : eng.final_clocks()) mx = std::max(mx, c);
    return mx;
  };
  const double free_flow = timed_run(false);
  const double contended = timed_run(true);
  // One serialization is (1<<20)/1e8 ~ 10.5 ms; contended run needs ~4.
  EXPECT_GT(contended, 3.0 * free_flow);
  EXPECT_LT(contended, 6.0 * free_flow);
}

TEST(EngineContention, IntraNodeTrafficUnaffected) {
  auto timed_run = [](bool contention) {
    auto cfg = tiny_cfg(4, /*nodes=*/1, /*cores=*/4);
    cfg.nic_contention = contention;
    Engine eng(cfg);
    eng.run([](Ctx& ctx) {
      const Comm world = ctx.world();
      const int r = ctx.world_rank();
      const int peer = r ^ 1;
      send(nullptr, 1 << 18, Type::Byte, peer, 0, world);
      recv(nullptr, 1 << 18, Type::Byte, peer, 0, world);
    });
    double mx = 0;
    for (double c : eng.final_clocks()) mx = std::max(mx, c);
    return mx;
  };
  EXPECT_DOUBLE_EQ(timed_run(false), timed_run(true));
}

TEST(EngineContention, DeterministicAcrossRuns) {
  auto cfg = tiny_cfg(12, /*nodes=*/3, /*cores=*/4);
  cfg.nic_contention = true;
  Engine eng(cfg);
  auto workload = [](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    compute(1e-6 * ((r * 7) % 5));
    for (int it = 0; it < 4; ++it) {
      std::vector<std::byte> buf(10000);
      send(buf.data(), buf.size(), Type::Byte, (r + 5) % n, it, world);
      recv(buf.data(), buf.size(), Type::Byte, (r + n - 5) % n, it, world);
    }
    allreduce(nullptr, nullptr, 1000, Type::Int, Op::Sum, world);
  };
  eng.run(workload);
  const auto first = eng.final_clocks();
  eng.run(workload);
  EXPECT_EQ(first, eng.final_clocks());
  EXPECT_GT(first[0], 0.0);
}

TEST(EngineContention, IncastSerializesAtReceiverPort) {
  // 3 senders on 3 different nodes target one receiver node: tx ports are
  // distinct, so the serialization must come from the rx port.
  auto cfg = tiny_cfg(8, /*nodes=*/4, /*cores=*/2);
  cfg.nic_contention = true;
  Engine eng(cfg);
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = ctx.world_rank();
    // Ranks 2, 4, 6 live on nodes 1, 2, 3; rank 0 on node 0.
    if (r == 2 || r == 4 || r == 6) {
      send(nullptr, 1 << 20, Type::Byte, 0, 0, world);
    } else if (r == 0) {
      for (int i = 0; i < 3; ++i)
        recv(nullptr, 1 << 20, Type::Byte, kAnySource, 0, world);
      // Three 1 MB messages through one 1e8 B/s rx port: >= 30 ms.
      EXPECT_GT(ctx.now(), 3.0 * ((1 << 20) / 1e8));
    }
  });
}

TEST(EngineContention, DeadlockStillDetected) {
  auto cfg = tiny_cfg(2);
  cfg.nic_contention = true;
  cfg.watchdog_wall_timeout_s = 0.5;
  Engine eng(cfg);
  EXPECT_THROW(eng.run([](Ctx& ctx) {
    int v = 0;
    recv(&v, 1, Type::Int, kAnySource, kAnyTag, ctx.world());
  }),
               DeadlockError);
}

TEST(EngineContention, ErrorInOneRankUnblocksGateWaiters) {
  auto cfg = tiny_cfg(8, /*nodes=*/2, /*cores=*/4);
  cfg.nic_contention = true;
  Engine eng(cfg);
  EXPECT_THROW(eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = ctx.world_rank();
    if (r == 0) {
      compute(1.0);  // keep rank 0 the gate minimum for a while
      throw std::runtime_error("boom");
    }
    if (r < 4) send(nullptr, 1 << 16, Type::Byte, r + 4, 0, world);
    else recv(nullptr, 1 << 16, Type::Byte, r - 4, 0, world);
  }),
               std::runtime_error);
}

TEST(Engine, CtxCurrentOutsideRunThrows) {
  EXPECT_THROW(Ctx::current(), Error);
}

TEST(Engine, InvalidPlacementRejected) {
  auto cfg = tiny_cfg(2);
  cfg.placement = {0, 0};
  EXPECT_THROW(Engine{cfg}, Error);
}

}  // namespace
}  // namespace mpim::mpi
