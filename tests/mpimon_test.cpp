#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "minimpi/api.h"
#include "minimpi/osc.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"

namespace mpim {
namespace {

using mpi::Comm;
using mpi::Ctx;
using mpi::Type;

Sim make_sim(int nranks = 4) {
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                        .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 5.0;
  return Sim(std::move(cfg));
}

void exchange_ring(const Comm& comm, std::size_t bytes, int rounds = 1) {
  const int r = mpi::comm_rank(comm);
  const int n = mpi::comm_size(comm);
  std::vector<std::byte> buf(bytes);
  for (int i = 0; i < rounds; ++i) {
    mpi::send(buf.data(), bytes, Type::Byte, (r + 1) % n, 0, comm);
    mpi::recv(buf.data(), bytes, Type::Byte, (r + n - 1) % n, 0, comm);
  }
}

// --- lifecycle ----------------------------------------------------------------

TEST(MpiMon, InitFinalizeLifecycle) {
  Sim sim = make_sim(1);
  sim.run([](Ctx&) {
    EXPECT_EQ(MPI_M_finalize(), MPI_M_MISSING_INIT);
    EXPECT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_init(), MPI_M_MULTIPLE_CALL);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_init(), MPI_M_SUCCESS);  // re-init after finalize is fine
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
}

TEST(MpiMon, CallsBeforeInitReportMissingInit) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    MPI_M_msid id = 0;
    EXPECT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_MISSING_INIT);
    EXPECT_EQ(MPI_M_suspend(0), MPI_M_MISSING_INIT);
    EXPECT_EQ(MPI_M_get_data(0, nullptr, nullptr, MPI_M_ALL_COMM),
              MPI_M_MISSING_INIT);
  });
}

TEST(MpiMon, FinalizeWithActiveSessionFails) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    (void)ctx;
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SESSION_STILL_ACTIVE);
    EXPECT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);  // frees the suspended one
  });
}

// --- state machine --------------------------------------------------------------

TEST(MpiMon, SuspendContinueStateMachine) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_continue(id), MPI_M_MULTIPLE_CALL);  // already active
    EXPECT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_suspend(id), MPI_M_MULTIPLE_CALL);  // already suspended
    EXPECT_EQ(MPI_M_continue(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_suspend(id), MPI_M_INVALID_MSID);  // freed
    MPI_M_finalize();
  });
}

TEST(MpiMon, ResetAndFreeRequireSuspended) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_reset(id), MPI_M_SESSION_NOT_SUSPENDED);
    EXPECT_EQ(MPI_M_free(id), MPI_M_SESSION_NOT_SUSPENDED);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_reset(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    MPI_M_finalize();
  });
}

TEST(MpiMon, InvalidMsidRejected) {
  Sim sim = make_sim(1);
  sim.run([](Ctx&) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_suspend(42), MPI_M_INVALID_MSID);
    EXPECT_EQ(MPI_M_get_info(-7, nullptr, nullptr), MPI_M_INVALID_MSID);
    // ALL_MSID rejected where a single session is required.
    EXPECT_EQ(MPI_M_get_info(MPI_M_ALL_MSID, nullptr, nullptr),
              MPI_M_INVALID_MSID);
    EXPECT_EQ(
        MPI_M_get_data(MPI_M_ALL_MSID, nullptr, nullptr, MPI_M_ALL_COMM),
        MPI_M_INVALID_MSID);
    MPI_M_finalize();
  });
}

TEST(MpiMon, AllMsidActsOnApplicableSessions) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid a, b;
    ASSERT_EQ(MPI_M_start(ctx.world(), &a), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_start(ctx.world(), &b), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_suspend(b), MPI_M_SUCCESS);
    // Suspends `a`, skips already-suspended `b`.
    EXPECT_EQ(MPI_M_suspend(MPI_M_ALL_MSID), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_suspend(a), MPI_M_MULTIPLE_CALL);  // proof it happened
    EXPECT_EQ(MPI_M_reset(MPI_M_ALL_MSID), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_free(MPI_M_ALL_MSID), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_suspend(a), MPI_M_INVALID_MSID);
    EXPECT_EQ(MPI_M_suspend(b), MPI_M_INVALID_MSID);
    MPI_M_finalize();
  });
}

TEST(MpiMon, SessionOverflowAndSlotReuse) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    std::vector<MPI_M_msid> ids(MPI_M_MAX_SESSIONS);
    for (auto& id : ids)
      ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    MPI_M_msid extra;
    EXPECT_EQ(MPI_M_start(ctx.world(), &extra), MPI_M_SESSION_OVERFLOW);
    // Free one, the slot becomes available again.
    ASSERT_EQ(MPI_M_suspend(ids[0]), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_free(ids[0]), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_start(ctx.world(), &extra), MPI_M_SUCCESS);
    EXPECT_EQ(extra, ids[0]);  // reused slot
    MPI_M_suspend(MPI_M_ALL_MSID);
    MPI_M_finalize();
  });
}

// --- recording ------------------------------------------------------------------

TEST(MpiMon, GetInfoReportsSizeAndThreadLevel) {
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    int provided = -1, n = -1;
    EXPECT_EQ(MPI_M_get_info(id, &provided, &n), MPI_M_SUCCESS);
    EXPECT_EQ(n, 4);
    EXPECT_EQ(provided, 3);
    // Ignore sentinels accepted.
    EXPECT_EQ(MPI_M_get_info(id, MPI_M_INT_IGNORE, MPI_M_INT_IGNORE),
              MPI_M_SUCCESS);
    MPI_M_suspend(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, GetDataCountsSenderSideP2p) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    if (ctx.world_rank() == 0) {
      std::vector<std::byte> b(300);
      mpi::send(b.data(), 300, Type::Byte, 1, 0, world);
      mpi::send(b.data(), 200, Type::Byte, 1, 0, world);
    } else {
      std::vector<std::byte> b(300);
      mpi::recv(b.data(), 300, Type::Byte, 0, 0, world);
      mpi::recv(b.data(), 300, Type::Byte, 0, 0, world);
    }
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    unsigned long counts[2] = {9, 9}, sizes[2] = {9, 9};
    EXPECT_EQ(MPI_M_get_data(id, counts, sizes, MPI_M_P2P_ONLY),
              MPI_M_SUCCESS);
    if (ctx.world_rank() == 0) {
      EXPECT_EQ(counts[1], 2u);
      EXPECT_EQ(sizes[1], 500u);
      EXPECT_EQ(counts[0], 0u);
    } else {
      EXPECT_EQ(counts[0] + counts[1], 0u);
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, DataAccessRequiresSuspendedState) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    unsigned long buf[2];
    EXPECT_EQ(MPI_M_get_data(id, buf, MPI_M_DATA_IGNORE, MPI_M_ALL_COMM),
              MPI_M_SESSION_NOT_SUSPENDED);
    MPI_M_suspend(id);
    EXPECT_EQ(MPI_M_get_data(id, buf, MPI_M_DATA_IGNORE, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, InvalidFlagsRejected) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    MPI_M_suspend(id);
    unsigned long buf[1];
    EXPECT_EQ(MPI_M_get_data(id, buf, MPI_M_DATA_IGNORE, 0),
              MPI_M_INVALID_FLAGS);
    EXPECT_EQ(MPI_M_get_data(id, buf, MPI_M_DATA_IGNORE, 0x100),
              MPI_M_INVALID_FLAGS);
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, CollectiveDecompositionVisible) {
  // The headline feature: a session sees how MPI_Barrier decomposes into
  // point-to-point messages (the paper's Listing 2).
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    mpi::barrier(world);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    unsigned long coll_counts[4], p2p_counts[4];
    ASSERT_EQ(MPI_M_get_data(id, coll_counts, MPI_M_DATA_IGNORE,
                             MPI_M_COLL_ONLY),
              MPI_M_SUCCESS);
    ASSERT_EQ(
        MPI_M_get_data(id, p2p_counts, MPI_M_DATA_IGNORE, MPI_M_P2P_ONLY),
        MPI_M_SUCCESS);
    unsigned long coll_total = 0, p2p_total = 0;
    for (int i = 0; i < 4; ++i) {
      coll_total += coll_counts[i];
      p2p_total += p2p_counts[i];
    }
    // Dissemination barrier: every rank sends log2(4) = 2 messages.
    EXPECT_EQ(coll_total, 2u);
    EXPECT_EQ(p2p_total, 0u);
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, AllgatherDataBuildsFullMatrix) {
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    exchange_ring(world, 100);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    CommMatrix counts = CommMatrix::square(4), sizes = CommMatrix::square(4);
    ASSERT_EQ(MPI_M_allgather_data(id, counts.data(), sizes.data(),
                                   MPI_M_P2P_ONLY),
              MPI_M_SUCCESS);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        const unsigned long expect_count = (j == (i + 1) % 4) ? 1u : 0u;
        EXPECT_EQ(counts(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(j)),
                  expect_count)
            << i << "," << j;
        EXPECT_EQ(sizes(static_cast<std::size_t>(i),
                        static_cast<std::size_t>(j)),
                  expect_count * 100u);
      }
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, AllgatherDataWithPerRankIgnores) {
  // "parameters can vary among processes": some ranks ignore the output.
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    exchange_ring(world, 64);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    if (ctx.world_rank() == 0) {
      CommMatrix sizes = CommMatrix::square(4);
      ASSERT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, sizes.data(),
                                     MPI_M_P2P_ONLY),
                MPI_M_SUCCESS);
      EXPECT_EQ(sizes.sum(), 4u * 64u);
    } else {
      ASSERT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE,
                                     MPI_M_DATA_IGNORE, MPI_M_P2P_ONLY),
                MPI_M_SUCCESS);
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, RootgatherOnlyRootReceives) {
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    exchange_ring(world, 10);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    const int root = 2;
    CommMatrix counts = CommMatrix::square(4);
    ASSERT_EQ(
        MPI_M_rootgather_data(id, root,
                              ctx.world_rank() == root ? counts.data()
                                                       : nullptr,
                              nullptr, MPI_M_P2P_ONLY),
        MPI_M_SUCCESS);
    if (ctx.world_rank() == root) {
      EXPECT_EQ(counts.sum(), 4u);
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, RootgatherInvalidRoot) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    MPI_M_suspend(id);
    EXPECT_EQ(MPI_M_rootgather_data(id, -3, nullptr, nullptr, MPI_M_ALL_COMM),
              MPI_M_INVALID_ROOT);
    EXPECT_EQ(MPI_M_rootgather_data(id, 2, nullptr, nullptr, MPI_M_ALL_COMM),
              MPI_M_INVALID_ROOT);
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, SessionOnSubCommRecordsCrossCommTraffic) {
  // The paper's Section 4.1 example verbatim: a session attached to the
  // even/odd split records exchanges between processes 0 and 2 even when
  // the traffic uses MPI_COMM_WORLD.
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = ctx.world_rank();
    const Comm parity = mpi::comm_split(world, r % 2, r);
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(parity, &id), MPI_M_SUCCESS);
    if (r == 0) {
      std::vector<std::byte> b(500);
      mpi::send(b.data(), 500, Type::Byte, 2, 0, world);  // via WORLD
      mpi::send(b.data(), 100, Type::Byte, 1, 0, world);  // to an odd rank
    } else if (r == 1 || r == 2) {
      std::vector<std::byte> b(500);
      mpi::recv(b.data(), 500, Type::Byte, 0, 0, world);
    }
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    unsigned long sizes[2];
    ASSERT_EQ(MPI_M_get_data(id, MPI_M_DATA_IGNORE, sizes, MPI_M_P2P_ONLY),
              MPI_M_SUCCESS);
    if (r == 0) {
      EXPECT_EQ(sizes[1], 500u);  // 0 -> 2, recorded at parity-rank index 1
      EXPECT_EQ(sizes[0], 0u);    // the 0 -> 1 message is invisible
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, OverlappingSessionsAreIndependent) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid outer, inner;
    ASSERT_EQ(MPI_M_start(world, &outer), MPI_M_SUCCESS);
    exchange_ring(world, 100);  // only outer sees this
    ASSERT_EQ(MPI_M_start(world, &inner), MPI_M_SUCCESS);
    exchange_ring(world, 10);   // both see this
    ASSERT_EQ(MPI_M_suspend(inner), MPI_M_SUCCESS);
    exchange_ring(world, 1);    // only outer sees this
    ASSERT_EQ(MPI_M_suspend(outer), MPI_M_SUCCESS);

    unsigned long outer_sizes[2], inner_sizes[2];
    ASSERT_EQ(
        MPI_M_get_data(outer, MPI_M_DATA_IGNORE, outer_sizes, MPI_M_P2P_ONLY),
        MPI_M_SUCCESS);
    ASSERT_EQ(
        MPI_M_get_data(inner, MPI_M_DATA_IGNORE, inner_sizes, MPI_M_P2P_ONLY),
        MPI_M_SUCCESS);
    const int peer = (ctx.world_rank() + 1) % 2;
    EXPECT_EQ(outer_sizes[peer], 111u);
    EXPECT_EQ(inner_sizes[peer], 10u);
    MPI_M_free(MPI_M_ALL_MSID);
    MPI_M_finalize();
  });
}

TEST(MpiMon, ResetClearsSuspendedSessionData) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    exchange_ring(world, 100);
    MPI_M_suspend(id);
    ASSERT_EQ(MPI_M_reset(id), MPI_M_SUCCESS);
    unsigned long sizes[2];
    MPI_M_get_data(id, MPI_M_DATA_IGNORE, sizes, MPI_M_ALL_COMM);
    EXPECT_EQ(sizes[0] + sizes[1], 0u);
    // Continue and record again after the reset.
    MPI_M_continue(id);
    exchange_ring(world, 7);
    MPI_M_suspend(id);
    MPI_M_get_data(id, MPI_M_DATA_IGNORE, sizes, MPI_M_ALL_COMM);
    EXPECT_EQ(sizes[(ctx.world_rank() + 1) % 2], 7u);
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, SuspendedSessionRecordsNothing) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    exchange_ring(world, 1000);  // not watched
    unsigned long sizes[2];
    MPI_M_get_data(id, MPI_M_DATA_IGNORE, sizes, MPI_M_ALL_COMM);
    EXPECT_EQ(sizes[0] + sizes[1], 0u);
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

// --- flush ----------------------------------------------------------------------

TEST(MpiMon, FlushWritesPerRankFiles) {
  namespace fs = std::filesystem;
  const std::string base = (fs::temp_directory_path() / "mpim_flush").string();
  Sim sim = make_sim(2);
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    exchange_ring(world, 123);
    MPI_M_suspend(id);
    ASSERT_EQ(MPI_M_flush(id, base.c_str(), MPI_M_P2P_ONLY), MPI_M_SUCCESS);
    MPI_M_free(id);
    MPI_M_finalize();
  });
  for (int r = 0; r < 2; ++r) {
    const std::string path = base + "." + std::to_string(r) + ".prof";
    std::ifstream is(path);
    ASSERT_TRUE(is.good()) << path;
    std::string contents((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("123"), std::string::npos);
    std::remove(path.c_str());
  }
}

TEST(MpiMon, RootflushWritesCountAndSizeMatrices) {
  namespace fs = std::filesystem;
  const std::string base = (fs::temp_directory_path() / "mpim_rf").string();
  Sim sim = make_sim(4);
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    mpi::barrier(world);
    MPI_M_suspend(id);
    ASSERT_EQ(MPI_M_rootflush(id, 0, base.c_str(), MPI_M_COLL_ONLY),
              MPI_M_SUCCESS);
    MPI_M_free(id);
    MPI_M_finalize();
  });
  for (const char* kind : {"_counts", "_sizes"}) {
    const std::string path = base + kind + ".0.prof";
    std::ifstream is(path);
    ASSERT_TRUE(is.good()) << path;
    int rows = 0;
    std::string line;
    while (std::getline(is, line))
      if (!line.empty() && line[0] != '#') ++rows;
    EXPECT_EQ(rows, 4);
    std::remove(path.c_str());
  }
}

// --- RAII wrapper ----------------------------------------------------------------

TEST(MonSessionWrapper, RaiiLifecycleAndMatrices) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    {
      mon::Session s(world);
      exchange_ring(world, 55);
      s.suspend();
      const auto sizes = s.gather_sizes(MPI_M_P2P_ONLY);
      EXPECT_EQ(sizes(0, 1), 55u);
      EXPECT_EQ(sizes(1, 0), 55u);
      const auto local = s.local_sizes(MPI_M_P2P_ONLY);
      EXPECT_EQ(local[(ctx.world_rank() + 1) % 2], 55u);
      s.reset();
      s.resume();
      s.suspend();
    }  // destructor frees
    // All sessions gone: finalize (via ~Environment) must succeed.
  });
}

TEST(MpiMon, StartRequiresMembership) {
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = ctx.world_rank();
    const Comm evens = mpi::comm_split(world, r % 2 == 0 ? 0 : -1, r);
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    if (r % 2 == 0) {
      EXPECT_EQ(MPI_M_start(evens, &id), MPI_M_SUCCESS);
      MPI_M_suspend(id);
      MPI_M_free(id);
    } else {
      // Odd ranks hold a null communicator from the split.
      EXPECT_EQ(MPI_M_start(evens, &id), MPI_M_INTERNAL_FAIL);
    }
    MPI_M_finalize();
  });
}

TEST(MpiMon, NullMsidPointerRejected) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_start(ctx.world(), nullptr), MPI_M_INTERNAL_FAIL);
    MPI_M_finalize();
  });
}

TEST(MpiMon, FlushToUnwritablePathFails) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    MPI_M_start(ctx.world(), &id);
    MPI_M_suspend(id);
    EXPECT_EQ(MPI_M_flush(id, "/nonexistent_dir_xyz/file", MPI_M_ALL_COMM),
              MPI_M_INTERNAL_FAIL);
    EXPECT_EQ(
        MPI_M_rootflush(id, 0, "/nonexistent_dir_xyz/file", MPI_M_ALL_COMM),
        MPI_M_INTERNAL_FAIL);
    EXPECT_EQ(MPI_M_flush(id, nullptr, MPI_M_ALL_COMM), MPI_M_INTERNAL_FAIL);
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, ZeroByteMessagesCountedNotSized) {
  // "some collective MPI routines might generate point-to-point
  // zero-length messages": counts move, sizes do not.
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    MPI_M_start(world, &id);
    if (ctx.world_rank() == 0)
      mpi::send(nullptr, 0, mpi::Type::Byte, 1, 0, world);
    else
      mpi::recv(nullptr, 0, mpi::Type::Byte, 0, 0, world);
    MPI_M_suspend(id);
    unsigned long counts[2], sizes[2];
    MPI_M_get_data(id, counts, sizes, MPI_M_P2P_ONLY);
    if (ctx.world_rank() == 0) {
      EXPECT_EQ(counts[1], 1u);
      EXPECT_EQ(sizes[1], 0u);
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, SessionsOnDifferentCommsSeparateTraffic) {
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = ctx.world_rank();
    const Comm pairs = mpi::comm_split(world, r / 2, r);
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid world_id, pair_id;
    MPI_M_start(world, &world_id);
    MPI_M_start(pairs, &pair_id);
    // 0 <-> 3: visible to the world session, invisible to the pair
    // session of {0,1} (3 outside) and to that of {2,3} (0 outside).
    if (r == 0) mpi::send(nullptr, 99, mpi::Type::Byte, 3, 0, world);
    if (r == 3) mpi::recv(nullptr, 99, mpi::Type::Byte, 0, 0, world);
    MPI_M_suspend(MPI_M_ALL_MSID);
    if (r == 0) {
      unsigned long wsizes[4], psizes[2];
      MPI_M_get_data(world_id, MPI_M_DATA_IGNORE, wsizes, MPI_M_P2P_ONLY);
      MPI_M_get_data(pair_id, MPI_M_DATA_IGNORE, psizes, MPI_M_P2P_ONLY);
      EXPECT_EQ(wsizes[3], 99u);
      EXPECT_EQ(psizes[0] + psizes[1], 0u);
    }
    MPI_M_free(MPI_M_ALL_MSID);
    MPI_M_finalize();
  });
}

TEST(MpiMon, OscTrafficFilteredBySessionFlag) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    MPI_M_start(world, &id);
    int cell = 0;
    mpi::Win win = mpi::Win::create(&cell, sizeof cell, world);
    win.fence();
    if (ctx.world_rank() == 1) {
      const int v = 5;
      win.put(&v, 1, mpi::Type::Int, 0, 0);
    }
    win.fence();
    MPI_M_suspend(id);
    unsigned long osc[2], p2p[2];
    MPI_M_get_data(id, MPI_M_DATA_IGNORE, osc, MPI_M_OSC_ONLY);
    MPI_M_get_data(id, MPI_M_DATA_IGNORE, p2p, MPI_M_P2P_ONLY);
    if (ctx.world_rank() == 1) {
      EXPECT_EQ(osc[0], 4u);
      EXPECT_EQ(p2p[0], 0u);
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, RmaGetAttributedToTargetAcrossThreads) {
  // A get's traffic is src=target but the send hook runs on the origin's
  // thread, so the target's accumulator takes the cross-thread (foreign
  // slot) path. The target's session must still see the bytes it "sent".
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    MPI_M_start(world, &id);
    int cell = 7;
    mpi::Win win = mpi::Win::create(&cell, sizeof cell, world);
    win.fence();
    if (ctx.world_rank() == 1) {
      int got = 0;
      win.get(&got, 1, mpi::Type::Int, 0, 0);  // rank 1 reads rank 0's cell
      EXPECT_EQ(got, 7);
    }
    win.fence();
    MPI_M_suspend(id);
    unsigned long counts[2], sizes[2];
    MPI_M_get_data(id, counts, sizes, MPI_M_OSC_ONLY);
    if (ctx.world_rank() == 0) {
      // Traffic 0 -> 1, recorded from rank 1's thread into rank 0's slots.
      EXPECT_EQ(counts[1], 1u);
      EXPECT_EQ(sizes[1], 4u);
    } else {
      EXPECT_EQ(counts[0], 0u);
      EXPECT_EQ(sizes[0], 0u);
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, CombinedFlagsSumKinds) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    MPI_M_start(world, &id);
    if (ctx.world_rank() == 0)
      mpi::send(nullptr, 10, mpi::Type::Byte, 1, 0, world);
    else
      mpi::recv(nullptr, 10, mpi::Type::Byte, 0, 0, world);
    mpi::bcast(nullptr, 25, mpi::Type::Byte, 0, world);
    MPI_M_suspend(id);
    if (ctx.world_rank() == 0) {
      unsigned long both[2], p2p[2], coll[2];
      MPI_M_get_data(id, MPI_M_DATA_IGNORE, both,
                     MPI_M_P2P_ONLY | MPI_M_COLL_ONLY);
      MPI_M_get_data(id, MPI_M_DATA_IGNORE, p2p, MPI_M_P2P_ONLY);
      MPI_M_get_data(id, MPI_M_DATA_IGNORE, coll, MPI_M_COLL_ONLY);
      EXPECT_EQ(both[1], p2p[1] + coll[1]);
      EXPECT_EQ(p2p[1], 10u);
      EXPECT_EQ(coll[1], 25u);
    }
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, ErrorStringsAreDistinct) {
  EXPECT_STREQ(MPI_M_error_string(MPI_M_SUCCESS), "MPI_M_SUCCESS");
  EXPECT_STREQ(MPI_M_error_string(MPI_M_INVALID_MSID), "MPI_M_INVALID_MSID");
  EXPECT_STREQ(MPI_M_error_string(MPI_M_SESSION_OVERFLOW),
               "MPI_M_SESSION_OVERFLOW");
  EXPECT_STREQ(MPI_M_error_string(MPI_M_PARTIAL_DATA), "MPI_M_PARTIAL_DATA");
  EXPECT_STREQ(MPI_M_error_string(9999), "(unknown MPI_M error code)");
}

TEST(MpiMon, AllMsidRejectedByGathersAndFlush) {
  Sim sim = make_sim(1);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    unsigned long m[1];
    EXPECT_EQ(MPI_M_allgather_data(MPI_M_ALL_MSID, m, MPI_M_DATA_IGNORE,
                                   MPI_M_ALL_COMM),
              MPI_M_INVALID_MSID);
    EXPECT_EQ(MPI_M_rootgather_data(MPI_M_ALL_MSID, 0, m, MPI_M_DATA_IGNORE,
                                    MPI_M_ALL_COMM),
              MPI_M_INVALID_MSID);
    EXPECT_EQ(MPI_M_flush(MPI_M_ALL_MSID, "unused", MPI_M_ALL_COMM),
              MPI_M_INVALID_MSID);
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, DoubleSuspendAndActiveDataAccessReportExactCodes) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    unsigned long m[4];
    // Gathers on an active session: exact SESSION_NOT_SUSPENDED, on every
    // rank, with no traffic generated (no hang on the other rank).
    EXPECT_EQ(MPI_M_allgather_data(id, m, MPI_M_DATA_IGNORE, MPI_M_ALL_COMM),
              MPI_M_SESSION_NOT_SUSPENDED);
    EXPECT_EQ(MPI_M_rootgather_data(id, 0, m, MPI_M_DATA_IGNORE,
                                    MPI_M_ALL_COMM),
              MPI_M_SESSION_NOT_SUSPENDED);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_suspend(id), MPI_M_MULTIPLE_CALL);
    ASSERT_EQ(MPI_M_continue(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_continue(id), MPI_M_MULTIPLE_CALL);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    MPI_M_free(id);
    MPI_M_finalize();
  });
}

TEST(MpiMon, FrameGridStepPicksSmallestPositiveWidth) {
  // One frame's reconstructed width can collapse to zero; the grid step
  // must come from the batch, not from any single frame.
  const double t0[] = {0.25, 0.5, 0.75};
  const double t1[] = {0.25, 0.75, 1.0};
  EXPECT_DOUBLE_EQ(mon::detail::frame_grid_step(t0, t1, 3), 0.25);

  const double z0[] = {0.0, 0.5};
  const double z1[] = {0.0, 0.5};
  EXPECT_DOUBLE_EQ(mon::detail::frame_grid_step(z0, z1, 2), 0.0);
  EXPECT_DOUBLE_EQ(mon::detail::frame_grid_step(t0, t1, 0), 0.0);
}

TEST(MpiMon, FrameWindowIndexGuardsZeroStepAndRounds) {
  EXPECT_EQ(mon::detail::frame_window_index(0.75, 0.25), 3);
  // t0 slightly off the exact grid point still rounds to the right index.
  EXPECT_EQ(mon::detail::frame_window_index(0.25 * 7 - 1e-12, 0.25), 7);
  EXPECT_EQ(mon::detail::frame_window_index(0.0, 0.25), 0);
  // Degenerate grid (all windows zero width): no division by zero.
  EXPECT_EQ(mon::detail::frame_window_index(0.5, 0.0), 0);
}

TEST(MpiMon, GatherFramesReconstructsWindowIndices) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    mon::Environment env;
    mon::Session s(ctx.world());
    s.snapshot_start(/*window_s=*/1e-3, /*max_frames=*/8);
    exchange_ring(ctx.world(), 256, 3);
    mpi::compute(2.5e-3);  // land traffic in a later window too
    exchange_ring(ctx.world(), 256, 3);
    s.snapshot_stop();
    s.suspend();
    const auto frames = s.gather_frames(8);
    ASSERT_FALSE(frames.empty());
    for (const auto& f : frames) {
      // Index must sit on the sampler's grid: window * step == t0.
      EXPECT_GE(f.window, 0);
      EXPECT_NEAR(static_cast<double>(f.window) * 1e-3, f.t0_s, 1e-9);
      EXPECT_NEAR(f.t1_s - f.t0_s, 1e-3, 1e-9);
    }
    // Strictly increasing window indices across the batch.
    for (std::size_t i = 1; i < frames.size(); ++i)
      EXPECT_GT(frames[i].window, frames[i - 1].window);
  });
}

TEST(MpiMon, GathersEmitExactlyOneCollectiveSpanPerCall) {
  // The fused gather contract: every MPI_M_{allgather,rootgather}_data and
  // MPI_M_rootflush call moves counts AND sizes with ONE collective,
  // observable as exactly one "mon.gather" span per call and participant.
  Sim sim = make_sim(4);
  sim.engine().telemetry().set_enabled(true);
  const std::string prof = std::filesystem::temp_directory_path() /
                           "mpim_span_count_flush";
  sim.run([&](Ctx& ctx) {
    mon::Environment env;
    mon::Session s(ctx.world());
    exchange_ring(ctx.world(), 128);
    s.suspend();
    (void)s.gather_counts();  // allgather, counts only
    (void)s.gather_sizes();   // allgather, sizes only
    CommMatrix c = CommMatrix::square(4), b = CommMatrix::square(4);
    ASSERT_EQ(MPI_M_allgather_data(s.id(), c.data(), b.data(), MPI_M_ALL_COMM),
              MPI_M_SUCCESS);  // both matrices, still one collective
    ASSERT_EQ(MPI_M_rootgather_data(
                  s.id(), 0,
                  mpi::comm_rank(ctx.world()) == 0 ? c.data()
                                                   : MPI_M_DATA_IGNORE,
                  mpi::comm_rank(ctx.world()) == 0 ? b.data()
                                                   : MPI_M_DATA_IGNORE,
                  MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_rootflush(s.id(), 0, prof.c_str(), MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
  });
  for (int rank = 0; rank < 4; ++rank) {
    int gather_spans = 0;
    for (const auto& sp : sim.engine().telemetry().spans(rank)) {
      if (std::string(sp.name) == "mon.gather") {
        ++gather_spans;
        EXPECT_EQ(sp.a, 8);  // fused row width 2n
        EXPECT_EQ(sp.b, 0);  // nothing missing without a fault plan
      }
    }
    EXPECT_EQ(gather_spans, 5) << "rank " << rank;
  }
  std::remove((prof + "_counts.0.prof").c_str());
  std::remove((prof + "_sizes.0.prof").c_str());
}

TEST(MpiMon, GatherTimeoutSetterValidatesAndSticks) {
  Sim sim = make_sim(1);
  sim.run([](Ctx&) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_set_gather_timeout(0.0), MPI_M_INTERNAL_FAIL);
    EXPECT_EQ(MPI_M_set_gather_timeout(-2.0), MPI_M_INTERNAL_FAIL);
    EXPECT_EQ(MPI_M_set_gather_timeout(1.5), MPI_M_SUCCESS);
    EXPECT_DOUBLE_EQ(MPI_M_get_gather_timeout(), 1.5);
    MPI_M_finalize();
  });
}

}  // namespace
}  // namespace mpim
