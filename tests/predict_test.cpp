#include <gtest/gtest.h>

#include <cmath>

#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "predict/predictor.h"
#include "predict/sampler.h"
#include "support/rng.h"

namespace mpim::predict {
namespace {

TEST(Predictor, EwmaTracksConstantSeries) {
  UsagePredictor p;
  for (int i = 0; i < 50; ++i) p.add_sample(1000.0);
  EXPECT_DOUBLE_EQ(p.ewma(), 1000.0);
  EXPECT_DOUBLE_EQ(p.predict_next(), 1000.0);
  EXPECT_DOUBLE_EQ(p.window_stddev(), 0.0);
}

TEST(Predictor, EwmaConvergesAfterLevelShift) {
  UsagePredictor p;
  for (int i = 0; i < 30; ++i) p.add_sample(0.0);
  for (int i = 0; i < 60; ++i) p.add_sample(500.0);
  EXPECT_NEAR(p.ewma(), 500.0, 1.0);
}

TEST(Predictor, TrendSlopeOfLinearRamp) {
  UsagePredictor p;
  for (int i = 0; i < 100; ++i) p.add_sample(10.0 * i);
  EXPECT_NEAR(p.trend_slope(), 10.0, 1e-9);
  // Prediction extrapolates beyond the EWMA level.
  EXPECT_GT(p.predict_next(), p.ewma());
}

TEST(Predictor, DetectsSyntheticPeriod) {
  UsagePredictor p;
  // Period-8 bursts: 7 quiet intervals, one 1 MB burst.
  for (int i = 0; i < 128; ++i) p.add_sample(i % 8 == 0 ? 1.0e6 : 0.0);
  const auto period = p.detected_period();
  ASSERT_TRUE(period.has_value());
  EXPECT_EQ(*period, 8u);
}

TEST(Predictor, PeriodicPredictionAnticipatesBursts) {
  UsagePredictor p;
  for (int i = 0; i < 128; ++i) p.add_sample(i % 8 == 0 ? 1.0e6 : 0.0);
  // 128 samples: indices 0..127; last burst at 120; the next sample
  // (index 128) is a burst again -- one period ago (index 120) was one.
  EXPECT_DOUBLE_EQ(p.predict_next(), 1.0e6);
  EXPECT_FALSE(p.underutilized_next());
  p.add_sample(1.0e6);  // index 128, the predicted burst
  // Next (129) should be quiet.
  EXPECT_DOUBLE_EQ(p.predict_next(), 0.0);
  EXPECT_TRUE(p.underutilized_next());
}

TEST(Predictor, NoPeriodInWhiteNoise) {
  UsagePredictor p;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) p.add_sample(rng.uniform(0.0, 1000.0));
  EXPECT_FALSE(p.detected_period().has_value());
}

TEST(Predictor, UnderutilizedOnEmptyAndQuietWindows) {
  UsagePredictor p;
  EXPECT_TRUE(p.underutilized_next());
  for (int i = 0; i < 10; ++i) p.add_sample(0.0);
  EXPECT_TRUE(p.underutilized_next());
}

TEST(Predictor, RejectsBadConfigAndInputs) {
  PredictorConfig bad;
  bad.window = 2;
  EXPECT_THROW(UsagePredictor{bad}, Error);
  UsagePredictor p;
  EXPECT_THROW(p.add_sample(-1.0), Error);
  EXPECT_THROW(p.last_sample(), Error);
}

TEST(Predictor, WindowIsBounded) {
  PredictorConfig cfg;
  cfg.window = 16;
  UsagePredictor p(cfg);
  for (int i = 0; i < 100; ++i) p.add_sample(i < 84 ? 1e9 : 1.0);
  // Only the last 16 samples (all 1.0) remain.
  EXPECT_DOUBLE_EQ(p.window_mean(), 1.0);
}

// --- sampler integration -----------------------------------------------------

Sim make_sim(int nranks = 2) {
  auto cost = net::CostModel::plafrim_like(2, 1, 2);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(nranks, cost.topology())};
  cfg.watchdog_wall_timeout_s = 5.0;
  return Sim(std::move(cfg));
}

TEST(Sampler, MeasuresPerIntervalTraffic) {
  Sim sim = make_sim(2);
  sim.run([](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    mon::Environment env;
    TrafficSampler sampler(world, MPI_M_P2P_ONLY);
    if (ctx.world_rank() == 0) {
      std::vector<std::byte> b(100);
      mpi::send(b.data(), 100, mpi::Type::Byte, 1, 0, world);
      EXPECT_EQ(sampler.sample(), 100u);
      mpi::send(b.data(), 60, mpi::Type::Byte, 1, 0, world);
      mpi::send(b.data(), 40, mpi::Type::Byte, 1, 0, world);
      EXPECT_EQ(sampler.sample(), 100u);  // reset worked: not 200
      EXPECT_EQ(sampler.sample(), 0u);    // quiet interval
    } else {
      std::vector<std::byte> b(100);
      for (int i = 0; i < 3; ++i)
        mpi::recv(b.data(), 100, mpi::Type::Byte, 0, 0, world);
      (void)sampler.sample();
    }
  });
}

TEST(Sampler, FeedsPredictorWithPeriodicApp) {
  // An "iterative application": every 4th interval sends a burst. The
  // predictor, fed from the monitoring session, finds the period and
  // forecasts the idle windows.
  Sim sim = make_sim(2);
  bool found_period = false, idle_forecast_ok = true;
  sim.run([&](mpi::Ctx& ctx) {
    const mpi::Comm world = ctx.world();
    mon::Environment env;
    if (ctx.world_rank() == 0) {
      TrafficSampler sampler(world, MPI_M_P2P_ONLY);
      UsagePredictor pred;
      std::vector<std::byte> b(50000);
      for (int interval = 0; interval < 96; ++interval) {
        if (interval % 4 == 0)
          mpi::send(b.data(), b.size(), mpi::Type::Byte, 1, 0, world);
        mpi::compute(0.01);
        pred.add_sample(static_cast<double>(sampler.sample()));
      }
      mpi::send(nullptr, 0, mpi::Type::Byte, 1, 9, world);  // stop
      const auto period = pred.detected_period();
      found_period = period.has_value() && *period == 4;
      // Next interval (index 96) is a burst: must not be called idle.
      idle_forecast_ok = !pred.underutilized_next();
    } else {
      for (;;) {
        std::vector<std::byte> b(50000);
        const mpi::Status st = mpi::recv(b.data(), b.size(), mpi::Type::Byte,
                                         0, mpi::kAnyTag, world);
        if (st.tag == 9) break;
      }
    }
  });
  EXPECT_TRUE(found_period);
  EXPECT_TRUE(idle_forecast_ok);
}

}  // namespace
}  // namespace mpim::predict
