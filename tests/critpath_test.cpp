// Causal critical-path profiler: happens-before capture, wait-state
// classification, the exact blame-sum identity, backward path extraction,
// clock bit-identity with the profiler on/off (including under crash +
// shrink + rebind), the governor's blame-only refusal rung, bounded-ring
// eviction, the MPI_M_critpath_* / Fortran surface, the reorder mismatch
// feed, and the CSV -> profview round trip.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "critpath/critpath.h"
#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "minimpi/ft.h"
#include "mpimon/critpath_attach.h"
#include "mpimon/fortran.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpit/runtime.h"
#include "reorder/reorder.h"
#include "telemetry/hub.h"
#include "tools/report.h"

namespace mpim::critpath {
namespace {

namespace fs = std::filesystem;
using mpi::Comm;
using mpi::Ctx;
using mpi::Engine;
using mpi::Type;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

mpi::EngineConfig small_cfg(int nranks,
                            std::shared_ptr<fault::FaultPlan> plan = nullptr) {
  topo::Topology t({2, 1, 4}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, /*send_overhead=*/1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                       .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 10.0;
  cfg.fault_plan = std::move(plan);
  return cfg;
}

/// Ring sendrecv iterations with one artificially slow rank: its neighbors
/// become late-sender waiters, its own inbox collects late-receiver dwell.
void slow_ring(Ctx& ctx, int slow_rank, double extra_s, int iters = 8) {
  const Comm world = ctx.world();
  const int n = mpi::comm_size(world);
  const int me = mpi::comm_rank(world);
  std::vector<char> buf(2048, 5);
  for (int it = 0; it < iters; ++it) {
    mpi::compute(1e-4);
    if (me == slow_rank) mpi::compute(extra_s);
    mpi::sendrecv(buf.data(), buf.size(), Type::Char, (me + 1) % n, 0,
                  buf.data(), buf.size(), (me + n - 1) % n, 0, world);
  }
  long v = me, sum = 0;
  mpi::allreduce(&v, &sum, 1, Type::Long, mpi::Op::Sum, world);
}

// --- blame identity and dominance --------------------------------------------

TEST(CritpathBlame, SumsExactlyToCommTimeAndNamesTheStraggler) {
  Engine eng(small_cfg(8));
  auto prof = Profiler::attach(eng);
  ASSERT_NE(prof, nullptr);
  EXPECT_EQ(Profiler::attached(eng), prof.get());
  eng.run([](Ctx& ctx) { slow_ring(ctx, /*slow_rank=*/3, /*extra_s=*/5e-4); });

  const BlameReport& rep = prof->report();
  ASSERT_TRUE(rep.valid);
  EXPECT_FALSE(rep.blame_only);
  EXPECT_GT(rep.total_comm_ns, 0u);
  EXPECT_GT(rep.total_wait_ns, 0u);

  // The identity is exact by construction, not approximate: every charged
  // wait appears once as its sufferer's own_wait and once as caused.
  std::uint64_t blame_sum = 0, caused_sum = 0, own_sum = 0;
  for (const RankBlame& r : rep.ranks) {
    blame_sum += r.blame_ns;
    caused_sum += r.caused_ns;
    own_sum += r.own_wait_ns;
  }
  EXPECT_EQ(blame_sum, rep.total_comm_ns);
  EXPECT_EQ(caused_sum, own_sum);
  EXPECT_EQ(own_sum, rep.total_wait_ns);

  // The injected straggler is the dominant cause, as a late sender.
  EXPECT_EQ(rep.dominant_rank, 3);
  EXPECT_EQ(rep.dominant_class, WaitClass::late_sender);
  for (const RankBlame& r : rep.ranks)
    if (r.rank != 3) EXPECT_GT(rep.ranks[3].caused_ns, r.caused_ns);

  // Links are sorted by descending charged wait; the critical link leaves
  // the straggler.
  ASSERT_FALSE(rep.links.empty());
  for (std::size_t i = 1; i < rep.links.size(); ++i)
    EXPECT_GE(rep.links[i - 1].wait_ns, rep.links[i].wait_ns);
  EXPECT_EQ(rep.critical_link.src, 3);
  EXPECT_GT(rep.critical_link.wait_ns, 0u);
  EXPECT_GT(rep.critical_link.bytes, 0u);

  // The extracted path is in forward time order with sane segments, and
  // the straggler owns time on it.
  ASSERT_FALSE(rep.path.empty());
  bool straggler_on_path = false;
  for (std::size_t i = 0; i < rep.path.size(); ++i) {
    EXPECT_LE(rep.path[i].t0, rep.path[i].t1);
    if (i > 0) EXPECT_LE(rep.path[i - 1].t1, rep.path[i].t0 + 1e-12);
    if (rep.path[i].rank == 3) straggler_on_path = true;
    EXPECT_FALSE(rep.path[i].tombstoned);  // nobody died
  }
  EXPECT_TRUE(straggler_on_path);

  // Phase cells fold the same charged waits.
  std::uint64_t phase_sum = 0;
  for (const PhaseBlame& p : rep.phases) phase_sum += p.wait_ns;
  EXPECT_EQ(phase_sum, rep.total_wait_ns);

  // report() is idempotent per run.
  EXPECT_EQ(&rep, &prof->report());
}

TEST(CritpathBlame, CollectiveWaitsAreClassified) {
  Engine eng(small_cfg(4));
  auto prof = Profiler::attach(eng);
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    for (int it = 0; it < 6; ++it) {
      if (mpi::comm_rank(world) == 1) mpi::compute(4e-4);
      long v = it, sum = 0;
      mpi::allreduce(&v, &sum, 1, Type::Long, mpi::Op::Sum, world);
    }
  });
  const BlameReport& rep = prof->report();
  ASSERT_TRUE(rep.valid);
  std::array<std::uint64_t, kNumClasses> cls{};
  for (const RankBlame& r : rep.ranks)
    for (int c = 0; c < kNumClasses; ++c) cls[static_cast<std::size_t>(c)] +=
        r.class_ns[static_cast<std::size_t>(c)];
  EXPECT_GT(cls[kClassWaitCollective] + cls[kClassRootImbalance], 0u);
  // Charged classes (everything but the informational late-receiver dwell)
  // add up to the total classified wait.
  EXPECT_EQ(cls[kClassLateSender] + cls[kClassWaitCollective] +
                cls[kClassRootImbalance],
            rep.total_wait_ns);
  EXPECT_EQ(rep.dominant_rank, 1);
}

// --- determinism -------------------------------------------------------------

TEST(CritpathClocks, BitIdenticalProfilerOnAndOff) {
  Engine bare(small_cfg(6));
  bare.run([](Ctx& ctx) { slow_ring(ctx, 2, 3e-4); });
  const std::vector<double> base = bare.final_clocks();

  Engine profiled(small_cfg(6));
  auto prof = Profiler::attach(profiled);
  profiled.run([](Ctx& ctx) { slow_ring(ctx, 2, 3e-4); });
  ASSERT_GT(prof->report().total_wait_ns, 0u);  // it actually observed

  const std::vector<double> observed = profiled.final_clocks();
  ASSERT_EQ(base.size(), observed.size());
  for (std::size_t r = 0; r < base.size(); ++r)
    EXPECT_EQ(base[r], observed[r]) << "rank " << r;
}

TEST(CritpathClocks, BitIdenticalUnderCrashAndShrinkWithDeadRankFlagged) {
  auto plan = [] {
    auto p = std::make_shared<fault::FaultPlan>(1);
    fault::RankFault crash;
    crash.rank = 2;
    crash.crash_at_s = 1e-3;
    p->add(crash);
    return p;
  };
  const auto workload = [](Ctx& ctx) {
    const Comm world = ctx.world();
    mpi::comm_set_errhandler(world, mpi::ErrMode::ret);
    if (ctx.world_rank() == 2) {
      mpi::compute(1.0);
      return;
    }
    const Comm alive = mpi::comm_shrink(world);
    ASSERT_FALSE(alive.is_null());
    const int me = mpi::comm_rank(alive);
    const int n = mpi::comm_size(alive);
    if (me == 0) mpi::compute(3e-4);  // some post-shrink waiting to classify
    int token = me;
    mpi::send(&token, 1, Type::Int, (me + 1) % n, 9, alive);
    mpi::recv(&token, 1, Type::Int, (me + n - 1) % n, 9, alive);
  };

  Engine bare(small_cfg(4, plan()));
  bare.run(workload);
  const std::vector<double> base = bare.final_clocks();

  Engine profiled(small_cfg(4, plan()));
  auto prof = Profiler::attach(profiled);
  profiled.run(workload);
  EXPECT_EQ(base, profiled.final_clocks());

  const BlameReport& rep = prof->report();
  ASSERT_TRUE(rep.valid);
  ASSERT_EQ(rep.ranks.size(), 4u);
  EXPECT_TRUE(rep.ranks[2].dead);
  EXPECT_FALSE(rep.ranks[0].dead);
  // Blame identity holds with a tombstoned rank in the report.
  std::uint64_t blame_sum = 0;
  for (const RankBlame& r : rep.ranks) blame_sum += r.blame_ns;
  EXPECT_EQ(blame_sum, rep.total_comm_ns);
}

TEST(CritpathClocks, RerunResetsLanesAndStaysDeterministic) {
  Engine eng(small_cfg(4));
  auto prof = Profiler::attach(eng);
  eng.run([](Ctx& ctx) { slow_ring(ctx, 1, 2e-4, /*iters=*/4); });
  const std::vector<double> first = eng.final_clocks();
  const std::uint64_t first_wait = prof->report().total_wait_ns;
  ASSERT_GT(first_wait, 0u);

  eng.run([](Ctx& ctx) { slow_ring(ctx, 1, 2e-4, /*iters=*/4); });
  EXPECT_EQ(first, eng.final_clocks());
  // The rerun re-captured from scratch: same workload, same totals.
  EXPECT_EQ(prof->report().total_wait_ns, first_wait);
}

// --- memory governance -------------------------------------------------------

TEST(CritpathGovernor, RefusalDegradesToBlameOnlyMode) {
  ::setenv("MPIM_MEM_BUDGET_BYTES", "64", 1);
  Engine eng(small_cfg(4));
  eng.telemetry().set_enabled(true);  // the mirror gauge is enabled-gated
  mpit::Runtime tool(eng);
  auto prof = mon::attach_critpath(eng);
  eng.run([](Ctx& ctx) { slow_ring(ctx, 1, 3e-4, /*iters=*/4); });
  ::unsetenv("MPIM_MEM_BUDGET_BYTES");

  EXPECT_TRUE(prof->blame_only());
  const BlameReport& rep = prof->report();
  ASSERT_TRUE(rep.valid);
  EXPECT_TRUE(rep.blame_only);
  // Accumulators keep the full story: identity, dominance, classes.
  std::uint64_t blame_sum = 0;
  for (const RankBlame& r : rep.ranks) blame_sum += r.blame_ns;
  EXPECT_EQ(blame_sum, rep.total_comm_ns);
  EXPECT_GT(rep.total_wait_ns, 0u);
  EXPECT_EQ(rep.dominant_rank, 1);
  // No rings: the path degenerates to the dominant rank's whole lane.
  ASSERT_EQ(rep.path.size(), 1u);
  EXPECT_EQ(rep.path[0].rank, 1);
  // The refusal is visible as a gauge.
  const telemetry::Hub& hub = eng.telemetry();
  EXPECT_EQ(hub.registry().scalar_value(hub.ids().critpath_blame_only, 0), 1u);
}

TEST(CritpathGovernor, UngovernedRunsKeepTheirRings) {
  Engine eng(small_cfg(4));
  auto prof = mon::attach_critpath(eng);  // no budget set -> full grant
  eng.run([](Ctx& ctx) { slow_ring(ctx, 0, 2e-4, /*iters=*/4); });
  EXPECT_FALSE(prof->blame_only());
  EXPECT_FALSE(prof->report().blame_only);
  for (int r = 0; r < 4; ++r) EXPECT_GT(prof->local_totals(r).events, 0u);
  ASSERT_FALSE(prof->report().path.empty());
}

TEST(CritpathRings, TinyRingEvictsOldestButAccumulatorsStayExact) {
  Engine eng(small_cfg(4));
  Config cfg;
  cfg.ring_capacity = 16;  // the floor: one step smaller means blame-only
  auto prof = Profiler::attach(eng, cfg);
  eng.run([](Ctx& ctx) { slow_ring(ctx, 1, 2e-4, /*iters=*/32); });

  bool dropped = false;
  for (int r = 0; r < 4; ++r)
    if (prof->local_totals(r).dropped > 0) dropped = true;
  EXPECT_TRUE(dropped);

  const BlameReport& rep = prof->report();
  ASSERT_TRUE(rep.valid);
  EXPECT_FALSE(rep.blame_only);
  std::uint64_t blame_sum = 0;
  for (const RankBlame& r : rep.ranks) blame_sum += r.blame_ns;
  EXPECT_EQ(blame_sum, rep.total_comm_ns);  // eviction never loses blame
  EXPECT_EQ(rep.dominant_rank, 1);
  ASSERT_FALSE(rep.path.empty());  // the bounded ring still yields a path
}

// --- MPI_M surface -----------------------------------------------------------

TEST(CritpathApi, MonitoringCallsReadTheCallersOwnLane) {
  Engine eng(small_cfg(4));
  mpit::Runtime tool(eng);
  auto prof = mon::attach_critpath(eng);
  std::atomic<bool> saw_wait{false};
  eng.run([&](Ctx& ctx) {
    slow_ring(ctx, 1, 4e-4, /*iters=*/6);

    int events = -1, dropped = -1, blame_only = -1;
    ASSERT_EQ(MPI_M_critpath_info(&events, &dropped, &blame_only),
              MPI_M_SUCCESS);
    EXPECT_GT(events, 0);
    EXPECT_EQ(blame_only, 0);

    unsigned long ls = 0, lr = 0, wc = 0, ri = 0;
    ASSERT_EQ(MPI_M_critpath_classes(&ls, &lr, &wc, &ri), MPI_M_SUCCESS);

    std::array<unsigned long, 8> waits{};
    int count = 0;
    ASSERT_EQ(MPI_M_critpath_waits(waits.data(),
                                   static_cast<int>(waits.size()), &count),
              MPI_M_SUCCESS);
    EXPECT_EQ(count, 4);

    int peer = -2;
    unsigned long peer_ns = 0;
    ASSERT_EQ(MPI_M_critpath_dominant(&peer, &peer_ns), MPI_M_SUCCESS);
    if (ctx.world_rank() == 2) {
      // Rank 2 receives its ring predecessor 1 late every iteration.
      EXPECT_EQ(peer, 1);
      EXPECT_GT(peer_ns, 0ul);
      EXPECT_EQ(waits[1], peer_ns);
      if (ls > 0) saw_wait.store(true);
    }

    // Disarm: the lane freezes while traffic continues.
    ASSERT_EQ(MPI_M_critpath_stop(), MPI_M_SUCCESS);
    int frozen = -1;
    ASSERT_EQ(MPI_M_critpath_info(&frozen, nullptr, nullptr), MPI_M_SUCCESS);
    slow_ring(ctx, 1, 1e-4, /*iters=*/2);
    int still = -1;
    ASSERT_EQ(MPI_M_critpath_info(&still, nullptr, nullptr), MPI_M_SUCCESS);
    EXPECT_EQ(still, frozen);
    // Re-arm: capture resumes.
    ASSERT_EQ(MPI_M_critpath_start(), MPI_M_SUCCESS);
    slow_ring(ctx, 1, 1e-4, /*iters=*/2);
    int resumed = -1;
    ASSERT_EQ(MPI_M_critpath_info(&resumed, nullptr, nullptr), MPI_M_SUCCESS);
    EXPECT_GT(resumed, still);
  });
  EXPECT_TRUE(saw_wait.load());
}

TEST(CritpathApi, NoProfilerMeansNoCritpathError) {
  Engine eng(small_cfg(2));
  mpit::Runtime tool(eng);
  eng.run([](Ctx&) {
    EXPECT_EQ(MPI_M_critpath_info(nullptr, nullptr, nullptr),
              MPI_M_NO_CRITPATH);
    EXPECT_EQ(MPI_M_critpath_start(), MPI_M_NO_CRITPATH);
    EXPECT_EQ(MPI_M_critpath_stop(), MPI_M_NO_CRITPATH);
    EXPECT_EQ(MPI_M_critpath_dominant(nullptr, nullptr), MPI_M_NO_CRITPATH);
  });
  EXPECT_NE(
      std::string(MPI_M_error_string(MPI_M_NO_CRITPATH)).find("CRITPATH"),
      std::string::npos);
}

TEST(CritpathApi, FortranShimsForwardToTheCApi) {
  Engine eng(small_cfg(4));
  mpit::Runtime tool(eng);
  auto prof = mon::attach_critpath(eng);
  eng.run([](Ctx& ctx) {
    slow_ring(ctx, 1, 3e-4, /*iters=*/4);

    int events = -1, dropped = -1, blame_only = -1, ierr = -1;
    mpi_m_critpath_info_(&events, &dropped, &blame_only, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    EXPECT_GT(events, 0);

    unsigned long ls = 0, lr = 0, wc = 0, ri = 0;
    mpi_m_critpath_classes_(&ls, &lr, &wc, &ri, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    std::array<unsigned long, 4> waits{};
    const int capacity = 4;
    int count = 0;
    mpi_m_critpath_waits_(waits.data(), &capacity, &count, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    EXPECT_EQ(count, 4);

    int peer = -2;
    unsigned long peer_ns = 0;
    mpi_m_critpath_dominant_(&peer, &peer_ns, &ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);

    mpi_m_critpath_stop_(&ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
    mpi_m_critpath_start_(&ierr);
    ASSERT_EQ(ierr, MPI_M_SUCCESS);
  });
  EXPECT_GT(prof->report().total_wait_ns, 0u);
}

// --- reorder feed ------------------------------------------------------------

TEST(CritpathReorder, MismatchDominanceFiresThePhaseHookAndAdvancesMarks) {
  Engine eng(small_cfg(8));
  mpit::Runtime tool(eng);
  auto prof = mon::attach_critpath(eng);
  std::atomic<bool> fired{false};
  std::atomic<unsigned long> wait_after_mark{~0ul};
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_start(id, 1e-3, 64, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    int seen = 0;

    // Steady traffic; absorb whatever boundary the startup edge flagged.
    slow_ring(ctx, 3, 4e-4, /*iters=*/6);
    reorder::reorder_on_phase(id, world, &seen, nullptr);

    // More of the same steady pattern: no new boundary, but the straggler
    // keeps charging cross-node waits -- the mismatch trigger must fire.
    slow_ring(ctx, 3, 4e-4, /*iters=*/6);
    bool t = false;
    reorder::PhaseReorderOptions opts;
    opts.use_critpath_mismatch = true;
    opts.min_wait_ns = 0;
    reorder::reorder_on_phase(id, world, &seen, &t, opts);
    if (ctx.world_rank() == 0) {
      fired.store(t);
      wait_after_mark.store(static_cast<unsigned long>(
          Profiler::attached(ctx.engine())->wait_since_mark(0)));
    }

    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_stop(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
  });
  EXPECT_TRUE(fired.load());
  // The firing advanced the mark, so the next window starts near zero.
  EXPECT_EQ(wait_after_mark.load(), 0ul);
  EXPECT_GT(prof->report().total_wait_ns, 0u);
}

TEST(CritpathReorder, FeedCollectiveRunsWithoutAProfilerAndClocksMatch) {
  // A fired reorder charges rank 0's *measured host* TreeMatch CPU time to
  // the virtual clock (the paper's t2), which is nondeterministic across
  // runs profiler or not -- so this test pins both hooks to "no fire": a
  // one-window snapshot never flags a boundary, and a wait floor no real
  // wait reaches mutes the mismatch trigger. What remains is exactly the
  // machinery under test: the agreement collectives (including the
  // unconditional critpath consult) plus capture, which must cost zero
  // virtual time.
  const auto workload = [](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    MPI_M_msid id;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_start(id, /*window_s=*/10.0, 64, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    int seen = 0;
    slow_ring(ctx, 1, 2e-4, /*iters=*/4);
    bool t1 = false;
    reorder::reorder_on_phase(id, world, &seen, &t1);
    EXPECT_FALSE(t1);
    slow_ring(ctx, 1, 2e-4, /*iters=*/4);
    bool t = false;
    reorder::PhaseReorderOptions opts;
    opts.use_critpath_mismatch = true;
    opts.min_wait_ns = ~0ull >> 1;
    reorder::reorder_on_phase(id, world, &seen, &t, opts);
    EXPECT_FALSE(t);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_stop(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
  };

  Engine bare(small_cfg(4));
  mpit::Runtime bare_tool(bare);
  bare.run(workload);
  const std::vector<double> base = bare.final_clocks();

  Engine profiled(small_cfg(4));
  mpit::Runtime prof_tool(profiled);
  auto prof = mon::attach_critpath(profiled);
  profiled.run(workload);
  ASSERT_GT(prof->report().total_wait_ns, 0u);
  EXPECT_EQ(base, profiled.final_clocks());
}

// --- CSV round trip ----------------------------------------------------------

TEST(CritpathTools, CsvRoundTripRendersBlameTableAndLanes) {
  Engine eng(small_cfg(6));
  auto prof = Profiler::attach(eng);
  eng.run([](Ctx& ctx) { slow_ring(ctx, 2, 4e-4); });

  const std::string path = temp_path("critpath_roundtrip.csv");
  std::remove(path.c_str());
  ASSERT_TRUE(prof->write_csv(path));

  std::ostringstream os;
  tools::report_critpath(path, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("critical path / wait states"), std::string::npos);
  EXPECT_NE(out.find("dominant cause     : rank 2"), std::string::npos);
  EXPECT_NE(out.find("blame shares"), std::string::npos);
  EXPECT_NE(out.find("hottest links"), std::string::npos);
  EXPECT_NE(out.find("late_sender"), std::string::npos);
  EXPECT_NE(out.find("per-phase blame"), std::string::npos);
  EXPECT_NE(out.find("critical path ("), std::string::npos);
  EXPECT_NE(out.find("rank 2\t|"), std::string::npos);  // a lane rendered
  std::remove(path.c_str());
}

TEST(CritpathTools, RendererRejectsMissingOrForeignFilesWithClearErrors) {
  try {
    std::ostringstream os;
    tools::report_critpath(temp_path("critpath_nope.csv"), os);
    FAIL() << "missing file should be rejected";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }

  const std::string path = temp_path("critpath_foreign.csv");
  {
    std::ofstream f(path);
    f << "this,is,not,a,critpath,file\n";
  }
  try {
    std::ostringstream os;
    tools::report_critpath(path, os);
    FAIL() << "foreign file should be rejected";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("not a critpath csv"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpim::critpath
