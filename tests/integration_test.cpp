// Cross-module scenarios straight from the paper.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "apps/cg.h"
#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "reorder/reorder.h"

namespace mpim {
namespace {

using apps::CgConfig;
using apps::CgResult;
using apps::CgSolver;
using mpi::Comm;
using mpi::Ctx;

Sim plafrim_sim(int nodes, int nranks) {
  auto cost = net::CostModel::plafrim_like(nodes);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(nranks, cost.topology())};
  cfg.watchdog_wall_timeout_s = 20.0;
  return Sim(std::move(cfg));
}

TEST(Integration, Listing2BarrierDecomposition) {
  // The paper's Listing 2: produce a file that describes all
  // point-to-point messages used to implement MPI_Barrier.
  namespace fs = std::filesystem;
  const std::string base = (fs::temp_directory_path() / "barrier").string();
  Sim sim = plafrim_sim(1, 8);
  sim.run([&](Ctx& ctx) {
    MPI_M_init();
    MPI_M_msid id;
    MPI_M_start(ctx.world(), &id);
    mpi::barrier(ctx.world());
    MPI_M_suspend(id);
    // Note: the barrier decomposes to *coll*-class point-to-point traffic;
    // Listing 2 uses MPI_M_P2P_ONLY against an Open MPI stack that tags
    // those messages as p2p. We query the collective class explicitly.
    ASSERT_EQ(MPI_M_rootflush(id, 0, base.c_str(), MPI_M_COLL_ONLY),
              MPI_M_SUCCESS);
    MPI_M_free(id);
    MPI_M_finalize();
  });
  std::ifstream is(base + "_counts.0.prof");
  ASSERT_TRUE(is.good());
  // A dissemination barrier on 8 ranks: every rank sent 3 messages.
  unsigned long total = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    unsigned long v;
    while (ls >> v) total += v;
  }
  EXPECT_EQ(total, 24u);
  for (const char* kind : {"_counts", "_sizes"})
    std::remove((base + kind + ".0.prof").c_str());
}

TEST(Integration, BcastBinomialTreeShapeIsVisible) {
  // The affinity matrix of a monitored broadcast must be exactly the
  // binomial tree: root 0 sends to 4, 2, 1; rank 4 to 6, 5; etc.
  Sim sim = plafrim_sim(1, 8);
  CommMatrix counts;
  sim.run([&](Ctx& ctx) {
    mon::Environment env;
    mon::Session s(ctx.world());
    int v = 1;
    mpi::bcast(&v, 1, mpi::Type::Int, 0, ctx.world());
    s.suspend();
    const CommMatrix m = s.gather_counts(MPI_M_COLL_ONLY);
    if (ctx.world_rank() == 0) counts = m;
  });
  auto expect_edge = [&](int from, int to) {
    EXPECT_EQ(counts(static_cast<std::size_t>(from),
                     static_cast<std::size_t>(to)),
              1u)
        << from << "->" << to;
  };
  expect_edge(0, 4);
  expect_edge(0, 2);
  expect_edge(0, 1);
  expect_edge(4, 6);
  expect_edge(4, 5);
  expect_edge(2, 3);
  expect_edge(6, 7);
  EXPECT_EQ(counts.sum(), 7u);  // exactly n-1 messages in a bcast tree
}

TEST(Integration, CgMonitorReorderImprovesCommTime) {
  // Fig. 7 in miniature: CG on a scattered placement, monitored first
  // iteration, reorder, re-setup, compare communication time.
  const int nranks = 16;
  auto cost = net::CostModel::plafrim_like(4, 1, 4);  // 4 nodes x 4 cores
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::random_placement(nranks, cost.topology(), 13)};
  cfg.watchdog_wall_timeout_s = 20.0;
  Sim sim(std::move(cfg));

  double t_plain = 0, t_reordered = 0, c_plain = 0, c_reordered = 0;
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const CgConfig cc{96, 10, 5};
    mon::check_rc(MPI_M_init(), "init");

    // Baseline solve on the original communicator.
    CgSolver plain(world, cc);
    const CgResult base = plain.solve();

    // Monitored init iteration + reordering (Fig. 1 algorithm).
    CgSolver init_solver(world, cc);
    const auto res = reorder::monitor_and_reorder(
        world, [&](const Comm&) { init_solver.iteration(); });
    CgSolver opt(res.opt_comm, cc);
    const CgResult better = opt.solve();

    if (mpi::comm_rank(world) == 0) {
      t_plain = base.total_time_s;
      c_plain = base.comm_time_s;
    }
    if (mpi::comm_rank(res.opt_comm) == 0) {
      t_reordered = better.total_time_s;
      c_reordered = better.comm_time_s;
    }
    // Same numerics irrespective of the mapping.
    EXPECT_NEAR(base.residual_norm2, better.residual_norm2,
                1e-9 * std::abs(base.residual_norm2) + 1e-30);
    mon::check_rc(MPI_M_finalize(), "finalize");
  });
  EXPECT_LT(c_reordered, c_plain);
  EXPECT_LT(t_reordered, t_plain);
}

TEST(Integration, SessionsSeparateTwoCollectives) {
  // Section 4.5: one session per collective call distinguishes which send
  // belongs to which collective.
  Sim sim = plafrim_sim(1, 8);
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    MPI_M_msid s_bcast, s_reduce;
    mon::check_rc(MPI_M_start(world, &s_bcast), "start");
    std::vector<int> buf(1000);
    mpi::bcast(buf.data(), buf.size(), mpi::Type::Int, 0, world);
    mon::check_rc(MPI_M_suspend(s_bcast), "suspend");

    mon::check_rc(MPI_M_start(world, &s_reduce), "start");
    std::vector<int> out(1000);
    mpi::reduce(buf.data(), out.data(), buf.size(), mpi::Type::Int,
                mpi::Op::Max, 0, world);
    mon::check_rc(MPI_M_suspend(s_reduce), "suspend");

    CommMatrix mb = CommMatrix::square(8), mr = CommMatrix::square(8);
    mon::check_rc(MPI_M_allgather_data(s_bcast, mb.data(), MPI_M_DATA_IGNORE,
                                       MPI_M_COLL_ONLY),
                  "gather");
    mon::check_rc(MPI_M_allgather_data(s_reduce, mr.data(),
                                       MPI_M_DATA_IGNORE, MPI_M_COLL_ONLY),
                  "gather");
    // Bcast: root sends, leaves receive => row 0 non-empty, column 0 empty.
    // Reduce: leaves send toward the root => column 0 non-empty.
    unsigned long row0_b = 0, col0_b = 0, row0_r = 0, col0_r = 0;
    for (std::size_t i = 1; i < 8; ++i) {
      row0_b += mb(0, i);
      col0_b += mb(i, 0);
      row0_r += mr(0, i);
      col0_r += mr(i, 0);
    }
    EXPECT_GT(row0_b, 0u);
    EXPECT_EQ(col0_b, 0u);
    EXPECT_EQ(row0_r, 0u);
    EXPECT_GT(col0_r, 0u);
    MPI_M_free(MPI_M_ALL_MSID);
  });
}

TEST(Integration, MonitoringOverheadIsTiny) {
  // Fig. 4 in miniature: the virtual-time difference between a monitored
  // and an unmonitored reduce stays in the microsecond range.
  auto run_reduce = [](bool monitored) {
    Sim sim = plafrim_sim(2, 48);
    double t = 0;
    sim.run([&](Ctx& ctx) {
      const Comm world = ctx.world();
      MPI_M_msid id = -1;
      if (monitored) {
        MPI_M_init();
        MPI_M_start(world, &id);
      }
      const double t0 = mpi::wtime();
      mpi::reduce(nullptr, nullptr, 256, mpi::Type::Int, mpi::Op::Max, 0,
                  world);
      if (mpi::comm_rank(world) == 0) t = mpi::wtime() - t0;
      if (monitored) {
        MPI_M_suspend(id);
        MPI_M_free(id);
        MPI_M_finalize();
      }
    });
    return t;
  };
  const double diff = run_reduce(true) - run_reduce(false);
  EXPECT_GE(diff, 0.0);
  EXPECT_LT(diff, 5e-6);  // the paper's "< 5 us worst case"
}

}  // namespace
}  // namespace mpim
