#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "support/env.h"
#include "support/matrix.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace mpim {
namespace {

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64CoversRange) {
  Rng rng(5);
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i) seen[rng.uniform_u64(0, 4)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(17);
  double acc = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(3);
  shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// --- stats -------------------------------------------------------------------

TEST(Stats, MeanVarianceBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
  EXPECT_NEAR(stats::variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats::stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(stats::median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(stats::median(std::vector<double>{4.0, 1.0, 2.0, 3.0}),
                   2.5);
}

TEST(Stats, NormalQuantileKnownValues) {
  EXPECT_NEAR(stats::normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(stats::normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(stats::normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(stats::normal_quantile(0.84134474), 1.0, 1e-5);
}

TEST(Stats, TQuantileApproachesNormal) {
  EXPECT_NEAR(stats::t_quantile(0.975, 1e9), stats::normal_quantile(0.975),
              1e-6);
}

TEST(Stats, TQuantileKnownValues) {
  // Reference values from standard t tables.
  EXPECT_NEAR(stats::t_quantile(0.975, 10), 2.228, 5e-3);
  EXPECT_NEAR(stats::t_quantile(0.975, 30), 2.042, 5e-3);
  EXPECT_NEAR(stats::t_quantile(0.95, 20), 1.725, 5e-3);
}

TEST(Stats, WelchDetectsClearDifference) {
  std::vector<double> a(50), b(50);
  Rng rng(1);
  for (auto& x : a) x = 10.0 + rng.uniform();
  for (auto& x : b) x = 0.0 + rng.uniform();
  const auto res = stats::welch_interval(a, b);
  EXPECT_TRUE(res.significant);
  EXPECT_NEAR(res.mean_diff, 10.0, 0.2);
}

TEST(Stats, WelchInsignificantForSameDistribution) {
  std::vector<double> a(100), b(100);
  Rng rng(2);
  for (auto& x : a) x = rng.uniform();
  for (auto& x : b) x = rng.uniform();
  const auto res = stats::welch_interval(a, b);
  EXPECT_FALSE(res.significant);
}

TEST(Stats, WelchDegenerateConstantSamples) {
  const std::vector<double> a{2.0, 2.0, 2.0};
  const std::vector<double> b{2.0, 2.0};
  const auto res = stats::welch_interval(a, b);
  EXPECT_FALSE(res.significant);
  EXPECT_DOUBLE_EQ(res.mean_diff, 0.0);
}

// --- matrix ------------------------------------------------------------------

TEST(Matrix, IndexingAndFlatLayoutRowMajor) {
  Matrix<int> m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 3;
  m(1, 1) = 5;
  EXPECT_EQ(m.flat()[0], 1);
  EXPECT_EQ(m.flat()[2], 3);
  EXPECT_EQ(m.flat()[4], 5);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix<int> m(2, 2);
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 2), Error);
}

TEST(Matrix, SymmetrizedAddsTranspose) {
  CommMatrix m = CommMatrix::square(2);
  m(0, 1) = 3;
  m(1, 0) = 5;
  const CommMatrix s = m.symmetrized();
  EXPECT_EQ(s(0, 1), 8u);
  EXPECT_EQ(s(1, 0), 8u);
  EXPECT_EQ(s(0, 0), 0u);
}

TEST(Matrix, SumAndRowView) {
  Matrix<unsigned long> m(2, 2, 1ul);
  EXPECT_EQ(m.sum(), 4ul);
  m.row(1)[0] = 10;
  EXPECT_EQ(m(1, 0), 10ul);
}

// --- table -------------------------------------------------------------------

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add("x", 1);
  t.add("longer", 2.5);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a"});
  t.add_row({"va\"l,ue"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"va\"\"l,ue\""), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Formatting, HumanReadableHelpers) {
  EXPECT_EQ(format_bytes(1500.0), "1.5 KB");
  EXPECT_EQ(format_seconds(0.0123), "12.3 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.5 us");
  EXPECT_EQ(format_sig(3.14159, 3), "3.14");
}

// --- strict keyword environment parsing --------------------------------------

TEST(EnvChoice, MatchesWholeKeywordsCaseInsensitively) {
  static const char* const kLevels[] = {"debug", "info", "warn", "error"};
  const auto parse = [&](const char* text) {
    ::setenv("MPIM_TEST_ENV_C", text, 1);
    return support::env_choice("MPIM_TEST_ENV_C", kLevels, 4);
  };

  ::unsetenv("MPIM_TEST_ENV_C");
  EXPECT_EQ(support::env_choice("MPIM_TEST_ENV_C", kLevels, 4).status,
            support::EnvValue<int>::Status::unset);

  EXPECT_EQ(parse("debug").value, 0);
  EXPECT_EQ(parse("error").value, 3);
  EXPECT_EQ(parse("WARN").value, 2);     // case-insensitive
  EXPECT_EQ(parse(" info ").value, 1);   // surrounding whitespace tolerated

  EXPECT_TRUE(parse("warning").invalid());  // no prefix/suffix matching
  EXPECT_TRUE(parse("war").invalid());
  EXPECT_TRUE(parse("warn error").invalid());  // one keyword only
  EXPECT_TRUE(parse("2").invalid());           // numbers are not keywords
  EXPECT_TRUE(parse("").invalid());
  EXPECT_TRUE(parse("   ").invalid());
  EXPECT_EQ(parse("banana").raw, "banana");  // raw text kept for diagnostics
  ::unsetenv("MPIM_TEST_ENV_C");
}

TEST(EnvBool, AcceptsTheFourSpellingPairsAndNothingElse) {
  const auto parse = [](const char* text) {
    ::setenv("MPIM_TEST_ENV_B", text, 1);
    return support::env_bool("MPIM_TEST_ENV_B");
  };

  ::unsetenv("MPIM_TEST_ENV_B");
  EXPECT_EQ(support::env_bool("MPIM_TEST_ENV_B").status,
            support::EnvValue<bool>::Status::unset);

  for (const char* yes : {"1", "true", "on", "yes", "TRUE", "On", " yes "}) {
    const auto v = parse(yes);
    EXPECT_TRUE(v.ok()) << yes;
    EXPECT_TRUE(v.value) << yes;
  }
  for (const char* no : {"0", "false", "off", "no", "FALSE", "Off"}) {
    const auto v = parse(no);
    EXPECT_TRUE(v.ok()) << no;
    EXPECT_FALSE(v.value) << no;
  }

  // Garbage must be invalid, never guessed at: MPIM_TELEMETRY=2 silently
  // enabling (or disabling) telemetry is exactly the bug class this blocks.
  for (const char* bad : {"2", "-1", "enable", "truee", "y", "t", "on off",
                          "", "   ", "1;echo", "\ttrue false"}) {
    const auto v = parse(bad);
    EXPECT_TRUE(v.invalid()) << "\"" << bad << "\"";
  }
  EXPECT_EQ(parse("maybe").raw, "maybe");  // raw text kept for the warn log
  ::unsetenv("MPIM_TEST_ENV_B");
}

TEST(EnvNonemptyString, RejectsBlankPathsKeepsEverythingElseVerbatim) {
  const auto parse = [](const char* text) {
    ::setenv("MPIM_TEST_ENV_S", text, 1);
    return support::env_nonempty_string("MPIM_TEST_ENV_S");
  };

  ::unsetenv("MPIM_TEST_ENV_S");
  EXPECT_EQ(support::env_nonempty_string("MPIM_TEST_ENV_S").status,
            support::EnvValue<std::string>::Status::unset);

  // Blank values would silently create a file named "" or "   ".
  for (const char* bad : {"", " ", "   ", "\t", " \t\n "})
    EXPECT_TRUE(parse(bad).invalid()) << "\"" << bad << "\"";

  // Anything with substance is kept verbatim -- no trimming, so relative
  // paths with embedded or leading spaces still round-trip.
  EXPECT_EQ(parse("run.jsonl").value, "run.jsonl");
  EXPECT_EQ(parse("/tmp/a b/c.csv").value, "/tmp/a b/c.csv");
  EXPECT_EQ(parse(" padded.txt ").value, " padded.txt ");
  EXPECT_EQ(parse("-").value, "-");
  ::unsetenv("MPIM_TEST_ENV_S");
}

}  // namespace
}  // namespace mpim
