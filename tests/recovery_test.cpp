// Fault recovery: the ULFM-style primitives (ack / get_failed / revoke /
// shrink / agree), monitoring-session rebind onto a shrunk communicator,
// the failure-aware dead-skip gathers, the degradation governor, and the
// strict environment parsing backing them. Each ctest case runs in its own
// process, so setenv/unsetenv inside a test cannot leak across cases.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "minimpi/ft.h"
#include "mpimon/governor.h"
#include "mpimon/mpi_monitoring.h"
#include "mpit/runtime.h"
#include "support/env.h"
#include "telemetry/hub.h"

namespace mpim::mpi {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

EngineConfig recovery_cfg(int nranks,
                          std::shared_ptr<fault::FaultPlan> plan = nullptr) {
  topo::Topology t({2, 1, 4}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, /*send_overhead=*/1e-7);
  EngineConfig cfg{.cost_model = cost,
                   .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 5.0;
  cfg.fault_plan = std::move(plan);
  return cfg;
}

std::shared_ptr<fault::FaultPlan> crash_plan(
    std::vector<std::pair<int, double>> crashes) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  for (const auto& [rank, at_s] : crashes) {
    fault::RankFault crash;
    crash.rank = rank;
    crash.crash_at_s = at_s;
    plan->add(crash);
  }
  return plan;
}

// --- strict environment parsing (satellite a) --------------------------------

TEST(RecoveryEnv, PositiveDoubleParsesWholeStringOnly) {
  ::unsetenv("MPIM_TEST_ENV_D");
  EXPECT_EQ(support::env_positive_double("MPIM_TEST_ENV_D").status,
            support::EnvValue<double>::Status::unset);

  const auto expect_ok = [](const char* text, double want) {
    ::setenv("MPIM_TEST_ENV_D", text, 1);
    const auto v = support::env_positive_double("MPIM_TEST_ENV_D");
    EXPECT_TRUE(v.ok()) << "text=\"" << text << "\"";
    EXPECT_DOUBLE_EQ(v.value, want);
  };
  const auto expect_invalid = [](const char* text) {
    ::setenv("MPIM_TEST_ENV_D", text, 1);
    const auto v = support::env_positive_double("MPIM_TEST_ENV_D");
    EXPECT_TRUE(v.invalid()) << "text=\"" << text << "\"";
    EXPECT_EQ(v.raw, text);
  };
  expect_ok("0.5", 0.5);
  expect_ok("1e3", 1000.0);
  expect_ok("2.5 ", 2.5);  // trailing whitespace tolerated
  expect_invalid("5s");    // units are not numbers
  expect_invalid("-3");
  expect_invalid("0");
  expect_invalid("nan");
  expect_invalid("inf");
  expect_invalid("");
  expect_invalid("1e999");  // overflow
  ::unsetenv("MPIM_TEST_ENV_D");
}

TEST(RecoveryEnv, PositiveU64RejectsSignsPartialParsesAndOverflow) {
  const auto expect_ok = [](const char* text, std::uint64_t want) {
    ::setenv("MPIM_TEST_ENV_U", text, 1);
    const auto v = support::env_positive_u64("MPIM_TEST_ENV_U");
    EXPECT_TRUE(v.ok()) << "text=\"" << text << "\"";
    EXPECT_EQ(v.value, want);
  };
  const auto expect_invalid = [](const char* text) {
    ::setenv("MPIM_TEST_ENV_U", text, 1);
    EXPECT_TRUE(support::env_positive_u64("MPIM_TEST_ENV_U").invalid())
        << "text=\"" << text << "\"";
  };
  expect_ok("123", 123u);
  expect_ok("18446744073709551615", ~0ull);  // UINT64_MAX is still > 0
  expect_invalid("12x");
  expect_invalid("-1");
  expect_invalid("+5");  // explicit signs rejected: digits only
  expect_invalid("0");
  expect_invalid("18446744073709551616");  // overflow
  ::unsetenv("MPIM_TEST_ENV_U");
}

TEST(RecoveryEnv, GatherTimeoutFallsBackToDefaultOnGarbage) {
  // Callable outside any engine: resolves from the environment directly.
  ::setenv("MPIM_GATHER_TIMEOUT_S", "banana", 1);
  EXPECT_DOUBLE_EQ(MPI_M_get_gather_timeout(), 5.0);
  ::setenv("MPIM_GATHER_TIMEOUT_S", "-2", 1);
  EXPECT_DOUBLE_EQ(MPI_M_get_gather_timeout(), 5.0);
  ::setenv("MPIM_GATHER_TIMEOUT_S", "0.75", 1);
  EXPECT_DOUBLE_EQ(MPI_M_get_gather_timeout(), 0.75);
  ::unsetenv("MPIM_GATHER_TIMEOUT_S");
  EXPECT_DOUBLE_EQ(MPI_M_get_gather_timeout(), 5.0);
}

TEST(RecoveryEnv, WatchdogOverrideIgnoresInvalidValues) {
  auto cfg = recovery_cfg(2);
  cfg.watchdog_wall_timeout_s = 2.0;
  ::setenv("MPIM_WATCHDOG_S", "soon", 1);
  {
    Engine eng(cfg);
    EXPECT_DOUBLE_EQ(eng.effective_watchdog_s(), 2.0);  // fell back
  }
  ::setenv("MPIM_WATCHDOG_S", "-1", 1);
  {
    Engine eng(cfg);
    EXPECT_DOUBLE_EQ(eng.effective_watchdog_s(), 2.0);
  }
  ::setenv("MPIM_WATCHDOG_S", "0.5", 1);
  {
    Engine eng(cfg);
    EXPECT_DOUBLE_EQ(eng.effective_watchdog_s(), 0.5);
  }
  ::unsetenv("MPIM_WATCHDOG_S");
}

// --- ack / get_failed / agree ------------------------------------------------

TEST(RecoveryUlfm, AckedFailuresShortCircuitWithoutTimeout) {
  Engine eng(recovery_cfg(3, crash_plan({{2, 1e-3}})));
  std::atomic<int> immediate_failures{0};
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    if (ctx.world_rank() == 2) {
      compute(1.0);  // dies at t = 1e-3
      return;
    }
    // Observe the failure the slow way once...
    int v = 0;
    EXPECT_THROW(recv(&v, 1, Type::Int, 2, 0, world), RankFailedError);
    // ...ack it, and every later operation on the dead peer fails fast.
    EXPECT_EQ(comm_failure_ack(world), 1);
    EXPECT_EQ(comm_get_failed(world), std::vector<int>{2});
    try {
      send(&v, 1, Type::Int, 2, 1, world);
    } catch (const RankFailedError& e) {
      EXPECT_EQ(e.world_rank(), 2);
      immediate_failures.fetch_add(1);
    }
    try {
      recv(&v, 1, Type::Int, 2, 1, world);
    } catch (const RankFailedError&) {
      immediate_failures.fetch_add(1);
    }
  });
  EXPECT_EQ(immediate_failures.load(), 4);  // send + recv on both survivors
}

TEST(RecoveryUlfm, AgreeFoldsFlagsAndFlagsUnackedFailures) {
  Engine eng(recovery_cfg(4, crash_plan({{3, 1e-3}})));
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    if (ctx.world_rank() == 3) {
      compute(1.0);
      return;
    }
    int flag = ctx.world_rank() == 0 ? 0b0110 : 0b0111;
    // First agreement runs into the unacked crash of rank 3.
    EXPECT_FALSE(comm_agree(world, &flag));
    EXPECT_EQ(flag, 0b0110);  // the surviving contributions still folded
    // Ack what the agreement taught us, then agree cleanly.
    EXPECT_GE(comm_failure_ack(world), 1);
    int flag2 = 0b1100 | ctx.world_rank();
    EXPECT_TRUE(comm_agree(world, &flag2));
    EXPECT_EQ(flag2, 0b1100);
  });
}

// --- shrink ------------------------------------------------------------------

TEST(RecoveryShrink, SurvivorsGetSameRenumberedCommAndFinishTheRing) {
  Engine eng(recovery_cfg(4, crash_plan({{2, 1e-3}})));
  std::array<std::atomic<int>, 4> ctx_ids{};
  std::array<std::atomic<int>, 4> new_ranks{};
  for (auto& a : ctx_ids) a.store(-1);
  auto workload = [&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    if (ctx.world_rank() == 2) {
      compute(1.0);
      return;
    }
    const Comm alive = comm_shrink(world);
    ASSERT_FALSE(alive.is_null());
    ASSERT_EQ(alive.size(), 3);
    // Deterministic renumbering: parent order with the dead removed.
    const int me = comm_rank(alive);
    ctx_ids[static_cast<std::size_t>(ctx.world_rank())].store(
        alive.context_id());
    new_ranks[static_cast<std::size_t>(ctx.world_rank())].store(me);
    // The shrink acked the agreed dead set on the parent.
    EXPECT_EQ(comm_get_failed(world), std::vector<int>{2});
    // Errmode carried from the parent.
    EXPECT_EQ(comm_get_errhandler(alive), ErrMode::ret);
    // A full ring on the shrunk communicator completes: nobody is dead.
    int token = me;
    const int n = comm_size(alive);
    send(&token, 1, Type::Int, (me + 1) % n, 9, alive);
    recv(&token, 1, Type::Int, (me + n - 1) % n, 9, alive);
    EXPECT_EQ(token, (me + n - 1) % n);
  };
  eng.run(workload);
  EXPECT_EQ(ctx_ids[0].load(), ctx_ids[1].load());
  EXPECT_EQ(ctx_ids[0].load(), ctx_ids[3].load());
  EXPECT_EQ(new_ranks[0].load(), 0);
  EXPECT_EQ(new_ranks[1].load(), 1);
  EXPECT_EQ(new_ranks[3].load(), 2);

  // Bit-identical virtual clocks across reruns of the whole recovery.
  const auto first = eng.final_clocks();
  eng.run(workload);
  EXPECT_EQ(first, eng.final_clocks());
}

TEST(RecoveryShrink, DoubleCrashShrinksToFourSurvivors) {
  Engine eng(recovery_cfg(6, crash_plan({{1, 5e-4}, {4, 2e-3}})));
  auto workload = [&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    const int r = ctx.world_rank();
    if (r == 1 || r == 4) {
      compute(1.0);
      return;
    }
    compute(3e-3);  // both crashes are in the past before anyone shrinks
    const Comm alive = comm_shrink(world);
    ASSERT_EQ(alive.size(), 4);
    const int me = comm_rank(alive);
    // Parent order 0,2,3,5 -> 0,1,2,3.
    const std::array<int, 6> want{0, -1, 1, 2, -1, 3};
    EXPECT_EQ(me, want[static_cast<std::size_t>(r)]);
    int token = me;
    send(&token, 1, Type::Int, (me + 1) % 4, 3, alive);
    recv(&token, 1, Type::Int, (me + 3) % 4, 3, alive);
  };
  eng.run(workload);
  const auto first = eng.final_clocks();
  eng.run(workload);
  EXPECT_EQ(first, eng.final_clocks());
}

TEST(RecoveryShrink, CrashBeforeAnyTrafficStillYieldsWorkingComm) {
  Engine eng(recovery_cfg(3, crash_plan({{0, 0.0}})));
  mpit::Runtime tool(eng);
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    if (ctx.world_rank() == 0) {
      compute(0.0);
      return;
    }
    const Comm alive = comm_shrink(world);
    ASSERT_EQ(alive.size(), 2);
    // Monitoring started directly on the shrunk comm never sees the hole.
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(alive, &id), MPI_M_SUCCESS);
    const int me = comm_rank(alive);
    std::vector<std::byte> buf(400);
    send(buf.data(), buf.size(), Type::Byte, 1 - me, 0, alive);
    recv(buf.data(), buf.size(), Type::Byte, 1 - me, 0, alive);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    std::vector<unsigned long> sizes(4);
    EXPECT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, sizes.data(),
                                   MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    EXPECT_EQ(sizes[1], 400ul);
    EXPECT_EQ(sizes[2], 400ul);
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
}

// --- revoke ------------------------------------------------------------------

TEST(RecoveryRevoke, WakesBlockedReceiversOntoTheRecoveryPath) {
  Engine eng(recovery_cfg(4, crash_plan({{3, 1e-3}})));
  std::atomic<int> revoked_seen{0};
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    const int r = ctx.world_rank();
    if (r == 3) {
      compute(1.0);
      return;
    }
    if (r == 0) {
      // Rank 0 notices the failure and revokes so ranks 1/2 -- blocked on
      // receives that can never complete -- converge onto the shrink.
      int v = 0;
      EXPECT_THROW(recv(&v, 1, Type::Int, 3, 0, world), RankFailedError);
      comm_revoke(world);
      EXPECT_TRUE(comm_is_revoked(world));
    } else {
      try {
        int v = 0;
        recv(&v, 1, Type::Int, 3 - r, 77, world);  // 1<->2, nobody sends
        ADD_FAILURE() << "recv on a revoked comm must not complete";
      } catch (const CommRevokedError& e) {
        EXPECT_EQ(e.context_id(), world.context_id());
        revoked_seen.fetch_add(1);
      } catch (const RankFailedError&) {
        // Acceptable alternate wake-up; the shrink below still runs.
      }
    }
    const Comm alive = comm_shrink(world);
    ASSERT_EQ(alive.size(), 3);
    const int me = comm_rank(alive);
    int token = me;
    send(&token, 1, Type::Int, (me + 1) % 3, 1, alive);
    recv(&token, 1, Type::Int, (me + 2) % 3, 1, alive);
  });
  EXPECT_EQ(revoked_seen.load(), 2);
}

// --- session rebind ----------------------------------------------------------

TEST(RecoveryRebind, CarriesSurvivorHistoryAndTombstonesTheDead) {
  Engine eng(recovery_cfg(4, crash_plan({{3, 5e-3}})));
  mpit::Runtime tool(eng);
  eng.telemetry().set_enabled(true);
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    const int r = ctx.world_rank();
    if (r == 3) {
      compute(1.0);  // dies mid-run, after the session started
      return;
    }
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_set_gather_timeout(0.2), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    // Pre-crash traffic among the survivors: 0 -> 1 -> 2 -> 0, 1000 B.
    std::vector<std::byte> buf(1000);
    send(buf.data(), buf.size(), Type::Byte, (r + 1) % 3, 0, world);
    recv(buf.data(), buf.size(), Type::Byte, (r + 2) % 3, 0, world);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    // On the original binding the gather sees the hole.
    std::vector<unsigned long> sizes4(16);
    EXPECT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, sizes4.data(),
                                   MPI_M_ALL_COMM),
              MPI_M_PARTIAL_DATA);
    EXPECT_EQ(sizes4[3 * 4 + 0], MPI_M_DATA_MISSING);

    // Shrink and rebind: history carried, dead rank tombstoned.
    const Comm alive = comm_shrink(world);
    ASSERT_EQ(alive.size(), 3);
    ASSERT_EQ(MPI_M_rebind(id, alive), MPI_M_SUCCESS);
    int ntomb = -1;
    int tomb = -1;
    ASSERT_EQ(MPI_M_session_tombstones(id, &tomb, 1, &ntomb), MPI_M_SUCCESS);
    EXPECT_EQ(ntomb, 1);
    EXPECT_EQ(tomb, 3);

    // Post-rebind gather: complete survivor matrix, zero stalls.
    std::vector<unsigned long> sizes3(9);
    EXPECT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, sizes3.data(),
                                   MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(sizes3[static_cast<std::size_t>(i * 3 + (i + 1) % 3)],
                1000ul)
          << "row " << i;

    // The rebound session keeps recording: continue, more traffic, and the
    // totals accumulate on top of the carried history.
    ASSERT_EQ(MPI_M_continue(id), MPI_M_SUCCESS);
    const int me = comm_rank(alive);
    send(buf.data(), 500, Type::Byte, (me + 1) % 3, 1, alive);
    recv(buf.data(), 500, Type::Byte, (me + 2) % 3, 1, alive);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, sizes3.data(),
                                   MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(sizes3[static_cast<std::size_t>(i * 3 + (i + 1) % 3)],
                1500ul)
          << "row " << i;
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
  // The post-rebind gathers never waited out a timeout; the pre-rebind one
  // skipped the known-dead row immediately (dead-skip, not timeout) or, if
  // the root's recv raced the crash mark, timed out at most once per rank.
  const auto& hub = eng.telemetry();
  std::uint64_t rebinds = 0;
  for (int r = 0; r < 4; ++r)
    rebinds += hub.registry().scalar_value(hub.ids().mon_rebinds, r);
  EXPECT_EQ(rebinds, 3u);
}

TEST(RecoveryRebind, RootRankCrashRecoversViaShrinkAndRebind) {
  Engine eng(recovery_cfg(4, crash_plan({{0, 5e-3}})));
  mpit::Runtime tool(eng);
  eng.telemetry().set_enabled(true);
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    comm_set_errhandler(world, ErrMode::ret);
    const int r = ctx.world_rank();
    if (r == 0) {
      compute(1.0);  // the gathering rank itself dies
      return;
    }
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_set_gather_timeout(0.2), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    std::vector<std::byte> buf(800);
    const int peers[3] = {1, 2, 3};
    const int me = r - 1;
    send(buf.data(), buf.size(), Type::Byte, peers[(me + 1) % 3], 0, world);
    recv(buf.data(), buf.size(), Type::Byte, peers[(me + 2) % 3], 0, world);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    // The allgather funnels through group rank 0 -- the dead one. Every
    // survivor gets the degraded result instead of hanging.
    std::vector<unsigned long> sizes4(16);
    EXPECT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, sizes4.data(),
                                   MPI_M_ALL_COMM),
              MPI_M_PARTIAL_DATA);

    const Comm alive = comm_shrink(world);
    ASSERT_EQ(alive.size(), 3);
    ASSERT_EQ(MPI_M_rebind(id, alive), MPI_M_SUCCESS);
    std::vector<unsigned long> sizes3(9);
    EXPECT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, sizes3.data(),
                                   MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    // Survivor traffic fully preserved: old world rank r sent 800 B to
    // peers[(r-1+1)%3]; in the shrunk comm both moved down one rank.
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(sizes3[static_cast<std::size_t>(i * 3 + (i + 1) % 3)], 800ul);
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
}

TEST(RecoveryRebind, RejectsActiveSessionsAndForeignComms) {
  Engine eng(recovery_cfg(2));
  mpit::Runtime tool(eng);
  eng.run([&](Ctx& ctx) {
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_rebind(id, ctx.world()), MPI_M_SESSION_NOT_SUSPENDED);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_rebind(id, Comm()), MPI_M_INTERNAL_FAIL);
    EXPECT_EQ(MPI_M_rebind(99, ctx.world()), MPI_M_INVALID_MSID);
    // Rebinding onto the same communicator is a (useless) no-op that keeps
    // every row: world ranks all survive the identity "shrink".
    EXPECT_EQ(MPI_M_rebind(id, ctx.world()), MPI_M_SUCCESS);
    int ntomb = -1;
    ASSERT_EQ(
        MPI_M_session_tombstones(id, MPI_M_INT_IGNORE, 0, &ntomb),
        MPI_M_SUCCESS);
    EXPECT_EQ(ntomb, 0);
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
}

// --- deadlock report names the failed ranks (satellite b) --------------------

TEST(RecoveryReport, DeadlockReportListsFailedRanksWithCrashTimes) {
  auto cfg = recovery_cfg(3, crash_plan({{2, 1e-3}}));
  cfg.watchdog_wall_timeout_s = 0.5;
  Engine eng(cfg);
  std::string report;
  try {
    eng.run([](Ctx& ctx) {
      const Comm world = ctx.world();
      if (ctx.world_rank() == 2) {
        compute(1.0);
        return;
      }
      // Survivors deadlock against each other (mismatched tags), with the
      // crash already on the books: the report must surface it.
      int v = 0;
      if (ctx.world_rank() == 0)
        recv(&v, 1, Type::Int, 1, 5, world);
      else
        recv(&v, 1, Type::Int, 0, 7, world);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    report = e.what();
  }
  EXPECT_TRUE(contains(report, "failed ranks:")) << report;
  EXPECT_TRUE(contains(report, "2 (crashed at t=")) << report;
  EXPECT_TRUE(contains(report, "docs/FAULTS.md")) << report;
}

TEST(RecoveryReport, LogicDeadlockReportsNoFailedRanks) {
  auto cfg = recovery_cfg(2);
  cfg.watchdog_wall_timeout_s = 0.5;
  Engine eng(cfg);
  std::string report;
  try {
    eng.run([](Ctx& ctx) {
      int v = 0;
      recv(&v, 1, Type::Int, 1 - ctx.world_rank(), 5 + ctx.world_rank(),
           ctx.world());
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    report = e.what();
  }
  EXPECT_TRUE(contains(report, "failed ranks: none")) << report;
}

// --- degradation governor ----------------------------------------------------

TEST(RecoveryGovernor, ShedsFidelityUnderMemoryBudgetWithoutClockDrift) {
  auto workload = [](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    // Small enough that all four ranks' reservations fit the shared
    // budget (the pool is first-come, so an oversized ask by one rank
    // would legitimately starve the rest into SESSION_OVERFLOW).
    ASSERT_EQ(MPI_M_snapshot_start(id, 1e-4, 16, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    const int r = ctx.world_rank();
    const int n = comm_size(world);
    std::vector<std::byte> buf(2000);
    for (int it = 0; it < 20; ++it) {
      send(buf.data(), buf.size(), Type::Byte, (r + 1) % n, it, world);
      recv(buf.data(), buf.size(), Type::Byte, (r + n - 1) % n, it, world);
    }
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    std::vector<unsigned long> sizes(
        static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    EXPECT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, sizes.data(),
                                   MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  };

  ::unsetenv("MPIM_MEM_BUDGET_BYTES");
  Engine plain(recovery_cfg(4));
  mpit::Runtime plain_tool(plain);
  plain.run(workload);
  const auto plain_clocks = plain.final_clocks();

  // A budget far below the standing span rings: the ctor already walks the
  // whole shed ladder before any snapshot reservation is granted.
  ::setenv("MPIM_MEM_BUDGET_BYTES", "20000", 1);
  Engine budgeted(recovery_cfg(4));
  mpit::Runtime budgeted_tool(budgeted);
  budgeted.telemetry().set_enabled(true);
  budgeted.run(workload);
  ::unsetenv("MPIM_MEM_BUDGET_BYTES");

  auto& gov = mon::Governor::of(budgeted);
  EXPECT_TRUE(gov.mem_enabled());
  EXPECT_EQ(gov.mem_budget(), 20000u);
  // The full ladder: widen snapshots, halve rings, widen plane, drop spans.
  EXPECT_GE(gov.shed_steps(), 4u);
  EXPECT_EQ(gov.shed_level(), 4);
  EXPECT_LE(gov.mem_level(), gov.mem_budget());
  // Shedding is visible in telemetry...
  const auto& hub = budgeted.telemetry();
  std::uint64_t steps = 0;
  for (int r = 0; r < 4; ++r)
    steps += hub.registry().scalar_value(hub.ids().gov_shed_steps, r);
  EXPECT_GE(steps, 3u);
  // ...and the virtual clocks never moved: all shedding is host-side.
  EXPECT_EQ(plain_clocks, budgeted.final_clocks());
}

TEST(RecoveryGovernor, OverheadBudgetRaisesAlarmAndLevelOneShed) {
  // Any monitored traffic exceeds a microscopic overhead budget.
  ::setenv("MPIM_OVERHEAD_PCT", "1e-9", 1);
  Engine eng(recovery_cfg(2));
  mpit::Runtime tool(eng);
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    std::vector<std::byte> buf(1000);
    const int peer = 1 - ctx.world_rank();
    send(buf.data(), buf.size(), Type::Byte, peer, 0, world);
    recv(buf.data(), buf.size(), Type::Byte, peer, 0, world);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
  ::unsetenv("MPIM_OVERHEAD_PCT");
  auto& gov = mon::Governor::of(eng);
  EXPECT_GT(gov.overhead_budget_pct(), 0.0);
  EXPECT_GE(gov.overhead_alarms(), 1u);
  EXPECT_GE(gov.shed_level(), 1);  // alarm triggers the level-1 shed
}

TEST(RecoveryGovernor, InvalidBudgetEnvDisablesTheBudget) {
  ::setenv("MPIM_MEM_BUDGET_BYTES", "lots", 1);
  ::setenv("MPIM_OVERHEAD_PCT", "-5", 1);
  Engine eng(recovery_cfg(2));
  eng.run([](Ctx& ctx) {
    auto& gov = mon::Governor::of(ctx.engine());
    EXPECT_FALSE(gov.mem_enabled());
    EXPECT_DOUBLE_EQ(gov.overhead_budget_pct(), 0.0);
    EXPECT_EQ(gov.shed_level(), 0);
  });
  ::unsetenv("MPIM_MEM_BUDGET_BYTES");
  ::unsetenv("MPIM_OVERHEAD_PCT");
}

}  // namespace
}  // namespace mpim::mpi
