// Time-resolved introspection analytics: the windowed snapshot sampler
// (global grid, delta frames, ring eviction, phase detection), the offline
// analyzer metrics, the frames CSV roundtrip, the MPI_M snapshot API end to
// end (including error codes, pvar read-through, fault degradation and the
// on/off virtual-clock bit-identity guarantee), and the phase-triggered
// reorder hook.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "introspect/analyzer.h"
#include "introspect/snapshot.h"
#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "mpit/pvar.h"
#include "mpit/runtime.h"
#include "reorder/reorder.h"
#include "support/error.h"
#include "telemetry/hub.h"

namespace mpim {
namespace {

using introspect::Frame;
using introspect::FrameMatrix;
using introspect::WindowSampler;
using mpi::Comm;
using mpi::Ctx;
using mpi::Type;

Sim make_sim(int nranks = 4) {
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                        .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 5.0;
  return Sim(std::move(cfg));
}

void exchange_ring(const Comm& comm, std::size_t bytes, int rounds = 1) {
  const int r = mpi::comm_rank(comm);
  const int n = mpi::comm_size(comm);
  std::vector<std::byte> buf(bytes);
  for (int i = 0; i < rounds; ++i) {
    mpi::send(buf.data(), bytes, Type::Byte, (r + 1) % n, 0, comm);
    mpi::recv(buf.data(), bytes, Type::Byte, (r + n - 1) % n, 0, comm);
  }
}

// --- WindowSampler ------------------------------------------------------------

TEST(Sampler, DeltaFramesOnTheGlobalWindowGrid) {
  WindowSampler s(/*npeers=*/3, /*window_s=*/1.0, /*max_frames=*/16);
  s.record(0.25, 1, 0, 100);
  s.record(0.50, 2, 1, 50);
  s.record(2.10, 1, 0, 10);  // skips window 1 entirely
  s.flush(3.0);

  const auto& frames = s.frames();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].window, 0);
  EXPECT_DOUBLE_EQ(frames[0].t0_s, 0.0);
  EXPECT_DOUBLE_EQ(frames[0].t1_s, 1.0);
  ASSERT_EQ(frames[0].cells.size(), 2u);  // sparse: peers 1 and 2 only
  EXPECT_EQ(frames[0].cells[0].peer, 1);
  EXPECT_EQ(frames[0].cells[0].counts[0], 1u);
  EXPECT_EQ(frames[0].cells[0].bytes[0], 100u);
  EXPECT_EQ(frames[0].cells[1].peer, 2);
  EXPECT_EQ(frames[0].cells[1].bytes[1], 50u);

  // The silent window 1 is emitted as an empty frame, not skipped.
  EXPECT_EQ(frames[1].window, 1);
  EXPECT_TRUE(frames[1].cells.empty());

  // Delta encoding: window 2 holds only its own increments.
  EXPECT_EQ(frames[2].window, 2);
  ASSERT_EQ(frames[2].cells.size(), 1u);
  EXPECT_EQ(frames[2].cells[0].bytes[0], 10u);

  EXPECT_EQ(s.frames_closed(), 3u);
  EXPECT_EQ(s.frames_dropped(), 0u);
  EXPECT_EQ(s.total_bytes()[1], 110u);
  EXPECT_EQ(s.total_bytes()[2], 50u);
}

TEST(Sampler, RingEvictionKeepsNewestAndCounts) {
  WindowSampler s(2, 1.0, /*max_frames=*/2);
  for (int w = 0; w < 5; ++w)
    s.record(static_cast<double>(w) + 0.5, 0, 0, 10);
  s.flush(5.0);
  EXPECT_EQ(s.frames_closed(), 5u);
  EXPECT_EQ(s.frames_dropped(), 3u);
  ASSERT_EQ(s.frames().size(), 2u);
  EXPECT_EQ(s.frames()[0].window, 3);
  EXPECT_EQ(s.frames()[1].window, 4);
  // Evicted frames still count toward the long-horizon totals.
  EXPECT_EQ(s.total_bytes()[0], 50u);
}

TEST(Sampler, PhaseBoundariesAtBurstEdges) {
  WindowSampler s(2, 1.0, 16);
  s.record(0.5, 1, 0, 100);  // windows 0..2: steady pattern
  s.record(1.5, 1, 0, 100);
  s.record(2.5, 1, 0, 100);
  s.record(5.5, 1, 0, 100);  // windows 3,4 silent; 5 resumes
  s.flush(6.5);

  const auto& f = s.frames();
  ASSERT_EQ(f.size(), 6u);
  EXPECT_FALSE(f[0].boundary);  // very first frame: no previous phase
  EXPECT_FALSE(f[1].boundary);  // steady
  EXPECT_FALSE(f[2].boundary);
  EXPECT_TRUE(f[3].boundary);   // burst -> silence
  EXPECT_FALSE(f[4].boundary);  // still silent
  EXPECT_TRUE(f[5].boundary);   // silence -> burst
  EXPECT_EQ(s.phase_boundaries(), 2u);
}

TEST(Sampler, FrameCallbackSeesBoundariesAndClearResets) {
  WindowSampler s(2, 1.0, 16);
  int called = 0, boundaries = 0;
  s.set_frame_callback([&](const Frame& f) {
    ++called;
    if (f.boundary) ++boundaries;
  });
  s.record(0.5, 0, 0, 10);
  s.record(3.5, 1, 0, 10);  // silence 1,2; resume 3
  s.flush(4.0);
  EXPECT_EQ(called, 4);
  EXPECT_EQ(boundaries, 2);  // windows 1 (silence) and 3 (resume)

  s.clear();
  EXPECT_TRUE(s.frames().empty());
  EXPECT_EQ(s.frames_closed(), 0u);
  EXPECT_EQ(s.phase_boundaries(), 0u);
  EXPECT_EQ(s.total_bytes()[0], 0u);
  // The grid restarts: the first record after clear is a fresh first frame.
  s.record(10.5, 0, 0, 5);
  s.flush(11.0);
  ASSERT_EQ(s.frames().size(), 1u);
  EXPECT_EQ(s.frames()[0].window, 10);
  EXPECT_FALSE(s.frames()[0].boundary);
}

TEST(Sampler, RejectsOutOfRangeRecordsAndBadConfig) {
  WindowSampler s(2, 1.0, 4);
  EXPECT_THROW(s.record(0.0, 2, 0, 1), Error);
  EXPECT_THROW(s.record(0.0, -1, 0, 1), Error);
  EXPECT_THROW(s.record(0.0, 0, 3, 1), Error);
  EXPECT_THROW(WindowSampler(0, 1.0, 4), Error);
  EXPECT_THROW(WindowSampler(2, 0.0, 4), Error);
  EXPECT_THROW(WindowSampler(2, 1.0, 0), Error);
}

// --- analyzer metrics ---------------------------------------------------------

TEST(Analyzer, DistancesHandleZeroAndIdenticalVectors) {
  const std::vector<unsigned long> zero = {0, 0};
  const std::vector<unsigned long> a = {3, 4};
  const std::vector<unsigned long> b = {4, 3};
  EXPECT_DOUBLE_EQ(introspect::cosine_distance(zero, zero), 0.0);
  EXPECT_DOUBLE_EQ(introspect::cosine_distance(zero, a), 1.0);
  EXPECT_DOUBLE_EQ(introspect::cosine_distance(a, a), 0.0);
  EXPECT_NEAR(introspect::cosine_distance(a, b), 1.0 - 24.0 / 25.0, 1e-12);
  EXPECT_DOUBLE_EQ(introspect::l1_distance(zero, zero), 0.0);
  EXPECT_DOUBLE_EQ(introspect::l1_distance(zero, a), 1.0);
  EXPECT_NEAR(introspect::l1_distance(a, b), 2.0 / 14.0, 1e-12);
}

TEST(Analyzer, LoadImbalanceIsMaxRowOverMeanRow) {
  CommMatrix m = CommMatrix::square(2);
  m(0, 1) = 10;
  EXPECT_DOUBLE_EQ(introspect::load_imbalance(m), 2.0);  // 10 / (10/2)
  m(1, 0) = 10;
  EXPECT_DOUBLE_EQ(introspect::load_imbalance(m), 1.0);
  EXPECT_DOUBLE_EQ(introspect::load_imbalance(CommMatrix::square(3)), 0.0);
}

TEST(Analyzer, HopDistanceCountsTreeEdges) {
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  EXPECT_EQ(t.hop_distance(0, 0), 0);
  EXPECT_EQ(t.hop_distance(0, 1), 2);  // same socket
  EXPECT_EQ(t.hop_distance(1, 0), 2);
  EXPECT_EQ(t.hop_distance(0, 2), 6);  // across the node boundary
  EXPECT_EQ(t.hop_distance(3, 0), 6);
}

TEST(Analyzer, AffinityAndMismatchFollowThePlacement) {
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  CommMatrix bytes = CommMatrix::square(4);
  bytes(0, 1) = 100;  // neighbors under identity placement (hop 2)
  bytes(0, 2) = 50;   // across nodes (hop 6)
  topo::Placement ident = {0, 1, 2, 3};
  EXPECT_NEAR(introspect::neighbor_affinity_fraction(bytes, t, ident),
              100.0 / 150.0, 1e-12);
  EXPECT_DOUBLE_EQ(introspect::mismatch_byte_hops(bytes, t, ident),
                   100.0 * 2 + 50.0 * 6);
  // Swap ranks 1 and 2 on the machine: the heavy pair now spans nodes.
  topo::Placement swapped = {0, 2, 1, 3};
  EXPECT_NEAR(introspect::neighbor_affinity_fraction(bytes, t, swapped),
              50.0 / 150.0, 1e-12);
  EXPECT_DOUBLE_EQ(introspect::mismatch_byte_hops(bytes, t, swapped),
                   100.0 * 6 + 50.0 * 2);
}

TEST(Analyzer, TreematchGainPositiveForScatteredPairs) {
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  CommMatrix bytes = CommMatrix::square(4);
  // Heavy partners placed on different nodes: TreeMatch can fix this.
  bytes(0, 1) = bytes(1, 0) = 1000000;
  bytes(2, 3) = bytes(3, 2) = 1000000;
  topo::Placement scattered = {0, 2, 1, 3};
  const double gain =
      introspect::treematch_gain(bytes, t, scattered, cost);
  EXPECT_GT(gain, 0.0);
  EXPECT_LE(gain, 1.0);
  // A zero matrix has nothing to gain.
  EXPECT_DOUBLE_EQ(
      introspect::treematch_gain(CommMatrix::square(4), t, scattered, cost),
      0.0);
}

TEST(Analyzer, WindowMetricsFlagTheSameBoundariesAsTheSampler) {
  std::vector<FrameMatrix> frames;
  for (int w = 0; w < 4; ++w) {
    FrameMatrix f;
    f.window = w;
    f.t0_s = w;
    f.t1_s = w + 1;
    f.counts = CommMatrix::square(2);
    f.bytes = CommMatrix::square(2);
    if (w < 2) {  // two busy windows, then silence, then a new pattern
      f.counts(0, 1) = 1;
      f.bytes(0, 1) = 100;
    } else if (w == 3) {
      f.counts(1, 0) = 1;
      f.bytes(1, 0) = 100;
    }
    frames.push_back(std::move(f));
  }
  const auto m = introspect::analyze_windows(frames);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_FALSE(m[0].boundary);  // first window: no reference
  EXPECT_LT(m[0].cos_dist, 0);  // distances undefined on the first window
  EXPECT_FALSE(m[1].boundary);
  EXPECT_TRUE(m[2].boundary);  // busy -> silent
  EXPECT_TRUE(m[3].boundary);  // silent -> busy (and a different pattern)
  EXPECT_EQ(m[1].bytes, 100u);
  EXPECT_EQ(m[1].msgs, 1u);
}

TEST(Analyzer, FramesCsvRoundtrip) {
  std::vector<FrameMatrix> frames(2);
  frames[0].window = 4;
  frames[0].t0_s = 0.4;
  frames[0].t1_s = 0.5;
  frames[0].counts = CommMatrix::square(3);
  frames[0].bytes = CommMatrix::square(3);
  frames[0].counts(0, 2) = 7;
  frames[0].bytes(0, 2) = 4096;
  frames[1].window = 6;  // empty window: marker row on disk
  frames[1].t0_s = 0.6;
  frames[1].t1_s = 0.7;
  frames[1].counts = CommMatrix::square(3);
  frames[1].bytes = CommMatrix::square(3);

  const std::string path =
      (std::filesystem::temp_directory_path() / "introspect_roundtrip.csv")
          .string();
  introspect::write_frames_csv_file(path, frames);
  const auto back = introspect::read_frames_csv(path, /*order=*/3);
  std::remove(path.c_str());

  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].window, 4);
  EXPECT_DOUBLE_EQ(back[0].t0_s, 0.4);
  EXPECT_EQ(back[0].counts(0, 2), 7u);
  EXPECT_EQ(back[0].bytes(0, 2), 4096u);
  EXPECT_EQ(back[1].window, 6);
  EXPECT_EQ(back[1].bytes.flat()[0], 0u);
}

// --- MPI_M snapshot API -------------------------------------------------------

TEST(Snapshot, EndToEndFramesAlignAndSumToSessionTotals) {
  const int nranks = 4;
  Sim sim = make_sim(nranks);
  sim.engine().telemetry().set_enabled(true);
  telemetry::Hub& hub = sim.engine().telemetry();

  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_start(id, /*window_s=*/1e-3, /*max_frames=*/128,
                                   MPI_M_ALL_COMM),
              MPI_M_SUCCESS);

    exchange_ring(world, 1000, 3);  // burst 1
    mpi::compute(0.01);             // ten silent windows
    exchange_ring(world, 2000, 2);  // burst 2
    mpi::compute(2e-3);  // step past the last window so suspend closes it
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    int nf = 0, dropped = 0, boundaries = 0;
    ASSERT_EQ(MPI_M_snapshot_info(id, &nf, &dropped, &boundaries),
              MPI_M_SUCCESS);
    EXPECT_GT(nf, 1);
    EXPECT_EQ(dropped, 0);
    EXPECT_GE(boundaries, 2);  // burst -> silence and silence -> burst

    const int K = 128;
    const std::size_t n = static_cast<std::size_t>(nranks);
    int W = 0;
    std::vector<double> t0(K), t1(K);
    std::vector<unsigned long> counts(K * n * n), bytes(K * n * n);
    ASSERT_EQ(MPI_M_get_frames(id, K, &W, t0.data(), t1.data(), counts.data(),
                               bytes.data(), MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    ASSERT_GT(W, 0);
    ASSERT_LE(W, K);

    // The windows sit on the global grid, in ascending order.
    for (int w = 0; w < W; ++w) {
      EXPECT_NEAR(t1[w] - t0[w], 1e-3, 1e-12);
      if (w > 0) {
        EXPECT_GT(t0[w], t0[w - 1]);
      }
    }

    // Summing every per-window delta matrix reproduces the session totals.
    std::vector<unsigned long> summed(n * n, 0ul);
    for (int w = 0; w < W; ++w)
      for (std::size_t i = 0; i < n * n; ++i)
        summed[i] += bytes[static_cast<std::size_t>(w) * n * n + i];
    std::vector<unsigned long> total(n * n);
    ASSERT_EQ(MPI_M_allgather_data(id, MPI_M_DATA_IGNORE, total.data(),
                                   MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    EXPECT_EQ(summed, total);
    const std::size_t me = static_cast<std::size_t>(ctx.world_rank());
    const std::size_t next = (me + 1) % n;
    EXPECT_EQ(total[me * n + next], 3 * 1000ul + 2 * 2000ul);

    // The derived-metric pvars are readable through MPI_T, by name.
    mpit::Runtime& rt = mpit::Runtime::of(ctx.engine());
    const int idx = mpit::pvar_index_by_name("mpim_introspect_frames_total");
    ASSERT_GE(idx, 25);  // appended after the PR 2 telemetry pvars
    const int sid = rt.session_create();
    const int h = rt.handle_alloc(sid, idx, world);
    rt.handle_start(sid, h);
    unsigned long frames_total = 0;
    ASSERT_EQ(rt.handle_read(sid, h, &frames_total, 1), 1);
    EXPECT_EQ(frames_total, static_cast<unsigned long>(nf));
    rt.handle_stop(sid, h);
    rt.session_free(sid);

    ASSERT_EQ(MPI_M_snapshot_stop(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
  });

  // Host side: the counters and gauges the run left in the registry.
  const auto& ids = hub.ids();
  const auto& reg = hub.registry();
  EXPECT_EQ(reg.counter_total(ids.introspect_starts),
            static_cast<std::uint64_t>(nranks));
  EXPECT_GT(reg.counter_total(ids.introspect_frames), 0u);
  EXPECT_GE(reg.counter_total(ids.introspect_boundaries),
            2u * static_cast<std::uint64_t>(nranks));
  EXPECT_EQ(reg.counter_total(ids.introspect_frames_dropped), 0u);
  // get_frames refreshed the derived gauges; a symmetric ring is balanced.
  EXPECT_EQ(reg.gauge_value(ids.introspect_imbalance_milli, 0), 1000);
  EXPECT_GE(reg.gauge_value(ids.introspect_mismatch_hops, 0), 0);
  // Phase spans were emitted for every detected boundary.
  bool phase_span = false;
  for (const telemetry::SpanRec& s : hub.spans(0))
    if (std::string(s.name) == "introspect.phase") phase_span = true;
  EXPECT_TRUE(phase_span);
}

TEST(Snapshot, ErrorCodeDiscipline) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);

    // No sampler yet.
    EXPECT_EQ(MPI_M_snapshot_stop(id), MPI_M_NO_SNAPSHOT);

    // Argument validation before any state changes.
    EXPECT_EQ(MPI_M_snapshot_start(id, 1e-3, 8, 0), MPI_M_INVALID_FLAGS);
    EXPECT_EQ(MPI_M_snapshot_start(id, 1e-3, 8, ~MPI_M_ALL_COMM),
              MPI_M_INVALID_FLAGS);
    EXPECT_EQ(MPI_M_snapshot_start(id, 0.0, 8, MPI_M_ALL_COMM),
              MPI_M_INTERNAL_FAIL);
    EXPECT_EQ(MPI_M_snapshot_start(id, 1e-3, 0, MPI_M_ALL_COMM),
              MPI_M_INTERNAL_FAIL);

    ASSERT_EQ(MPI_M_snapshot_start(id, 1e-3, 8, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_snapshot_start(id, 1e-3, 8, MPI_M_ALL_COMM),
              MPI_M_MULTIPLE_CALL);

    // Data access needs the suspended state, like every other reader.
    int nf = 0;
    EXPECT_EQ(MPI_M_snapshot_info(id, &nf, MPI_M_INT_IGNORE,
                                  MPI_M_INT_IGNORE),
              MPI_M_SESSION_NOT_SUSPENDED);
    EXPECT_EQ(MPI_M_get_frames(id, 8, &nf, nullptr, nullptr,
                               MPI_M_DATA_IGNORE, MPI_M_DATA_IGNORE,
                               MPI_M_ALL_COMM),
              MPI_M_SESSION_NOT_SUSPENDED);

    exchange_ring(world, 100);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_snapshot_info(id, &nf, MPI_M_INT_IGNORE,
                                  MPI_M_INT_IGNORE),
              MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_get_frames(id, 8, &nf, nullptr, nullptr,
                               MPI_M_DATA_IGNORE, MPI_M_DATA_IGNORE, 0),
              MPI_M_INVALID_FLAGS);
    EXPECT_EQ(MPI_M_get_frames(id, 0, &nf, nullptr, nullptr,
                               MPI_M_DATA_IGNORE, MPI_M_DATA_IGNORE,
                               MPI_M_ALL_COMM),
              MPI_M_INTERNAL_FAIL);

    // Stop is allowed while suspended; restart discards the old frames.
    ASSERT_EQ(MPI_M_snapshot_stop(id), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_snapshot_stop(id), MPI_M_NO_SNAPSHOT);
    ASSERT_EQ(MPI_M_continue(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_start(id, 1e-3, 8, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_info(id, &nf, MPI_M_INT_IGNORE,
                                  MPI_M_INT_IGNORE),
              MPI_M_SUCCESS);
    EXPECT_EQ(nf, 0);  // the restart started from an empty ring

    // Sessions without a snapshot keep rejecting the data calls.
    MPI_M_msid plain = -1;
    ASSERT_EQ(MPI_M_start(world, &plain), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_suspend(plain), MPI_M_SUCCESS);
    EXPECT_EQ(MPI_M_snapshot_info(plain, &nf, MPI_M_INT_IGNORE,
                                  MPI_M_INT_IGNORE),
              MPI_M_NO_SNAPSHOT);
    EXPECT_EQ(MPI_M_get_frames(plain, 8, &nf, nullptr, nullptr,
                               MPI_M_DATA_IGNORE, MPI_M_DATA_IGNORE,
                               MPI_M_ALL_COMM),
              MPI_M_NO_SNAPSHOT);
    EXPECT_EQ(MPI_M_snapshot_start(-5, 1e-3, 8, MPI_M_ALL_COMM),
              MPI_M_INVALID_MSID);

    ASSERT_EQ(MPI_M_free(plain), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
  });
}

TEST(Snapshot, ResetClearsFramesWithTheSessionData) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    mon::Environment env;
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(ctx.world(), &id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_start(id, 1e-3, 16, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    exchange_ring(ctx.world(), 500);
    mpi::compute(2e-3);
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    int nf = 0;
    ASSERT_EQ(MPI_M_snapshot_info(id, &nf, MPI_M_INT_IGNORE,
                                  MPI_M_INT_IGNORE),
              MPI_M_SUCCESS);
    EXPECT_GT(nf, 0);
    ASSERT_EQ(MPI_M_reset(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_info(id, &nf, MPI_M_INT_IGNORE,
                                  MPI_M_INT_IGNORE),
              MPI_M_SUCCESS);
    EXPECT_EQ(nf, 0);
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
  });
}

// Determinism: an attached (even recording) sampler must not charge a
// single tick of virtual time -- clocks bit-identical with snapshots on
// and off is the guarantee the whole subsystem rests on.
TEST(Snapshot, SamplerOnOrOffKeepsVirtualClocksBitIdentical) {
  auto run_once = [](bool snapshot_on) {
    Sim sim = make_sim(4);
    sim.engine().telemetry().set_enabled(snapshot_on);
    double t_final = 0.0;
    sim.run([&](Ctx& ctx) {
      const Comm world = ctx.world();
      mon::Environment env;
      MPI_M_msid id = -1;
      ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
      if (snapshot_on) {
        ASSERT_EQ(MPI_M_snapshot_start(id, 1e-4, 64, MPI_M_ALL_COMM),
                  MPI_M_SUCCESS);
      }
      exchange_ring(world, 4096, 5);
      mpi::compute(2e-3);
      exchange_ring(world, 1024, 5);
      ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
      ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
      if (ctx.world_rank() == 0) t_final = ctx.now();
    });
    return t_final;
  };
  const double off = run_once(false);
  const double on = run_once(true);
  EXPECT_GT(off, 0.0);
  EXPECT_EQ(off, on);  // bit-identical, not just close
}

TEST(Snapshot, FaultyGatherReturnsPartialFramesWithSentinelRows) {
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 3;
  crash.crash_at_s = 0.0;
  plan->add(crash);
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                        .placement = topo::round_robin_placement(4, t)};
  cfg.watchdog_wall_timeout_s = 5.0;
  cfg.fault_plan = plan;
  Sim sim(std::move(cfg));

  sim.run([](Ctx& ctx) {
    if (ctx.world_rank() == 3) {
      mpi::compute(0.0);
      return;
    }
    const Comm world = ctx.world();
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_set_gather_timeout(0.2), MPI_M_SUCCESS);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_start(id, 1e-3, 16, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    // Ring among the three alive ranks only.
    const int r = ctx.world_rank();
    std::vector<std::byte> buf(1000);
    mpi::send(buf.data(), buf.size(), Type::Byte, (r + 1) % 3, 0, world);
    mpi::recv(buf.data(), buf.size(), Type::Byte, (r + 2) % 3, 0, world);
    mpi::compute(2e-3);  // close the traffic window before suspend
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);

    const int K = 16;
    const std::size_t n = 4;
    int W = 0;
    std::vector<unsigned long> bytes(K * n * n);
    EXPECT_EQ(MPI_M_get_frames(id, K, &W, nullptr, nullptr,
                               MPI_M_DATA_IGNORE, bytes.data(),
                               MPI_M_ALL_COMM),
              MPI_M_PARTIAL_DATA);
    ASSERT_GT(W, 0);
    for (int w = 0; w < W; ++w)
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_EQ(bytes[static_cast<std::size_t>(w) * n * n + 3 * n + j],
                  MPI_M_DATA_MISSING);
    // Alive rows stay genuine measurements.
    EXPECT_EQ(bytes[1], 1000ul);  // window 0: rank 0 -> rank 1
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_finalize(), MPI_M_SUCCESS);
  });
}

// --- reorder hook -------------------------------------------------------------

TEST(ReorderOnPhase, FiresOnlyWhenTheDetectorFlagsANewBoundary) {
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_snapshot_start(id, 1e-3, 256, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    int seen = 0;

    // Steady traffic: no boundary, the hook must stay cheap and identity.
    exchange_ring(world, 1000, 2);
    bool fired = true;
    reorder::ReorderResult r1 =
        reorder::reorder_on_phase(id, world, &seen, &fired);
    EXPECT_FALSE(fired);
    EXPECT_EQ(r1.k, reorder::identity_k(4));

    // A lull and resumed traffic: boundaries appear, the hook reorders.
    mpi::compute(0.01);
    exchange_ring(world, 1000, 2);
    reorder::ReorderResult r2 =
        reorder::reorder_on_phase(id, world, &seen, &fired);
    EXPECT_TRUE(fired);
    EXPECT_GT(seen, 0);
    EXPECT_FALSE(r2.opt_comm.is_null());

    // Nothing new since: the next hook is a no-op again.
    reorder::reorder_on_phase(id, world, &seen, &fired);
    EXPECT_FALSE(fired);

    // The hook left the session active (it resumes what it suspended).
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
  });
}

}  // namespace
}  // namespace mpim
