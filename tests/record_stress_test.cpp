// Concurrent-recording stress: rank threads hammer the lock-free send path
// (including cross-thread RMA attribution into a peer's accumulators) while
// other ranks churn the control plane -- session create/free, snapshot
// observer attach/detach -- forcing constant RecordingPlan rebuilds under
// live readers. Built for the tsan preset (label "sanitize-thread"): any
// missing synchronization in the RCU publication, the foreign slot
// fetch_adds, or the observer slots shows up as a data race. The final
// phase makes a deterministic correctness check: after a barrier quiesces
// all cross-rank attribution, a fresh session must count this rank's own
// traffic exactly.
#include <gtest/gtest.h>

#include <atomic>

#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "mpimon/mpi_monitoring.h"
#include "mpit/runtime.h"

namespace mpim {
namespace {

using mpi::Comm;
using mpi::Ctx;

TEST(RecordStress, PlanChurnUnderConcurrentTrafficStaysExact) {
  constexpr int kRanks = 8;
  // Sized so the full test stays in the low seconds under TSan on one core
  // while still overlapping thousands of plan reads with rebuilds.
  constexpr int kHammerIters = 1500;
  constexpr int kChurnCycles = 100;
  constexpr unsigned long kFinalIters = 64;

  topo::Topology t({2, 2, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                        .placement = topo::round_robin_placement(kRanks, t)};
  cfg.watchdog_wall_timeout_s = 120.0;
  mpi::Engine engine(std::move(cfg));

  mpit::Runtime tool(engine);
  std::atomic<long> observed{0};
  tool.add_event_listener(
      [&](const mpi::PktInfo&) { observed.fetch_add(1); });

  engine.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int me = ctx.world_rank();
    char buf[8] = {0};
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);

    if (me % 2 == 0) {
      // Hammer: reads the plan on every send; the rma_transfer attributes
      // traffic to the odd neighbour, writing that rank's foreign slots
      // from this thread while it is rebuilding its plan.
      for (int i = 0; i < kHammerIters; ++i) {
        ctx.send_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ctx.recv_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ctx.rma_transfer(me + 1, me, world, sizeof buf);
      }
    } else {
      // Churner: every cycle publishes several plans (starts, snapshot
      // observer attach/detach, suspends, frees) while the neighbour's
      // thread races through them.
      for (int c = 0; c < kChurnCycles; ++c) {
        MPI_M_msid a = -1, b = -1;
        ASSERT_EQ(MPI_M_start(world, &a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_start(world, &b), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_snapshot_start(a, 1e-3, 4, MPI_M_ALL_COMM),
                  MPI_M_SUCCESS);
        ctx.send_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ctx.recv_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ASSERT_EQ(MPI_M_snapshot_stop(a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_suspend(a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_free(a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_suspend(b), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_free(b), MPI_M_SUCCESS);
      }
    }

    // Quiesce cross-rank attribution, then check exactness: only this
    // rank's own traffic can land in its row from here on.
    mpi::barrier(world);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    for (unsigned long i = 0; i < kFinalIters; ++i) {
      ctx.send_bytes(me, world, 5, mpi::CommKind::p2p, buf, sizeof buf);
      ctx.recv_bytes(me, world, 5, mpi::CommKind::p2p, buf, sizeof buf);
      ctx.rma_transfer(me, me, world, sizeof buf);
    }
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    unsigned long counts[kRanks] = {0}, sizes[kRanks] = {0};
    ASSERT_EQ(MPI_M_get_data(id, counts, sizes, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    EXPECT_EQ(counts[me], 2 * kFinalIters);
    EXPECT_EQ(sizes[me], 2 * kFinalIters * sizeof buf);
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == me) continue;
      EXPECT_EQ(counts[peer], 0u) << "peer " << peer;
    }
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    MPI_M_finalize();
  });

  // The listener ran concurrently on every rank thread.
  EXPECT_GT(observed.load(), static_cast<long>(kRanks) * kHammerIters / 2);
}

}  // namespace
}  // namespace mpim
