// Concurrent-recording stress: rank threads hammer the lock-free send path
// (including cross-thread RMA attribution into a peer's accumulators) while
// other ranks churn the control plane -- session create/free, snapshot
// observer attach/detach -- forcing constant RecordingPlan rebuilds under
// live readers. Built for the tsan preset (label "sanitize-thread"): any
// missing synchronization in the RCU publication, the foreign slot
// fetch_adds, or the observer slots shows up as a data race. The final
// phase makes a deterministic correctness check: after a barrier quiesces
// all cross-rank attribution, a fresh session must count this rank's own
// traffic exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "minimpi/ft.h"
#include "mpimon/mpi_monitoring.h"
#include "mpit/runtime.h"

namespace mpim {
namespace {

using mpi::Comm;
using mpi::Ctx;

TEST(RecordStress, PlanChurnUnderConcurrentTrafficStaysExact) {
  constexpr int kRanks = 8;
  // Sized so the full test stays in the low seconds under TSan on one core
  // while still overlapping thousands of plan reads with rebuilds.
  constexpr int kHammerIters = 1500;
  constexpr int kChurnCycles = 100;
  constexpr unsigned long kFinalIters = 64;

  topo::Topology t({2, 2, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                        .placement = topo::round_robin_placement(kRanks, t)};
  cfg.watchdog_wall_timeout_s = 120.0;
  mpi::Engine engine(std::move(cfg));

  mpit::Runtime tool(engine);
  std::atomic<long> observed{0};
  tool.add_event_listener(
      [&](const mpi::PktInfo&) { observed.fetch_add(1); });

  engine.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int me = ctx.world_rank();
    char buf[8] = {0};
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);

    if (me % 2 == 0) {
      // Hammer: reads the plan on every send; the rma_transfer attributes
      // traffic to the odd neighbour, writing that rank's foreign slots
      // from this thread while it is rebuilding its plan.
      for (int i = 0; i < kHammerIters; ++i) {
        ctx.send_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ctx.recv_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ctx.rma_transfer(me + 1, me, world, sizeof buf);
      }
    } else {
      // Churner: every cycle publishes several plans (starts, snapshot
      // observer attach/detach, suspends, frees) while the neighbour's
      // thread races through them.
      for (int c = 0; c < kChurnCycles; ++c) {
        MPI_M_msid a = -1, b = -1;
        ASSERT_EQ(MPI_M_start(world, &a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_start(world, &b), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_snapshot_start(a, 1e-3, 4, MPI_M_ALL_COMM),
                  MPI_M_SUCCESS);
        ctx.send_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ctx.recv_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ASSERT_EQ(MPI_M_snapshot_stop(a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_suspend(a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_free(a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_suspend(b), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_free(b), MPI_M_SUCCESS);
      }
    }

    // Quiesce cross-rank attribution, then check exactness: only this
    // rank's own traffic can land in its row from here on.
    mpi::barrier(world);
    MPI_M_msid id = -1;
    ASSERT_EQ(MPI_M_start(world, &id), MPI_M_SUCCESS);
    for (unsigned long i = 0; i < kFinalIters; ++i) {
      ctx.send_bytes(me, world, 5, mpi::CommKind::p2p, buf, sizeof buf);
      ctx.recv_bytes(me, world, 5, mpi::CommKind::p2p, buf, sizeof buf);
      ctx.rma_transfer(me, me, world, sizeof buf);
    }
    ASSERT_EQ(MPI_M_suspend(id), MPI_M_SUCCESS);
    unsigned long counts[kRanks] = {0}, sizes[kRanks] = {0};
    ASSERT_EQ(MPI_M_get_data(id, counts, sizes, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    EXPECT_EQ(counts[me], 2 * kFinalIters);
    EXPECT_EQ(sizes[me], 2 * kFinalIters * sizeof buf);
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == me) continue;
      EXPECT_EQ(counts[peer], 0u) << "peer " << peer;
    }
    ASSERT_EQ(MPI_M_free(id), MPI_M_SUCCESS);
    MPI_M_finalize();
  });

  // The listener ran concurrently on every rank thread.
  EXPECT_GT(observed.load(), static_cast<long>(kRanks) * kHammerIters / 2);
}

TEST(RecordStress, CrashShrinkAndRebindUnderPlanChurnStaysExact) {
  // Same shape as above -- hammers racing churners -- but rank 7 (an odd
  // churner) crashes mid-run, so the control plane churns right through a
  // failure: the crash must unwind rank 7 out of whatever MPI_M_* call it
  // is in (not zombify it behind an error code), the survivors shrink,
  // rebind a pre-crash session onto the shrunk communicator, and the
  // post-rebind deltas must still count exactly. One run only: under TSan
  // the value is the interleavings, determinism is covered elsewhere.
  constexpr int kRanks = 8;
  constexpr int kHammerIters = 1000;
  constexpr int kChurnCycles = 60;
  constexpr unsigned long kFinalIters = 64;

  topo::Topology t({2, 2, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 7;
  crash.crash_at_s = 1e-4;  // early: dies within its first churn cycles
  plan->add(crash);
  mpi::EngineConfig cfg{.cost_model = cost,
                        .placement = topo::round_robin_placement(kRanks, t)};
  cfg.watchdog_wall_timeout_s = 120.0;
  cfg.fault_plan = std::move(plan);
  mpi::Engine engine(std::move(cfg));
  mpit::Runtime tool(engine);

  engine.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    mpi::comm_set_errhandler(world, mpi::ErrMode::ret);
    const int me = ctx.world_rank();
    char buf[8] = {0};
    ASSERT_EQ(MPI_M_init(), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_set_gather_timeout(0.5), MPI_M_SUCCESS);

    // The session that survives the crash: opened on world before it.
    MPI_M_msid keep = -1;
    ASSERT_EQ(MPI_M_start(world, &keep), MPI_M_SUCCESS);

    if (me % 2 == 0) {
      for (int i = 0; i < kHammerIters; ++i) {
        ctx.send_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ctx.recv_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        // Rank 6 keeps attributing RMA traffic to rank 7 after its death:
        // foreign-slot stores into a dead rank's accumulators must stay
        // race-free, and the undelivered packets are simply never read.
        ctx.rma_transfer(me + 1, me, world, sizeof buf);
      }
    } else {
      // Rank 7 dies inside one of these MPI_M_* calls or self-sends; the
      // RankCrashExit must unwind through the library, so none of the
      // ASSERTs below fire on a crashed rank.
      for (int c = 0; c < kChurnCycles; ++c) {
        MPI_M_msid a = -1;
        ASSERT_EQ(MPI_M_start(world, &a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_snapshot_start(a, 1e-3, 4, MPI_M_ALL_COMM),
                  MPI_M_SUCCESS);
        ctx.send_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ctx.recv_bytes(me, world, 3, mpi::CommKind::p2p, buf, sizeof buf);
        ASSERT_EQ(MPI_M_snapshot_stop(a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_suspend(a), MPI_M_SUCCESS);
        ASSERT_EQ(MPI_M_free(a), MPI_M_SUCCESS);
      }
    }

    // No world barrier after the crash -- the shrink IS the sync point
    // (failure-aware exchange instead of a collective over a dead member).
    const Comm alive = comm_shrink(world);
    ASSERT_EQ(alive.size(), kRanks - 1);
    ASSERT_EQ(MPI_M_suspend(keep), MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_rebind(keep, alive), MPI_M_SUCCESS);

    // Delta-exactness across the rebind: whatever the churn recorded, the
    // carried history plus a deterministic tail must add up exactly.
    unsigned long before[kRanks] = {0};
    ASSERT_EQ(MPI_M_get_data(keep, before, MPI_M_DATA_IGNORE, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    ASSERT_EQ(MPI_M_continue(keep), MPI_M_SUCCESS);
    for (unsigned long i = 0; i < kFinalIters; ++i) {
      ctx.send_bytes(me, world, 5, mpi::CommKind::p2p, buf, sizeof buf);
      ctx.recv_bytes(me, world, 5, mpi::CommKind::p2p, buf, sizeof buf);
    }
    ASSERT_EQ(MPI_M_suspend(keep), MPI_M_SUCCESS);
    unsigned long after[kRanks] = {0};
    ASSERT_EQ(MPI_M_get_data(keep, after, MPI_M_DATA_IGNORE, MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    const int new_me = mpi::comm_rank(alive);
    EXPECT_EQ(after[new_me] - before[new_me], kFinalIters);
    for (int peer = 0; peer < kRanks - 1; ++peer) {
      if (peer == new_me) continue;
      EXPECT_EQ(after[peer], before[peer]) << "peer " << peer;
    }

    // And a full post-rebind gather sees every survivor, no sentinels.
    std::vector<unsigned long> counts(static_cast<std::size_t>(kRanks - 1) *
                                      (kRanks - 1));
    EXPECT_EQ(MPI_M_allgather_data(keep, counts.data(), MPI_M_DATA_IGNORE,
                                   MPI_M_ALL_COMM),
              MPI_M_SUCCESS);
    for (unsigned long v : counts) EXPECT_NE(v, MPI_M_DATA_MISSING);

    ASSERT_EQ(MPI_M_free(keep), MPI_M_SUCCESS);
    MPI_M_finalize();
  });
  EXPECT_TRUE(engine.rank_dead(7));
}

}  // namespace
}  // namespace mpim
