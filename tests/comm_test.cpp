#include <gtest/gtest.h>

#include "minimpi/api.h"
#include "minimpi/engine.h"

namespace mpim::mpi {
namespace {

EngineConfig cfg8() {
  topo::Topology t({2, 1, 4}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  EngineConfig cfg{.cost_model = cost,
                   .placement = topo::round_robin_placement(8, t)};
  cfg.watchdog_wall_timeout_s = 3.0;
  return cfg;
}

TEST(Comm, WorldHasAllRanksInOrder) {
  Engine eng(cfg8());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    EXPECT_EQ(comm_size(world), 8);
    EXPECT_EQ(comm_rank(world), ctx.world_rank());
    EXPECT_EQ(world.world_rank_of(5), 5);
    EXPECT_EQ(world.context_id(), 0);
  });
}

TEST(Comm, SplitByParityGroupsCorrectly) {
  Engine eng(cfg8());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const Comm half = comm_split(world, r % 2, r);
    EXPECT_EQ(comm_size(half), 4);
    EXPECT_EQ(comm_rank(half), r / 2);
    EXPECT_EQ(half.world_rank_of(comm_rank(half)), r);
    // Communication inside the sub-communicator.
    int token = r;
    const int peer = (comm_rank(half) + 1) % comm_size(half);
    const int src = (comm_rank(half) + 3) % comm_size(half);
    sendrecv(&token, 1, Type::Int, peer, 0, &token, 1, src, 0, half);
    EXPECT_EQ(token, half.world_rank_of(src));
  });
}

TEST(Comm, SplitKeyControlsNewRankOrder) {
  Engine eng(cfg8());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    // Reverse the ranks: key = -rank.
    const Comm rev = comm_split(world, 0, -r);
    EXPECT_EQ(comm_rank(rev), 7 - r);
    EXPECT_EQ(rev.world_rank_of(0), 7);
  });
}

TEST(Comm, SplitKeyTiesBreakByParentRank) {
  Engine eng(cfg8());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const Comm same = comm_split(world, 0, 0);  // all keys equal
    EXPECT_EQ(comm_rank(same), comm_rank(world));
  });
}

TEST(Comm, SplitUndefinedColorGivesNull) {
  Engine eng(cfg8());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const Comm c = comm_split(world, r == 0 ? -1 : 1, r);
    if (r == 0) {
      EXPECT_TRUE(c.is_null());
    } else {
      EXPECT_EQ(comm_size(c), 7);
    }
  });
}

TEST(Comm, RepeatedSplitsAreIndependent) {
  Engine eng(cfg8());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const Comm a = comm_split(world, r % 2, r);
    const Comm b = comm_split(world, r % 2, r);
    EXPECT_NE(a.context_id(), b.context_id());
    // A message on `a` must not be received via `b`.
    if (comm_rank(a) == 0) {
      int v = 1;
      send(&v, 1, Type::Int, 1, 0, a);
    }
    if (comm_rank(b) == 1) {
      EXPECT_FALSE(iprobe(0, 0, b));
    }
    if (comm_rank(a) == 1) {
      int v = 0;
      recv(&v, 1, Type::Int, 0, 0, a);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Comm, NestedSplitOfSplit) {
  Engine eng(cfg8());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const Comm half = comm_split(world, r / 4, r);   // {0..3}, {4..7}
    const Comm pair = comm_split(half, comm_rank(half) / 2, r);
    EXPECT_EQ(comm_size(pair), 2);
    int sum = 0;
    int mine = r;
    allreduce(&mine, &sum, 1, Type::Int, Op::Sum, pair);
    const int base = (r / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
  });
}

TEST(Comm, DupIsSeparateContextSameGroup) {
  Engine eng(cfg8());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const Comm dup = comm_dup(world);
    EXPECT_EQ(dup.group(), world.group());
    EXPECT_NE(dup.context_id(), world.context_id());
    // Collective on the dup works.
    int v = comm_rank(dup), sum = 0;
    allreduce(&v, &sum, 1, Type::Int, Op::Sum, dup);
    EXPECT_EQ(sum, 28);
  });
}

TEST(Comm, CrossCommunicatorTrafficKeepsWorldVisible) {
  // Messages sent on a sub-communicator are still between world ranks --
  // the property the monitoring's "both endpoints in the session comm"
  // rule relies on.
  Engine eng(cfg8());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const Comm evens = comm_split(world, r % 2 == 0 ? 0 : -1, r);
    if (r % 2 == 0) {
      const int er = comm_rank(evens);
      if (er == 0) {
        int v = 5;
        send(&v, 1, Type::Int, 1, 0, evens);  // world rank 2
      } else if (er == 1) {
        int v = 0;
        const Status st = recv(&v, 1, Type::Int, 0, 0, evens);
        EXPECT_EQ(st.source, 0);           // rank in `evens`
        EXPECT_EQ(ctx.world_rank(), 2);    // we are world rank 2
      }
    }
  });
}

}  // namespace
}  // namespace mpim::mpi
