// Streaming aggregation plane: mergeable sketches, the lock-free ingest
// layer and its drop accounting, epoch-aligned JSONL export (including the
// crash-teardown ordering that keeps flushed epochs on disk), clock
// bit-identity with the plane on/off, the governor's widen rung, the
// environment attach path, the pvar-table doc drift check, and the
// monview --live tailer over canned (torn/malformed) stream files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "mpimon/governor.h"
#include "mpit/pvar.h"
#include "obsplane/plane.h"
#include "obsplane/sketch.h"
#include "telemetry/hub.h"
#include "tools/liveview.h"

namespace mpim::obsplane {
namespace {

namespace fs = std::filesystem;
using mpi::Comm;
using mpi::Ctx;
using mpi::Type;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  return lines;
}

std::size_t count_type(const std::vector<std::string>& lines,
                       const std::string& type) {
  std::size_t n = 0;
  for (const auto& l : lines)
    if (l.find("\"type\":\"" + type + "\"") != std::string::npos) ++n;
  return n;
}

mpi::EngineConfig small_cfg(int nranks,
                            std::shared_ptr<fault::FaultPlan> plan = nullptr) {
  topo::Topology t({2, 1, 4}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, /*send_overhead=*/1e-7);
  mpi::EngineConfig cfg{.cost_model = cost,
                       .placement = topo::round_robin_placement(nranks, t)};
  cfg.watchdog_wall_timeout_s = 5.0;
  cfg.fault_plan = std::move(plan);
  return cfg;
}

/// A few epochs of mixed traffic: ring p2p, compute, one allreduce.
void ring_workload(Ctx& ctx) {
  const Comm world = ctx.world();
  const int n = mpi::comm_size(world);
  const int me = mpi::comm_rank(world);
  for (int iter = 0; iter < 6; ++iter) {
    mpi::compute(3e-4);
    // Sizes vary per iteration (uniform across ranks so the ring's recv
    // buffers always fit) to give the sketches a spread of deltas.
    std::vector<char> buf(512 * static_cast<std::size_t>(iter + 1), 7);
    const int dst = (me + 1) % n;
    const int src = (me + n - 1) % n;
    mpi::sendrecv(buf.data(), buf.size(), Type::Char, dst, 0, buf.data(),
                  buf.size(), src, 0, world);
  }
  long v = me, sum = 0;
  mpi::allreduce(&v, &sum, 1, Type::Long, mpi::Op::Sum, world);
}

// --- sketches ----------------------------------------------------------------

TEST(ObsplaneSketch, Log2HistObservesMergesAndBounds) {
  Log2Hist a, b;
  a.observe(0);
  a.observe(1);
  a.observe(5);
  b.observe(1024);
  b.observe(1 << 20);
  EXPECT_EQ(a.count(), 3u);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum(), 0ull + 1 + 5 + 1024 + (1 << 20));
  // The p50 bound covers at least half the mass; p100 covers the max.
  EXPECT_GE(a.percentile_bound(1.0), static_cast<std::uint64_t>(1 << 20));
  EXPECT_LE(a.percentile_bound(0.0), a.percentile_bound(0.99));
}

TEST(ObsplaneSketch, MergingAnEmptyQuantileSketchIsANoOpEitherWay) {
  QuantileSketch filled, empty;
  for (std::uint64_t v = 1; v <= 100; ++v) filled.observe(v);
  const std::uint64_t med_before = filled.quantile(0.5);

  filled.merge(empty);  // empty into filled: nothing changes
  EXPECT_EQ(filled.count(), 100u);
  EXPECT_EQ(filled.quantile(0.5), med_before);

  empty.merge(QuantileSketch{});  // empty into empty: still empty
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.stored(), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0u);  // the documented empty answer

  empty.merge(filled);  // filled into empty adopts the distribution
  EXPECT_EQ(empty.count(), 100u);
  EXPECT_EQ(empty.quantile(1.0), filled.quantile(1.0));
}

TEST(ObsplaneSketch, SingleCentroidAnswersEveryQuantileWithItsValue) {
  QuantileSketch s;
  s.observe(42);
  EXPECT_EQ(s.stored(), 1u);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_EQ(s.quantile(q), 42u) << "q=" << q;
  // Out-of-range q clamps instead of reading past the centroid list.
  EXPECT_EQ(s.quantile(-1.0), 42u);
  EXPECT_EQ(s.quantile(2.0), 42u);
}

TEST(ObsplaneSketch, Log2HistMergeSaturatesInsteadOfWrapping) {
  constexpr std::uint64_t kMax = ~0ull;
  Log2Hist a, b;
  a.observe(kMax);  // top bucket, sum_ == kMax
  b.observe(kMax);
  b.observe(3);
  a.merge(b);
  // A wrapping add would fold sum_ back near zero and invert the
  // percentile bounds; saturation pins count/sum/buckets at the ceiling.
  EXPECT_EQ(a.sum(), kMax);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket(Log2Hist::bucket_of(kMax)), 2u);
  EXPECT_EQ(a.percentile_bound(1.0), kMax);

  // Merging two saturated histograms stays saturated (idempotent ceiling).
  Log2Hist c = a;
  c.merge(a);
  EXPECT_EQ(c.sum(), kMax);
  EXPECT_GE(c.percentile_bound(1.0), c.percentile_bound(0.5));
}

TEST(ObsplaneSketch, QuantileSketchStaysBoundedAndMerges) {
  QuantileSketch s;
  for (std::uint64_t v = 1; v <= 10000; ++v) s.observe(v);
  EXPECT_EQ(s.count(), 10000u);
  EXPECT_LE(s.stored(), 64u);  // compaction keeps the footprint capped
  const std::uint64_t med = s.quantile(0.5);
  EXPECT_GT(med, 2500u);
  EXPECT_LT(med, 7500u);
  QuantileSketch hi;
  for (std::uint64_t v = 100000; v < 100100; ++v) hi.observe(v);
  s.merge(hi);
  EXPECT_EQ(s.count(), 10100u);
  EXPECT_GE(s.quantile(1.0), 10000u);
}

// --- ingest + store ----------------------------------------------------------

TEST(ObsplanePlane, IngestsMetricsAndReconcilesDropAccounting) {
  const std::string path = temp_path("obsplane_ingest.jsonl");
  std::remove(path.c_str());
  mpi::Engine eng(small_cfg(4));
  PlaneConfig cfg;
  cfg.epoch_s = 2e-4;
  cfg.stream_path = path;
  auto plane = Plane::attach(eng, cfg);
  ASSERT_NE(plane, nullptr);
  EXPECT_EQ(Plane::attached(eng), plane.get());
  eng.run(ring_workload);

  EXPECT_TRUE(plane->finalized());
  EXPECT_GT(plane->events_ingested(), 0u);
  EXPECT_GT(plane->epochs_emitted(), 0u);
  // Sequence numbers account for every staging attempt exactly once.
  EXPECT_EQ(plane->events_attempted(),
            plane->events_ingested() + plane->events_dropped());
  EXPECT_GT(plane->series_count(), 0u);
  EXPECT_GT(plane->store_bytes(), 0u);

  // Per-series store: engine_bytes deltas for rank 0 sum to the registry
  // cumulative value, and the sketch sees the same mass.
  const auto buckets = plane->series_buckets(0, "engine_bytes");
  ASSERT_FALSE(buckets.empty());
  std::uint64_t sum = 0;
  for (const auto& [e, d] : buckets) sum += d;
  const auto& hub = eng.telemetry();
  EXPECT_EQ(sum, hub.registry().counter_value(hub.ids().engine_bytes, 0));
  EXPECT_GT(plane->series_quantile(0, "engine_bytes", 1.0), 0u);

  const auto lines = read_lines(path);
  EXPECT_EQ(count_type(lines, "run_start"), 1u);
  EXPECT_GT(count_type(lines, "epoch"), 0u);
  EXPECT_GT(count_type(lines, "metric"), 0u);
  EXPECT_EQ(count_type(lines, "epoch_end"), count_type(lines, "epoch"));
  EXPECT_EQ(count_type(lines, "run_end"), 1u);
  std::remove(path.c_str());
}

TEST(ObsplanePlane, TinyRingsDropNewestButAccountingStillReconciles) {
  mpi::Engine eng(small_cfg(4));
  PlaneConfig cfg;
  cfg.epoch_s = 1e-4;   // many flushes...
  cfg.ring_capacity = 2;  // ...into almost no staging room
  auto plane = Plane::attach(eng, cfg);
  ASSERT_NE(plane, nullptr);
  eng.run(ring_workload);
  EXPECT_GT(plane->events_dropped(), 0u);
  EXPECT_EQ(plane->events_attempted(),
            plane->events_ingested() + plane->events_dropped());
}

TEST(ObsplanePlane, ClocksBitIdenticalWithAndWithoutPlane) {
  mpi::Engine bare(small_cfg(4));
  bare.run(ring_workload);
  const std::vector<double> base = bare.final_clocks();

  const std::string path = temp_path("obsplane_clock.jsonl");
  std::remove(path.c_str());
  mpi::Engine monitored(small_cfg(4));
  PlaneConfig cfg;
  cfg.epoch_s = 1e-4;
  cfg.stream_path = path;
  auto plane = Plane::attach(monitored, cfg);
  ASSERT_NE(plane, nullptr);
  monitored.run(ring_workload);
  ASSERT_GT(plane->epochs_emitted(), 0u);  // the plane actually observed

  const std::vector<double> observed = monitored.final_clocks();
  ASSERT_EQ(base.size(), observed.size());
  for (std::size_t r = 0; r < base.size(); ++r)
    EXPECT_EQ(base[r], observed[r]) << "rank " << r;  // bit-identical
  std::remove(path.c_str());
}

TEST(ObsplanePlane, SamePlaneObservesARerunAfterFinalize) {
  const std::string path = temp_path("obsplane_rerun.jsonl");
  std::remove(path.c_str());
  mpi::Engine eng(small_cfg(4));
  PlaneConfig cfg;
  cfg.epoch_s = 2e-4;
  cfg.stream_path = path;
  auto plane = Plane::attach(eng, cfg);
  ASSERT_NE(plane, nullptr);
  eng.run(ring_workload);
  EXPECT_TRUE(plane->finalized());
  eng.run(ring_workload);  // run-begin hook re-arms the plane
  EXPECT_TRUE(plane->finalized());
  const auto lines = read_lines(path);
  EXPECT_EQ(count_type(lines, "run_start"), 2u);
  EXPECT_EQ(count_type(lines, "run_end"), 2u);
  std::remove(path.c_str());
}

// --- satellite: crash teardown keeps flushed epochs on disk ------------------

TEST(ObsplaneStream, CrashedRankEpochsSurviveInStreamFile) {
  const std::string path = temp_path("obsplane_crash.jsonl");
  std::remove(path.c_str());
  auto plan = std::make_shared<fault::FaultPlan>(1);
  fault::RankFault crash;
  crash.rank = 2;
  crash.crash_at_s = 8e-4;
  plan->add(crash);

  mpi::Engine eng(small_cfg(4, plan));
  PlaneConfig cfg;
  cfg.epoch_s = 2e-4;
  cfg.stream_path = path;
  auto plane = Plane::attach(eng, cfg);
  ASSERT_NE(plane, nullptr);
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int me = mpi::comm_rank(world);
    mpi::compute(2e-3);  // rank 2 dies mid-compute; survivors keep going
    if (me == 0) {
      char c = 1;
      mpi::send(&c, 1, Type::Char, 1, 0, world);
    } else if (me == 1) {
      char c = 0;
      mpi::recv(&c, 1, Type::Char, 0, 0, world);
    }
  });

  EXPECT_EQ(eng.dead_ranks(), std::vector<int>{2});
  EXPECT_TRUE(plane->finalized());  // run-end hook ran despite the crash
  const auto lines = read_lines(path);
  EXPECT_EQ(count_type(lines, "run_start"), 1u);
  EXPECT_GT(count_type(lines, "epoch"), 0u);
  EXPECT_EQ(count_type(lines, "run_end"), 1u);
  // The crash itself lands on the event lane.
  bool saw_crash = false;
  for (const auto& l : lines)
    if (l.find("\"what\":\"crash\"") != std::string::npos) saw_crash = true;
  EXPECT_TRUE(saw_crash);
  std::remove(path.c_str());
}

// --- governor rung -----------------------------------------------------------

TEST(ObsplaneGovernor, WidenRungDoublesMergeAndRekeysBuckets) {
  mpi::Engine eng(small_cfg(4));
  PlaneConfig cfg;
  cfg.epoch_s = 1e-4;
  auto plane = Plane::attach(eng, cfg);
  ASSERT_NE(plane, nullptr);
  eng.run(ring_workload);
  EXPECT_EQ(plane->window_merge(), 1);
  const auto before = plane->series_buckets(0, "engine_bytes");
  ASSERT_GT(before.size(), 1u);
  std::uint64_t mass = 0;
  for (const auto& [e, d] : before) mass += d;

  plane->widen_windows();
  EXPECT_EQ(plane->window_merge(), 2);
  const auto after = plane->series_buckets(0, "engine_bytes");
  EXPECT_LT(after.size(), before.size() + 1);  // coarser or equal, never more
  std::uint64_t mass2 = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    mass2 += after[i].second;
    if (i > 0) EXPECT_LT(after[i - 1].first, after[i].first);
  }
  EXPECT_EQ(mass, mass2);  // widening never loses counted mass
}

TEST(ObsplaneGovernor, MemoryPressureClimbsThroughTheWidenRung) {
  ::setenv("MPIM_MEM_BUDGET_BYTES", "1", 1);
  mpi::Engine eng(small_cfg(4));
  PlaneConfig cfg;
  cfg.epoch_s = 1e-3;
  auto plane = Plane::attach(eng, cfg);
  ASSERT_NE(plane, nullptr);
  auto& gov = mon::Governor::of(eng);
  ::unsetenv("MPIM_MEM_BUDGET_BYTES");
  // A 1-byte budget walks the whole ladder at construction; rung 3 is the
  // plane's widen step, rung 4 the span drop.
  EXPECT_EQ(gov.shed_level(), 4);
  EXPECT_GE(gov.shed_steps(), 4u);
  EXPECT_EQ(plane->window_merge(), 2);
  EXPECT_TRUE(eng.telemetry().spans_suppressed());
}

// --- environment attach ------------------------------------------------------

TEST(ObsplaneEnv, AttachFromEnvNeedsStreamFileAndParsesStrictly) {
  ::unsetenv("MPIM_STREAM_FILE");
  mpi::Engine eng(small_cfg(2));
  EXPECT_EQ(Plane::attach_from_env(eng), nullptr);

  const std::string path = temp_path("obsplane_env.jsonl");
  std::remove(path.c_str());
  ::setenv("MPIM_STREAM_FILE", path.c_str(), 1);
  ::setenv("MPIM_STREAM_EPOCH_S", "2 laps", 1);  // garbage: default survives
  auto plane = Plane::attach_from_env(eng);
  ASSERT_NE(plane, nullptr);
  EXPECT_DOUBLE_EQ(plane->epoch_s(), PlaneConfig{}.epoch_s);
  EXPECT_EQ(Plane::attach_from_env(eng), nullptr);  // already attached

  mpi::Engine other(small_cfg(2));
  ::setenv("MPIM_STREAM_EPOCH_S", "5e-4", 1);
  auto plane2 = Plane::attach_from_env(other);
  ASSERT_NE(plane2, nullptr);
  EXPECT_DOUBLE_EQ(plane2->epoch_s(), 5e-4);
  ::unsetenv("MPIM_STREAM_FILE");
  ::unsetenv("MPIM_STREAM_EPOCH_S");
  std::remove(path.c_str());
}

// --- prometheus exposition ---------------------------------------------------

TEST(ObsplanePlane, PrometheusSnapshotExposesSeriesAndSelfMetrics) {
  mpi::Engine eng(small_cfg(4));
  PlaneConfig cfg;
  cfg.epoch_s = 2e-4;
  auto plane = Plane::attach(eng, cfg);
  ASSERT_NE(plane, nullptr);
  eng.run(ring_workload);
  std::ostringstream os;
  plane->write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("mpim_stream_engine_bytes_total"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("mpim_obsplane_events_total"), std::string::npos);
}

// --- satellite: pvar table docs cannot drift ---------------------------------

TEST(ObsplaneDocs, ObservabilityPvarTableMatchesTheFrozenIndex) {
  const std::string doc =
      std::string(MPIM_SOURCE_DIR) + "/docs/OBSERVABILITY.md";
  std::ifstream f(doc);
  ASSERT_TRUE(f.is_open()) << doc;
  // Collect "| <index> | `<name>` |" rows from the pvar index table.
  std::vector<std::pair<int, std::string>> rows;
  std::string line;
  while (std::getline(f, line)) {
    int idx = -1;
    char name[128] = {0};
    if (std::sscanf(line.c_str(), "| %d | `%127[^`]` |", &idx, name) == 2)
      rows.emplace_back(idx, name);
  }
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(mpit::pvar_get_num()))
      << "docs/OBSERVABILITY.md pvar table is out of sync";
  for (const auto& [idx, name] : rows) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, mpit::pvar_get_num());
    EXPECT_EQ(name, mpit::pvar_info(idx).name) << "index " << idx;
  }
}

// --- satellite: monview --live over canned stream files ----------------------

TEST(ObsplaneLive, TailerToleratesTornLinesOutOfOrderEpochsAndMissingRanks) {
  const std::string path = temp_path("obsplane_live.jsonl");
  {
    std::ofstream f(path, std::ios::trunc);
    f << "{\"type\":\"run_start\",\"job\":\"j\",\"ranks\":4,"
         "\"epoch_s\":0.001,\"version\":1}\n";
    // Epoch 1 lands before epoch 0 (late producer): both must apply.
    f << "{\"type\":\"epoch\",\"e\":1,\"t0\":0.001,\"t1\":0.002}\n";
    f << "{\"type\":\"metric\",\"e\":1,\"rank\":0,\"name\":\"engine_bytes\","
         "\"delta\":100}\n";
    f << "{\"type\":\"epoch\",\"e\":0,\"t0\":0,\"t1\":0.001}\n";
    // Only ranks 0 and 2 ever report; 1 and 3 stay missing.
    f << "{\"type\":\"metric\",\"e\":0,\"rank\":2,\"name\":\"engine_bytes\","
         "\"delta\":50}\n";
    f << "this is not json\n";
    f << "{\"type\":\"link\",\"e\":1,\"node\":0,\"tx\":4096}\n";
    // Torn mid-record write: no trailing newline yet.
    f << "{\"type\":\"event\",\"e\":1,\"rank\":2,\"wh";
  }
  tools::StreamTail tail(path);
  EXPECT_EQ(tail.poll(), 6u);
  const auto& st = tail.state();
  EXPECT_EQ(st.ranks, 4);
  EXPECT_EQ(st.last_epoch, 0);  // latest header seen, even out of order
  EXPECT_EQ(st.max_epoch, 1);
  EXPECT_EQ(st.parse_errors, 1u);  // the garbage line, not the torn one
  EXPECT_EQ(st.rank_bytes.at(0), 100u);
  EXPECT_EQ(st.rank_bytes.at(2), 50u);
  EXPECT_EQ(st.rank_bytes.count(1), 0u);
  EXPECT_EQ(st.node_tx.at(0), 4096u);

  // The torn record completes on the next append; nothing was lost.
  {
    std::ofstream f(path, std::ios::app);
    f << "at\":\"crash\",\"t\":0.0015}\n";
    f << "{\"type\":\"run_end\",\"epochs\":2,\"events\":3,\"drops\":0,"
         "\"findings\":0}\n";
  }
  EXPECT_EQ(tail.poll(), 2u);
  EXPECT_TRUE(st.run_ended);
  EXPECT_EQ(st.run_end_epochs, 2u);
  ASSERT_EQ(st.event_lane.size(), 1u);
  EXPECT_NE(st.event_lane.back().find("crash"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsplaneLive, RenderShowsTalkersLinksEventsAndFindings) {
  tools::LiveState st;
  st.apply_line(
      "{\"type\":\"run_start\",\"job\":\"demo\",\"ranks\":2,"
      "\"epoch_s\":0.001,\"version\":1}");
  st.apply_line(
      "{\"type\":\"metric\",\"e\":0,\"rank\":1,\"name\":\"engine_bytes\","
      "\"delta\":2048}");
  st.apply_line(
      "{\"type\":\"metric\",\"e\":0,\"rank\":0,\"name\":\"engine_bytes\","
      "\"delta\":1024}");
  st.apply_line("{\"type\":\"link\",\"e\":0,\"node\":0,\"tx\":512}");
  st.apply_line(
      "{\"type\":\"event\",\"e\":0,\"rank\":1,\"what\":\"rebind\","
      "\"t\":0.0005}");
  st.apply_line(
      "{\"type\":\"finding\",\"kind\":\"degraded_link\",\"subject\":\"link\","
      "\"e0\":0,\"e1\":3,\"text\":\"link 0-1 degraded\"}");
  std::ostringstream os;
  tools::render_live(st, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("job demo"), std::string::npos);
  EXPECT_NE(out.find("top talkers"), std::string::npos);
  const auto r1 = out.find("r1 |");
  const auto r0 = out.find("r0 |");
  ASSERT_NE(r1, std::string::npos);
  ASSERT_NE(r0, std::string::npos);
  EXPECT_LT(r1, r0);  // sorted by bytes, heaviest first
  EXPECT_NE(out.find("node0"), std::string::npos);
  EXPECT_NE(out.find("rebind"), std::string::npos);
  EXPECT_NE(out.find("link 0-1 degraded"), std::string::npos);
}

}  // namespace
}  // namespace mpim::obsplane
