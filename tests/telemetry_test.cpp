#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "mpimon/governor.h"
#include "mpimon/sim.h"
#include "mpit/pvar.h"
#include "mpit/runtime.h"
#include "support/error.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"
#include "telemetry/log.h"
#include "telemetry/registry.h"
#include "telemetry/ring.h"

namespace mpim::telemetry {
namespace {

using mpi::Comm;
using mpi::Ctx;
using mpi::Type;

// --- minimal JSON validator -------------------------------------------------
// Recursive-descent syntax check (no DOM): enough to prove the Chrome trace
// exporter emits well-formed JSON that chrome://tracing would accept.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : p_(s.data()), end_(p_ + s.size()) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return p_ == end_;
  }

 private:
  bool value() {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++p_;  // '{'
    ws();
    if (p_ != end_ && *p_ == '}') return ++p_, true;
    while (true) {
      ws();
      if (p_ == end_ || *p_ != '"' || !string()) return false;
      ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      ws();
      if (!value()) return false;
      ws();
      if (p_ == end_) return false;
      if (*p_ == '}') return ++p_, true;
      if (*p_ != ',') return false;
      ++p_;
    }
  }

  bool array() {
    ++p_;  // '['
    ws();
    if (p_ != end_ && *p_ == ']') return ++p_, true;
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (p_ == end_) return false;
      if (*p_ == ']') return ++p_, true;
      if (*p_ != ',') return false;
      ++p_;
    }
  }

  bool string() {
    ++p_;  // '"'
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;
    return true;
  }

  bool number() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      if (std::isdigit(static_cast<unsigned char>(*p_))) digits = true;
      ++p_;
    }
    return digits && p_ != start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0)
      return false;
    p_ += n;
    return true;
  }

  void ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      ++p_;
  }

  const char* p_;
  const char* end_;
};

// --- Ring -------------------------------------------------------------------

TEST(Ring, HoldsEverythingBelowCapacity) {
  Ring<int> ring(4);
  ring.push(10);
  ring.push(11);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{10, 11}));
}

TEST(Ring, WraparoundDropsOldestAndCounts) {
  Ring<int> ring(3);
  for (int i = 0; i < 10; ++i) ring.push(i);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 7u);
  // Oldest-first suffix of the push sequence.
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{7, 8, 9}));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Ring, ZeroCapacityIsCoercedToOne) {
  Ring<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(42);
  ring.push(43);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{43}));
  EXPECT_EQ(ring.dropped(), 1u);
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, CountersMergeAcrossRanks) {
  Registry reg(4);
  const int id = reg.define_counter("msgs", "messages");
  reg.add(id, 0, 3);
  reg.add(id, 2, 5);
  reg.add(id, 2);  // default increment
  EXPECT_EQ(reg.counter_value(id, 0), 3u);
  EXPECT_EQ(reg.counter_value(id, 1), 0u);
  EXPECT_EQ(reg.counter_value(id, 2), 6u);
  EXPECT_EQ(reg.counter_total(id), 9u);
  EXPECT_EQ(reg.find("msgs"), id);
  EXPECT_EQ(reg.find("no_such"), -1);
  reg.reset();
  EXPECT_EQ(reg.counter_total(id), 0u);
}

TEST(Registry, GaugesGoNegativeAndMerge) {
  Registry reg(2);
  const int id = reg.define_gauge("in_flight", "bytes in flight");
  reg.gauge_add(id, 0, 100);
  reg.gauge_add(id, 0, -140);
  reg.gauge_add(id, 1, 25);
  EXPECT_EQ(reg.gauge_value(id, 0), -40);
  EXPECT_EQ(reg.gauge_value(id, 1), 25);
  EXPECT_EQ(reg.gauge_total(id), -15);
  reg.gauge_set(id, 0, 7);
  EXPECT_EQ(reg.gauge_value(id, 0), 7);
}

TEST(Registry, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Registry reg(1);
  const int id = reg.define_histogram("lat", "latency", {1.0, 10.0, 100.0});
  reg.observe(id, 0, 0.5);     // bucket 0
  reg.observe(id, 0, 1.0);     // bucket 0: bounds are inclusive
  reg.observe(id, 0, 1.0001);  // bucket 1
  reg.observe(id, 0, 10.0);    // bucket 1
  reg.observe(id, 0, 100.0);   // bucket 2
  reg.observe(id, 0, 100.01);  // overflow
  const Registry::HistView v = reg.histogram(id, 0);
  ASSERT_EQ(v.bounds.size(), 3u);
  ASSERT_EQ(v.buckets.size(), 4u);
  EXPECT_EQ(v.buckets[0], 2u);
  EXPECT_EQ(v.buckets[1], 2u);
  EXPECT_EQ(v.buckets[2], 1u);
  EXPECT_EQ(v.buckets[3], 1u);
  EXPECT_EQ(v.count, 6u);
  EXPECT_EQ(reg.scalar_value(id, 0), 6u);  // scalar view = observation count
}

TEST(Registry, HistogramTotalsMergeRanks) {
  Registry reg(3);
  const int id = reg.define_histogram("sz", "sizes", {8.0});
  reg.observe(id, 0, 4.0);
  reg.observe(id, 1, 4.0);
  reg.observe(id, 2, 99.0);
  const Registry::HistView v = reg.histogram_total(id);
  EXPECT_EQ(v.buckets[0], 2u);
  EXPECT_EQ(v.buckets[1], 1u);
  EXPECT_EQ(v.count, 3u);
}

TEST(Registry, RejectsDuplicateAndEmptyNames) {
  Registry reg(1);
  reg.define_counter("a", "first");
  EXPECT_THROW(reg.define_counter("a", "again"), Error);
  EXPECT_THROW(reg.define_gauge("", "anonymous"), Error);
}

// --- Hub spans --------------------------------------------------------------

TEST(Hub, DisabledHubRecordsNothing) {
  Hub hub(2);
  EXPECT_FALSE(hub.enabled());
  hub.add(hub.ids().engine_messages, 0);
  EXPECT_FALSE(hub.span_begin(0, "bcast", 'C', 0.0));
  hub.span_complete(0, "mon.session", 'S', 0.0, 1.0);
  EXPECT_EQ(hub.registry().counter_total(hub.ids().engine_messages), 0u);
  EXPECT_EQ(hub.spans_recorded(), 0u);
}

TEST(Hub, SpansNestWithDepths) {
  Hub hub(1);
  hub.set_enabled(true);
  ASSERT_TRUE(hub.span_begin(0, "allreduce", 'C', 1.0));
  hub.span_complete(0, "p2p.send", 'M', 1.1, 1.2, /*a=*/3, /*b=*/64);
  hub.span_end(0, 2.0);
  const std::vector<SpanRec> spans = hub.spans(0);
  ASSERT_EQ(spans.size(), 2u);
  // The child closed first; the parent records the depth after popping.
  EXPECT_STREQ(spans[0].name, "p2p.send");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[0].a, 3);
  EXPECT_EQ(spans[0].b, 64);
  EXPECT_STREQ(spans[1].name, "allreduce");
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_DOUBLE_EQ(spans[1].t0_s, 1.0);
  EXPECT_DOUBLE_EQ(spans[1].t1_s, 2.0);
}

TEST(Hub, SpanRingWrapsAndCountsDrops) {
  Hub hub(1, /*span_capacity=*/4);
  hub.set_enabled(true);
  for (int i = 0; i < 10; ++i)
    hub.span_complete(0, "tick", 'S', i, i + 0.5);
  EXPECT_EQ(hub.spans(0).size(), 4u);
  EXPECT_EQ(hub.spans_recorded(), 10u);
  EXPECT_EQ(hub.spans_dropped(), 6u);
  hub.reset();
  EXPECT_EQ(hub.spans_dropped(), 0u);
  EXPECT_EQ(hub.spans(0).size(), 0u);
}

TEST(Hub, LongSpanNamesAreTruncatedNotOverflowed) {
  Hub hub(1);
  hub.set_enabled(true);
  hub.span_complete(0, "a_very_long_span_name_that_exceeds_the_cap", 'R', 0,
                    1);
  const std::vector<SpanRec> spans = hub.spans(0);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::strlen(spans[0].name), SpanRec::kNameCap - 1);
}

// --- exporters --------------------------------------------------------------

TEST(Export, ChromeTraceIsWellFormedJson) {
  Hub hub(2);
  hub.set_enabled(true);
  ASSERT_TRUE(hub.span_begin(0, "bcast", 'C', 0.0));
  hub.span_complete(0, "p2p.send", 'M', 0.1, 0.2, 1, 1024);
  hub.span_end(0, 0.5);
  hub.span_complete(1, "mon.session", 'S', 0.0, 0.4);
  hub.add(hub.ids().engine_messages, 0, 2);
  std::ostringstream os;
  write_chrome_trace(hub, os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"p2p.send\""), std::string::npos);
  EXPECT_NE(json.find("mpim_engine_messages_total"), std::string::npos);
}

TEST(Export, MetricsCsvHasHeaderAndHistogramRows) {
  Hub hub(2);
  hub.set_enabled(true);
  hub.add(hub.ids().engine_messages, 1, 7);
  hub.observe(hub.ids().engine_msg_bytes, 0, 100.0);
  std::ostringstream os;
  write_metrics_csv(hub, os);
  std::istringstream is(os.str());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "metric,kind,rank,field,value");
  EXPECT_NE(os.str().find("mpim_engine_messages_total,counter,1,value,7"),
            std::string::npos);
  EXPECT_NE(os.str().find("mpim_engine_message_bytes,histogram,0,le=64,0"),
            std::string::npos);
  EXPECT_NE(os.str().find("mpim_engine_message_bytes,histogram,0,count,1"),
            std::string::npos);
}

// --- structured logger ------------------------------------------------------

TEST(Log, WritesJsonlWhenEnvSet) {
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / "mpim_log.jsonl").string();
  std::remove(path.c_str());
  ::setenv("MPIM_LOG_FILE", path.c_str(), 1);
  log(LogLevel::warn, 3, "reorder", "falling back: \"partial\" data");
  log(LogLevel::error, 0, "engine", "deadlock\nreport");
  ::unsetenv("MPIM_LOG_FILE");

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(Log, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Log, LevelFilterSuppressesBelowThresholdAndSurvivesGarbage) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "mpim_log_lvl.jsonl").string();
  const auto lines_in_file = [&] {
    std::ifstream is(path);
    std::string line;
    int n = 0;
    while (std::getline(is, line)) ++n;
    return n;
  };
  std::remove(path.c_str());
  ::setenv("MPIM_LOG_FILE", path.c_str(), 1);

  ::setenv("MPIM_LOG_LEVEL", "warn", 1);
  log(LogLevel::debug, 0, "t", "hidden");
  log(LogLevel::info, 0, "t", "hidden");
  log(LogLevel::warn, 0, "t", "shown");
  log(LogLevel::error, 0, "t", "shown");
  EXPECT_EQ(lines_in_file(), 2);

  ::setenv("MPIM_LOG_LEVEL", " ERROR ", 1);  // case + whitespace tolerated
  log(LogLevel::warn, 0, "t", "hidden");
  log(LogLevel::error, 0, "t", "shown");
  EXPECT_EQ(lines_in_file(), 3);

  // An unparsable level must never cost diagnostics: everything flows.
  ::setenv("MPIM_LOG_LEVEL", "verbose", 1);
  log(LogLevel::debug, 0, "t", "shown");
  log(LogLevel::error, 0, "t", "shown");
  EXPECT_EQ(lines_in_file(), 5);

  ::unsetenv("MPIM_LOG_LEVEL");
  log(LogLevel::debug, 0, "t", "shown");  // unset: everything flows
  EXPECT_EQ(lines_in_file(), 6);
  ::unsetenv("MPIM_LOG_FILE");
  std::remove(path.c_str());
}

TEST(Log, GarbageLogFileValueIsRejectedNotUsedAsPath) {
  namespace fs = std::filesystem;
  // A whitespace-only MPIM_LOG_FILE used verbatim would append to a file
  // literally named " " in the current directory; the strict parse must
  // reject it and keep logging stderr-only.
  const auto cwd = fs::current_path();
  fs::current_path(fs::temp_directory_path());
  std::remove(" ");
  ::setenv("MPIM_LOG_FILE", " ", 1);
  log(LogLevel::warn, 0, "t", "rejected sink");
  ::setenv("MPIM_LOG_FILE", "", 1);
  log(LogLevel::warn, 0, "t", "rejected sink");
  ::unsetenv("MPIM_LOG_FILE");
  EXPECT_FALSE(fs::exists(" "));
  EXPECT_FALSE(fs::exists(""));
  fs::current_path(cwd);

  // A path with surrounding spaces is a real (odd) path, kept verbatim.
  const std::string spaced =
      (fs::temp_directory_path() / " mpim spaced.jsonl").string();
  std::remove(spaced.c_str());
  ::setenv("MPIM_LOG_FILE", spaced.c_str(), 1);
  log(LogLevel::warn, 0, "t", "kept verbatim");
  ::unsetenv("MPIM_LOG_FILE");
  std::ifstream is(spaced);
  EXPECT_TRUE(is.good());
  std::remove(spaced.c_str());
}

// --- exporters under governor shedding --------------------------------------

// The span CSV has one data row per record still in the rings; pushed
// minus evicted must equal the row count exactly, whatever capacity
// changes (level-2 style sheds) happened while recording.
TEST(ExportShed, SpanCsvRowsReconcileWithDropCountersUnderShedding) {
  Hub hub(2, /*span_capacity=*/64);
  hub.set_enabled(true);
  for (int i = 0; i < 50; ++i)
    hub.span_complete(0, "coll.bcast", 'C', i * 1e-3, i * 1e-3 + 1e-4);
  hub.set_span_soft_capacity(16);  // governor level-2 shed mid-run
  for (int i = 0; i < 50; ++i)
    hub.span_complete(1, "p2p.send", 'M', i * 1e-3, i * 1e-3 + 1e-4, 0, 64);
  EXPECT_GT(hub.spans_dropped(), 0u);

  std::ostringstream csv;
  write_spans_csv(hub, csv);
  std::istringstream is(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));  // header
  EXPECT_EQ(line, "rank,name,cat,depth,t0_s,t1_s,a,b");
  std::uint64_t rows = 0;
  while (std::getline(is, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, hub.spans_recorded() - hub.spans_dropped());

  std::ostringstream trace;
  write_chrome_trace(hub, trace);
  EXPECT_TRUE(JsonChecker(trace.str()).valid());
}

// Real-governor variant: a memory budget sized to stop the ladder exactly
// at level 2 (rings halved, spans still recorded). The exports must stay
// well-formed and reconciled while the budget is actively shedding.
TEST(ExportShed, BudgetedRunKeepsExportsWellFormedAndReconciled) {
  const int nranks = 4;
  auto cost = net::CostModel::plafrim_like(2);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(nranks, cost.topology())};
  Sim sim(std::move(cfg));
  Hub& hub = sim.engine().telemetry();
  hub.set_enabled(true);

  const std::uint64_t full = static_cast<std::uint64_t>(nranks) *
                             hub.span_capacity() * sizeof(SpanRec);
  ::setenv("MPIM_MEM_BUDGET_BYTES", std::to_string(full * 3 / 4).c_str(), 1);
  // Tool objects are interned per run, so the governor must come to life
  // inside the workload (as it does via the MPI_M entry points).
  sim.run([](Ctx& ctx) {
    mon::Governor::of(ctx.engine());
    const Comm world = ctx.world();
    int v = ctx.world_rank();
    for (int i = 0; i < 4; ++i) {
      mpi::bcast(&v, 1, Type::Int, 0, world);
      mpi::barrier(world);
    }
  });
  ::unsetenv("MPIM_MEM_BUDGET_BYTES");
  auto& gov = mon::Governor::of(sim.engine());
  ASSERT_EQ(gov.shed_level(), 2);  // halved once, spans still on
  EXPECT_EQ(hub.span_soft_capacity(), hub.span_capacity() / 2);
  EXPECT_FALSE(hub.spans_suppressed());
  EXPECT_GT(hub.spans_recorded(), 0u);

  std::ostringstream csv;
  write_spans_csv(hub, csv);
  std::istringstream is(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  std::uint64_t rows = 0;
  while (std::getline(is, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, hub.spans_recorded() - hub.spans_dropped());

  std::ostringstream trace;
  write_chrome_trace(hub, trace);
  EXPECT_TRUE(JsonChecker(trace.str()).valid());
  EXPECT_NE(trace.str().find("\"bcast\""), std::string::npos);
}

// --- end to end: fault-injected run -----------------------------------------

// One doomed p2p message (every attempt dropped) next to a bcast. The
// acceptance path of the PR: the Chrome trace shows the collective span and
// its p2p child spans, the retransmit counter is > 0, and the same number
// is readable through an MPI_T pvar handle resolved *by name*.
TEST(EndToEnd, FaultInjectedRunExportsSpansAndPvars) {
  const int nranks = 4;
  auto plan = std::make_shared<fault::FaultPlan>(/*seed=*/7);
  fault::LinkFault drop;
  // 3->2 carries no collective-internal traffic here (binomial bcast from
  // root 0 sends 0->2, 0->1, 2->3; the dissemination barrier sends
  // r->(r+1)%4 and r->(r+2)%4), so dooming it cannot hang the collectives.
  drop.src = 3;
  drop.dst = 2;
  drop.drop_prob = 0.999999;  // every attempt (deterministically) lost
  drop.max_retransmits = 2;
  drop.retransmit_backoff_s = 1e-6;
  plan->add(drop);

  auto cost = net::CostModel::plafrim_like(2);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(nranks, cost.topology())};
  cfg.fault_plan = plan;
  Sim sim(std::move(cfg));
  telemetry::Hub& hub = sim.engine().telemetry();
  hub.set_enabled(true);

  unsigned long pvar_retransmits = 0;
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    int v = 1;
    mpi::bcast(&v, 1, Type::Int, 0, world);  // coll span + p2p children
    if (ctx.world_rank() == 3) {
      // Fire-and-forget: all 3 attempts drop, nobody posts the recv.
      std::vector<std::byte> b(4096);
      mpi::send(b.data(), b.size(), Type::Byte, 2, 9, world);

      mpit::Runtime& rt = mpit::Runtime::of(ctx.engine());
      const int idx =
          mpit::pvar_index_by_name("mpim_fault_retransmits_total");
      ASSERT_GE(idx, 6);  // appended after the six monitoring pvars
      const int sid = rt.session_create();
      const int h = rt.handle_alloc(sid, idx, world);
      rt.handle_start(sid, h);
      EXPECT_EQ(rt.handle_count(sid, h), 1);  // rank-local scalar
      ASSERT_EQ(rt.handle_read(sid, h, &pvar_retransmits, 1), 1);
      rt.handle_stop(sid, h);
      rt.session_free(sid);
    }
    mpi::barrier(world);
  });

  // Registry side: 2 retransmits, then the message is lost for good.
  const Registry& reg = hub.registry();
  EXPECT_EQ(reg.counter_total(hub.ids().fault_retransmits), 2u);
  EXPECT_EQ(reg.counter_total(hub.ids().fault_lost), 1u);
  EXPECT_EQ(reg.counter_total(hub.ids().fault_drops), 3u);
  EXPECT_GT(reg.counter_total(hub.ids().engine_messages), 0u);
  // MPI_T side: the same counter, read through the pvar handle.
  EXPECT_EQ(pvar_retransmits, 2u);

  // Exported trace: well-formed JSON with the collective decomposition.
  std::ostringstream os;
  write_chrome_trace(hub, os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"bcast\""), std::string::npos);
  EXPECT_NE(json.find("\"barrier\""), std::string::npos);
  EXPECT_NE(json.find("\"p2p.send\""), std::string::npos);
  EXPECT_NE(json.find("\"mpim_fault_retransmits_total\":2"),
            std::string::npos);
}

// Determinism: telemetry on vs off must not change virtual time.
TEST(EndToEnd, EnablingTelemetryDoesNotPerturbVirtualClocks) {
  auto run_once = [](bool telemetry_on) {
    Sim sim = Sim::plafrim(2, 8);
    sim.engine().telemetry().set_enabled(telemetry_on);
    double t_final = 0.0;
    sim.run([&](Ctx& ctx) {
      const Comm world = ctx.world();
      std::vector<double> a(256, 1.0), b(256, 0.0);
      for (int i = 0; i < 5; ++i)
        mpi::allreduce(a.data(), b.data(), a.size(), Type::Double,
                       mpi::Op::Sum, world);
      if (ctx.world_rank() == 0) t_final = ctx.now();
    });
    return t_final;
  };
  const double off = run_once(false);
  const double on = run_once(true);
  EXPECT_GT(off, 0.0);
  EXPECT_EQ(off, on);  // bit-identical, not just close
}

}  // namespace
}  // namespace mpim::telemetry
