#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/sim.h"
#include "mpimon/session.hpp"
#include "reorder/reorder.h"
#include "support/rng.h"

namespace mpim::reorder {
namespace {

using mpi::Comm;
using mpi::Ctx;
using mpi::Type;

Sim make_sim(int nranks, topo::Placement placement = {}) {
  auto cost = net::CostModel::plafrim_like(2, 1, 4);  // 2 nodes x 4 cores
  if (placement.empty())
    placement = topo::round_robin_placement(nranks, cost.topology());
  mpi::EngineConfig cfg{.cost_model = cost, .placement = std::move(placement)};
  cfg.watchdog_wall_timeout_s = 5.0;
  return Sim(std::move(cfg));
}

TEST(Reorder, ComputeReorderingIsAPermutation) {
  const auto cost = net::CostModel::plafrim_like(2, 1, 4);
  CommMatrix m = CommMatrix::square(8);
  Rng rng(2);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      if (i != j) m(i, j) = rng.uniform_u64(0, 1000);
  const auto placement = topo::round_robin_placement(8, cost.topology());
  const auto k = compute_reordering(m, cost.topology(), placement);
  std::set<int> vals(k.begin(), k.end());
  EXPECT_EQ(vals.size(), 8u);
  EXPECT_EQ(*vals.begin(), 0);
  EXPECT_EQ(*vals.rbegin(), 7);
}

TEST(Reorder, ReducesModeledCostForScatteredGroups) {
  // Cyclic groups under round-robin placement: group g = {g, g+4} spans
  // both nodes; the reordering must pack each group intra-node.
  const auto cost = net::CostModel::plafrim_like(2, 1, 4);
  CommMatrix m = CommMatrix::square(8);
  for (std::size_t g = 0; g < 4; ++g) {
    m(g, g + 4) = 1 << 22;
    m(g + 4, g) = 1 << 22;
  }
  const auto placement = topo::round_robin_placement(8, cost.topology());
  const auto k = compute_reordering(m, cost.topology(), placement);
  const double before =
      reordered_cost(m, identity_k(8), cost, placement);
  const double after = reordered_cost(m, k, cost, placement);
  EXPECT_LT(after, before);
  // Every pair must end up intra-node: the static cost drops to the
  // intra-node tariff exactly.
  topo::Placement effective(8);
  for (std::size_t p = 0; p < 8; ++p)
    effective[static_cast<std::size_t>(k[p])] = placement[p];
  for (std::size_t g = 0; g < 4; ++g)
    EXPECT_EQ(cost.topology().node_of(effective[g]),
              cost.topology().node_of(effective[g + 4]))
        << "pair " << g;
}

TEST(Reorder, IdentityCostMatchesPatternCost) {
  const auto cost = net::CostModel::plafrim_like(2, 1, 4);
  CommMatrix m = CommMatrix::square(4);
  m(0, 3) = 1000;
  const auto placement = topo::round_robin_placement(4, cost.topology());
  EXPECT_DOUBLE_EQ(reordered_cost(m, identity_k(4), cost, placement),
                   cost.pattern_cost(m, placement));
}

TEST(Reorder, EndToEndFigureOneAlgorithm) {
  // Monitor one "iteration" of a pathological pattern, reorder, verify the
  // optimized communicator really relabels ranks and that the same pattern
  // on the new communicator runs faster in virtual time.
  Sim sim = make_sim(8);
  std::vector<double> t_before(8), t_after(8);
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = mpi::comm_rank(world);

    auto pattern = [](const Comm& comm) {
      // Pairs {i, i+4}: inter-node under round-robin placement.
      const int rank = mpi::comm_rank(comm);
      std::vector<std::byte> buf(1 << 20);
      const int peer = rank < 4 ? rank + 4 : rank - 4;
      mpi::send(buf.data(), buf.size(), Type::Byte, peer, 0, comm);
      mpi::recv(buf.data(), buf.size(), Type::Byte, peer, 0, comm);
    };

    mon::check_rc(MPI_M_init(), "init");
    const double t0 = mpi::wtime();
    ReorderResult res;
    {
      res = monitor_and_reorder(world, pattern);
    }
    t_before[static_cast<std::size_t>(r)] = mpi::wtime() - t0;

    // k is a permutation and consistent with the split.
    std::set<int> vals(res.k.begin(), res.k.end());
    EXPECT_EQ(vals.size(), 8u);
    EXPECT_EQ(mpi::comm_rank(res.opt_comm),
              res.k[static_cast<std::size_t>(r)]);

    const double t1 = mpi::wtime();
    pattern(res.opt_comm);
    t_after[static_cast<std::size_t>(r)] = mpi::wtime() - t1;
    mon::check_rc(MPI_M_finalize(), "finalize");
  });
  // The monitored (scattered) iteration was strictly slower than the
  // reordered one, for the rank that stayed rank 0.
  EXPECT_GT(t_before[0], t_after[0]);
}

TEST(Reorder, WorksOnSubCommunicator) {
  Sim sim = make_sim(8);
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = mpi::comm_rank(world);
    // Evens only.
    const Comm evens = mpi::comm_split(world, r % 2 == 0 ? 0 : -1, r);
    if (r % 2 != 0) return;
    mon::check_rc(MPI_M_init(), "init");
    auto res = monitor_and_reorder(evens, [](const Comm& comm) {
      const int rank = mpi::comm_rank(comm);
      std::vector<std::byte> buf(4096);
      const int peer = rank ^ 1;
      if (peer < mpi::comm_size(comm)) {
        mpi::send(buf.data(), buf.size(), Type::Byte, peer, 0, comm);
        mpi::recv(buf.data(), buf.size(), Type::Byte, peer, 0, comm);
      }
    });
    EXPECT_EQ(mpi::comm_size(res.opt_comm), 4);
    mon::check_rc(MPI_M_finalize(), "finalize");
  });
}

}  // namespace
}  // namespace mpim::reorder
