#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/api.h"
#include "minimpi/engine.h"

namespace mpim::mpi {
namespace {

EngineConfig cfg_for(int nranks, CollAlgos algos = {}) {
  topo::Topology t({4, 1, 8}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  EngineConfig cfg{.cost_model = cost,
                   .placement = topo::round_robin_placement(nranks, t)};
  cfg.coll = algos;
  cfg.watchdog_wall_timeout_s = 5.0;
  return cfg;
}

// ---------------------------------------------------------------------------
// Parameterized over communicator sizes (including awkward non-powers of 2)
// and over the algorithm choices for each collective.

struct CollCase {
  int nranks;
  BcastAlgo bcast;
  ReduceAlgo reduce;
  AllreduceAlgo allreduce;
  AllgatherAlgo allgather;
  GatherAlgo gather;
  BarrierAlgo barrier;
};

std::vector<CollCase> all_cases() {
  std::vector<CollCase> cases;
  for (int n : {1, 2, 3, 4, 7, 8, 13, 16}) {
    cases.push_back({n, BcastAlgo::binomial, ReduceAlgo::binary_tree,
                     AllreduceAlgo::recursive_doubling, AllgatherAlgo::ring,
                     GatherAlgo::binomial, BarrierAlgo::dissemination});
    cases.push_back({n, BcastAlgo::linear, ReduceAlgo::binomial,
                     AllreduceAlgo::reduce_bcast, AllgatherAlgo::bruck,
                     GatherAlgo::linear, BarrierAlgo::tree});
    cases.push_back({n, BcastAlgo::binomial, ReduceAlgo::linear,
                     AllreduceAlgo::recursive_doubling, AllgatherAlgo::bruck,
                     GatherAlgo::binomial, BarrierAlgo::dissemination});
  }
  return cases;
}

class CollectiveP : public ::testing::TestWithParam<CollCase> {
 protected:
  Engine make_engine() const {
    const CollCase& c = GetParam();
    CollAlgos algos;
    algos.bcast = c.bcast;
    algos.reduce = c.reduce;
    algos.allreduce = c.allreduce;
    algos.allgather = c.allgather;
    algos.gather = c.gather;
    algos.barrier = c.barrier;
    return Engine(cfg_for(c.nranks, algos));
  }
  int nranks() const { return GetParam().nranks; }
};

TEST_P(CollectiveP, BcastDeliversRootValueToAll) {
  auto eng = make_engine();
  const int root = nranks() / 2;
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    std::vector<int> buf(16, -1);
    if (comm_rank(world) == root)
      std::iota(buf.begin(), buf.end(), 100);
    bcast(buf.data(), buf.size(), Type::Int, root, world);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(buf[i], 100 + i);
  });
}

TEST_P(CollectiveP, ReduceSumsAtRoot) {
  auto eng = make_engine();
  const int root = nranks() - 1;
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    std::vector<long> mine(8), result(8, -1);
    for (int i = 0; i < 8; ++i) mine[i] = r + i;
    reduce(mine.data(), result.data(), 8, Type::Long, Op::Sum, root, world);
    if (r == root) {
      const long base = static_cast<long>(n) * (n - 1) / 2;
      for (int i = 0; i < 8; ++i) EXPECT_EQ(result[i], base + long{n} * i);
    }
  });
}

TEST_P(CollectiveP, ReduceMaxAndMin) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    double v = static_cast<double>(r);
    double mx = -1, mn = -1;
    reduce(&v, &mx, 1, Type::Double, Op::Max, 0, world);
    reduce(&v, &mn, 1, Type::Double, Op::Min, 0, world);
    if (r == 0) {
      EXPECT_DOUBLE_EQ(mx, n - 1);
      EXPECT_DOUBLE_EQ(mn, 0.0);
    }
  });
}

TEST_P(CollectiveP, AllreduceAgreesEverywhere) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    std::vector<int> mine{r, 2 * r};
    std::vector<int> out(2, -1);
    allreduce(mine.data(), out.data(), 2, Type::Int, Op::Sum, world);
    EXPECT_EQ(out[0], n * (n - 1) / 2);
    EXPECT_EQ(out[1], n * (n - 1));
  });
}

TEST_P(CollectiveP, GatherCollectsInRankOrder) {
  auto eng = make_engine();
  const int root = 0;
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    std::array<int, 2> mine{r, r * r};
    std::vector<int> all(static_cast<std::size_t>(2 * n), -1);
    gather(mine.data(), 2, Type::Int, r == root ? all.data() : nullptr, root,
           world);
    if (r == root) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * j)], j);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * j + 1)], j * j);
      }
    }
  });
}

TEST_P(CollectiveP, GatherToNonzeroRoot) {
  auto eng = make_engine();
  const int root = nranks() - 1;
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    int mine = 7 + r;
    std::vector<int> all(static_cast<std::size_t>(n), -1);
    gather(&mine, 1, Type::Int, r == root ? all.data() : nullptr, root,
           world);
    if (r == root) {
      for (int j = 0; j < n; ++j)
        EXPECT_EQ(all[static_cast<std::size_t>(j)], 7 + j);
    }
  });
}

TEST_P(CollectiveP, ScatterDistributesBlocks) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    std::vector<int> blocks;
    if (r == 0) {
      blocks.resize(static_cast<std::size_t>(3 * n));
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < 3; ++i)
          blocks[static_cast<std::size_t>(3 * j + i)] = 10 * j + i;
    }
    std::array<int, 3> mine{-1, -1, -1};
    scatter(r == 0 ? blocks.data() : nullptr, 3, Type::Int, mine.data(), 0,
            world);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(mine[static_cast<std::size_t>(i)], 10 * r + i);
  });
}

TEST_P(CollectiveP, AllgatherGivesEveryoneEveryBlock) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    std::array<long, 2> mine{r, -r};
    std::vector<long> all(static_cast<std::size_t>(2 * n), -99);
    allgather(mine.data(), 2, Type::Long, all.data(), world);
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(all[static_cast<std::size_t>(2 * j)], j);
      EXPECT_EQ(all[static_cast<std::size_t>(2 * j + 1)], -j);
    }
  });
}

TEST_P(CollectiveP, AlltoallTransposesBlocks) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    std::vector<int> sendb(static_cast<std::size_t>(n));
    std::vector<int> recvb(static_cast<std::size_t>(n), -1);
    for (int j = 0; j < n; ++j)
      sendb[static_cast<std::size_t>(j)] = 100 * r + j;
    alltoall(sendb.data(), 1, Type::Int, recvb.data(), world);
    for (int j = 0; j < n; ++j)
      EXPECT_EQ(recvb[static_cast<std::size_t>(j)], 100 * j + r);
  });
}

TEST_P(CollectiveP, ScanComputesInclusivePrefix) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    std::array<long, 2> mine{r + 1, 2 * r};
    std::array<long, 2> out{-1, -1};
    scan(mine.data(), out.data(), 2, Type::Long, Op::Sum, world);
    long expect0 = 0, expect1 = 0;
    for (int j = 0; j <= r; ++j) {
      expect0 += j + 1;
      expect1 += 2 * j;
    }
    EXPECT_EQ(out[0], expect0);
    EXPECT_EQ(out[1], expect1);
  });
}

TEST_P(CollectiveP, ExscanComputesExclusivePrefix) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    long mine = r + 1;
    long out = -42;
    exscan(&mine, &out, 1, Type::Long, Op::Sum, world);
    if (r == 0) {
      EXPECT_EQ(out, -42);  // untouched at rank 0
    } else {
      EXPECT_EQ(out, static_cast<long>(r) * (r + 1) / 2);
    }
  });
}

TEST_P(CollectiveP, ScanMaxIsRunningMaximum) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    // Values descending: running max is always rank 0's value.
    double mine = static_cast<double>(n - r);
    double out = -1;
    scan(&mine, &out, 1, Type::Double, Op::Max, world);
    EXPECT_DOUBLE_EQ(out, static_cast<double>(n));
  });
}

TEST_P(CollectiveP, ReduceScatterBlockDistributesReduction) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    const int n = comm_size(world);
    // Rank r contributes blocks: block j = {100*j + r, -(100*j + r)}.
    std::vector<int> sendb(static_cast<std::size_t>(2 * n));
    for (int j = 0; j < n; ++j) {
      sendb[static_cast<std::size_t>(2 * j)] = 100 * j + r;
      sendb[static_cast<std::size_t>(2 * j + 1)] = -(100 * j + r);
    }
    std::array<int, 2> out{0, 0};
    reduce_scatter_block(sendb.data(), out.data(), 2, Type::Int, Op::Sum,
                         world);
    const int expect = 100 * r * n + n * (n - 1) / 2;
    EXPECT_EQ(out[0], expect);
    EXPECT_EQ(out[1], -expect);
  });
}

TEST_P(CollectiveP, BarrierSynchronizesVirtualClocks) {
  auto eng = make_engine();
  eng.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    compute(1e-3 * (r + 1));  // deliberately skewed clocks
    barrier(world);
    // After the barrier no clock may be below the largest pre-barrier one.
    if (comm_size(world) > 1) {
      EXPECT_GE(ctx.now(), 1e-3 * comm_size(world));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgorithms, CollectiveP, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<CollCase>& param_info) {
      const CollCase& c = param_info.param;
      std::string name = "n" + std::to_string(c.nranks);
      name += c.bcast == BcastAlgo::binomial ? "_binomBcast" : "_linBcast";
      name += c.reduce == ReduceAlgo::binary_tree  ? "_btreeRed"
              : c.reduce == ReduceAlgo::binomial ? "_binomRed"
                                                   : "_linRed";
      name += c.allgather == AllgatherAlgo::ring ? "_ringAg" : "_bruckAg";
      return name;
    });

// ---------------------------------------------------------------------------

TEST(Collectives, InPlaceReduceAllowsAliasedBuffers) {
  Engine eng(cfg_for(4));
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    std::vector<int> buf{comm_rank(world)};
    reduce(buf.data(), buf.data(), 1, Type::Int, Op::Sum, 0, world);
    if (comm_rank(world) == 0) {
      EXPECT_EQ(buf[0], 6);
    }
  });
}

TEST(Collectives, TimingOnlyCollectivesAdvanceClocks) {
  Engine eng(cfg_for(8));
  std::vector<double> clocks;
  eng.run([](Ctx& ctx) {
    bcast(nullptr, 1 << 16, Type::Int, 0, ctx.world());
    reduce(nullptr, nullptr, 1 << 16, Type::Int, Op::Sum, 0, ctx.world());
    allgather(nullptr, 1 << 10, Type::Int, nullptr, ctx.world());
    EXPECT_GT(ctx.now(), 0.0);
  });
}

TEST(Collectives, BinomialBcastFasterThanLinearForManyRanks) {
  const std::size_t count = 1 << 18;
  auto run_with = [&](BcastAlgo algo) {
    CollAlgos algos;
    algos.bcast = algo;
    Engine eng(cfg_for(32, algos));
    eng.run([&](Ctx& ctx) {
      bcast(nullptr, count, Type::Int, 0, ctx.world());
    });
    double mx = 0;
    for (double c : eng.final_clocks()) mx = std::max(mx, c);
    return mx;
  };
  EXPECT_LT(run_with(BcastAlgo::binomial), run_with(BcastAlgo::linear));
}

TEST(Collectives, RootRangeChecked) {
  Engine eng(cfg_for(4));
  EXPECT_THROW(eng.run([](Ctx& ctx) {
    bcast(nullptr, 1, Type::Int, 9, ctx.world());
  }),
               Error);
}

}  // namespace
}  // namespace mpim::mpi
