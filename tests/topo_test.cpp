#include <gtest/gtest.h>

#include <set>

#include "support/error.h"
#include "topo/topology.h"

namespace mpim::topo {
namespace {

TEST(Topology, ClusterShape) {
  const auto t = Topology::cluster(4, 2, 12);
  EXPECT_EQ(t.depth(), 3);
  EXPECT_EQ(t.num_leaves(), 96);
  EXPECT_EQ(t.subtree_leaves(0), 96);
  EXPECT_EQ(t.subtree_leaves(1), 24);  // one node
  EXPECT_EQ(t.subtree_leaves(2), 12);  // one socket
  EXPECT_EQ(t.subtree_leaves(3), 1);   // one core
}

TEST(Topology, CommonAncestorDepth) {
  const auto t = Topology::cluster(2, 2, 12);
  EXPECT_EQ(t.common_ancestor_depth(0, 0), 3);   // same core
  EXPECT_EQ(t.common_ancestor_depth(0, 5), 2);   // same socket
  EXPECT_EQ(t.common_ancestor_depth(0, 13), 1);  // same node, other socket
  EXPECT_EQ(t.common_ancestor_depth(0, 24), 0);  // other node
  EXPECT_EQ(t.common_ancestor_depth(24, 0), 0);  // symmetric
}

TEST(Topology, AncestorIndexAndNodeOf) {
  const auto t = Topology::cluster(3, 2, 4);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 0);
  EXPECT_EQ(t.node_of(8), 1);
  EXPECT_EQ(t.node_of(23), 2);
  EXPECT_EQ(t.ancestor_index(9, 2), 2);  // socket index of leaf 9
}

TEST(Topology, InvalidConstructionThrows) {
  EXPECT_THROW(Topology({}, {}), Error);
  EXPECT_THROW(Topology({2, 0}, {"a", "b"}), Error);
  EXPECT_THROW(Topology({2}, {"a", "b"}), Error);
}

TEST(Topology, LeafRangeChecks) {
  const auto t = Topology::cluster(1, 1, 4);
  EXPECT_THROW(t.common_ancestor_depth(0, 4), Error);
  EXPECT_THROW(t.ancestor_index(-1, 1), Error);
}

TEST(Topology, DescribeMentionsEveryLevel) {
  const auto t = Topology::cluster(2, 2, 12);
  const std::string d = t.describe();
  EXPECT_NE(d.find("node"), std::string::npos);
  EXPECT_NE(d.find("socket"), std::string::npos);
  EXPECT_NE(d.find("core"), std::string::npos);
  EXPECT_NE(d.find("48"), std::string::npos);
}

TEST(Placement, RoundRobinFillsLeftmostCores) {
  const auto t = Topology::cluster(2, 2, 12);
  const auto p = round_robin_placement(5, t);
  EXPECT_EQ(p, (Placement{0, 1, 2, 3, 4}));
}

TEST(Placement, ByNodeCyclesAcrossNodes) {
  const auto t = Topology::cluster(2, 1, 4);
  const auto p = bynode_placement(6, t);
  // node0 core0, node1 core0, node0 core1, node1 core1, ...
  EXPECT_EQ(p, (Placement{0, 4, 1, 5, 2, 6}));
}

TEST(Placement, ByNodeHandlesUnevenCounts) {
  const auto t = Topology::cluster(3, 1, 2);
  const auto p = bynode_placement(5, t);
  EXPECT_EQ(p.size(), 5u);
  validate_placement(p, t);
}

TEST(Placement, RandomIsDeterministicPermutationOfPrefix) {
  const auto t = Topology::cluster(2, 2, 12);
  const auto p1 = random_placement(10, t, 99);
  const auto p2 = random_placement(10, t, 99);
  EXPECT_EQ(p1, p2);
  std::set<int> leaves(p1.begin(), p1.end());
  EXPECT_EQ(leaves.size(), 10u);
  for (int leaf : leaves) {
    EXPECT_GE(leaf, 0);
    EXPECT_LT(leaf, 10);  // permutes the round-robin prefix
  }
  EXPECT_NE(p1, round_robin_placement(10, t));  // actually shuffled
}

TEST(Placement, ValidationRejectsDuplicatesAndRange) {
  const auto t = Topology::cluster(1, 1, 4);
  EXPECT_THROW(validate_placement({0, 0}, t), Error);
  EXPECT_THROW(validate_placement({4}, t), Error);
  EXPECT_NO_THROW(validate_placement({3, 1, 0}, t));
}

TEST(Placement, TooManyRanksThrows) {
  const auto t = Topology::cluster(1, 1, 4);
  EXPECT_THROW(round_robin_placement(5, t), Error);
  EXPECT_THROW(bynode_placement(5, t), Error);
}

}  // namespace
}  // namespace mpim::topo
