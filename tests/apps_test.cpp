#include <gtest/gtest.h>

#include <cmath>

#include "apps/cg.h"
#include "apps/nas_cg.h"
#include "apps/group_allgather.h"
#include "apps/halo.h"
#include "apps/traffic.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"

namespace mpim::apps {
namespace {

using mpi::Comm;
using mpi::Ctx;

Sim make_sim(int nranks, int nodes = 2, int cores = 4) {
  auto cost = net::CostModel::plafrim_like(nodes, 1, cores);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(nranks, cost.topology())};
  cfg.watchdog_wall_timeout_s = 10.0;
  return Sim(std::move(cfg));
}

// --- process grid ----------------------------------------------------------------

TEST(CgGrid, FactorizesBalanced) {
  int pr = 0, pc = 0;
  cg_process_grid(64, &pr, &pc);
  EXPECT_EQ(pr * pc, 64);
  EXPECT_EQ(pr, 8);
  cg_process_grid(128, &pr, &pc);
  EXPECT_EQ(pr, 8);
  EXPECT_EQ(pc, 16);
  cg_process_grid(1, &pr, &pc);
  EXPECT_EQ(pr * pc, 1);
  cg_process_grid(6, &pr, &pc);
  EXPECT_EQ(pr, 2);
  EXPECT_EQ(pc, 3);
}

// --- conjugate gradient ------------------------------------------------------------

TEST(Cg, ResidualDecreasesMonotonically) {
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    CgSolver solver(ctx.world(), CgConfig{48, 12, 1});
    double prev = std::numeric_limits<double>::max();
    for (int it = 0; it < 12; ++it) {
      const double rho = solver.iteration();
      EXPECT_LT(rho, prev) << "CG residual must shrink each iteration";
      prev = rho;
    }
  });
}

TEST(Cg, SolveConvergesTowardsSolution) {
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    CgSolver solver(ctx.world(), CgConfig{48, 130, 1});
    const CgResult res = solver.solve();
    EXPECT_EQ(res.iterations, 130);
    EXPECT_LT(res.residual_norm2, 1e-10);
    EXPECT_GT(res.total_time_s, 0.0);
    EXPECT_GT(res.comm_time_s, 0.0);
    EXPECT_LT(res.comm_time_s, res.total_time_s);
  });
}

TEST(Cg, ResidualIndependentOfRankCount) {
  // The operator and rhs are global objects: the residual after k
  // iterations must not depend on the partitioning.
  auto run_with = [](int nranks) {
    double rho = 0.0;
    Sim sim = make_sim(nranks);
    sim.run([&](Ctx& ctx) {
      CgSolver solver(ctx.world(), CgConfig{48, 8, 7});
      for (int i = 0; i < 8; ++i) rho = solver.iteration();
    });
    return rho;
  };
  const double rho1 = run_with(1);
  const double rho4 = run_with(4);
  const double rho8 = run_with(8);
  EXPECT_NEAR(rho1, rho4, 1e-9 * std::abs(rho1));
  EXPECT_NEAR(rho1, rho8, 1e-9 * std::abs(rho1));
}

TEST(Cg, ClassesGrowInSize) {
  EXPECT_LT(cg_class('A').grid_n, cg_class('B').grid_n);
  EXPECT_LT(cg_class('B').grid_n, cg_class('C').grid_n);
  EXPECT_LT(cg_class('C').grid_n, cg_class('D').grid_n);
  EXPECT_THROW(cg_class('Z'), Error);
}

TEST(Cg, DeterministicVirtualTimes) {
  auto run_once = [] {
    Sim sim = make_sim(8);
    double t = 0.0;
    sim.run([&](Ctx& ctx) {
      CgSolver solver(ctx.world(), CgConfig{48, 5, 3});
      const auto res = solver.solve();
      if (ctx.world_rank() == 0) t = res.total_time_s;
    });
    return t;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

// --- NAS-distribution CG -----------------------------------------------------------

TEST(NasCg, GridIsNasShaped) {
  int pr = 0, pc = 0;
  nas_process_grid(64, &pr, &pc);
  EXPECT_EQ(pr, 8);
  EXPECT_EQ(pc, 8);
  nas_process_grid(128, &pr, &pc);
  EXPECT_EQ(pr, 8);
  EXPECT_EQ(pc, 16);
  nas_process_grid(2, &pr, &pc);
  EXPECT_EQ(pr, 1);
  EXPECT_EQ(pc, 2);
  EXPECT_THROW(nas_process_grid(48, &pr, &pc), Error);  // not a power of 2
}

TEST(NasCg, PiecesPartitionTheVector) {
  Sim sim = make_sim(8);
  sim.run([](Ctx& ctx) {
    NasCgSolver solver(ctx.world(), CgConfig{48, 2, 1});
    const auto [begin, end] = solver.piece_range();
    const long len = end - begin;
    EXPECT_EQ(len, 48l * 48 / 8);
    // The union of all pieces covers [0, n) without overlap.
    long mine[2] = {begin, end};
    std::vector<long> all(16);
    mpi::allgather(mine, 2, mpi::Type::Long, all.data(), ctx.world());
    std::vector<std::pair<long, long>> ranges;
    for (int r = 0; r < 8; ++r)
      ranges.emplace_back(all[static_cast<std::size_t>(2 * r)],
                          all[static_cast<std::size_t>(2 * r + 1)]);
    std::sort(ranges.begin(), ranges.end());
    long cursor = 0;
    for (const auto& [b, e] : ranges) {
      EXPECT_EQ(b, cursor);
      cursor = e;
    }
    EXPECT_EQ(cursor, 48l * 48);
  });
}

TEST(NasCg, MatchesHaloCgResiduals) {
  // Same operator, same rhs, radically different data distribution and
  // communication pattern: the residual sequences must agree.
  std::vector<double> rho_halo, rho_nas;
  {
    Sim sim = make_sim(4);
    sim.run([&](Ctx& ctx) {
      CgSolver s(ctx.world(), CgConfig{48, 6, 9});
      for (int i = 0; i < 6; ++i) {
        const double rho = s.iteration();
        if (ctx.world_rank() == 0) rho_halo.push_back(rho);
      }
    });
  }
  {
    Sim sim = make_sim(4);
    sim.run([&](Ctx& ctx) {
      NasCgSolver s(ctx.world(), CgConfig{48, 6, 9});
      for (int i = 0; i < 6; ++i) {
        const double rho = s.iteration();
        if (ctx.world_rank() == 0) rho_nas.push_back(rho);
      }
    });
  }
  ASSERT_EQ(rho_halo.size(), rho_nas.size());
  for (std::size_t i = 0; i < rho_halo.size(); ++i)
    EXPECT_NEAR(rho_halo[i], rho_nas[i], 1e-9 * std::abs(rho_halo[i]))
        << "iteration " << i;
}

TEST(NasCg, ResidualIndependentOfRankCount) {
  auto run_with = [](int nranks) {
    double rho = 0.0;
    Sim sim = make_sim(nranks, 2, 8);
    sim.run([&](Ctx& ctx) {
      NasCgSolver s(ctx.world(), CgConfig{48, 5, 7});
      for (int i = 0; i < 5; ++i) rho = s.iteration();
    });
    return rho;
  };
  const double rho1 = run_with(1);
  const double rho4 = run_with(4);
  const double rho16 = run_with(16);
  EXPECT_NEAR(rho1, rho4, 1e-9 * std::abs(rho1));
  EXPECT_NEAR(rho1, rho16, 1e-9 * std::abs(rho1));
}

TEST(NasCg, RectangularGridWorks) {
  // 8 ranks -> 2 x 4 grid (pc = 2 pr): exercises the asymmetric
  // transpose partner mapping.
  Sim sim = make_sim(8);
  double rho8 = 0, rho1 = 0;
  sim.run([&](Ctx& ctx) {
    NasCgSolver s(ctx.world(), CgConfig{48, 4, 5});
    for (int i = 0; i < 4; ++i) rho8 = s.iteration();
  });
  Sim sim1 = make_sim(1);
  sim1.run([&](Ctx& ctx) {
    NasCgSolver s(ctx.world(), CgConfig{48, 4, 5});
    for (int i = 0; i < 4; ++i) rho1 = s.iteration();
  });
  EXPECT_NEAR(rho8, rho1, 1e-9 * std::abs(rho1));
}

TEST(NasCg, CommunicatesLongDistancePartners) {
  // The NAS pattern must include partners beyond grid neighbors -- the
  // property the Fig. 7 reordering relies on.
  Sim sim = make_sim(16, 2, 8);
  CommMatrix counts;
  sim.run([&](Ctx& ctx) {
    mon::Environment env;
    mon::Session s(ctx.world());
    NasCgSolver solver(ctx.world(), CgConfig{48, 1, 3});
    solver.iteration();
    s.suspend();
    const CommMatrix m = s.gather_counts(MPI_M_P2P_ONLY);
    if (ctx.world_rank() == 0) counts = m;
  });
  // Rank 0 (grid position (0,0) of a 4x4 grid) exchanges with column
  // partners at distance 4 and 8 and row partners at distance 1 and 2.
  EXPECT_GT(counts(0, 4) + counts(0, 8), 0u);
  EXPECT_GT(counts(0, 1) + counts(0, 2), 0u);
}

// --- halo -----------------------------------------------------------------------

TEST(Halo, ChecksumDeterministicAndTimed) {
  auto run_once = [] {
    Sim sim = make_sim(4);
    HaloResult res;
    sim.run([&](Ctx& ctx) {
      res = run_halo(ctx.world(), HaloConfig{16, 5, 3});
    });
    return res;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_GT(a.comm_time_s, 0.0);
}

TEST(Halo, SmoothingContractsTowardsMean) {
  // Repeated averaging with zero boundary shrinks the field.
  Sim sim = make_sim(4);
  HaloResult early, late;
  sim.run([&](Ctx& ctx) {
    early = run_halo(ctx.world(), HaloConfig{16, 2, 3});
    late = run_halo(ctx.world(), HaloConfig{16, 50, 3});
  });
  EXPECT_LT(std::abs(late.checksum), std::abs(early.checksum));
}

// --- group allgather ---------------------------------------------------------------

TEST(GroupAllgather, CyclicGroupsSpanNodes) {
  Sim sim = make_sim(8, 2, 4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const Comm group = make_group_comm(world, 4);
    EXPECT_EQ(mpi::comm_size(group), 2);
    // Group members are rank and rank+4: one per node under round robin.
    const int r = mpi::comm_rank(world);
    EXPECT_EQ(group.world_rank_of(0), r % 4);
    EXPECT_EQ(group.world_rank_of(1), r % 4 + 4);
  });
}

TEST(GroupAllgather, TimeGrowsWithBufferSize) {
  Sim sim = make_sim(8, 2, 4);
  double t_small = 0, t_big = 0;
  sim.run([&](Ctx& ctx) {
    const Comm group = make_group_comm(ctx.world(), 4);
    t_small = run_group_allgather(group, {4, 100, 5});
    t_big = run_group_allgather(group, {4, 100000, 5});
  });
  EXPECT_GT(t_big, t_small);
}

// --- traffic generator --------------------------------------------------------------

TEST(Traffic, IntrospectionMatchesNicCounters) {
  Sim sim = make_sim(2, 2, 1);  // one rank per node
  TrafficSeries series;
  TrafficConfig cfg;
  cfg.duration_s = 5.0;
  sim.run([&](Ctx& ctx) {
    mon::check_rc(MPI_M_init(), "init");
    auto s = run_traffic_generator(ctx.world(), cfg);
    if (ctx.world_rank() == 0) series = std::move(s);
    mon::check_rc(MPI_M_finalize(), "finalize");
  });
  ASSERT_FALSE(series.introspection.empty());
  EXPECT_GT(series.total_sent_bytes, 0u);

  // Sum over the introspection samples equals the bytes actually sent.
  std::uint64_t mon_total = 0;
  for (const auto& s : series.introspection) mon_total += s.bytes;
  EXPECT_EQ(mon_total, series.total_sent_bytes);

  // And the NIC of node 0 saw exactly the same volume (stop marker is
  // zero bytes, so it does not perturb the total).
  const auto hw =
      sample_nic_series(sim.engine().nic().log(0), cfg.sample_period_s,
                        cfg.duration_s);
  std::uint64_t hw_total = 0;
  for (const auto& s : hw) hw_total += s.bytes;
  EXPECT_EQ(hw_total, series.total_sent_bytes);

  // Bin-by-bin agreement (same grid, same virtual timestamps).
  ASSERT_EQ(hw.size(), series.introspection.size());
  for (std::size_t i = 0; i < hw.size(); ++i)
    EXPECT_EQ(hw[i].bytes, series.introspection[i].bytes) << "bin " << i;
}

TEST(Traffic, RespectsBurstAndSleepBounds) {
  Sim sim = make_sim(2, 2, 1);
  TrafficConfig cfg;
  cfg.duration_s = 3.0;
  TrafficSeries series;
  sim.run([&](Ctx& ctx) {
    mon::check_rc(MPI_M_init(), "init");
    auto s = run_traffic_generator(ctx.world(), cfg);
    if (ctx.world_rank() == 0) series = std::move(s);
    MPI_M_finalize();
  });
  // With sleeps of 50..1000 ms over 3 s there are between 3 and 60 bursts.
  const auto log = sim.engine().nic().log(0);
  std::size_t bursts = 0;
  for (const auto& rec : log)
    if (rec.bytes > 0) {
      ++bursts;
      EXPECT_GE(rec.bytes, cfg.min_bytes);
      EXPECT_LE(rec.bytes, cfg.max_bytes);
    }
  EXPECT_GE(bursts, 3u);
  EXPECT_LE(bursts, 61u);
}

}  // namespace
}  // namespace mpim::apps
