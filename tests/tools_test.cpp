#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "fault/fault_plan.h"
#include "minimpi/api.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "mpimon/sim.h"
#include "tools/apiprof.h"
#include "tools/report.h"
#include "tools/tracer.h"
#include "tools/prof_reader.h"

namespace mpim::tools {
namespace {

using mpi::Comm;
using mpi::Ctx;
using mpi::Type;

Sim make_sim(int nranks = 4) {
  auto cost = net::CostModel::plafrim_like(2, 1, 2);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(nranks, cost.topology())};
  cfg.watchdog_wall_timeout_s = 5.0;
  return Sim(std::move(cfg));
}

// --- apiprof --------------------------------------------------------------------

TEST(ApiProf, CountsCallsBytesAndTime) {
  Sim sim = make_sim(2);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    Profiler prof(world);
    if (ctx.world_rank() == 0) {
      std::vector<int> v(100);
      prof.send(v.data(), v.size(), Type::Int, 1, 0, world);
      prof.send(v.data(), 50, Type::Int, 1, 0, world);
      EXPECT_EQ(prof.stats(ApiOp::send).calls, 2u);
      EXPECT_EQ(prof.stats(ApiOp::send).bytes, 600u);
      EXPECT_GT(prof.stats(ApiOp::send).time_s, 0.0);
      EXPECT_EQ(prof.p2p_bytes_by_peer()[1], 600u);
      EXPECT_EQ(prof.total_calls(), 2u);
    } else {
      std::vector<int> v(100);
      prof.recv(v.data(), v.size(), Type::Int, 0, 0, world);
      prof.recv(v.data(), v.size(), Type::Int, 0, 0, world);
      EXPECT_EQ(prof.stats(ApiOp::recv).calls, 2u);
    }
  });
}

TEST(ApiProf, CollectivesAreOpaqueAtApiLevel) {
  // The contrast with the introspection library: for the same bcast, the
  // API profiler sees one call and no per-peer attribution while the
  // session sees the binomial tree.
  Sim sim = make_sim(4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    mon::Session session(world);
    Profiler prof(world);

    std::vector<int> v(1000);
    prof.bcast(v.data(), v.size(), Type::Int, 0, world);
    session.suspend();

    EXPECT_EQ(prof.stats(ApiOp::bcast).calls, 1u);
    std::uint64_t api_peer_bytes = 0;
    for (auto b : prof.p2p_bytes_by_peer()) api_peer_bytes += b;
    EXPECT_EQ(api_peer_bytes, 0u);  // nothing attributable to peers

    const auto coll = session.gather_counts(MPI_M_COLL_ONLY);
    EXPECT_EQ(coll.sum(), 3u);  // n-1 tree messages visible below
  });
}

TEST(ApiProf, ReportListsUsedOperationsOnly) {
  Sim sim = make_sim(2);
  std::string report;
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    Profiler prof(world);
    prof.barrier(world);
    double a = 1, b = 0;
    prof.allreduce(&a, &b, 1, Type::Double, mpi::Op::Sum, world);
    if (ctx.world_rank() == 0) {
      std::ostringstream os;
      prof.write_report(os, 0);
      report = os.str();
    }
  });
  EXPECT_NE(report.find("MPI_Barrier"), std::string::npos);
  EXPECT_NE(report.find("MPI_Allreduce"), std::string::npos);
  EXPECT_EQ(report.find("MPI_Send"), std::string::npos);  // unused
}

// --- tracer ----------------------------------------------------------------------

TEST(Tracer, RecordsTimestampedEventsInOrder) {
  Sim sim = make_sim(2);
  Tracer tracer(sim.tool());
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    if (ctx.world_rank() == 0) {
      mpi::compute(0.5);
      mpi::send(nullptr, 100, Type::Byte, 1, 5, world);
      mpi::compute(0.25);
      mpi::send(nullptr, 200, Type::Byte, 1, 6, world);
    } else {
      mpi::recv(nullptr, 200, Type::Byte, 0, 5, world);
      mpi::recv(nullptr, 200, Type::Byte, 0, 6, world);
    }
  });
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NEAR(events[0].time_s, 0.5, 1e-9);
  EXPECT_GT(events[1].time_s, 0.74);
  EXPECT_EQ(events[0].bytes, 100u);
  EXPECT_EQ(events[1].tag, 6);
  EXPECT_EQ(events[0].src, 0);
  EXPECT_EQ(events[0].dst, 1);
}

TEST(Tracer, StatsAndKindBreakdown) {
  Sim sim = make_sim(4);
  Tracer tracer(sim.tool());
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    mpi::barrier(world);  // coll events
    const int r = mpi::comm_rank(world);
    mpi::send(nullptr, 1000, Type::Byte, (r + 1) % 4, 0, world);  // p2p
    mpi::recv(nullptr, 1000, Type::Byte, (r + 3) % 4, 0, world);
  });
  const auto s = tracer.stats();
  EXPECT_EQ(s.by_kind_events[0], 4u);          // 4 ring sends
  EXPECT_EQ(s.by_kind_events[1], 8u);          // dissemination barrier
  EXPECT_EQ(s.total_bytes, 4000u);             // barrier messages are empty
  EXPECT_EQ(s.events, 12u);
  EXPECT_GE(s.last_time_s, s.first_time_s);
}

TEST(Tracer, DisableAndClear) {
  Sim sim = make_sim(2);
  Tracer tracer(sim.tool());
  tracer.set_enabled(false);
  sim.run([](Ctx& ctx) {
    if (ctx.world_rank() == 0)
      mpi::send(nullptr, 8, Type::Byte, 1, 0, ctx.world());
    else
      mpi::recv(nullptr, 8, Type::Byte, 0, 0, ctx.world());
  });
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.set_enabled(true);
  sim.run([](Ctx& ctx) {
    if (ctx.world_rank() == 0)
      mpi::send(nullptr, 8, Type::Byte, 1, 0, ctx.world());
    else
      mpi::recv(nullptr, 8, Type::Byte, 0, 0, ctx.world());
  });
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Tracer, RecordsFaultRetransmitAttempts) {
  auto plan = std::make_shared<fault::FaultPlan>(11);
  fault::LinkFault drop;
  drop.src = 0;
  drop.dst = 1;
  drop.drop_prob = 0.999999;  // deterministically lost
  drop.max_retransmits = 2;
  drop.retransmit_backoff_s = 1e-6;
  plan->add(drop);
  auto cost = net::CostModel::plafrim_like(2, 1, 2);
  mpi::EngineConfig cfg{
      .cost_model = cost,
      .placement = topo::round_robin_placement(2, cost.topology())};
  cfg.fault_plan = plan;
  Sim sim(std::move(cfg));
  Tracer tracer(sim.tool());
  sim.run([](Ctx& ctx) {
    // Fire-and-forget: the message is lost after 3 attempts; no recv.
    if (ctx.world_rank() == 0)
      mpi::send(nullptr, 512, Type::Byte, 1, 0, ctx.world());
  });
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].attempts, 3);  // 1 first try + 2 retransmits
  EXPECT_EQ(tracer.stats().retransmit_attempts, 2u);
}

TEST(Tracer, BoundedRingWrapsAndCountsDrops) {
  Sim sim = make_sim(2);
  Tracer tracer(sim.tool(), /*capacity_per_rank=*/4);
  sim.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    for (int i = 0; i < 10; ++i) {
      if (ctx.world_rank() == 0)
        mpi::send(nullptr, 8, Type::Byte, 1, i, world);
      else
        mpi::recv(nullptr, 8, Type::Byte, 0, i, world);
    }
  });
  EXPECT_EQ(tracer.event_count(), 4u);   // only rank 0 sends; ring holds 4
  EXPECT_EQ(tracer.events_dropped(), 6u);
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().tag, 6);  // oldest retained = suffix of the run
  EXPECT_EQ(events.back().tag, 9);
  tracer.clear();
  EXPECT_EQ(tracer.events_dropped(), 0u);
}

TEST(Tracer, WritesParseableTraceFile) {
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / "mp.trace").string();
  Sim sim = make_sim(2);
  Tracer tracer(sim.tool());
  sim.run([](Ctx& ctx) {
    if (ctx.world_rank() == 0)
      mpi::send(nullptr, 64, Type::Byte, 1, 3, ctx.world());
    else
      mpi::recv(nullptr, 64, Type::Byte, 0, 3, ctx.world());
  });
  tracer.write_trace(path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string header, line;
  std::getline(is, header);
  std::getline(is, line);
  double t;
  int src, dst, tag;
  std::uint64_t bytes;
  std::string kind;
  std::istringstream ls(line);
  ASSERT_TRUE(static_cast<bool>(ls >> t >> src >> dst >> bytes >> kind >> tag));
  EXPECT_EQ(src, 0);
  EXPECT_EQ(dst, 1);
  EXPECT_EQ(bytes, 64u);
  EXPECT_EQ(kind, "p2p");
  EXPECT_EQ(tag, 3);
  std::remove(path.c_str());
}

// --- prof_reader ------------------------------------------------------------------

TEST(ProfReader, RoundTripsFlushOutput) {
  namespace fs = std::filesystem;
  const std::string base = (fs::temp_directory_path() / "pr_rt").string();
  Sim sim = make_sim(2);
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    MPI_M_msid id;
    MPI_M_start(world, &id);
    if (ctx.world_rank() == 0) {
      std::vector<std::byte> b(321);
      mpi::send(b.data(), b.size(), Type::Byte, 1, 0, world);
    } else {
      std::vector<std::byte> b(321);
      mpi::recv(b.data(), b.size(), Type::Byte, 0, 0, world);
    }
    MPI_M_suspend(id);
    ASSERT_EQ(MPI_M_flush(id, base.c_str(), MPI_M_P2P_ONLY), MPI_M_SUCCESS);
    MPI_M_free(id);
  });
  const auto prof = read_rank_profile(base + ".0.prof");
  EXPECT_EQ(prof.rank, 0);
  EXPECT_EQ(prof.comm_size, 2);
  EXPECT_EQ(prof.flags, "p2p");
  EXPECT_EQ(prof.sizes[1], 321u);
  EXPECT_EQ(prof.counts[1], 1u);
  for (int r = 0; r < 2; ++r)
    std::remove((base + "." + std::to_string(r) + ".prof").c_str());
}

TEST(ProfReader, RoundTripsRootflushMatrix) {
  namespace fs = std::filesystem;
  const std::string base = (fs::temp_directory_path() / "pr_m").string();
  Sim sim = make_sim(4);
  sim.run([&](Ctx& ctx) {
    const Comm world = ctx.world();
    mon::Environment env;
    MPI_M_msid id;
    MPI_M_start(world, &id);
    mpi::barrier(world);
    MPI_M_suspend(id);
    ASSERT_EQ(MPI_M_rootflush(id, 0, base.c_str(), MPI_M_COLL_ONLY),
              MPI_M_SUCCESS);
    MPI_M_free(id);
  });
  const CommMatrix m = read_matrix_profile(base + "_counts.0.prof");
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.sum(), 8u);  // dissemination barrier: 2 sends per rank
  const auto s = summarize(m);
  EXPECT_EQ(s.total, 8u);
  EXPECT_GT(s.density, 0.0);
  for (const char* kind : {"_counts", "_sizes"})
    std::remove((base + kind + ".0.prof").c_str());
}

TEST(ProfReader, RejectsMalformedInput) {
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / "bad.prof").string();
  {
    std::ofstream os(path);
    os << "# header only\nnot numbers here\n";
  }
  EXPECT_THROW(read_rank_profile(path), Error);
  EXPECT_THROW(read_rank_profile("/nonexistent/file.prof"), Error);
  {
    std::ofstream os(path);
    os << "1 2 3\n4 5\n";  // ragged matrix
  }
  EXPECT_THROW(read_matrix_profile(path), Error);
  std::remove(path.c_str());
}

// --- report CSV ingestion -----------------------------------------------------

/// Writes `content` to a temp file and returns its path (caller removes).
std::string write_temp_csv(const std::string& name,
                           const std::string& content) {
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / name).string();
  std::ofstream os(path);
  os << content;
  return path;
}

TEST(Report, RendersMetricsAndSpans) {
  const std::string metrics = write_temp_csv(
      "rep_m.csv",
      "metric,kind,rank,field,value\n"
      "mpim_engine_messages_total,counter,0,value,5\n"
      "mpim_engine_messages_total,counter,1,value,9\n"
      "mpim_send_wait_seconds,histogram,0,le=0.001,3\n");
  const std::string spans = write_temp_csv(
      "rep_s.csv",
      "rank,name,cat,depth,t0_s,t1_s,a,b\n"
      "0,halo.sweep,C,0,0.5,1.5,0,0\n"
      "1,halo.sweep,C,0,0.25,0.75,0,0\n");
  std::ostringstream os;
  report_metrics(metrics, os);
  report_spans(spans, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("mpim_engine_messages_total"), std::string::npos);
  EXPECT_NE(out.find("14"), std::string::npos);  // summed over ranks
  EXPECT_NE(out.find("histogram buckets"), std::string::npos);
  EXPECT_NE(out.find("halo.sweep"), std::string::npos);
  EXPECT_NE(out.find("2 events"), std::string::npos);
  std::remove(metrics.c_str());
  std::remove(spans.c_str());
}

TEST(Report, RejectsEmptyFilesAndMissingPaths) {
  const std::string empty = write_temp_csv("rep_empty.csv", "");
  std::ostringstream os;
  EXPECT_THROW(report_metrics(empty, os), Error);
  EXPECT_THROW(report_timeline(empty, os), Error);
  EXPECT_THROW(report_metrics("/nonexistent/m.csv", os), Error);
  EXPECT_THROW(report_timeline("/nonexistent/f.csv", os), Error);
  std::remove(empty.c_str());
}

TEST(Report, RejectsForeignHeaders) {
  const std::string wrong = write_temp_csv("rep_hdr.csv", "a,b,c\n1,2,3\n");
  std::ostringstream os;
  EXPECT_THROW(report_metrics(wrong, os), Error);
  EXPECT_THROW(report_timeline(wrong, os), Error);
  std::remove(wrong.c_str());
}

TEST(Report, RejectsTruncatedRows) {
  const std::string m = write_temp_csv(
      "rep_trunc_m.csv",
      "metric,kind,rank,field,value\nmpim_x_total,counter,0,value\n");
  const std::string f = write_temp_csv(
      "rep_trunc_f.csv",
      "window,t0_s,t1_s,src,dst,count,bytes\n0,0.0,0.001,0,1,2\n");
  std::ostringstream os;
  EXPECT_THROW(report_metrics(m, os), Error);
  EXPECT_THROW(report_timeline(f, os), Error);
  for (const std::string& p : {m, f}) std::remove(p.c_str());
}

TEST(Report, RejectsNonFiniteAndNonNumericCells) {
  const std::string m = write_temp_csv(
      "rep_nan_m.csv",
      "metric,kind,rank,field,value\nmpim_x_total,counter,0,value,nan\n");
  const std::string f = write_temp_csv(
      "rep_nan_f.csv",
      "window,t0_s,t1_s,src,dst,count,bytes\n0,0.0,0.001,0,1,2,oops\n");
  std::ostringstream os;
  EXPECT_THROW(report_metrics(m, os), Error);
  EXPECT_THROW(report_timeline(f, os), Error);
  // A fractional count is numeric but not an integer: also rejected.
  const std::string frac = write_temp_csv(
      "rep_frac_m.csv",
      "metric,kind,rank,field,value\nmpim_x_total,counter,0,value,1.5\n");
  EXPECT_THROW(report_metrics(frac, os), Error);
  for (const std::string& p : {m, f, frac}) std::remove(p.c_str());
}

// --- spans degrade gracefully ------------------------------------------------
// Spans are the *optional* half of `profview --report <metrics> [spans]`: a
// run cut short by a crash leaves the spans CSV absent or torn mid-row, and
// that must never take the metrics report down with it.

TEST(Report, SpansMissingFileDegradesToANote) {
  std::ostringstream os;
  report_spans("/nonexistent/spans.csv", os);  // must not throw
  EXPECT_NE(os.str().find("cannot open"), std::string::npos);
  EXPECT_NE(os.str().find("skipping span report"), std::string::npos);
}

TEST(Report, SpansEmptyOrForeignFileDegradesToANote) {
  const std::string empty = write_temp_csv("rep_sp_empty.csv", "");
  std::ostringstream os1;
  report_spans(empty, os1);
  EXPECT_NE(os1.str().find("skipping span report"), std::string::npos);

  const std::string wrong = write_temp_csv("rep_sp_hdr.csv", "a,b,c\n1,2,3\n");
  std::ostringstream os2;
  report_spans(wrong, os2);
  EXPECT_NE(os2.str().find("not a telemetry spans csv"), std::string::npos);
  std::remove(empty.c_str());
  std::remove(wrong.c_str());
}

TEST(Report, SpansTruncatedMidRowRendersTheParsedPrefix) {
  // Two complete rows, then a tear mid-row (missing columns) -- the report
  // renders what parsed and says where the file tore.
  const std::string s = write_temp_csv(
      "rep_sp_torn.csv",
      "rank,name,cat,depth,t0_s,t1_s,a,b\n"
      "0,halo.sweep,C,0,0.5,1.5,0,0\n"
      "1,halo.sweep,C,0,0.25,0.75,0,0\n"
      "1,halo.swe");
  std::ostringstream os;
  report_spans(s, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("halo.sweep"), std::string::npos);
  EXPECT_NE(out.find("2 events"), std::string::npos);
  EXPECT_NE(out.find("truncated"), std::string::npos);
  std::remove(s.c_str());
}

TEST(Report, SpansNonNumericCellCountsAsTruncation) {
  const std::string s = write_temp_csv(
      "rep_sp_nan.csv",
      "rank,name,cat,depth,t0_s,t1_s,a,b\n"
      "0,halo.sweep,C,0,0.5,1.5,0,0\n"
      "0,halo.sweep,C,0,0.5,inf,0,0\n");
  std::ostringstream os;
  report_spans(s, os);  // must not throw; first row still renders
  const std::string out = os.str();
  EXPECT_NE(out.find("halo.sweep"), std::string::npos);
  EXPECT_NE(out.find("truncated"), std::string::npos);
  std::remove(s.c_str());
}

TEST(Report, TimelineHandlesASingleWindow) {
  const std::string f = write_temp_csv(
      "rep_one_f.csv",
      "window,t0_s,t1_s,src,dst,count,bytes\n"
      "3,0.003,0.004,0,1,2,2048\n"
      "3,0.003,0.004,1,0,1,512\n");
  std::ostringstream os;
  report_timeline(f, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1 windows"), std::string::npos);
  EXPECT_NE(out.find("0 phase boundaries"), std::string::npos);
  EXPECT_NE(out.find("0->1"), std::string::npos);  // heatmap row
  EXPECT_NE(out.find("KB"), std::string::npos);
  std::remove(f.c_str());
}

TEST(ProfReader, SummaryFindsHeaviestPair) {
  CommMatrix m = CommMatrix::square(3);
  m(0, 1) = 10;
  m(2, 0) = 99;
  m(1, 1) = 1000;  // diagonal ignored
  const auto s = summarize(m);
  EXPECT_EQ(s.total, 109u);
  EXPECT_EQ(s.heaviest_src, 2u);
  EXPECT_EQ(s.heaviest_dst, 0u);
  EXPECT_EQ(s.heaviest_value, 99u);
  EXPECT_NEAR(s.density, 2.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace mpim::tools
