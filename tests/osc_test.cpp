#include <gtest/gtest.h>

#include <atomic>

#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "minimpi/osc.h"

namespace mpim::mpi {
namespace {

EngineConfig cfg4() {
  topo::Topology t({2, 1, 2}, {"node", "socket", "core"});
  std::vector<net::LinkParams> params = {
      {1e-5, 1e8}, {1e-6, 1e9}, {1e-7, 1e10}, {0.0, 1e12}};
  net::CostModel cost(t, params, 1e-7);
  EngineConfig cfg{.cost_model = cost,
                   .placement = topo::round_robin_placement(4, t)};
  cfg.watchdog_wall_timeout_s = 3.0;
  return cfg;
}

TEST(Osc, PutWritesIntoTargetWindow) {
  Engine eng(cfg4());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    std::vector<int> window(4, -1);
    Win win = Win::create(window.data(), window.size() * sizeof(int), world);
    win.fence();
    if (r != 0) {
      const int v = 100 + r;
      win.put(&v, 1, Type::Int, 0, static_cast<std::size_t>(r) * sizeof(int));
    }
    win.fence();
    if (r == 0) {
      EXPECT_EQ(window[1], 101);
      EXPECT_EQ(window[2], 102);
      EXPECT_EQ(window[3], 103);
      EXPECT_EQ(window[0], -1);
    }
  });
}

TEST(Osc, GetReadsRemoteWindow) {
  Engine eng(cfg4());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    std::vector<double> window(2);
    window[0] = 10.0 * r;
    window[1] = 10.0 * r + 1;
    Win win =
        Win::create(window.data(), window.size() * sizeof(double), world);
    win.fence();
    double got[2] = {-1, -1};
    const int target = (r + 1) % comm_size(world);
    win.get(got, 2, Type::Double, target, 0);
    win.fence();
    EXPECT_DOUBLE_EQ(got[0], 10.0 * target);
    EXPECT_DOUBLE_EQ(got[1], 10.0 * target + 1);
  });
}

TEST(Osc, AccumulateSumsConcurrently) {
  Engine eng(cfg4());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    long cell = 0;
    Win win = Win::create(&cell, sizeof cell, world);
    win.fence();
    const long v = r + 1;
    win.accumulate(&v, 1, Type::Long, Op::Sum, 0, 0);
    win.fence();
    if (r == 0) {
      EXPECT_EQ(cell, 1 + 2 + 3 + 4);
    }
  });
}

TEST(Osc, OutOfWindowAccessThrows) {
  Engine eng(cfg4());
  EXPECT_THROW(eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    int cell = 0;
    Win win = Win::create(&cell, sizeof cell, world);
    win.fence();
    const int v = 1;
    win.put(&v, 1, Type::Int, 0, /*disp=*/4);  // one past the end
    win.fence();
  }),
               Error);
}

TEST(Osc, TrafficReportedAsOscKindWithGetAttributedToTarget) {
  auto cfg = cfg4();
  Engine eng(cfg);
  std::atomic<int> puts{0}, gets_from_target{0};
  eng.set_send_hook([&](const PktInfo& pkt, int caller_world) {
    if (pkt.kind != CommKind::osc) return 0;
    // A get's traffic is attributed to the target rank but reported from
    // the origin's thread: caller may differ from src (SendHook contract).
    if (pkt.src_world == 2 && pkt.dst_world == 3) {
      EXPECT_EQ(caller_world, 3);
    }
    if (pkt.dst_world == 0) puts.fetch_add(1);          // put 1 -> 0
    if (pkt.src_world == 2 && pkt.dst_world == 3)
      gets_from_target.fetch_add(1);                    // get by 3 from 2
    return 1;
  });
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    int cell = r;
    Win win = Win::create(&cell, sizeof cell, world);
    win.fence();
    if (r == 1) {
      const int v = 9;
      win.put(&v, 1, Type::Int, 0, 0);
    }
    if (r == 3) {
      int got = 0;
      win.get(&got, 1, Type::Int, 2, 0);
      EXPECT_EQ(got, 2);
    }
    win.fence();
  });
  EXPECT_EQ(puts.load(), 1);
  EXPECT_EQ(gets_from_target.load(), 1);
}

TEST(Osc, SeparateWindowsCoexist) {
  Engine eng(cfg4());
  eng.run([](Ctx& ctx) {
    const Comm world = ctx.world();
    const int r = comm_rank(world);
    int a = r, b = 10 * r;
    Win wa = Win::create(&a, sizeof a, world);
    Win wb = Win::create(&b, sizeof b, world);
    wa.fence();
    wb.fence();
    int ga = -1, gb = -1;
    wa.get(&ga, 1, Type::Int, 1, 0);
    wb.get(&gb, 1, Type::Int, 1, 0);
    wa.fence();
    wb.fence();
    EXPECT_EQ(ga, 1);
    EXPECT_EQ(gb, 10);
  });
}

}  // namespace
}  // namespace mpim::mpi
