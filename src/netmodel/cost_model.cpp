#include "netmodel/cost_model.h"

#include "support/error.h"

namespace mpim::net {

CostModel::CostModel(topo::Topology topology, std::vector<LinkParams> params,
                     double send_overhead_s)
    : topo_(std::move(topology)),
      params_(std::move(params)),
      send_overhead_s_(send_overhead_s) {
  check(static_cast<int>(params_.size()) == topo_.depth() + 1,
        "CostModel needs topology.depth()+1 link parameter sets");
  for (const auto& p : params_) {
    check(p.alpha_s >= 0.0, "negative latency");
    check(p.beta_bytes_s > 0.0, "non-positive bandwidth");
  }
  check(send_overhead_s_ >= 0.0, "negative send overhead");
}

CostModel CostModel::plafrim_like(int nodes, int sockets_per_node,
                                  int cores_per_socket) {
  auto topology =
      topo::Topology::cluster(nodes, sockets_per_node, cores_per_socket);
  std::vector<LinkParams> params = {
      {1.5e-6, 6.0e9},   // depth 0: different nodes (per-flow Omni-Path)
      {0.7e-6, 8.0e9},   // depth 1: same node, different sockets
      {0.3e-6, 11.0e9},  // depth 2: same socket, different cores
      {0.05e-6, 20.0e9}, // depth 3: same PU
  };
  return CostModel(std::move(topology), std::move(params));
}

const LinkParams& CostModel::params_at_depth(int d) const {
  check(d >= 0 && d <= topo_.depth(), "link depth out of range");
  return params_[static_cast<std::size_t>(d)];
}

double CostModel::transfer_time(int leaf_a, int leaf_b,
                                std::size_t bytes) const {
  return latency(leaf_a, leaf_b) + serialization_time(leaf_a, leaf_b, bytes);
}

double CostModel::latency(int leaf_a, int leaf_b) const {
  return params_at_depth(topo_.common_ancestor_depth(leaf_a, leaf_b)).alpha_s;
}

double CostModel::serialization_time(int leaf_a, int leaf_b,
                                     std::size_t bytes) const {
  const auto& p =
      params_at_depth(topo_.common_ancestor_depth(leaf_a, leaf_b));
  return static_cast<double>(bytes) / p.beta_bytes_s;
}

bool CostModel::crosses_network(int leaf_a, int leaf_b) const {
  return topo_.common_ancestor_depth(leaf_a, leaf_b) == 0;
}

double CostModel::pattern_cost(const mpim::Matrix<unsigned long>& bytes_matrix,
                               const topo::Placement& placement) const {
  check(bytes_matrix.rows() == bytes_matrix.cols(),
        "pattern_cost wants a square matrix");
  check(bytes_matrix.rows() == placement.size(),
        "pattern_cost: placement size mismatch");
  double total = 0.0;
  const std::size_t n = placement.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const unsigned long bytes = bytes_matrix(i, j);
      if (i == j || bytes == 0) continue;
      total += transfer_time(placement[i], placement[j], bytes);
    }
  }
  return total;
}

double CostModel::nic_load_cost(const mpim::Matrix<unsigned long>& bytes_matrix,
                                const topo::Placement& placement) const {
  check(bytes_matrix.rows() == bytes_matrix.cols(),
        "nic_load_cost wants a square matrix");
  check(bytes_matrix.rows() == placement.size(),
        "nic_load_cost: placement size mismatch");
  const int nodes = topo_.depth() >= 1 ? topo_.arities()[0] : 1;
  std::vector<double> tx(static_cast<std::size_t>(nodes), 0.0);
  std::vector<double> rx(static_cast<std::size_t>(nodes), 0.0);
  const std::size_t n = placement.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const unsigned long bytes = bytes_matrix(i, j);
      if (bytes == 0 || !crosses_network(placement[i], placement[j]))
        continue;
      tx[static_cast<std::size_t>(topo_.node_of(placement[i]))] +=
          static_cast<double>(bytes);
      rx[static_cast<std::size_t>(topo_.node_of(placement[j]))] +=
          static_cast<double>(bytes);
    }
  }
  double worst_bytes = 0.0;
  for (int b = 0; b < nodes; ++b) {
    worst_bytes = std::max(worst_bytes, tx[static_cast<std::size_t>(b)]);
    worst_bytes = std::max(worst_bytes, rx[static_cast<std::size_t>(b)]);
  }
  return worst_bytes / params_.front().beta_bytes_s;
}

}  // namespace mpim::net
