#include "netmodel/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace mpim::net {

namespace {

void check_params(const std::vector<LinkParams>& params,
                  double send_overhead_s) {
  for (const auto& p : params) {
    check(p.alpha_s >= 0.0, "negative latency");
    check(p.beta_bytes_s > 0.0, "non-positive bandwidth");
  }
  check(send_overhead_s >= 0.0, "negative send overhead");
}

}  // namespace

CostModel::CostModel(topo::Topology topology, std::vector<LinkParams> params,
                     double send_overhead_s)
    : fabric_(topo::make_tree_fabric(std::move(topology))),
      params_(std::move(params)),
      send_overhead_s_(send_overhead_s) {
  check(static_cast<int>(params_.size()) == fabric_->hierarchy().depth() + 1,
        "CostModel needs topology.depth()+1 link parameter sets");
  check_params(params_, send_overhead_s_);
}

CostModel::CostModel(std::shared_ptr<const topo::Fabric> fabric,
                     std::vector<LinkParams> class_params,
                     double send_overhead_s)
    : fabric_(std::move(fabric)),
      params_(std::move(class_params)),
      send_overhead_s_(send_overhead_s) {
  check(fabric_ != nullptr, "CostModel needs a fabric");
  check(static_cast<int>(params_.size()) == fabric_->num_link_classes(),
        "CostModel needs one link parameter set per fabric link class");
  check_params(params_, send_overhead_s_);
}

CostModel CostModel::plafrim_like(int nodes, int sockets_per_node,
                                  int cores_per_socket) {
  auto topology =
      topo::Topology::cluster(nodes, sockets_per_node, cores_per_socket);
  std::vector<LinkParams> params = {
      {1.5e-6, 6.0e9},   // depth 0: different nodes (per-flow Omni-Path)
      {0.7e-6, 8.0e9},   // depth 1: same node, different sockets
      {0.3e-6, 11.0e9},  // depth 2: same socket, different cores
      {0.05e-6, 20.0e9}, // depth 3: same PU
  };
  return CostModel(std::move(topology), std::move(params));
}

CostModel CostModel::for_fabric(std::shared_ptr<const topo::Fabric> fabric,
                                double send_overhead_s) {
  check(fabric != nullptr, "for_fabric needs a fabric");
  std::vector<LinkParams> params;
  switch (fabric->kind()) {
    case topo::FabricKind::tree:
      params.push_back({1.5e-6, 6.0e9});  // the per-flow Omni-Path class
      break;
    case topo::FabricKind::fattree:
      // NIC injection carries the single-flow end-to-end cap; trunks run
      // at wire rate and differentiate mappings only under contention.
      params.push_back({0.55e-6, 6.0e9});
      for (int d = 1; d < fabric->num_network_classes(); ++d)
        params.push_back({0.2e-6, 12.5e9});
      break;
    case topo::FabricKind::dragonfly:
      params.push_back({0.55e-6, 6.0e9});   // nic
      params.push_back({0.2e-6, 12.5e9});   // local (intra-group cable)
      params.push_back({0.7e-6, 12.5e9});   // global (long optical hop)
      break;
  }
  const topo::Topology& hier = fabric->hierarchy();
  for (int cad = fabric->node_level(); cad <= hier.depth(); ++cad) {
    if (cad == hier.depth())
      params.push_back({0.05e-6, 20.0e9});  // same PU
    else if (cad == fabric->node_level())
      params.push_back({0.7e-6, 8.0e9});    // same node, across sockets
    else
      params.push_back({0.3e-6, 11.0e9});   // same socket
  }
  return CostModel(std::move(fabric), std::move(params), send_overhead_s);
}

const LinkParams& CostModel::params_at_depth(int d) const {
  check(d >= 0 && d < static_cast<int>(params_.size()),
        "link class out of range");
  return params_[static_cast<std::size_t>(d)];
}

double CostModel::transfer_time(int leaf_a, int leaf_b,
                                std::size_t bytes) const {
  return latency(leaf_a, leaf_b) + serialization_time(leaf_a, leaf_b, bytes);
}

double CostModel::latency(int leaf_a, int leaf_b) const {
  const int cls = fabric_->pair_class(leaf_a, leaf_b);
  if (cls >= 0) return params_[static_cast<std::size_t>(cls)].alpha_s;
  topo::Fabric::Route r;
  fabric_->route(leaf_a, leaf_b, &r);
  double alpha = 0.0;
  for (int i = 0; i < r.n; ++i)
    alpha += params_[static_cast<std::size_t>(fabric_->link_class(r.links[i]))]
                 .alpha_s;
  return alpha;
}

double CostModel::serialization_time(int leaf_a, int leaf_b,
                                     std::size_t bytes) const {
  const int cls = fabric_->pair_class(leaf_a, leaf_b);
  if (cls >= 0)
    return static_cast<double>(bytes) /
           params_[static_cast<std::size_t>(cls)].beta_bytes_s;
  topo::Fabric::Route r;
  fabric_->route(leaf_a, leaf_b, &r);
  double beta = std::numeric_limits<double>::infinity();
  for (int i = 0; i < r.n; ++i)
    beta = std::min(
        beta,
        params_[static_cast<std::size_t>(fabric_->link_class(r.links[i]))]
            .beta_bytes_s);
  return static_cast<double>(bytes) / beta;
}

void CostModel::route_plan(int leaf_src, int leaf_dst, double alpha_total_s,
                           RoutePlan* out) const {
  topo::Fabric::Route r;
  fabric_->route(leaf_src, leaf_dst, &r);
  check(r.n >= 1, "route_plan wants an inter-node pair");
  out->n = r.n;
  double beta_min = std::numeric_limits<double>::infinity();
  for (int i = 0; i < r.n; ++i) {
    out->links[i] = r.links[i];
    beta_min = std::min(
        beta_min,
        params_[static_cast<std::size_t>(fabric_->link_class(r.links[i]))]
            .beta_bytes_s);
  }
  // A link drains one flow's serialization scaled by its own wire rate.
  for (int i = 0; i < r.n; ++i)
    out->drain_frac[i] =
        beta_min /
        params_[static_cast<std::size_t>(fabric_->link_class(r.links[i]))]
            .beta_bytes_s;
  // Interior hops wait their own class alpha; the final hop absorbs the
  // remainder so the gaps sum exactly to the caller's path latency (which
  // may carry fault-plan extras on top of latency()).
  out->gap_alpha_s[0] = 0.0;
  double interior = 0.0;
  for (int i = 1; i < r.n - 1; ++i) {
    const double a =
        params_[static_cast<std::size_t>(fabric_->link_class(r.links[i]))]
            .alpha_s;
    out->gap_alpha_s[i] = a;
    interior += a;
  }
  if (r.n >= 2)
    out->gap_alpha_s[r.n - 1] = std::max(0.0, alpha_total_s - interior);
}

bool CostModel::crosses_network(int leaf_a, int leaf_b) const {
  return !fabric_->same_node(leaf_a, leaf_b);
}

double CostModel::pattern_cost(const mpim::Matrix<unsigned long>& bytes_matrix,
                               const topo::Placement& placement) const {
  check(bytes_matrix.rows() == bytes_matrix.cols(),
        "pattern_cost wants a square matrix");
  check(bytes_matrix.rows() == placement.size(),
        "pattern_cost: placement size mismatch");
  double total = 0.0;
  const std::size_t n = placement.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = bytes_matrix.row(i);
    // Zero-row early-out: a silent sender costs nothing, so skip the
    // placement lookups and path costing for the whole row.
    bool any = false;
    for (const unsigned long v : row)
      if (v != 0) {
        any = true;
        break;
      }
    if (!any) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const unsigned long bytes = row[j];
      if (i == j || bytes == 0) continue;
      total += transfer_time(placement[i], placement[j], bytes);
    }
  }
  return total;
}

double CostModel::nic_load_cost(const mpim::Matrix<unsigned long>& bytes_matrix,
                                const topo::Placement& placement) const {
  check(bytes_matrix.rows() == bytes_matrix.cols(),
        "nic_load_cost wants a square matrix");
  check(bytes_matrix.rows() == placement.size(),
        "nic_load_cost: placement size mismatch");
  std::vector<double> link_bytes(
      static_cast<std::size_t>(fabric_->num_links()), 0.0);
  const std::size_t n = placement.size();
  topo::Fabric::Route r;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const unsigned long bytes = bytes_matrix(i, j);
      if (bytes == 0 || !crosses_network(placement[i], placement[j]))
        continue;
      fabric_->route(placement[i], placement[j], &r);
      for (int l = 0; l < r.n; ++l)
        link_bytes[static_cast<std::size_t>(r.links[l])] +=
            static_cast<double>(bytes);
    }
  }
  double worst = 0.0;
  for (std::size_t l = 0; l < link_bytes.size(); ++l) {
    const double drain =
        link_bytes[l] /
        params_[static_cast<std::size_t>(
                    fabric_->link_class(static_cast<int>(l)))]
            .beta_bytes_s;
    worst = std::max(worst, drain);
  }
  return worst;
}

double CostModel::flow_time_cost(
    const mpim::Matrix<unsigned long>& bytes_matrix,
    const topo::Placement& placement) const {
  check(bytes_matrix.rows() == bytes_matrix.cols(),
        "flow_time_cost wants a square matrix");
  check(bytes_matrix.rows() == placement.size(),
        "flow_time_cost: placement size mismatch");
  struct Flow {
    double bytes = 0.0;
    double rate = 0.0;
    bool fixed = false;
    int n = 0;
    int links[RoutePlan::kMaxLinks] = {};
  };
  std::vector<Flow> flows;
  const std::size_t n = placement.size();
  topo::Fabric::Route r;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const unsigned long bytes = bytes_matrix(i, j);
      if (bytes == 0 || !crosses_network(placement[i], placement[j]))
        continue;
      fabric_->route(placement[i], placement[j], &r);
      Flow f;
      f.bytes = static_cast<double>(bytes);
      f.n = r.n;
      std::copy(r.links, r.links + r.n, f.links);
      flows.push_back(f);
    }
  }
  if (flows.empty()) return 0.0;

  const std::size_t num_links = static_cast<std::size_t>(fabric_->num_links());
  std::vector<double> remaining(num_links, 0.0);
  std::vector<int> active(num_links, 0);
  for (std::size_t l = 0; l < num_links; ++l)
    remaining[l] =
        params_[static_cast<std::size_t>(
                    fabric_->link_class(static_cast<int>(l)))]
            .beta_bytes_s;
  for (const Flow& f : flows)
    for (int l = 0; l < f.n; ++l)
      ++active[static_cast<std::size_t>(f.links[l])];

  // Progressive filling: raise every unfixed flow's rate uniformly until a
  // link saturates, freeze the flows through saturated links, repeat.
  std::size_t unfixed = flows.size();
  while (unfixed > 0) {
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < num_links; ++l)
      if (active[l] > 0)
        delta = std::min(delta, remaining[l] / active[l]);
    if (!std::isfinite(delta)) break;  // defensive: no constraining link
    for (std::size_t l = 0; l < num_links; ++l)
      if (active[l] > 0) remaining[l] -= delta * active[l];
    for (Flow& f : flows) {
      if (f.fixed) continue;
      f.rate += delta;
      bool saturated = false;
      for (int l = 0; l < f.n; ++l)
        if (remaining[static_cast<std::size_t>(f.links[l])] <= 1e-9 *
                params_[static_cast<std::size_t>(fabric_->link_class(
                            f.links[l]))]
                    .beta_bytes_s) {
          saturated = true;
          break;
        }
      if (saturated) {
        f.fixed = true;
        --unfixed;
        for (int l = 0; l < f.n; ++l)
          --active[static_cast<std::size_t>(f.links[l])];
      }
    }
  }
  double worst = 0.0;
  for (const Flow& f : flows)
    if (f.rate > 0.0) worst = std::max(worst, f.bytes / f.rate);
  return worst;
}

}  // namespace mpim::net
