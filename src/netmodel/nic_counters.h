// Simulated network-interface hardware counters.
//
// On the paper's testbed the ground truth for Section 6.1 is the Infiniband
// counter /sys/class/infiniband/.../counters/port_xmit_data (reported in
// 4-byte "lanes" units, hence the x4 multiplier the paper mentions). Here
// the network model itself is the ground truth: every transfer that crosses
// a node boundary appends a timestamped record to the transmitting node's
// counter, and a sampler can ask "how many bytes had left node N by virtual
// time t" — exactly what polling the sysfs file at 10 ms does on Linux.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace mpim::net {

struct TxRecord {
  double time_s;        ///< virtual time the message left the NIC
  std::uint64_t bytes;  ///< payload bytes
};

class NicCounters {
 public:
  explicit NicCounters(int num_nodes);

  /// Record a transmission from `node` at virtual time `time_s`.
  /// Thread-safe: called by rank threads through the engine.
  void record_tx(int node, double time_s, std::uint64_t bytes);

  int num_nodes() const { return static_cast<int>(logs_.size()); }

  /// Cumulative bytes transmitted by `node` up to and including `time_s`
  /// (what reading port_xmit_data at that instant would report).
  std::uint64_t bytes_until(int node, double time_s) const;

  /// Raw transmit log of a node, ordered by recording time. Note: records
  /// are appended in the order rank threads hit the NIC, which is
  /// wall-clock order; bytes_until() sorts a snapshot by virtual time.
  std::vector<TxRecord> log(int node) const;

  /// Total bytes transmitted by a node over the whole run.
  std::uint64_t total_bytes(int node) const;

  void reset();

 private:
  struct PerNode {
    mutable std::mutex mutex;
    std::vector<TxRecord> records;
  };
  std::vector<PerNode> logs_;
};

}  // namespace mpim::net
