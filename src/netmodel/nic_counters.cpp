#include "netmodel/nic_counters.h"

#include <algorithm>

#include "support/error.h"

namespace mpim::net {

NicCounters::NicCounters(int num_nodes)
    : logs_(static_cast<std::size_t>(num_nodes)) {
  check(num_nodes >= 1, "NicCounters needs at least one node");
}

void NicCounters::record_tx(int node, double time_s, std::uint64_t bytes) {
  auto& slot = logs_.at(static_cast<std::size_t>(node));
  std::lock_guard lock(slot.mutex);
  slot.records.push_back(TxRecord{time_s, bytes});
}

std::uint64_t NicCounters::bytes_until(int node, double time_s) const {
  std::uint64_t acc = 0;
  for (const TxRecord& r : log(node))
    if (r.time_s <= time_s) acc += r.bytes;
  return acc;
}

std::vector<TxRecord> NicCounters::log(int node) const {
  const auto& slot = logs_.at(static_cast<std::size_t>(node));
  std::lock_guard lock(slot.mutex);
  std::vector<TxRecord> copy = slot.records;
  std::sort(copy.begin(), copy.end(),
            [](const TxRecord& a, const TxRecord& b) {
              return a.time_s < b.time_s;
            });
  return copy;
}

std::uint64_t NicCounters::total_bytes(int node) const {
  std::uint64_t acc = 0;
  for (const TxRecord& r : log(node)) acc += r.bytes;
  return acc;
}

void NicCounters::reset() {
  for (auto& slot : logs_) {
    std::lock_guard lock(slot.mutex);
    slot.records.clear();
  }
}

}  // namespace mpim::net
