// Hockney-style communication cost model over the topology tree.
//
// The cost of moving `m` bytes between two processing units whose deepest
// common ancestor sits at tree depth `d` is
//
//     T(m, d) = alpha[d] + m / beta[d]
//
// with one (alpha, beta) pair per topology level plus one for the "same
// leaf" case (d == depth). Rank-reordering gains in the paper come entirely
// from the contrast between intra-node and inter-node parameters; the
// defaults below are calibrated to a PlaFRIM-like machine (Omni-Path
// 100 Gb/s shared by 24 ranks per node, dual-socket Haswell).
#pragma once

#include <cstddef>
#include <vector>

#include "support/matrix.h"
#include "topo/topology.h"

namespace mpim::net {

struct LinkParams {
  double alpha_s;        ///< latency in seconds
  double beta_bytes_s;   ///< bandwidth in bytes/second
};

class CostModel {
 public:
  /// `params[d]` applies when the deepest common ancestor is at depth d;
  /// must provide topology.depth() + 1 entries (the last one is "same PU",
  /// used for self-messages, essentially free).
  CostModel(topo::Topology topology, std::vector<LinkParams> params,
            double send_overhead_s = 4.0e-7);

  /// PlaFRIM-like defaults for a cluster(nodes, 2, 12) topology:
  ///   inter-node  : alpha = 1.5 us, beta = 6.0 GB/s (single-flow; the NIC
  ///                 contention model of the engine shares it among flows)
  ///   inter-socket: alpha = 0.7 us, beta = 8.0 GB/s
  ///   intra-socket: alpha = 0.3 us, beta = 11  GB/s
  ///   same PU     : alpha = 0.05 us, beta = 20 GB/s
  static CostModel plafrim_like(int nodes, int sockets_per_node = 2,
                                int cores_per_socket = 12);

  const topo::Topology& topology() const { return topo_; }

  /// Total transfer time for `bytes` between leaves a and b (seconds):
  /// latency + serialization.
  double transfer_time(int leaf_a, int leaf_b, std::size_t bytes) const;

  /// Wire latency alpha of the link class between two leaves.
  double latency(int leaf_a, int leaf_b) const;

  /// Serialization time bytes/beta: the time the *sender* stays busy
  /// pushing the message out (store-and-forward at the injection point).
  /// Without this, a linear broadcast would pipeline for free and beat
  /// every tree algorithm.
  double serialization_time(int leaf_a, int leaf_b, std::size_t bytes) const;

  /// Time the *sender* stays busy per message (LogP "o"): after this it may
  /// issue the next send while the message is in flight.
  double send_overhead() const { return send_overhead_s_; }

  const LinkParams& params_at_depth(int d) const;

  /// True iff the two leaves live on different depth-1 entities (nodes);
  /// such transfers are counted by the NIC counters.
  bool crosses_network(int leaf_a, int leaf_b) const;

  /// Static cost of a whole communication pattern: sum over i,j of
  /// T(matrix(i,j), link(place[i], place[j])). This is the objective
  /// TreeMatch-style reordering reduces; used by tests and ablations.
  double pattern_cost(const mpim::Matrix<unsigned long>& bytes_matrix,
                      const topo::Placement& placement) const;

  /// First-order NIC-contention bound of a pattern: the heaviest node port
  /// must drain all its inter-node traffic at the network bandwidth,
  ///   max over nodes of max(tx_bytes, rx_bytes) / beta(inter-node).
  /// pattern_cost + nic_load_cost ranks mappings the way the contention-
  /// aware engine times them; the reordering uses it to decide whether a
  /// proposed permutation actually beats the current one.
  double nic_load_cost(const mpim::Matrix<unsigned long>& bytes_matrix,
                       const topo::Placement& placement) const;

 private:
  topo::Topology topo_;
  std::vector<LinkParams> params_;
  double send_overhead_s_;
};

}  // namespace mpim::net
