// Hockney-style communication cost model over a network fabric.
//
// The cost of moving `m` bytes between two processing units is
//
//     T(m) = alpha(path) + m / beta(path)
//
// with one (alpha, beta) pair per *link class* of the fabric. On the
// historical balanced tree the classes are exactly the common-ancestor
// depths (inter-node, inter-socket, intra-socket, same PU) and the lookup
// is the original depth-indexed one, bit for bit. On routed fabrics
// (fat-tree, dragonfly) inter-node paths sum the per-hop latencies of
// their route and move at the rate of the slowest link class on the path;
// the engine reserves per-link busy time along the same route, so
// oversubscribed trunk and shared global links contend deterministically.
// Rank-reordering gains in the paper come entirely from the contrast
// between intra-node and inter-node parameters; the defaults are
// calibrated to a PlaFRIM-like machine (Omni-Path 100 Gb/s shared by 24
// ranks per node, dual-socket Haswell).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "support/matrix.h"
#include "topo/fabric.h"
#include "topo/topology.h"

namespace mpim::net {

struct LinkParams {
  double alpha_s;        ///< latency in seconds
  double beta_bytes_s;   ///< bandwidth in bytes/second
};

/// Per-link charging schedule of one transfer, produced by
/// CostModel::route_plan and consumed by the engine's contention gate.
/// Link i is reserved at max(previous stage + gap_alpha_s[i], link free
/// time) for tx_s * drain_frac[i] seconds (scaled by the engine's port
/// rate); gap_alpha_s sums exactly to the path latency so an uncontended
/// contended_transfer arrives at start + alpha + tx, identical to the
/// uncontended formula.
struct RoutePlan {
  static constexpr int kMaxLinks = topo::Fabric::kMaxRouteLinks;
  int n = 0;
  int links[kMaxLinks] = {};
  double gap_alpha_s[kMaxLinks] = {};  ///< charged before link i; [0] unused
  double drain_frac[kMaxLinks] = {};   ///< link busy time = tx_s * frac
};

class CostModel {
 public:
  /// Balanced-tree compatibility form: `params[d]` applies when the
  /// deepest common ancestor is at depth d; must provide
  /// topology.depth() + 1 entries (the last one is "same PU", used for
  /// self-messages, essentially free). Wraps the topology in a TreeFabric;
  /// costs and engine clocks are bit-identical to the pre-fabric code.
  CostModel(topo::Topology topology, std::vector<LinkParams> params,
            double send_overhead_s = 4.0e-7);

  /// Fabric form: one (alpha, beta) pair per fabric link class
  /// (fabric->num_link_classes() entries, network classes first, then the
  /// intra-node locality classes).
  CostModel(std::shared_ptr<const topo::Fabric> fabric,
            std::vector<LinkParams> class_params,
            double send_overhead_s = 4.0e-7);

  /// PlaFRIM-like defaults for a cluster(nodes, 2, 12) topology:
  ///   inter-node  : alpha = 1.5 us, beta = 6.0 GB/s (single-flow; the NIC
  ///                 contention model of the engine shares it among flows)
  ///   inter-socket: alpha = 0.7 us, beta = 8.0 GB/s
  ///   intra-socket: alpha = 0.3 us, beta = 11  GB/s
  ///   same PU     : alpha = 0.05 us, beta = 20 GB/s
  static CostModel plafrim_like(int nodes, int sockets_per_node = 2,
                                int cores_per_socket = 12);

  /// Default parameters for any fabric, chosen so a single uncontended
  /// inter-node flow is comparable across fabrics (min path beta 6 GB/s,
  /// cross-fabric path alphas within ~1.1-2.2 us) and intra-node classes
  /// match plafrim_like. Trunk/global links run at the 12.5 GB/s wire rate
  /// so contention, not the single-flow cap, is what differs per fabric.
  static CostModel for_fabric(std::shared_ptr<const topo::Fabric> fabric,
                              double send_overhead_s = 4.0e-7);

  const topo::Topology& topology() const { return fabric_->hierarchy(); }
  const topo::Fabric& fabric() const { return *fabric_; }
  std::shared_ptr<const topo::Fabric> fabric_ptr() const { return fabric_; }

  /// Total transfer time for `bytes` between leaves a and b (seconds):
  /// latency + serialization.
  double transfer_time(int leaf_a, int leaf_b, std::size_t bytes) const;

  /// Path latency: the class alpha on single-class paths (all tree pairs,
  /// same-node pairs everywhere), the sum of per-hop class alphas on
  /// routed inter-node paths.
  double latency(int leaf_a, int leaf_b) const;

  /// Serialization time bytes/beta: the time the *sender* stays busy
  /// pushing the message out (store-and-forward at the injection point).
  /// beta is the slowest link class on the path. Without this, a linear
  /// broadcast would pipeline for free and beat every tree algorithm.
  double serialization_time(int leaf_a, int leaf_b, std::size_t bytes) const;

  /// Time the *sender* stays busy per message (LogP "o"): after this it may
  /// issue the next send while the message is in flight.
  double send_overhead() const { return send_overhead_s_; }

  /// Parameters of pair class / link class `d`. On a tree fabric the class
  /// index is the common-ancestor depth, preserving the historical
  /// params_at_depth semantics.
  const LinkParams& params_at_depth(int d) const;

  /// Per-link charging schedule for an inter-node transfer (see RoutePlan).
  /// `alpha_total_s` is the full path latency to spread over the gaps
  /// (callers pass latency() plus any fault-plan extra).
  void route_plan(int leaf_src, int leaf_dst, double alpha_total_s,
                  RoutePlan* out) const;

  /// True iff the two leaves live on different nodes; such transfers are
  /// counted by the NIC counters and contend for network links.
  bool crosses_network(int leaf_a, int leaf_b) const;

  /// Static cost of a whole communication pattern: sum over i,j of
  /// T(matrix(i,j), path(place[i], place[j])). This is the objective
  /// TreeMatch-style reordering reduces (tm::mapping_cost delegates here);
  /// rows with no traffic are skipped without touching the cost tables.
  double pattern_cost(const mpim::Matrix<unsigned long>& bytes_matrix,
                      const topo::Placement& placement) const;

  /// First-order link-contention bound of a pattern: every inter-node
  /// entry drops its bytes on every link of its route, and the heaviest
  /// link must drain them at its class bandwidth,
  ///   max over links of link_bytes / beta(link class).
  /// On a tree fabric the links are per-node tx/rx ports and this is
  /// exactly the historical NIC bound. pattern_cost + nic_load_cost ranks
  /// mappings the way the contention-aware engine times them; the
  /// reordering uses it to decide whether a proposed permutation actually
  /// beats the current one.
  double nic_load_cost(const mpim::Matrix<unsigned long>& bytes_matrix,
                       const topo::Placement& placement) const;

  /// Max-min fair bandwidth-sharing bound (the simgrid flow-model shape):
  /// every non-zero inter-node entry is one flow over its route, link
  /// capacities are split max-min fair among the flows crossing them
  /// (progressive filling), and the pattern is charged the slowest flow's
  /// completion time bytes/rate. Unlike nic_load_cost this sees *which*
  /// flows share a link, so oversubscribed trunks and dragonfly global
  /// links separate mappings that the per-port bound ties.
  double flow_time_cost(const mpim::Matrix<unsigned long>& bytes_matrix,
                        const topo::Placement& placement) const;

 private:
  std::shared_ptr<const topo::Fabric> fabric_;
  std::vector<LinkParams> params_;  ///< one entry per fabric link class
  double send_overhead_s_;
};

}  // namespace mpim::net
