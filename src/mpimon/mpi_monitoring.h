// MPI_Monitoring -- the introspection monitoring library of the paper.
//
// High-level sessions over the low-level MPI_T pvars (mpit::Runtime):
//
//   MPI_M_msid id;
//   MPI_M_init();
//   MPI_M_start(comm, &id);            // session active: traffic recorded
//   ... code to watch ...
//   MPI_M_suspend(id);                 // data readable while suspended
//   MPI_M_allgather_data(id, counts, sizes, MPI_M_ALL_COMM);
//   MPI_M_free(id);
//   MPI_M_finalize();
//
// Semantics reproduced from the paper (Section 4):
//  * a session is attached to a communicator and records the messages whose
//    sender AND receiver belong to it, even when the traffic travels over a
//    different communicator;
//  * collectives are recorded AFTER decomposition into point-to-point
//    messages, with their own traffic class (MPI_M_COLL_ONLY);
//  * sessions are independent: they may overlap and nest freely;
//  * recording happens only in the "active" state; data access (get/gather/
//    flush/reset) requires the "suspended" state;
//  * all functions are thread-safe, return MPI_M_SUCCESS or one of the
//    error codes below, and must be called by every process of the
//    session's communicator (get_info excepted);
//  * the library's own gathers use tool-class traffic that no session ever
//    records.
#pragma once

#include "minimpi/comm.h"

/// Monitoring Session IDentifier. Opaque: only meaningful to MPI_M_* calls.
using MPI_M_msid = int;

// --- special values ----------------------------------------------------------

/// Acts on every session currently active or suspended (suspend, continue,
/// reset, free only).
inline constexpr MPI_M_msid MPI_M_ALL_MSID = -1;

/// Pass for unwanted int output parameters.
inline int* const MPI_M_INT_IGNORE = nullptr;
/// Pass for unwanted unsigned long* output parameters.
inline unsigned long* const MPI_M_DATA_IGNORE = nullptr;

// --- kind-filter flags (bitwise-combinable) ----------------------------------

inline constexpr int MPI_M_P2P_ONLY = 1 << 0;
inline constexpr int MPI_M_COLL_ONLY = 1 << 1;
inline constexpr int MPI_M_OSC_ONLY = 1 << 2;
inline constexpr int MPI_M_ALL_COMM =
    MPI_M_P2P_ONLY | MPI_M_COLL_ONLY | MPI_M_OSC_ONLY;

// --- return codes -------------------------------------------------------------

inline constexpr int MPI_M_SUCCESS = 0;
/// An internal error occurred (allocation or system call failed).
inline constexpr int MPI_M_INTERNAL_FAIL = 1;
/// An MPI or MPI_T function failed.
inline constexpr int MPI_M_MPIT_FAIL = 2;
/// No call to MPI_M_init has been done.
inline constexpr int MPI_M_MISSING_INIT = 3;
/// At least one session has not been suspended (finalize).
inline constexpr int MPI_M_SESSION_STILL_ACTIVE = 4;
/// The session has not been suspended (data access / reset / free).
inline constexpr int MPI_M_SESSION_NOT_SUSPENDED = 5;
/// The msid does not refer to a live session, or is MPI_M_ALL_MSID where
/// that is not allowed.
inline constexpr int MPI_M_INVALID_MSID = 6;
/// The maximum number of simultaneous sessions has been reached.
inline constexpr int MPI_M_SESSION_OVERFLOW = 7;
/// init or continue (resp. suspend) called more than once without suspend
/// (resp. continue).
inline constexpr int MPI_M_MULTIPLE_CALL = 8;
/// The root parameter is invalid.
inline constexpr int MPI_M_INVALID_ROOT = 9;
/// The flags parameter is not a combination of the MPI_M_*_ONLY flags.
inline constexpr int MPI_M_INVALID_FLAGS = 10;
/// A gather completed but one or more contributors crashed or timed out;
/// their rows hold MPI_M_DATA_MISSING. The rest of the matrix is valid.
inline constexpr int MPI_M_PARTIAL_DATA = 11;
/// A snapshot operation was called on a session that has no snapshot
/// sampler attached (MPI_M_snapshot_start not called, or already stopped
/// where a running snapshot is required).
inline constexpr int MPI_M_NO_SNAPSHOT = 12;
/// A critpath operation was called but no critical-path profiler is
/// attached to the engine (mon::attach_critpath before run()).
inline constexpr int MPI_M_NO_CRITPATH = 13;

/// Sentinel filling the rows of contributors that could not be gathered
/// (crashed or timed-out ranks) when a gather returns MPI_M_PARTIAL_DATA.
inline constexpr unsigned long MPI_M_DATA_MISSING = ~0ul;

/// Maximum number of simultaneously live sessions per process.
inline constexpr int MPI_M_MAX_SESSIONS = 256;

/// Human-readable error-code name ("MPI_M_INVALID_MSID"...).
const char* MPI_M_error_string(int code);

// --- environment ---------------------------------------------------------------

/// Sets the monitoring environment. Call between MPI_Init and MPI_Finalize
/// (here: inside Engine::run, after attaching an mpit::Runtime).
int MPI_M_init();
/// Finalizes the monitoring environment; every session must be suspended or
/// freed beforehand (suspended ones are freed).
int MPI_M_finalize();

// --- session control -------------------------------------------------------------

/// Creates and starts a monitoring session on `comm`. Counts and sizes of
/// messages between any two processes of `comm` are recorded, whatever
/// communicator carries them.
int MPI_M_start(mpim::mpi::Comm comm, MPI_M_msid* msid);
/// Suspends an active session, making its data available.
int MPI_M_suspend(MPI_M_msid msid);
/// Restarts a suspended session.
int MPI_M_continue(MPI_M_msid msid);
/// Zeroes the data of a suspended session.
int MPI_M_reset(MPI_M_msid msid);
/// Frees a suspended session (data no longer available).
int MPI_M_free(MPI_M_msid msid);

// --- fault recovery ----------------------------------------------------------

/// Rebinds a *suspended* session onto `newcomm` -- typically the shrunk
/// successor of its communicator after mpim::mpi::comm_shrink. The
/// accumulated per-peer counts and sizes of every member shared by the old
/// and new communicator are carried over (remapped by world rank); rows of
/// members that disappeared are tombstoned (MPI_M_session_tombstones). Any
/// attached snapshot sampler is dropped: its frame grid was sized for the
/// old group. The session stays suspended; MPI_M_continue resumes
/// recording on the new communicator. Collective over `newcomm` by
/// convention, though no traffic is generated. Errors:
/// MPI_M_SESSION_NOT_SUSPENDED unless suspended, MPI_M_INTERNAL_FAIL when
/// `newcomm` is null or does not contain the caller.
int MPI_M_rebind(MPI_M_msid msid, mpim::mpi::Comm newcomm);

/// Tombstones of a session: world ranks that were members of a previous
/// binding but are absent from the current one (their rows were dropped at
/// MPI_M_rebind). Writes up to `capacity` entries to `world_ranks` (may be
/// MPI_M_INT_IGNORE) and the total to `count`. Local; any state.
int MPI_M_session_tombstones(MPI_M_msid msid, int* world_ranks, int capacity,
                             int* count);

// --- data access ------------------------------------------------------------------

/// provided: level of thread support (always "multiple" here);
/// array_size: length of the get_data arrays / order of the gather matrices.
int MPI_M_get_info(MPI_M_msid msid, int* provided, int* array_size);

/// Copies the calling process's per-peer sent counts/bytes. Collective over
/// the session communicator by convention, though no traffic is generated.
int MPI_M_get_data(MPI_M_msid msid, unsigned long* msg_counts,
                   unsigned long* msg_sizes, int flags);

/// get_data + allgather: every process receives the full size x size
/// matrices (row-major, row i = messages sent by rank i).
int MPI_M_allgather_data(MPI_M_msid msid, unsigned long* matrix_counts,
                         unsigned long* matrix_sizes, int flags);

/// Like allgather_data but only `root` receives; others may pass NULL.
int MPI_M_rootgather_data(MPI_M_msid msid, int root,
                          unsigned long* matrix_counts,
                          unsigned long* matrix_sizes, int flags);

/// Wall-clock budget per missing contributor before a gather gives up on a
/// rank and fills its row with MPI_M_DATA_MISSING (returning
/// MPI_M_PARTIAL_DATA instead of hanging). Only consulted when the engine
/// runs with a fault plan; the default is 5 s, overridable with the
/// MPIM_GATHER_TIMEOUT_S environment variable. The setter rejects
/// non-positive values with MPI_M_INTERNAL_FAIL.
int MPI_M_set_gather_timeout(double timeout_s);
double MPI_M_get_gather_timeout();

// --- windowed snapshots (time-resolved introspection) -----------------------

/// Attaches a windowed snapshot sampler to an *active* session: from now
/// on the session's traffic is additionally binned into fixed windows of
/// `window_s` virtual seconds (global grid: window w covers
/// [w*window_s, (w+1)*window_s)), kept in a bounded ring of the last
/// `max_frames` per-window delta frames. Local, no traffic; recording
/// pauses while the session is suspended and never charges virtual time
/// (clocks are bit-identical with snapshots on or off).
/// Errors: MPI_M_MULTIPLE_CALL when a snapshot is already running,
/// MPI_M_INVALID_FLAGS for a bad kind filter, MPI_M_INTERNAL_FAIL for a
/// non-positive window or frame budget, MPI_M_MULTIPLE_CALL rules over a
/// stopped snapshot: restarting is allowed and discards the old frames.
int MPI_M_snapshot_start(MPI_M_msid msid, double window_s, int max_frames,
                         int flags);

/// Stops a running snapshot: closes the current window and detaches the
/// sampler from the send path. Frames stay readable until reset/free or a
/// new snapshot_start. Allowed in active or suspended state; returns
/// MPI_M_NO_SNAPSHOT when none is running.
int MPI_M_snapshot_stop(MPI_M_msid msid);

/// Local snapshot counters of a *suspended* session: frames currently
/// held, frames evicted from the ring, and phase boundaries the detector
/// flagged on this rank's traffic. Any output may be MPI_M_INT_IGNORE.
int MPI_M_snapshot_info(MPI_M_msid msid, int* nframes, int* frames_dropped,
                        int* phase_boundaries);

/// Collective over the session communicator (suspended session, snapshot
/// attached on every rank with the same window_s): aligns every rank's
/// frames on the global window grid and returns, on every process, the
/// last (up to) `max_frames` windows as full per-window matrices.
/// Outputs, each optionally MPI_M_DATA_IGNORE / MPI_M_INT_IGNORE except
/// nframes: t0_s/t1_s[max_frames] window bounds, matrix_counts/
/// matrix_sizes[max_frames * n * n] row-major per-window matrices
/// (windows nobody wrote to are all-zero; `flags` selects the traffic
/// classes summed). Under faults, rows of crashed or timed-out
/// contributors hold MPI_M_DATA_MISSING and the call returns
/// MPI_M_PARTIAL_DATA. On success the per-window analyzer also refreshes
/// the mpim_introspect_* derived-metric pvars of the calling rank.
int MPI_M_get_frames(MPI_M_msid msid, int max_frames, int* nframes,
                     double* t0_s, double* t1_s,
                     unsigned long* matrix_counts,
                     unsigned long* matrix_sizes, int flags);

/// Each process writes its own row to "<filename>.<rank>.prof" (rank in the
/// session communicator).
int MPI_M_flush(MPI_M_msid msid, const char* filename, int flags);

// --- causal critical-path profiler (src/critpath) ----------------------------
//
// All calls are local to the calling rank (no traffic, no virtual cost)
// and require a profiler attached to the engine before run() -- see
// mon::attach_critpath (src/mpimon/critpath_attach.h) -- else they return
// MPI_M_NO_CRITPATH. Capture never charges virtual time: clocks are
// bit-identical with the profiler armed or not.

/// Arms wait-state and event capture for the calling rank's lane (lanes
/// start armed by default; see critpath::Config::start_armed).
int MPI_M_critpath_start();
/// Disarms the calling rank's lane; accumulated data stays readable.
int MPI_M_critpath_stop();
/// Local capture counters of the calling rank: events captured, ring
/// evictions, and whether the governor forced blame-only mode (0/1).
/// Any output may be MPI_M_INT_IGNORE.
int MPI_M_critpath_info(int* events, int* dropped, int* blame_only);
/// Calling rank's classified wait time per wait-state class, virtual
/// nanoseconds. Any output may be MPI_M_DATA_IGNORE.
int MPI_M_critpath_classes(unsigned long* late_sender_ns,
                           unsigned long* late_receiver_ns,
                           unsigned long* wait_collective_ns,
                           unsigned long* root_imbalance_ns);
/// Calling rank's wait charged to each world peer, virtual nanoseconds.
/// Writes up to `capacity` entries to `wait_ns` (may be
/// MPI_M_DATA_IGNORE) and the world size to `count` (MPI_M_INT_IGNORE ok).
int MPI_M_critpath_waits(unsigned long* wait_ns, int capacity, int* count);
/// Peer the calling rank waited longest on (-1 when it never waited) and
/// that wait in virtual nanoseconds.
int MPI_M_critpath_dominant(int* peer, unsigned long* wait_ns);

/// `root` gathers everything and writes "<filename>_counts.<rank>.prof" and
/// "<filename>_sizes.<rank>.prof" (rank of root in MPI_COMM_WORLD).
int MPI_M_rootflush(MPI_M_msid msid, int root, const char* filename,
                    int flags);
