#include "mpimon/governor.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>

#include "minimpi/engine.h"
#include "mpimon/critpath_attach.h"
#include "obsplane/plane.h"
#include "support/env.h"
#include "telemetry/hub.h"
#include "telemetry/log.h"

namespace mpim::mon {

Governor& Governor::of(mpi::Engine& engine) {
  auto obj = engine.get_or_create_tool_object(
      "mpimon:governor",
      [&engine]() -> std::shared_ptr<void> {
        return std::make_shared<Governor>(engine);
      });
  return *std::static_pointer_cast<Governor>(obj);
}

Governor::Governor(mpi::Engine& engine) : engine_(engine) {
  const auto mem = support::env_positive_u64("MPIM_MEM_BUDGET_BYTES");
  if (mem.ok()) {
    mem_budget_ = mem.value;
  } else if (mem.invalid()) {
    telemetry::log(telemetry::LogLevel::warn, -1, "governor",
                   "ignoring invalid MPIM_MEM_BUDGET_BYTES=\"" + mem.raw +
                       "\" (want an integer > 0); budget disabled");
  }
  const auto pct = support::env_positive_double("MPIM_OVERHEAD_PCT");
  if (pct.ok()) {
    overhead_pct_ = pct.value;
  } else if (pct.invalid()) {
    telemetry::log(telemetry::LogLevel::warn, -1, "governor",
                   "ignoring invalid MPIM_OVERHEAD_PCT=\"" + pct.raw +
                       "\" (want a finite number > 0); budget disabled");
  }
  if (mem_budget_ == 0) return;
  // The span rings are the monitoring plane's standing allocation: charge
  // them up front at their effective capacity. A budget smaller than the
  // rings themselves starts the run already shedding.
  telemetry::Hub& hub = engine_.telemetry();
  std::lock_guard lock(mx_);
  span_accounted_ = static_cast<std::uint64_t>(hub.nranks()) *
                    hub.span_soft_capacity() * sizeof(telemetry::SpanRec);
  level_.store(span_accounted_, std::memory_order_relaxed);
  while (level_.load(std::memory_order_relaxed) > mem_budget_ &&
         shed_step_locked(0)) {
  }
  set_mem_gauge_locked();
}

void Governor::set_mem_gauge_locked() {
  telemetry::Hub& hub = engine_.telemetry();
  hub.gauge_set(hub.ids().gov_mem_bytes, 0,
                static_cast<std::int64_t>(
                    level_.load(std::memory_order_relaxed)));
}

bool Governor::shed_step_locked(int rank) {
  const int lvl = shed_level_.load(std::memory_order_relaxed);
  if (lvl >= 4) return false;
  const int next = lvl + 1;
  telemetry::Hub& hub = engine_.telemetry();
  std::string what;
  switch (next) {
    case 1:
      // Host-side only: new snapshots sample coarser windows. Existing
      // samplers keep their grid; virtual clocks are untouched.
      what = "widening snapshot windows x2 for new snapshots";
      break;
    case 2: {
      const std::size_t cap = hub.span_soft_capacity();
      const std::size_t half = std::max<std::size_t>(1, cap / 2);
      hub.set_span_soft_capacity(half);
      const std::uint64_t now_accounted =
          static_cast<std::uint64_t>(hub.nranks()) * half *
          sizeof(telemetry::SpanRec);
      const std::uint64_t freed =
          span_accounted_ > now_accounted ? span_accounted_ - now_accounted
                                          : 0;
      span_accounted_ = now_accounted;
      level_.fetch_sub(std::min(freed, level_.load(std::memory_order_relaxed)),
                       std::memory_order_relaxed);
      what = "halving telemetry span rings to " + std::to_string(half) +
             " records/rank";
      break;
    }
    case 3:
      // Streaming plane: double the epochs merged per store bucket. The
      // plane halves its bucket count on the spot and re-reports its
      // working-set gauge; a detached plane makes this step a cheap no-op
      // (the ladder still advances so level 4 stays the last resort).
      if (obsplane::Plane* plane = obsplane::Plane::attached(engine_)) {
        plane->widen_windows();
        what = "widening streaming-plane store windows to " +
               std::to_string(plane->window_merge()) + " epochs/bucket";
      } else {
        what = "widening streaming-plane store windows (no plane attached)";
      }
      break;
    case 4:
      hub.set_spans_suppressed(true);
      level_.fetch_sub(
          std::min(span_accounted_, level_.load(std::memory_order_relaxed)),
          std::memory_order_relaxed);
      span_accounted_ = 0;
      what = "dropping per-packet/collective span recording";
      break;
  }
  shed_level_.store(next, std::memory_order_relaxed);
  shed_steps_.fetch_add(1, std::memory_order_relaxed);
  hub.add(hub.ids().gov_shed_steps, rank);
  hub.gauge_set(hub.ids().gov_shed_level, 0, next);
  set_mem_gauge_locked();
  telemetry::log(telemetry::LogLevel::warn, rank, "governor",
                 "memory budget pressure (" +
                     std::to_string(level_.load(std::memory_order_relaxed)) +
                     "/" + std::to_string(mem_budget_) +
                     " bytes): shed level " + std::to_string(next) + ", " +
                     what);
  return true;
}

int Governor::reserve_frames(int rank, int want_frames,
                             std::uint64_t frame_bytes) {
  if (!mem_enabled() || want_frames <= 0 || frame_bytes == 0)
    return want_frames;
  const std::uint64_t need =
      static_cast<std::uint64_t>(want_frames) * frame_bytes;
  std::lock_guard lock(mx_);
  while (level_.load(std::memory_order_relaxed) + need > mem_budget_ &&
         shed_step_locked(rank)) {
  }
  const std::uint64_t lvl = level_.load(std::memory_order_relaxed);
  const std::uint64_t room = mem_budget_ > lvl ? mem_budget_ - lvl : 0;
  const int granted = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(want_frames), room / frame_bytes));
  if (granted <= 0) {
    refusals_.fetch_add(1, std::memory_order_relaxed);
    telemetry::Hub& hub = engine_.telemetry();
    hub.add(hub.ids().gov_refusals, rank);
    telemetry::log(telemetry::LogLevel::warn, rank, "governor",
                   "snapshot reservation refused: budget exhausted at "
                   "maximum shedding");
    return 0;
  }
  level_.fetch_add(static_cast<std::uint64_t>(granted) * frame_bytes,
                   std::memory_order_relaxed);
  set_mem_gauge_locked();
  if (granted < want_frames)
    telemetry::log(telemetry::LogLevel::warn, rank, "governor",
                   "snapshot frame reservation trimmed " +
                       std::to_string(want_frames) + " -> " +
                       std::to_string(granted) + " frames");
  return granted;
}

void Governor::release(std::uint64_t bytes) {
  if (!mem_enabled() || bytes == 0) return;
  std::lock_guard lock(mx_);
  level_.fetch_sub(std::min(bytes, level_.load(std::memory_order_relaxed)),
                   std::memory_order_relaxed);
  set_mem_gauge_locked();
}

void Governor::report_overhead(int rank, double overhead_s, double span_s) {
  if (overhead_pct_ <= 0.0 || !(span_s > 0.0)) return;
  const double pct = 100.0 * overhead_s / span_s;
  if (pct <= overhead_pct_) return;
  overhead_alarms_.fetch_add(1, std::memory_order_relaxed);
  telemetry::Hub& hub = engine_.telemetry();
  hub.add(hub.ids().gov_overhead_alarms, rank);
  telemetry::log(
      telemetry::LogLevel::warn, rank, "governor",
      "modeled monitoring overhead " + std::to_string(pct) +
          "% exceeds MPIM_OVERHEAD_PCT=" + std::to_string(overhead_pct_) +
          "; widening snapshot windows (virtual cost already modeled is "
          "never un-charged: clocks stay deterministic)");
  std::lock_guard lock(mx_);
  if (shed_level_.load(std::memory_order_relaxed) < 1) shed_step_locked(rank);
}

std::shared_ptr<critpath::Profiler> attach_critpath(mpi::Engine& engine,
                                                    critpath::Config cfg) {
  if (!cfg.reserve) {
    mpi::Engine* e = &engine;
    cfg.reserve = [e](std::size_t want_frames,
                      std::uint64_t frame_bytes) -> std::size_t {
      constexpr std::size_t kIntMax =
          static_cast<std::size_t>(std::numeric_limits<int>::max());
      const int want =
          static_cast<int>(std::min(want_frames, kIntMax));
      const int granted = Governor::of(*e).reserve_frames(0, want, frame_bytes);
      return granted > 0 ? static_cast<std::size_t>(granted) : 0;
    };
  }
  return critpath::Profiler::attach(engine, std::move(cfg));
}

}  // namespace mpim::mon
