// Fortran binding of the MPI_Monitoring library.
//
// As described in the paper: "the datatype MPI_M_msid is replaced by the
// type integer, and each function possesses an additional parameter which
// is used to transmit the return value". Symbols follow the classic
// trailing-underscore Fortran mangling and take every argument by
// reference; communicators are passed as integer handles registered with
// mpi_m_register_comm_f.
//
// There is no Fortran compiler in this environment, so the binding is
// exercised from C++ test code calling these shims directly -- which is
// exactly what a Fortran object file would do.
#pragma once

#include "minimpi/comm.h"

extern "C" {

/// Registers a communicator and returns its Fortran integer handle.
/// (A real MPI implementation gets this from MPI_Comm_c2f.)
int mpi_m_register_comm_f(const mpim::mpi::Comm& comm);

void mpi_m_init_(int* ierr);
void mpi_m_finalize_(int* ierr);
void mpi_m_start_(const int* comm_f, int* msid, int* ierr);
void mpi_m_suspend_(const int* msid, int* ierr);
void mpi_m_continue_(const int* msid, int* ierr);
void mpi_m_reset_(const int* msid, int* ierr);
void mpi_m_free_(const int* msid, int* ierr);
void mpi_m_rebind_(const int* msid, const int* newcomm_f, int* ierr);
void mpi_m_session_tombstones_(const int* msid, int* world_ranks,
                               const int* capacity, int* count, int* ierr);
void mpi_m_get_info_(const int* msid, int* provided, int* array_size,
                     int* ierr);
void mpi_m_get_data_(const int* msid, unsigned long* msg_counts,
                     unsigned long* msg_sizes, const int* flags, int* ierr);
void mpi_m_allgather_data_(const int* msid, unsigned long* matrix_counts,
                           unsigned long* matrix_sizes, const int* flags,
                           int* ierr);
void mpi_m_rootgather_data_(const int* msid, const int* root,
                            unsigned long* matrix_counts,
                            unsigned long* matrix_sizes, const int* flags,
                            int* ierr);
void mpi_m_snapshot_start_(const int* msid, const double* window_s,
                           const int* max_frames, const int* flags,
                           int* ierr);
void mpi_m_snapshot_stop_(const int* msid, int* ierr);
void mpi_m_snapshot_info_(const int* msid, int* nframes, int* frames_dropped,
                          int* phase_boundaries, int* ierr);
void mpi_m_get_frames_(const int* msid, const int* max_frames, int* nframes,
                       double* t0_s, double* t1_s,
                       unsigned long* matrix_counts,
                       unsigned long* matrix_sizes, const int* flags,
                       int* ierr);
void mpi_m_flush_(const int* msid, const char* filename, const int* flags,
                  int* ierr, int filename_len);
void mpi_m_rootflush_(const int* msid, const int* root, const char* filename,
                      const int* flags, int* ierr, int filename_len);
void mpi_m_critpath_start_(int* ierr);
void mpi_m_critpath_stop_(int* ierr);
void mpi_m_critpath_info_(int* events, int* dropped, int* blame_only,
                          int* ierr);
void mpi_m_critpath_classes_(unsigned long* late_sender_ns,
                             unsigned long* late_receiver_ns,
                             unsigned long* wait_collective_ns,
                             unsigned long* root_imbalance_ns, int* ierr);
void mpi_m_critpath_waits_(unsigned long* wait_ns, const int* capacity,
                           int* count, int* ierr);
void mpi_m_critpath_dominant_(int* peer, unsigned long* wait_ns, int* ierr);

}  // extern "C"
