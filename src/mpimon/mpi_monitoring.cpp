#include "mpimon/mpi_monitoring.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "critpath/critpath.h"
#include "introspect/analyzer.h"
#include "introspect/snapshot.h"
#include "minimpi/coll.h"
#include "minimpi/engine.h"
#include "mpimon/governor.h"
#include "mpit/runtime.h"
#include "obsplane/plane.h"
#include "support/env.h"
#include "telemetry/hub.h"
#include "telemetry/log.h"

namespace {

using mpim::mpi::Comm;
using mpim::mpi::CommKind;
using mpim::mpi::Ctx;
using mpim::mpi::Type;

constexpr int kThreadLevelProvided = 3;  // MPI_THREAD_MULTIPLE

struct MonSession {
  enum class St { active, suspended, freed };
  St state = St::freed;
  Comm comm;
  int tsession = -1;
  /// mpit handle per pvar index (0..5, see mpit/pvar.cpp).
  std::array<int, 6> handles{};
  /// Virtual time the current active period began (telemetry span).
  double span_start_s = -1.0;
  /// Windowed snapshot sampler (MPI_M_snapshot_start); shared so the
  /// packet observer closure survives session-vector reallocation.
  std::shared_ptr<mpim::introspect::WindowSampler> sampler;
  /// Cross-thread snapshot state shared with the packet observer. The
  /// observer can run on a peer's thread (RMA attribution), so it must not
  /// read the session table: `live` mirrors `state == active &&
  /// snapshot_running`, and `mx` serializes every sampler access against
  /// in-flight observer deliveries.
  struct SnapShared {
    std::mutex mx;
    std::atomic<bool> live{false};
  };
  std::shared_ptr<SnapShared> snap;
  bool snapshot_running = false;
  int snapshot_flags = MPI_M_ALL_COMM;
  /// World ranks dropped from the binding by MPI_M_rebind (union over
  /// every rebind of this session).
  std::vector<int> tombstones;
  /// Frame bytes this session's sampler holds against the governor's
  /// memory budget (0 when no budget or no sampler).
  std::uint64_t gov_reserved = 0;
};

mpim::telemetry::Hub& tele() {
  return Ctx::current().engine().telemetry();
}

int tele_rank() { return Ctx::current().world_rank(); }

double default_gather_timeout() {
  const auto env = mpim::support::env_positive_double("MPIM_GATHER_TIMEOUT_S");
  if (env.ok()) return env.value;
  if (env.invalid())
    mpim::telemetry::log(
        mpim::telemetry::LogLevel::warn, -1, "mpimon",
        "ignoring invalid MPIM_GATHER_TIMEOUT_S=\"" + env.raw +
            "\" (want a finite number > 0); using the 5 s default");
  return 5.0;
}

struct MonState {
  bool initialized = false;
  std::vector<MonSession> sessions;
  double gather_timeout_s = default_gather_timeout();
};

MonState& mon_state() {
  Ctx& ctx = Ctx::current();
  auto obj = ctx.engine().get_or_create_tool_object(
      "mpimon:rank:" + std::to_string(ctx.world_rank()),
      [] { return std::make_shared<MonState>(); });
  return *static_cast<MonState*>(obj.get());
}

/// Maps exceptions of the layers below to the paper's error codes. Engine
/// teardown (AbortError) keeps propagating so the failing rank unwinds.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const mpim::mpi::AbortError&) {
    throw;
  } catch (const mpim::mpi::RankCrashExit&) {
    // The calling rank itself is crashing: it must unwind out of its main
    // function, not limp on with an error code (a zombie rank would stall
    // every collective it is still a member of).
    throw;
  } catch (const mpim::mpit::MpitError&) {
    return MPI_M_MPIT_FAIL;
  } catch (const mpim::CommRevokedError&) {
    // A revoked communicator is an MPI-layer refusal, not missing data:
    // the caller should shrink and rebind before asking again.
    return MPI_M_MPIT_FAIL;
  } catch (const mpim::RankFailedError&) {
    return MPI_M_PARTIAL_DATA;
  } catch (const mpim::TimeoutError&) {
    return MPI_M_PARTIAL_DATA;
  } catch (const std::bad_alloc&) {
    return MPI_M_INTERNAL_FAIL;
  } catch (...) {
    return MPI_M_INTERNAL_FAIL;
  }
}

bool flags_valid(int flags) {
  return flags != 0 && (flags & ~MPI_M_ALL_COMM) == 0;
}

/// msid lookup for single-session operations (ALL_MSID rejected).
int resolve_msid(MonState& st, MPI_M_msid msid, MonSession** out) {
  if (!st.initialized) return MPI_M_MISSING_INIT;
  if (msid == MPI_M_ALL_MSID || msid < 0 ||
      msid >= static_cast<int>(st.sessions.size()))
    return MPI_M_INVALID_MSID;
  MonSession& s = st.sessions[static_cast<std::size_t>(msid)];
  if (s.state == MonSession::St::freed) return MPI_M_INVALID_MSID;
  *out = &s;
  return MPI_M_SUCCESS;
}

mpim::mpit::Runtime& runtime() {
  return mpim::mpit::Runtime::of(Ctx::current().engine());
}

void stop_all_handles(MonSession& s) {
  auto& rt = runtime();
  for (int h : s.handles) rt.handle_stop(s.tsession, h);
}

void start_all_handles(MonSession& s) {
  auto& rt = runtime();
  for (int h : s.handles) rt.handle_start(s.tsession, h);
}

/// Accumulates the selected traffic classes of one metric into `out`
/// (length n). metric 0 = counts, 1 = sizes.
void read_metric(MonSession& s, int flags, int metric,
                 std::vector<unsigned long>& out) {
  auto& rt = runtime();
  const std::size_t n = static_cast<std::size_t>(s.comm.size());
  out.assign(n, 0ul);
  std::vector<unsigned long> tmp(n);
  for (int bit = 0; bit < 3; ++bit) {
    if (!(flags & (1 << bit))) continue;
    const int pvar = 2 * bit + metric;
    rt.handle_read(s.tsession, s.handles[static_cast<std::size_t>(pvar)],
                   tmp.data(), static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i) out[i] += tmp[i];
  }
}

std::string flags_string(int flags) {
  std::string out;
  auto append = [&](const char* name) {
    if (!out.empty()) out += "|";
    out += name;
  };
  if (flags & MPI_M_P2P_ONLY) append("p2p");
  if (flags & MPI_M_COLL_ONLY) append("coll");
  if (flags & MPI_M_OSC_ONLY) append("osc");
  return out;
}

}  // namespace

const char* MPI_M_error_string(int code) {
  switch (code) {
    case MPI_M_SUCCESS: return "MPI_M_SUCCESS";
    case MPI_M_INTERNAL_FAIL: return "MPI_M_INTERNAL_FAIL";
    case MPI_M_MPIT_FAIL: return "MPI_M_MPIT_FAIL";
    case MPI_M_MISSING_INIT: return "MPI_M_MISSING_INIT";
    case MPI_M_SESSION_STILL_ACTIVE: return "MPI_M_SESSION_STILL_ACTIVE";
    case MPI_M_SESSION_NOT_SUSPENDED: return "MPI_M_SESSION_NOT_SUSPENDED";
    case MPI_M_INVALID_MSID: return "MPI_M_INVALID_MSID";
    case MPI_M_SESSION_OVERFLOW: return "MPI_M_SESSION_OVERFLOW";
    case MPI_M_MULTIPLE_CALL: return "MPI_M_MULTIPLE_CALL";
    case MPI_M_INVALID_ROOT: return "MPI_M_INVALID_ROOT";
    case MPI_M_INVALID_FLAGS: return "MPI_M_INVALID_FLAGS";
    case MPI_M_PARTIAL_DATA: return "MPI_M_PARTIAL_DATA";
    case MPI_M_NO_SNAPSHOT: return "MPI_M_NO_SNAPSHOT";
    case MPI_M_NO_CRITPATH: return "MPI_M_NO_CRITPATH";
    default: return "(unknown MPI_M error code)";
  }
}

int MPI_M_init() {
  return guarded([&] {
    runtime();  // throws MpitError when no tool runtime is attached
    MonState& st = mon_state();
    if (st.initialized) return MPI_M_MULTIPLE_CALL;
    st.initialized = true;
    return MPI_M_SUCCESS;
  });
}

int MPI_M_finalize() {
  return guarded([&] {
    MonState& st = mon_state();
    if (!st.initialized) return MPI_M_MISSING_INIT;
    for (const MonSession& s : st.sessions)
      if (s.state == MonSession::St::active)
        return MPI_M_SESSION_STILL_ACTIVE;
    auto& rt = runtime();
    for (MonSession& s : st.sessions) {
      if (s.state == MonSession::St::suspended) {
        rt.session_free(s.tsession);
        if (s.gov_reserved > 0)
          mpim::mon::Governor::of(Ctx::current().engine())
              .release(s.gov_reserved);
        s.state = MonSession::St::freed;
      }
    }
    st.sessions.clear();
    st.initialized = false;
    return MPI_M_SUCCESS;
  });
}

int MPI_M_start(Comm comm, MPI_M_msid* msid) {
  return guarded([&] {
    MonState& st = mon_state();
    if (!st.initialized) return MPI_M_MISSING_INIT;
    if (msid == nullptr || comm.is_null()) return MPI_M_INTERNAL_FAIL;
    if (!comm.contains_world(Ctx::current().world_rank()))
      return MPI_M_INTERNAL_FAIL;

    // Reuse the first freed slot; cap the number of live sessions.
    int slot = -1;
    int live = 0;
    for (std::size_t i = 0; i < st.sessions.size(); ++i) {
      if (st.sessions[i].state == MonSession::St::freed) {
        if (slot < 0) slot = static_cast<int>(i);
      } else {
        ++live;
      }
    }
    if (live >= MPI_M_MAX_SESSIONS) return MPI_M_SESSION_OVERFLOW;
    if (slot < 0) {
      st.sessions.emplace_back();
      slot = static_cast<int>(st.sessions.size()) - 1;
    }

    auto& rt = runtime();
    MonSession s;
    s.comm = comm;
    s.tsession = rt.session_create();
    for (int pvar = 0; pvar < 6; ++pvar)
      s.handles[static_cast<std::size_t>(pvar)] =
          rt.handle_alloc(s.tsession, pvar, comm);
    s.state = MonSession::St::active;
    s.span_start_s = Ctx::current().now();
    start_all_handles(s);
    st.sessions[static_cast<std::size_t>(slot)] = s;
    *msid = slot;
    tele().add(tele().ids().mon_session_starts, tele_rank());
    return MPI_M_SUCCESS;
  });
}

namespace {

/// Shared shape of suspend/continue/reset/free: single-session transition
/// with an ALL_MSID broadcast variant that silently skips sessions in a
/// non-applicable state.
template <typename ApplicableFn, typename ApplyFn>
int session_op(MPI_M_msid msid, int wrong_state_error,
               ApplicableFn&& applicable, ApplyFn&& apply) {
  return guarded([&] {
    MonState& st = mon_state();
    if (!st.initialized) return MPI_M_MISSING_INIT;
    if (msid == MPI_M_ALL_MSID) {
      for (MonSession& s : st.sessions)
        if (s.state != MonSession::St::freed && applicable(s)) apply(s);
      return MPI_M_SUCCESS;
    }
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (!applicable(*s)) return wrong_state_error;
    apply(*s);
    return MPI_M_SUCCESS;
  });
}

}  // namespace

int MPI_M_suspend(MPI_M_msid msid) {
  return session_op(
      msid, MPI_M_MULTIPLE_CALL,
      [](const MonSession& s) { return s.state == MonSession::St::active; },
      [](MonSession& s) {
        stop_all_handles(s);
        // Close the sampler's open window so snapshot data is complete
        // while the session data is readable. Gate off first so no
        // in-flight observer lands a record after the flush.
        if (s.sampler && s.snapshot_running) {
          s.snap->live.store(false, std::memory_order_release);
          std::lock_guard<std::mutex> lock(s.snap->mx);
          s.sampler->flush(Ctx::current().now());
        }
        s.state = MonSession::St::suspended;
        mpim::telemetry::Hub& hub = tele();
        hub.add(hub.ids().mon_session_suspends, tele_rank());
        // Sessions do not nest LIFO with collectives, so the active period
        // is recorded as a closed interval rather than via the span stack.
        if (s.span_start_s >= 0.0)
          hub.span_complete(tele_rank(), "mon.session", 'S', s.span_start_s,
                            Ctx::current().now());
        // Modeled-overhead budget: recorded events x the engine's
        // per-event cost against the active span, all virtual quantities,
        // so the alarm decision is deterministic per rank.
        auto& gov = mpim::mon::Governor::of(Ctx::current().engine());
        if (gov.overhead_budget_pct() > 0.0 && s.span_start_s >= 0.0) {
          std::vector<unsigned long> row;
          read_metric(s, MPI_M_ALL_COMM, 0, row);
          unsigned long events = 0;
          for (unsigned long v : row) events += v;
          gov.report_overhead(
              tele_rank(),
              static_cast<double>(events) *
                  Ctx::current().engine().config().monitor_event_cost_s,
              Ctx::current().now() - s.span_start_s);
        }
        s.span_start_s = -1.0;
      });
}

int MPI_M_continue(MPI_M_msid msid) {
  return session_op(
      msid, MPI_M_MULTIPLE_CALL,
      [](const MonSession& s) {
        return s.state == MonSession::St::suspended;
      },
      [](MonSession& s) {
        start_all_handles(s);
        s.state = MonSession::St::active;
        if (s.sampler && s.snapshot_running)
          s.snap->live.store(true, std::memory_order_release);
        s.span_start_s = Ctx::current().now();
      });
}

int MPI_M_reset(MPI_M_msid msid) {
  return session_op(
      msid, MPI_M_SESSION_NOT_SUSPENDED,
      [](const MonSession& s) {
        return s.state == MonSession::St::suspended;
      },
      [](MonSession& s) {
        auto& rt = runtime();
        for (int h : s.handles) rt.handle_reset(s.tsession, h);
        if (s.sampler) {
          std::lock_guard<std::mutex> lock(s.snap->mx);
          s.sampler->clear();
        }
        tele().add(tele().ids().mon_session_resets, tele_rank());
      });
}

int MPI_M_free(MPI_M_msid msid) {
  return session_op(
      msid, MPI_M_SESSION_NOT_SUSPENDED,
      [](const MonSession& s) {
        return s.state == MonSession::St::suspended;
      },
      [](MonSession& s) {
        if (s.snap) s.snap->live.store(false, std::memory_order_release);
        runtime().session_free(s.tsession);  // also detaches the observer
        // The observer closure keeps its own sampler/snap refs alive until
        // the next grace period; dropping ours here is safe.
        s.sampler.reset();
        s.snap.reset();
        s.snapshot_running = false;
        if (s.gov_reserved > 0) {
          mpim::mon::Governor::of(Ctx::current().engine())
              .release(s.gov_reserved);
          s.gov_reserved = 0;
        }
        s.tombstones.clear();
        s.state = MonSession::St::freed;
      });
}

int MPI_M_rebind(MPI_M_msid msid, Comm newcomm) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (newcomm.is_null() ||
        !newcomm.contains_world(Ctx::current().world_rank()))
      return MPI_M_INTERNAL_FAIL;

    auto& rt = runtime();
    const std::size_t n_old = static_cast<std::size_t>(s->comm.size());
    const std::size_t n_new = static_cast<std::size_t>(newcomm.size());

    // Read the accumulated history off the old binding; the handles are
    // stopped while suspended, so the rows are stable.
    std::array<std::vector<unsigned long>, 6> rows;
    for (std::size_t p = 0; p < 6; ++p) {
      rows[p].assign(n_old, 0ul);
      rt.handle_read(s->tsession, s->handles[p], rows[p].data(),
                     static_cast<int>(n_old));
    }
    for (std::size_t g = 0; g < n_old; ++g) {
      const int w = s->comm.world_rank_of(static_cast<int>(g));
      if (!newcomm.contains_world(w)) s->tombstones.push_back(w);
    }

    // Drop the sampler: its frame grid and peer numbering were sized for
    // the old group. session_free also detaches the packet observer.
    if (s->snap) s->snap->live.store(false, std::memory_order_release);
    rt.session_free(s->tsession);
    s->sampler.reset();
    s->snap.reset();
    s->snapshot_running = false;
    if (s->gov_reserved > 0) {
      mpim::mon::Governor::of(Ctx::current().engine())
          .release(s->gov_reserved);
      s->gov_reserved = 0;
    }

    // Fresh mpit session + handles on the successor, seeded with each
    // surviving member's history (remapped by world rank).
    s->tsession = rt.session_create();
    for (int pvar = 0; pvar < 6; ++pvar)
      s->handles[static_cast<std::size_t>(pvar)] =
          rt.handle_alloc(s->tsession, pvar, newcomm);
    std::vector<unsigned long> seeded(n_new, 0ul);
    for (std::size_t p = 0; p < 6; ++p) {
      for (std::size_t j = 0; j < n_new; ++j) {
        const int w = newcomm.world_rank_of(static_cast<int>(j));
        const int g_old = s->comm.group_rank_of_world(w);
        seeded[j] = g_old >= 0 ? rows[p][static_cast<std::size_t>(g_old)]
                               : 0ul;
      }
      rt.handle_write(s->tsession, s->handles[p], seeded.data(),
                      static_cast<int>(n_new));
    }
    s->comm = newcomm;
    tele().add(tele().ids().mon_rebinds, tele_rank());
    return MPI_M_SUCCESS;
  });
}

int MPI_M_session_tombstones(MPI_M_msid msid, int* world_ranks, int capacity,
                             int* count) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    const int total = static_cast<int>(s->tombstones.size());
    if (world_ranks != MPI_M_INT_IGNORE)
      for (int i = 0; i < std::min(total, capacity); ++i)
        world_ranks[i] = s->tombstones[static_cast<std::size_t>(i)];
    if (count != MPI_M_INT_IGNORE) *count = total;
    return MPI_M_SUCCESS;
  });
}

int MPI_M_get_info(MPI_M_msid msid, int* provided, int* array_size) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (provided != MPI_M_INT_IGNORE) *provided = kThreadLevelProvided;
    if (array_size != MPI_M_INT_IGNORE) *array_size = s->comm.size();
    return MPI_M_SUCCESS;
  });
}

int MPI_M_get_data(MPI_M_msid msid, unsigned long* msg_counts,
                   unsigned long* msg_sizes, int flags) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;

    std::vector<unsigned long> row;
    if (msg_counts != MPI_M_DATA_IGNORE) {
      read_metric(*s, flags, 0, row);
      std::copy(row.begin(), row.end(), msg_counts);
    }
    if (msg_sizes != MPI_M_DATA_IGNORE) {
      read_metric(*s, flags, 1, row);
      std::copy(row.begin(), row.end(), msg_sizes);
    }
    return MPI_M_SUCCESS;
  });
}

namespace {

/// Reads the selected traffic classes of BOTH metrics as one interleaved
/// row blob of 2n words: [counts row | sizes row]. Gathering the blob
/// instead of two separate metric rows lets every gather/allgather/flush
/// pay one collective instead of two (docs/PERF.md, "fused gather blob").
void read_row_blob(MonSession& s, int flags,
                   std::vector<unsigned long>& blob) {
  const std::size_t n = static_cast<std::size_t>(s.comm.size());
  blob.assign(2 * n, 0ul);
  std::vector<unsigned long> row;
  read_metric(s, flags, 0, row);
  std::copy(row.begin(), row.end(), blob.begin());
  read_metric(s, flags, 1, row);
  std::copy(row.begin(), row.end(),
            blob.begin() + static_cast<std::ptrdiff_t>(n));
}

/// Splits a gathered rows x 2n blob matrix back into the caller's count
/// and size matrices (either may be MPI_M_DATA_IGNORE). A sentinel-filled
/// blob row lands as sentinel rows in both outputs.
void deinterleave_blob(const std::vector<unsigned long>& fused, std::size_t n,
                       unsigned long* matrix_counts,
                       unsigned long* matrix_sizes) {
  for (std::size_t r = 0; r < n; ++r) {
    const unsigned long* src = fused.data() + r * 2 * n;
    if (matrix_counts != MPI_M_DATA_IGNORE)
      std::copy(src, src + n, matrix_counts + r * n);
    if (matrix_sizes != MPI_M_DATA_IGNORE)
      std::copy(src + n, src + 2 * n, matrix_sizes + r * n);
  }
}

/// Failure-aware variant of gather_rows: a linear gather with a
/// per-contributor receive timeout instead of the tree collectives, so a
/// crashed or stalled rank costs one timeout and a sentinel row instead of
/// a hang. Rows may have any width (the fused blob is 2n wide). Returns
/// the number of missing rows on receiving ranks.
int gather_row_matrix_faulty(MonSession& s,
                             const std::vector<unsigned long>& row, int root,
                             unsigned long* recv) {
  Ctx& ctx = Ctx::current();
  const std::size_t rows = static_cast<std::size_t>(s.comm.size());
  const std::size_t w = row.size();
  const std::size_t row_bytes = w * sizeof(unsigned long);
  const int myrank = s.comm.group_rank_of_world(ctx.world_rank());
  const int groot = root < 0 ? 0 : root;
  const double timeout_s = mon_state().gather_timeout_s;
  // Two tag draws (gather + redistribution) on every rank keep the alive
  // ranks' collective sequence numbers aligned regardless of role.
  const int gather_tag = mpim::mpi::coll::coll_tag(ctx.next_coll_seq(s.comm));
  const int redist_tag = mpim::mpi::coll::coll_tag(ctx.next_coll_seq(s.comm));

  if (myrank == groot) {
    std::vector<unsigned long> matrix(rows * w, 0ul);
    int missing = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      unsigned long* dst = matrix.data() + r * w;
      if (static_cast<int>(r) == groot) {
        std::copy(row.begin(), row.end(), dst);
        continue;
      }
      const int peer_world = s.comm.world_rank_of(static_cast<int>(r));
      // Known-dead contributor with no pre-crash row still in the inbox:
      // skip the wait outright instead of re-entering it. Matching first
      // and advancing to the crash time mirror recv_bytes_wait's own
      // match-then-peer_dead order, so the data gathered and the virtual
      // clock are identical to the un-skipped run -- only the wall-time
      // stall and the counter differ.
      if (ctx.engine().rank_dead(peer_world) &&
          !ctx.iprobe_bytes(peer_world, s.comm, gather_tag, CommKind::tool,
                            nullptr)) {
        ctx.observe_rank_failure(peer_world);
        std::fill(dst, dst + w, MPI_M_DATA_MISSING);
        ++missing;
        tele().add(tele().ids().mon_dead_skips, tele_rank());
        continue;
      }
      mpim::mpi::Status st;
      const Ctx::RecvWait rc =
          ctx.recv_bytes_wait(peer_world, s.comm, gather_tag, CommKind::tool,
                              dst, row_bytes, &st, timeout_s);
      if (rc != Ctx::RecvWait::ok) {
        std::fill(dst, dst + w, MPI_M_DATA_MISSING);
        ++missing;
        tele().add(tele().ids().mon_gather_timeouts, tele_rank());
      }
    }
    if (root < 0) {
      // Redistribute matrix + missing count. Sending to a dead rank is
      // harmless: the message is simply never consumed.
      std::vector<unsigned long> msg(rows * w + 1);
      std::copy(matrix.begin(), matrix.end(), msg.begin());
      msg[rows * w] = static_cast<unsigned long>(missing);
      for (std::size_t r = 0; r < rows; ++r) {
        if (static_cast<int>(r) == groot) continue;
        ctx.send_bytes(s.comm.world_rank_of(static_cast<int>(r)), s.comm,
                       redist_tag, CommKind::tool, msg.data(),
                       msg.size() * sizeof(unsigned long));
      }
    }
    if (recv != nullptr) std::copy(matrix.begin(), matrix.end(), recv);
    return missing;
  }

  const int root_world = s.comm.world_rank_of(groot);
  ctx.send_bytes(root_world, s.comm, gather_tag, CommKind::tool, row.data(),
                 row_bytes);
  if (root >= 0) return 0;
  // Dead gathering rank with no redistributed matrix in flight: every row
  // is lost, but at least do not wait the full budget to learn it.
  if (ctx.engine().rank_dead(root_world) &&
      !ctx.iprobe_bytes(root_world, s.comm, redist_tag, CommKind::tool,
                        nullptr)) {
    ctx.observe_rank_failure(root_world);
    if (recv != nullptr)
      std::fill(recv, recv + rows * w, MPI_M_DATA_MISSING);
    tele().add(tele().ids().mon_dead_skips, tele_rank());
    return static_cast<int>(rows);
  }
  // The gathering rank may spend up to one timeout per missing contributor
  // before our copy of the matrix arrives; budget for all of them.
  std::vector<unsigned long> msg(rows * w + 1);
  mpim::mpi::Status st;
  const Ctx::RecvWait rc = ctx.recv_bytes_wait(
      s.comm.world_rank_of(groot), s.comm, redist_tag, CommKind::tool,
      msg.data(), msg.size() * sizeof(unsigned long), &st,
      timeout_s * static_cast<double>(rows + 1));
  if (rc != Ctx::RecvWait::ok) {
    if (recv != nullptr)
      std::fill(recv, recv + rows * w, MPI_M_DATA_MISSING);
    tele().add(tele().ids().mon_gather_timeouts, tele_rank());
    return static_cast<int>(rows);
  }
  if (recv != nullptr) std::copy(msg.begin(), msg.end() - 1, recv);
  return static_cast<int>(msg[rows * w]);
}

/// Gathers each contributor's row (any width) into a comm-size x width
/// matrix at `root` (or at everyone when root < 0) with exactly ONE
/// collective, wrapped in a "mon.gather" telemetry span per participant so
/// the single-collective contract is observable in span counts. Traffic is
/// independent of the output pointer: a process that ignores the result
/// still contributes its row through scratch space. Returns the number of
/// contributors whose row could not be gathered (always 0 when the engine
/// runs without a fault plan).
int gather_rows(MonSession& s, const std::vector<unsigned long>& row,
                int root, unsigned long* out) {
  Ctx& ctx = Ctx::current();
  const std::size_t rows = static_cast<std::size_t>(s.comm.size());
  const std::size_t w = row.size();
  const double t0 = ctx.now();
  int missing = 0;
  if (ctx.engine().config().fault_plan != nullptr) {
    missing = gather_row_matrix_faulty(s, row, root, out);
  } else {
    std::vector<unsigned long> scratch;
    unsigned long* recv = out;
    const int myrank = s.comm.group_rank_of_world(ctx.world_rank());
    const bool receives = (root < 0) || (myrank == root);
    if (receives && recv == nullptr) {
      scratch.assign(rows * w, 0ul);
      recv = scratch.data();
    }
    if (root < 0) {
      mpim::mpi::coll::allgather(ctx, row.data(), w, Type::UnsignedLong,
                                 recv, s.comm, CommKind::tool);
    } else {
      mpim::mpi::coll::gather(ctx, row.data(), w, Type::UnsignedLong, recv,
                              root, s.comm, CommKind::tool);
    }
  }
  tele().span_complete(tele_rank(), "mon.gather", 'S', t0,
                       Ctx::current().now(), static_cast<std::int64_t>(w),
                       static_cast<std::int64_t>(missing));
  return missing;
}

int gather_data_common(MPI_M_msid msid, int root, unsigned long* matrix_counts,
                       unsigned long* matrix_sizes, int flags) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;
    if (root >= s->comm.size()) return MPI_M_INVALID_ROOT;

    const std::size_t n = static_cast<std::size_t>(s->comm.size());
    std::vector<unsigned long> blob;
    read_row_blob(*s, flags, blob);
    const int myrank =
        s->comm.group_rank_of_world(Ctx::current().world_rank());
    const bool receives = (root < 0) || (myrank == root);
    std::vector<unsigned long> fused(receives ? n * 2 * n : 0, 0ul);
    const int missing =
        gather_rows(*s, blob, root, receives ? fused.data() : nullptr);
    if (receives) deinterleave_blob(fused, n, matrix_counts, matrix_sizes);
    if (missing > 0) {
      tele().add(tele().ids().mon_partial_data, tele_rank());
      return MPI_M_PARTIAL_DATA;
    }
    return MPI_M_SUCCESS;
  });
}

}  // namespace

int MPI_M_set_gather_timeout(double timeout_s) {
  return guarded([&] {
    if (!(timeout_s > 0.0)) return MPI_M_INTERNAL_FAIL;
    mon_state().gather_timeout_s = timeout_s;
    return MPI_M_SUCCESS;
  });
}

double MPI_M_get_gather_timeout() {
  try {
    return mon_state().gather_timeout_s;
  } catch (const mpim::mpi::AbortError&) {
    throw;
  } catch (...) {
    return default_gather_timeout();  // no engine context attached
  }
}

int MPI_M_allgather_data(MPI_M_msid msid, unsigned long* matrix_counts,
                         unsigned long* matrix_sizes, int flags) {
  return gather_data_common(msid, /*root=*/-1, matrix_counts, matrix_sizes,
                            flags);
}

int MPI_M_rootgather_data(MPI_M_msid msid, int root,
                          unsigned long* matrix_counts,
                          unsigned long* matrix_sizes, int flags) {
  if (root < 0) return MPI_M_INVALID_ROOT;
  return gather_data_common(msid, root, matrix_counts, matrix_sizes, flags);
}

namespace {

/// CommKind -> MPI_M kind-filter bit (p2p 0, coll 1, osc 2); -1 for tool.
int kind_bit(CommKind kind) {
  switch (kind) {
    case CommKind::p2p: return 0;
    case CommKind::coll: return 1;
    case CommKind::osc: return 2;
    default: return -1;
  }
}

/// Per-rank frames blob exchanged by MPI_M_get_frames, in unsigned longs:
///   [0]              nwin (<= K)
///   then nwin entries of (1 + 2n) words: window index, counts row, bytes
///   row (dense, kind-filtered). Fixed size 1 + K*(1+2n) so the fault-free
///   path can ride the tree collectives.
std::vector<unsigned long> build_frames_blob(const MonSession& s,
                                             int max_frames, int flags) {
  const std::size_t n = static_cast<std::size_t>(s.comm.size());
  const std::size_t K = static_cast<std::size_t>(max_frames);
  std::vector<unsigned long> blob(1 + K * (1 + 2 * n), 0ul);
  const auto& frames = s.sampler->frames();
  const std::size_t take = std::min(frames.size(), K);
  const std::size_t first = frames.size() - take;
  blob[0] = static_cast<unsigned long>(take);
  for (std::size_t i = 0; i < take; ++i) {
    const mpim::introspect::Frame& f = frames[first + i];
    unsigned long* entry = blob.data() + 1 + i * (1 + 2 * n);
    entry[0] = static_cast<unsigned long>(f.window);
    unsigned long* counts = entry + 1;
    unsigned long* bytes = entry + 1 + n;
    for (const mpim::introspect::FrameCell& cell : f.cells) {
      const auto p = static_cast<std::size_t>(cell.peer);
      for (int k = 0; k < mpim::introspect::kNumKinds; ++k) {
        if (!(flags & (1 << k))) continue;
        counts[p] += cell.counts[k];
        bytes[p] += cell.bytes[k];
      }
    }
  }
  return blob;
}

/// Result blob, in unsigned longs:
///   [0] W (aligned windows, <= K), [1] missing contributors,
///   then W entries of (1 + 2n^2) words: window index, counts matrix,
///   bytes matrix (rows of missing contributors = MPI_M_DATA_MISSING).
std::vector<unsigned long> assemble_frames_result(
    const std::vector<std::vector<unsigned long>>& blobs,
    const std::vector<bool>& missing_rank, int max_frames, std::size_t n) {
  const std::size_t K = static_cast<std::size_t>(max_frames);
  const std::size_t stride = 1 + 2 * n;
  // Union of window indices, ascending; keep the last K.
  std::vector<long> windows;
  for (std::size_t r = 0; r < n; ++r) {
    if (missing_rank[r]) continue;
    const auto& blob = blobs[r];
    const std::size_t nwin = static_cast<std::size_t>(blob[0]);
    for (std::size_t i = 0; i < nwin; ++i)
      windows.push_back(
          static_cast<long>(blob[1 + i * stride]));
  }
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
  if (windows.size() > K)
    windows.erase(windows.begin(),
                  windows.end() - static_cast<std::ptrdiff_t>(K));

  const std::size_t W = windows.size();
  int missing = 0;
  for (std::size_t r = 0; r < n; ++r)
    if (missing_rank[r]) ++missing;

  std::vector<unsigned long> out(2 + K * (1 + 2 * n * n), 0ul);
  out[0] = static_cast<unsigned long>(W);
  out[1] = static_cast<unsigned long>(missing);
  for (std::size_t w = 0; w < W; ++w) {
    unsigned long* entry = out.data() + 2 + w * (1 + 2 * n * n);
    entry[0] = static_cast<unsigned long>(windows[w]);
    unsigned long* counts = entry + 1;
    unsigned long* bytes = entry + 1 + n * n;
    for (std::size_t r = 0; r < n; ++r) {
      unsigned long* crow = counts + r * n;
      unsigned long* brow = bytes + r * n;
      if (missing_rank[r]) {
        std::fill(crow, crow + n, MPI_M_DATA_MISSING);
        std::fill(brow, brow + n, MPI_M_DATA_MISSING);
        continue;
      }
      const auto& blob = blobs[r];
      const std::size_t nwin = static_cast<std::size_t>(blob[0]);
      for (std::size_t i = 0; i < nwin; ++i) {
        const unsigned long* e = blob.data() + 1 + i * stride;
        if (static_cast<long>(e[0]) != windows[w]) continue;
        std::copy(e + 1, e + 1 + n, crow);
        std::copy(e + 1 + n, e + 1 + 2 * n, brow);
        break;
      }
    }
  }
  return out;
}

/// Refreshes the mpim_introspect_* derived-metric gauges of the calling
/// rank from a complete (no missing rows) get_frames result. Host-side
/// analytics only: no virtual time, skipped entirely while telemetry is
/// disabled (the gauges would not record anyway).
void refresh_derived_metrics(const MonSession& s,
                             const std::vector<unsigned long>& result,
                             std::size_t n) {
  mpim::telemetry::Hub& hub = tele();
  if (!hub.enabled()) return;
  const std::size_t W = static_cast<std::size_t>(result[0]);
  if (W == 0) return;
  mpim::CommMatrix cum = mpim::CommMatrix::square(n);
  for (std::size_t w = 0; w < W; ++w) {
    const unsigned long* bytes =
        result.data() + 2 + w * (1 + 2 * n * n) + 1 + n * n;
    for (std::size_t i = 0; i < n * n; ++i) cum.flat()[i] += bytes[i];
  }
  Ctx& ctx = Ctx::current();
  const auto& topo = ctx.engine().topology();
  const auto& world_placement = ctx.engine().config().placement;
  mpim::topo::Placement placement(n);
  for (std::size_t j = 0; j < n; ++j)
    placement[j] = world_placement[static_cast<std::size_t>(
        s.comm.world_rank_of(static_cast<int>(j)))];

  const double imbalance = mpim::introspect::load_imbalance(cum);
  const double neighbor =
      mpim::introspect::neighbor_affinity_fraction(cum, topo, placement);
  const double mismatch =
      mpim::introspect::mismatch_byte_hops(cum, topo, placement);
  const double gain = mpim::introspect::treematch_gain(
      cum, topo, placement, ctx.engine().cost_model());
  const int rank = tele_rank();
  const auto& ids = hub.ids();
  hub.gauge_set(ids.introspect_imbalance_milli, rank,
                std::llround(imbalance * 1000.0));
  hub.gauge_set(ids.introspect_neighbor_milli, rank,
                std::llround(neighbor * 1000.0));
  hub.gauge_set(ids.introspect_mismatch_hops, rank,
                std::llround(mismatch));
  hub.gauge_set(ids.introspect_gain_milli, rank,
                std::llround(gain * 1000.0));
}

/// Failure-aware frames gather: linear gather of the fixed-size blobs
/// with per-contributor timeouts, then a linear redistribution of the
/// assembled result -- the gather_row_matrix_faulty protocol shape.
/// Returns the number of missing contributors.
int gather_frames_faulty(MonSession& s,
                         const std::vector<unsigned long>& blob,
                         int max_frames,
                         std::vector<unsigned long>& result) {
  Ctx& ctx = Ctx::current();
  const std::size_t n = static_cast<std::size_t>(s.comm.size());
  const int myrank = s.comm.group_rank_of_world(ctx.world_rank());
  const double timeout_s = mon_state().gather_timeout_s;
  const int gather_tag =
      mpim::mpi::coll::coll_tag(ctx.next_coll_seq(s.comm));
  const int redist_tag =
      mpim::mpi::coll::coll_tag(ctx.next_coll_seq(s.comm));

  if (myrank == 0) {
    std::vector<std::vector<unsigned long>> blobs(n);
    std::vector<bool> missing_rank(n, false);
    blobs[0] = blob;
    for (std::size_t r = 1; r < n; ++r) {
      blobs[r].assign(blob.size(), 0ul);
      const int peer_world = s.comm.world_rank_of(static_cast<int>(r));
      // Same known-dead skip as gather_row_matrix_faulty: match-first,
      // then crash-time clock advance, so only the wall stall differs.
      if (ctx.engine().rank_dead(peer_world) &&
          !ctx.iprobe_bytes(peer_world, s.comm, gather_tag, CommKind::tool,
                            nullptr)) {
        ctx.observe_rank_failure(peer_world);
        missing_rank[r] = true;
        tele().add(tele().ids().mon_dead_skips, tele_rank());
        continue;
      }
      mpim::mpi::Status st;
      const Ctx::RecvWait rc = ctx.recv_bytes_wait(
          peer_world, s.comm, gather_tag, CommKind::tool, blobs[r].data(),
          blobs[r].size() * sizeof(unsigned long), &st, timeout_s);
      if (rc != Ctx::RecvWait::ok) {
        missing_rank[r] = true;
        tele().add(tele().ids().mon_gather_timeouts, tele_rank());
      }
    }
    result = assemble_frames_result(blobs, missing_rank, max_frames, n);
    for (std::size_t r = 1; r < n; ++r)
      ctx.send_bytes(s.comm.world_rank_of(static_cast<int>(r)), s.comm,
                     redist_tag, CommKind::tool, result.data(),
                     result.size() * sizeof(unsigned long));
    return static_cast<int>(result[1]);
  }

  const int root_world = s.comm.world_rank_of(0);
  ctx.send_bytes(root_world, s.comm, gather_tag, CommKind::tool, blob.data(),
                 blob.size() * sizeof(unsigned long));
  if (ctx.engine().rank_dead(root_world) &&
      !ctx.iprobe_bytes(root_world, s.comm, redist_tag, CommKind::tool,
                        nullptr)) {
    ctx.observe_rank_failure(root_world);
    std::fill(result.begin(), result.end(), MPI_M_DATA_MISSING);
    result[0] = 0;
    result[1] = static_cast<unsigned long>(n);
    tele().add(tele().ids().mon_dead_skips, tele_rank());
    return static_cast<int>(n);
  }
  mpim::mpi::Status st;
  const Ctx::RecvWait rc = ctx.recv_bytes_wait(
      root_world, s.comm, redist_tag, CommKind::tool, result.data(),
      result.size() * sizeof(unsigned long), &st,
      timeout_s * static_cast<double>(n + 1));
  if (rc != Ctx::RecvWait::ok) {
    std::fill(result.begin(), result.end(), MPI_M_DATA_MISSING);
    result[0] = 0;
    result[1] = static_cast<unsigned long>(n);
    tele().add(tele().ids().mon_gather_timeouts, tele_rank());
    return static_cast<int>(n);
  }
  return static_cast<int>(result[1]);
}

}  // namespace

int MPI_M_snapshot_start(MPI_M_msid msid, double window_s, int max_frames,
                         int flags) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->snapshot_running) return MPI_M_MULTIPLE_CALL;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;
    if (!(window_s > 0.0) || max_frames < 1) return MPI_M_INTERNAL_FAIL;

    // Degradation governor: a replaced (stopped) snapshot gives its frame
    // reservation back first, then the new one asks for storage. Under a
    // shed ladder >= 1 the requested window widens x2 -- fewer frames per
    // virtual second. All host-side: virtual clocks never see the budget.
    auto& gov = mpim::mon::Governor::of(Ctx::current().engine());
    if (s->gov_reserved > 0) {
      gov.release(s->gov_reserved);
      s->gov_reserved = 0;
    }
    const double eff_window_s = window_s * gov.window_scale();
    const std::uint64_t frame_bytes =
        sizeof(mpim::introspect::Frame) +
        static_cast<std::uint64_t>(s->comm.size()) *
            sizeof(mpim::introspect::FrameCell);
    const int granted = gov.reserve_frames(tele_rank(), max_frames,
                                           frame_bytes);
    if (granted == 0) return MPI_M_SESSION_OVERFLOW;
    s->gov_reserved = gov.mem_enabled()
                          ? static_cast<std::uint64_t>(granted) * frame_bytes
                          : 0;

    auto sampler = std::make_shared<mpim::introspect::WindowSampler>(
        s->comm.size(), eff_window_s, static_cast<std::size_t>(granted));

    // Telemetry per frame: counters plus a phase span per detected phase.
    // Never charges virtual time; disabled telemetry costs one load.
    mpim::telemetry::Hub* hub = &tele();
    const int rank = tele_rank();
    auto* raw = sampler.get();
    mpim::mpi::Engine* eng = &Ctx::current().engine();
    auto phase_t0 = std::make_shared<double>(-1.0);
    auto dropped_seen = std::make_shared<std::uint64_t>(0);
    sampler->set_frame_callback(
        [hub, rank, raw, eng, phase_t0, dropped_seen](
            const mpim::introspect::Frame& f) {
          hub->add(hub->ids().introspect_frames, rank);
          // Streaming plane: stage the closed frame's totals. The callback
          // may fire on a foreign thread (RMA attribution), which on_frame
          // tolerates (mutexed side queue, not the per-rank rings).
          if (auto* plane = mpim::obsplane::Plane::attached(*eng))
            plane->on_frame(rank, f);
          if (*phase_t0 < 0.0) *phase_t0 = f.t0_s;
          if (f.boundary) {
            hub->add(hub->ids().introspect_boundaries, rank);
            hub->span_complete(rank, "introspect.phase", 'P', *phase_t0,
                               f.t0_s);
            *phase_t0 = f.t0_s;
          }
          const std::uint64_t d = raw->frames_dropped();
          if (d > *dropped_seen) {
            hub->add(hub->ids().introspect_frames_dropped, rank,
                     d - *dropped_seen);
            *dropped_seen = d;
          }
        });

    // The packet observer: filters this session's monitored traffic and
    // feeds the sampler. It may run on a peer's thread (RMA attribution),
    // so it captures only shared state -- never the session table, whose
    // entries the owning thread mutates and whose vector may reallocate.
    // The `live` gate is rechecked under the sampler mutex so a delivery
    // racing snapshot_stop/suspend can never land after their flush.
    auto snap = std::make_shared<MonSession::SnapShared>();
    snap->live.store(s->state == MonSession::St::active,
                     std::memory_order_release);
    const Comm comm = s->comm;
    const int snap_flags = flags;
    runtime().set_session_observer(
        s->tsession,
        [sampler, snap, comm, snap_flags](const mpim::mpi::PktInfo& pkt) {
          if (!snap->live.load(std::memory_order_acquire)) return;
          const int bit = kind_bit(pkt.kind);
          if (bit < 0 || !(snap_flags & (1 << bit))) return;
          if (!comm.contains_world(pkt.src_world)) return;
          const int dst = comm.group_rank_of_world(pkt.dst_world);
          if (dst < 0) return;
          std::lock_guard<std::mutex> lock(snap->mx);
          if (!snap->live.load(std::memory_order_relaxed)) return;
          sampler->record(pkt.send_time_s, dst, bit,
                          static_cast<unsigned long>(pkt.bytes));
        });

    s->sampler = std::move(sampler);
    s->snap = std::move(snap);
    s->snapshot_running = true;
    s->snapshot_flags = flags;
    hub->add(hub->ids().introspect_starts, rank);
    return MPI_M_SUCCESS;
  });
}

int MPI_M_snapshot_stop(MPI_M_msid msid) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (!s->sampler || !s->snapshot_running) return MPI_M_NO_SNAPSHOT;
    s->snap->live.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(s->snap->mx);
      s->sampler->flush(Ctx::current().now());
    }
    s->snapshot_running = false;
    runtime().set_session_observer(s->tsession, nullptr);
    return MPI_M_SUCCESS;
  });
}

int MPI_M_snapshot_info(MPI_M_msid msid, int* nframes, int* frames_dropped,
                        int* phase_boundaries) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!s->sampler) return MPI_M_NO_SNAPSHOT;
    if (nframes != MPI_M_INT_IGNORE)
      *nframes = static_cast<int>(s->sampler->frames().size());
    if (frames_dropped != MPI_M_INT_IGNORE)
      *frames_dropped = static_cast<int>(s->sampler->frames_dropped());
    if (phase_boundaries != MPI_M_INT_IGNORE)
      *phase_boundaries = static_cast<int>(s->sampler->phase_boundaries());
    return MPI_M_SUCCESS;
  });
}

int MPI_M_get_frames(MPI_M_msid msid, int max_frames, int* nframes,
                     double* t0_s, double* t1_s,
                     unsigned long* matrix_counts,
                     unsigned long* matrix_sizes, int flags) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!s->sampler) return MPI_M_NO_SNAPSHOT;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;
    if (max_frames < 1) return MPI_M_INTERNAL_FAIL;

    Ctx& ctx = Ctx::current();
    const std::size_t n = static_cast<std::size_t>(s->comm.size());
    const std::size_t K = static_cast<std::size_t>(max_frames);
    const std::vector<unsigned long> blob =
        build_frames_blob(*s, max_frames, flags);
    std::vector<unsigned long> result(2 + K * (1 + 2 * n * n), 0ul);

    int missing = 0;
    if (ctx.engine().config().fault_plan != nullptr) {
      missing = gather_frames_faulty(*s, blob, max_frames, result);
    } else {
      const int myrank = s->comm.group_rank_of_world(ctx.world_rank());
      std::vector<unsigned long> gathered(myrank == 0 ? n * blob.size() : 0);
      mpim::mpi::coll::gather(ctx, blob.data(), blob.size(),
                              Type::UnsignedLong,
                              myrank == 0 ? gathered.data() : nullptr, 0,
                              s->comm, CommKind::tool);
      if (myrank == 0) {
        std::vector<std::vector<unsigned long>> blobs(n);
        for (std::size_t r = 0; r < n; ++r)
          blobs[r].assign(gathered.begin() +
                              static_cast<std::ptrdiff_t>(r * blob.size()),
                          gathered.begin() +
                              static_cast<std::ptrdiff_t>((r + 1) *
                                                          blob.size()));
        result = assemble_frames_result(
            blobs, std::vector<bool>(n, false), max_frames, n);
      }
      mpim::mpi::coll::bcast(ctx, result.data(),
                             result.size() * sizeof(unsigned long),
                             Type::Byte, 0, s->comm, CommKind::tool);
    }

    const std::size_t W = static_cast<std::size_t>(result[0]);
    const double window_s = s->sampler->window_s();
    if (nframes != MPI_M_INT_IGNORE) *nframes = static_cast<int>(W);
    for (std::size_t w = 0; w < W; ++w) {
      const unsigned long* entry = result.data() + 2 + w * (1 + 2 * n * n);
      const long window = static_cast<long>(entry[0]);
      if (t0_s != nullptr) t0_s[w] = static_cast<double>(window) * window_s;
      if (t1_s != nullptr)
        t1_s[w] = static_cast<double>(window + 1) * window_s;
      if (matrix_counts != MPI_M_DATA_IGNORE)
        std::copy(entry + 1, entry + 1 + n * n, matrix_counts + w * n * n);
      if (matrix_sizes != MPI_M_DATA_IGNORE)
        std::copy(entry + 1 + n * n, entry + 1 + 2 * n * n,
                  matrix_sizes + w * n * n);
    }

    if (missing > 0) {
      tele().add(tele().ids().mon_partial_data, tele_rank());
      return MPI_M_PARTIAL_DATA;
    }
    refresh_derived_metrics(*s, result, n);
    return MPI_M_SUCCESS;
  });
}

int MPI_M_flush(MPI_M_msid msid, const char* filename, int flags) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;
    if (filename == nullptr) return MPI_M_INTERNAL_FAIL;

    const int myrank =
        s->comm.group_rank_of_world(Ctx::current().world_rank());
    std::vector<unsigned long> counts, sizes;
    read_metric(*s, flags, 0, counts);
    read_metric(*s, flags, 1, sizes);

    std::ofstream os(std::string(filename) + "." + std::to_string(myrank) +
                     ".prof");
    if (!os.good()) return MPI_M_INTERNAL_FAIL;
    os << "# MPI_Monitoring profile (per-peer messages sent)\n";
    os << "# rank " << myrank << " of " << s->comm.size() << ", flags "
       << flags_string(flags) << "\n";
    os << "# peer count bytes\n";
    for (std::size_t peer = 0; peer < counts.size(); ++peer)
      os << peer << " " << counts[peer] << " " << sizes[peer] << "\n";
    return os.good() ? MPI_M_SUCCESS : MPI_M_INTERNAL_FAIL;
  });
}

int MPI_M_rootflush(MPI_M_msid msid, int root, const char* filename,
                    int flags) {
  if (root < 0) return MPI_M_INVALID_ROOT;
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;
    if (filename == nullptr) return MPI_M_INTERNAL_FAIL;
    if (root >= s->comm.size()) return MPI_M_INVALID_ROOT;

    Ctx& ctx = Ctx::current();
    const int myrank = s->comm.group_rank_of_world(ctx.world_rank());
    const std::size_t n = static_cast<std::size_t>(s->comm.size());
    std::vector<unsigned long> blob;
    read_row_blob(*s, flags, blob);
    std::vector<unsigned long> fused(myrank == root ? n * 2 * n : 0, 0ul);
    const int missing = gather_rows(*s, blob, root,
                                    myrank == root ? fused.data() : nullptr);
    if (myrank != root) return MPI_M_SUCCESS;
    std::vector<unsigned long> counts(n * n), sizes(n * n);
    deinterleave_blob(fused, n, counts.data(), sizes.data());

    // [rank] in the file names is the root's rank in MPI_COMM_WORLD.
    const std::string world_rank = std::to_string(ctx.world_rank());
    auto write_matrix = [&](const std::string& path,
                            const std::vector<unsigned long>& m) {
      std::ofstream os(path);
      if (!os.good()) return false;
      os << "# MPI_Monitoring matrix, order " << n << ", flags "
         << flags_string(flags) << "\n";
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (j) os << " ";
          os << m[i * n + j];
        }
        os << "\n";
      }
      return os.good();
    };
    const bool ok =
        write_matrix(std::string(filename) + "_counts." + world_rank +
                         ".prof",
                     counts) &&
        write_matrix(std::string(filename) + "_sizes." + world_rank + ".prof",
                     sizes);
    if (!ok) return MPI_M_INTERNAL_FAIL;
    if (missing > 0) {
      tele().add(tele().ids().mon_partial_data, tele_rank());
      return MPI_M_PARTIAL_DATA;
    }
    return MPI_M_SUCCESS;
  });
}

// --- causal critical-path profiler ------------------------------------------

namespace {

/// The engine's attached profiler, or nullptr. Rank thread only.
mpim::critpath::Profiler* crit_profiler() {
  return mpim::critpath::Profiler::attached(Ctx::current().engine());
}

unsigned long clamp_ul(std::uint64_t v) {
  return static_cast<unsigned long>(v);
}

}  // namespace

int MPI_M_critpath_start() {
  return guarded([&] {
    mpim::critpath::Profiler* p = crit_profiler();
    if (p == nullptr) return MPI_M_NO_CRITPATH;
    p->arm(Ctx::current().world_rank(), true);
    return MPI_M_SUCCESS;
  });
}

int MPI_M_critpath_stop() {
  return guarded([&] {
    mpim::critpath::Profiler* p = crit_profiler();
    if (p == nullptr) return MPI_M_NO_CRITPATH;
    p->arm(Ctx::current().world_rank(), false);
    return MPI_M_SUCCESS;
  });
}

int MPI_M_critpath_info(int* events, int* dropped, int* blame_only) {
  return guarded([&] {
    mpim::critpath::Profiler* p = crit_profiler();
    if (p == nullptr) return MPI_M_NO_CRITPATH;
    const auto totals = p->local_totals(Ctx::current().world_rank());
    constexpr std::uint64_t kIntMax =
        static_cast<std::uint64_t>(std::numeric_limits<int>::max());
    if (events != nullptr)
      *events = static_cast<int>(std::min(totals.events, kIntMax));
    if (dropped != nullptr)
      *dropped = static_cast<int>(std::min(totals.dropped, kIntMax));
    if (blame_only != nullptr) *blame_only = p->blame_only() ? 1 : 0;
    return MPI_M_SUCCESS;
  });
}

int MPI_M_critpath_classes(unsigned long* late_sender_ns,
                           unsigned long* late_receiver_ns,
                           unsigned long* wait_collective_ns,
                           unsigned long* root_imbalance_ns) {
  return guarded([&] {
    mpim::critpath::Profiler* p = crit_profiler();
    if (p == nullptr) return MPI_M_NO_CRITPATH;
    const auto totals = p->local_totals(Ctx::current().world_rank());
    using namespace mpim::critpath;
    if (late_sender_ns != nullptr)
      *late_sender_ns = clamp_ul(totals.class_ns[kClassLateSender]);
    if (late_receiver_ns != nullptr)
      *late_receiver_ns = clamp_ul(totals.class_ns[kClassLateReceiver]);
    if (wait_collective_ns != nullptr)
      *wait_collective_ns = clamp_ul(totals.class_ns[kClassWaitCollective]);
    if (root_imbalance_ns != nullptr)
      *root_imbalance_ns = clamp_ul(totals.class_ns[kClassRootImbalance]);
    return MPI_M_SUCCESS;
  });
}

int MPI_M_critpath_waits(unsigned long* wait_ns, int capacity, int* count) {
  if (capacity < 0) return MPI_M_INTERNAL_FAIL;
  return guarded([&] {
    mpim::critpath::Profiler* p = crit_profiler();
    if (p == nullptr) return MPI_M_NO_CRITPATH;
    const auto waits = p->local_waits_by_peer(Ctx::current().world_rank());
    if (count != nullptr) *count = static_cast<int>(waits.size());
    if (wait_ns != nullptr) {
      const std::size_t n =
          std::min(waits.size(), static_cast<std::size_t>(capacity));
      for (std::size_t i = 0; i < n; ++i) wait_ns[i] = clamp_ul(waits[i]);
    }
    return MPI_M_SUCCESS;
  });
}

int MPI_M_critpath_dominant(int* peer, unsigned long* wait_ns) {
  return guarded([&] {
    mpim::critpath::Profiler* p = crit_profiler();
    if (p == nullptr) return MPI_M_NO_CRITPATH;
    int dom = -1;
    std::uint64_t dom_ns = 0;
    p->local_dominant(Ctx::current().world_rank(), &dom, &dom_ns);
    if (peer != nullptr) *peer = dom;
    if (wait_ns != nullptr) *wait_ns = clamp_ul(dom_ns);
    return MPI_M_SUCCESS;
  });
}
