#include "mpimon/mpi_monitoring.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "minimpi/coll.h"
#include "minimpi/engine.h"
#include "mpit/runtime.h"
#include "telemetry/hub.h"

namespace {

using mpim::mpi::Comm;
using mpim::mpi::CommKind;
using mpim::mpi::Ctx;
using mpim::mpi::Type;

constexpr int kThreadLevelProvided = 3;  // MPI_THREAD_MULTIPLE

struct MonSession {
  enum class St { active, suspended, freed };
  St state = St::freed;
  Comm comm;
  int tsession = -1;
  /// mpit handle per pvar index (0..5, see mpit/pvar.cpp).
  std::array<int, 6> handles{};
  /// Virtual time the current active period began (telemetry span).
  double span_start_s = -1.0;
};

mpim::telemetry::Hub& tele() {
  return Ctx::current().engine().telemetry();
}

int tele_rank() { return Ctx::current().world_rank(); }

double default_gather_timeout() {
  if (const char* env = std::getenv("MPIM_GATHER_TIMEOUT_S")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) return v;
  }
  return 5.0;
}

struct MonState {
  bool initialized = false;
  std::vector<MonSession> sessions;
  double gather_timeout_s = default_gather_timeout();
};

MonState& mon_state() {
  Ctx& ctx = Ctx::current();
  auto obj = ctx.engine().get_or_create_tool_object(
      "mpimon:rank:" + std::to_string(ctx.world_rank()),
      [] { return std::make_shared<MonState>(); });
  return *static_cast<MonState*>(obj.get());
}

/// Maps exceptions of the layers below to the paper's error codes. Engine
/// teardown (AbortError) keeps propagating so the failing rank unwinds.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const mpim::mpi::AbortError&) {
    throw;
  } catch (const mpim::mpit::MpitError&) {
    return MPI_M_MPIT_FAIL;
  } catch (const mpim::RankFailedError&) {
    return MPI_M_PARTIAL_DATA;
  } catch (const mpim::TimeoutError&) {
    return MPI_M_PARTIAL_DATA;
  } catch (const std::bad_alloc&) {
    return MPI_M_INTERNAL_FAIL;
  } catch (...) {
    return MPI_M_INTERNAL_FAIL;
  }
}

bool flags_valid(int flags) {
  return flags != 0 && (flags & ~MPI_M_ALL_COMM) == 0;
}

/// msid lookup for single-session operations (ALL_MSID rejected).
int resolve_msid(MonState& st, MPI_M_msid msid, MonSession** out) {
  if (!st.initialized) return MPI_M_MISSING_INIT;
  if (msid == MPI_M_ALL_MSID || msid < 0 ||
      msid >= static_cast<int>(st.sessions.size()))
    return MPI_M_INVALID_MSID;
  MonSession& s = st.sessions[static_cast<std::size_t>(msid)];
  if (s.state == MonSession::St::freed) return MPI_M_INVALID_MSID;
  *out = &s;
  return MPI_M_SUCCESS;
}

mpim::mpit::Runtime& runtime() {
  return mpim::mpit::Runtime::of(Ctx::current().engine());
}

void stop_all_handles(MonSession& s) {
  auto& rt = runtime();
  for (int h : s.handles) rt.handle_stop(s.tsession, h);
}

void start_all_handles(MonSession& s) {
  auto& rt = runtime();
  for (int h : s.handles) rt.handle_start(s.tsession, h);
}

/// Accumulates the selected traffic classes of one metric into `out`
/// (length n). metric 0 = counts, 1 = sizes.
void read_metric(MonSession& s, int flags, int metric,
                 std::vector<unsigned long>& out) {
  auto& rt = runtime();
  const std::size_t n = static_cast<std::size_t>(s.comm.size());
  out.assign(n, 0ul);
  std::vector<unsigned long> tmp(n);
  for (int bit = 0; bit < 3; ++bit) {
    if (!(flags & (1 << bit))) continue;
    const int pvar = 2 * bit + metric;
    rt.handle_read(s.tsession, s.handles[static_cast<std::size_t>(pvar)],
                   tmp.data(), static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i) out[i] += tmp[i];
  }
}

std::string flags_string(int flags) {
  std::string out;
  auto append = [&](const char* name) {
    if (!out.empty()) out += "|";
    out += name;
  };
  if (flags & MPI_M_P2P_ONLY) append("p2p");
  if (flags & MPI_M_COLL_ONLY) append("coll");
  if (flags & MPI_M_OSC_ONLY) append("osc");
  return out;
}

}  // namespace

const char* MPI_M_error_string(int code) {
  switch (code) {
    case MPI_M_SUCCESS: return "MPI_M_SUCCESS";
    case MPI_M_INTERNAL_FAIL: return "MPI_M_INTERNAL_FAIL";
    case MPI_M_MPIT_FAIL: return "MPI_M_MPIT_FAIL";
    case MPI_M_MISSING_INIT: return "MPI_M_MISSING_INIT";
    case MPI_M_SESSION_STILL_ACTIVE: return "MPI_M_SESSION_STILL_ACTIVE";
    case MPI_M_SESSION_NOT_SUSPENDED: return "MPI_M_SESSION_NOT_SUSPENDED";
    case MPI_M_INVALID_MSID: return "MPI_M_INVALID_MSID";
    case MPI_M_SESSION_OVERFLOW: return "MPI_M_SESSION_OVERFLOW";
    case MPI_M_MULTIPLE_CALL: return "MPI_M_MULTIPLE_CALL";
    case MPI_M_INVALID_ROOT: return "MPI_M_INVALID_ROOT";
    case MPI_M_INVALID_FLAGS: return "MPI_M_INVALID_FLAGS";
    case MPI_M_PARTIAL_DATA: return "MPI_M_PARTIAL_DATA";
    default: return "(unknown MPI_M error code)";
  }
}

int MPI_M_init() {
  return guarded([&] {
    runtime();  // throws MpitError when no tool runtime is attached
    MonState& st = mon_state();
    if (st.initialized) return MPI_M_MULTIPLE_CALL;
    st.initialized = true;
    return MPI_M_SUCCESS;
  });
}

int MPI_M_finalize() {
  return guarded([&] {
    MonState& st = mon_state();
    if (!st.initialized) return MPI_M_MISSING_INIT;
    for (const MonSession& s : st.sessions)
      if (s.state == MonSession::St::active)
        return MPI_M_SESSION_STILL_ACTIVE;
    auto& rt = runtime();
    for (MonSession& s : st.sessions) {
      if (s.state == MonSession::St::suspended) {
        rt.session_free(s.tsession);
        s.state = MonSession::St::freed;
      }
    }
    st.sessions.clear();
    st.initialized = false;
    return MPI_M_SUCCESS;
  });
}

int MPI_M_start(Comm comm, MPI_M_msid* msid) {
  return guarded([&] {
    MonState& st = mon_state();
    if (!st.initialized) return MPI_M_MISSING_INIT;
    if (msid == nullptr || comm.is_null()) return MPI_M_INTERNAL_FAIL;
    if (!comm.contains_world(Ctx::current().world_rank()))
      return MPI_M_INTERNAL_FAIL;

    // Reuse the first freed slot; cap the number of live sessions.
    int slot = -1;
    int live = 0;
    for (std::size_t i = 0; i < st.sessions.size(); ++i) {
      if (st.sessions[i].state == MonSession::St::freed) {
        if (slot < 0) slot = static_cast<int>(i);
      } else {
        ++live;
      }
    }
    if (live >= MPI_M_MAX_SESSIONS) return MPI_M_SESSION_OVERFLOW;
    if (slot < 0) {
      st.sessions.emplace_back();
      slot = static_cast<int>(st.sessions.size()) - 1;
    }

    auto& rt = runtime();
    MonSession s;
    s.comm = comm;
    s.tsession = rt.session_create();
    for (int pvar = 0; pvar < 6; ++pvar)
      s.handles[static_cast<std::size_t>(pvar)] =
          rt.handle_alloc(s.tsession, pvar, comm);
    s.state = MonSession::St::active;
    s.span_start_s = Ctx::current().now();
    start_all_handles(s);
    st.sessions[static_cast<std::size_t>(slot)] = s;
    *msid = slot;
    tele().add(tele().ids().mon_session_starts, tele_rank());
    return MPI_M_SUCCESS;
  });
}

namespace {

/// Shared shape of suspend/continue/reset/free: single-session transition
/// with an ALL_MSID broadcast variant that silently skips sessions in a
/// non-applicable state.
template <typename ApplicableFn, typename ApplyFn>
int session_op(MPI_M_msid msid, int wrong_state_error,
               ApplicableFn&& applicable, ApplyFn&& apply) {
  return guarded([&] {
    MonState& st = mon_state();
    if (!st.initialized) return MPI_M_MISSING_INIT;
    if (msid == MPI_M_ALL_MSID) {
      for (MonSession& s : st.sessions)
        if (s.state != MonSession::St::freed && applicable(s)) apply(s);
      return MPI_M_SUCCESS;
    }
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (!applicable(*s)) return wrong_state_error;
    apply(*s);
    return MPI_M_SUCCESS;
  });
}

}  // namespace

int MPI_M_suspend(MPI_M_msid msid) {
  return session_op(
      msid, MPI_M_MULTIPLE_CALL,
      [](const MonSession& s) { return s.state == MonSession::St::active; },
      [](MonSession& s) {
        stop_all_handles(s);
        s.state = MonSession::St::suspended;
        mpim::telemetry::Hub& hub = tele();
        hub.add(hub.ids().mon_session_suspends, tele_rank());
        // Sessions do not nest LIFO with collectives, so the active period
        // is recorded as a closed interval rather than via the span stack.
        if (s.span_start_s >= 0.0)
          hub.span_complete(tele_rank(), "mon.session", 'S', s.span_start_s,
                            Ctx::current().now());
        s.span_start_s = -1.0;
      });
}

int MPI_M_continue(MPI_M_msid msid) {
  return session_op(
      msid, MPI_M_MULTIPLE_CALL,
      [](const MonSession& s) {
        return s.state == MonSession::St::suspended;
      },
      [](MonSession& s) {
        start_all_handles(s);
        s.state = MonSession::St::active;
        s.span_start_s = Ctx::current().now();
      });
}

int MPI_M_reset(MPI_M_msid msid) {
  return session_op(
      msid, MPI_M_SESSION_NOT_SUSPENDED,
      [](const MonSession& s) {
        return s.state == MonSession::St::suspended;
      },
      [](MonSession& s) {
        auto& rt = runtime();
        for (int h : s.handles) rt.handle_reset(s.tsession, h);
        tele().add(tele().ids().mon_session_resets, tele_rank());
      });
}

int MPI_M_free(MPI_M_msid msid) {
  return session_op(
      msid, MPI_M_SESSION_NOT_SUSPENDED,
      [](const MonSession& s) {
        return s.state == MonSession::St::suspended;
      },
      [](MonSession& s) {
        runtime().session_free(s.tsession);
        s.state = MonSession::St::freed;
      });
}

int MPI_M_get_info(MPI_M_msid msid, int* provided, int* array_size) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (provided != MPI_M_INT_IGNORE) *provided = kThreadLevelProvided;
    if (array_size != MPI_M_INT_IGNORE) *array_size = s->comm.size();
    return MPI_M_SUCCESS;
  });
}

int MPI_M_get_data(MPI_M_msid msid, unsigned long* msg_counts,
                   unsigned long* msg_sizes, int flags) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;

    std::vector<unsigned long> row;
    if (msg_counts != MPI_M_DATA_IGNORE) {
      read_metric(*s, flags, 0, row);
      std::copy(row.begin(), row.end(), msg_counts);
    }
    if (msg_sizes != MPI_M_DATA_IGNORE) {
      read_metric(*s, flags, 1, row);
      std::copy(row.begin(), row.end(), msg_sizes);
    }
    return MPI_M_SUCCESS;
  });
}

namespace {

/// Failure-aware variant of gather_metric: a linear gather with a
/// per-contributor receive timeout instead of the tree collectives, so a
/// crashed or stalled rank costs one timeout and a sentinel row instead of
/// a hang. Returns the number of missing rows on receiving ranks.
int gather_row_matrix_faulty(MonSession& s,
                             const std::vector<unsigned long>& row, int root,
                             unsigned long* recv) {
  Ctx& ctx = Ctx::current();
  const std::size_t n = row.size();
  const std::size_t row_bytes = n * sizeof(unsigned long);
  const int myrank = s.comm.group_rank_of_world(ctx.world_rank());
  const int groot = root < 0 ? 0 : root;
  const double timeout_s = mon_state().gather_timeout_s;
  // Two tag draws (gather + redistribution) on every rank keep the alive
  // ranks' collective sequence numbers aligned regardless of role.
  const int gather_tag = mpim::mpi::coll::coll_tag(ctx.next_coll_seq(s.comm));
  const int redist_tag = mpim::mpi::coll::coll_tag(ctx.next_coll_seq(s.comm));

  if (myrank == groot) {
    std::vector<unsigned long> matrix(n * n, 0ul);
    int missing = 0;
    for (std::size_t r = 0; r < n; ++r) {
      unsigned long* dst = matrix.data() + r * n;
      if (static_cast<int>(r) == groot) {
        std::copy(row.begin(), row.end(), dst);
        continue;
      }
      mpim::mpi::Status st;
      const Ctx::RecvWait rc = ctx.recv_bytes_wait(
          s.comm.world_rank_of(static_cast<int>(r)), s.comm, gather_tag,
          CommKind::tool, dst, row_bytes, &st, timeout_s);
      if (rc != Ctx::RecvWait::ok) {
        std::fill(dst, dst + n, MPI_M_DATA_MISSING);
        ++missing;
        tele().add(tele().ids().mon_gather_timeouts, tele_rank());
      }
    }
    if (root < 0) {
      // Redistribute matrix + missing count. Sending to a dead rank is
      // harmless: the message is simply never consumed.
      std::vector<unsigned long> msg(n * n + 1);
      std::copy(matrix.begin(), matrix.end(), msg.begin());
      msg[n * n] = static_cast<unsigned long>(missing);
      for (std::size_t r = 0; r < n; ++r) {
        if (static_cast<int>(r) == groot) continue;
        ctx.send_bytes(s.comm.world_rank_of(static_cast<int>(r)), s.comm,
                       redist_tag, CommKind::tool, msg.data(),
                       msg.size() * sizeof(unsigned long));
      }
    }
    if (recv != nullptr) std::copy(matrix.begin(), matrix.end(), recv);
    return missing;
  }

  ctx.send_bytes(s.comm.world_rank_of(groot), s.comm, gather_tag,
                 CommKind::tool, row.data(), row_bytes);
  if (root >= 0) return 0;
  // The gathering rank may spend up to one timeout per missing contributor
  // before our copy of the matrix arrives; budget for all of them.
  std::vector<unsigned long> msg(n * n + 1);
  mpim::mpi::Status st;
  const Ctx::RecvWait rc = ctx.recv_bytes_wait(
      s.comm.world_rank_of(groot), s.comm, redist_tag, CommKind::tool,
      msg.data(), msg.size() * sizeof(unsigned long), &st,
      timeout_s * static_cast<double>(n + 1));
  if (rc != Ctx::RecvWait::ok) {
    if (recv != nullptr) std::fill(recv, recv + n * n, MPI_M_DATA_MISSING);
    tele().add(tele().ids().mon_gather_timeouts, tele_rank());
    return static_cast<int>(n);
  }
  if (recv != nullptr) std::copy(msg.begin(), msg.end() - 1, recv);
  return static_cast<int>(msg[n * n]);
}

/// Gathers one metric matrix to everyone (root < 0) or to `root`.
/// Traffic independent of the output pointer: a process that ignores the
/// result still contributes its row through scratch space. Returns the
/// number of contributors whose row could not be gathered (always 0 when
/// the engine runs without a fault plan).
int gather_metric(MonSession& s, int flags, int metric, int root,
                  unsigned long* out) {
  Ctx& ctx = Ctx::current();
  const std::size_t n = static_cast<std::size_t>(s.comm.size());
  std::vector<unsigned long> row;
  read_metric(s, flags, metric, row);

  if (ctx.engine().config().fault_plan != nullptr)
    return gather_row_matrix_faulty(s, row, root, out);

  std::vector<unsigned long> scratch;
  unsigned long* recv = out;
  const int myrank = s.comm.group_rank_of_world(ctx.world_rank());
  const bool receives = (root < 0) || (myrank == root);
  if (receives && recv == nullptr) {
    scratch.assign(n * n, 0ul);
    recv = scratch.data();
  }
  if (root < 0) {
    mpim::mpi::coll::allgather(ctx, row.data(), n, Type::UnsignedLong, recv,
                               s.comm, CommKind::tool);
  } else {
    mpim::mpi::coll::gather(ctx, row.data(), n, Type::UnsignedLong, recv,
                            root, s.comm, CommKind::tool);
  }
  return 0;
}

int gather_data_common(MPI_M_msid msid, int root, unsigned long* matrix_counts,
                       unsigned long* matrix_sizes, int flags) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;
    if (root >= s->comm.size()) return MPI_M_INVALID_ROOT;
    int missing = gather_metric(*s, flags, 0, root, matrix_counts);
    missing += gather_metric(*s, flags, 1, root, matrix_sizes);
    if (missing > 0) {
      tele().add(tele().ids().mon_partial_data, tele_rank());
      return MPI_M_PARTIAL_DATA;
    }
    return MPI_M_SUCCESS;
  });
}

}  // namespace

int MPI_M_set_gather_timeout(double timeout_s) {
  return guarded([&] {
    if (!(timeout_s > 0.0)) return MPI_M_INTERNAL_FAIL;
    mon_state().gather_timeout_s = timeout_s;
    return MPI_M_SUCCESS;
  });
}

double MPI_M_get_gather_timeout() {
  try {
    return mon_state().gather_timeout_s;
  } catch (const mpim::mpi::AbortError&) {
    throw;
  } catch (...) {
    return default_gather_timeout();  // no engine context attached
  }
}

int MPI_M_allgather_data(MPI_M_msid msid, unsigned long* matrix_counts,
                         unsigned long* matrix_sizes, int flags) {
  return gather_data_common(msid, /*root=*/-1, matrix_counts, matrix_sizes,
                            flags);
}

int MPI_M_rootgather_data(MPI_M_msid msid, int root,
                          unsigned long* matrix_counts,
                          unsigned long* matrix_sizes, int flags) {
  if (root < 0) return MPI_M_INVALID_ROOT;
  return gather_data_common(msid, root, matrix_counts, matrix_sizes, flags);
}

int MPI_M_flush(MPI_M_msid msid, const char* filename, int flags) {
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;
    if (filename == nullptr) return MPI_M_INTERNAL_FAIL;

    const int myrank =
        s->comm.group_rank_of_world(Ctx::current().world_rank());
    std::vector<unsigned long> counts, sizes;
    read_metric(*s, flags, 0, counts);
    read_metric(*s, flags, 1, sizes);

    std::ofstream os(std::string(filename) + "." + std::to_string(myrank) +
                     ".prof");
    if (!os.good()) return MPI_M_INTERNAL_FAIL;
    os << "# MPI_Monitoring profile (per-peer messages sent)\n";
    os << "# rank " << myrank << " of " << s->comm.size() << ", flags "
       << flags_string(flags) << "\n";
    os << "# peer count bytes\n";
    for (std::size_t peer = 0; peer < counts.size(); ++peer)
      os << peer << " " << counts[peer] << " " << sizes[peer] << "\n";
    return os.good() ? MPI_M_SUCCESS : MPI_M_INTERNAL_FAIL;
  });
}

int MPI_M_rootflush(MPI_M_msid msid, int root, const char* filename,
                    int flags) {
  if (root < 0) return MPI_M_INVALID_ROOT;
  return guarded([&] {
    MonState& st = mon_state();
    MonSession* s = nullptr;
    if (int rc = resolve_msid(st, msid, &s); rc != MPI_M_SUCCESS) return rc;
    if (s->state != MonSession::St::suspended)
      return MPI_M_SESSION_NOT_SUSPENDED;
    if (!flags_valid(flags)) return MPI_M_INVALID_FLAGS;
    if (filename == nullptr) return MPI_M_INTERNAL_FAIL;
    if (root >= s->comm.size()) return MPI_M_INVALID_ROOT;

    Ctx& ctx = Ctx::current();
    const int myrank = s->comm.group_rank_of_world(ctx.world_rank());
    const std::size_t n = static_cast<std::size_t>(s->comm.size());
    std::vector<unsigned long> counts(myrank == root ? n * n : 0);
    std::vector<unsigned long> sizes(myrank == root ? n * n : 0);
    int missing = gather_metric(*s, flags, 0, root,
                                myrank == root ? counts.data() : nullptr);
    missing += gather_metric(*s, flags, 1, root,
                             myrank == root ? sizes.data() : nullptr);
    if (myrank != root) return MPI_M_SUCCESS;

    // [rank] in the file names is the root's rank in MPI_COMM_WORLD.
    const std::string world_rank = std::to_string(ctx.world_rank());
    auto write_matrix = [&](const std::string& path,
                            const std::vector<unsigned long>& m) {
      std::ofstream os(path);
      if (!os.good()) return false;
      os << "# MPI_Monitoring matrix, order " << n << ", flags "
         << flags_string(flags) << "\n";
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (j) os << " ";
          os << m[i * n + j];
        }
        os << "\n";
      }
      return os.good();
    };
    const bool ok =
        write_matrix(std::string(filename) + "_counts." + world_rank +
                         ".prof",
                     counts) &&
        write_matrix(std::string(filename) + "_sizes." + world_rank + ".prof",
                     sizes);
    if (!ok) return MPI_M_INTERNAL_FAIL;
    if (missing > 0) {
      tele().add(tele().ids().mon_partial_data, tele_rank());
      return MPI_M_PARTIAL_DATA;
    }
    return MPI_M_SUCCESS;
  });
}
