// C++ RAII convenience wrapper over the C API.
//
// Not part of the paper's interface, but what a C++ downstream user would
// reach for: a Session that suspends+frees itself on scope exit and returns
// matrices as mpim::CommMatrix values.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "introspect/analyzer.h"
#include "mpimon/mpi_monitoring.h"
#include "support/error.h"
#include "support/matrix.h"

namespace mpim::mon {

namespace detail {

/// The step of the window grid a batch of frames lies on: the smallest
/// positive frame width. Every frame of one snapshot shares the sampler's
/// window_s, but any single frame's `t1 - t0` is reconstructed from two
/// rounded endpoints and can collapse to zero, so the step must be derived
/// across the batch rather than per frame. Returns 0 when no frame has a
/// positive width.
inline double frame_grid_step(const double* t0_s, const double* t1_s,
                              std::size_t nframes) {
  double step = 0.0;
  for (std::size_t w = 0; w < nframes; ++w) {
    const double width = t1_s[w] - t0_s[w];
    if (width > 0.0 && (step == 0.0 || width < step)) step = width;
  }
  return step;
}

/// Index of the window starting at `t0_s` on a grid of `step_s`-wide
/// windows. Guards the degenerate zero-step grid (all windows zero width)
/// by mapping every frame to window 0 instead of dividing by zero.
inline long frame_window_index(double t0_s, double step_s) {
  if (!(step_s > 0.0)) return 0;
  return static_cast<long>(t0_s / step_s + 0.5);
}

}  // namespace detail

/// Throws mpim::Error when an MPI_M_* call does not return MPI_M_SUCCESS.
inline void check_rc(int rc, const char* what) {
  if (rc != MPI_M_SUCCESS)
    fail(std::string(what) + " failed: " + MPI_M_error_string(rc));
}

/// Scoped monitoring environment (MPI_M_init/MPI_M_finalize pair).
class Environment {
 public:
  Environment() { check_rc(MPI_M_init(), "MPI_M_init"); }
  ~Environment() { MPI_M_finalize(); }
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;
};

class Session {
 public:
  /// Creates and starts a session on `comm`.
  explicit Session(const mpi::Comm& comm) : comm_(comm) {
    check_rc(MPI_M_start(comm, &msid_), "MPI_M_start");
    active_ = true;
  }

  ~Session() {
    if (msid_ < 0) return;
    if (active_) MPI_M_suspend(msid_);
    MPI_M_free(msid_);
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&& other) noexcept
      : comm_(other.comm_), msid_(other.msid_), active_(other.active_) {
    other.msid_ = -1;
  }

  MPI_M_msid id() const { return msid_; }
  bool active() const { return active_; }

  void suspend() {
    check_rc(MPI_M_suspend(msid_), "MPI_M_suspend");
    active_ = false;
  }
  void resume() {
    check_rc(MPI_M_continue(msid_), "MPI_M_continue");
    active_ = true;
  }
  void reset() { check_rc(MPI_M_reset(msid_), "MPI_M_reset"); }

  /// Per-peer bytes sent by this process (session must be suspended).
  std::vector<unsigned long> local_sizes(int flags = MPI_M_ALL_COMM) const {
    std::vector<unsigned long> out(array_size());
    check_rc(MPI_M_get_data(msid_, MPI_M_DATA_IGNORE, out.data(), flags),
             "MPI_M_get_data");
    return out;
  }

  std::vector<unsigned long> local_counts(int flags = MPI_M_ALL_COMM) const {
    std::vector<unsigned long> out(array_size());
    check_rc(MPI_M_get_data(msid_, out.data(), MPI_M_DATA_IGNORE, flags),
             "MPI_M_get_data");
    return out;
  }

  /// Full bytes matrix on every rank.
  CommMatrix gather_sizes(int flags = MPI_M_ALL_COMM) const {
    CommMatrix m = CommMatrix::square(array_size());
    check_rc(MPI_M_allgather_data(msid_, MPI_M_DATA_IGNORE, m.data(), flags),
             "MPI_M_allgather_data");
    return m;
  }

  CommMatrix gather_counts(int flags = MPI_M_ALL_COMM) const {
    CommMatrix m = CommMatrix::square(array_size());
    check_rc(MPI_M_allgather_data(msid_, m.data(), MPI_M_DATA_IGNORE, flags),
             "MPI_M_allgather_data");
    return m;
  }

  // --- windowed snapshots ---------------------------------------------------

  void snapshot_start(double window_s, int max_frames,
                      int flags = MPI_M_ALL_COMM) {
    check_rc(MPI_M_snapshot_start(msid_, window_s, max_frames, flags),
             "MPI_M_snapshot_start");
  }
  void snapshot_stop() {
    check_rc(MPI_M_snapshot_stop(msid_), "MPI_M_snapshot_stop");
  }

  struct SnapshotInfo {
    int nframes = 0;
    int frames_dropped = 0;
    int phase_boundaries = 0;
  };
  /// Local snapshot counters (session must be suspended).
  SnapshotInfo snapshot_info() const {
    SnapshotInfo info;
    check_rc(MPI_M_snapshot_info(msid_, &info.nframes, &info.frames_dropped,
                                 &info.phase_boundaries),
             "MPI_M_snapshot_info");
    return info;
  }

  /// Collective: the last (up to) max_frames aligned windows as
  /// introspect-style per-window matrices (session must be suspended).
  /// Throws on MPI_M_PARTIAL_DATA; call MPI_M_get_frames directly to keep
  /// partial matrices under faults.
  std::vector<introspect::FrameMatrix> gather_frames(
      int max_frames, int flags = MPI_M_ALL_COMM) const {
    const std::size_t n = array_size();
    const std::size_t K = static_cast<std::size_t>(max_frames);
    int nframes = 0;
    std::vector<double> t0(K), t1(K);
    std::vector<unsigned long> counts(K * n * n), bytes(K * n * n);
    check_rc(MPI_M_get_frames(msid_, max_frames, &nframes, t0.data(),
                              t1.data(), counts.data(), bytes.data(), flags),
             "MPI_M_get_frames");
    std::vector<introspect::FrameMatrix> frames(
        static_cast<std::size_t>(nframes));
    const double step =
        detail::frame_grid_step(t0.data(), t1.data(), frames.size());
    for (std::size_t w = 0; w < frames.size(); ++w) {
      introspect::FrameMatrix& f = frames[w];
      f.t0_s = t0[w];
      f.t1_s = t1[w];
      f.window = detail::frame_window_index(t0[w], step);
      f.counts = CommMatrix::square(n);
      f.bytes = CommMatrix::square(n);
      std::copy(counts.begin() + static_cast<std::ptrdiff_t>(w * n * n),
                counts.begin() + static_cast<std::ptrdiff_t>((w + 1) * n * n),
                f.counts.flat().begin());
      std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(w * n * n),
                bytes.begin() + static_cast<std::ptrdiff_t>((w + 1) * n * n),
                f.bytes.flat().begin());
    }
    return frames;
  }

  std::size_t array_size() const {
    int n = 0;
    check_rc(MPI_M_get_info(msid_, MPI_M_INT_IGNORE, &n), "MPI_M_get_info");
    return static_cast<std::size_t>(n);
  }

  const mpi::Comm& comm() const { return comm_; }

 private:
  mpi::Comm comm_;
  MPI_M_msid msid_ = -1;
  bool active_ = false;
};

}  // namespace mpim::mon
