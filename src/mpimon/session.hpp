// C++ RAII convenience wrapper over the C API.
//
// Not part of the paper's interface, but what a C++ downstream user would
// reach for: a Session that suspends+frees itself on scope exit and returns
// matrices as mpim::CommMatrix values.
#pragma once

#include <utility>
#include <vector>

#include "mpimon/mpi_monitoring.h"
#include "support/error.h"
#include "support/matrix.h"

namespace mpim::mon {

/// Throws mpim::Error when an MPI_M_* call does not return MPI_M_SUCCESS.
inline void check_rc(int rc, const char* what) {
  if (rc != MPI_M_SUCCESS)
    fail(std::string(what) + " failed: " + MPI_M_error_string(rc));
}

/// Scoped monitoring environment (MPI_M_init/MPI_M_finalize pair).
class Environment {
 public:
  Environment() { check_rc(MPI_M_init(), "MPI_M_init"); }
  ~Environment() { MPI_M_finalize(); }
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;
};

class Session {
 public:
  /// Creates and starts a session on `comm`.
  explicit Session(const mpi::Comm& comm) : comm_(comm) {
    check_rc(MPI_M_start(comm, &msid_), "MPI_M_start");
    active_ = true;
  }

  ~Session() {
    if (msid_ < 0) return;
    if (active_) MPI_M_suspend(msid_);
    MPI_M_free(msid_);
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&& other) noexcept
      : comm_(other.comm_), msid_(other.msid_), active_(other.active_) {
    other.msid_ = -1;
  }

  MPI_M_msid id() const { return msid_; }
  bool active() const { return active_; }

  void suspend() {
    check_rc(MPI_M_suspend(msid_), "MPI_M_suspend");
    active_ = false;
  }
  void resume() {
    check_rc(MPI_M_continue(msid_), "MPI_M_continue");
    active_ = true;
  }
  void reset() { check_rc(MPI_M_reset(msid_), "MPI_M_reset"); }

  /// Per-peer bytes sent by this process (session must be suspended).
  std::vector<unsigned long> local_sizes(int flags = MPI_M_ALL_COMM) const {
    std::vector<unsigned long> out(array_size());
    check_rc(MPI_M_get_data(msid_, MPI_M_DATA_IGNORE, out.data(), flags),
             "MPI_M_get_data");
    return out;
  }

  std::vector<unsigned long> local_counts(int flags = MPI_M_ALL_COMM) const {
    std::vector<unsigned long> out(array_size());
    check_rc(MPI_M_get_data(msid_, out.data(), MPI_M_DATA_IGNORE, flags),
             "MPI_M_get_data");
    return out;
  }

  /// Full bytes matrix on every rank.
  CommMatrix gather_sizes(int flags = MPI_M_ALL_COMM) const {
    CommMatrix m = CommMatrix::square(array_size());
    check_rc(MPI_M_allgather_data(msid_, MPI_M_DATA_IGNORE, m.data(), flags),
             "MPI_M_allgather_data");
    return m;
  }

  CommMatrix gather_counts(int flags = MPI_M_ALL_COMM) const {
    CommMatrix m = CommMatrix::square(array_size());
    check_rc(MPI_M_allgather_data(msid_, m.data(), MPI_M_DATA_IGNORE, flags),
             "MPI_M_allgather_data");
    return m;
  }

  std::size_t array_size() const {
    int n = 0;
    check_rc(MPI_M_get_info(msid_, MPI_M_INT_IGNORE, &n), "MPI_M_get_info");
    return static_cast<std::size_t>(n);
  }

  const mpi::Comm& comm() const { return comm_; }

 private:
  mpi::Comm comm_;
  MPI_M_msid msid_ = -1;
  bool active_ = false;
};

}  // namespace mpim::mon
