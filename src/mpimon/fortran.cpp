#include "mpimon/fortran.h"

#include <memory>
#include <string>
#include <vector>

#include "minimpi/engine.h"
#include "mpimon/mpi_monitoring.h"

namespace {

using mpim::mpi::Comm;
using mpim::mpi::Ctx;

/// Per-rank table of Fortran communicator handles (MPI_Comm_f2c stand-in).
struct FCommTable {
  std::vector<Comm> comms;
};

FCommTable& fcomm_table() {
  Ctx& ctx = Ctx::current();
  auto obj = ctx.engine().get_or_create_tool_object(
      "mpimon:fcomm:" + std::to_string(ctx.world_rank()),
      [] { return std::make_shared<FCommTable>(); });
  return *static_cast<FCommTable*>(obj.get());
}

Comm fcomm_lookup(int handle) {
  FCommTable& table = fcomm_table();
  if (handle < 0 || handle >= static_cast<int>(table.comms.size()))
    return Comm();  // null communicator: the C layer reports the failure
  return table.comms[static_cast<std::size_t>(handle)];
}

std::string fstring(const char* data, int len) {
  // Fortran passes blank-padded, unterminated strings plus a hidden length.
  std::string s(data, static_cast<std::size_t>(len));
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

}  // namespace

extern "C" {

int mpi_m_register_comm_f(const Comm& comm) {
  FCommTable& table = fcomm_table();
  table.comms.push_back(comm);
  return static_cast<int>(table.comms.size()) - 1;
}

void mpi_m_init_(int* ierr) { *ierr = MPI_M_init(); }

void mpi_m_finalize_(int* ierr) { *ierr = MPI_M_finalize(); }

void mpi_m_start_(const int* comm_f, int* msid, int* ierr) {
  *ierr = MPI_M_start(fcomm_lookup(*comm_f), msid);
}

void mpi_m_suspend_(const int* msid, int* ierr) {
  *ierr = MPI_M_suspend(*msid);
}

void mpi_m_continue_(const int* msid, int* ierr) {
  *ierr = MPI_M_continue(*msid);
}

void mpi_m_reset_(const int* msid, int* ierr) { *ierr = MPI_M_reset(*msid); }

void mpi_m_free_(const int* msid, int* ierr) { *ierr = MPI_M_free(*msid); }

void mpi_m_rebind_(const int* msid, const int* newcomm_f, int* ierr) {
  *ierr = MPI_M_rebind(*msid, fcomm_lookup(*newcomm_f));
}

void mpi_m_session_tombstones_(const int* msid, int* world_ranks,
                               const int* capacity, int* count, int* ierr) {
  *ierr = MPI_M_session_tombstones(*msid, world_ranks, *capacity, count);
}

void mpi_m_get_info_(const int* msid, int* provided, int* array_size,
                     int* ierr) {
  *ierr = MPI_M_get_info(*msid, provided, array_size);
}

void mpi_m_get_data_(const int* msid, unsigned long* msg_counts,
                     unsigned long* msg_sizes, const int* flags, int* ierr) {
  *ierr = MPI_M_get_data(*msid, msg_counts, msg_sizes, *flags);
}

void mpi_m_allgather_data_(const int* msid, unsigned long* matrix_counts,
                           unsigned long* matrix_sizes, const int* flags,
                           int* ierr) {
  *ierr = MPI_M_allgather_data(*msid, matrix_counts, matrix_sizes, *flags);
}

void mpi_m_rootgather_data_(const int* msid, const int* root,
                            unsigned long* matrix_counts,
                            unsigned long* matrix_sizes, const int* flags,
                            int* ierr) {
  *ierr = MPI_M_rootgather_data(*msid, *root, matrix_counts, matrix_sizes,
                                *flags);
}

void mpi_m_snapshot_start_(const int* msid, const double* window_s,
                           const int* max_frames, const int* flags,
                           int* ierr) {
  *ierr = MPI_M_snapshot_start(*msid, *window_s, *max_frames, *flags);
}

void mpi_m_snapshot_stop_(const int* msid, int* ierr) {
  *ierr = MPI_M_snapshot_stop(*msid);
}

void mpi_m_snapshot_info_(const int* msid, int* nframes, int* frames_dropped,
                          int* phase_boundaries, int* ierr) {
  *ierr = MPI_M_snapshot_info(*msid, nframes, frames_dropped,
                              phase_boundaries);
}

void mpi_m_get_frames_(const int* msid, const int* max_frames, int* nframes,
                       double* t0_s, double* t1_s,
                       unsigned long* matrix_counts,
                       unsigned long* matrix_sizes, const int* flags,
                       int* ierr) {
  *ierr = MPI_M_get_frames(*msid, *max_frames, nframes, t0_s, t1_s,
                           matrix_counts, matrix_sizes, *flags);
}

void mpi_m_flush_(const int* msid, const char* filename, const int* flags,
                  int* ierr, int filename_len) {
  *ierr = MPI_M_flush(*msid, fstring(filename, filename_len).c_str(), *flags);
}

void mpi_m_rootflush_(const int* msid, const int* root, const char* filename,
                      const int* flags, int* ierr, int filename_len) {
  *ierr = MPI_M_rootflush(*msid, *root,
                          fstring(filename, filename_len).c_str(), *flags);
}

void mpi_m_critpath_start_(int* ierr) { *ierr = MPI_M_critpath_start(); }

void mpi_m_critpath_stop_(int* ierr) { *ierr = MPI_M_critpath_stop(); }

void mpi_m_critpath_info_(int* events, int* dropped, int* blame_only,
                          int* ierr) {
  *ierr = MPI_M_critpath_info(events, dropped, blame_only);
}

void mpi_m_critpath_classes_(unsigned long* late_sender_ns,
                             unsigned long* late_receiver_ns,
                             unsigned long* wait_collective_ns,
                             unsigned long* root_imbalance_ns, int* ierr) {
  *ierr = MPI_M_critpath_classes(late_sender_ns, late_receiver_ns,
                                 wait_collective_ns, root_imbalance_ns);
}

void mpi_m_critpath_waits_(unsigned long* wait_ns, const int* capacity,
                           int* count, int* ierr) {
  *ierr = MPI_M_critpath_waits(wait_ns, *capacity, count);
}

void mpi_m_critpath_dominant_(int* peer, unsigned long* wait_ns, int* ierr) {
  *ierr = MPI_M_critpath_dominant(peer, wait_ns);
}

}  // extern "C"
