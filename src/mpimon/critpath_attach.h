// Governor glue for the causal critical-path profiler.
//
// critpath sits below mpimon in the link order, so it cannot reach the
// degradation governor itself; its Config::reserve seam exists for exactly
// this wiring. attach_critpath fills the seam with the engine's governor
// (Governor::of, interned fresh per run) and attaches the profiler: at
// every run begin the profiler's event-ring reservation goes through the
// governor's shed ladder, a trimmed grant shrinks the rings and a refusal
// switches the profiler to blame-only mode.
#pragma once

#include "critpath/critpath.h"

namespace mpim::mon {

/// Attaches a critical-path profiler to `engine` with cfg.reserve wired to
/// the engine's degradation governor (unless the caller already set it).
/// Call before Engine::run, like critpath::Profiler::attach.
std::shared_ptr<critpath::Profiler> attach_critpath(mpi::Engine& engine,
                                                    critpath::Config cfg = {});

}  // namespace mpim::mon
