// Convenience bundle: engine + tool runtime wired together.
//
// Applications, examples and benchmarks construct a Sim and call run();
// inside the rank function the full stack is available (mpi::* calls, the
// MPI_M_* monitoring API, NIC counters).
#pragma once

#include <functional>

#include "minimpi/api.h"
#include "minimpi/engine.h"
#include "mpit/runtime.h"

namespace mpim {

class Sim {
 public:
  explicit Sim(mpi::EngineConfig cfg)
      : engine_(std::move(cfg)), tool_(engine_) {}

  /// PlaFRIM-like cluster with round-robin placement and `nranks` ranks.
  static Sim plafrim(int nodes, int nranks_or_all = -1) {
    auto cost = net::CostModel::plafrim_like(nodes);
    const int nranks =
        nranks_or_all < 0 ? cost.topology().num_leaves() : nranks_or_all;
    mpi::EngineConfig cfg{
        .cost_model = cost,
        .placement = topo::round_robin_placement(nranks, cost.topology())};
    return Sim(std::move(cfg));
  }

  mpi::Engine& engine() { return engine_; }
  mpit::Runtime& tool() { return tool_; }

  void run(const std::function<void(mpi::Ctx&)>& rank_main) {
    engine_.run(rank_main);
  }

 private:
  mpi::Engine engine_;
  mpit::Runtime tool_;
};

}  // namespace mpim
