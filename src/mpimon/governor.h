// Graceful-degradation governor: per-engine memory and overhead budgets
// for the monitoring plane.
//
// `MPIM_MEM_BUDGET_BYTES` caps the monitoring plane's accounted working
// set (telemetry span rings at their effective capacity + reserved
// snapshot-frame storage). Under pressure the governor sheds fidelity in a
// fixed order before it ever refuses data outright:
//
//   level 1  widen introspect snapshot windows (x2, new snapshots only)
//   level 2  halve the telemetry span-ring effective capacity
//   level 3  widen streaming-plane store windows (x2 epochs per bucket)
//   level 4  drop per-packet/collective span recording entirely
//
// and only past level 4 are frame reservations trimmed or refused. Every
// step is logged, counted in telemetry (mpim_governor_* metrics) and
// exported as pvars.
//
// `MPIM_OVERHEAD_PCT` bounds the *modeled* monitoring overhead (recorded
// events x monitor_event_cost_s, as a percentage of the session's virtual
// span). Violations raise an alarm and trigger the level-1 shed. The
// governor never un-charges virtual cost already modeled: all shedding is
// host-side, so an app's virtual clock is bit-identical with and without a
// budget -- monitoring degrades before it distorts the app.
//
// Concurrency: shed decisions serialize on one mutex; readers are
// lock-free atomics. Shedding is triggered by whichever rank thread hits
// the budget first, so under an active budget the *frame grids* of
// snapshots may vary across reruns -- virtual clocks never do.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

namespace mpim::mpi {
class Engine;
}

namespace mpim::mon {

class Governor {
 public:
  /// The engine's governor, interned as a tool object (fresh per run()).
  static Governor& of(mpi::Engine& engine);

  explicit Governor(mpi::Engine& engine);
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  bool mem_enabled() const { return mem_budget_ > 0; }
  std::uint64_t mem_budget() const { return mem_budget_; }
  /// Monitoring bytes currently accounted against the budget.
  std::uint64_t mem_level() const {
    return level_.load(std::memory_order_relaxed);
  }
  /// Overhead budget in percent; <= 0 when disabled.
  double overhead_budget_pct() const { return overhead_pct_; }

  int shed_level() const { return shed_level_.load(std::memory_order_relaxed); }
  std::uint64_t shed_steps() const {
    return shed_steps_.load(std::memory_order_relaxed);
  }
  std::uint64_t refusals() const {
    return refusals_.load(std::memory_order_relaxed);
  }
  std::uint64_t overhead_alarms() const {
    return overhead_alarms_.load(std::memory_order_relaxed);
  }

  /// Multiplier MPI_M_snapshot_start applies to requested window widths
  /// (level >= 1 widens by 2: fewer frames per virtual second).
  double window_scale() const { return shed_level() >= 1 ? 2.0 : 1.0; }

  /// Reserves frame storage for a snapshot sampler: `want_frames` frames
  /// of `frame_bytes` each. Sheds fidelity as needed, then grants as many
  /// frames as fit (possibly fewer than requested); 0 means the budget is
  /// exhausted even at maximum shedding (counted as a refusal). With no
  /// memory budget configured this is a no-op returning `want_frames`.
  int reserve_frames(int rank, int want_frames, std::uint64_t frame_bytes);

  /// Returns previously reserved bytes to the budget.
  void release(std::uint64_t bytes);

  /// Reports one session's modeled overhead (virtual seconds of monitoring
  /// cost over the session's virtual span). Above MPIM_OVERHEAD_PCT this
  /// raises an alarm and triggers the level-1 shed. Inputs are virtual
  /// times, so alarm decisions are deterministic per rank.
  void report_overhead(int rank, double overhead_s, double span_s);

 private:
  /// Requires mx_ held. Advances the shed ladder one level; false at max.
  bool shed_step_locked(int rank);
  void set_mem_gauge_locked();

  mpi::Engine& engine_;
  std::uint64_t mem_budget_ = 0;
  double overhead_pct_ = 0.0;

  std::mutex mx_;
  std::uint64_t span_accounted_ = 0;  ///< span-ring bytes currently charged
  std::atomic<std::uint64_t> level_{0};
  std::atomic<int> shed_level_{0};
  std::atomic<std::uint64_t> shed_steps_{0};
  std::atomic<std::uint64_t> refusals_{0};
  std::atomic<std::uint64_t> overhead_alarms_{0};
};

}  // namespace mpim::mon
