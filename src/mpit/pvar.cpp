#include "mpit/pvar.h"

#include <array>

namespace mpim::mpit {

namespace {

// Names follow the Open MPI monitoring components (pml_monitoring for
// point-to-point, coll_monitoring and osc_monitoring for the others).
constexpr std::array<PvarInfo, 6> kPvars{{
    {"pml_monitoring_messages_count",
     "number of point-to-point messages sent per peer",
     mpi::CommKind::p2p, false},
    {"pml_monitoring_messages_size",
     "cumulated bytes of point-to-point messages sent per peer",
     mpi::CommKind::p2p, true},
    {"coll_monitoring_messages_count",
     "number of collective-internal messages sent per peer",
     mpi::CommKind::coll, false},
    {"coll_monitoring_messages_size",
     "cumulated bytes of collective-internal messages sent per peer",
     mpi::CommKind::coll, true},
    {"osc_monitoring_messages_count",
     "number of one-sided messages sent per peer",
     mpi::CommKind::osc, false},
    {"osc_monitoring_messages_size",
     "cumulated bytes of one-sided messages sent per peer",
     mpi::CommKind::osc, true},
}};

}  // namespace

int pvar_get_num() { return static_cast<int>(kPvars.size()); }

const PvarInfo& pvar_info(int index) {
  if (index < 0 || index >= pvar_get_num())
    throw MpitError("pvar index out of range");
  return kPvars[static_cast<std::size_t>(index)];
}

int pvar_index_by_name(const std::string& name) {
  for (int i = 0; i < pvar_get_num(); ++i)
    if (name == kPvars[static_cast<std::size_t>(i)].name) return i;
  return -1;
}

}  // namespace mpim::mpit
