#include "mpit/pvar.h"

#include <array>

namespace mpim::mpit {

namespace {

// Names follow the Open MPI monitoring components (pml_monitoring for
// point-to-point, coll_monitoring and osc_monitoring for the others).
// Indices 0..5 are load-bearing: mpimon binds them positionally
// (mpi_monitoring.cpp), so telemetry pvars are strictly appended.
// Telemetry names must match the registry catalog in telemetry/hub.cpp:
// handle_alloc resolves the backing metric by this exact name.
constexpr mpi::CommKind kTele = mpi::CommKind::tool;  // class marker only
constexpr std::array<PvarInfo, 56> kPvars{{
    {"pml_monitoring_messages_count",
     "number of point-to-point messages sent per peer",
     mpi::CommKind::p2p, false, PvarClass::peer_monitoring},
    {"pml_monitoring_messages_size",
     "cumulated bytes of point-to-point messages sent per peer",
     mpi::CommKind::p2p, true, PvarClass::peer_monitoring},
    {"coll_monitoring_messages_count",
     "number of collective-internal messages sent per peer",
     mpi::CommKind::coll, false, PvarClass::peer_monitoring},
    {"coll_monitoring_messages_size",
     "cumulated bytes of collective-internal messages sent per peer",
     mpi::CommKind::coll, true, PvarClass::peer_monitoring},
    {"osc_monitoring_messages_count",
     "number of one-sided messages sent per peer",
     mpi::CommKind::osc, false, PvarClass::peer_monitoring},
    {"osc_monitoring_messages_size",
     "cumulated bytes of one-sided messages sent per peer",
     mpi::CommKind::osc, true, PvarClass::peer_monitoring},
    // --- telemetry re-exports (rank-local scalars), appended PR 2 ---
    {"mpim_engine_messages_total", "messages sent by the calling rank",
     kTele, false, PvarClass::telemetry},
    {"mpim_engine_bytes_total", "payload bytes sent by the calling rank",
     kTele, true, PvarClass::telemetry},
    {"mpim_engine_inbox_depth",
     "deliveries observed by the pending-op depth histogram",
     kTele, false, PvarClass::telemetry},
    {"mpim_engine_match_seconds",
     "receives observed by the match-latency histogram",
     kTele, false, PvarClass::telemetry},
    {"mpim_engine_message_bytes",
     "sends observed by the message-size histogram",
     kTele, false, PvarClass::telemetry},
    {"mpim_fault_retransmits_total", "retransmit attempts (extra sends)",
     kTele, false, PvarClass::telemetry},
    {"mpim_fault_drops_total", "on-wire transmissions dropped",
     kTele, false, PvarClass::telemetry},
    {"mpim_fault_messages_lost_total",
     "messages lost after exhausting retransmits",
     kTele, false, PvarClass::telemetry},
    {"mpim_fault_backoff_ns_total",
     "retransmit backoff charged, virtual ns",
     kTele, true, PvarClass::telemetry},
    {"mpim_fault_stalls_total", "rank stall faults taken",
     kTele, false, PvarClass::telemetry},
    {"mpim_fault_crashes_total", "rank crash faults taken",
     kTele, false, PvarClass::telemetry},
    {"mpim_mon_session_starts_total", "monitoring sessions started",
     kTele, false, PvarClass::telemetry},
    {"mpim_mon_session_suspends_total", "monitoring session suspends",
     kTele, false, PvarClass::telemetry},
    {"mpim_mon_session_resets_total", "monitoring session resets",
     kTele, false, PvarClass::telemetry},
    {"mpim_mon_gather_timeouts_total",
     "gather contributors missing after timeout",
     kTele, false, PvarClass::telemetry},
    {"mpim_mon_partial_data_total", "MPI_M_PARTIAL_DATA returns",
     kTele, false, PvarClass::telemetry},
    {"mpim_reorder_treematch_ns_total", "TreeMatch CPU time, ns",
     kTele, true, PvarClass::telemetry},
    {"mpim_reorder_applied_total", "TreeMatch permutation decisions applied",
     kTele, false, PvarClass::telemetry},
    {"mpim_reorder_identity_fallback_total",
     "identity permutation fallbacks",
     kTele, false, PvarClass::telemetry},
    // --- introspection snapshot analytics, appended PR 3 ---
    {"mpim_introspect_snapshot_starts_total", "MPI_M_snapshot_start calls",
     kTele, false, PvarClass::telemetry},
    {"mpim_introspect_frames_total", "snapshot frames closed",
     kTele, false, PvarClass::telemetry},
    {"mpim_introspect_frames_dropped_total",
     "snapshot frames evicted from the bounded ring",
     kTele, false, PvarClass::telemetry},
    {"mpim_introspect_phase_boundaries_total",
     "communication phase boundaries detected",
     kTele, false, PvarClass::telemetry},
    {"mpim_introspect_load_imbalance_milli",
     "send-byte load imbalance (max/mean) x1000",
     kTele, false, PvarClass::telemetry},
    {"mpim_introspect_neighbor_fraction_milli",
     "fraction of bytes between deepest-level neighbors x1000",
     kTele, false, PvarClass::telemetry},
    {"mpim_introspect_mismatch_byte_hops",
     "topology mismatch cost: bytes x tree hop distance",
     kTele, true, PvarClass::telemetry},
    {"mpim_introspect_treematch_gain_milli",
     "estimated TreeMatch cost reduction x1000",
     kTele, false, PvarClass::telemetry},
    // --- fault recovery + degradation governor, appended PR 6 ---
    {"mpim_mon_rebinds_total",
     "monitoring sessions rebound onto a shrunk communicator",
     kTele, false, PvarClass::telemetry},
    {"mpim_mon_dead_skips_total",
     "gather rows skipped immediately because the contributor is dead",
     kTele, false, PvarClass::telemetry},
    {"mpim_governor_shed_steps_total",
     "degradation governor fidelity-shedding steps taken",
     kTele, false, PvarClass::telemetry},
    {"mpim_governor_refusals_total",
     "monitoring reservations refused at maximum shedding",
     kTele, false, PvarClass::telemetry},
    {"mpim_governor_overhead_alarms_total",
     "sessions whose modeled overhead exceeded MPIM_OVERHEAD_PCT",
     kTele, false, PvarClass::telemetry},
    {"mpim_governor_shed_level",
     "current governor shed level (0 none .. 4 spans dropped)",
     kTele, false, PvarClass::telemetry},
    {"mpim_governor_mem_bytes",
     "monitoring-plane bytes accounted against MPIM_MEM_BUDGET_BYTES",
     kTele, true, PvarClass::telemetry},
    // --- streaming aggregation plane, appended PR 7 ---
    {"mpim_obsplane_events_total",
     "streaming-plane staged events drained into the store",
     kTele, false, PvarClass::telemetry},
    {"mpim_obsplane_drops_total",
     "streaming-plane staged events dropped under back-pressure",
     kTele, false, PvarClass::telemetry},
    {"mpim_obsplane_epochs_total",
     "streaming-plane epoch blocks emitted",
     kTele, false, PvarClass::telemetry},
    {"mpim_obsplane_findings_total",
     "cross-layer correlation findings emitted at run end",
     kTele, false, PvarClass::telemetry},
    {"mpim_obsplane_series",
     "live (rank, metric) series in the plane store",
     kTele, false, PvarClass::telemetry},
    {"mpim_obsplane_mem_bytes",
     "streaming-plane working-set bytes",
     kTele, true, PvarClass::telemetry},
    {"mpim_obsplane_window_merge",
     "epochs merged per store bucket (doubles per governor widen step)",
     kTele, false, PvarClass::telemetry},
    // --- causal critical-path profiler, appended PR 8 ---
    {"mpim_critpath_events_total",
     "happens-before events captured by the critical-path profiler",
     kTele, false, PvarClass::telemetry},
    {"mpim_critpath_events_dropped_total",
     "critpath events evicted from the bounded per-rank ring",
     kTele, false, PvarClass::telemetry},
    {"mpim_critpath_wait_ns_total",
     "classified wait time charged at receive completions, virtual ns",
     kTele, true, PvarClass::telemetry},
    {"mpim_critpath_late_sender_ns_total",
     "late-sender wait time, virtual ns",
     kTele, true, PvarClass::telemetry},
    {"mpim_critpath_late_receiver_ns_total",
     "late-receiver inbox dwell time, virtual ns",
     kTele, true, PvarClass::telemetry},
    {"mpim_critpath_wait_collective_ns_total",
     "wait-at-collective time, virtual ns",
     kTele, true, PvarClass::telemetry},
    {"mpim_critpath_root_imbalance_ns_total",
     "imbalance-at-root wait time, virtual ns",
     kTele, true, PvarClass::telemetry},
    {"mpim_critpath_extractions_total",
     "backward critical-path extractions completed",
     kTele, false, PvarClass::telemetry},
    {"mpim_critpath_blame_only",
     "1 when the governor refused event rings (accumulators only)",
     kTele, false, PvarClass::telemetry},
}};

}  // namespace

int pvar_get_num() { return static_cast<int>(kPvars.size()); }

const PvarInfo& pvar_info(int index) {
  if (index < 0 || index >= pvar_get_num())
    throw MpitError("pvar index out of range");
  return kPvars[static_cast<std::size_t>(index)];
}

int pvar_index_by_name(const std::string& name) {
  for (int i = 0; i < pvar_get_num(); ++i)
    if (name == kPvars[static_cast<std::size_t>(i)].name) return i;
  return -1;
}

}  // namespace mpim::mpit
