// MPI Tool Information Interface (MPI_T) performance-variable registry.
//
// Mirrors the pvars the Open MPI pml/coll/osc monitoring components export
// (Bosilca et al., EuroPar'17): per-peer message counts and cumulated sizes
// for each traffic class. The introspection library (mpimon) is written
// against this interface only -- porting it to another runtime means
// reimplementing this file's backend, which is the portability argument the
// paper closes with.
#pragma once

#include <string>

#include "minimpi/types.h"
#include "support/error.h"

namespace mpim::mpit {

/// Raised on MPI_T-level misuse (bad handle, wrong state...). The mpimon
/// layer maps it to MPI_M_MPIT_FAIL.
class MpitError : public Error {
 public:
  explicit MpitError(const std::string& what) : Error(what) {}
};

/// What backs a pvar. `peer_monitoring` pvars are the original six
/// per-peer message count/size arrays accumulated by the send hook;
/// `telemetry` pvars are rank-local scalars read through from the engine's
/// telemetry registry (src/telemetry/) -- same portable MPI_T front, a
/// different backend.
enum class PvarClass { peer_monitoring, telemetry };

struct PvarInfo {
  const char* name;
  const char* description;
  mpi::CommKind kind;  ///< traffic class this pvar accounts (peer class)
  bool is_size;        ///< false: message count, true: cumulated bytes/ns
  PvarClass klass = PvarClass::peer_monitoring;
};

/// Fixed registry, indexed 0..pvar_get_num()-1. Indices are stable across
/// releases: the original peer-monitoring pvars keep indices 0..5 and new
/// telemetry pvars are only ever appended.
int pvar_get_num();
const PvarInfo& pvar_info(int index);
/// -1 when unknown (MPI_T_ERR_INVALID_NAME equivalent).
int pvar_index_by_name(const std::string& name);

}  // namespace mpim::mpit
