// MPI_T-like tool runtime: pvar sessions and handles.
//
// One Runtime attaches to one Engine. It installs the engine's send hook
// (the pml_monitoring interposition point) and owns, per rank, the pvar
// sessions and the handles bound to communicators. A started handle
// accumulates, per peer of its communicator, the count or cumulated size of
// every message of its traffic class whose *sender* is the owning rank --
// including messages that travelled over a different communicator, as long
// as both endpoints belong to the bound one (the paper's Section 4.1
// even/odd example).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "minimpi/comm.h"
#include "minimpi/engine.h"
#include "mpit/pvar.h"

namespace mpim::mpit {

class Runtime {
 public:
  /// Installs the send hook; must be constructed before Engine::run.
  explicit Runtime(mpi::Engine& engine);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// The runtime attached to an engine; throws MpitError when absent.
  static Runtime& of(mpi::Engine& engine);

  mpi::Engine& engine() { return engine_; }

  // All calls below act on the state of the *calling rank* (Ctx::current())
  // like MPI_T, which is process-local.

  /// MPI_T_pvar_session_create.
  int session_create();
  void session_free(int session);

  /// MPI_T_pvar_handle_alloc: binds pvar `pvar_index` to `comm`; the
  /// value is an array with one slot per communicator peer.
  int handle_alloc(int session, int pvar_index, const mpi::Comm& comm);
  void handle_free(int session, int handle);

  void handle_start(int session, int handle);
  void handle_stop(int session, int handle);
  /// Copies the per-peer values; `capacity` is the element count of `out`.
  /// Returns the number of values written (= comm size).
  int handle_read(int session, int handle, unsigned long* out, int capacity);
  void handle_reset(int session, int handle);

  /// Number of values of a handle (= size of the bound communicator).
  int handle_count(int session, int handle);

  /// Per-event listeners (trace tools): called on the sending thread for
  /// every monitored packet, after the pvar accounting. Install before
  /// Engine::run; listeners cannot be removed (disable inside instead).
  using EventListener = std::function<void(const mpi::PktInfo&)>;
  void add_event_listener(EventListener listener);

  /// Per-session packet observer (the snapshot sampler's hook): called on
  /// the sending thread for every monitored packet of the calling rank
  /// while `session` lives, under the rank mutex. Unlike the pvar handles,
  /// an observation is NOT counted in on_send's record count, so it never
  /// charges the monitoring overhead cost model -- virtual clocks stay
  /// bit-identical with or without an observer. Pass nullptr to detach.
  using PktObserver = std::function<void(const mpi::PktInfo&)>;
  void set_session_observer(int session, PktObserver observer);

 private:
  struct Handle {
    mpi::Comm comm;
    mpi::CommKind kind = mpi::CommKind::p2p;
    bool is_size = false;
    bool started = false;
    bool freed = false;
    /// Telemetry-class pvar: id of the backing registry metric (-1 for the
    /// peer-monitoring pvars). Such a handle has exactly one value -- the
    /// calling rank's merged scalar -- and values[0] holds the reset
    /// baseline subtracted on read.
    int telemetry_metric = -1;
    std::vector<unsigned long> values;
  };
  struct Session {
    bool freed = false;
    std::vector<Handle> handles;
    PktObserver observer;  ///< optional packet observer (never charged)
  };
  struct RankState {
    std::mutex mutex;  ///< guards sessions: recording may come from peers
    std::vector<Session> sessions;
  };

  /// Engine send hook; returns the number of records made (overhead model).
  int on_send(const mpi::PktInfo& pkt);

  Handle& resolve(RankState& rs, int session, int handle);
  RankState& my_rank_state();

  mpi::Engine& engine_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  std::vector<EventListener> listeners_;
};

}  // namespace mpim::mpit
