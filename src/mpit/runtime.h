// MPI_T-like tool runtime: pvar sessions and handles.
//
// One Runtime attaches to one Engine. It installs the engine's send hook
// (the pml_monitoring interposition point) and owns, per rank, the pvar
// sessions and the handles bound to communicators. A started handle
// accumulates, per peer of its communicator, the count or cumulated size of
// every message of its traffic class whose *sender* is the owning rank --
// including messages that travelled over a different communicator, as long
// as both endpoints belong to the bound one (the paper's Section 4.1
// even/odd example).
//
// Recording fast path (see docs/PERF.md). The per-packet side is lock-free:
// control-plane operations compile, per rank, an immutable RecordingPlan --
// flat per-traffic-class entry arrays of {dense world->group table, slot
// pointers, record weight} plus the attached packet observers -- and publish
// it RCU-style with a release store into an atomic pointer. on_send does one
// acquire load, returns on an empty (null) plan, and otherwise walks only
// the entries of the packet's traffic class: one indexed table load, two
// slot increments, no locks, no hash lookups, no virtual calls. Handles that
// bind the same (communicator, class) pair share one accumulator block, so a
// packet costs the same whether one or sixteen overlapping sessions watch
// it; each handle keeps its private view via a bias vector updated at
// start/stop/reset (value = bias + shared accumulator while started).
// Accumulator slots are split into a plain array written only by the owning
// rank's thread and an atomic array for RMA traffic attributed from peer
// threads (the SendHook contract in minimpi/engine.h). Writers rebuild and
// swap under the per-rank control mutex and retire the old plan to a
// graveyard reclaimed at engine-quiescent points (Engine::run start, Runtime
// destruction), the grace period that keeps readers safe without per-packet
// fences.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "minimpi/comm.h"
#include "minimpi/engine.h"
#include "mpit/pvar.h"

namespace mpim::mpit {

class Runtime {
 public:
  /// Installs the send hook; must be constructed before Engine::run.
  explicit Runtime(mpi::Engine& engine);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// The runtime attached to an engine; throws MpitError when absent.
  static Runtime& of(mpi::Engine& engine);

  mpi::Engine& engine() { return engine_; }

  // All calls below act on the state of the *calling rank* (Ctx::current())
  // like MPI_T, which is process-local.

  /// MPI_T_pvar_session_create.
  int session_create();
  void session_free(int session);

  /// MPI_T_pvar_handle_alloc: binds pvar `pvar_index` to `comm`; the
  /// value is an array with one slot per communicator peer.
  int handle_alloc(int session, int pvar_index, const mpi::Comm& comm);
  void handle_free(int session, int handle);

  void handle_start(int session, int handle);
  void handle_stop(int session, int handle);
  /// Copies the per-peer values; `capacity` is the element count of `out`.
  /// Returns the number of values written (= comm size).
  int handle_read(int session, int handle, unsigned long* out, int capacity);
  void handle_reset(int session, int handle);
  /// Overwrites a *stopped* peer-monitoring handle's per-peer values.
  /// The session-rebind seeding primitive: history accumulated on a dying
  /// communicator is carried onto a fresh handle bound to its successor
  /// before the first start. `count` must equal the handle's value count.
  void handle_write(int session, int handle, const unsigned long* values,
                    int count);

  /// Number of values of a handle (= size of the bound communicator).
  int handle_count(int session, int handle);

  /// Per-event listeners (trace tools): called on the sending thread for
  /// every monitored packet, before the pvar accounting and without any
  /// lock (a listener must be thread-safe; RMA attribution may invoke it
  /// from a peer's thread). Install before Engine::run; listeners cannot
  /// be removed (disable inside instead). When none are registered the
  /// per-packet path pays no indirect call at all.
  using EventListener = std::function<void(const mpi::PktInfo&)>;
  void add_event_listener(EventListener listener);

  /// Per-session packet observer (the snapshot sampler's hook): called on
  /// the sending thread for every monitored packet of the calling rank
  /// while `session` lives, serialized under the observer's own mutex (not
  /// the control mutex). Unlike the pvar handles, an observation is NOT
  /// counted in on_send's record count, so it never charges the monitoring
  /// overhead cost model -- virtual clocks stay bit-identical with or
  /// without an observer. Pass nullptr to detach; a peer thread mid-call
  /// through a retired plan may deliver one final observation after the
  /// detach returns (the closure must tolerate that, and the closure's
  /// captures stay alive until the next grace period).
  using PktObserver = std::function<void(const mpi::PktInfo&)>;
  void set_session_observer(int session, PktObserver observer);

 private:
  /// Shared accumulation storage for every handle binding one
  /// (communicator, traffic class) pair of one rank: `group_size` message
  /// counters and as many byte counters, carved out of a single
  /// cache-line-aligned allocation so no two ranks' slots share a line.
  /// The `own_*` half is written only by the owning rank's thread (plain
  /// stores); the `foreign_*` half takes relaxed fetch_adds from peer
  /// threads recording RMA traffic attributed to this rank. A slot's
  /// logical value is the sum of both halves.
  struct AccBlock {
    explicit AccBlock(int group_size);
    ~AccBlock();
    AccBlock(const AccBlock&) = delete;
    AccBlock& operator=(const AccBlock&) = delete;

    unsigned long read(bool is_size, int slot) const {
      const unsigned long own = is_size ? own_sizes[slot] : own_counts[slot];
      const auto& foreign = is_size ? foreign_sizes[slot] : foreign_counts[slot];
      return own + foreign.load(std::memory_order_relaxed);
    }

    int n = 0;
    unsigned long* own_counts = nullptr;
    unsigned long* own_sizes = nullptr;
    std::atomic<unsigned long>* foreign_counts = nullptr;
    std::atomic<unsigned long>* foreign_sizes = nullptr;

   private:
    void* raw_ = nullptr;
  };

  /// An attached packet observer. The slot (not the Runtime) carries the
  /// mutex so a retired plan can still deliver safely from a peer thread
  /// while the control plane swaps in a replacement.
  struct ObserverSlot {
    std::mutex mutex;
    PktObserver fn;
  };

  /// Immutable compiled form of one rank's recording state. Published via
  /// RankState::plan (release store / acquire load); never mutated after
  /// publication. Holds shared_ptr keepalives for everything its raw
  /// pointers reference, so a reader that loaded the plan before a swap
  /// stays safe until the grace-period reclamation.
  struct RecordingPlan {
    struct Entry {
      const int* world_to_group;  ///< dense, world-sized, -1 = non-member
      unsigned long* own_counts;
      unsigned long* own_sizes;
      std::atomic<unsigned long>* foreign_counts;
      std::atomic<unsigned long>* foreign_sizes;
      /// Started handles fused into this entry: the per-packet record
      /// count (and thus the engine's monitoring-overhead charge) is
      /// identical to scanning those handles one by one.
      int weight;
    };
    /// Indexed by CommKind p2p/coll/osc.
    std::array<std::vector<Entry>, 3> by_kind;
    std::vector<std::shared_ptr<ObserverSlot>> observers;
    std::vector<std::shared_ptr<AccBlock>> acc_refs;
    std::vector<mpi::Comm> comm_refs;
  };

  struct Handle {
    mpi::Comm comm;
    mpi::CommKind kind = mpi::CommKind::p2p;
    bool is_size = false;
    bool started = false;
    bool freed = false;
    /// Telemetry-class pvar: id of the backing registry metric (-1 for the
    /// peer-monitoring pvars). Such a handle has exactly one value -- the
    /// calling rank's merged scalar -- and values[0] holds the reset
    /// baseline subtracted on read.
    int telemetry_metric = -1;
    /// Accumulator shared with every other handle on the same
    /// (communicator, class); null for telemetry handles.
    std::shared_ptr<AccBlock> acc;
    /// Telemetry: the reset baseline. Peer-monitoring: the per-peer bias
    /// making the shared accumulator private to this handle -- the value
    /// read out is values[i] (+ acc while started); start subtracts the
    /// accumulator level, stop adds it back, so only traffic inside this
    /// handle's started windows is visible.
    std::vector<unsigned long> values;
  };
  struct Session {
    bool freed = false;
    std::vector<Handle> handles;
    std::shared_ptr<ObserverSlot> observer;  ///< null when none attached
  };
  /// Interning table for accumulator blocks, keyed by communicator
  /// identity + traffic class. Expired entries are pruned on allocation.
  struct AccKey {
    int context_id;
    mpi::CommKind kind;
    std::weak_ptr<AccBlock> block;
  };
  struct RankState {
    int rank = -1;
    std::mutex mutex;  ///< control plane only: the fast path never locks
    std::vector<Session> sessions;
    std::vector<AccKey> acc_registry;
    /// The published plan; null when this rank records nothing. Storage is
    /// owned by plan_owner / retired below, never by readers.
    std::atomic<const RecordingPlan*> plan{nullptr};
    std::unique_ptr<const RecordingPlan> plan_owner;
    /// Retired plans awaiting the grace period (engine quiescence). Plans
    /// are small -- slot storage is shared across versions -- so the
    /// graveyard grows O(control-plane ops) within a run.
    std::vector<std::unique_ptr<const RecordingPlan>> retired;
  };

  /// Engine send hook; returns the number of records made (overhead model).
  /// `caller_world` is the executing thread's rank (== pkt.src_world except
  /// for RMA attribution; see the SendHook contract).
  int on_send(const mpi::PktInfo& pkt, int caller_world);

  /// Recompiles and publishes rs's plan. Caller holds rs.mutex.
  void rebuild_plan(RankState& rs);
  /// Re-derives the engine's hook-armed flag from the nonempty-plan count
  /// and the listener list (serialized so the final state always reflects
  /// the latest transitions).
  void update_armed();
  /// Frees every retired plan; only called when no rank threads run.
  void reclaim_retired();

  std::shared_ptr<AccBlock> intern_acc(RankState& rs, const mpi::Comm& comm,
                                       mpi::CommKind kind);

  Handle& resolve(RankState& rs, int session, int handle);
  RankState& my_rank_state();

  mpi::Engine& engine_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  std::vector<EventListener> listeners_;
  std::atomic<int> nonempty_plans_{0};
  std::mutex armed_mutex_;
};

}  // namespace mpim::mpit
