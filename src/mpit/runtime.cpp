#include "mpit/runtime.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "obsplane/plane.h"

namespace mpim::mpit {

namespace {

constexpr std::size_t kCacheLine = 64;

std::size_t round_to_line(std::size_t bytes) {
  return (bytes + kCacheLine - 1) / kCacheLine * kCacheLine;
}

}  // namespace

Runtime::AccBlock::AccBlock(int group_size) : n(group_size) {
  const auto slots = static_cast<std::size_t>(n);
  static_assert(sizeof(std::atomic<unsigned long>) == sizeof(unsigned long));
  const std::size_t own_bytes = round_to_line(2 * slots * sizeof(unsigned long));
  const std::size_t foreign_bytes =
      round_to_line(2 * slots * sizeof(std::atomic<unsigned long>));
  raw_ = ::operator new(own_bytes + foreign_bytes, std::align_val_t{kCacheLine});
  auto* base = static_cast<std::byte*>(raw_);
  own_counts = reinterpret_cast<unsigned long*>(base);
  own_sizes = own_counts + slots;
  std::memset(base, 0, own_bytes);
  auto* foreign = base + own_bytes;
  foreign_counts = reinterpret_cast<std::atomic<unsigned long>*>(foreign);
  foreign_sizes = foreign_counts + slots;
  for (std::size_t i = 0; i < 2 * slots; ++i)
    new (foreign_counts + i) std::atomic<unsigned long>(0ul);
}

Runtime::AccBlock::~AccBlock() {
  // std::atomic<unsigned long> is trivially destructible.
  ::operator delete(raw_, std::align_val_t{kCacheLine});
}

Runtime::Runtime(mpi::Engine& engine) : engine_(engine) {
  ranks_.reserve(static_cast<std::size_t>(engine.world_size()));
  for (int r = 0; r < engine.world_size(); ++r) {
    ranks_.push_back(std::make_unique<RankState>());
    ranks_.back()->rank = r;
  }
  engine_.set_send_hook([this](const mpi::PktInfo& pkt, int caller_world) {
    return on_send(pkt, caller_world);
  });
  engine_.set_quiescent_hook([this] { reclaim_retired(); });
  engine_.set_tool_runtime(this);
  update_armed();  // nothing to record yet: disarm the per-packet gate
  // Environment-driven streaming plane: a no-op unless MPIM_STREAM_FILE
  // is set, so tool attach cannot perturb existing runs.
  obsplane::Plane::attach_from_env(engine_);
}

Runtime::~Runtime() {
  engine_.set_send_hook(nullptr);
  engine_.set_quiescent_hook(nullptr);
  engine_.set_tool_runtime(nullptr);
  reclaim_retired();
}

Runtime& Runtime::of(mpi::Engine& engine) {
  auto* rt = static_cast<Runtime*>(engine.tool_runtime());
  if (rt == nullptr)
    throw MpitError("no mpit::Runtime attached to this engine");
  return *rt;
}

Runtime::RankState& Runtime::my_rank_state() {
  return *ranks_[static_cast<std::size_t>(mpi::Ctx::current().world_rank())];
}

int Runtime::on_send(const mpi::PktInfo& pkt, int caller_world) {
  if (!listeners_.empty())
    for (const EventListener& listener : listeners_) listener(pkt);
  if (pkt.kind == mpi::CommKind::tool) return 0;
  RankState& rs = *ranks_[static_cast<std::size_t>(pkt.src_world)];
  const RecordingPlan* plan = rs.plan.load(std::memory_order_acquire);
  if (plan == nullptr) return 0;

  int recorded = 0;
  const auto& entries = plan->by_kind[static_cast<std::size_t>(pkt.kind)];
  if (!entries.empty()) {
    // Plain single-writer slots when this is the sender's own thread; the
    // atomic foreign slots when a peer thread attributes RMA traffic here.
    const bool own = caller_world == pkt.src_world;
    const auto bytes = static_cast<unsigned long>(pkt.bytes);
    for (const RecordingPlan::Entry& e : entries) {
      const int dst = e.world_to_group[pkt.dst_world];
      if (dst < 0) continue;
      if (own) {
        e.own_counts[dst] += 1;
        e.own_sizes[dst] += bytes;
      } else {
        e.foreign_counts[dst].fetch_add(1, std::memory_order_relaxed);
        e.foreign_sizes[dst].fetch_add(bytes, std::memory_order_relaxed);
      }
      recorded += e.weight;
    }
  }
  for (const auto& slot : plan->observers) {
    std::lock_guard lock(slot->mutex);
    if (slot->fn) slot->fn(pkt);
  }
  return recorded;
}

void Runtime::rebuild_plan(RankState& rs) {
  auto plan = std::make_unique<RecordingPlan>();
  bool empty = true;
  for (Session& s : rs.sessions) {
    if (s.freed) continue;
    if (s.observer) {
      plan->observers.push_back(s.observer);
      empty = false;
    }
    for (Handle& h : s.handles) {
      if (h.freed || !h.started || h.telemetry_metric >= 0) continue;
      // The sender-membership test moves from the per-packet path to here:
      // this plan belongs to one fixed sender rank.
      if (!h.comm.contains_world(rs.rank)) continue;
      auto& bucket = plan->by_kind[static_cast<std::size_t>(h.kind)];
      auto it = std::find_if(bucket.begin(), bucket.end(),
                             [&](const RecordingPlan::Entry& e) {
                               return e.own_counts == h.acc->own_counts;
                             });
      if (it != bucket.end()) {
        ++it->weight;  // same accumulator: fuse, keep the record count
      } else {
        bucket.push_back({h.comm.world_to_group_table().data(),
                          h.acc->own_counts, h.acc->own_sizes,
                          h.acc->foreign_counts, h.acc->foreign_sizes, 1});
        plan->acc_refs.push_back(h.acc);
        plan->comm_refs.push_back(h.comm);
        empty = false;
      }
    }
  }

  const RecordingPlan* prev = rs.plan.load(std::memory_order_relaxed);
  const RecordingPlan* next = empty ? nullptr : plan.get();
  rs.plan.store(next, std::memory_order_release);
  if (rs.plan_owner) rs.retired.push_back(std::move(rs.plan_owner));
  if (!empty) rs.plan_owner = std::move(plan);
  if ((prev != nullptr) != (next != nullptr))
    nonempty_plans_.fetch_add(next != nullptr ? 1 : -1,
                              std::memory_order_relaxed);
  update_armed();
}

void Runtime::update_armed() {
  // Serialized so the last transition always wins: each caller updates the
  // plan count (or listener list) first, then recomputes under the lock.
  std::lock_guard lock(armed_mutex_);
  engine_.set_send_hook_armed(
      !listeners_.empty() ||
      nonempty_plans_.load(std::memory_order_relaxed) > 0);
}

void Runtime::reclaim_retired() {
  for (auto& rs : ranks_) {
    std::lock_guard lock(rs->mutex);
    rs->retired.clear();
  }
}

std::shared_ptr<Runtime::AccBlock> Runtime::intern_acc(RankState& rs,
                                                       const mpi::Comm& comm,
                                                       mpi::CommKind kind) {
  std::shared_ptr<AccBlock> found;
  std::erase_if(rs.acc_registry, [&](AccKey& key) {
    auto live = key.block.lock();
    if (!live) return true;  // prune: every handle on it is gone
    if (!found && key.context_id == comm.context_id() && key.kind == kind)
      found = std::move(live);
    return false;
  });
  if (found) return found;
  auto block = std::make_shared<AccBlock>(comm.size());
  rs.acc_registry.push_back({comm.context_id(), kind, block});
  return block;
}

int Runtime::session_create() {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  rs.sessions.emplace_back();
  return static_cast<int>(rs.sessions.size()) - 1;
}

void Runtime::session_free(int session) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  if (session < 0 || session >= static_cast<int>(rs.sessions.size()) ||
      rs.sessions[static_cast<std::size_t>(session)].freed)
    throw MpitError("invalid pvar session");
  auto& s = rs.sessions[static_cast<std::size_t>(session)];
  s.freed = true;
  s.handles.clear();
  s.observer = nullptr;
  rebuild_plan(rs);
}

void Runtime::set_session_observer(int session, PktObserver observer) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  if (session < 0 || session >= static_cast<int>(rs.sessions.size()) ||
      rs.sessions[static_cast<std::size_t>(session)].freed)
    throw MpitError("invalid pvar session");
  auto& s = rs.sessions[static_cast<std::size_t>(session)];
  if (observer) {
    auto slot = std::make_shared<ObserverSlot>();
    slot->fn = std::move(observer);
    s.observer = std::move(slot);
  } else {
    s.observer = nullptr;
  }
  rebuild_plan(rs);
}

Runtime::Handle& Runtime::resolve(RankState& rs, int session, int handle) {
  if (session < 0 || session >= static_cast<int>(rs.sessions.size()))
    throw MpitError("invalid pvar session");
  Session& s = rs.sessions[static_cast<std::size_t>(session)];
  if (s.freed) throw MpitError("pvar session already freed");
  if (handle < 0 || handle >= static_cast<int>(s.handles.size()))
    throw MpitError("invalid pvar handle");
  Handle& h = s.handles[static_cast<std::size_t>(handle)];
  if (h.freed) throw MpitError("pvar handle already freed");
  return h;
}

int Runtime::handle_alloc(int session, int pvar_index, const mpi::Comm& comm) {
  const PvarInfo& info = pvar_info(pvar_index);
  if (comm.is_null()) throw MpitError("handle_alloc on null communicator");
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  if (session < 0 || session >= static_cast<int>(rs.sessions.size()) ||
      rs.sessions[static_cast<std::size_t>(session)].freed)
    throw MpitError("invalid pvar session");
  Session& s = rs.sessions[static_cast<std::size_t>(session)];
  Handle h;
  h.comm = comm;
  h.kind = info.kind;
  h.is_size = info.is_size;
  if (info.klass == PvarClass::telemetry) {
    h.telemetry_metric = engine_.telemetry().registry().find(info.name);
    if (h.telemetry_metric < 0)
      throw MpitError(std::string("telemetry pvar has no backing metric: ") +
                      info.name);
    h.values.assign(1, 0ul);  // [0] = reset baseline
  } else {
    h.acc = intern_acc(rs, comm, info.kind);
    h.values.assign(static_cast<std::size_t>(comm.size()), 0ul);
  }
  s.handles.push_back(std::move(h));
  return static_cast<int>(s.handles.size()) - 1;
}

void Runtime::handle_free(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  const bool was_recording = h.started && h.telemetry_metric < 0;
  h.freed = true;
  h.acc.reset();
  h.values.clear();
  h.values.shrink_to_fit();
  if (was_recording) rebuild_plan(rs);
}

void Runtime::handle_start(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  if (h.started) throw MpitError("pvar handle already started");
  h.started = true;
  if (h.telemetry_metric >= 0) return;  // never in a plan
  // Bias out the accumulator level so only traffic from now on is visible.
  for (std::size_t d = 0; d < h.values.size(); ++d)
    h.values[d] -= h.acc->read(h.is_size, static_cast<int>(d));
  rebuild_plan(rs);
}

void Runtime::handle_stop(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  if (!h.started) throw MpitError("pvar handle not started");
  h.started = false;
  if (h.telemetry_metric >= 0) return;
  // Freeze the started window into the bias; the value no longer follows
  // the shared accumulator.
  for (std::size_t d = 0; d < h.values.size(); ++d)
    h.values[d] += h.acc->read(h.is_size, static_cast<int>(d));
  rebuild_plan(rs);
}

int Runtime::handle_read(int session, int handle, unsigned long* out,
                         int capacity) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  const int n = static_cast<int>(h.values.size());
  if (out != nullptr) {
    if (capacity < n) throw MpitError("pvar read buffer too small");
    if (h.telemetry_metric >= 0) {
      // Read-through: the registry is the backend, MPI_T the front.
      const auto live = static_cast<unsigned long>(
          engine_.telemetry().registry().scalar_value(
              h.telemetry_metric, mpi::Ctx::current().world_rank()));
      out[0] = live - h.values[0];
    } else {
      for (int d = 0; d < n; ++d)
        out[d] = h.values[static_cast<std::size_t>(d)] +
                 (h.started ? h.acc->read(h.is_size, d) : 0ul);
    }
  }
  return n;
}

void Runtime::handle_reset(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  if (h.telemetry_metric >= 0) {
    // The backing metric is shared; reset moves this handle's baseline.
    h.values[0] = static_cast<unsigned long>(
        engine_.telemetry().registry().scalar_value(
            h.telemetry_metric, mpi::Ctx::current().world_rank()));
    return;
  }
  for (std::size_t d = 0; d < h.values.size(); ++d)
    h.values[d] =
        h.started ? 0ul - h.acc->read(h.is_size, static_cast<int>(d)) : 0ul;
}

void Runtime::handle_write(int session, int handle,
                           const unsigned long* values, int count) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  if (h.telemetry_metric >= 0)
    throw MpitError("pvar handle_write: telemetry handles are read-only");
  if (h.started)
    throw MpitError("pvar handle_write requires a stopped handle");
  if (count != static_cast<int>(h.values.size()))
    throw MpitError("pvar handle_write value count mismatch");
  // A stopped handle's value IS its bias, so seeding is a plain copy; no
  // plan rebuild (stopped handles are not in the published plan).
  for (int d = 0; d < count; ++d)
    h.values[static_cast<std::size_t>(d)] =
        values[static_cast<std::size_t>(d)];
}

void Runtime::add_event_listener(EventListener listener) {
  listeners_.push_back(std::move(listener));
  update_armed();  // listeners record even when every plan is empty
}

int Runtime::handle_count(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  return static_cast<int>(resolve(rs, session, handle).values.size());
}

}  // namespace mpim::mpit
