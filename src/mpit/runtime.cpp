#include "mpit/runtime.h"

#include <algorithm>

namespace mpim::mpit {

Runtime::Runtime(mpi::Engine& engine) : engine_(engine) {
  ranks_.reserve(static_cast<std::size_t>(engine.world_size()));
  for (int r = 0; r < engine.world_size(); ++r)
    ranks_.push_back(std::make_unique<RankState>());
  engine_.set_send_hook(
      [this](const mpi::PktInfo& pkt) { return on_send(pkt); });
  engine_.set_tool_runtime(this);
}

Runtime::~Runtime() {
  engine_.set_send_hook(nullptr);
  engine_.set_tool_runtime(nullptr);
}

Runtime& Runtime::of(mpi::Engine& engine) {
  auto* rt = static_cast<Runtime*>(engine.tool_runtime());
  if (rt == nullptr)
    throw MpitError("no mpit::Runtime attached to this engine");
  return *rt;
}

Runtime::RankState& Runtime::my_rank_state() {
  return *ranks_[static_cast<std::size_t>(mpi::Ctx::current().world_rank())];
}

int Runtime::on_send(const mpi::PktInfo& pkt) {
  for (const EventListener& listener : listeners_) listener(pkt);
  RankState& rs = *ranks_[static_cast<std::size_t>(pkt.src_world)];
  std::lock_guard lock(rs.mutex);
  int recorded = 0;
  for (Session& session : rs.sessions) {
    if (session.freed) continue;
    if (session.observer) session.observer(pkt);
    for (Handle& handle : session.handles) {
      if (handle.freed || !handle.started || handle.kind != pkt.kind ||
          handle.telemetry_metric >= 0)
        continue;
      const int dst = handle.comm.group_rank_of_world(pkt.dst_world);
      if (dst < 0 || !handle.comm.contains_world(pkt.src_world)) continue;
      handle.values[static_cast<std::size_t>(dst)] +=
          handle.is_size ? static_cast<unsigned long>(pkt.bytes) : 1ul;
      ++recorded;
    }
  }
  return recorded;
}

int Runtime::session_create() {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  rs.sessions.emplace_back();
  return static_cast<int>(rs.sessions.size()) - 1;
}

void Runtime::session_free(int session) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  if (session < 0 || session >= static_cast<int>(rs.sessions.size()) ||
      rs.sessions[static_cast<std::size_t>(session)].freed)
    throw MpitError("invalid pvar session");
  auto& s = rs.sessions[static_cast<std::size_t>(session)];
  s.freed = true;
  s.handles.clear();
  s.observer = nullptr;
}

void Runtime::set_session_observer(int session, PktObserver observer) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  if (session < 0 || session >= static_cast<int>(rs.sessions.size()) ||
      rs.sessions[static_cast<std::size_t>(session)].freed)
    throw MpitError("invalid pvar session");
  rs.sessions[static_cast<std::size_t>(session)].observer =
      std::move(observer);
}

Runtime::Handle& Runtime::resolve(RankState& rs, int session, int handle) {
  if (session < 0 || session >= static_cast<int>(rs.sessions.size()))
    throw MpitError("invalid pvar session");
  Session& s = rs.sessions[static_cast<std::size_t>(session)];
  if (s.freed) throw MpitError("pvar session already freed");
  if (handle < 0 || handle >= static_cast<int>(s.handles.size()))
    throw MpitError("invalid pvar handle");
  Handle& h = s.handles[static_cast<std::size_t>(handle)];
  if (h.freed) throw MpitError("pvar handle already freed");
  return h;
}

int Runtime::handle_alloc(int session, int pvar_index, const mpi::Comm& comm) {
  const PvarInfo& info = pvar_info(pvar_index);
  if (comm.is_null()) throw MpitError("handle_alloc on null communicator");
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  if (session < 0 || session >= static_cast<int>(rs.sessions.size()) ||
      rs.sessions[static_cast<std::size_t>(session)].freed)
    throw MpitError("invalid pvar session");
  Session& s = rs.sessions[static_cast<std::size_t>(session)];
  Handle h;
  h.comm = comm;
  h.kind = info.kind;
  h.is_size = info.is_size;
  if (info.klass == PvarClass::telemetry) {
    h.telemetry_metric = engine_.telemetry().registry().find(info.name);
    if (h.telemetry_metric < 0)
      throw MpitError(std::string("telemetry pvar has no backing metric: ") +
                      info.name);
    h.values.assign(1, 0ul);  // [0] = reset baseline
  } else {
    h.values.assign(static_cast<std::size_t>(comm.size()), 0ul);
  }
  s.handles.push_back(std::move(h));
  return static_cast<int>(s.handles.size()) - 1;
}

void Runtime::handle_free(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  h.freed = true;
  h.values.clear();
  h.values.shrink_to_fit();
}

void Runtime::handle_start(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  if (h.started) throw MpitError("pvar handle already started");
  h.started = true;
}

void Runtime::handle_stop(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  if (!h.started) throw MpitError("pvar handle not started");
  h.started = false;
}

int Runtime::handle_read(int session, int handle, unsigned long* out,
                         int capacity) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  const int n = static_cast<int>(h.values.size());
  if (out != nullptr) {
    if (capacity < n) throw MpitError("pvar read buffer too small");
    if (h.telemetry_metric >= 0) {
      // Read-through: the registry is the backend, MPI_T the front.
      const auto live = static_cast<unsigned long>(
          engine_.telemetry().registry().scalar_value(
              h.telemetry_metric, mpi::Ctx::current().world_rank()));
      out[0] = live - h.values[0];
    } else {
      std::copy(h.values.begin(), h.values.end(), out);
    }
  }
  return n;
}

void Runtime::handle_reset(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  Handle& h = resolve(rs, session, handle);
  if (h.telemetry_metric >= 0) {
    // The backing metric is shared; reset moves this handle's baseline.
    h.values[0] = static_cast<unsigned long>(
        engine_.telemetry().registry().scalar_value(
            h.telemetry_metric, mpi::Ctx::current().world_rank()));
    return;
  }
  std::fill(h.values.begin(), h.values.end(), 0ul);
}

void Runtime::add_event_listener(EventListener listener) {
  listeners_.push_back(std::move(listener));
}

int Runtime::handle_count(int session, int handle) {
  RankState& rs = my_rank_state();
  std::lock_guard lock(rs.mutex);
  return static_cast<int>(resolve(rs, session, handle).values.size());
}

}  // namespace mpim::mpit
