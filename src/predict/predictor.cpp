#include "predict/predictor.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace mpim::predict {

UsagePredictor::UsagePredictor(PredictorConfig cfg) : cfg_(cfg) {
  check(cfg_.window >= 4, "predictor window too small");
  check(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0,
        "ewma_alpha in (0,1]");
  check(cfg_.min_period >= 1 && cfg_.min_period < cfg_.max_period,
        "bad period search range");
}

void UsagePredictor::add_sample(double bytes) {
  check(bytes >= 0.0, "negative traffic sample");
  ewma_ = (total_samples_ == 0)
              ? bytes
              : cfg_.ewma_alpha * bytes + (1.0 - cfg_.ewma_alpha) * ewma_;
  window_.push_back(bytes);
  if (window_.size() > cfg_.window) window_.pop_front();
  ++total_samples_;
}

double UsagePredictor::last_sample() const {
  check(!window_.empty(), "no samples yet");
  return window_.back();
}

double UsagePredictor::window_mean() const {
  if (window_.empty()) return 0.0;
  double acc = 0.0;
  for (double v : window_) acc += v;
  return acc / static_cast<double>(window_.size());
}

double UsagePredictor::window_stddev() const {
  if (window_.size() < 2) return 0.0;
  const double m = window_mean();
  double acc = 0.0;
  for (double v : window_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(window_.size()));
}

double UsagePredictor::trend_slope() const {
  const std::size_t n = window_.size();
  if (n < 2) return 0.0;
  // Least squares of value against sample index 0..n-1.
  const double mean_x = static_cast<double>(n - 1) / 2.0;
  const double mean_y = window_mean();
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - mean_x;
    sxy += dx * (window_[i] - mean_y);
    sxx += dx * dx;
  }
  return sxx == 0.0 ? 0.0 : sxy / sxx;
}

double UsagePredictor::autocorrelation(std::size_t lag) const {
  const std::size_t n = window_.size();
  if (lag == 0 || lag >= n) return 0.0;
  const double mean = window_mean();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = window_[i] - mean;
    den += d * d;
    if (i + lag < n) num += d * (window_[i + lag] - mean);
  }
  return den == 0.0 ? 0.0 : num / den;
}

std::optional<std::size_t> UsagePredictor::detected_period() const {
  const std::size_t n = window_.size();
  if (n < 3 * cfg_.min_period) return std::nullopt;
  const std::size_t hi = std::min(cfg_.max_period, n / 2);
  double best_corr = 0.0;
  std::size_t best_lag = 0;
  for (std::size_t lag = cfg_.min_period; lag <= hi; ++lag) {
    const double corr = autocorrelation(lag);
    if (corr > best_corr) {
      best_corr = corr;
      best_lag = lag;
    }
  }
  if (best_lag == 0 || best_corr < cfg_.period_confidence)
    return std::nullopt;
  return best_lag;
}

double UsagePredictor::predict_next() const {
  if (window_.empty()) return 0.0;
  if (const auto period = detected_period()) {
    // One full period ago is the best estimate of "the same phase next".
    const std::size_t n = window_.size();
    if (*period <= n) return window_[n - *period];
  }
  return std::max(0.0, ewma_ + trend_slope());
}

bool UsagePredictor::underutilized_next(double fraction) const {
  if (window_.empty()) return true;
  const double peak = *std::max_element(window_.begin(), window_.end());
  if (peak == 0.0) return true;
  return predict_next() < fraction * peak;
}

}  // namespace mpim::predict
