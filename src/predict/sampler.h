// Bridges monitoring sessions to the predictor: periodic read-and-reset
// sampling of a rank's outgoing traffic, the pattern of the paper's
// Section 6.1 sampler packaged as a reusable component.
#pragma once

#include <cstdint>

#include "minimpi/comm.h"
#include "mpimon/mpi_monitoring.h"

namespace mpim::predict {

class TrafficSampler {
 public:
  /// Starts a monitoring session on `comm` (per-rank local state; create
  /// on every rank that samples). `flags` selects the traffic classes.
  explicit TrafficSampler(const mpi::Comm& comm, int flags = MPI_M_ALL_COMM);
  ~TrafficSampler();

  TrafficSampler(const TrafficSampler&) = delete;
  TrafficSampler& operator=(const TrafficSampler&) = delete;

  /// Bytes this rank sent (to peers inside the session communicator) since
  /// the previous sample() call; uses the session's reset feature.
  std::uint64_t sample();

 private:
  mpi::Comm comm_;
  MPI_M_msid msid_ = -1;
  int flags_;
};

}  // namespace mpim::predict
