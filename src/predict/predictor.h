// Network-usage prediction from introspection samples.
//
// Section 7 of the paper points to a follow-up use of the library
// (Tseng et al., EuroPar'19): sample the monitored traffic periodically
// and predict near-future network utilization, e.g. to schedule
// checkpoint transfers into under-utilized windows. This module implements
// that idea with transparent, deterministic estimators instead of an
// opaque learned model:
//   * an exponentially weighted moving average (short-horizon level),
//   * a least-squares trend over a sliding window,
//   * an autocorrelation-based period detector (iterative MPI applications
//     produce near-periodic traffic), which, when confident, predicts the
//     next sample from one period ago.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

namespace mpim::predict {

struct PredictorConfig {
  std::size_t window = 256;     ///< sliding window length (samples)
  double ewma_alpha = 0.25;     ///< EWMA smoothing factor
  std::size_t min_period = 2;   ///< search range for the period detector
  std::size_t max_period = 64;
  /// Autocorrelation needed before the periodic predictor takes over.
  double period_confidence = 0.6;
};

class UsagePredictor {
 public:
  explicit UsagePredictor(PredictorConfig cfg = {});

  /// Feed the traffic volume of one sampling interval (bytes).
  void add_sample(double bytes);

  std::size_t sample_count() const { return total_samples_; }
  double last_sample() const;
  double ewma() const { return ewma_; }

  /// Mean and (population) standard deviation over the current window.
  double window_mean() const;
  double window_stddev() const;

  /// Least-squares slope over the window (bytes per interval²).
  double trend_slope() const;

  /// Detected dominant period in samples, if the autocorrelation at that
  /// lag exceeds the confidence threshold.
  std::optional<std::size_t> detected_period() const;

  /// Predicted volume of the next interval: the periodic predictor when a
  /// confident period exists, otherwise EWMA + trend extrapolation
  /// (clamped at zero).
  double predict_next() const;

  /// True when the predicted next-interval volume stays below
  /// `fraction` of the window's peak -- an under-utilized window suitable
  /// for background transfers (the checkpoint-fetch use case).
  bool underutilized_next(double fraction = 0.25) const;

 private:
  double autocorrelation(std::size_t lag) const;

  PredictorConfig cfg_;
  std::deque<double> window_;
  double ewma_ = 0.0;
  std::size_t total_samples_ = 0;
};

}  // namespace mpim::predict
