#include "predict/sampler.h"

#include <vector>

#include "mpimon/session.hpp"

namespace mpim::predict {

TrafficSampler::TrafficSampler(const mpi::Comm& comm, int flags)
    : comm_(comm), flags_(flags) {
  mon::check_rc(MPI_M_start(comm, &msid_), "MPI_M_start");
}

TrafficSampler::~TrafficSampler() {
  if (msid_ < 0) return;
  MPI_M_suspend(msid_);
  MPI_M_free(msid_);
}

std::uint64_t TrafficSampler::sample() {
  mon::check_rc(MPI_M_suspend(msid_), "MPI_M_suspend");
  std::vector<unsigned long> row(static_cast<std::size_t>(comm_.size()));
  mon::check_rc(MPI_M_get_data(msid_, MPI_M_DATA_IGNORE, row.data(), flags_),
                "MPI_M_get_data");
  mon::check_rc(MPI_M_reset(msid_), "MPI_M_reset");
  mon::check_rc(MPI_M_continue(msid_), "MPI_M_continue");
  std::uint64_t acc = 0;
  for (unsigned long v : row) acc += v;
  return acc;
}

}  // namespace mpim::predict
