// Section 6.4 micro-benchmark: groups of ranks each run an MPI_Allgather
// per iteration. The groups are built so that, under the initial placement,
// every group spans as many nodes as possible (group g = ranks
// {g, g+G, g+2G, ...} with G groups); dynamic rank reordering then packs
// each group onto contiguous cores.
#pragma once

#include <vector>

#include "minimpi/api.h"

namespace mpim::apps {

struct GroupAllgatherConfig {
  int num_groups = 24;   ///< G; group g holds ranks with rank % G == g
  std::size_t count = 1000;  ///< MPI_INT elements contributed per rank
  int iters = 10;
};

/// Builds the cyclic group communicator of the calling rank.
mpi::Comm make_group_comm(const mpi::Comm& comm, int num_groups);

/// Runs `iters` timing-only allgathers on the calling rank's group
/// communicator; returns the virtual time spent (this rank).
double run_group_allgather(const mpi::Comm& group_comm,
                           const GroupAllgatherConfig& cfg);

}  // namespace mpim::apps
