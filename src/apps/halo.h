// 2-D Jacobi halo-exchange kernel: the "iterative computation" archetype of
// the paper's Figure-1 reordering algorithm. Each iteration smooths a local
// block and exchanges one row/column of doubles with the four grid
// neighbors -- a fixed communication pattern, ideal for monitor-once,
// reorder, iterate.
#pragma once

#include <vector>

#include "minimpi/api.h"

namespace mpim::apps {

struct HaloConfig {
  int local_n = 64;   ///< local block is local_n x local_n doubles
  int iters = 10;
  unsigned long seed = 3;
  /// Computational imbalance injection: rank `slow_rank` (by comm rank)
  /// burns `slow_extra_s` of extra virtual compute before each exchange,
  /// turning it into a late sender for its grid neighbors. -1 disables.
  int slow_rank = -1;
  double slow_extra_s = 0.0;
};

struct HaloResult {
  double total_time_s = 0.0;
  double comm_time_s = 0.0;
  double checksum = 0.0;  ///< deterministic over runs with equal config
};

/// Runs `cfg.iters` Jacobi sweeps on a pr x pc process grid over `comm`.
HaloResult run_halo(const mpi::Comm& comm, const HaloConfig& cfg);

}  // namespace mpim::apps
