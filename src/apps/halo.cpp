#include "apps/halo.h"

#include "apps/cg.h"  // cg_process_grid
#include "support/rng.h"

namespace mpim::apps {

HaloResult run_halo(const mpi::Comm& comm, const HaloConfig& cfg) {
  int pr = 0, pc = 0;
  cg_process_grid(comm.size(), &pr, &pc);
  const int myrank = mpi::comm_rank(comm);
  const int prow = myrank / pc;
  const int pcol = myrank % pc;
  const int n = cfg.local_n;
  const auto nn = static_cast<std::size_t>(n);

  std::vector<double> grid(nn * nn), next(nn * nn);
  Rng rng(cfg.seed + static_cast<unsigned long>(myrank));
  for (double& v : grid) v = rng.uniform();

  std::vector<double> halo_n(nn, 0.0), halo_s(nn, 0.0), halo_w(nn, 0.0),
      halo_e(nn, 0.0), edge_w(nn), edge_e(nn);

  const int up = prow > 0 ? (prow - 1) * pc + pcol : -1;
  const int down = prow + 1 < pr ? (prow + 1) * pc + pcol : -1;
  const int left = pcol > 0 ? prow * pc + (pcol - 1) : -1;
  const int right = pcol + 1 < pc ? prow * pc + (pcol + 1) : -1;

  HaloResult out;
  const double t0 = mpi::wtime();
  for (int it = 0; it < cfg.iters; ++it) {
    for (int i = 0; i < n; ++i) {
      edge_w[static_cast<std::size_t>(i)] = grid[static_cast<std::size_t>(i) * nn];
      edge_e[static_cast<std::size_t>(i)] =
          grid[static_cast<std::size_t>(i) * nn + nn - 1];
    }
    if (myrank == cfg.slow_rank && cfg.slow_extra_s > 0.0)
      mpi::compute(cfg.slow_extra_s);
    const double c0 = mpi::wtime();
    if (up >= 0) mpi::send(grid.data(), nn, mpi::Type::Double, up, 0, comm);
    if (down >= 0)
      mpi::send(grid.data() + (nn - 1) * nn, nn, mpi::Type::Double, down, 1,
                comm);
    if (left >= 0)
      mpi::send(edge_w.data(), nn, mpi::Type::Double, left, 2, comm);
    if (right >= 0)
      mpi::send(edge_e.data(), nn, mpi::Type::Double, right, 3, comm);
    if (up >= 0) mpi::recv(halo_n.data(), nn, mpi::Type::Double, up, 1, comm);
    if (down >= 0)
      mpi::recv(halo_s.data(), nn, mpi::Type::Double, down, 0, comm);
    if (left >= 0)
      mpi::recv(halo_w.data(), nn, mpi::Type::Double, left, 3, comm);
    if (right >= 0)
      mpi::recv(halo_e.data(), nn, mpi::Type::Double, right, 2, comm);
    out.comm_time_s += mpi::wtime() - c0;

    auto at = [&](int i, int j) -> double {
      if (i < 0) return halo_n[static_cast<std::size_t>(j)];
      if (i >= n) return halo_s[static_cast<std::size_t>(j)];
      if (j < 0) return halo_w[static_cast<std::size_t>(i)];
      if (j >= n) return halo_e[static_cast<std::size_t>(i)];
      return grid[static_cast<std::size_t>(i) * nn +
                  static_cast<std::size_t>(j)];
    };
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        next[static_cast<std::size_t>(i) * nn + static_cast<std::size_t>(j)] =
            0.25 * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1));
    grid.swap(next);
    mpi::compute_flops(4.0 * static_cast<double>(nn * nn));
  }
  out.total_time_s = mpi::wtime() - t0;

  double local = 0.0;
  for (double v : grid) local += v;
  mpi::allreduce(&local, &out.checksum, 1, mpi::Type::Double, mpi::Op::Sum,
                 comm);
  return out;
}

}  // namespace mpim::apps
