#include "apps/group_allgather.h"

#include "minimpi/coll.h"

namespace mpim::apps {

mpi::Comm make_group_comm(const mpi::Comm& comm, int num_groups) {
  const int myrank = mpi::comm_rank(comm);
  return mpi::comm_split(comm, myrank % num_groups, myrank / num_groups);
}

double run_group_allgather(const mpi::Comm& group_comm,
                           const GroupAllgatherConfig& cfg) {
  const double t0 = mpi::wtime();
  for (int it = 0; it < cfg.iters; ++it) {
    // Timing-only buffers: the sweep reaches paper-scale sizes (10^5 ints
    // x thousands of iterations) without allocating payloads.
    mpi::allgather(nullptr, cfg.count, mpi::Type::Int, nullptr, group_comm);
  }
  return mpi::wtime() - t0;
}

}  // namespace mpim::apps
