// NAS-parallel-benchmark-style conjugate gradient (kernel CG).
//
// Unlike apps/cg.h (a halo-exchange CG on the grid), this solver uses the
// genuine NAS CG data distribution: the sparse matrix is partitioned into
// 2-D blocks over an nprows x npcols process grid, vectors live in
// disjoint per-rank pieces, and every iteration performs
//   1. a column allgather (recursive doubling, partners at rank distance
//      npcols * 2^k) to assemble the local p segment,
//   2. the local sparse block SpMV,
//   3. a reduce-scatter within the grid row (recursive halving, partners
//      at rank distance 2^k) to sum the partial results,
//   4. one transpose exchange (NAS's exch_proc) realigning the q chunk
//      from row space to the rank's vector piece,
//   5. three scalar allreduces for the dot products.
// The long-distance power-of-2 partner pattern is exactly what makes the
// paper's Fig. 7 rank reordering profitable even from packed mappings.
//
// The matrix is the 2-D Poisson operator (SPD), so the arithmetic is a
// real Krylov solve; the residual sequence matches apps/cg.h bit-for-bit
// up to floating-point summation order.
#pragma once

#include <vector>

#include "apps/cg.h"  // CgConfig / CgResult
#include "minimpi/api.h"

namespace mpim::apps {

/// NAS process grids: nprocs must be a power of two; the grid is
/// square (pr == pc) or 1:2 rectangular (pc == 2 pr).
void nas_process_grid(int nprocs, int* pr, int* pc);

class NasCgSolver {
 public:
  /// Collective over `comm`. Requires comm.size() to be a power of two
  /// and grid_n to be a multiple of 48 (divisibility of all partitions).
  NasCgSolver(const mpi::Comm& comm, const CgConfig& cfg);

  /// One CG iteration; returns the new rho = r.r.
  double iteration();

  /// Reinitializes the state and runs max_iters iterations.
  CgResult solve();

  const mpi::Comm& comm() const { return comm_; }
  int grid_rows() const { return pr_; }
  int grid_cols() const { return pc_; }
  /// Global [begin, end) of this rank's disjoint vector piece.
  std::pair<long, long> piece_range() const {
    return {piece0_, piece0_ + piece_len_};
  }

 private:
  void reset_state();
  void build_matrix_block();
  /// Steps 1-4 above: q_piece = (A p)_piece from the current p pieces.
  void apply_operator();
  double dot_pieces(const std::vector<double>& a,
                    const std::vector<double>& b);

  template <typename Fn>
  void timed(Fn&& fn);

  mpi::Comm comm_;
  CgConfig cfg_;
  long n_ = 0;  ///< matrix order = grid_n^2
  int pr_ = 0, pc_ = 0;
  int prow_ = 0, pcol_ = 0;

  long row0_ = 0, rows_ = 0;  ///< matrix rows of my block (range Ri)
  long col0_ = 0, cols_ = 0;  ///< matrix cols of my block (range Cj)
  long piece0_ = 0, piece_len_ = 0;  ///< my disjoint vector piece

  // Local sparse block in CSR (column indices local to Cj).
  std::vector<long> csr_row_ptr_;
  std::vector<int> csr_col_;
  std::vector<double> csr_val_;

  // Vector pieces (length piece_len_).
  std::vector<double> b_, x_, r_, p_, q_;
  // Work buffers.
  std::vector<double> p_full_;  ///< assembled p over Cj (length cols_)
  std::vector<double> w_;       ///< SpMV partial over Ri (length rows_)
  std::vector<double> halves_;  ///< reduce-scatter exchange buffer

  double comm_time_s_ = 0.0;
};

}  // namespace mpim::apps
