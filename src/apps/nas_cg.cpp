#include "apps/nas_cg.h"

#include <utility>

#include "support/error.h"

namespace mpim::apps {

void nas_process_grid(int nprocs, int* pr, int* pc) {
  check(nprocs >= 1 && (nprocs & (nprocs - 1)) == 0,
        "NAS CG needs a power-of-two number of processes");
  int log2p = 0;
  while ((1 << (log2p + 1)) <= nprocs) ++log2p;
  *pr = 1 << (log2p / 2);
  *pc = nprocs / *pr;  // pc == pr (even log2p) or pc == 2*pr (odd)
}

namespace {
constexpr int kRowSumTag = 20;
constexpr int kTransposeTag = 21;
constexpr int kAllgatherTag = 22;
}  // namespace

template <typename Fn>
void NasCgSolver::timed(Fn&& fn) {
  const double t0 = mpi::wtime();
  fn();
  comm_time_s_ += mpi::wtime() - t0;
}

NasCgSolver::NasCgSolver(const mpi::Comm& comm, const CgConfig& cfg)
    : comm_(comm), cfg_(cfg) {
  nas_process_grid(comm.size(), &pr_, &pc_);
  const int myrank = mpi::comm_rank(comm);
  prow_ = myrank / pc_;
  pcol_ = myrank % pc_;

  check(cfg_.grid_n % 48 == 0,
        "NAS CG grid_n must be a multiple of 48 (partition divisibility)");
  n_ = static_cast<long>(cfg_.grid_n) * cfg_.grid_n;
  check(n_ % (static_cast<long>(pr_) * pc_) == 0,
        "matrix order not divisible by the process grid");

  rows_ = n_ / pr_;
  row0_ = rows_ * prow_;
  cols_ = n_ / pc_;
  col0_ = cols_ * pcol_;
  piece_len_ = n_ / (static_cast<long>(pr_) * pc_);
  piece0_ = col0_ + piece_len_ * prow_;

  build_matrix_block();

  const auto plen = static_cast<std::size_t>(piece_len_);
  b_.resize(plen);
  x_.resize(plen);
  r_.resize(plen);
  p_.resize(plen);
  q_.resize(plen);
  p_full_.resize(static_cast<std::size_t>(cols_));
  w_.resize(static_cast<std::size_t>(rows_));
  halves_.resize(static_cast<std::size_t>(rows_ / 2 + 1));

  for (long i = 0; i < piece_len_; ++i)
    b_[static_cast<std::size_t>(i)] = cg_rhs_value(cfg_.seed, piece0_ + i);
  reset_state();
}

void NasCgSolver::build_matrix_block() {
  const long g = cfg_.grid_n;
  csr_row_ptr_.assign(static_cast<std::size_t>(rows_) + 1, 0);
  auto in_cols = [&](long v) { return v >= col0_ && v < col0_ + cols_; };

  for (long lr = 0; lr < rows_; ++lr) {
    const long u = row0_ + lr;
    const long y = u / g, x = u % g;
    // Ascending column order: u-g, u-1, u, u+1, u+g.
    const std::pair<long, double> entries[] = {
        {u - g, -1.0}, {u - 1, -1.0}, {u, 4.0}, {u + 1, -1.0}, {u + g, -1.0}};
    for (const auto& [v, val] : entries) {
      const bool valid = (v == u) || (v == u - g && y > 0) ||
                         (v == u + g && y < g - 1) ||
                         (v == u - 1 && x > 0) || (v == u + 1 && x < g - 1);
      if (!valid || !in_cols(v)) continue;
      csr_col_.push_back(static_cast<int>(v - col0_));
      csr_val_.push_back(val);
      ++csr_row_ptr_[static_cast<std::size_t>(lr) + 1];
    }
  }
  for (std::size_t i = 1; i < csr_row_ptr_.size(); ++i)
    csr_row_ptr_[i] += csr_row_ptr_[i - 1];
}

void NasCgSolver::reset_state() {
  std::fill(x_.begin(), x_.end(), 0.0);
  r_ = b_;
  p_ = r_;
  comm_time_s_ = 0.0;
}

double NasCgSolver::dot_pieces(const std::vector<double>& a,
                               const std::vector<double>& b) {
  double local = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
  mpi::compute_flops(2.0 * static_cast<double>(a.size()));
  double global = 0.0;
  timed([&] {
    mpi::allreduce(&local, &global, 1, mpi::Type::Double, mpi::Op::Sum,
                   comm_);
  });
  return global;
}

void NasCgSolver::apply_operator() {
  const auto plen = static_cast<std::size_t>(piece_len_);

  // 1. Column allgather (recursive doubling): assemble p over Cj from the
  //    pr pieces held by the ranks of this grid column.
  std::copy(p_.begin(), p_.end(),
            p_full_.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<long>(prow_) * piece_len_));
  timed([&] {
    int base = prow_;  // first piece of the region currently held
    int cnt = 1;       // pieces held
    for (int mask = 1; mask < pr_; mask <<= 1) {
      const int partner_row = prow_ ^ mask;
      const int partner = partner_row * pc_ + pcol_;
      const int partner_base = base ^ mask;
      mpi::send(p_full_.data() + static_cast<long>(base) * piece_len_,
                static_cast<std::size_t>(cnt) * plen, mpi::Type::Double,
                partner, kAllgatherTag, comm_);
      mpi::recv(p_full_.data() + static_cast<long>(partner_base) * piece_len_,
                static_cast<std::size_t>(cnt) * plen, mpi::Type::Double,
                partner, kAllgatherTag, comm_);
      base = std::min(base, partner_base);
      cnt *= 2;
    }
  });

  // 2. Local sparse block SpMV: w = A(Ri x Cj) * p_full.
  for (long lr = 0; lr < rows_; ++lr) {
    double acc = 0.0;
    const long beg = csr_row_ptr_[static_cast<std::size_t>(lr)];
    const long end = csr_row_ptr_[static_cast<std::size_t>(lr) + 1];
    for (long e = beg; e < end; ++e)
      acc += csr_val_[static_cast<std::size_t>(e)] *
             p_full_[static_cast<std::size_t>(
                 csr_col_[static_cast<std::size_t>(e)])];
    w_[static_cast<std::size_t>(lr)] = acc;
  }
  mpi::compute_flops(2.0 * static_cast<double>(csr_val_.size()));

  // 3. Reduce-scatter within the grid row (recursive halving): every rank
  //    ends with the pcol-th chunk of Ri, summed across the row.
  long cur_off = 0, cur_len = rows_;
  timed([&] {
    for (int mask = pc_ >> 1; mask >= 1; mask >>= 1) {
      const int partner_col = pcol_ ^ mask;
      const int partner = prow_ * pc_ + partner_col;
      const long half = cur_len / 2;
      const bool keep_upper = (pcol_ & mask) != 0;
      const long send_off = keep_upper ? cur_off : cur_off + half;
      const long keep_off = keep_upper ? cur_off + half : cur_off;
      mpi::send(w_.data() + send_off, static_cast<std::size_t>(half),
                mpi::Type::Double, partner, kRowSumTag, comm_);
      mpi::recv(halves_.data(), static_cast<std::size_t>(half),
                mpi::Type::Double, partner, kRowSumTag, comm_);
      for (long i = 0; i < half; ++i)
        w_[static_cast<std::size_t>(keep_off + i)] +=
            halves_[static_cast<std::size_t>(i)];
      cur_off = keep_off;
      cur_len = half;
    }
  });
  mpi::compute_flops(static_cast<double>(rows_));  // the summing passes
  check(cur_len == piece_len_ && cur_off == piece_len_ * pcol_,
        "reduce-scatter bookkeeping broke");

  // 4. Transpose exchange: my q chunk (chunk-space index prow*pc + pcol)
  //    is the vector piece of rank (a, b) with b*pr + a = prow*pc + pcol;
  //    my own piece arrives from the inverse partner.
  const int send_idx = prow_ * pc_ + pcol_;
  const int dst = (send_idx % pr_) * pc_ + (send_idx / pr_);
  const int src_idx = pcol_ * pr_ + prow_;
  const int src = (src_idx / pc_) * pc_ + (src_idx % pc_);
  if (dst == mpi::comm_rank(comm_)) {
    std::copy(w_.begin() + cur_off, w_.begin() + cur_off + piece_len_,
              q_.begin());
  } else {
    timed([&] {
      mpi::send(w_.data() + cur_off, plen, mpi::Type::Double, dst,
                kTransposeTag, comm_);
      mpi::recv(q_.data(), plen, mpi::Type::Double, src, kTransposeTag,
                comm_);
    });
  }
}

double NasCgSolver::iteration() {
  const double rho = dot_pieces(r_, r_);
  apply_operator();  // q = A p (pieces)
  const double pq = dot_pieces(p_, q_);
  const double alpha = rho / pq;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    x_[i] += alpha * p_[i];
    r_[i] -= alpha * q_[i];
  }
  double rho_local = 0.0;
  for (double v : r_) rho_local += v * v;
  mpi::compute_flops(6.0 * static_cast<double>(x_.size()));
  double rho_global = 0.0;
  timed([&] {
    mpi::allreduce(&rho_local, &rho_global, 1, mpi::Type::Double,
                   mpi::Op::Sum, comm_);
  });
  const double beta = rho_global / rho;
  for (std::size_t i = 0; i < p_.size(); ++i) p_[i] = r_[i] + beta * p_[i];
  mpi::compute_flops(2.0 * static_cast<double>(p_.size()));
  return rho_global;
}

CgResult NasCgSolver::solve() {
  reset_state();
  const double t0 = mpi::wtime();
  CgResult out;
  double rho = 0.0;
  for (int it = 0; it < cfg_.max_iters; ++it) {
    rho = iteration();
    ++out.iterations;
  }
  out.residual_norm2 = rho;
  out.total_time_s = mpi::wtime() - t0;
  out.comm_time_s = comm_time_s_;
  return out;
}

}  // namespace mpim::apps
