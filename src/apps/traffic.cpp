#include "apps/traffic.h"

#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "support/error.h"
#include "support/rng.h"

namespace mpim::apps {

namespace {
constexpr int kBurstTag = 11;
constexpr int kStopTag = 12;
}  // namespace

TrafficSeries run_traffic_generator(const mpi::Comm& comm,
                                    const TrafficConfig& cfg) {
  check(comm.size() >= 2, "traffic generator needs at least two ranks");
  const int myrank = mpi::comm_rank(comm);
  TrafficSeries out;

  if (myrank == 1) {
    // Drain bursts until the stop marker arrives.
    std::vector<std::byte> buf(cfg.max_bytes);
    for (;;) {
      const mpi::Status st = mpi::recv(buf.data(), buf.size(),
                                       mpi::Type::Byte, 0, mpi::kAnyTag, comm);
      if (st.tag == kStopTag) break;
    }
    return out;
  }
  if (myrank != 0) return out;

  Rng rng(cfg.seed);
  std::vector<std::byte> burst(cfg.max_bytes);

  MPI_M_msid id = -1;
  mon::check_rc(MPI_M_start(comm, &id), "MPI_M_start");

  std::vector<unsigned long> row(static_cast<std::size_t>(comm.size()));
  double next_tick = cfg.sample_period_s;
  double next_burst = 0.0;
  double next_sleep_len =
      rng.uniform(cfg.min_sleep_s, cfg.max_sleep_s);

  while (next_tick <= cfg.duration_s + 1e-12) {
    if (next_burst < next_tick) {
      // Advance to the burst instant and transmit.
      if (next_burst > mpi::wtime()) mpi::compute(next_burst - mpi::wtime());
      const std::size_t bytes = static_cast<std::size_t>(rng.uniform_u64(
          cfg.min_bytes, cfg.max_bytes));
      mpi::send(burst.data(), bytes, mpi::Type::Byte, 1, kBurstTag, comm);
      out.total_sent_bytes += bytes;
      next_burst += next_sleep_len;
      next_sleep_len = rng.uniform(cfg.min_sleep_s, cfg.max_sleep_s);
      continue;
    }
    // Advance to the sampling tick and read-and-reset the session,
    // exactly the paper's use of the reset feature.
    if (next_tick > mpi::wtime()) mpi::compute(next_tick - mpi::wtime());
    mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
    mon::check_rc(
        MPI_M_get_data(id, MPI_M_DATA_IGNORE, row.data(), MPI_M_P2P_ONLY),
        "MPI_M_get_data");
    mon::check_rc(MPI_M_reset(id), "MPI_M_reset");
    mon::check_rc(MPI_M_continue(id), "MPI_M_continue");
    out.introspection.push_back(TrafficSample{next_tick, row[1]});
    next_tick += cfg.sample_period_s;
  }

  mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
  mon::check_rc(MPI_M_free(id), "MPI_M_free");
  mpi::send(nullptr, 0, mpi::Type::Byte, 1, kStopTag, comm);
  return out;
}

std::vector<TrafficSample> sample_nic_series(
    const std::vector<net::TxRecord>& log, double period_s,
    double duration_s) {
  std::vector<TrafficSample> out;
  const auto buckets =
      static_cast<std::size_t>(duration_s / period_s + 0.5);
  out.reserve(buckets);
  for (std::size_t b = 0; b < buckets; ++b)
    out.push_back(TrafficSample{static_cast<double>(b + 1) * period_s, 0});
  for (const net::TxRecord& rec : log) {
    auto b = static_cast<std::size_t>(rec.time_s / period_s);
    if (b >= out.size()) continue;  // past the sampled window
    out[b].bytes += rec.bytes;
  }
  return out;
}

}  // namespace mpim::apps
