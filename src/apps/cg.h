// Distributed conjugate-gradient solver (the paper's Section 6.5 workload).
//
// The NAS CG kernel is not redistributable here (no Fortran, no NAS data
// generator), so this is an honest CG on the 5-point 2-D Poisson matrix
// with a 2-D block process grid -- it keeps the property the experiment
// relies on: the communication pattern of every iteration is identical
// (four halo exchanges per SpMV plus two allreduce dot products), so
// monitoring one iteration predicts all others. Problem classes follow the
// NAS naming with sizes scaled to the simulator (DESIGN.md, divergences).
//
// Like NAS CG, the code has an initialization step that performs one
// untimed iteration: the reordering benches monitor that step, reorder,
// and re-setup on the optimized communicator instead of redistributing.
#pragma once

#include <vector>

#include "minimpi/api.h"

namespace mpim::apps {

struct CgConfig {
  int grid_n = 192;       ///< global grid is grid_n x grid_n unknowns
  int max_iters = 15;     ///< CG iterations (fixed count, NAS-style)
  unsigned long seed = 42;  ///< right-hand-side generator seed
};

/// NAS-inspired classes, sizes scaled for the simulator.
CgConfig cg_class(char cls);  // 'S','A','B','C','D'

struct CgResult {
  int iterations = 0;
  double residual_norm2 = 0.0;  ///< ||b - A x||^2 at exit
  double total_time_s = 0.0;    ///< virtual walltime of the solve (this rank)
  double comm_time_s = 0.0;     ///< virtual time spent inside MPI calls
};

/// Distributed CG instance bound to a communicator. All members of `comm`
/// must construct it collectively with the same config.
class CgSolver {
 public:
  CgSolver(const mpi::Comm& comm, const CgConfig& cfg);

  /// One CG iteration (the communication pattern the monitoring sees).
  /// Returns rho = r.r after the step.
  double iteration();

  /// Full solve: reinitializes the state and runs max_iters iterations.
  CgResult solve();

  const mpi::Comm& comm() const { return comm_; }
  int grid_rows() const { return pr_; }
  int grid_cols() const { return pc_; }

 private:
  void reset_state();
  /// y = A x for the local block, after refreshing the halos of x.
  void apply_operator(const std::vector<double>& x, std::vector<double>& y);
  void exchange_halos(const std::vector<double>& x);
  double dot(const std::vector<double>& a, const std::vector<double>& b);

  template <typename Fn>
  auto timed(Fn&& fn);

  mpi::Comm comm_;
  CgConfig cfg_;
  int pr_ = 0, pc_ = 0;      ///< process grid
  int prow_ = 0, pcol_ = 0;  ///< my coordinates
  int local_rows_ = 0, local_cols_ = 0;
  int row0_ = 0, col0_ = 0;  ///< global offset of my block

  std::vector<double> b_, x_, r_, p_, q_;
  std::vector<double> halo_n_, halo_s_, halo_w_, halo_e_;

  double comm_time_s_ = 0.0;
};

/// Process-grid factorization used by the solver (pr x pc, pr <= pc,
/// both powers of two for power-of-two sizes -- the NAS constraint).
void cg_process_grid(int nprocs, int* pr, int* pc);

/// Deterministic right-hand-side entry, independent of the partitioning
/// (shared by CgSolver and NasCgSolver so their numerics agree).
double cg_rhs_value(unsigned long seed, long global_index);

}  // namespace mpim::apps
