#include "apps/cg.h"

#include <cmath>

#include "support/error.h"
#include "support/rng.h"

namespace mpim::apps {

CgConfig cg_class(char cls) {
  // NAS CG classes, grid sizes rescaled to simulator-friendly budgets while
  // preserving the class-to-class growth (documented in DESIGN.md).
  switch (cls) {
    case 'S': return CgConfig{48, 10, 42};
    case 'A': return CgConfig{384, 100, 42};
    case 'B': return CgConfig{768, 150, 42};
    case 'C': return CgConfig{1152, 150, 42};
    case 'D': return CgConfig{1536, 120, 42};
    default: fail("unknown CG class");
  }
}

void cg_process_grid(int nprocs, int* pr, int* pc) {
  check(nprocs >= 1, "cg_process_grid: nprocs must be positive");
  // Largest factorization pr x pc with pr <= pc and pr a power of two when
  // nprocs is (the NAS layout: square or 1x2-rectangular grids).
  int best_r = 1;
  for (int r = 1; r * r <= nprocs; ++r)
    if (nprocs % r == 0) best_r = r;
  *pr = best_r;
  *pc = nprocs / best_r;
}

double cg_rhs_value(unsigned long seed, long global_index) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ULL +
                    static_cast<std::uint64_t>(global_index);
  return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53 - 0.5;
}

namespace {

int block_offset(int total, int parts, int part) {
  return static_cast<int>(static_cast<long>(total) * part / parts);
}

}  // namespace

template <typename Fn>
auto CgSolver::timed(Fn&& fn) {
  const double t0 = mpi::wtime();
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    comm_time_s_ += mpi::wtime() - t0;
  } else {
    auto out = fn();
    comm_time_s_ += mpi::wtime() - t0;
    return out;
  }
}

CgSolver::CgSolver(const mpi::Comm& comm, const CgConfig& cfg)
    : comm_(comm), cfg_(cfg) {
  const int nprocs = comm.size();
  cg_process_grid(nprocs, &pr_, &pc_);
  const int myrank = mpi::comm_rank(comm);
  prow_ = myrank / pc_;
  pcol_ = myrank % pc_;

  check(cfg_.grid_n >= pr_ && cfg_.grid_n >= pc_,
        "CG grid smaller than the process grid");
  row0_ = block_offset(cfg_.grid_n, pr_, prow_);
  col0_ = block_offset(cfg_.grid_n, pc_, pcol_);
  local_rows_ = block_offset(cfg_.grid_n, pr_, prow_ + 1) - row0_;
  local_cols_ = block_offset(cfg_.grid_n, pc_, pcol_ + 1) - col0_;

  const auto local = static_cast<std::size_t>(local_rows_) *
                     static_cast<std::size_t>(local_cols_);
  b_.resize(local);
  x_.resize(local);
  r_.resize(local);
  p_.resize(local);
  q_.resize(local);
  halo_n_.assign(static_cast<std::size_t>(local_cols_), 0.0);
  halo_s_.assign(static_cast<std::size_t>(local_cols_), 0.0);
  halo_w_.assign(static_cast<std::size_t>(local_rows_), 0.0);
  halo_e_.assign(static_cast<std::size_t>(local_rows_), 0.0);

  for (int i = 0; i < local_rows_; ++i)
    for (int j = 0; j < local_cols_; ++j)
      b_[static_cast<std::size_t>(i * local_cols_ + j)] = cg_rhs_value(
          cfg_.seed,
          static_cast<long>(row0_ + i) * cfg_.grid_n + (col0_ + j));
  reset_state();
}

void CgSolver::reset_state() {
  std::fill(x_.begin(), x_.end(), 0.0);
  r_ = b_;  // r = b - A*0
  p_ = r_;
  comm_time_s_ = 0.0;
}

void CgSolver::exchange_halos(const std::vector<double>& v) {
  const int up = prow_ > 0 ? (prow_ - 1) * pc_ + pcol_ : -1;
  const int down = prow_ + 1 < pr_ ? (prow_ + 1) * pc_ + pcol_ : -1;
  const int left = pcol_ > 0 ? prow_ * pc_ + (pcol_ - 1) : -1;
  const int right = pcol_ + 1 < pc_ ? prow_ * pc_ + (pcol_ + 1) : -1;

  const auto cols = static_cast<std::size_t>(local_cols_);
  const auto rows = static_cast<std::size_t>(local_rows_);
  std::vector<double> edge_w(rows), edge_e(rows);
  for (int i = 0; i < local_rows_; ++i) {
    edge_w[static_cast<std::size_t>(i)] =
        v[static_cast<std::size_t>(i * local_cols_)];
    edge_e[static_cast<std::size_t>(i)] =
        v[static_cast<std::size_t>(i * local_cols_ + local_cols_ - 1)];
  }

  timed([&] {
    // Eager sends: post all four, then receive all four.
    if (up >= 0) mpi::send(v.data(), cols, mpi::Type::Double, up, 0, comm_);
    if (down >= 0)
      mpi::send(v.data() + (rows - 1) * cols, cols, mpi::Type::Double, down,
                1, comm_);
    if (left >= 0)
      mpi::send(edge_w.data(), rows, mpi::Type::Double, left, 2, comm_);
    if (right >= 0)
      mpi::send(edge_e.data(), rows, mpi::Type::Double, right, 3, comm_);

    if (up >= 0)
      mpi::recv(halo_n_.data(), cols, mpi::Type::Double, up, 1, comm_);
    else
      std::fill(halo_n_.begin(), halo_n_.end(), 0.0);
    if (down >= 0)
      mpi::recv(halo_s_.data(), cols, mpi::Type::Double, down, 0, comm_);
    else
      std::fill(halo_s_.begin(), halo_s_.end(), 0.0);
    if (left >= 0)
      mpi::recv(halo_w_.data(), rows, mpi::Type::Double, left, 3, comm_);
    else
      std::fill(halo_w_.begin(), halo_w_.end(), 0.0);
    if (right >= 0)
      mpi::recv(halo_e_.data(), rows, mpi::Type::Double, right, 2, comm_);
    else
      std::fill(halo_e_.begin(), halo_e_.end(), 0.0);
  });
}

void CgSolver::apply_operator(const std::vector<double>& v,
                              std::vector<double>& out) {
  exchange_halos(v);
  auto at = [&](int i, int j) -> double {
    if (i < 0) return halo_n_[static_cast<std::size_t>(j)];
    if (i >= local_rows_) return halo_s_[static_cast<std::size_t>(j)];
    if (j < 0) return halo_w_[static_cast<std::size_t>(i)];
    if (j >= local_cols_) return halo_e_[static_cast<std::size_t>(i)];
    return v[static_cast<std::size_t>(i * local_cols_ + j)];
  };
  for (int i = 0; i < local_rows_; ++i) {
    for (int j = 0; j < local_cols_; ++j) {
      out[static_cast<std::size_t>(i * local_cols_ + j)] =
          4.0 * at(i, j) - at(i - 1, j) - at(i + 1, j) - at(i, j - 1) -
          at(i, j + 1);
    }
  }
  mpi::compute_flops(9.0 * static_cast<double>(v.size()));
}

double CgSolver::dot(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double local = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
  mpi::compute_flops(2.0 * static_cast<double>(a.size()));
  double global = 0.0;
  timed([&] {
    mpi::allreduce(&local, &global, 1, mpi::Type::Double, mpi::Op::Sum,
                   comm_);
  });
  return global;
}

double CgSolver::iteration() {
  const double rho = dot(r_, r_);
  apply_operator(p_, q_);
  const double pq = dot(p_, q_);
  const double alpha = rho / pq;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    x_[i] += alpha * p_[i];
    r_[i] -= alpha * q_[i];
  }
  double rho_new = 0.0;
  for (double v : r_) rho_new += v * v;
  mpi::compute_flops(6.0 * static_cast<double>(x_.size()));
  double rho_global = 0.0;
  timed([&] {
    mpi::allreduce(&rho_new, &rho_global, 1, mpi::Type::Double, mpi::Op::Sum,
                   comm_);
  });
  const double beta = rho_global / rho;
  for (std::size_t i = 0; i < p_.size(); ++i) p_[i] = r_[i] + beta * p_[i];
  mpi::compute_flops(2.0 * static_cast<double>(p_.size()));
  return rho_global;
}

CgResult CgSolver::solve() {
  reset_state();
  const double t0 = mpi::wtime();
  CgResult out;
  double rho = 0.0;
  for (int it = 0; it < cfg_.max_iters; ++it) {
    rho = iteration();
    ++out.iterations;
  }
  out.residual_norm2 = rho;
  out.total_time_s = mpi::wtime() - t0;
  out.comm_time_s = comm_time_s_;
  return out;
}

}  // namespace mpim::apps
