// Section 6.1 workload: a two-rank program where rank 0 sends bursts of a
// random size (1 KB .. 800 KB) and then sleeps 50 .. 1000 ms, while a
// 10 ms sampler reads the introspection session (using the reset feature)
// and, separately, the node's simulated NIC hardware counter.
#pragma once

#include <cstdint>
#include <vector>

#include "minimpi/api.h"
#include "netmodel/nic_counters.h"

namespace mpim::apps {

struct TrafficConfig {
  double duration_s = 40.0;
  double sample_period_s = 0.010;  ///< the paper's 10 ms monitor frequency
  std::size_t min_bytes = 1000;
  std::size_t max_bytes = 800 * 1000;
  double min_sleep_s = 0.050;
  double max_sleep_s = 1.000;
  unsigned long seed = 7;
};

struct TrafficSample {
  double time_s = 0.0;          ///< end of the sampling interval
  std::uint64_t bytes = 0;      ///< bytes observed during the interval
};

struct TrafficSeries {
  std::vector<TrafficSample> introspection;  ///< session reads (rank 0)
  std::vector<TrafficSample> hw_counters;    ///< NIC counter deltas (node 0)
  std::uint64_t total_sent_bytes = 0;
};

/// Runs the generator on ranks 0 and 1 of `comm` (others idle). Rank 0
/// samples its monitoring session every sample_period_s of virtual time;
/// the NIC series is reconstructed from the hardware counter log after the
/// run by the caller (see sample_nic_series). Requires MPI_M_init'd
/// environment. Returns the introspection series (valid on rank 0).
TrafficSeries run_traffic_generator(const mpi::Comm& comm,
                                    const TrafficConfig& cfg);

/// Bins a NIC transmit log into the same 10 ms grid (what polling
/// /sys/class/infiniband/.../port_xmit_data at that period would yield).
std::vector<TrafficSample> sample_nic_series(
    const std::vector<net::TxRecord>& log, double period_s,
    double duration_s);

}  // namespace mpim::apps
