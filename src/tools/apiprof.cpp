#include "tools/apiprof.h"

#include <ostream>

#include "support/error.h"
#include "support/table.h"

namespace mpim::tools {

const char* api_op_name(ApiOp op) {
  switch (op) {
    case ApiOp::send: return "MPI_Send";
    case ApiOp::recv: return "MPI_Recv";
    case ApiOp::sendrecv: return "MPI_Sendrecv";
    case ApiOp::bcast: return "MPI_Bcast";
    case ApiOp::reduce: return "MPI_Reduce";
    case ApiOp::allreduce: return "MPI_Allreduce";
    case ApiOp::gather: return "MPI_Gather";
    case ApiOp::scatter: return "MPI_Scatter";
    case ApiOp::allgather: return "MPI_Allgather";
    case ApiOp::alltoall: return "MPI_Alltoall";
    case ApiOp::barrier: return "MPI_Barrier";
    case ApiOp::kCount: break;
  }
  fail("unknown ApiOp");
}

Profiler::Profiler(const mpi::Comm& comm)
    : p2p_bytes_(static_cast<std::size_t>(comm.size()), 0) {}

template <typename Fn>
void Profiler::timed_op(ApiOp op, std::uint64_t bytes, Fn&& fn) {
  auto& s = stats_[static_cast<std::size_t>(op)];
  const double t0 = mpi::wtime();
  fn();
  s.time_s += mpi::wtime() - t0;
  ++s.calls;
  s.bytes += bytes;
}

void Profiler::send(const void* buf, std::size_t count, mpi::Type type,
                    int dst, int tag, const mpi::Comm& comm) {
  const std::uint64_t bytes = count * mpi::type_size(type);
  timed_op(ApiOp::send, bytes,
           [&] { mpi::send(buf, count, type, dst, tag, comm); });
  if (dst >= 0 && dst < static_cast<int>(p2p_bytes_.size()))
    p2p_bytes_[static_cast<std::size_t>(dst)] += bytes;
}

mpi::Status Profiler::recv(void* buf, std::size_t count, mpi::Type type,
                           int src, int tag, const mpi::Comm& comm) {
  mpi::Status st;
  timed_op(ApiOp::recv, count * mpi::type_size(type),
           [&] { st = mpi::recv(buf, count, type, src, tag, comm); });
  return st;
}

void Profiler::bcast(void* buf, std::size_t count, mpi::Type type, int root,
                     const mpi::Comm& comm) {
  timed_op(ApiOp::bcast, count * mpi::type_size(type),
           [&] { mpi::bcast(buf, count, type, root, comm); });
}

void Profiler::reduce(const void* sendbuf, void* recvbuf, std::size_t count,
                      mpi::Type type, mpi::Op op, int root,
                      const mpi::Comm& comm) {
  timed_op(ApiOp::reduce, count * mpi::type_size(type), [&] {
    mpi::reduce(sendbuf, recvbuf, count, type, op, root, comm);
  });
}

void Profiler::allreduce(const void* sendbuf, void* recvbuf,
                         std::size_t count, mpi::Type type, mpi::Op op,
                         const mpi::Comm& comm) {
  timed_op(ApiOp::allreduce, count * mpi::type_size(type), [&] {
    mpi::allreduce(sendbuf, recvbuf, count, type, op, comm);
  });
}

void Profiler::allgather(const void* sendbuf, std::size_t count,
                         mpi::Type type, void* recvbuf,
                         const mpi::Comm& comm) {
  timed_op(ApiOp::allgather, count * mpi::type_size(type), [&] {
    mpi::allgather(sendbuf, count, type, recvbuf, comm);
  });
}

void Profiler::barrier(const mpi::Comm& comm) {
  timed_op(ApiOp::barrier, 0, [&] { mpi::barrier(comm); });
}

const OpStats& Profiler::stats(ApiOp op) const {
  check(op != ApiOp::kCount, "invalid op");
  return stats_[static_cast<std::size_t>(op)];
}

double Profiler::total_time_s() const {
  double acc = 0.0;
  for (const auto& s : stats_) acc += s.time_s;
  return acc;
}

std::uint64_t Profiler::total_calls() const {
  std::uint64_t acc = 0;
  for (const auto& s : stats_) acc += s.calls;
  return acc;
}

void Profiler::write_report(std::ostream& os, int rank) const {
  os << "# apiprof report, rank " << rank << " (API-level view: collectives"
     << " are opaque calls)\n";
  Table table({"operation", "calls", "arg bytes", "time"});
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const auto& s = stats_[i];
    if (s.calls == 0) continue;
    table.add(api_op_name(static_cast<ApiOp>(i)), s.calls, s.bytes,
              format_seconds(s.time_s));
  }
  table.print(os);
  os << "total: " << total_calls() << " calls, "
     << format_seconds(total_time_s()) << " in MPI\n";
}

}  // namespace mpim::tools
