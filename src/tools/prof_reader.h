// Reader for the .prof files written by MPI_M_flush / MPI_M_rootflush,
// used by the profview CLI and by tests that round-trip flushed data.
#pragma once

#include <string>
#include <vector>

#include "support/matrix.h"

namespace mpim::tools {

/// One per-rank flush file (MPI_M_flush): rows of "peer count bytes".
struct RankProfile {
  int rank = -1;
  int comm_size = 0;
  std::string flags;
  std::vector<unsigned long> counts;
  std::vector<unsigned long> sizes;
};

/// Parses "<base>.<rank>.prof". Throws mpim::Error on malformed input.
RankProfile read_rank_profile(const std::string& path);

/// Parses a rootflush matrix file ("<base>_counts.<rank>.prof" or
/// "<base>_sizes.<rank>.prof").
CommMatrix read_matrix_profile(const std::string& path);

/// Human summary of a matrix: total volume, heaviest sender/receiver
/// pair, fraction of non-zero entries.
struct MatrixSummary {
  unsigned long total = 0;
  std::size_t heaviest_src = 0;
  std::size_t heaviest_dst = 0;
  unsigned long heaviest_value = 0;
  double density = 0.0;  ///< non-zero off-diagonal fraction
};
MatrixSummary summarize(const CommMatrix& m);

}  // namespace mpim::tools
