// Offline report renderers shared by the profview/monview binaries and the
// tools tests: each takes a CSV produced by the telemetry exporters or the
// introspection snapshot layer and renders a human-readable report to `os`.
// All readers parse strictly and throw mpim::Error on malformed input
// (missing file, bad header, truncated row, non-numeric or NaN cell).
#pragma once

#include <iosfwd>
#include <string>

namespace mpim::tools {

/// Renders the metric,kind,rank,field,value CSV written by
/// telemetry::write_metrics_csv: a scalar rollup (totals + busiest rank)
/// and a merged bucket table for each histogram.
void report_metrics(const std::string& path, std::ostream& os);

/// Renders the rank,name,cat,depth,t0_s,t1_s,a,b CSV written by
/// telemetry::write_spans_csv as a per-name duration rollup. Unlike the
/// other readers this one degrades gracefully: spans are the report's
/// optional second half, so an absent file or a bad header renders a note
/// instead of throwing, and a truncated/malformed row renders everything
/// parsed up to it plus a truncation note (a crash mid-write must not take
/// the metrics report down with it).
void report_spans(const std::string& path, std::ostream& os);

/// Renders the sectioned CSV written by critpath::Profiler::write_csv: a
/// blame summary, the per-rank blame shares, the hottest links, a
/// per-phase blame table and the extracted critical path as a rank x time
/// lane diagram.
void report_critpath(const std::string& path, std::ostream& os);

/// Renders a frames CSV written by introspect::write_frames_csv as a
/// time-resolved view: a per-window metric table (messages, bytes, load
/// imbalance, inter-window distances, phase-boundary markers) followed by
/// a text heatmap of the heaviest sender->receiver pairs over the windows.
void report_timeline(const std::string& path, std::ostream& os);

}  // namespace mpim::tools
