#include "tools/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>
#include <vector>

#include "introspect/analyzer.h"
#include "support/error.h"
#include "support/table.h"

namespace mpim::tools {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

/// Strict numeric cells: the whole cell must parse and be finite. A "nan"
/// or "inf" cell is corrupt data, not a number -- std::stod would happily
/// accept both and let the NaN poison every rollup downstream.
double num_cell(const std::string& cell, const std::string& line) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(cell, &used);
  } catch (const std::exception&) {
    fail("bad numeric cell '" + cell + "' in csv row: " + line);
  }
  if (used != cell.size() || !std::isfinite(v))
    fail("bad numeric cell '" + cell + "' in csv row: " + line);
  return v;
}

long long int_cell(const std::string& cell, const std::string& line) {
  const double v = num_cell(cell, line);
  check(v == std::floor(v), "non-integer cell '" + cell + "' in csv row: " + line);
  return static_cast<long long>(v);
}

}  // namespace

void report_metrics(const std::string& path, std::ostream& os) {
  std::ifstream is(path);
  check(is.good(), "cannot open metrics csv: " + path);
  std::string line;
  check(static_cast<bool>(std::getline(is, line)),
        "empty metrics csv: " + path);
  check(line == "metric,kind,rank,field,value",
        "not a telemetry metrics csv (bad header): " + path);

  struct Scalar {
    std::string kind;
    long long total = 0;
    long long max_value = 0;
    int max_rank = 0;
    bool any = false;
  };
  std::map<std::string, Scalar> scalars;     // insertion = catalog order lost,
  std::vector<std::string> scalar_order;     // so keep it explicitly
  std::map<std::string, std::map<std::string, long long>> hist_buckets;
  std::vector<std::string> bucket_order;  // "metric|le" in file order

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> c = split_csv_line(line);
    check(c.size() == 5, "malformed metrics csv row: " + line);
    const std::string& metric = c[0];
    const std::string& kind = c[1];
    const int rank = static_cast<int>(int_cell(c[2], line));
    const std::string& field = c[3];
    const long long value = int_cell(c[4], line);
    if (field.rfind("le=", 0) == 0) {
      auto& buckets = hist_buckets[metric];
      if (buckets.find(field) == buckets.end())
        bucket_order.push_back(metric + "|" + field);
      buckets[field] += value;
      continue;
    }
    // counter/gauge `value` rows and histogram `count` rows roll up the
    // same way: per-rank scalar, summed and max-tracked across ranks.
    Scalar& s = scalars[metric];
    if (!s.any) scalar_order.push_back(metric);
    s.kind = kind;
    s.total += value;
    if (!s.any || value > s.max_value) {
      s.max_value = value;
      s.max_rank = rank;
    }
    s.any = true;
  }

  Table t({"metric", "kind", "total", "max rank", "max value"});
  for (const std::string& name : scalar_order) {
    const Scalar& s = scalars[name];
    t.add(name, s.kind, s.total, s.max_rank, s.max_value);
  }
  os << "metrics (" << scalar_order.size() << ")\n";
  t.print(os);

  if (!bucket_order.empty()) {
    Table h({"histogram", "le", "events (all ranks)"});
    for (const std::string& key : bucket_order) {
      const std::size_t bar = key.find('|');
      const std::string metric = key.substr(0, bar);
      const std::string le = key.substr(bar + 1 + 3);  // strip "le="
      h.add(metric, le, hist_buckets[metric][key.substr(bar + 1)]);
    }
    os << "\nhistogram buckets\n";
    h.print(os);
  }
}

void report_spans(const std::string& path, std::ostream& os) {
  std::ifstream is(path);
  check(is.good(), "cannot open spans csv: " + path);
  std::string line;
  check(static_cast<bool>(std::getline(is, line)),
        "empty spans csv: " + path);
  check(line == "rank,name,cat,depth,t0_s,t1_s,a,b",
        "not a telemetry spans csv (bad header): " + path);

  struct Roll {
    long long count = 0;
    double total_s = 0.0;
  };
  std::map<std::string, Roll> rolls;
  long long events = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> c = split_csv_line(line);
    check(c.size() == 8, "malformed spans csv row: " + line);
    Roll& r = rolls[c[1]];
    ++r.count;
    r.total_s += num_cell(c[5], line) - num_cell(c[4], line);
    ++events;
  }
  Table t({"span", "count", "total", "mean"});
  for (const auto& [name, roll] : rolls)
    t.add(name, roll.count, format_seconds(roll.total_s),
          format_seconds(roll.count ? roll.total_s / roll.count : 0.0));
  os << "\nspans (" << events << " events, " << rolls.size() << " kinds)\n";
  t.print(os);
}

void report_timeline(const std::string& path, std::ostream& os) {
  const std::vector<introspect::FrameMatrix> frames =
      introspect::read_frames_csv(path);
  const std::vector<introspect::WindowMetrics> metrics =
      introspect::analyze_windows(frames);

  Table t({"window", "t0", "t1", "msgs", "bytes", "imbalance", "cos d",
           "l1 d", "phase"});
  int boundaries = 0;
  for (const introspect::WindowMetrics& m : metrics) {
    if (m.boundary) ++boundaries;
    t.add(m.window, format_seconds(m.t0_s), format_seconds(m.t1_s), m.msgs,
          format_bytes(static_cast<double>(m.bytes)), format_sig(m.imbalance),
          m.cos_dist < 0 ? "-" : format_sig(m.cos_dist),
          m.l1_dist < 0 ? "-" : format_sig(m.l1_dist),
          m.boundary ? "*" : "");
  }
  os << "timeline (" << frames.size() << " windows, " << boundaries
     << " phase boundaries)\n";
  t.print(os);

  // Heatmap: the heaviest sender->receiver pairs, one row each, one column
  // per window, intensity scaled to the hottest cell in the view.
  struct Pair {
    std::size_t src, dst;
    unsigned long total;
  };
  std::map<std::pair<std::size_t, std::size_t>, unsigned long> totals;
  for (const introspect::FrameMatrix& f : frames)
    for (std::size_t i = 0; i < f.bytes.rows(); ++i)
      for (std::size_t j = 0; j < f.bytes.cols(); ++j)
        if (f.bytes(i, j) != 0) totals[{i, j}] += f.bytes(i, j);
  std::vector<Pair> pairs;
  pairs.reserve(totals.size());
  for (const auto& [key, total] : totals)
    pairs.push_back({key.first, key.second, total});
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.total != b.total ? a.total > b.total
                              : std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
  });
  constexpr std::size_t kMaxPairs = 16;
  if (pairs.size() > kMaxPairs) pairs.resize(kMaxPairs);
  if (pairs.empty()) return;

  unsigned long hottest = 0;
  for (const Pair& p : pairs)
    for (const introspect::FrameMatrix& f : frames)
      hottest = std::max(hottest, f.bytes(p.src, p.dst));
  static const char kScale[] = " .:-=+*#%@";
  os << "\nheatmap (bytes per window, top " << pairs.size() << " pairs, @ = "
     << format_bytes(static_cast<double>(hottest)) << ")\n";
  for (const Pair& p : pairs) {
    os << "  " << p.src << "->" << p.dst << "\t|";
    for (const introspect::FrameMatrix& f : frames) {
      const unsigned long v = f.bytes(p.src, p.dst);
      const std::size_t level =
          v == 0 ? 0
                 : 1 + static_cast<std::size_t>(
                           static_cast<double>(v) /
                           static_cast<double>(hottest) * 8.999);
      os << kScale[std::min<std::size_t>(level, 9)];
    }
    os << "|\t" << format_bytes(static_cast<double>(p.total)) << " total\n";
  }
}

}  // namespace mpim::tools
