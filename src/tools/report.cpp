#include "tools/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>
#include <vector>

#include "introspect/analyzer.h"
#include "support/error.h"
#include "support/table.h"

namespace mpim::tools {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

/// Strict numeric cells: the whole cell must parse and be finite. A "nan"
/// or "inf" cell is corrupt data, not a number -- std::stod would happily
/// accept both and let the NaN poison every rollup downstream.
double num_cell(const std::string& cell, const std::string& line) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(cell, &used);
  } catch (const std::exception&) {
    fail("bad numeric cell '" + cell + "' in csv row: " + line);
  }
  if (used != cell.size() || !std::isfinite(v))
    fail("bad numeric cell '" + cell + "' in csv row: " + line);
  return v;
}

long long int_cell(const std::string& cell, const std::string& line) {
  const double v = num_cell(cell, line);
  check(v == std::floor(v), "non-integer cell '" + cell + "' in csv row: " + line);
  return static_cast<long long>(v);
}

}  // namespace

void report_metrics(const std::string& path, std::ostream& os) {
  std::ifstream is(path);
  check(is.good(), "cannot open metrics csv: " + path);
  std::string line;
  check(static_cast<bool>(std::getline(is, line)),
        "empty metrics csv: " + path);
  check(line == "metric,kind,rank,field,value",
        "not a telemetry metrics csv (bad header): " + path);

  struct Scalar {
    std::string kind;
    long long total = 0;
    long long max_value = 0;
    int max_rank = 0;
    bool any = false;
  };
  std::map<std::string, Scalar> scalars;     // insertion = catalog order lost,
  std::vector<std::string> scalar_order;     // so keep it explicitly
  std::map<std::string, std::map<std::string, long long>> hist_buckets;
  std::vector<std::string> bucket_order;  // "metric|le" in file order

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> c = split_csv_line(line);
    check(c.size() == 5, "malformed metrics csv row: " + line);
    const std::string& metric = c[0];
    const std::string& kind = c[1];
    const int rank = static_cast<int>(int_cell(c[2], line));
    const std::string& field = c[3];
    const long long value = int_cell(c[4], line);
    if (field.rfind("le=", 0) == 0) {
      auto& buckets = hist_buckets[metric];
      if (buckets.find(field) == buckets.end())
        bucket_order.push_back(metric + "|" + field);
      buckets[field] += value;
      continue;
    }
    // counter/gauge `value` rows and histogram `count` rows roll up the
    // same way: per-rank scalar, summed and max-tracked across ranks.
    Scalar& s = scalars[metric];
    if (!s.any) scalar_order.push_back(metric);
    s.kind = kind;
    s.total += value;
    if (!s.any || value > s.max_value) {
      s.max_value = value;
      s.max_rank = rank;
    }
    s.any = true;
  }

  Table t({"metric", "kind", "total", "max rank", "max value"});
  for (const std::string& name : scalar_order) {
    const Scalar& s = scalars[name];
    t.add(name, s.kind, s.total, s.max_rank, s.max_value);
  }
  os << "metrics (" << scalar_order.size() << ")\n";
  t.print(os);

  if (!bucket_order.empty()) {
    Table h({"histogram", "le", "events (all ranks)"});
    for (const std::string& key : bucket_order) {
      const std::size_t bar = key.find('|');
      const std::string metric = key.substr(0, bar);
      const std::string le = key.substr(bar + 1 + 3);  // strip "le="
      h.add(metric, le, hist_buckets[metric][key.substr(bar + 1)]);
    }
    os << "\nhistogram buckets\n";
    h.print(os);
  }
}

void report_spans(const std::string& path, std::ostream& os) {
  std::ifstream is(path);
  if (!is.good()) {
    os << "\nspans: cannot open " << path << "; skipping span report\n";
    return;
  }
  std::string line;
  if (!std::getline(is, line)) {
    os << "\nspans: " << path << " is empty; skipping span report\n";
    return;
  }
  if (line != "rank,name,cat,depth,t0_s,t1_s,a,b") {
    os << "\nspans: " << path
       << " is not a telemetry spans csv (bad header); skipping span "
          "report\n";
    return;
  }

  struct Roll {
    long long count = 0;
    double total_s = 0.0;
  };
  std::map<std::string, Roll> rolls;
  long long events = 0;
  bool truncated = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    // A torn tail (crash mid-write) must not discard the rows before it:
    // stop at the first malformed row and report what parsed.
    const std::vector<std::string> c = split_csv_line(line);
    if (c.size() != 8) {
      truncated = true;
      break;
    }
    double t0 = 0.0, t1 = 0.0;
    try {
      t0 = num_cell(c[4], line);
      t1 = num_cell(c[5], line);
    } catch (const std::exception&) {
      truncated = true;
      break;
    }
    Roll& r = rolls[c[1]];
    ++r.count;
    r.total_s += t1 - t0;
    ++events;
  }
  Table t({"span", "count", "total", "mean"});
  for (const auto& [name, roll] : rolls)
    t.add(name, roll.count, format_seconds(roll.total_s),
          format_seconds(roll.count ? roll.total_s / roll.count : 0.0));
  os << "\nspans (" << events << " events, " << rolls.size() << " kinds";
  if (truncated) os << ", file truncated after row " << events;
  os << ")\n";
  t.print(os);
  if (truncated)
    os << "note: " << path
       << " ends in a malformed row; rows past it were ignored\n";
}

void report_critpath(const std::string& path, std::ostream& os) {
  std::ifstream is(path);
  check(is.good(), "cannot open critpath csv: " + path);
  std::string line;
  check(static_cast<bool>(std::getline(is, line)),
        "empty critpath csv: " + path);
  check(line == "critpath,v1",
        "not a critpath csv (bad header): " + path);

  struct RankRow {
    int rank = 0;
    long long comm = 0, blame = 0, own = 0, caused = 0;
    long long ls = 0, lr = 0, wc = 0, ri = 0;
    int dom_peer = -1;
    long long dom_peer_ns = 0;
    bool dead = false;
  };
  struct Link {
    int src = 0, dst = 0;
    long long wait = 0, bytes = 0;
    bool cross = false;
  };
  struct Seg {
    int rank = 0;
    double t0 = 0.0, t1 = 0.0;
    int via = -1;
    bool tomb = false;
  };
  long long total_comm = 0, total_wait = 0;
  int dominant_rank = -1;
  std::string dominant_class = "none";
  bool blame_only = false;
  double phase_s = 1e-3;
  std::vector<RankRow> ranks;
  std::vector<Link> links;
  std::map<int, std::pair<long long, std::string>> phase_wait;  // phase->(ns, class of hottest row)
  std::map<int, long long> phase_hottest;
  std::vector<Seg> path_segs;

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> c = split_csv_line(line);
    check(!c.empty(), "malformed critpath csv row: " + line);
    if (c[0] == "total") {
      check(c.size() == 7, "malformed critpath total row: " + line);
      total_comm = int_cell(c[1], line);
      total_wait = int_cell(c[2], line);
      dominant_rank = static_cast<int>(int_cell(c[3], line));
      dominant_class = c[4];
      blame_only = int_cell(c[5], line) != 0;
      phase_s = num_cell(c[6], line);
    } else if (c[0] == "rank") {
      check(c.size() == 13, "malformed critpath rank row: " + line);
      RankRow r;
      r.rank = static_cast<int>(int_cell(c[1], line));
      r.comm = int_cell(c[2], line);
      r.blame = int_cell(c[3], line);
      r.own = int_cell(c[4], line);
      r.caused = int_cell(c[5], line);
      r.ls = int_cell(c[6], line);
      r.lr = int_cell(c[7], line);
      r.wc = int_cell(c[8], line);
      r.ri = int_cell(c[9], line);
      r.dom_peer = static_cast<int>(int_cell(c[10], line));
      r.dom_peer_ns = int_cell(c[11], line);
      r.dead = int_cell(c[12], line) != 0;
      ranks.push_back(r);
    } else if (c[0] == "link") {
      check(c.size() == 6, "malformed critpath link row: " + line);
      links.push_back({static_cast<int>(int_cell(c[1], line)),
                       static_cast<int>(int_cell(c[2], line)),
                       int_cell(c[3], line), int_cell(c[4], line),
                       int_cell(c[5], line) != 0});
    } else if (c[0] == "phase") {
      check(c.size() == 5, "malformed critpath phase row: " + line);
      const int phase = static_cast<int>(int_cell(c[2], line));
      const long long w = int_cell(c[3], line);
      auto& cell = phase_wait[phase];
      cell.first += w;
      if (w > phase_hottest[phase]) {
        phase_hottest[phase] = w;
        cell.second = c[4];
      }
    } else if (c[0] == "path") {
      check(c.size() == 6, "malformed critpath path row: " + line);
      path_segs.push_back({static_cast<int>(int_cell(c[1], line)),
                           num_cell(c[2], line), num_cell(c[3], line),
                           static_cast<int>(int_cell(c[4], line)),
                           int_cell(c[5], line) != 0});
    } else {
      fail("unknown critpath csv section: " + c[0]);
    }
  }

  os << "critical path / wait states";
  if (blame_only) os << " [blame-only: event rings refused]";
  os << "\n";
  os << "communication time : " << format_seconds(1e-9 * total_comm)
     << " (all ranks)\n";
  os << "classified waiting : " << format_seconds(1e-9 * total_wait);
  if (total_comm > 0)
    os << " (" << format_sig(100.0 * total_wait / total_comm) << "% of comm)";
  os << "\n";
  os << "dominant cause     : rank " << dominant_rank << " ("
     << dominant_class << ")\n";

  // Blame shares: comm - own_wait + caused, summing to the total comm time.
  Table bt({"rank", "blame", "share", "own wait", "caused", "dominant class",
            "waits on"});
  for (const RankRow& r : ranks) {
    if (r.comm == 0 && r.blame == 0 && !r.dead) continue;
    // Same rule as the profiler: late_receiver dwell is informational, so
    // it only shows as dominant when no charged class saw any time.
    std::string cls = "-";
    const long long top = std::max({r.ls, r.wc, r.ri});
    if (top > 0) {
      if (top == r.ls) cls = "late_sender";
      else if (top == r.wc) cls = "wait_at_collective";
      else cls = "imbalance_at_root";
    } else if (r.lr > 0) {
      cls = "late_receiver";
    }
    bt.add(std::to_string(r.rank) + (r.dead ? " (dead)" : ""),
           format_seconds(1e-9 * r.blame),
           total_comm > 0
               ? format_sig(100.0 * r.blame / total_comm) + "%"
               : "-",
           format_seconds(1e-9 * r.own), format_seconds(1e-9 * r.caused),
           cls,
           r.dom_peer < 0 ? "-"
                          : std::to_string(r.dom_peer) + " (" +
                                format_seconds(1e-9 * r.dom_peer_ns) + ")");
  }
  os << "\nblame shares (sum = communication time)\n";
  bt.print(os);

  if (!links.empty()) {
    constexpr std::size_t kMaxLinks = 10;
    Table lt({"link", "wait", "bytes", "locality"});
    for (std::size_t i = 0; i < std::min(links.size(), kMaxLinks); ++i)
      lt.add(std::to_string(links[i].src) + "->" + std::to_string(links[i].dst),
             format_seconds(1e-9 * links[i].wait),
             format_bytes(static_cast<double>(links[i].bytes)),
             links[i].cross ? "cross-node" : "intra-node");
    os << "\nhottest links (wait charged src->dst)\n";
    lt.print(os);
  }

  if (!phase_wait.empty()) {
    // Hottest phases only; a long run can carry hundreds of grid cells.
    std::vector<std::pair<int, std::pair<long long, std::string>>> phases(
        phase_wait.begin(), phase_wait.end());
    std::sort(phases.begin(), phases.end(),
              [](const auto& a, const auto& b) {
                return a.second.first != b.second.first
                           ? a.second.first > b.second.first
                           : a.first < b.first;
              });
    constexpr std::size_t kMaxPhases = 12;
    if (phases.size() > kMaxPhases) phases.resize(kMaxPhases);
    std::sort(phases.begin(), phases.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    Table pt({"phase", "t0", "t1", "wait (all ranks)", "dominant class"});
    for (const auto& [phase, cell] : phases)
      pt.add(phase, format_seconds(phase * phase_s),
             format_seconds((phase + 1) * phase_s),
             format_seconds(1e-9 * cell.first), cell.second);
    os << "\nper-phase blame (top " << phases.size() << " of "
       << phase_wait.size() << " phases)\n";
    pt.print(os);
  }

  if (path_segs.empty()) {
    os << "\nno critical path extracted\n";
    return;
  }

  // Lane diagram: one row per rank on the path, time left to right.
  double tmin = path_segs.front().t0, tmax = path_segs.front().t1;
  std::map<int, std::vector<const Seg*>> by_rank;
  for (const Seg& s : path_segs) {
    tmin = std::min(tmin, s.t0);
    tmax = std::max(tmax, s.t1);
    by_rank[s.rank].push_back(&s);
  }
  constexpr int kWidth = 64;
  const double span = tmax > tmin ? tmax - tmin : 1.0;
  auto col = [&](double t) {
    int c = static_cast<int>((t - tmin) / span * (kWidth - 1));
    return std::min(std::max(c, 0), kWidth - 1);
  };
  os << "\ncritical path (" << path_segs.size() << " segments, "
     << format_seconds(tmin) << " .. " << format_seconds(tmax)
     << "; = on path, + hop in, x hop from a dead rank)\n";
  for (const auto& [rank, segs] : by_rank) {
    std::string lane(kWidth, '.');
    for (const Seg* s : segs) {
      const int c0 = col(s->t0), c1 = col(s->t1);
      for (int c = c0; c <= c1; ++c) lane[static_cast<std::size_t>(c)] = '=';
      if (s->via >= 0)
        lane[static_cast<std::size_t>(c0)] = s->tomb ? 'x' : '+';
    }
    os << "  rank " << rank << "\t|" << lane << "|\n";
  }
}

void report_timeline(const std::string& path, std::ostream& os) {
  const std::vector<introspect::FrameMatrix> frames =
      introspect::read_frames_csv(path);
  const std::vector<introspect::WindowMetrics> metrics =
      introspect::analyze_windows(frames);

  Table t({"window", "t0", "t1", "msgs", "bytes", "imbalance", "cos d",
           "l1 d", "phase"});
  int boundaries = 0;
  for (const introspect::WindowMetrics& m : metrics) {
    if (m.boundary) ++boundaries;
    t.add(m.window, format_seconds(m.t0_s), format_seconds(m.t1_s), m.msgs,
          format_bytes(static_cast<double>(m.bytes)), format_sig(m.imbalance),
          m.cos_dist < 0 ? "-" : format_sig(m.cos_dist),
          m.l1_dist < 0 ? "-" : format_sig(m.l1_dist),
          m.boundary ? "*" : "");
  }
  os << "timeline (" << frames.size() << " windows, " << boundaries
     << " phase boundaries)\n";
  t.print(os);

  // Per-link-class mismatch columns, present when the producer annotated
  // the frames against a fabric (analyzer::annotate_link_class_hops).
  std::size_t num_classes = 0;
  for (const introspect::WindowMetrics& m : metrics)
    num_classes = std::max(num_classes, m.class_hops.size());
  if (num_classes == 0) {
    os << "\nno per-link-class mismatch columns (frames csv predates the "
          "fabric annotation; rerun the producer against a fabric)\n";
  } else {
    std::vector<std::string> headers = {"window"};
    for (std::size_t c = 0; c < num_classes; ++c)
      headers.push_back("class " + std::to_string(c));
    headers.push_back("total hops");
    Table ct(headers);
    for (const introspect::WindowMetrics& m : metrics) {
      std::vector<std::string> row = {std::to_string(m.window)};
      double total = 0.0;
      for (std::size_t c = 0; c < num_classes; ++c) {
        const double v = c < m.class_hops.size() ? m.class_hops[c] : 0.0;
        total += v;
        row.push_back(format_sig(v));
      }
      row.push_back(format_sig(total));
      ct.add_row(row);
    }
    os << "\nmismatch byte-hops by link class (class 0 = nic/inter-node)\n";
    ct.print(os);
  }

  // Heatmap: the heaviest sender->receiver pairs, one row each, one column
  // per window, intensity scaled to the hottest cell in the view.
  struct Pair {
    std::size_t src, dst;
    unsigned long total;
  };
  std::map<std::pair<std::size_t, std::size_t>, unsigned long> totals;
  for (const introspect::FrameMatrix& f : frames)
    for (std::size_t i = 0; i < f.bytes.rows(); ++i)
      for (std::size_t j = 0; j < f.bytes.cols(); ++j)
        if (f.bytes(i, j) != 0) totals[{i, j}] += f.bytes(i, j);
  std::vector<Pair> pairs;
  pairs.reserve(totals.size());
  for (const auto& [key, total] : totals)
    pairs.push_back({key.first, key.second, total});
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.total != b.total ? a.total > b.total
                              : std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
  });
  constexpr std::size_t kMaxPairs = 16;
  if (pairs.size() > kMaxPairs) pairs.resize(kMaxPairs);
  if (pairs.empty()) return;

  unsigned long hottest = 0;
  for (const Pair& p : pairs)
    for (const introspect::FrameMatrix& f : frames)
      hottest = std::max(hottest, f.bytes(p.src, p.dst));
  static const char kScale[] = " .:-=+*#%@";
  os << "\nheatmap (bytes per window, top " << pairs.size() << " pairs, @ = "
     << format_bytes(static_cast<double>(hottest)) << ")\n";
  for (const Pair& p : pairs) {
    os << "  " << p.src << "->" << p.dst << "\t|";
    for (const introspect::FrameMatrix& f : frames) {
      const unsigned long v = f.bytes(p.src, p.dst);
      const std::size_t level =
          v == 0 ? 0
                 : 1 + static_cast<std::size_t>(
                           static_cast<double>(v) /
                           static_cast<double>(hottest) * 8.999);
      os << kScale[std::min<std::size_t>(level, 9)];
    }
    os << "|\t" << format_bytes(static_cast<double>(p.total)) << " total\n";
  }
}

}  // namespace mpim::tools
