#include "tools/liveview.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include "support/table.h"

namespace mpim::tools {

namespace {

constexpr std::size_t kEventLaneCap = 12;
constexpr int kBarWidth = 24;
constexpr int kTopTalkers = 8;

/// Finds the raw value text of `key` in a flat one-object JSON line.
/// Returns false when the key is absent.
bool find_value(const std::string& line, const char* key, std::size_t* pos) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *pos = at + needle.size();
  return true;
}

bool json_str(const std::string& line, const char* key, std::string* out) {
  std::size_t p = 0;
  if (!find_value(line, key, &p) || p >= line.size() || line[p] != '"')
    return false;
  std::string v;
  for (std::size_t i = p + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char n = line[++i];
      v += n == 'n' ? '\n' : n == 't' ? '\t' : n;  // enough for our writer
      continue;
    }
    if (c == '"') {
      *out = std::move(v);
      return true;
    }
    v += c;
  }
  return false;  // unterminated string: torn line
}

bool json_num(const std::string& line, const char* key, double* out) {
  std::size_t p = 0;
  if (!find_value(line, key, &p)) return false;
  const char* s = line.c_str() + p;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return false;
  *out = v;
  return true;
}

bool json_i64(const std::string& line, const char* key, long long* out) {
  double v = 0.0;
  if (!json_num(line, key, &v)) return false;
  *out = static_cast<long long>(v);
  return true;
}

void push_event(LiveState& st, std::string text) {
  st.event_lane.push_back(std::move(text));
  while (st.event_lane.size() > kEventLaneCap) st.event_lane.pop_front();
}

std::string bar(std::uint64_t value, std::uint64_t max) {
  const int n =
      max == 0 ? 0
               : static_cast<int>((static_cast<double>(value) * kBarWidth) /
                                  static_cast<double>(max));
  std::string b(static_cast<std::size_t>(std::max(n, value > 0 ? 1 : 0)),
                '#');
  b.resize(kBarWidth, ' ');
  return b;
}

}  // namespace

bool LiveState::apply_line(const std::string& line) {
  std::string type;
  if (line.empty() || line[0] != '{' || line.back() != '}' ||
      !json_str(line, "type", &type)) {
    ++parse_errors;
    return false;
  }
  long long e = -1;
  json_i64(line, "e", &e);
  if (e > max_epoch) max_epoch = e;

  if (type == "run_start") {
    json_str(line, "job", &job);
    long long r = -1;
    if (json_i64(line, "ranks", &r)) ranks = static_cast<int>(r);
    json_num(line, "epoch_s", &epoch_s);
  } else if (type == "epoch") {
    last_epoch = e;
  } else if (type == "metric") {
    std::string name;
    long long rank = -1, delta = 0;
    if (!json_str(line, "name", &name) || !json_i64(line, "rank", &rank) ||
        !json_i64(line, "delta", &delta)) {
      ++parse_errors;
      return false;
    }
    metric_totals[name] += static_cast<std::uint64_t>(delta);
    if (name == "engine_bytes")
      rank_bytes[static_cast<int>(rank)] += static_cast<std::uint64_t>(delta);
    else if (name == "engine_messages")
      rank_msgs[static_cast<int>(rank)] += static_cast<std::uint64_t>(delta);
  } else if (type == "frame") {
    long long rank = -1, boundary = 0;
    json_i64(line, "rank", &rank);
    json_i64(line, "boundary", &boundary);
    if (boundary != 0)
      push_event(*this, "e" + std::to_string(e) + " r" +
                            std::to_string(rank) + " phase boundary");
  } else if (type == "span") {
    std::string cat, name;
    long long rank = -1;
    json_str(line, "cat", &cat);
    json_str(line, "name", &name);
    json_i64(line, "rank", &rank);
    push_event(*this, "e" + std::to_string(e) + " r" + std::to_string(rank) +
                          " span[" + cat + "] " + name);
  } else if (type == "event") {
    std::string what, name;
    long long rank = -1;
    if (!json_str(line, "what", &what)) {
      ++parse_errors;
      return false;
    }
    json_i64(line, "rank", &rank);
    json_str(line, "name", &name);
    push_event(*this, "e" + std::to_string(e) + " r" + std::to_string(rank) +
                          " " + what + (name.empty() ? "" : " " + name));
  } else if (type == "link") {
    long long node = -1, tx = 0;
    if (!json_i64(line, "node", &node) || !json_i64(line, "tx", &tx)) {
      ++parse_errors;
      return false;
    }
    node_tx[static_cast<int>(node)] += static_cast<std::uint64_t>(tx);
    node_tx_epoch[static_cast<int>(node)] = static_cast<std::uint64_t>(tx);
  } else if (type == "epoch_end") {
    long long d = 0;
    if (json_i64(line, "drops", &d)) drops = static_cast<std::uint64_t>(d);
  } else if (type == "finding") {
    std::string text;
    if (json_str(line, "text", &text)) findings.push_back(std::move(text));
  } else if (type == "run_end") {
    run_ended = true;
    long long ep = 0, d = 0;
    if (json_i64(line, "epochs", &ep))
      run_end_epochs = static_cast<std::uint64_t>(ep);
    if (json_i64(line, "drops", &d)) drops = static_cast<std::uint64_t>(d);
  } else {
    ++parse_errors;
    return false;
  }
  ++lines;
  return true;
}

StreamTail::StreamTail(std::string path) : path_(std::move(path)) {}

std::size_t StreamTail::poll() {
  std::ifstream f(path_, std::ios::binary);
  if (!f) return 0;
  f.seekg(0, std::ios::end);
  const auto end = f.tellg();
  if (end < 0 || static_cast<std::uint64_t>(end) <= offset_) return 0;
  f.seekg(static_cast<std::streamoff>(offset_));
  std::string chunk(static_cast<std::size_t>(end) - offset_, '\0');
  f.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  chunk.resize(static_cast<std::size_t>(f.gcount()));
  offset_ += chunk.size();

  std::size_t applied = 0;
  std::size_t start = 0;
  partial_ += chunk;
  std::string buf = std::move(partial_);
  partial_.clear();
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != '\n') continue;
    const std::string line = buf.substr(start, i - start);
    start = i + 1;
    if (line.empty()) continue;
    if (state_.apply_line(line)) ++applied;
  }
  partial_ = buf.substr(start);  // torn tail: wait for its newline
  return applied;
}

void render_live(const LiveState& st, std::ostream& os) {
  os << "== mpim stream: job " << (st.job.empty() ? "?" : st.job) << ", "
     << (st.ranks > 0 ? std::to_string(st.ranks) : "?") << " ranks, epoch "
     << st.epoch_s << "s ==\n";
  os << "epoch " << st.last_epoch << " (max " << st.max_epoch << "), "
     << st.lines << " lines, " << st.parse_errors << " skipped, "
     << st.drops << " plane drops"
     << (st.run_ended ? " [run ended]" : "") << "\n\n";

  std::vector<std::pair<int, std::uint64_t>> talkers(st.rank_bytes.begin(),
                                                     st.rank_bytes.end());
  std::sort(talkers.begin(), talkers.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  if (talkers.size() > kTopTalkers) talkers.resize(kTopTalkers);
  if (!talkers.empty()) {
    os << "top talkers (bytes sent)\n";
    const std::uint64_t max = talkers.front().second;
    for (const auto& [rank, bytes] : talkers) {
      auto msgs = st.rank_msgs.find(rank);
      os << "  r" << rank << " |" << bar(bytes, max) << "| "
         << format_bytes(static_cast<double>(bytes)) << ", "
         << (msgs != st.rank_msgs.end() ? msgs->second : 0) << " msgs\n";
    }
    os << "\n";
  }

  if (!st.node_tx.empty()) {
    os << "link utilization (last epoch tx / cumulative)\n";
    std::uint64_t max = 0;
    for (const auto& [node, tx] : st.node_tx_epoch) max = std::max(max, tx);
    for (const auto& [node, total] : st.node_tx) {
      auto ep = st.node_tx_epoch.find(node);
      const std::uint64_t last = ep != st.node_tx_epoch.end() ? ep->second : 0;
      os << "  node" << node << " |" << bar(last, max) << "| "
         << format_bytes(static_cast<double>(last)) << " / "
         << format_bytes(static_cast<double>(total)) << "\n";
    }
    os << "\n";
  }

  if (!st.event_lane.empty()) {
    os << "events\n";
    for (const std::string& ev : st.event_lane) os << "  " << ev << "\n";
    os << "\n";
  }

  if (!st.findings.empty()) {
    os << "findings\n";
    for (const std::string& f : st.findings) os << "  - " << f << "\n";
  }
}

int run_live(const std::string& path, bool once, int interval_ms) {
  StreamTail tail(path);
  if (once) {
    tail.poll();
    if (tail.state().lines == 0 && tail.state().parse_errors == 0) {
      std::fprintf(stderr, "monview --live: no stream data in %s\n",
                   path.c_str());
      return 1;
    }
    std::ostringstream os;
    render_live(tail.state(), os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
  }
  for (;;) {
    tail.poll();
    std::ostringstream os;
    render_live(tail.state(), os);
    // One clear + one write per frame keeps flicker down on real terminals.
    std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(os.str().c_str(), stdout);
    std::fflush(stdout);
    if (tail.state().run_ended) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        interval_ms > 0 ? interval_ms : 200));
  }
}

}  // namespace mpim::tools
