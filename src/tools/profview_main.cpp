// profview / monview: offline report tools.
//
//   profview <base>.<rank>.prof            per-rank row profile
//   profview --matrix <base>_sizes.N.prof  rootflush matrix + summary
//   profview --report <metrics.csv> [spans.csv]
//                                          telemetry report (monview mode)
//   profview --timeline <frames.csv>       per-window snapshot timeline
//
// The same source builds the `monview` binary, which is the report mode
// without the flag: `monview <metrics.csv> [spans.csv]` renders the files
// written by telemetry::write_metrics_csv / write_spans_csv, and
// `monview --timeline <frames.csv>` the per-window matrices written by
// introspect::write_frames_csv (or an MPI_M_get_frames dump).
#include <cstdio>
#include <cstring>
#include <iostream>

#include "support/error.h"
#include "support/table.h"
#include "tools/liveview.h"
#include "tools/prof_reader.h"
#include "tools/report.h"

namespace {

using mpim::Table;

int run_report(int argc, char** argv, int first) {
  if (first >= argc) {
    std::fprintf(stderr, "report mode needs <metrics.csv> [spans.csv]\n");
    return 2;
  }
  mpim::tools::report_metrics(argv[first], std::cout);
  if (first + 1 < argc) mpim::tools::report_spans(argv[first + 1], std::cout);
  return 0;
}

int run_live(int argc, char** argv, int first) {
  const char* path = nullptr;
  bool once = false;
  int interval_ms = 200;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "--live: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "--live needs <stream.jsonl> [--once] [--interval-ms N]\n");
    return 2;
  }
  return mpim::tools::run_live(path, once, interval_ms);
}

int run_timeline(int argc, char** argv, int first) {
  if (first >= argc) {
    std::fprintf(stderr, "--timeline needs <frames.csv>\n");
    return 2;
  }
  mpim::tools::report_timeline(argv[first], std::cout);
  return 0;
}

int run_critpath(int argc, char** argv, int first) {
  if (first >= argc) {
    std::fprintf(stderr, "--critical-path needs <critpath.csv>\n");
    return 2;
  }
  mpim::tools::report_critpath(argv[first], std::cout);
  return 0;
}

bool invoked_as_monview(const char* argv0) {
  const char* slash = std::strrchr(argv0, '/');
  const char* base = slash ? slash + 1 : argv0;
  return std::strcmp(base, "monview") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpim;
  const bool monview = invoked_as_monview(argv[0]);
  if (argc < 2) {
    if (monview) {
      std::fprintf(stderr,
                   "usage: %s <metrics.csv> [spans.csv]\n"
                   "       %s --timeline <frames.csv>\n"
                   "       %s --critical-path <critpath.csv>\n"
                   "       %s --live <stream.jsonl> [--once] "
                   "[--interval-ms N]\n",
                   argv[0], argv[0], argv[0], argv[0]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--matrix] <file.prof>\n"
                   "       %s --report <metrics.csv> [spans.csv]\n"
                   "       %s --timeline <frames.csv>\n"
                   "       %s --critical-path <critpath.csv>\n"
                   "       %s --live <stream.jsonl> [--once] "
                   "[--interval-ms N]\n"
                   "  default: per-rank profile (MPI_M_flush output)\n"
                   "  --matrix: n x n matrix (MPI_M_rootflush output)\n"
                   "  --report: telemetry metrics/span report (monview)\n"
                   "  --timeline: per-window snapshot timeline + heatmap\n"
                   "  --critical-path: blame shares + wait states + path "
                   "lanes (critpath csv)\n"
                   "  --live: dashboard over an MPIM_STREAM_FILE JSONL\n",
                   argv[0], argv[0], argv[0], argv[0], argv[0]);
    }
    return 2;
  }
  try {
    if (std::strcmp(argv[1], "--timeline") == 0)
      return run_timeline(argc, argv, 2);
    if (std::strcmp(argv[1], "--critical-path") == 0)
      return run_critpath(argc, argv, 2);
    if (std::strcmp(argv[1], "--live") == 0) return run_live(argc, argv, 2);
    if (monview) return run_report(argc, argv, 1);
    if (std::strcmp(argv[1], "--report") == 0)
      return run_report(argc, argv, 2);
    if (std::strcmp(argv[1], "--matrix") == 0) {
      if (argc < 3) {
        std::fprintf(stderr, "--matrix needs a file\n");
        return 2;
      }
      const CommMatrix m = tools::read_matrix_profile(argv[2]);
      const auto s = tools::summarize(m);
      std::printf("matrix order %zu\n", m.rows());
      std::printf("total volume        : %s\n",
                  format_bytes(static_cast<double>(s.total)).c_str());
      std::printf("heaviest pair       : %zu -> %zu (%s)\n", s.heaviest_src,
                  s.heaviest_dst,
                  format_bytes(static_cast<double>(s.heaviest_value)).c_str());
      std::printf("off-diagonal density: %.1f%%\n", 100.0 * s.density);
      Table t({"sender", "total sent", "heaviest peer"});
      for (std::size_t i = 0; i < m.rows(); ++i) {
        unsigned long row_total = 0, best_v = 0;
        std::size_t best_j = 0;
        for (std::size_t j = 0; j < m.cols(); ++j) {
          row_total += m(i, j);
          if (m(i, j) > best_v) {
            best_v = m(i, j);
            best_j = j;
          }
        }
        if (row_total)
          t.add(i, format_bytes(static_cast<double>(row_total)),
                std::to_string(best_j) + " (" +
                    format_bytes(static_cast<double>(best_v)) + ")");
      }
      t.print(std::cout);
      return 0;
    }

    const auto prof = tools::read_rank_profile(argv[1]);
    std::printf("rank %d of %d, flags %s\n", prof.rank, prof.comm_size,
                prof.flags.c_str());
    Table t({"peer", "messages", "bytes"});
    for (std::size_t p = 0; p < prof.counts.size(); ++p)
      if (prof.counts[p] || prof.sizes[p])
        t.add(p, prof.counts[p],
              format_bytes(static_cast<double>(prof.sizes[p])));
    t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", monview ? "monview" : "profview",
                 e.what());
    return 1;
  }
}
