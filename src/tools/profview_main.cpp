// profview / monview: offline report tools.
//
//   profview <base>.<rank>.prof            per-rank row profile
//   profview --matrix <base>_sizes.N.prof  rootflush matrix + summary
//   profview --report <metrics.csv> [spans.csv]
//                                          telemetry report (monview mode)
//
// The same source builds the `monview` binary, which is the report mode
// without the flag: `monview <metrics.csv> [spans.csv]` renders the files
// written by telemetry::write_metrics_csv / write_spans_csv.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/table.h"
#include "tools/prof_reader.h"

namespace {

using mpim::Table;

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

/// Renders the metric,kind,rank,field,value CSV written by
/// telemetry::write_metrics_csv: a scalar rollup (totals + busiest rank)
/// and a merged bucket table for each histogram.
void report_metrics(const std::string& path) {
  std::ifstream is(path);
  mpim::check(is.good(), "cannot open metrics csv: " + path);
  std::string line;
  mpim::check(static_cast<bool>(std::getline(is, line)),
              "empty metrics csv: " + path);
  mpim::check(line == "metric,kind,rank,field,value",
              "not a telemetry metrics csv (bad header): " + path);

  struct Scalar {
    std::string kind;
    long long total = 0;
    long long max_value = 0;
    int max_rank = 0;
    bool any = false;
  };
  std::map<std::string, Scalar> scalars;     // insertion = catalog order lost,
  std::vector<std::string> scalar_order;     // so keep it explicitly
  std::map<std::string, std::map<std::string, long long>> hist_buckets;
  std::vector<std::string> bucket_order;  // "metric|le" in file order

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> c = split_csv_line(line);
    mpim::check(c.size() == 5, "malformed metrics csv row: " + line);
    const std::string& metric = c[0];
    const std::string& kind = c[1];
    const int rank = std::stoi(c[2]);
    const std::string& field = c[3];
    const long long value = std::stoll(c[4]);
    if (field.rfind("le=", 0) == 0) {
      auto& buckets = hist_buckets[metric];
      if (buckets.find(field) == buckets.end())
        bucket_order.push_back(metric + "|" + field);
      buckets[field] += value;
      continue;
    }
    // counter/gauge `value` rows and histogram `count` rows roll up the
    // same way: per-rank scalar, summed and max-tracked across ranks.
    Scalar& s = scalars[metric];
    if (!s.any) scalar_order.push_back(metric);
    s.kind = kind;
    s.total += value;
    if (!s.any || value > s.max_value) {
      s.max_value = value;
      s.max_rank = rank;
    }
    s.any = true;
  }

  Table t({"metric", "kind", "total", "max rank", "max value"});
  for (const std::string& name : scalar_order) {
    const Scalar& s = scalars[name];
    t.add(name, s.kind, s.total, s.max_rank, s.max_value);
  }
  std::printf("metrics (%zu)\n", scalar_order.size());
  t.print(std::cout);

  if (!bucket_order.empty()) {
    Table h({"histogram", "le", "events (all ranks)"});
    for (const std::string& key : bucket_order) {
      const std::size_t bar = key.find('|');
      const std::string metric = key.substr(0, bar);
      const std::string le = key.substr(bar + 1 + 3);  // strip "le="
      h.add(metric, le, hist_buckets[metric][key.substr(bar + 1)]);
    }
    std::printf("\nhistogram buckets\n");
    h.print(std::cout);
  }
}

/// Renders the rank,name,cat,depth,t0_s,t1_s,a,b CSV written by
/// telemetry::write_spans_csv as a per-name duration rollup.
void report_spans(const std::string& path) {
  std::ifstream is(path);
  mpim::check(is.good(), "cannot open spans csv: " + path);
  std::string line;
  mpim::check(static_cast<bool>(std::getline(is, line)),
              "empty spans csv: " + path);
  mpim::check(line == "rank,name,cat,depth,t0_s,t1_s,a,b",
              "not a telemetry spans csv (bad header): " + path);

  struct Roll {
    long long count = 0;
    double total_s = 0.0;
  };
  std::map<std::string, Roll> rolls;
  long long events = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> c = split_csv_line(line);
    mpim::check(c.size() == 8, "malformed spans csv row: " + line);
    Roll& r = rolls[c[1]];
    ++r.count;
    r.total_s += std::stod(c[5]) - std::stod(c[4]);
    ++events;
  }
  Table t({"span", "count", "total", "mean"});
  for (const auto& [name, roll] : rolls)
    t.add(name, roll.count, mpim::format_seconds(roll.total_s),
          mpim::format_seconds(roll.count ? roll.total_s / roll.count : 0.0));
  std::printf("\nspans (%lld events, %zu kinds)\n", events, rolls.size());
  t.print(std::cout);
}

int run_report(int argc, char** argv, int first) {
  if (first >= argc) {
    std::fprintf(stderr, "report mode needs <metrics.csv> [spans.csv]\n");
    return 2;
  }
  report_metrics(argv[first]);
  if (first + 1 < argc) report_spans(argv[first + 1]);
  return 0;
}

bool invoked_as_monview(const char* argv0) {
  const char* slash = std::strrchr(argv0, '/');
  const char* base = slash ? slash + 1 : argv0;
  return std::strcmp(base, "monview") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpim;
  const bool monview = invoked_as_monview(argv[0]);
  if (argc < 2) {
    if (monview) {
      std::fprintf(stderr, "usage: %s <metrics.csv> [spans.csv]\n", argv[0]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--matrix] <file.prof>\n"
                   "       %s --report <metrics.csv> [spans.csv]\n"
                   "  default: per-rank profile (MPI_M_flush output)\n"
                   "  --matrix: n x n matrix (MPI_M_rootflush output)\n"
                   "  --report: telemetry metrics/span report (monview)\n",
                   argv[0], argv[0]);
    }
    return 2;
  }
  try {
    if (monview) return run_report(argc, argv, 1);
    if (std::strcmp(argv[1], "--report") == 0)
      return run_report(argc, argv, 2);
    if (std::strcmp(argv[1], "--matrix") == 0) {
      if (argc < 3) {
        std::fprintf(stderr, "--matrix needs a file\n");
        return 2;
      }
      const CommMatrix m = tools::read_matrix_profile(argv[2]);
      const auto s = tools::summarize(m);
      std::printf("matrix order %zu\n", m.rows());
      std::printf("total volume        : %s\n",
                  format_bytes(static_cast<double>(s.total)).c_str());
      std::printf("heaviest pair       : %zu -> %zu (%s)\n", s.heaviest_src,
                  s.heaviest_dst,
                  format_bytes(static_cast<double>(s.heaviest_value)).c_str());
      std::printf("off-diagonal density: %.1f%%\n", 100.0 * s.density);
      Table t({"sender", "total sent", "heaviest peer"});
      for (std::size_t i = 0; i < m.rows(); ++i) {
        unsigned long row_total = 0, best_v = 0;
        std::size_t best_j = 0;
        for (std::size_t j = 0; j < m.cols(); ++j) {
          row_total += m(i, j);
          if (m(i, j) > best_v) {
            best_v = m(i, j);
            best_j = j;
          }
        }
        if (row_total)
          t.add(i, format_bytes(static_cast<double>(row_total)),
                std::to_string(best_j) + " (" +
                    format_bytes(static_cast<double>(best_v)) + ")");
      }
      t.print(std::cout);
      return 0;
    }

    const auto prof = tools::read_rank_profile(argv[1]);
    std::printf("rank %d of %d, flags %s\n", prof.rank, prof.comm_size,
                prof.flags.c_str());
    Table t({"peer", "messages", "bytes"});
    for (std::size_t p = 0; p < prof.counts.size(); ++p)
      if (prof.counts[p] || prof.sizes[p])
        t.add(p, prof.counts[p],
              format_bytes(static_cast<double>(prof.sizes[p])));
    t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", monview ? "monview" : "profview",
                 e.what());
    return 1;
  }
}
