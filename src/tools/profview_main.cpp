// profview: pretty-print .prof files written by MPI_M_flush/rootflush.
//
//   profview <base>.<rank>.prof            per-rank row profile
//   profview --matrix <base>_sizes.N.prof  rootflush matrix + summary
#include <cstdio>
#include <cstring>
#include <iostream>

#include "support/table.h"
#include "tools/prof_reader.h"

int main(int argc, char** argv) {
  using namespace mpim;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s [--matrix] <file.prof>\n"
                 "  default: per-rank profile (MPI_M_flush output)\n"
                 "  --matrix: n x n matrix (MPI_M_rootflush output)\n",
                 argv[0]);
    return 2;
  }
  try {
    if (std::strcmp(argv[1], "--matrix") == 0) {
      if (argc < 3) {
        std::fprintf(stderr, "--matrix needs a file\n");
        return 2;
      }
      const CommMatrix m = tools::read_matrix_profile(argv[2]);
      const auto s = tools::summarize(m);
      std::printf("matrix order %zu\n", m.rows());
      std::printf("total volume        : %s\n",
                  format_bytes(static_cast<double>(s.total)).c_str());
      std::printf("heaviest pair       : %zu -> %zu (%s)\n", s.heaviest_src,
                  s.heaviest_dst,
                  format_bytes(static_cast<double>(s.heaviest_value)).c_str());
      std::printf("off-diagonal density: %.1f%%\n", 100.0 * s.density);
      Table t({"sender", "total sent", "heaviest peer"});
      for (std::size_t i = 0; i < m.rows(); ++i) {
        unsigned long row_total = 0, best_v = 0;
        std::size_t best_j = 0;
        for (std::size_t j = 0; j < m.cols(); ++j) {
          row_total += m(i, j);
          if (m(i, j) > best_v) {
            best_v = m(i, j);
            best_j = j;
          }
        }
        if (row_total)
          t.add(i, format_bytes(static_cast<double>(row_total)),
                std::to_string(best_j) + " (" +
                    format_bytes(static_cast<double>(best_v)) + ")");
      }
      t.print(std::cout);
      return 0;
    }

    const auto prof = tools::read_rank_profile(argv[1]);
    std::printf("rank %d of %d, flags %s\n", prof.rank, prof.comm_size,
                prof.flags.c_str());
    Table t({"peer", "messages", "bytes"});
    for (std::size_t p = 0; p < prof.counts.size(); ++p)
      if (prof.counts[p] || prof.sizes[p])
        t.add(p, prof.counts[p],
              format_bytes(static_cast<double>(prof.sizes[p])));
    t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "profview: %s\n", e.what());
    return 1;
  }
}
