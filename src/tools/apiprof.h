// An API-level profiler in the spirit of the paper's related work
// (PMPI-based tools such as mpiP and DUMPI, Section 2).
//
// It wraps the user-facing MPI calls, counting invocations, bytes and
// virtual time per operation *above* the collective decomposition. Its
// point in this repository is the contrast: apiprof sees "one bcast of
// 4 MB" while the introspection library sees the binomial tree of
// point-to-point messages underneath -- the distinction the paper builds
// its case on (and the ablation bench quantifies).
//
// Usage: construct a Profiler per rank, route the communication through
// its wrappers (prof.send(...), prof.bcast(...)), then write_report().
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "minimpi/api.h"

namespace mpim::tools {

enum class ApiOp : std::uint8_t {
  send,
  recv,
  sendrecv,
  bcast,
  reduce,
  allreduce,
  gather,
  scatter,
  allgather,
  alltoall,
  barrier,
  kCount,
};

const char* api_op_name(ApiOp op);

struct OpStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;    ///< payload bytes of the *call arguments*
  double time_s = 0.0;        ///< virtual time spent inside the call
};

class Profiler {
 public:
  /// Per-rank object; `comm` only scopes the per-peer p2p accounting.
  explicit Profiler(const mpi::Comm& comm);

  // --- wrapped operations ----------------------------------------------
  void send(const void* buf, std::size_t count, mpi::Type type, int dst,
            int tag, const mpi::Comm& comm);
  mpi::Status recv(void* buf, std::size_t count, mpi::Type type, int src,
                   int tag, const mpi::Comm& comm);
  void bcast(void* buf, std::size_t count, mpi::Type type, int root,
             const mpi::Comm& comm);
  void reduce(const void* sendbuf, void* recvbuf, std::size_t count,
              mpi::Type type, mpi::Op op, int root, const mpi::Comm& comm);
  void allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
                 mpi::Type type, mpi::Op op, const mpi::Comm& comm);
  void allgather(const void* sendbuf, std::size_t count, mpi::Type type,
                 void* recvbuf, const mpi::Comm& comm);
  void barrier(const mpi::Comm& comm);

  // --- results -----------------------------------------------------------
  const OpStats& stats(ApiOp op) const;
  /// Per-peer bytes this rank *explicitly addressed* with point-to-point
  /// sends. Collectives contribute nothing here: the API level cannot
  /// attribute their traffic to peers -- that is the whole point.
  const std::vector<std::uint64_t>& p2p_bytes_by_peer() const {
    return p2p_bytes_;
  }

  double total_time_s() const;
  std::uint64_t total_calls() const;

  /// mpiP-style per-operation report.
  void write_report(std::ostream& os, int rank) const;

 private:
  template <typename Fn>
  void timed_op(ApiOp op, std::uint64_t bytes, Fn&& fn);

  std::array<OpStats, static_cast<std::size_t>(ApiOp::kCount)> stats_{};
  std::vector<std::uint64_t> p2p_bytes_;
};

}  // namespace mpim::tools
