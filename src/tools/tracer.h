// Post-mortem event tracer: the EZtrace-style baseline from the paper's
// related work (Section 2). Records every monitored packet with its
// virtual timestamp, per sending rank, and can dump a merged trace file
// and summary statistics after the run.
//
// Contrast with the introspection library: the trace is complete but only
// usable *post mortem* — the application cannot query it cheaply at
// runtime to, e.g., reorder its ranks.
//
// Storage is one bounded telemetry ring per sending rank: recording is a
// single unguarded slot write on the sender's own thread (the per-event
// mutex of the original design is gone), memory is fixed at
// capacity_per_rank events, and overflow surfaces as events_dropped()
// instead of unbounded growth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/engine.h"
#include "mpit/runtime.h"
#include "telemetry/ring.h"

namespace mpim::tools {

struct TraceEvent {
  double time_s = 0.0;
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  mpi::CommKind kind = mpi::CommKind::p2p;
  int tag = 0;
  /// Transmission attempts charged by the fault plan (1 = first try).
  int attempts = 1;
};

class Tracer {
 public:
  /// Registers an event listener with the runtime. The Tracer must
  /// outlive every Engine::run it observes. `capacity_per_rank` bounds the
  /// ring each sending rank records into; the oldest events are
  /// overwritten on overflow and counted in events_dropped().
  explicit Tracer(mpit::Runtime& runtime,
                  std::size_t capacity_per_rank = 1u << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void clear();

  /// All retained events merged and sorted by (time, src, dst).
  std::vector<TraceEvent> merged_events() const;
  /// Retained events (excludes overwritten ones).
  std::size_t event_count() const;
  /// Events lost to ring wraparound, summed over ranks.
  std::uint64_t events_dropped() const;

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t by_kind_events[3] = {0, 0, 0};  ///< p2p, coll, osc
    std::uint64_t retransmit_attempts = 0;        ///< sum of (attempts - 1)
    double first_time_s = 0.0;
    double last_time_s = 0.0;
    double mean_bytes = 0.0;
  };
  Stats stats() const;

  /// Writes a text trace: "time src dst bytes kind tag" per line, sorted.
  void write_trace(const std::string& path) const;

 private:
  std::vector<std::unique_ptr<telemetry::Ring<TraceEvent>>> per_rank_;
  bool enabled_ = true;
};

}  // namespace mpim::tools
