// Post-mortem event tracer: the EZtrace-style baseline from the paper's
// related work (Section 2). Records every monitored packet with its
// virtual timestamp, per sending rank, and can dump a merged trace file
// and summary statistics after the run.
//
// Contrast with the introspection library: the trace is complete but only
// usable *post mortem* — the application cannot query it cheaply at
// runtime to, e.g., reorder its ranks. (It also grows with the message
// count, whereas sessions are O(peers).)
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "minimpi/engine.h"
#include "mpit/runtime.h"

namespace mpim::tools {

struct TraceEvent {
  double time_s = 0.0;
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  mpi::CommKind kind = mpi::CommKind::p2p;
  int tag = 0;
};

class Tracer {
 public:
  /// Registers an event listener with the runtime. The Tracer must
  /// outlive every Engine::run it observes.
  explicit Tracer(mpit::Runtime& runtime);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void clear();

  /// All recorded events merged and sorted by (time, src, dst).
  std::vector<TraceEvent> merged_events() const;
  std::size_t event_count() const;

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t by_kind_events[3] = {0, 0, 0};  ///< p2p, coll, osc
    double first_time_s = 0.0;
    double last_time_s = 0.0;
    double mean_bytes = 0.0;
  };
  Stats stats() const;

  /// Writes a text trace: "time src dst bytes kind tag" per line, sorted.
  void write_trace(const std::string& path) const;

 private:
  struct PerRank {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };
  std::vector<std::unique_ptr<PerRank>> per_rank_;
  bool enabled_ = true;
};

}  // namespace mpim::tools
