// monview --live: terminal dashboard over the streaming plane's JSONL
// file (MPIM_STREAM_FILE). The tailer is deliberately forgiving -- the
// writer appends per epoch and may be mid-line (or dead) when we read, and
// late epochs may arrive out of order -- so every malformed line is
// counted and skipped, never fatal. Parsing is a small flat-object field
// scanner rather than a JSON library: the schema is one object per line,
// no nesting, written by obsplane::Plane.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace mpim::tools {

/// Rolling aggregate of everything seen on the stream so far.
struct LiveState {
  std::string job;
  int ranks = -1;          ///< from run_start; -1 until seen
  double epoch_s = 0.0;
  long last_epoch = -1;    ///< most recent epoch header applied
  long max_epoch = -1;     ///< highest epoch seen (>= last on reorder)
  std::uint64_t lines = 0;         ///< well-formed lines applied
  std::uint64_t parse_errors = 0;  ///< torn/garbage lines skipped
  std::uint64_t drops = 0;         ///< plane-side drop counter (last seen)
  bool run_ended = false;
  std::uint64_t run_end_epochs = 0;

  std::map<std::string, std::uint64_t> metric_totals;  ///< name -> sum(delta)
  std::map<int, std::uint64_t> rank_bytes;  ///< engine_bytes by rank
  std::map<int, std::uint64_t> rank_msgs;   ///< engine_messages by rank
  std::map<int, std::uint64_t> node_tx;         ///< cumulative link tx/node
  std::map<int, std::uint64_t> node_tx_epoch;   ///< last-epoch tx/node
  std::deque<std::string> event_lane;  ///< recent events, newest last
  std::vector<std::string> findings;

  /// Applies one complete stream line. False (and a parse_errors bump)
  /// for anything unrecognized.
  bool apply_line(const std::string& line);
};

/// Incremental tailer: each poll() reads lines appended since the last
/// one, keeping a torn trailing line buffered until its newline lands.
class StreamTail {
 public:
  explicit StreamTail(std::string path);

  /// Reads and applies newly completed lines; returns how many.
  std::size_t poll();

  const LiveState& state() const { return state_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  std::string partial_;
  LiveState state_;
};

/// Renders the dashboard (top talkers, per-node link bars, event lane,
/// findings) as plain text -- the live loop adds the screen clearing.
void render_live(const LiveState& state, std::ostream& os);

/// The `monview --live` loop: poll/render every `interval_ms` until the
/// stream's run_end arrives (or immediately with `once`). Returns a
/// shell-style exit code; a missing file is an error only with `once`.
int run_live(const std::string& path, bool once, int interval_ms);

}  // namespace mpim::tools
