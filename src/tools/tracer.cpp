#include "tools/tracer.h"

#include <algorithm>
#include <fstream>

#include "support/error.h"

namespace mpim::tools {

Tracer::Tracer(mpit::Runtime& runtime, std::size_t capacity_per_rank) {
  per_rank_.reserve(static_cast<std::size_t>(runtime.engine().world_size()));
  for (int r = 0; r < runtime.engine().world_size(); ++r)
    per_rank_.push_back(
        std::make_unique<telemetry::Ring<TraceEvent>>(capacity_per_rank));
  runtime.add_event_listener([this](const mpi::PktInfo& pkt) {
    if (!enabled_) return;
    // Only the sending rank's thread pushes into its ring, so the
    // single-writer contract of Ring holds without a lock.
    per_rank_[static_cast<std::size_t>(pkt.src_world)]->push(
        TraceEvent{pkt.send_time_s, pkt.src_world, pkt.dst_world, pkt.bytes,
                   pkt.kind, pkt.tag, pkt.attempts});
  });
}

void Tracer::clear() {
  for (auto& ring : per_rank_) ring->clear();
}

std::vector<TraceEvent> Tracer::merged_events() const {
  std::vector<TraceEvent> out;
  for (const auto& ring : per_rank_) {
    const std::vector<TraceEvent> events = ring->snapshot();
    out.insert(out.end(), events.begin(), events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  return out;
}

std::size_t Tracer::event_count() const {
  std::size_t acc = 0;
  for (const auto& ring : per_rank_) acc += ring->size();
  return acc;
}

std::uint64_t Tracer::events_dropped() const {
  std::uint64_t acc = 0;
  for (const auto& ring : per_rank_) acc += ring->dropped();
  return acc;
}

Tracer::Stats Tracer::stats() const {
  Stats out;
  bool first = true;
  for (const auto& ring : per_rank_) {
    for (const TraceEvent& e : ring->snapshot()) {
      ++out.events;
      out.total_bytes += e.bytes;
      const auto kind_idx = static_cast<std::size_t>(e.kind);
      if (kind_idx < 3) ++out.by_kind_events[kind_idx];
      if (e.attempts > 1)
        out.retransmit_attempts += static_cast<std::uint64_t>(e.attempts - 1);
      if (first || e.time_s < out.first_time_s) out.first_time_s = e.time_s;
      if (first || e.time_s > out.last_time_s) out.last_time_s = e.time_s;
      first = false;
    }
  }
  out.mean_bytes = out.events == 0 ? 0.0
                                   : static_cast<double>(out.total_bytes) /
                                         static_cast<double>(out.events);
  return out;
}

void Tracer::write_trace(const std::string& path) const {
  std::ofstream os(path);
  check(os.good(), "cannot open trace output: " + path);
  os << "# time_s src dst bytes kind tag\n";
  for (const TraceEvent& e : merged_events())
    os << e.time_s << " " << e.src << " " << e.dst << " " << e.bytes << " "
       << mpi::comm_kind_name(e.kind) << " " << e.tag << "\n";
  check(os.good(), "trace write failed: " + path);
}

}  // namespace mpim::tools
