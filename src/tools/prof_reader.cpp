#include "tools/prof_reader.h"

#include <fstream>
#include <sstream>

#include "support/error.h"

namespace mpim::tools {

RankProfile read_rank_profile(const std::string& path) {
  std::ifstream is(path);
  check(is.good(), "cannot open profile file: " + path);
  RankProfile out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# rank R of N, flags f" header carries the metadata.
      std::istringstream hs(line);
      std::string word;
      while (hs >> word) {
        if (word == "rank") hs >> out.rank;
        else if (word == "of") {
          std::string n;
          hs >> n;
          if (!n.empty() && n.back() == ',') n.pop_back();
          out.comm_size = std::stoi(n);
        } else if (word == "flags") {
          hs >> out.flags;
        }
      }
      continue;
    }
    std::istringstream ls(line);
    std::size_t peer = 0;
    unsigned long count = 0, bytes = 0;
    check(static_cast<bool>(ls >> peer >> count >> bytes),
          "malformed profile row in " + path);
    check(peer == out.counts.size(), "non-sequential peer index in " + path);
    out.counts.push_back(count);
    out.sizes.push_back(bytes);
  }
  check(!out.counts.empty(), "empty profile file: " + path);
  if (out.comm_size == 0) out.comm_size = static_cast<int>(out.counts.size());
  check(out.counts.size() == static_cast<std::size_t>(out.comm_size),
        "row count does not match communicator size in " + path);
  return out;
}

CommMatrix read_matrix_profile(const std::string& path) {
  std::ifstream is(path);
  check(is.good(), "cannot open profile file: " + path);
  std::vector<std::vector<unsigned long>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::vector<unsigned long> row;
    unsigned long v;
    while (ls >> v) row.push_back(v);
    check(!row.empty(), "empty matrix row in " + path);
    rows.push_back(std::move(row));
  }
  check(!rows.empty(), "no matrix rows in " + path);
  const std::size_t n = rows.size();
  for (const auto& row : rows)
    check(row.size() == n, "matrix in " + path + " is not square");
  CommMatrix m = CommMatrix::square(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rows[i][j];
  return m;
}

MatrixSummary summarize(const CommMatrix& m) {
  MatrixSummary out;
  std::size_t nonzero = 0;
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const unsigned long v = m(i, j);
      out.total += v;
      if (v > 0) ++nonzero;
      if (v > out.heaviest_value) {
        out.heaviest_value = v;
        out.heaviest_src = i;
        out.heaviest_dst = j;
      }
    }
  }
  const std::size_t off_diag = n * n - n;
  out.density = off_diag == 0
                    ? 0.0
                    : static_cast<double>(nonzero) /
                          static_cast<double>(off_diag);
  return out;
}

}  // namespace mpim::tools
