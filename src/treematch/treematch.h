// TreeMatch-style topology-aware process placement.
//
// Given the affinity between n processes and a hierarchical machine, find
// an assignment of processes to processing-unit slots that keeps heavily
// communicating processes under deep common ancestors. The implementation
// is a deterministic top-down recursive partitioner: at every tree vertex
// the processes are split into per-child groups (group sizes = child slot
// capacities) by greedy heaviest-edge agglomeration. Because the cost
// model only depends on the depth of the common ancestor, sibling subtrees
// are interchangeable and the greedy group->child assignment loses nothing.
//
// Divergence from upstream TreeMatch (Jeannot, Mercier, Tessier, TPDS'14)
// documented in DESIGN.md: the per-level k-partite group optimization is
// replaced by this greedy, which scales to the Table-1 orders (65 536) on
// sparse affinity graphs while keeping the same hierarchy-driven structure.
#pragma once

#include <vector>

#include "netmodel/cost_model.h"
#include "support/matrix.h"
#include "topo/topology.h"
#include "treematch/affinity.h"

namespace mpim::tm {

/// process -> leaf (processing unit) over the whole machine. Requires
/// n <= topo.num_leaves().
std::vector<int> treematch_leaves(const AffinityGraph& affinity,
                                  const topo::Topology& topo);

/// process -> slot index, where slot s is the processing unit
/// `slot_leaves[s]`. Requires n <= slot_leaves.size(). This is the
/// rank-reordering form: slots are the cores the job already occupies.
std::vector<int> treematch_slots(const AffinityGraph& affinity,
                                 const topo::Topology& topo,
                                 const std::vector<int>& slot_leaves);

/// Convenience overloads taking the raw monitored byte matrix.
std::vector<int> treematch_leaves(const CommMatrix& bytes,
                                  const topo::Topology& topo);
std::vector<int> treematch_slots(const CommMatrix& bytes,
                                 const topo::Topology& topo,
                                 const std::vector<int>& slot_leaves);

/// Fabric forms: partition against the fabric's locality hierarchy level
/// by level (switch tiers / dragonfly groups included), so heavy pairs
/// land under shallow network routes, not just on the same node.
std::vector<int> treematch_leaves(const AffinityGraph& affinity,
                                  const topo::Fabric& fabric);
std::vector<int> treematch_slots(const AffinityGraph& affinity,
                                 const topo::Fabric& fabric,
                                 const std::vector<int>& slot_leaves);

/// Modeled total cost of running pattern `bytes` when process i sits on
/// leaf `process_to_leaf[i]` -- the objective treematch reduces. Delegates
/// to net::CostModel::pattern_cost (route-aware on routed fabrics).
double mapping_cost(const CommMatrix& bytes,
                    const std::vector<int>& process_to_leaf,
                    const net::CostModel& cost);

/// Sparse form: never materializes the dense matrix (Table-1 orders).
/// Charges each undirected edge with half its symmetrized weight per
/// direction; equal to the dense objective on symmetric patterns up to
/// floating-point association.
double mapping_cost(const AffinityGraph& affinity,
                    const std::vector<int>& process_to_leaf,
                    const net::CostModel& cost);

}  // namespace mpim::tm
