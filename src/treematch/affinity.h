// Symmetric weighted affinity graph between processes.
//
// TreeMatch consumes the *affinity* of processes: how many bytes (or
// messages) each pair exchanged, direction ignored. Dense communication
// matrices (what MPI_M_allgather_data returns) convert losslessly; very
// large instances (Table 1 goes to order 65 536) use the sparse edge form
// directly.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/matrix.h"

namespace mpim::tm {

struct Edge {
  int u = 0;
  int v = 0;
  double w = 0.0;
};

class AffinityGraph {
 public:
  explicit AffinityGraph(std::size_t n);

  /// Symmetrizes: w(i,j) = m(i,j) + m(j,i). Zero entries are skipped.
  static AffinityGraph from_dense(const CommMatrix& m);

  std::size_t size() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Accumulates weight on the undirected pair {u, v}; u == v is ignored
  /// (self-traffic never moves between PUs).
  void add_edge(int u, int v, double w);

  /// Call once after the last add_edge (merges duplicate pairs, builds
  /// adjacency). Idempotent.
  void finalize();

  const std::vector<Edge>& edges() const;  ///< finalized, unordered pairs u<v
  /// Neighbors of u with weights (finalized).
  const std::vector<std::pair<int, double>>& neighbors(int u) const;

  /// Total affinity of one vertex (sum of incident edge weights).
  double degree_weight(int u) const;

  /// Subgraph induced by `vertices` (global ids), renumbered 0..k-1 in the
  /// order given.
  AffinityGraph induced(const std::vector<int>& vertices) const;

 private:
  bool finalized_ = false;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<int, double>>> adjacency_;
};

}  // namespace mpim::tm
