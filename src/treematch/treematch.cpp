#include "treematch/treematch.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "support/error.h"

namespace mpim::tm {

namespace {

/// Greedy partition of the graph's vertices into groups of prescribed
/// sizes (sum >= vertex count; later groups may stay underfilled when the
/// vertices run out -- callers order sizes so that packing happens first).
/// Deterministic: ties break toward smaller vertex ids.
std::vector<std::vector<int>> greedy_partition(
    const AffinityGraph& g, const std::vector<int>& sizes) {
  const int n = static_cast<int>(g.size());
  std::vector<std::vector<int>> groups(sizes.size());

  std::vector<bool> grouped(static_cast<std::size_t>(n), false);
  int remaining = n;

  // Edges sorted by weight desc (ties: vertex ids asc) for seeding.
  std::vector<Edge> edges = g.edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.w != b.w) return a.w > b.w;
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::size_t edge_cursor = 0;

  // Cursor over vertex ids for zero-affinity fill.
  int id_cursor = 0;
  auto next_free_id = [&] {
    while (id_cursor < n && grouped[static_cast<std::size_t>(id_cursor)])
      ++id_cursor;
    return id_cursor;
  };

  // Connection strength of each vertex to the group currently being grown,
  // with an epoch stamp so we never clear the whole array.
  std::vector<double> conn(static_cast<std::size_t>(n), 0.0);
  std::vector<int> conn_epoch(static_cast<std::size_t>(n), -1);
  int epoch = 0;

  for (std::size_t gi = 0; gi < sizes.size() && remaining > 0; ++gi) {
    const int target = std::min(sizes[gi], remaining);
    if (target <= 0) continue;
    std::vector<int>& group = groups[gi];
    group.reserve(static_cast<std::size_t>(target));
    ++epoch;

    // Max-heap of (conn, -id) with lazy invalidation.
    using HeapItem = std::pair<double, int>;  // (weight, -vertex)
    std::priority_queue<HeapItem> heap;

    auto add_member = [&](int u) {
      group.push_back(u);
      grouped[static_cast<std::size_t>(u)] = true;
      --remaining;
      for (const auto& [v, w] : g.neighbors(u)) {
        if (grouped[static_cast<std::size_t>(v)]) continue;
        auto vi = static_cast<std::size_t>(v);
        if (conn_epoch[vi] != epoch) {
          conn_epoch[vi] = epoch;
          conn[vi] = 0.0;
        }
        conn[vi] += w;
        heap.emplace(conn[vi], -v);
      }
    };

    // Seed with the heaviest edge both of whose endpoints are free.
    while (edge_cursor < edges.size()) {
      const Edge& e = edges[edge_cursor];
      if (!grouped[static_cast<std::size_t>(e.u)] &&
          !grouped[static_cast<std::size_t>(e.v)])
        break;
      ++edge_cursor;
    }
    if (target >= 2 && edge_cursor < edges.size()) {
      add_member(edges[edge_cursor].u);
      add_member(edges[edge_cursor].v);
    } else {
      add_member(next_free_id());
    }

    while (static_cast<int>(group.size()) < target && remaining > 0) {
      int pick = -1;
      while (!heap.empty()) {
        const auto [w, neg_v] = heap.top();
        const int v = -neg_v;
        const auto vi = static_cast<std::size_t>(v);
        if (grouped[vi] || conn_epoch[vi] != epoch || conn[vi] != w) {
          heap.pop();  // stale entry
          continue;
        }
        pick = v;
        heap.pop();
        break;
      }
      if (pick < 0) pick = next_free_id();
      add_member(pick);
    }
  }
  check(remaining == 0, "greedy_partition: slot capacities too small");
  return groups;
}

/// Kernighan-Lin refinement of one group pair. Exact for the hierarchical
/// objective: sibling subtrees are interchangeable under the cost model,
/// so only the cut *between* the two groups matters. Returns true if the
/// partition improved. Deterministic (ties resolve to smallest ids).
bool kl_refine_pair(const AffinityGraph& g, std::vector<int>& a,
                    std::vector<int>& b) {
  const int n = static_cast<int>(g.size());
  if (a.empty() || b.empty()) return false;

  // side[v]: 0 in a, 1 in b, -1 elsewhere; lock[v] marks swapped vertices.
  std::vector<signed char> side(static_cast<std::size_t>(n), -1);
  std::vector<bool> locked(static_cast<std::size_t>(n), false);
  for (int v : a) side[static_cast<std::size_t>(v)] = 0;
  for (int v : b) side[static_cast<std::size_t>(v)] = 1;

  // D[v] = external - internal connection of v w.r.t. the pair.
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  // Pair-local weight lookup table (the KL inner loop is quadratic in the
  // group sizes; per-edge adjacency scans there would dominate).
  std::unordered_map<std::uint64_t, double> pair_weight;
  auto weight_key = [n](int u, int v) {
    return static_cast<std::uint64_t>(u) * static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(v);
  };
  auto fill_weights = [&](const std::vector<int>& verts) {
    for (int v : verts)
      for (const auto& [u, w] : g.neighbors(v))
        if (side[static_cast<std::size_t>(u)] >= 0)
          pair_weight.emplace(weight_key(v, u), w);
  };
  fill_weights(a);
  fill_weights(b);
  auto weight = [&](int u, int v) {
    const auto it = pair_weight.find(weight_key(u, v));
    return it == pair_weight.end() ? 0.0 : it->second;
  };
  for (int v : a)
    for (const auto& [u, w] : g.neighbors(v)) {
      if (side[static_cast<std::size_t>(u)] == 1) d[static_cast<std::size_t>(v)] += w;
      if (side[static_cast<std::size_t>(u)] == 0) d[static_cast<std::size_t>(v)] -= w;
    }
  for (int v : b)
    for (const auto& [u, w] : g.neighbors(v)) {
      if (side[static_cast<std::size_t>(u)] == 0) d[static_cast<std::size_t>(v)] += w;
      if (side[static_cast<std::size_t>(u)] == 1) d[static_cast<std::size_t>(v)] -= w;
    }

  struct Swap {
    int va, vb;
    double gain;
  };
  std::vector<Swap> sequence;
  const std::size_t steps = std::min(a.size(), b.size());
  double cumulative = 0.0, best_cum = 0.0;
  std::size_t best_len = 0;

  for (std::size_t step = 0; step < steps; ++step) {
    int best_a = -1, best_b = -1;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (int va : a) {
      if (locked[static_cast<std::size_t>(va)]) continue;
      for (int vb : b) {
        if (locked[static_cast<std::size_t>(vb)]) continue;
        const double gain = d[static_cast<std::size_t>(va)] +
                            d[static_cast<std::size_t>(vb)] -
                            2.0 * weight(va, vb);
        if (gain > best_gain ||
            (gain == best_gain &&
             (va < best_a || (va == best_a && vb < best_b)))) {
          best_gain = gain;
          best_a = va;
          best_b = vb;
        }
      }
    }
    if (best_a < 0) break;
    locked[static_cast<std::size_t>(best_a)] = true;
    locked[static_cast<std::size_t>(best_b)] = true;
    sequence.push_back(Swap{best_a, best_b, best_gain});
    cumulative += best_gain;
    if (cumulative > best_cum + 1e-12) {
      best_cum = cumulative;
      best_len = sequence.size();
    }
    // Update D of unlocked vertices as if the swap were applied.
    for (const auto& [u, w] : g.neighbors(best_a)) {
      const auto ui = static_cast<std::size_t>(u);
      if (locked[ui] || side[ui] < 0) continue;
      d[ui] += (side[ui] == 0 ? 2.0 : -2.0) * w;
    }
    for (const auto& [u, w] : g.neighbors(best_b)) {
      const auto ui = static_cast<std::size_t>(u);
      if (locked[ui] || side[ui] < 0) continue;
      d[ui] += (side[ui] == 1 ? 2.0 : -2.0) * w;
    }
  }

  if (best_len == 0) return false;
  for (std::size_t i = 0; i < best_len; ++i) {
    auto ita = std::find(a.begin(), a.end(), sequence[i].va);
    auto itb = std::find(b.begin(), b.end(), sequence[i].vb);
    std::iter_swap(ita, itb);
  }
  return true;
}

/// Pairwise KL over all sibling groups until a fixed point (bounded number
/// of passes). Skipped for very wide partitions (Table-1 scale) where the
/// quadratic pair enumeration would dominate, and per pair when either
/// group is large (fat-tree pods hold hundreds of slots at np=4096; the
/// KL inner loop is cubic in group size); the greedy result stands there.
void kl_refine(const AffinityGraph& g, std::vector<std::vector<int>>& groups) {
  constexpr std::size_t kMaxGroupsForRefine = 64;
  constexpr std::size_t kMaxGroupSizeForRefine = 64;
  constexpr int kMaxPasses = 4;
  if (groups.size() > kMaxGroupsForRefine) return;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < groups.size(); ++i)
      for (std::size_t j = i + 1; j < groups.size(); ++j) {
        if (groups[i].size() > kMaxGroupSizeForRefine ||
            groups[j].size() > kMaxGroupSizeForRefine)
          continue;
        improved |= kl_refine_pair(g, groups[i], groups[j]);
      }
    if (!improved) break;
  }
}

struct Slot {
  int index = 0;  ///< caller-visible slot id
  int leaf = 0;   ///< processing unit
};

/// Recursive top-down placement; objects carry their global process ids.
void solve(const AffinityGraph& graph, const std::vector<int>& object_ids,
           const std::vector<Slot>& slots, int depth,
           const topo::Topology& topo, std::vector<int>& out) {
  check(object_ids.size() <= slots.size(),
        "treematch: more processes than slots in subtree");
  if (object_ids.empty()) return;
  if (object_ids.size() == 1) {
    out[static_cast<std::size_t>(object_ids[0])] = slots[0].index;
    return;
  }
  check(depth < topo.depth(), "treematch: distinct processes on one leaf");

  // Split the (leaf-sorted) slots by their depth+1 ancestor.
  struct Child {
    int vertex;
    std::vector<Slot> slots;
  };
  std::vector<Child> children;
  for (const Slot& s : slots) {
    const int v = topo.ancestor_index(s.leaf, depth + 1);
    if (children.empty() || children.back().vertex != v)
      children.push_back(Child{v, {}});
    children.back().slots.push_back(s);
  }
  if (children.size() == 1) {
    solve(graph, object_ids, children[0].slots, depth + 1, topo, out);
    return;
  }

  // Pack into the roomiest children first so heavy groups stay together
  // (ties: topology order).
  std::vector<int> order(children.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return children[static_cast<std::size_t>(a)].slots.size() >
           children[static_cast<std::size_t>(b)].slots.size();
  });
  std::vector<int> sizes(order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    sizes[i] = static_cast<int>(
        children[static_cast<std::size_t>(order[i])].slots.size());

  auto groups = greedy_partition(graph, sizes);
  kl_refine(graph, groups);

  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& local_group = groups[i];
    if (local_group.empty()) continue;
    const Child& child = children[static_cast<std::size_t>(order[i])];
    std::vector<int> child_objects;
    child_objects.reserve(local_group.size());
    for (int local : local_group)
      child_objects.push_back(object_ids[static_cast<std::size_t>(local)]);
    // Keep determinism independent of group formation order.
    std::sort(child_objects.begin(), child_objects.end());

    std::vector<int> local_ids;  // positions within object_ids
    local_ids.reserve(child_objects.size());
    for (int obj : child_objects) {
      const auto it =
          std::lower_bound(object_ids.begin(), object_ids.end(), obj);
      local_ids.push_back(static_cast<int>(it - object_ids.begin()));
    }
    const AffinityGraph sub = [&] {
      std::vector<int> verts = local_ids;
      return graph.induced(verts);
    }();
    solve(sub, child_objects, child.slots, depth + 1, topo, out);
  }
}

}  // namespace

std::vector<int> treematch_slots(const AffinityGraph& affinity,
                                 const topo::Topology& topo,
                                 const std::vector<int>& slot_leaves) {
  const std::size_t n = affinity.size();
  check(n <= slot_leaves.size(), "treematch: more processes than slots");

  std::vector<Slot> slots(slot_leaves.size());
  for (std::size_t s = 0; s < slot_leaves.size(); ++s)
    slots[s] = Slot{static_cast<int>(s), slot_leaves[s]};
  std::sort(slots.begin(), slots.end(),
            [](const Slot& a, const Slot& b) { return a.leaf < b.leaf; });

  std::vector<int> object_ids(n);
  std::iota(object_ids.begin(), object_ids.end(), 0);

  std::vector<int> out(n, -1);
  solve(affinity, object_ids, slots, 0, topo, out);
  for (int s : out) check(s >= 0, "treematch: unassigned process");
  return out;
}

std::vector<int> treematch_leaves(const AffinityGraph& affinity,
                                  const topo::Topology& topo) {
  std::vector<int> all_leaves(static_cast<std::size_t>(topo.num_leaves()));
  std::iota(all_leaves.begin(), all_leaves.end(), 0);
  // Slot index == leaf id when slots cover the whole machine in order.
  return treematch_slots(affinity, topo, all_leaves);
}

std::vector<int> treematch_leaves(const CommMatrix& bytes,
                                  const topo::Topology& topo) {
  return treematch_leaves(AffinityGraph::from_dense(bytes), topo);
}

std::vector<int> treematch_slots(const CommMatrix& bytes,
                                 const topo::Topology& topo,
                                 const std::vector<int>& slot_leaves) {
  return treematch_slots(AffinityGraph::from_dense(bytes), topo, slot_leaves);
}

std::vector<int> treematch_leaves(const AffinityGraph& affinity,
                                  const topo::Fabric& fabric) {
  return treematch_leaves(affinity, fabric.hierarchy());
}

std::vector<int> treematch_slots(const AffinityGraph& affinity,
                                 const topo::Fabric& fabric,
                                 const std::vector<int>& slot_leaves) {
  return treematch_slots(affinity, fabric.hierarchy(), slot_leaves);
}

double mapping_cost(const CommMatrix& bytes,
                    const std::vector<int>& process_to_leaf,
                    const net::CostModel& cost) {
  return cost.pattern_cost(bytes, process_to_leaf);
}

double mapping_cost(const AffinityGraph& affinity,
                    const std::vector<int>& process_to_leaf,
                    const net::CostModel& cost) {
  double total = 0.0;
  for (const Edge& e : affinity.edges()) {
    const int a = process_to_leaf[static_cast<std::size_t>(e.u)];
    const int b = process_to_leaf[static_cast<std::size_t>(e.v)];
    // The symmetrized weight is split evenly per direction, so on patterns
    // whose dense matrix is symmetric this matches pattern_cost up to
    // floating-point association.
    total += cost.latency(a, b) + cost.latency(b, a) +
             0.5 * e.w *
                 (cost.serialization_time(a, b, 1) +
                  cost.serialization_time(b, a, 1));
  }
  return total;
}

}  // namespace mpim::tm
