#include "treematch/affinity.h"

#include <algorithm>
#include <unordered_map>

#include "support/error.h"

namespace mpim::tm {

AffinityGraph::AffinityGraph(std::size_t n) : adjacency_(n) {}

AffinityGraph AffinityGraph::from_dense(const CommMatrix& m) {
  check(m.rows() == m.cols(), "affinity needs a square matrix");
  AffinityGraph g(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.cols(); ++j) {
      const double w =
          static_cast<double>(m(i, j)) + static_cast<double>(m(j, i));
      if (w > 0.0)
        g.add_edge(static_cast<int>(i), static_cast<int>(j), w);
    }
  }
  g.finalize();
  return g;
}

void AffinityGraph::add_edge(int u, int v, double w) {
  check(!finalized_, "add_edge after finalize");
  check(u >= 0 && v >= 0 && u < static_cast<int>(size()) &&
            v < static_cast<int>(size()),
        "affinity vertex out of range");
  check(w >= 0.0, "negative affinity weight");
  if (u == v || w == 0.0) return;
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v, w});
}

void AffinityGraph::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Merge duplicate pairs deterministically.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges_.size();) {
    Edge merged = edges_[i];
    std::size_t j = i + 1;
    while (j < edges_.size() && edges_[j].u == merged.u &&
           edges_[j].v == merged.v) {
      merged.w += edges_[j].w;
      ++j;
    }
    edges_[out++] = merged;
    i = j;
  }
  edges_.resize(out);
  for (const Edge& e : edges_) {
    adjacency_[static_cast<std::size_t>(e.u)].emplace_back(e.v, e.w);
    adjacency_[static_cast<std::size_t>(e.v)].emplace_back(e.u, e.w);
  }
}

const std::vector<Edge>& AffinityGraph::edges() const {
  check(finalized_, "graph not finalized");
  return edges_;
}

const std::vector<std::pair<int, double>>& AffinityGraph::neighbors(
    int u) const {
  check(finalized_, "graph not finalized");
  return adjacency_.at(static_cast<std::size_t>(u));
}

double AffinityGraph::degree_weight(int u) const {
  double acc = 0.0;
  for (const auto& [v, w] : neighbors(u)) {
    (void)v;
    acc += w;
  }
  return acc;
}

AffinityGraph AffinityGraph::induced(const std::vector<int>& vertices) const {
  check(finalized_, "graph not finalized");
  std::unordered_map<int, int> local;
  local.reserve(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i)
    local.emplace(vertices[i], static_cast<int>(i));
  AffinityGraph g(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (const auto& [v, w] : neighbors(vertices[i])) {
      auto it = local.find(v);
      if (it != local.end() && static_cast<int>(i) < it->second)
        g.add_edge(static_cast<int>(i), it->second, w);
    }
  }
  g.finalize();
  return g;
}

}  // namespace mpim::tm
