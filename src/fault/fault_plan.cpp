#include "fault/fault_plan.h"

#include "support/error.h"
#include "support/rng.h"

namespace mpim::fault {

namespace {

bool link_matches(const LinkFault& f, int src, int dst) {
  return (f.src < 0 || f.src == src) && (f.dst < 0 || f.dst == dst);
}

bool rank_matches(const RankFault& f, int rank) {
  return f.rank < 0 || f.rank == rank;
}

}  // namespace

void FaultPlan::add(const LinkFault& fault) {
  check(fault.drop_prob >= 0.0 && fault.drop_prob < 1.0,
        "drop probability must be in [0, 1)");
  check(fault.delay_jitter_s >= 0.0, "negative delay jitter");
  check(fault.max_retransmits >= 0, "negative retransmit count");
  check(fault.retransmit_backoff_s >= 0.0, "negative retransmit backoff");
  check(fault.degrade_factor >= 1.0,
        "degrade factor must be >= 1 (a slowdown)");
  link_faults_.push_back(fault);
}

void FaultPlan::add(const RankFault& fault) {
  check(fault.crash_at_s >= 0.0, "crash time before the start of the run");
  check(fault.slowdown >= 1.0, "slowdown must be >= 1");
  check(fault.stall_virtual_s >= 0.0 && fault.stall_wall_s >= 0.0,
        "negative stall duration");
  rank_faults_.push_back(fault);
}

void FaultPlan::begin_run(int world_size) {
  check(world_size > 0, "fault plan needs a positive world size");
  world_size_ = world_size;
  link_msg_index_.assign(
      static_cast<std::size_t>(world_size) * static_cast<std::size_t>(world_size),
      0ull);
  stall_taken_.assign(static_cast<std::size_t>(world_size), 0);
}

double FaultPlan::draw(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                       std::uint64_t d) const {
  std::uint64_t s = seed_ ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xbf58476d1ce4e5b9ULL) ^ (c * 0x94d049bb133111ebULL) ^
                    (d * 0x2545f4914f6cdd1dULL);
  const std::uint64_t bits = splitmix64(s);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

SendFaults FaultPlan::on_send(int src, int dst, std::size_t /*bytes*/,
                              double now_s) {
  SendFaults out;
  if (link_faults_.empty()) return out;
  check(world_size_ > 0, "FaultPlan::begin_run not called");
  const std::size_t link = static_cast<std::size_t>(src) *
                               static_cast<std::size_t>(world_size_) +
                           static_cast<std::size_t>(dst);
  const std::uint64_t index = link_msg_index_[link]++;

  std::uint64_t stream = 0;  // distinct draw stream per fault entry
  for (const LinkFault& f : link_faults_) {
    ++stream;
    if (!link_matches(f, src, dst)) continue;
    if (f.delay_jitter_s > 0.0)
      out.latency_extra_s +=
          f.delay_jitter_s * draw(link, index, stream, /*attempt=*/0);
    if (f.degrade_factor > 1.0 && now_s >= f.degrade_from_s &&
        now_s < f.degrade_until_s)
      out.tx_scale *= f.degrade_factor;
    if (f.drop_prob > 0.0) {
      double backoff = f.retransmit_backoff_s;
      int attempt = 1;
      while (draw(link, index, stream, static_cast<std::uint64_t>(attempt)) <
             f.drop_prob) {
        if (attempt > f.max_retransmits) {
          out.lost = true;
          break;
        }
        out.sender_extra_s += backoff;
        backoff *= 2.0;
        ++attempt;
      }
      out.attempts += attempt - 1;
      if (out.lost) break;
    }
  }
  return out;
}

double FaultPlan::crash_at(int rank) const {
  double t = kNever;
  for (const RankFault& f : rank_faults_)
    if (rank_matches(f, rank) && f.crash_at_s < t) t = f.crash_at_s;
  return t;
}

double FaultPlan::slowdown(int rank) const {
  double s = 1.0;
  for (const RankFault& f : rank_faults_)
    if (rank_matches(f, rank)) s *= f.slowdown;
  return s;
}

bool FaultPlan::take_stall(int rank, double now_s, double* virtual_s,
                           double* wall_s) {
  *virtual_s = 0.0;
  *wall_s = 0.0;
  if (rank_faults_.empty()) return false;
  check(world_size_ > 0, "FaultPlan::begin_run not called");
  auto& taken = stall_taken_[static_cast<std::size_t>(rank)];
  if (taken) return false;
  bool hit = false;
  for (const RankFault& f : rank_faults_) {
    if (!rank_matches(f, rank) || now_s < f.stall_at_s) continue;
    *virtual_s += f.stall_virtual_s;
    *wall_s += f.stall_wall_s;
    hit = true;
  }
  if (hit) taken = 1;
  return hit;
}

}  // namespace mpim::fault
