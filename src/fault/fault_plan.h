// Deterministic fault injection for the virtual-time engine.
//
// A FaultPlan is a seeded description of everything that can go wrong on a
// run: per-link delay jitter, probabilistic message drop with sender
// retransmit/backoff, link-bandwidth degradation windows, rank crashes at a
// virtual time, and rank stalls/slowdowns. The engine consults the plan on
// every send and at every operation boundary, so faults are part of the
// simulated program, not of the host schedule.
//
// Determinism guarantee: every random draw is a pure function of
// (seed, src, dst, per-link message index, attempt). The per-link message
// index only advances on the sending rank's own thread (a rank's sends on a
// link are program-ordered), so the same seed and the same program produce
// bit-identical virtual clocks on every run, regardless of how the host
// scheduler interleaves rank threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mpim::fault {

inline constexpr double kNever = std::numeric_limits<double>::infinity();

/// Faults applied to messages on a directed link, in world-rank space.
/// src/dst of -1 are wildcards matching any rank; all matching entries are
/// applied in the order they were added.
struct LinkFault {
  int src = -1;
  int dst = -1;
  /// Uniform extra latency in [0, delay_jitter_s) per delivered message.
  double delay_jitter_s = 0.0;
  /// Per-attempt probability that a transmission is lost on the wire.
  double drop_prob = 0.0;
  /// Retransmissions the sender attempts after a loss before declaring the
  /// message lost for good.
  int max_retransmits = 8;
  /// Sender backoff before the first retransmission; doubles per attempt.
  double retransmit_backoff_s = 1.0e-6;
  /// Bandwidth degradation window: inside virtual [from, until) the
  /// serialization time of matching messages is multiplied by
  /// degrade_factor (e.g. 4.0 models a link at a quarter of its bandwidth).
  double degrade_from_s = 0.0;
  double degrade_until_s = 0.0;
  double degrade_factor = 1.0;
};

/// Faults applied to one rank (world-rank space; -1 matches every rank).
struct RankFault {
  int rank = -1;
  /// The rank dies the moment its virtual clock reaches this time.
  double crash_at_s = kNever;
  /// One-shot stall: the first time the clock crosses stall_at_s the rank
  /// pauses for stall_virtual_s of virtual time and (optionally)
  /// stall_wall_s of host wall time. The wall component exists so that
  /// wall-clock recovery timeouts (gather timeouts, watchdogs) have
  /// something real to race against; it never touches virtual clocks.
  double stall_at_s = kNever;
  double stall_virtual_s = 0.0;
  double stall_wall_s = 0.0;
  /// Multiplies every compute/advance duration of the rank (>= 1 slows).
  double slowdown = 1.0;
};

/// What the engine must do with one send. Produced by FaultPlan::on_send.
struct SendFaults {
  /// Extra virtual time the sender spends before the final transmission
  /// (retransmit backoffs). The engine additionally charges one
  /// serialization time per failed attempt.
  double sender_extra_s = 0.0;
  /// Extra one-way latency of the delivered message (delay jitter).
  double latency_extra_s = 0.0;
  /// Serialization-time multiplier (bandwidth degradation windows).
  double tx_scale = 1.0;
  /// Total transmission attempts (1 = delivered first try).
  int attempts = 1;
  /// All attempts were dropped: the message is never delivered.
  bool lost = false;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  void add(const LinkFault& fault);
  void add(const RankFault& fault);

  bool has_link_faults() const { return !link_faults_.empty(); }
  const std::vector<LinkFault>& link_faults() const { return link_faults_; }
  bool has_rank_faults() const { return !rank_faults_.empty(); }

  // --- engine-facing interface ---------------------------------------------

  /// Resets the per-run state (message counters, one-shot stall flags).
  /// Called by Engine::run so repeated runs replay identical faults.
  void begin_run(int world_size);

  /// Consulted by the sending rank for every outgoing message. Mutates the
  /// (src, dst) message counter; must only be called from src's thread.
  SendFaults on_send(int src, int dst, std::size_t bytes, double now_s);

  /// Virtual time at which `rank` crashes; kNever when it does not.
  double crash_at(int rank) const;

  /// Compute-duration multiplier of `rank` (1.0 = nominal speed).
  double slowdown(int rank) const;

  /// One-shot stall: the first call with now_s >= stall_at_s returns true
  /// and the stall durations; later calls return false. Must only be
  /// called from the rank's own thread.
  bool take_stall(int rank, double now_s, double* virtual_s, double* wall_s);

 private:
  /// Deterministic uniform [0, 1) draw from the plan seed and a message
  /// identity (link, per-link index, attempt, stream discriminator).
  double draw(std::uint64_t a, std::uint64_t b, std::uint64_t c,
              std::uint64_t d) const;

  std::uint64_t seed_ = 0;
  std::vector<LinkFault> link_faults_;
  std::vector<RankFault> rank_faults_;

  int world_size_ = 0;
  std::vector<std::uint64_t> link_msg_index_;  ///< src * world_size + dst
  std::vector<std::uint8_t> stall_taken_;      ///< per rank, this run
};

}  // namespace mpim::fault
