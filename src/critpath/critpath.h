// Causal critical-path and wait-state profiler.
//
// A happens-before event graph captured from the virtual-clock engine:
// send->recv edges (PktInfo::send_seq names the edge), collective
// decomposition children (CommKind::coll packets), and intra-rank program
// order (each rank's bounded event ring is chronological because its clock
// is monotone). On top of the graph:
//
//   * online wait-state classification at every receive completion --
//     late-sender, late-receiver, wait-at-collective, imbalance-at-root --
//     charged in virtual nanoseconds per (rank, peer, communicator, phase);
//   * backward critical-path extraction over the bounded rings at run end,
//     yielding per-rank / per-link / per-phase blame shares that sum to the
//     end-to-end communication time (the identity is exact by construction:
//     blame(r) = comm(r) - own_wait(r) + caused(r) and every charged wait
//     appears once on each side);
//   * per-phase folds online on each rank's own thread, so the phase table
//     is ready at every introspection window boundary without cross-rank
//     reads.
//
// Determinism contract: the capture hooks run on the acting rank's own
// thread, never charge virtual time (clocks are bit-identical profiler on
// or off), and never take locks -- lane state is owner-thread-only, and
// cross-rank aggregation happens exclusively after Engine::run joined the
// rank threads. Mid-run, a rank may read only its OWN lane (the reorder
// feed agrees on totals with a tool-kind collective, never by peeking at
// peers).
//
// Memory is governed: Config::reserve (wired to the mpimon degradation
// governor by mon::attach_critpath) is consulted at every run begin; a
// trimmed grant shrinks the per-rank rings, a refusal switches to
// blame-only mode (accumulators keep running, the path degenerates to the
// dominant rank's lane). Crash/shrink/rebind are survived by tombstoning:
// a backward walk that needs a dead rank's missing send edge falls back to
// program order and marks the segment.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minimpi/engine.h"

namespace mpim::critpath {

/// Wait-state classes, the Scalasca taxonomy adapted to the engine.
enum class WaitClass : std::uint8_t {
  none = 0,
  late_sender,        ///< p2p receive blocked until the message arrived
  late_receiver,      ///< message dwelled in the inbox (informational)
  wait_at_collective, ///< blocked inside a collective's decomposition
  imbalance_at_root,  ///< 2nd+ consecutive wait inside one collective
};
const char* wait_class_name(WaitClass c);

/// Indices into the per-class accumulator arrays.
inline constexpr int kClassLateSender = 0;
inline constexpr int kClassLateReceiver = 1;
inline constexpr int kClassWaitCollective = 2;
inline constexpr int kClassRootImbalance = 3;
inline constexpr int kNumClasses = 4;

struct Config {
  /// Events kept per rank before the oldest is evicted (pre-governor).
  std::size_t ring_capacity = 8192;
  /// Phase grid (virtual seconds) for the per-phase blame table; matches
  /// the introspection snapshot window default.
  double phase_s = 1e-3;
  /// Ranks start armed; MPI_M_critpath_stop/start toggles per rank.
  bool start_armed = true;
  /// Backward-walk safety cap.
  std::size_t max_path_segments = 4096;
  /// Bounded per-lane phase table; later phases fold into the last cell.
  std::size_t max_phases = 512;
  /// Memory grant, consulted at run begin with (want_frames, frame_bytes);
  /// returns granted frames (0 = refusal -> blame-only mode). Unset means
  /// ungoverned. mon::attach_critpath wires the degradation governor here.
  std::function<std::size_t(std::size_t, std::uint64_t)> reserve;
};

/// One happens-before event in a rank's bounded ring.
struct Event {
  enum class Kind : std::uint8_t { send, recv };
  Kind kind = Kind::send;
  WaitClass wait = WaitClass::none;
  mpi::CommKind comm_kind = mpi::CommKind::p2p;
  int peer = -1;  ///< world rank of the other side
  int context_id = -1;
  int tag = 0;
  std::uint64_t send_seq = 0;  ///< edge name (sender sequence number)
  std::uint64_t bytes = 0;
  double t0 = 0.0;       ///< op begin (send injection / recv wait baseline)
  double t1 = 0.0;       ///< op completion clock
  double arrival = 0.0;  ///< packet arrival; < 0 for a lost transmission
};

struct RankBlame {
  int rank = -1;
  std::uint64_t comm_ns = 0;      ///< sum of send+recv op durations
  std::uint64_t own_wait_ns = 0;  ///< waits this rank suffered (ls+wc+ri)
  std::uint64_t caused_ns = 0;    ///< peers' waits charged to this rank
  std::uint64_t blame_ns = 0;     ///< comm - own_wait + caused
  std::array<std::uint64_t, kNumClasses> class_ns{};
  WaitClass dominant_class = WaitClass::none;
  int dominant_peer = -1;  ///< peer this rank waited longest on
  std::uint64_t dominant_peer_ns = 0;
  bool dead = false;
};

/// Wait charged to the directed link src -> dst (src was late, dst waited).
struct LinkBlame {
  int src = -1;
  int dst = -1;
  std::uint64_t wait_ns = 0;
  std::uint64_t bytes = 0;  ///< bytes dst received from src
  bool cross_node = false;
};

/// One lane of the extracted critical path (forward time order).
struct PathSegment {
  int rank = -1;
  double t0 = 0.0;
  double t1 = 0.0;
  /// Peer whose send edge led into this segment's lower end; -1 when the
  /// walk continued in program order.
  int via_peer = -1;
  /// The walk needed a dead rank's missing edge here (crash/shrink).
  bool tombstoned = false;
};

struct PhaseBlame {
  int rank = -1;
  int phase = 0;  ///< floor(t / phase_s)
  std::uint64_t wait_ns = 0;
  WaitClass dominant_class = WaitClass::none;
};

struct BlameReport {
  bool valid = false;
  bool blame_only = false;
  std::uint64_t total_comm_ns = 0;
  std::uint64_t total_wait_ns = 0;
  std::vector<RankBlame> ranks;
  std::vector<LinkBlame> links;    ///< descending wait_ns
  std::vector<PathSegment> path;   ///< forward time order
  std::vector<PhaseBlame> phases;  ///< (rank, phase) ascending
  int dominant_rank = -1;          ///< argmax caused_ns
  WaitClass dominant_class = WaitClass::none;
  LinkBlame critical_link;
};

class Profiler {
 public:
  /// Installs the capture hooks and run lifecycle on `engine` and parks
  /// ownership in the engine's crit-plane slot (survives across runs, like
  /// the streaming plane). Virtual clocks are bit-identical with and
  /// without the profiler attached.
  static std::shared_ptr<Profiler> attach(mpi::Engine& engine,
                                          Config cfg = {});
  /// The profiler attached to `engine`, or nullptr.
  static Profiler* attached(mpi::Engine& engine);

  // --- rank-thread API: calling rank's own lane only ----------------------
  void arm(int rank, bool on);
  bool armed(int rank) const;

  struct LocalTotals {
    std::uint64_t events = 0;
    std::uint64_t dropped = 0;  ///< ring evictions (oldest overwritten)
    std::uint64_t comm_ns = 0;
    std::uint64_t wait_ns = 0;
    std::array<std::uint64_t, kNumClasses> class_ns{};
    std::uint64_t mismatch_wait_ns = 0;  ///< waits on inter-node messages
  };
  LocalTotals local_totals(int rank) const;
  /// Calling rank's wait charged to each world peer, virtual ns.
  std::vector<std::uint64_t> local_waits_by_peer(int rank) const;
  /// Calling rank's dominant causer (-1 when it never waited).
  void local_dominant(int rank, int* peer, std::uint64_t* wait_ns) const;

  /// Reorder feed: totals accumulated since the rank's last mark(). Each
  /// rank reads only its own lane; cross-rank agreement is the caller's
  /// job (reorder::reorder_on_phase sums them with a tool collective).
  std::uint64_t wait_since_mark(int rank) const;
  std::uint64_t mismatch_since_mark(int rank) const;
  void mark(int rank);

  // --- post-run API (after Engine::run returned) --------------------------
  /// Lazy, idempotent per run: classifies, aggregates blame and extracts
  /// the backward critical path over the joined lanes.
  const BlameReport& report();
  /// Writes the report as the sectioned CSV `profview --critical-path`
  /// renders. Finalizes first; false when the file cannot be opened.
  bool write_csv(const std::string& path);

  bool blame_only() const { return blame_only_; }
  const Config& config() const { return cfg_; }
  /// Host wall seconds the last finalize spent (classify + aggregate +
  /// backward walk); 0.0 until a run's report has been extracted. The work
  /// happens after Engine::run joined, so it is off the application's
  /// critical path -- this tracks that it stays cheap anyway.
  double extract_host_seconds() const { return extract_host_s_; }

  // Engine lifecycle (public so std::function hooks can reach them).
  void begin_run();
  void end_run();
  void on_send(int rank, const mpi::PktInfo& pkt, double t0, double tx_start,
               double arrival, double t1);
  void on_recv(int rank, const mpi::PktInfo& pkt, double pre, double arrival,
               double t1);

 private:
  struct PhaseCell {
    std::uint64_t wait_ns = 0;
    std::array<std::uint64_t, kNumClasses> class_ns{};
  };

  /// Per-rank capture lane. Owner-thread-only writes; cross-thread reads
  /// only after Engine::run joined (joins synchronize, so no atomics).
  /// Cache-line aligned: the recv hook runs under the rank mutex senders
  /// contend on, so a lane's hot fields must not false-share with its
  /// neighbours'.
  struct alignas(64) Lane {
    std::vector<Event> ring;
    std::size_t cap = 0;
    std::size_t head = 0;       ///< next slot; equals pushed % cap
    std::uint64_t pushed = 0;
    std::uint64_t dropped = 0;  ///< evictions
    bool armed = true;
    std::uint64_t events = 0;
    std::uint64_t comm_ns = 0;
    std::uint64_t wait_ns = 0;
    std::array<std::uint64_t, kNumClasses> class_ns{};
    std::uint64_t mismatch_wait_ns = 0;
    std::uint64_t mark_wait_ns = 0;      ///< snapshot at last mark()
    std::uint64_t mark_mismatch_ns = 0;
    // Telemetry mirror deltas, batched: per-event atomic adds on the shared
    // registry false-share across rank threads, so the hooks stage deltas
    // here (owner-thread-only) and flush every kTelemetryFlushBatch events
    // and at run end. Mid-run hub reads lag by at most one batch.
    std::uint64_t pend_events = 0;
    std::uint64_t pend_dropped = 0;
    std::uint64_t pend_wait = 0;
    std::array<std::uint64_t, kNumClasses> pend_class{};
    std::vector<std::uint64_t> wait_by_peer;
    std::vector<std::uint64_t> bytes_from_peer;
    std::map<int, std::uint64_t> wait_by_comm;  ///< context id -> ns
    std::map<int, PhaseCell> phases;
    int last_coll_ctx = -1;
    int last_coll_tag = 0;
    int coll_wait_streak = 0;
    // Hot-path caches for the two per-wait std::map cells: consecutive
    // waits overwhelmingly hit the same phase and communicator, and the
    // recv hook holds the rank mutex, so every map walk avoided is lock
    // hold time given back to senders. std::map nodes are pointer-stable;
    // begin_run clears the maps and must reset these.
    int cache_phase = -1;
    PhaseCell* cache_phase_cell = nullptr;
    int cache_ctx = -1;
    std::uint64_t* cache_ctx_cell = nullptr;
  };

  Profiler(mpi::Engine& engine, Config cfg);

  Lane& lane(int rank) { return lanes_[static_cast<std::size_t>(rank)]; }
  const Lane& lane(int rank) const {
    return lanes_[static_cast<std::size_t>(rank)];
  }
  /// Slot for the next event in `ln`'s ring (evicting the oldest once
  /// full), or nullptr in blame-only mode. Overwrite slots carry the
  /// evicted event's data: callers must assign every field.
  Event* next_slot(Lane& ln);
  void charge_phase(Lane& ln, double when_s, WaitClass cls, std::uint64_t ns);
  void flush_lane_telemetry(int rank, Lane& ln);
  void finalize_locked();
  void extract_path(std::vector<std::vector<Event>>& ordered);

  mpi::Engine& engine_;
  Config cfg_;
  std::vector<Lane> lanes_;
  std::vector<int> node_of_rank_;
  bool blame_only_ = false;
  bool finalized_ = true;  ///< no run captured yet
  double extract_host_s_ = 0.0;
  BlameReport report_;
  // Telemetry mirror ids, prefetched so hooks avoid the ids() indirection.
  int id_events_ = -1, id_dropped_ = -1, id_wait_ = -1;
  std::array<int, kNumClasses> id_class_{{-1, -1, -1, -1}};
  int id_extractions_ = -1, id_blame_only_ = -1;
};

}  // namespace mpim::critpath
