#include "critpath/critpath.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "telemetry/log.h"

namespace mpim::critpath {

namespace {

/// Hook-side telemetry mirror flush cadence, in events per lane.
constexpr std::uint64_t kTelemetryFlushBatch = 64;

/// Virtual seconds -> whole nanoseconds, round-to-nearest. Inputs are
/// non-negative, so +0.5-and-truncate matches llround without the libm
/// call (this runs in the capture hooks, under the rank mutex).
std::uint64_t to_ns(double seconds) {
  if (!(seconds > 0.0)) return 0;
  return static_cast<std::uint64_t>(seconds * 1e9 + 0.5);
}

int class_index(WaitClass c) {
  switch (c) {
    case WaitClass::late_sender: return kClassLateSender;
    case WaitClass::late_receiver: return kClassLateReceiver;
    case WaitClass::wait_at_collective: return kClassWaitCollective;
    case WaitClass::imbalance_at_root: return kClassRootImbalance;
    case WaitClass::none: break;
  }
  return -1;
}

WaitClass class_at(int idx) {
  switch (idx) {
    case kClassLateSender: return WaitClass::late_sender;
    case kClassLateReceiver: return WaitClass::late_receiver;
    case kClassWaitCollective: return WaitClass::wait_at_collective;
    case kClassRootImbalance: return WaitClass::imbalance_at_root;
    default: return WaitClass::none;
  }
}

/// Dominant class of a per-class ns array. late_receiver dwell is
/// informational (never charged as wait), so it only wins when no charged
/// class saw any time at all.
WaitClass dominant_of(const std::array<std::uint64_t, kNumClasses>& ns) {
  int best = -1;
  std::uint64_t best_ns = 0;
  for (int c = 0; c < kNumClasses; ++c) {
    if (c == kClassLateReceiver) continue;
    if (ns[static_cast<std::size_t>(c)] > best_ns) {
      best_ns = ns[static_cast<std::size_t>(c)];
      best = c;
    }
  }
  if (best < 0 && ns[kClassLateReceiver] > 0) best = kClassLateReceiver;
  return class_at(best);
}

}  // namespace

const char* wait_class_name(WaitClass c) {
  switch (c) {
    case WaitClass::none: return "none";
    case WaitClass::late_sender: return "late_sender";
    case WaitClass::late_receiver: return "late_receiver";
    case WaitClass::wait_at_collective: return "wait_at_collective";
    case WaitClass::imbalance_at_root: return "imbalance_at_root";
  }
  return "?";
}

Profiler::Profiler(mpi::Engine& engine, Config cfg)
    : engine_(engine), cfg_(std::move(cfg)) {
  const int n = engine_.world_size();
  lanes_.resize(static_cast<std::size_t>(n));
  node_of_rank_.resize(static_cast<std::size_t>(n));
  const auto& placement = engine_.config().placement;
  // fabric().node_of, not topology().node_of: on fat-tree / dragonfly
  // hierarchies depth 1 is a pod / router group, not the NIC domain.
  for (int r = 0; r < n; ++r)
    node_of_rank_[static_cast<std::size_t>(r)] =
        engine_.fabric().node_of(placement[static_cast<std::size_t>(r)]);
  const telemetry::StdIds& ids = engine_.telemetry().ids();
  id_events_ = ids.critpath_events;
  id_dropped_ = ids.critpath_dropped;
  id_wait_ = ids.critpath_wait_ns;
  id_class_ = {ids.critpath_late_sender_ns, ids.critpath_late_receiver_ns,
               ids.critpath_wait_collective_ns, ids.critpath_root_imbalance_ns};
  id_extractions_ = ids.critpath_extractions;
  id_blame_only_ = ids.critpath_blame_only;
}

std::shared_ptr<Profiler> Profiler::attach(mpi::Engine& engine, Config cfg) {
  auto prof = std::shared_ptr<Profiler>(new Profiler(engine, std::move(cfg)));
  Profiler* p = prof.get();
  mpi::CritHooks hooks;
  hooks.on_send = [p](int rank, const mpi::PktInfo& pkt, double t0,
                      double tx_start, double arrival, double t1) {
    p->on_send(rank, pkt, t0, tx_start, arrival, t1);
  };
  hooks.on_recv = [p](int rank, const mpi::PktInfo& pkt, double pre,
                      double arrival, double t1) {
    p->on_recv(rank, pkt, pre, arrival, t1);
  };
  engine.set_crit_hooks(std::move(hooks));
  engine.set_crit_run_hooks([p] { p->begin_run(); }, [p] { p->end_run(); });
  engine.set_crit_plane(prof);  // ownership: survives across run() calls
  return prof;
}

Profiler* Profiler::attached(mpi::Engine& engine) {
  return static_cast<Profiler*>(engine.crit_plane());
}

void Profiler::begin_run() {
  // Main thread, after per-run engine resets, before rank threads exist:
  // everything written here happens-before every capture hook.
  std::size_t cap = cfg_.ring_capacity;
  blame_only_ = false;
  if (cfg_.reserve) {
    const std::size_t want = cap * static_cast<std::size_t>(lanes_.size());
    const std::size_t granted = cfg_.reserve(want, sizeof(Event));
    if (granted < want) {
      cap = granted / std::max<std::size_t>(lanes_.size(), 1);
      if (cap < 16) {  // too small to be useful: keep the blame, drop the path
        cap = 0;
        blame_only_ = true;
      }
      telemetry::log(telemetry::LogLevel::info, -1, "critpath",
                     "governor trimmed event rings: wanted " +
                         std::to_string(want) + " frames, granted " +
                         std::to_string(granted) +
                         (blame_only_ ? " -> blame-only mode" : ""));
    }
  }
  for (std::size_t r = 0; r < lanes_.size(); ++r) {
    Lane& ln = lanes_[r];
    ln.cap = cap;
    ln.ring.clear();
    if (cap > 0) ln.ring.reserve(cap);
    ln.head = 0;
    ln.pushed = 0;
    ln.dropped = 0;
    ln.armed = cfg_.start_armed;
    ln.events = 0;
    ln.comm_ns = 0;
    ln.wait_ns = 0;
    ln.class_ns = {};
    ln.mismatch_wait_ns = 0;
    ln.mark_wait_ns = 0;
    ln.mark_mismatch_ns = 0;
    ln.pend_events = 0;
    ln.pend_dropped = 0;
    ln.pend_wait = 0;
    ln.pend_class = {};
    ln.wait_by_peer.assign(lanes_.size(), 0);
    ln.bytes_from_peer.assign(lanes_.size(), 0);
    ln.wait_by_comm.clear();
    ln.phases.clear();
    ln.last_coll_ctx = -1;
    ln.last_coll_tag = 0;
    ln.coll_wait_streak = 0;
    ln.cache_phase = -1;
    ln.cache_phase_cell = nullptr;  // phases.clear() freed the nodes
    ln.cache_ctx = -1;
    ln.cache_ctx_cell = nullptr;
  }
  finalized_ = false;
  report_ = BlameReport{};
  engine_.telemetry().gauge_set(id_blame_only_, 0, blame_only_ ? 1 : 0);
}

void Profiler::end_run() {
  // All rank threads joined: safe to aggregate across lanes. Drain the
  // batched telemetry mirror first so hub counters are exact, then
  // aggregate eagerly so the streaming plane's finalize (the engine
  // run-end hook, which fires after this one) can fold the findings in.
  for (std::size_t r = 0; r < lanes_.size(); ++r)
    flush_lane_telemetry(static_cast<int>(r), lanes_[r]);
  report();
}

void Profiler::flush_lane_telemetry(int rank, Lane& ln) {
  telemetry::Hub& hub = engine_.telemetry();
  if (ln.pend_events) hub.add(id_events_, rank, ln.pend_events);
  if (ln.pend_dropped) hub.add(id_dropped_, rank, ln.pend_dropped);
  if (ln.pend_wait) hub.add(id_wait_, rank, ln.pend_wait);
  for (int c = 0; c < kNumClasses; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    if (ln.pend_class[ci]) hub.add(id_class_[ci], rank, ln.pend_class[ci]);
  }
  ln.pend_events = 0;
  ln.pend_dropped = 0;
  ln.pend_wait = 0;
  ln.pend_class = {};
}

Event* Profiler::next_slot(Lane& ln) {
  if (ln.cap == 0) return nullptr;  // blame-only mode
  Event* ev;
  if (ln.ring.size() < ln.cap) {
    ev = &ln.ring.emplace_back();
  } else {
    // head tracks pushed % cap without the per-event 64-bit divide.
    ev = &ln.ring[ln.head];
    ++ln.dropped;
    ++ln.pend_dropped;
  }
  ++ln.pushed;
  if (++ln.head == ln.cap) ln.head = 0;
  return ev;
}

void Profiler::charge_phase(Lane& ln, double when_s, WaitClass cls,
                            std::uint64_t ns) {
  int phase = cfg_.phase_s > 0.0
                  ? static_cast<int>(std::floor(when_s / cfg_.phase_s))
                  : 0;
  if (phase < 0) phase = 0;
  PhaseCell* cellp = ln.cache_phase_cell;
  if (phase != ln.cache_phase || cellp == nullptr) {
    int key = phase;
    if (ln.phases.size() >= cfg_.max_phases && ln.phases.count(key) == 0)
      key = ln.phases.rbegin()->first;  // bounded: fold into the last cell
    cellp = &ln.phases[key];
    ln.cache_phase = phase;
    ln.cache_phase_cell = cellp;
  }
  PhaseCell& cell = *cellp;
  const int ci = class_index(cls);
  if (ci >= 0) cell.class_ns[static_cast<std::size_t>(ci)] += ns;
  if (cls != WaitClass::late_receiver) cell.wait_ns += ns;
}

void Profiler::on_send(int rank, const mpi::PktInfo& pkt, double t0,
                       double tx_start, double arrival, double t1) {
  Lane& ln = lane(rank);
  if (!ln.armed) return;
  ++ln.events;
  ln.comm_ns += to_ns(t1 - t0);
  // Filled in place (overwrite slots carry stale data: every field is set).
  if (Event* ev = next_slot(ln)) {
    ev->kind = Event::Kind::send;
    ev->wait = WaitClass::none;
    ev->comm_kind = pkt.kind;
    ev->peer = pkt.dst_world;
    ev->context_id = pkt.context_id;
    ev->tag = pkt.tag;
    ev->send_seq = pkt.send_seq;
    ev->bytes = pkt.bytes;
    ev->t0 = t0;
    ev->t1 = t1;
    ev->arrival = arrival;
  }
  (void)tx_start;
  if (++ln.pend_events >= kTelemetryFlushBatch) flush_lane_telemetry(rank, ln);
}

void Profiler::on_recv(int rank, const mpi::PktInfo& pkt, double pre,
                       double arrival, double t1) {
  Lane& ln = lane(rank);
  if (!ln.armed) return;
  ++ln.events;
  ln.comm_ns += to_ns(t1 - pre);
  const int src = pkt.src_world;
  if (src >= 0 && static_cast<std::size_t>(src) < ln.bytes_from_peer.size())
    ln.bytes_from_peer[static_cast<std::size_t>(src)] += pkt.bytes;

  WaitClass cls = WaitClass::none;
  const double wait_s = arrival - pre;
  if (wait_s > 0.0) {
    // The receiver's clock stalled until the message arrived.
    if (pkt.kind == mpi::CommKind::coll) {
      if (pkt.context_id == ln.last_coll_ctx && pkt.tag == ln.last_coll_tag) {
        ++ln.coll_wait_streak;
      } else {
        ln.last_coll_ctx = pkt.context_id;
        ln.last_coll_tag = pkt.tag;
        ln.coll_wait_streak = 1;
      }
      cls = ln.coll_wait_streak >= 2 ? WaitClass::imbalance_at_root
                                     : WaitClass::wait_at_collective;
    } else {
      cls = WaitClass::late_sender;
    }
    const std::uint64_t w = to_ns(wait_s);
    ln.wait_ns += w;
    const int ci = class_index(cls);
    ln.class_ns[static_cast<std::size_t>(ci)] += w;
    if (src >= 0 && static_cast<std::size_t>(src) < ln.wait_by_peer.size()) {
      ln.wait_by_peer[static_cast<std::size_t>(src)] += w;
      if (node_of_rank_[static_cast<std::size_t>(src)] !=
          node_of_rank_[static_cast<std::size_t>(rank)])
        ln.mismatch_wait_ns += w;
    }
    if (pkt.context_id != ln.cache_ctx || ln.cache_ctx_cell == nullptr) {
      ln.cache_ctx_cell = &ln.wait_by_comm[pkt.context_id];
      ln.cache_ctx = pkt.context_id;
    }
    *ln.cache_ctx_cell += w;
    charge_phase(ln, t1, cls, w);
    ln.pend_wait += w;
    ln.pend_class[static_cast<std::size_t>(ci)] += w;
  } else {
    // The message dwelled in the inbox waiting for the receiver.
    const double dwell_s = pre - arrival;
    if (dwell_s > 0.0) {
      cls = WaitClass::late_receiver;
      const std::uint64_t d = to_ns(dwell_s);
      ln.class_ns[kClassLateReceiver] += d;
      charge_phase(ln, t1, cls, d);
      ln.pend_class[kClassLateReceiver] += d;
    }
    if (pkt.kind != mpi::CommKind::coll) {
      // A non-waiting p2p recv does not break a collective's streak, but a
      // non-waiting collective recv of a different op does.
    } else if (pkt.context_id != ln.last_coll_ctx ||
               pkt.tag != ln.last_coll_tag) {
      ln.last_coll_ctx = pkt.context_id;
      ln.last_coll_tag = pkt.tag;
      ln.coll_wait_streak = 0;
    }
  }

  if (Event* ev = next_slot(ln)) {
    ev->kind = Event::Kind::recv;
    ev->wait = cls;
    ev->comm_kind = pkt.kind;
    ev->peer = src;
    ev->context_id = pkt.context_id;
    ev->tag = pkt.tag;
    ev->send_seq = pkt.send_seq;
    ev->bytes = pkt.bytes;
    ev->t0 = pre;
    ev->t1 = t1;
    ev->arrival = arrival;
  }
  if (++ln.pend_events >= kTelemetryFlushBatch) flush_lane_telemetry(rank, ln);
}

void Profiler::arm(int rank, bool on) { lane(rank).armed = on; }
bool Profiler::armed(int rank) const { return lane(rank).armed; }

Profiler::LocalTotals Profiler::local_totals(int rank) const {
  const Lane& ln = lane(rank);
  LocalTotals out;
  out.events = ln.events;
  out.dropped = ln.dropped;
  out.comm_ns = ln.comm_ns;
  out.wait_ns = ln.wait_ns;
  out.class_ns = ln.class_ns;
  out.mismatch_wait_ns = ln.mismatch_wait_ns;
  return out;
}

std::vector<std::uint64_t> Profiler::local_waits_by_peer(int rank) const {
  return lane(rank).wait_by_peer;
}

void Profiler::local_dominant(int rank, int* peer,
                              std::uint64_t* wait_ns) const {
  const Lane& ln = lane(rank);
  int best = -1;
  std::uint64_t best_ns = 0;
  for (std::size_t p = 0; p < ln.wait_by_peer.size(); ++p) {
    if (ln.wait_by_peer[p] > best_ns) {
      best_ns = ln.wait_by_peer[p];
      best = static_cast<int>(p);
    }
  }
  if (peer != nullptr) *peer = best;
  if (wait_ns != nullptr) *wait_ns = best_ns;
}

std::uint64_t Profiler::wait_since_mark(int rank) const {
  const Lane& ln = lane(rank);
  return ln.wait_ns - ln.mark_wait_ns;
}

std::uint64_t Profiler::mismatch_since_mark(int rank) const {
  const Lane& ln = lane(rank);
  return ln.mismatch_wait_ns - ln.mark_mismatch_ns;
}

void Profiler::mark(int rank) {
  Lane& ln = lane(rank);
  ln.mark_wait_ns = ln.wait_ns;
  ln.mark_mismatch_ns = ln.mismatch_wait_ns;
}

const BlameReport& Profiler::report() {
  if (!finalized_) {
    const auto t0 = std::chrono::steady_clock::now();
    finalize_locked();
    extract_host_s_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    finalized_ = true;
  }
  return report_;
}

void Profiler::finalize_locked() {
  const int n = static_cast<int>(lanes_.size());
  BlameReport rep;
  rep.valid = true;
  rep.blame_only = blame_only_;
  rep.ranks.resize(static_cast<std::size_t>(n));

  // Per-rank totals and the cross-rank caused/link aggregation. A wait in
  // lane r charged to peer p appears once as r's own wait and once as p's
  // caused wait, which is what makes the blame shares sum exactly to the
  // total communication time.
  for (int r = 0; r < n; ++r) {
    const Lane& ln = lanes_[static_cast<std::size_t>(r)];
    RankBlame& rb = rep.ranks[static_cast<std::size_t>(r)];
    rb.rank = r;
    rb.comm_ns = ln.comm_ns;
    rb.class_ns = ln.class_ns;
    rb.own_wait_ns = ln.wait_ns;
    rb.dead = engine_.rank_dead(r);
    rep.total_comm_ns += ln.comm_ns;
    rep.total_wait_ns += ln.wait_ns;
    rb.dominant_class = dominant_of(ln.class_ns);
    for (int p = 0; p < n; ++p) {
      const std::uint64_t w = ln.wait_by_peer[static_cast<std::size_t>(p)];
      if (w == 0) continue;
      rep.ranks[static_cast<std::size_t>(p)].caused_ns += w;
      if (w > rb.dominant_peer_ns) {
        rb.dominant_peer_ns = w;
        rb.dominant_peer = p;
      }
      LinkBlame link;
      link.src = p;
      link.dst = r;
      link.wait_ns = w;
      link.bytes = ln.bytes_from_peer[static_cast<std::size_t>(p)];
      link.cross_node = node_of_rank_[static_cast<std::size_t>(p)] !=
                        node_of_rank_[static_cast<std::size_t>(r)];
      rep.links.push_back(link);
    }
    for (const auto& [phase, cell] : ln.phases) {
      PhaseBlame pb;
      pb.rank = r;
      pb.phase = phase;
      pb.wait_ns = cell.wait_ns;
      pb.dominant_class = dominant_of(cell.class_ns);
      rep.phases.push_back(pb);
    }
  }

  std::uint64_t best_caused = 0;
  std::array<std::uint64_t, kNumClasses> global_class{};
  for (RankBlame& rb : rep.ranks) {
    rb.blame_ns = rb.comm_ns - rb.own_wait_ns + rb.caused_ns;
    if (rb.caused_ns > best_caused) {
      best_caused = rb.caused_ns;
      rep.dominant_rank = rb.rank;
    }
    for (int c = 0; c < kNumClasses; ++c)
      global_class[static_cast<std::size_t>(c)] +=
          rb.class_ns[static_cast<std::size_t>(c)];
  }
  rep.dominant_class = dominant_of(global_class);

  std::sort(rep.links.begin(), rep.links.end(),
            [](const LinkBlame& a, const LinkBlame& b) {
              if (a.wait_ns != b.wait_ns) return a.wait_ns > b.wait_ns;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  if (!rep.links.empty()) rep.critical_link = rep.links.front();

  report_ = std::move(rep);

  // Backward critical-path extraction over the joined rings.
  std::vector<std::vector<Event>> ordered(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    const Lane& ln = lanes_[static_cast<std::size_t>(r)];
    std::vector<Event>& out = ordered[static_cast<std::size_t>(r)];
    if (ln.cap == 0 || ln.ring.empty()) continue;
    out.reserve(ln.ring.size());
    const std::size_t sz = ln.ring.size();
    const std::size_t start =
        ln.pushed > sz ? static_cast<std::size_t>(ln.pushed % ln.cap) : 0;
    for (std::size_t i = 0; i < sz; ++i)
      out.push_back(ln.ring[(start + i) % sz]);
  }
  extract_path(ordered);
  engine_.telemetry().add(id_extractions_, 0);
}

void Profiler::extract_path(std::vector<std::vector<Event>>& ordered) {
  const int n = static_cast<int>(lanes_.size());
  const std::vector<double>& finals = engine_.final_clocks();
  int cur = 0;
  for (int r = 1; r < n; ++r)
    if (finals[static_cast<std::size_t>(r)] >
        finals[static_cast<std::size_t>(cur)])
      cur = r;

  if (blame_only_) {
    // No rings: the path degenerates to the slowest rank's whole lane.
    PathSegment seg;
    seg.rank = report_.dominant_rank >= 0 ? report_.dominant_rank : cur;
    seg.t0 = 0.0;
    seg.t1 = finals.empty() ? 0.0
                            : finals[static_cast<std::size_t>(seg.rank)];
    report_.path.push_back(seg);
    return;
  }

  // Per-rank send index: send_seq -> position in the ordered lane.
  std::vector<std::unordered_map<std::uint64_t, std::size_t>> send_at(
      static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    for (std::size_t i = 0; i < ordered[static_cast<std::size_t>(r)].size();
         ++i) {
      const Event& ev = ordered[static_cast<std::size_t>(r)][i];
      if (ev.kind == Event::Kind::send) send_at[static_cast<std::size_t>(r)][ev.send_seq] = i;
    }

  auto last_at_or_before = [&](int rank, double t) -> std::ptrdiff_t {
    const std::vector<Event>& evs = ordered[static_cast<std::size_t>(rank)];
    std::ptrdiff_t lo = 0, hi = static_cast<std::ptrdiff_t>(evs.size()) - 1,
                   best = -1;
    while (lo <= hi) {
      const std::ptrdiff_t mid = (lo + hi) / 2;
      if (evs[static_cast<std::size_t>(mid)].t1 <= t) {
        best = mid;
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
    return best;
  };

  double seg_hi = finals[static_cast<std::size_t>(cur)];
  std::ptrdiff_t idx = last_at_or_before(cur, seg_hi);
  bool next_tombstone = false;
  std::vector<PathSegment> path;

  while (path.size() < cfg_.max_path_segments) {
    const std::vector<Event>& evs = ordered[static_cast<std::size_t>(cur)];
    // Walk this rank's program order backward to the first gating receive.
    std::ptrdiff_t gate = -1;
    for (std::ptrdiff_t i = idx; i >= 0; --i) {
      const Event& ev = evs[static_cast<std::size_t>(i)];
      if (ev.kind == Event::Kind::recv && ev.wait != WaitClass::none &&
          ev.wait != WaitClass::late_receiver && ev.arrival >= 0.0) {
        gate = i;
        break;
      }
    }
    PathSegment seg;
    seg.rank = cur;
    seg.t1 = seg_hi;
    seg.tombstoned = next_tombstone;
    next_tombstone = false;
    if (gate < 0) {
      // Program order all the way down: the path starts here.
      seg.t0 = evs.empty() ? 0.0 : std::min(evs.front().t0, seg_hi);
      if (seg.t0 < 0.0) seg.t0 = 0.0;
      path.push_back(seg);
      break;
    }
    const Event& ev = evs[static_cast<std::size_t>(gate)];
    seg.t0 = ev.t1;
    seg.via_peer = ev.peer;
    path.push_back(seg);

    // Hop the send->recv edge backward to the sender.
    const int peer = ev.peer;
    if (peer < 0 || peer >= n) break;
    auto& peer_sends = send_at[static_cast<std::size_t>(peer)];
    auto hit = peer_sends.find(ev.send_seq);
    if (hit != peer_sends.end()) {
      cur = peer;
      idx = static_cast<std::ptrdiff_t>(hit->second) - 1;
      seg_hi = ordered[static_cast<std::size_t>(peer)][hit->second].t1;
    } else {
      // The matching send is gone -- evicted, the sender disarmed, or the
      // rank died (crash/shrink). Tombstone dead ranks' edges and resume
      // in program order at the arrival time.
      cur = peer;
      seg_hi = ev.arrival;
      idx = last_at_or_before(peer, seg_hi);
      next_tombstone = engine_.rank_dead(peer);
    }
    if (seg_hi <= 0.0) break;
  }
  std::reverse(path.begin(), path.end());
  report_.path = std::move(path);
}

bool Profiler::write_csv(const std::string& path) {
  const BlameReport& rep = report();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "critpath,v1\n");
  std::fprintf(f, "total,%llu,%llu,%d,%s,%d,%.9f\n",
               static_cast<unsigned long long>(rep.total_comm_ns),
               static_cast<unsigned long long>(rep.total_wait_ns),
               rep.dominant_rank, wait_class_name(rep.dominant_class),
               rep.blame_only ? 1 : 0, cfg_.phase_s);
  for (const RankBlame& rb : rep.ranks) {
    std::fprintf(
        f, "rank,%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%d,%llu,%d\n",
        rb.rank, static_cast<unsigned long long>(rb.comm_ns),
        static_cast<unsigned long long>(rb.blame_ns),
        static_cast<unsigned long long>(rb.own_wait_ns),
        static_cast<unsigned long long>(rb.caused_ns),
        static_cast<unsigned long long>(rb.class_ns[kClassLateSender]),
        static_cast<unsigned long long>(rb.class_ns[kClassLateReceiver]),
        static_cast<unsigned long long>(rb.class_ns[kClassWaitCollective]),
        static_cast<unsigned long long>(rb.class_ns[kClassRootImbalance]),
        rb.dominant_peer, static_cast<unsigned long long>(rb.dominant_peer_ns),
        rb.dead ? 1 : 0);
  }
  for (const LinkBlame& lb : rep.links)
    std::fprintf(f, "link,%d,%d,%llu,%llu,%d\n", lb.src, lb.dst,
                 static_cast<unsigned long long>(lb.wait_ns),
                 static_cast<unsigned long long>(lb.bytes),
                 lb.cross_node ? 1 : 0);
  for (const PhaseBlame& pb : rep.phases)
    std::fprintf(f, "phase,%d,%d,%llu,%s\n", pb.rank, pb.phase,
                 static_cast<unsigned long long>(pb.wait_ns),
                 wait_class_name(pb.dominant_class));
  for (const PathSegment& seg : rep.path)
    std::fprintf(f, "path,%d,%.9f,%.9f,%d,%d\n", seg.rank, seg.t0, seg.t1,
                 seg.via_peer, seg.tombstoned ? 1 : 0);
  std::fclose(f);
  return true;
}

}  // namespace mpim::critpath
