// Gather / scatter / alltoall algorithms.
#include "minimpi/coll_common.h"

namespace mpim::mpi::coll {

namespace {

// Binomial gather on virtual ranks: vrank v accumulates the blocks of its
// subtree [v, v + subtree_span) in a contiguous scratch, then hands the
// whole run to its parent. The root finally un-rotates into recvbuf.
void gather_binomial(detail::Round& r, const void* sendbuf, void* recvbuf,
                     std::size_t block_bytes, int root) {
  const int size = r.size();
  const int vrank = (r.rank() - root + size) % size;
  auto abs = [&](int v) { return (v + root) % size; };

  // Upper bound of this rank's subtree span (vrank + span <= padded size).
  auto subtree_span = [&](int v) {
    int span = 1;
    while (!(v & span) && span < size) span <<= 1;
    return span;
  };
  const int my_span = std::min(subtree_span(vrank), size - vrank);
  const bool carries_data = sendbuf != nullptr || recvbuf != nullptr;
  auto scratch = detail::scratch_if(
      carries_data, static_cast<std::size_t>(my_span) * block_bytes);
  detail::copy_block(scratch.get(), sendbuf, block_bytes);

  int have = 1;
  int mask = 1;
  while (mask < size) {
    if (vrank & mask) {
      r.send(abs(vrank - mask), scratch.get(),
             static_cast<std::size_t>(have) * block_bytes);
      break;
    }
    const int child = vrank + mask;
    if (child < size) {
      const int child_blocks = std::min(mask, size - child);
      r.recv(abs(child),
             detail::block_at(scratch.get(), static_cast<std::size_t>(have),
                              block_bytes),
             static_cast<std::size_t>(child_blocks) * block_bytes);
      have += child_blocks;
    }
    mask <<= 1;
  }

  if (vrank == 0 && recvbuf != nullptr && scratch != nullptr) {
    for (int i = 0; i < size; ++i)
      detail::copy_block(
          detail::block_at(recvbuf, static_cast<std::size_t>(abs(i)),
                           block_bytes),
          detail::block_at(scratch.get(), static_cast<std::size_t>(i),
                           block_bytes),
          block_bytes);
  }
}

void gather_linear(detail::Round& r, const void* sendbuf, void* recvbuf,
                   std::size_t block_bytes, int root) {
  if (r.rank() == root) {
    detail::copy_block(
        detail::block_at(recvbuf, static_cast<std::size_t>(root), block_bytes),
        sendbuf, block_bytes);
    for (int src = 0; src < r.size(); ++src) {
      if (src == root) continue;
      r.recv(src,
             detail::block_at(recvbuf, static_cast<std::size_t>(src),
                              block_bytes),
             block_bytes);
    }
  } else {
    r.send(root, sendbuf, block_bytes);
  }
}

}  // namespace

void gather(Ctx& ctx, const void* sendbuf, std::size_t count, Type type,
            void* recvbuf, int root, const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  check(root >= 0 && root < r.size(), "gather root out of range");
  const std::size_t block_bytes = count * type_size(type);
  if (r.size() == 1) {
    detail::copy_block(recvbuf, sendbuf, block_bytes);
    return;
  }
  switch (ctx.engine().config().coll.gather) {
    case GatherAlgo::binomial:
      gather_binomial(r, sendbuf, recvbuf, block_bytes, root);
      return;
    case GatherAlgo::linear:
      gather_linear(r, sendbuf, recvbuf, block_bytes, root);
      return;
  }
  fail("unknown gather algorithm");
}

void scatter(Ctx& ctx, const void* sendbuf, std::size_t count, Type type,
             void* recvbuf, int root, const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  check(root >= 0 && root < r.size(), "scatter root out of range");
  const std::size_t block_bytes = count * type_size(type);
  if (r.rank() == root) {
    for (int dst = 0; dst < r.size(); ++dst) {
      const auto* blk = detail::block_at(
          sendbuf, static_cast<std::size_t>(dst), block_bytes);
      if (dst == root)
        detail::copy_block(recvbuf, blk, block_bytes);
      else
        r.send(dst, blk, block_bytes);
    }
  } else {
    r.recv(root, recvbuf, block_bytes);
  }
}

void alltoall(Ctx& ctx, const void* sendbuf, std::size_t count, Type type,
              void* recvbuf, const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  const std::size_t block_bytes = count * type_size(type);
  const int size = r.size();
  const int rank = r.rank();
  detail::copy_block(
      detail::block_at(recvbuf, static_cast<std::size_t>(rank), block_bytes),
      detail::block_at(sendbuf, static_cast<std::size_t>(rank), block_bytes),
      block_bytes);
  // Pairwise exchange: at step s talk to rank+s (send) / rank-s (recv).
  for (int step = 1; step < size; ++step) {
    const int dst = (rank + step) % size;
    const int src = (rank - step + size) % size;
    r.send(dst,
           detail::block_at(sendbuf, static_cast<std::size_t>(dst),
                            block_bytes),
           block_bytes);
    r.recv(src,
           detail::block_at(recvbuf, static_cast<std::size_t>(src),
                            block_bytes),
           block_bytes);
  }
}

}  // namespace mpim::mpi::coll
