// One-sided communication (RMA windows).
//
// Fence-based epochs: Win::fence() is a (tool-tagged) barrier that also
// synchronizes the members' virtual clocks; puts, gets and accumulates
// inside an epoch move data directly (ranks share the address space) while
// charging the origin the modeled transfer time and reporting the traffic
// to the monitoring hook with CommKind::osc. Per MPI semantics, concurrent
// conflicting accesses to the same window region within one epoch are a
// user error.
#pragma once

#include <memory>
#include <vector>

#include "minimpi/comm.h"
#include "minimpi/types.h"

namespace mpim::mpi {

class Ctx;

class Win {
 public:
  /// Collective over `comm`: every member exposes `bytes` bytes at `base`.
  static Win create(void* base, std::size_t bytes, const Comm& comm);

  const Comm& comm() const;

  /// Closes the current epoch / opens the next one (collective).
  void fence();

  /// Writes `count` elements of `type` from `origin` into the window of
  /// `target_rank` at byte offset `target_disp`.
  void put(const void* origin, std::size_t count, Type type, int target_rank,
           std::size_t target_disp);

  /// Reads `count` elements from the window of `target_rank`.
  /// The transferred bytes are attributed to the *target* (it is the one
  /// whose NIC transmits), as the pml-level monitoring would see it.
  void get(void* origin, std::size_t count, Type type, int target_rank,
           std::size_t target_disp);

  /// inout(target) = op(target, origin), elementwise.
  void accumulate(const void* origin, std::size_t count, Type type, Op op,
                  int target_rank, std::size_t target_disp);

  struct Impl;  // exposed for the implementation file only

 private:
  explicit Win(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

}  // namespace mpim::mpi
