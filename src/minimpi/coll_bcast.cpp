// Broadcast algorithms. The paper's Fig. 5b optimizes a *binomial tree*
// broadcast, which is the default here.
#include "minimpi/coll_common.h"

namespace mpim::mpi::coll {

namespace {

// Classic binomial broadcast on virtual ranks (vrank = rank rotated so the
// root is vrank 0): receive from the parent, then forward down the tree.
void bcast_binomial(detail::Round& r, void* buf, std::size_t bytes, int root) {
  const int size = r.size();
  const int vrank = (r.rank() - root + size) % size;
  auto abs = [&](int v) { return (v + root) % size; };

  int mask = 1;
  while (mask < size) {
    if (vrank & mask) {
      r.recv(abs(vrank - mask), buf, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & (mask - 1)) == 0 && !(vrank & mask) && vrank + mask < size)
      r.send(abs(vrank + mask), buf, bytes);
    mask >>= 1;
  }
}

void bcast_linear(detail::Round& r, void* buf, std::size_t bytes, int root) {
  if (r.rank() == root) {
    for (int dst = 0; dst < r.size(); ++dst)
      if (dst != root) r.send(dst, buf, bytes);
  } else {
    r.recv(root, buf, bytes);
  }
}

}  // namespace

void bcast(Ctx& ctx, void* buf, std::size_t count, Type type, int root,
           const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  check(root >= 0 && root < r.size(), "bcast root out of range");
  if (r.size() == 1) return;
  const std::size_t bytes = count * type_size(type);
  switch (ctx.engine().config().coll.bcast) {
    case BcastAlgo::binomial:
      bcast_binomial(r, buf, bytes, root);
      return;
    case BcastAlgo::linear:
      bcast_linear(r, buf, bytes, root);
      return;
  }
  fail("unknown bcast algorithm");
}

}  // namespace mpim::mpi::coll
